#!/bin/sh
# Regenerates every paper table/figure. Knobs:
#   CFS_BENCH_DURATION_MS (default 2000), CFS_BENCH_CLIENTS (default 48),
#   CFS_BENCH_LARGEDIR_FILES (default 20000).
#
# Besides the human-readable tables on stdout, benches write
# machine-readable BENCH_<name>.json files (one record per system per
# workload: ops_per_sec, p50_us, p99_us, ops, errors) into
# CFS_BENCH_JSON_DIR (default: bench_results/) so the perf trajectory can
# be diffed across PRs.
set -e
cd "$(dirname "$0")"
CFS_BENCH_JSON_DIR="${CFS_BENCH_JSON_DIR:-bench_results}"
export CFS_BENCH_JSON_DIR
mkdir -p "$CFS_BENCH_JSON_DIR"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "##### $(basename "$b") #####"
  "$b"
  echo
done
echo "##### machine-readable results #####"
ls -1 "$CFS_BENCH_JSON_DIR"/BENCH_*.json 2>/dev/null || \
  echo "(no BENCH_*.json written)"
