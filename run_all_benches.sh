#!/bin/sh
# Regenerates every paper table/figure. Knobs:
#   CFS_BENCH_DURATION_MS (default 2000), CFS_BENCH_CLIENTS (default 48),
#   CFS_BENCH_LARGEDIR_FILES (default 20000).
set -e
cd "$(dirname "$0")"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "##### $(basename "$b") #####"
  "$b"
  echo
done
