#!/bin/sh
# Regenerates every paper table/figure. Knobs:
#   CFS_BENCH_DURATION_MS (default 2000), CFS_BENCH_CLIENTS (default 48),
#   CFS_BENCH_LARGEDIR_FILES (default 20000).
#
# Besides the human-readable tables on stdout, benches write
# machine-readable BENCH_<name>.json files (one record per system per
# workload: ops_per_sec, p50_us, p99_us, ops, errors) into
# CFS_BENCH_JSON_DIR (default: bench_results/) so the perf trajectory can
# be diffed across PRs (scripts/bench_compare.sh).
#
# A crashing bench does NOT abort the sweep: every bench runs, each gets a
# pass/fail line and a closing summary table, and the script exits nonzero
# iff any bench failed.
set -u
cd "$(dirname "$0")"
CFS_BENCH_JSON_DIR="${CFS_BENCH_JSON_DIR:-bench_results}"
export CFS_BENCH_JSON_DIR
mkdir -p "$CFS_BENCH_JSON_DIR"

summary=""
failed=0
total=0
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  total=$((total + 1))
  echo "##### $name #####"
  start=$(date +%s)
  if "$b"; then
    status=pass
  else
    rc=$?
    status="FAIL($rc)"
    failed=$((failed + 1))
    echo "##### $name FAILED (exit $rc) #####" >&2
  fi
  elapsed=$(($(date +%s) - start))
  summary="$summary$(printf '%-32s %-9s %4ss' "$name" "$status" "$elapsed")
"
  echo
done

echo "##### machine-readable results #####"
ls -1 "$CFS_BENCH_JSON_DIR"/BENCH_*.json 2>/dev/null || \
  echo "(no BENCH_*.json written)"

echo
echo "##### bench summary #####"
printf '%s' "$summary"
if [ "$failed" -ne 0 ]; then
  echo "$failed of $total benches FAILED"
  exit 1
fi
echo "all $total benches passed"
