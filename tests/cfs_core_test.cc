// End-to-end tests of the assembled CFS system: every metadata operation,
// POSIX error semantics, rename fast/normal paths, orphan-loop rejection,
// client cache behaviour, concurrency, and crash-window garbage collection.
//
// The operation suite runs against all four Fig 13 configurations
// (CFS-base, +new-org, +primitives, full CFS) via TEST_P, so the lock-based
// and primitive-based execution paths are held to identical semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/core/cfs.h"
#include "src/core/gc.h"

namespace cfs {
namespace {

CfsOptions SmallCluster(CfsOptions options) {
  options.num_servers = 6;
  options.num_proxies = 2;
  options.tafdb.num_shards = 2;
  options.tafdb.range_stripe_width = 4;
  options.tafdb.raft.election_timeout_min_ms = 50;
  options.tafdb.raft.election_timeout_max_ms = 100;
  options.tafdb.raft.heartbeat_interval_ms = 20;
  options.filestore.num_nodes = 2;
  options.filestore.raft = options.tafdb.raft;
  options.renamer.raft = options.tafdb.raft;
  options.gc_interval_ms = 50;
  options.gc_grace_ms = 100;
  // Freeze time-based cache revalidation: coherence in these tests must
  // come from epoch bumps and invalidation broadcasts, not from TTLs
  // happening to expire on a slow CI machine.
  options.dentry_epoch_ttl_ms = 600000;
  return options;
}

struct Variant {
  const char* name;
  CfsOptions (*make)();
};

constexpr Variant kVariants[] = {
    {"CfsBase", CfsBaseOptions},
    {"NewOrg", CfsNewOrgOptions},
    {"Primitives", CfsPrimitivesOptions},
    {"FullCfs", CfsFullOptions},
};

class CfsVariantTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<Cfs>(SmallCluster(kVariants[GetParam()].make()));
    ASSERT_TRUE(fs_->Start().ok());
    client_ = fs_->NewClient();
  }

  void TearDown() override {
    client_.reset();
    fs_->Stop();
  }

  std::unique_ptr<Cfs> fs_;
  std::unique_ptr<MetadataClient> client_;
};

TEST_P(CfsVariantTest, MkdirCreateLookupGetattr) {
  ASSERT_TRUE(client_->Mkdir("/dir", 0755).ok());
  ASSERT_TRUE(client_->Create("/dir/file", 0644).ok());

  auto dir = client_->GetAttr("/dir");
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(dir->IsDirectory());
  EXPECT_EQ(dir->children, 1);
  EXPECT_EQ(dir->mode, 0755u);

  auto file = client_->GetAttr("/dir/file");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->type, InodeType::kFile);
  EXPECT_EQ(file->mode, 0644u);
  EXPECT_EQ(file->links, 1);
  EXPECT_EQ(file->size, 0);

  auto looked = client_->Lookup("/dir/file");
  ASSERT_TRUE(looked.ok());
  EXPECT_EQ(looked->id, file->id);

  auto root = client_->GetAttr("/");
  ASSERT_TRUE(root.ok());
  EXPECT_GE(root->children, 1);
}

TEST_P(CfsVariantTest, CreateProducesExpectedSpanPhases) {
  ASSERT_TRUE(client_->Mkdir("/spans", 0755).ok());

  OpTrace::Begin();
  ASSERT_TRUE(client_->Create("/spans/file", 0644).ok());
  OpTraceData trace = OpTrace::Finish();

  // Every create resolves its parent and executes on at least one shard.
  // (Tests run with zero injected latency, so assert phase *counts*, not
  // durations.)
  EXPECT_GT(trace.PhaseCount(Phase::kResolve), 0u);
  EXPECT_GT(trace.PhaseCount(Phase::kShardExec), 0u);
  EXPECT_GT(trace.PhaseCount(Phase::kRpc), 0u);
  if (fs_->options().primitives) {
    // The primitive path never takes row locks: no lock phase at all.
    EXPECT_EQ(trace.PhaseCount(Phase::kLockWait), 0u);
  } else {
    // The conventional path brackets lock acquire/release RPCs.
    EXPECT_GT(trace.PhaseCount(Phase::kLockWait), 0u);
  }
}

TEST_P(CfsVariantTest, PosixErrorSemantics) {
  ASSERT_TRUE(client_->Mkdir("/d", 0755).ok());
  ASSERT_TRUE(client_->Create("/d/f", 0644).ok());

  // EEXIST
  EXPECT_TRUE(client_->Mkdir("/d", 0755).IsAlreadyExists());
  EXPECT_TRUE(client_->Create("/d/f", 0644).IsAlreadyExists());
  // ENOENT
  EXPECT_TRUE(client_->Create("/missing/x", 0644).IsNotFound());
  EXPECT_TRUE(client_->GetAttr("/d/missing").status().IsNotFound());
  EXPECT_TRUE(client_->Unlink("/d/missing").IsNotFound());
  EXPECT_TRUE(client_->Rmdir("/missing").IsNotFound());
  // ENOTDIR: path component is a file
  EXPECT_EQ(client_->Create("/d/f/sub", 0644).code(),
            ErrorCode::kNotADirectory);
  EXPECT_EQ(client_->Rmdir("/d/f").code(), ErrorCode::kNotADirectory);
  // EISDIR
  EXPECT_EQ(client_->Unlink("/d").code(), ErrorCode::kIsADirectory);
  // ENOTEMPTY
  EXPECT_EQ(client_->Rmdir("/d").code(), ErrorCode::kNotEmpty);

  ASSERT_TRUE(client_->Unlink("/d/f").ok());
  EXPECT_TRUE(client_->Rmdir("/d").ok());
  EXPECT_TRUE(client_->GetAttr("/d").status().IsNotFound());
}

TEST_P(CfsVariantTest, UnlinkDecrementsParentAndRemovesAttr) {
  ASSERT_TRUE(client_->Mkdir("/u", 0755).ok());
  ASSERT_TRUE(client_->Create("/u/a", 0644).ok());
  ASSERT_TRUE(client_->Create("/u/b", 0644).ok());
  auto before = client_->GetAttr("/u");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->children, 2);

  ASSERT_TRUE(client_->Unlink("/u/a").ok());
  auto after = client_->GetAttr("/u");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->children, 1);
  EXPECT_TRUE(client_->GetAttr("/u/a").status().IsNotFound());

  // The attribute record must eventually disappear from its tier.
  fs_->filestore()->DrainAsync();
}

TEST_P(CfsVariantTest, SetAttrChmodChownTruncate) {
  ASSERT_TRUE(client_->Create("/file", 0644).ok());
  SetAttrSpec spec;
  spec.mode = 0600;
  spec.uid = 7;
  spec.gid = 8;
  ASSERT_TRUE(client_->SetAttr("/file", spec).ok());
  auto info = client_->GetAttr("/file");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->mode, 0600u);
  EXPECT_EQ(info->uid, 7u);
  EXPECT_EQ(info->gid, 8u);

  SetAttrSpec trunc;
  trunc.size = 0;
  ASSERT_TRUE(client_->SetAttr("/file", trunc).ok());
  // Directory setattr goes to TafDB in every variant.
  ASSERT_TRUE(client_->Mkdir("/sd", 0700).ok());
  SetAttrSpec dmode;
  dmode.mode = 0711;
  ASSERT_TRUE(client_->SetAttr("/sd", dmode).ok());
  auto dinfo = client_->GetAttr("/sd");
  ASSERT_TRUE(dinfo.ok());
  EXPECT_EQ(dinfo->mode, 0711u);
}

TEST_P(CfsVariantTest, ReadDirListsSorted) {
  ASSERT_TRUE(client_->Mkdir("/list", 0755).ok());
  for (const char* name : {"zeta", "alpha", "mid"}) {
    ASSERT_TRUE(client_->Create(std::string("/list/") + name, 0644).ok());
  }
  ASSERT_TRUE(client_->Mkdir("/list/subdir", 0755).ok());
  auto entries = client_->ReadDir("/list");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 4u);
  EXPECT_EQ((*entries)[0].name, "alpha");
  EXPECT_EQ((*entries)[1].name, "mid");
  EXPECT_EQ((*entries)[2].name, "subdir");
  EXPECT_EQ((*entries)[2].type, InodeType::kDirectory);
  EXPECT_EQ((*entries)[3].name, "zeta");
  // readdir on a file is ENOTDIR.
  EXPECT_EQ(client_->ReadDir("/list/alpha").status().code(),
            ErrorCode::kNotADirectory);
}

TEST_P(CfsVariantTest, DeepPathsResolve) {
  std::string path;
  for (int depth = 0; depth < 8; depth++) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(client_->Mkdir(path, 0755).ok()) << path;
  }
  ASSERT_TRUE(client_->Create(path + "/leaf", 0644).ok());
  auto info = client_->GetAttr(path + "/leaf");
  ASSERT_TRUE(info.ok());
  // A second client with a cold cache resolves the same path.
  auto other = fs_->NewClient();
  auto other_info = other->GetAttr(path + "/leaf");
  ASSERT_TRUE(other_info.ok());
  EXPECT_EQ(other_info->id, info->id);
}

TEST_P(CfsVariantTest, RenameIntraDirFile) {
  ASSERT_TRUE(client_->Mkdir("/r", 0755).ok());
  ASSERT_TRUE(client_->Create("/r/old", 0644).ok());
  auto old_info = client_->GetAttr("/r/old");
  ASSERT_TRUE(old_info.ok());

  ASSERT_TRUE(client_->Rename("/r/old", "/r/new").ok());
  EXPECT_TRUE(client_->GetAttr("/r/old").status().IsNotFound());
  auto new_info = client_->GetAttr("/r/new");
  ASSERT_TRUE(new_info.ok());
  EXPECT_EQ(new_info->id, old_info->id);
  auto parent = client_->GetAttr("/r");
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->children, 1);
}

TEST_P(CfsVariantTest, RenameOverwritesExistingFile) {
  ASSERT_TRUE(client_->Mkdir("/r2", 0755).ok());
  ASSERT_TRUE(client_->Create("/r2/src", 0644).ok());
  ASSERT_TRUE(client_->Create("/r2/dst", 0644).ok());
  auto src_info = client_->GetAttr("/r2/src");
  ASSERT_TRUE(src_info.ok());

  ASSERT_TRUE(client_->Rename("/r2/src", "/r2/dst").ok());
  auto parent = client_->GetAttr("/r2");
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->children, 1);
  auto dst = client_->GetAttr("/r2/dst");
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(dst->id, src_info->id);
  fs_->filestore()->DrainAsync();
}

TEST_P(CfsVariantTest, RenameCrossDirectory) {
  ASSERT_TRUE(client_->Mkdir("/a", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/b", 0755).ok());
  ASSERT_TRUE(client_->Create("/a/f", 0644).ok());
  ASSERT_TRUE(client_->Rename("/a/f", "/b/g").ok());
  EXPECT_TRUE(client_->GetAttr("/a/f").status().IsNotFound());
  EXPECT_TRUE(client_->GetAttr("/b/g").ok());
  auto a = client_->GetAttr("/a");
  auto b = client_->GetAttr("/b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->children, 0);
  EXPECT_EQ(b->children, 1);
}

TEST_P(CfsVariantTest, RenameDirectoryMove) {
  ASSERT_TRUE(client_->Mkdir("/p1", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/p2", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/p1/child", 0755).ok());
  ASSERT_TRUE(client_->Create("/p1/child/f", 0644).ok());

  ASSERT_TRUE(client_->Rename("/p1/child", "/p2/moved").ok());
  EXPECT_TRUE(client_->GetAttr("/p1/child").status().IsNotFound());
  auto moved = client_->GetAttr("/p2/moved");
  ASSERT_TRUE(moved.ok());
  EXPECT_TRUE(moved->IsDirectory());
  // Contents move with the directory (ids, not paths, anchor children).
  EXPECT_TRUE(client_->GetAttr("/p2/moved/f").ok());
}

TEST_P(CfsVariantTest, RenameRejectsOrphanLoop) {
  ASSERT_TRUE(client_->Mkdir("/loop", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/loop/inner", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/loop/inner/deep", 0755).ok());
  // Renaming an ancestor into its own subtree must fail.
  Status st = client_->Rename("/loop", "/loop/inner/deep/bad");
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  // And the hierarchy is intact.
  EXPECT_TRUE(client_->GetAttr("/loop/inner/deep").ok());
}

TEST_P(CfsVariantTest, RenameDirOverNonEmptyDirFails) {
  ASSERT_TRUE(client_->Mkdir("/x", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/y", 0755).ok());
  ASSERT_TRUE(client_->Create("/y/occupied", 0644).ok());
  Status st = client_->Rename("/x", "/y");
  EXPECT_EQ(st.code(), ErrorCode::kNotEmpty);
  // Over an empty directory succeeds.
  ASSERT_TRUE(client_->Mkdir("/z", 0755).ok());
  ASSERT_TRUE(client_->Unlink("/y/occupied").ok());
  EXPECT_TRUE(client_->Rename("/x", "/y").ok());
  (void)st;
}

TEST_P(CfsVariantTest, SymlinkAndReadlink) {
  ASSERT_TRUE(client_->Create("/target", 0644).ok());
  ASSERT_TRUE(client_->Symlink("/target", "/lnk").ok());
  auto target = client_->ReadLink("/lnk");
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "/target");
  auto info = client_->Lookup("/lnk");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->type, InodeType::kSymlink);
  EXPECT_EQ(client_->ReadLink("/target").status().code(),
            ErrorCode::kInvalidArgument);
  ASSERT_TRUE(client_->Unlink("/lnk").ok());
  EXPECT_TRUE(client_->GetAttr("/target").ok());
}

TEST_P(CfsVariantTest, HardLinkBumpsLinkCount) {
  ASSERT_TRUE(client_->Create("/orig", 0644).ok());
  ASSERT_TRUE(client_->Link("/orig", "/alias").ok());
  auto orig = client_->GetAttr("/orig");
  auto alias = client_->GetAttr("/alias");
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(orig->id, alias->id);
  EXPECT_EQ(orig->links, 2);
  // Hard links to directories are refused.
  ASSERT_TRUE(client_->Mkdir("/hd", 0755).ok());
  EXPECT_EQ(client_->Link("/hd", "/hd2").code(),
            ErrorCode::kPermissionDenied);
}

TEST_P(CfsVariantTest, WriteAndReadBack) {
  ASSERT_TRUE(client_->Create("/data", 0644).ok());
  ASSERT_TRUE(client_->Write("/data", 0, "hello, filestore").ok());
  auto read = client_->Read("/data", 0, 16);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello, filestore");
  auto partial = client_->Read("/data", 7, 9);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(*partial, "filestore");
  auto info = client_->GetAttr("/data");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 16);
}

TEST_P(CfsVariantTest, ConcurrentCreatesInSharedDirectory) {
  ASSERT_TRUE(client_->Mkdir("/shared", 0755).ok());
  constexpr int kThreads = 6;
  constexpr int kPerThread = 15;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<MetadataClient>> clients;
  for (int t = 0; t < kThreads; t++) {
    clients.push_back(fs_->NewClient());
  }
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string path =
            "/shared/t" + std::to_string(t) + "_" + std::to_string(i);
        if (clients[t]->Create(path, 0644).ok()) ok++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  auto parent = client_->GetAttr("/shared");
  ASSERT_TRUE(parent.ok());
  // No lost updates on the shared children counter.
  EXPECT_EQ(parent->children, kThreads * kPerThread);
  auto entries = client_->ReadDir("/shared");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<size_t>(kThreads * kPerThread));
}

INSTANTIATE_TEST_SUITE_P(AllVariants, CfsVariantTest,
                         ::testing::Values(0u, 1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<size_t>& param) {
                           return kVariants[param.param].name;
                         });

// ---------------------------------------------------------------------------
// Full-CFS-specific behaviour: fast path routing, GC crash repair.

class CfsFullTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CfsOptions options = SmallCluster(CfsFullOptions());
    options.start_gc = false;  // tests drive GC passes explicitly
    fs_ = std::make_unique<Cfs>(options);
    ASSERT_TRUE(fs_->Start().ok());
    client_ = fs_->NewClient();
  }
  void TearDown() override {
    client_.reset();
    fs_->Stop();
  }

  std::unique_ptr<Cfs> fs_;
  std::unique_ptr<MetadataClient> client_;
};

TEST_F(CfsFullTest, IntraDirRenameSkipsRenamer) {
  ASSERT_TRUE(client_->Mkdir("/fp", 0755).ok());
  ASSERT_TRUE(client_->Create("/fp/a", 0644).ok());
  auto before = fs_->renamer()->stats();
  ASSERT_TRUE(client_->Rename("/fp/a", "/fp/b").ok());
  auto after = fs_->renamer()->stats();
  EXPECT_EQ(after.committed, before.committed);  // fast path: no coordinator

  // Cross-directory rename does reach the Renamer.
  ASSERT_TRUE(client_->Mkdir("/fp2", 0755).ok());
  ASSERT_TRUE(client_->Rename("/fp/b", "/fp2/c").ok());
  EXPECT_EQ(fs_->renamer()->stats().committed, before.committed + 1);
}

TEST_F(CfsFullTest, GcReclaimsOrphanedCreateAttr) {
  // Simulate a client that crashed between create's two steps (Fig 7): the
  // FileStore attribute exists, the TafDB link was never written.
  InodeId orphan = fs_->tafdb()->id_allocator()->Next();
  InodeRecord attr = InodeRecord::MakeFileAttr(orphan, 1, 0644, 0, 0);
  ASSERT_TRUE(fs_->filestore()->NodeFor(orphan)->PutAttr(attr, "").ok());
  ASSERT_TRUE(fs_->filestore()->NodeFor(orphan)->GetAttr(orphan).ok());

  // First pass ingests the event; after the grace period a later pass
  // reclaims the unpaired attribute.
  fs_->gc()->RunOnceForTest();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  fs_->gc()->RunOnceForTest();

  EXPECT_TRUE(
      fs_->filestore()->NodeFor(orphan)->GetAttr(orphan).status().IsNotFound());
  EXPECT_GE(fs_->gc()->stats().orphan_attrs_deleted, 1u);
}

TEST_F(CfsFullTest, GcDoesNotReclaimLinkedAttr) {
  ASSERT_TRUE(client_->Create("/kept", 0644).ok());
  auto info = client_->GetAttr("/kept");
  ASSERT_TRUE(info.ok());
  fs_->gc()->RunOnceForTest();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  fs_->gc()->RunOnceForTest();
  // A properly linked file's attribute must survive collection.
  EXPECT_TRUE(client_->GetAttr("/kept").ok());
}

TEST_F(CfsFullTest, GcFixesMissedUnlinkCleanup) {
  ASSERT_TRUE(client_->Create("/doomed", 0644).ok());
  auto info = client_->GetAttr("/doomed");
  ASSERT_TRUE(info.ok());
  InodeId id = info->id;

  // Simulate the client crashing right after the TafDB unlink, before the
  // async FileStore cleanup: execute only the namespace half.
  DeleteSpec del;
  del.key = InodeKey::IdRecord(kRootInode, "doomed");
  del.forbid_directory = true;
  del.hint_id = id;
  del.expect_attr_cleanup = true;
  UpdateSpec dec;
  dec.key = InodeKey::AttrRecord(kRootInode);
  dec.children_delta = -1;
  auto op = PrimitiveOp::DeleteWithUpdate(del, dec);
  ASSERT_TRUE(fs_->tafdb()->ShardFor(kRootInode)->ExecutePrimitive(op).status.ok());
  ASSERT_TRUE(fs_->filestore()->NodeFor(id)->GetAttr(id).ok());

  fs_->gc()->RunOnceForTest();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  fs_->gc()->RunOnceForTest();

  EXPECT_TRUE(fs_->filestore()->NodeFor(id)->GetAttr(id).status().IsNotFound());
  EXPECT_GE(fs_->gc()->stats().missed_deletes_fixed, 1u);
}

TEST_F(CfsFullTest, OnDemandGcRepairsDanglingRmdir) {
  ASSERT_TRUE(client_->Mkdir("/ghost", 0755).ok());
  auto info = client_->GetAttr("/ghost");
  ASSERT_TRUE(info.ok());

  // Simulate a crash between rmdir's two steps: the directory's attribute
  // record was retired, the dentry under / remains.
  PrimitiveOp retire;
  DeleteSpec del_attr;
  del_attr.key = InodeKey::AttrRecord(info->id);
  retire.deletes.push_back(del_attr);
  ASSERT_TRUE(
      fs_->tafdb()->ShardFor(info->id)->ExecutePrimitive(retire).status.ok());

  // A fresh client (cold cache) hits the dangling dentry; getattr fails and
  // files an on-demand GC report.
  auto other = fs_->NewClient();
  EXPECT_TRUE(other->GetAttr("/ghost").status().IsNotFound());
  fs_->gc()->RunOnceForTest();

  // The dentry is gone and the parent's fanout is consistent again.
  auto entries = client_->ReadDir("/");
  ASSERT_TRUE(entries.ok());
  for (const auto& e : *entries) {
    EXPECT_NE(e.name, "ghost");
  }
  EXPECT_GE(fs_->gc()->stats().dangling_entries_removed, 1u);
}

TEST_F(CfsFullTest, StaleClientCacheHealsAfterExternalChange) {
  ASSERT_TRUE(client_->Mkdir("/c", 0755).ok());
  ASSERT_TRUE(client_->Create("/c/f", 0644).ok());
  ASSERT_TRUE(client_->GetAttr("/c/f").ok());  // warm the cache

  // Another client removes the file.
  auto other = fs_->NewClient();
  ASSERT_TRUE(other->Unlink("/c/f").ok());

  // Wait out the asynchronous FileStore attribute removal so the stale
  // cached dentry is guaranteed to point at a dead attribute record.
  fs_->filestore()->DrainAsync();

  // The first client's cached dentry is stale; the operation must still
  // converge to ENOENT (attr fetch fails, cache evicts).
  EXPECT_TRUE(client_->GetAttr("/c/f").status().IsNotFound());
  EXPECT_TRUE(client_->GetAttr("/c/f").status().IsNotFound());
}

TEST_F(CfsFullTest, HintIdGuardsAbaOnUnlink) {
  ASSERT_TRUE(client_->Mkdir("/aba", 0755).ok());
  ASSERT_TRUE(client_->Create("/aba/f", 0644).ok());
  auto first = client_->GetAttr("/aba/f");
  ASSERT_TRUE(first.ok());

  // Another client replaces the file (unlink + create with same name).
  auto other = fs_->NewClient();
  ASSERT_TRUE(other->Unlink("/aba/f").ok());
  ASSERT_TRUE(other->Create("/aba/f", 0644).ok());

  // First client unlinks with its stale cached id: the hint-id guard makes
  // the primitive refuse to delete the replacement.
  Status st = client_->Unlink("/aba/f");
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_TRUE(other->GetAttr("/aba/f").ok());
}

TEST_F(CfsFullTest, ProxyModeAddsAHop) {
  CfsOptions proxy_options = SmallCluster(CfsPrimitivesOptions());
  Cfs proxy_fs(proxy_options);
  ASSERT_TRUE(proxy_fs.Start().ok());
  auto proxy_client = proxy_fs.NewClient();
  ASSERT_TRUE(proxy_client->Mkdir("/p", 0755).ok());

  // getattr through the proxy: client->proxy hop + proxy->tafdb hop(s).
  SimNet::ResetThreadHops();
  ASSERT_TRUE(proxy_client->GetAttr("/p").ok());
  uint64_t proxy_hops = SimNet::ThreadHops();

  ASSERT_TRUE(client_->Mkdir("/p", 0755).ok());
  ASSERT_TRUE(client_->GetAttr("/p").ok());  // warm cache
  SimNet::ResetThreadHops();
  ASSERT_TRUE(client_->GetAttr("/p").ok());
  uint64_t direct_hops = SimNet::ThreadHops();

  EXPECT_GT(proxy_hops, direct_hops);
  proxy_fs.Stop();
}

// ---------------------------------------------------------------------------
// Dentry-cache coherence across engines. (The "Coherence" infix is load-
// bearing: scripts/check.sh runs these tests again under TSan.)

TEST_F(CfsFullTest, CoherenceDirectoryRenameInvalidatesCachedSubtree) {
  ASSERT_TRUE(client_->Mkdir("/pd", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/pd/sub", 0755).ok());
  ASSERT_TRUE(client_->Create("/pd/sub/f", 0644).ok());
  ASSERT_TRUE(client_->GetAttr("/pd/sub/f").ok());  // warm the whole chain

  // Cross-directory directory move: normal path, prefix invalidation.
  ASSERT_TRUE(client_->Rename("/pd/sub", "/q").ok());

  // The old location must be gone immediately on the renaming engine...
  EXPECT_TRUE(client_->GetAttr("/pd/sub/f").status().IsNotFound());
  EXPECT_TRUE(client_->GetAttr("/q/f").ok());

  // ...and recreating the directory must not resurrect the cached child
  // (the pre-cache-rewrite engine kept "/pd/sub/f" alive here).
  ASSERT_TRUE(client_->Mkdir("/pd/sub", 0755).ok());
  EXPECT_TRUE(client_->GetAttr("/pd/sub/f").status().IsNotFound());
  EXPECT_TRUE(client_->GetAttr("/q/f").ok());
}

// Engine A renames; engine B (with a warm cache) must observe the new
// location and ENOENT at the old one with zero staleness, in both client
// resolving modes.
class CfsCoherenceTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    CfsOptions options =
        SmallCluster(GetParam() ? CfsFullOptions() : CfsPrimitivesOptions());
    fs_ = std::make_unique<Cfs>(options);
    ASSERT_TRUE(fs_->Start().ok());
    a_ = fs_->NewClient();
    b_ = fs_->NewClient();
  }
  void TearDown() override {
    a_.reset();
    b_.reset();
    fs_->Stop();
  }

  std::unique_ptr<Cfs> fs_;
  std::unique_ptr<MetadataClient> a_;
  std::unique_ptr<MetadataClient> b_;
};

TEST_P(CfsCoherenceTest, RenameVisibleAcrossEngines) {
  ASSERT_TRUE(a_->Mkdir("/a", 0755).ok());
  ASSERT_TRUE(a_->Mkdir("/c", 0755).ok());
  ASSERT_TRUE(a_->Create("/a/b", 0644).ok());
  ASSERT_TRUE(b_->GetAttr("/a/b").ok());  // warm B's cache

  ASSERT_TRUE(a_->Rename("/a/b", "/c/b").ok());

  // Positive coherence: B sees the new location immediately.
  EXPECT_TRUE(b_->GetAttr("/c/b").ok());
  // Negative coherence: B's warm entry for the old path must not serve.
  EXPECT_TRUE(b_->GetAttr("/a/b").status().IsNotFound());
  EXPECT_TRUE(b_->Lookup("/a/b").status().IsNotFound());
}

TEST_P(CfsCoherenceTest, RandomizedRenameLookupInterleavingsZeroStale) {
  constexpr int kFiles = 8;
  constexpr int kRounds = 1000;
  ASSERT_TRUE(a_->Mkdir("/d0", 0755).ok());
  ASSERT_TRUE(a_->Mkdir("/d1", 0755).ok());
  // files[i] tracks which directory currently holds file i.
  int where[kFiles];
  for (int i = 0; i < kFiles; i++) {
    ASSERT_TRUE(a_->Create("/d0/f" + std::to_string(i), 0644).ok());
    where[i] = 0;
    // Warm B on the initial location so its cache has something to go
    // stale.
    ASSERT_TRUE(b_->GetAttr("/d0/f" + std::to_string(i)).ok());
  }

  Rng rng(20260806);
  int stale_reads = 0;
  for (int round = 0; round < kRounds; round++) {
    int i = static_cast<int>(rng.Uniform(kFiles));
    std::string name = "f" + std::to_string(i);
    std::string src = "/d" + std::to_string(where[i]) + "/" + name;
    std::string dst = "/d" + std::to_string(1 - where[i]) + "/" + name;
    ASSERT_TRUE(a_->Rename(src, dst).ok()) << "round " << round;
    where[i] = 1 - where[i];

    // B must observe the move with zero staleness: sometimes it checks the
    // new location, sometimes the old, sometimes a random other file.
    int probe = static_cast<int>(rng.Uniform(kFiles));
    std::string probe_name = "f" + std::to_string(probe);
    std::string at = "/d" + std::to_string(where[probe]) + "/" + probe_name;
    std::string gone =
        "/d" + std::to_string(1 - where[probe]) + "/" + probe_name;
    if (!b_->GetAttr(at).ok()) stale_reads++;
    if (!b_->GetAttr(gone).status().IsNotFound()) stale_reads++;
  }
  EXPECT_EQ(stale_reads, 0);
}

INSTANTIATE_TEST_SUITE_P(ResolvingModes, CfsCoherenceTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param) {
                           return param.param ? "ClientResolving" : "Proxied";
                         });

// Fast-path (intra-directory) renames are not broadcast; coherence there
// comes from the epoch bump plus the receiver's epoch-view TTL. With the
// TTL at 0 every cache hit revalidates, so the heal is immediate and
// deterministic.
TEST(CfsCoherenceEpochTest, FastPathRenameHealsViaEpochRevalidation) {
  CfsOptions options = SmallCluster(CfsFullOptions());
  options.dentry_epoch_ttl_ms = 0;
  Cfs fs(options);
  ASSERT_TRUE(fs.Start().ok());
  auto a = fs.NewClient();
  auto b = fs.NewClient();

  ASSERT_TRUE(a->Mkdir("/d", 0755).ok());
  ASSERT_TRUE(a->Create("/d/x", 0644).ok());
  ASSERT_TRUE(b->GetAttr("/d/x").ok());  // warm B

  // Same-directory file rename: fast path, no Renamer, no broadcast.
  ASSERT_TRUE(a->Rename("/d/x", "/d/y").ok());

  // B's hit on the stale entry revalidates the epoch, sees the bump, and
  // falls through to a fresh read.
  EXPECT_TRUE(b->GetAttr("/d/x").status().IsNotFound());
  EXPECT_TRUE(b->GetAttr("/d/y").ok());

  // Regression: with the TTL at 0 the cache must still SERVE hits — each
  // hit pays one revalidation RPC, it doesn't degrade to a permanent miss.
  Counter* hit_counter =
      MetricsRegistry::Global().GetCounter("dentry_cache.hit");
  uint64_t hits_before = hit_counter->value();
  EXPECT_TRUE(b->GetAttr("/d/y").ok());  // warm entry, unchanged epoch
  EXPECT_GT(hit_counter->value(), hits_before);

  a.reset();
  b.reset();
  fs.Stop();
}

}  // namespace
}  // namespace cfs
