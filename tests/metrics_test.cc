#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/histogram.h"

namespace cfs {
namespace {

void SleepMicros(int64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

// ---------------------------------------------------------------------------
// Registry instruments

TEST(MetricsRegistry, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("ops");
  Counter* b = registry.GetCounter("ops");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("other"));

  Gauge* g = registry.GetGauge("depth");
  EXPECT_EQ(g, registry.GetGauge("depth"));
  LatencyRecorder* h = registry.GetHistogram("lat");
  EXPECT_EQ(h, registry.GetHistogram("lat"));

  // The three namespaces are independent.
  (void)registry.GetGauge("ops");
  EXPECT_EQ(a, registry.GetCounter("ops"));
}

TEST(MetricsRegistry, ConcurrentFindOrCreateAndAdd) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIters; i++) {
        registry.GetCounter("shared")->Add();
        registry.GetHistogram("lat")->Record(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.GetCounter("shared")->value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.GetHistogram("lat")->Snapshot().count(),
            static_cast<int64_t>(kThreads) * kIters);
}

TEST(MetricsRegistry, DumpJsonShapeAndEscaping) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(3);
  registry.GetGauge("b.level")->Set(-7);
  registry.GetHistogram("c.lat")->Record(100);
  uint64_t handle = registry.RegisterProbe("probe\"x", [] {
    return std::vector<std::pair<std::string, int64_t>>{{"k", 42}};
  });

  std::string json = registry.DumpJson();
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.level\":-7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c.lat\":{\"count\":1"), std::string::npos) << json;
  // Quote in the probe name must be escaped.
  EXPECT_NE(json.find("\"probe\\\"x\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"k\":42"), std::string::npos) << json;

  registry.UnregisterProbe(handle);
  EXPECT_EQ(registry.DumpJson().find("42"), std::string::npos);

  std::string text = registry.DumpText();
  EXPECT_NE(text.find("a.count 3"), std::string::npos) << text;
}

TEST(MetricsRegistry, DumpJsonEscapesBackslashesAndControlChars) {
  MetricsRegistry registry;
  // Instrument and probe names are caller-chosen strings; a backslash or
  // an embedded quote must come out as valid JSON, not as a syntax error
  // for whoever scrapes the dump.
  registry.GetCounter("path\\with\\backslash")->Add(1);
  registry.GetGauge("quote\"gauge")->Set(2);
  uint64_t handle = registry.RegisterProbe("bs\\probe", [] {
    return std::vector<std::pair<std::string, int64_t>>{{"k\\q\"", 7}};
  });

  std::string json = registry.DumpJson();
  EXPECT_NE(json.find("\"path\\\\with\\\\backslash\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"quote\\\"gauge\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bs\\\\probe\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"k\\\\q\\\"\":7"), std::string::npos) << json;
  // No raw (unescaped) backslash-sequence survives: every '\' in the
  // output is itself escaped or starts an escape.
  for (size_t i = 0; i + 1 < json.size(); i++) {
    if (json[i] == '\\') {
      char next = json[i + 1];
      EXPECT_TRUE(next == '\\' || next == '"' || next == 'u' || next == 'n' ||
                  next == 't' || next == 'r')
          << "bad escape at " << i << " in " << json;
      i++;  // skip the escaped char
    }
  }
  registry.UnregisterProbe(handle);
}

TEST(MetricsRegistry, ProbeRegistrationRacesDumpJson) {
  // DumpJson snapshots the probe list, then runs probes unlocked (so a
  // probe may take subsystem locks that rank below the registry's). A
  // probe registered or unregistered mid-dump may or may not appear in
  // that dump — the contract is "may miss", never a crash, a deadlock,
  // or a torn dump. Hammer the race under TSan.
  MetricsRegistry registry;
  registry.GetCounter("steady")->Add(1);
  std::atomic<bool> stop{false};

  std::thread churn([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::string name = "churn" + std::to_string(i++ % 7);
      uint64_t h = registry.RegisterProbe(name, [] {
        return std::vector<std::pair<std::string, int64_t>>{{"v", 1}};
      });
      registry.UnregisterProbe(h);
    }
  });

  for (int i = 0; i < 200; i++) {
    std::string json = registry.DumpJson();
    // The steady instrument is always present; dumps stay well-formed at
    // the ends regardless of how the probe churn interleaves.
    EXPECT_NE(json.find("\"steady\":1"), std::string::npos);
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
  }
  stop.store(true);
  churn.join();

  // After the churn thread has quiesced, a freshly registered probe is
  // guaranteed visible (may-miss only applies to concurrent dumps).
  uint64_t h = registry.RegisterProbe("settled", [] {
    return std::vector<std::pair<std::string, int64_t>>{{"present", 5}};
  });
  EXPECT_NE(registry.DumpJson().find("\"present\":5"), std::string::npos);
  registry.UnregisterProbe(h);
}

TEST(MetricsRegistry, ResetAllZeroesInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(5);
  registry.GetGauge("g")->Set(9);
  registry.GetHistogram("h")->Record(10);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("c")->value(), 0u);
  EXPECT_EQ(registry.GetGauge("g")->value(), 0);
  EXPECT_EQ(registry.GetHistogram("h")->Snapshot().count(), 0);
}

// ---------------------------------------------------------------------------
// Histogram hardening

TEST(HistogramHardening, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Percentile(99.9), 0);
  EXPECT_EQ(h.P50(), 0);
}

TEST(HistogramHardening, PercentileClampsOutOfRangeP) {
  Histogram h;
  for (int i = 1; i <= 100; i++) h.Record(i);
  EXPECT_EQ(h.Percentile(-10), h.Percentile(0));
  EXPECT_EQ(h.Percentile(250), h.Percentile(100));
  EXPECT_GE(h.Percentile(100), h.Percentile(0));
}

TEST(HistogramHardening, StripedConcurrentRecordAndAggregate) {
  StripedHistogram striped(8);
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::atomic<bool> stop{false};
  // Aggregate concurrently with recording: must not crash or misbehave.
  std::thread reader([&] {
    while (!stop.load()) {
      Histogram snap = striped.Aggregate();
      EXPECT_GE(snap.count(), 0);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&striped, t] {
      for (int i = 0; i < kIters; i++) striped.Record(t, i % 100);
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(striped.Aggregate().count(),
            static_cast<int64_t>(kThreads) * kIters);
}

TEST(HistogramHardening, StripedMergeFoldsHistogramIn) {
  StripedHistogram striped(4);
  striped.Record(0, 10);
  Histogram other;
  other.Record(20);
  other.Record(30);
  striped.Merge(other);
  EXPECT_EQ(striped.Aggregate().count(), 3);
}

// ---------------------------------------------------------------------------
// OpTrace / TraceSpan

TEST(OpTrace, SpanAccumulatesIntoCurrentOp) {
  OpTrace::Begin();
  {
    TraceSpan span(Phase::kResolve);
    SleepMicros(2000);
  }
  OpTraceData trace = OpTrace::Finish();
  EXPECT_EQ(trace.PhaseCount(Phase::kResolve), 1u);
  EXPECT_GE(trace.PhaseUs(Phase::kResolve), 1000);
  EXPECT_GE(trace.total_us, trace.PhaseUs(Phase::kResolve));
  EXPECT_EQ(trace.PhaseCount(Phase::kLockWait), 0u);
}

TEST(OpTrace, NestedSamePhaseSpanCountsOnce) {
  OpTrace::Begin();
  {
    TraceSpan outer(Phase::kResolve);
    {
      TraceSpan inner(Phase::kResolve);  // recursion: must not double count
      SleepMicros(1500);
    }
    // A manual stamp under an open same-phase span is also suppressed.
    OpTrace::AddPhase(Phase::kResolve, 1000000);
  }
  OpTraceData trace = OpTrace::Finish();
  EXPECT_EQ(trace.PhaseCount(Phase::kResolve), 1u);
  EXPECT_LT(trace.PhaseUs(Phase::kResolve), 500000);
}

TEST(OpTrace, DifferentPhasesNestIndependently) {
  OpTrace::Begin();
  {
    TraceSpan exec(Phase::kShardExec);
    TraceSpan wal(Phase::kWalFsync);
    SleepMicros(1000);
  }
  OpTraceData trace = OpTrace::Finish();
  EXPECT_EQ(trace.PhaseCount(Phase::kShardExec), 1u);
  EXPECT_EQ(trace.PhaseCount(Phase::kWalFsync), 1u);
}

TEST(OpTrace, AccumulatorsWorkOutsideBrackets) {
  // Legacy accessors (LockManager::ThreadWaitMicros delegation) rely on the
  // accumulators being live without a Begin/Finish bracket.
  OpTrace::ClearPhase(Phase::kLockWait);
  OpTrace::AddPhase(Phase::kLockWait, 123);
  EXPECT_EQ(OpTrace::PhaseUs(Phase::kLockWait), 123);
  OpTrace::AddPhase(Phase::kLockWait, 7);
  EXPECT_EQ(OpTrace::PhaseUs(Phase::kLockWait), 130);
  OpTrace::ClearPhase(Phase::kLockWait);
  EXPECT_EQ(OpTrace::PhaseUs(Phase::kLockWait), 0);
}

TEST(OpTrace, BeginZeroesLeftoverState) {
  OpTrace::AddPhase(Phase::kRpc, 999);
  OpTrace::Begin();
  OpTraceData trace = OpTrace::Finish();
  EXPECT_EQ(trace.PhaseUs(Phase::kRpc), 0);
  EXPECT_EQ(trace.PhaseCount(Phase::kRpc), 0u);
}

// ---------------------------------------------------------------------------
// PhaseBreakdown

TEST(PhaseBreakdown, AddMergeShareAndPublish) {
  OpTraceData op1;
  op1.us[static_cast<size_t>(Phase::kLockWait)] = 80;
  op1.count[static_cast<size_t>(Phase::kLockWait)] = 2;
  op1.total_us = 100;

  OpTraceData op2;
  op2.us[static_cast<size_t>(Phase::kLockWait)] = 20;
  op2.count[static_cast<size_t>(Phase::kLockWait)] = 1;
  op2.total_us = 100;

  PhaseBreakdown a;
  a.Add(op1);
  PhaseBreakdown b;
  b.Add(op2);
  a.Merge(b);

  EXPECT_EQ(a.ops, 2u);
  EXPECT_EQ(a.total_us, 200);
  EXPECT_EQ(a.PhaseUs(Phase::kLockWait), 100);
  EXPECT_DOUBLE_EQ(a.Share(Phase::kLockWait), 0.5);
  EXPECT_DOUBLE_EQ(a.AvgPhaseUs(Phase::kLockWait), 50.0);
  EXPECT_DOUBLE_EQ(a.AvgTotalUs(), 100.0);
  EXPECT_DOUBLE_EQ(a.Share(Phase::kRenamer), 0.0);

  MetricsRegistry registry;
  a.PublishTo(registry, "test.create");
  EXPECT_EQ(registry.GetCounter("trace.test.create.lock_wait.us")->value(),
            100u);
  EXPECT_EQ(registry.GetCounter("trace.test.create.lock_wait.count")->value(),
            3u);
  EXPECT_EQ(registry.GetCounter("trace.test.create.ops")->value(), 2u);
  EXPECT_EQ(registry.GetGauge("trace.test.create.lock_share_pct")->value(),
            50);
}

TEST(PhaseBreakdown, EmptyBreakdownIsSafe) {
  PhaseBreakdown empty;
  EXPECT_DOUBLE_EQ(empty.Share(Phase::kLockWait), 0.0);
  EXPECT_DOUBLE_EQ(empty.AvgTotalUs(), 0.0);
  EXPECT_DOUBLE_EQ(empty.AvgPhaseUs(Phase::kResolve), 0.0);
}

}  // namespace
}  // namespace cfs
