// Raft tests: election, replication, group commit, fault tolerance,
// restart recovery, and linearizable apply order.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>

#include "src/raft/raft.h"

namespace cfs {
namespace {

// State machine that records applied commands.
class RecordingSm : public StateMachine {
 public:
  std::string Apply(LogIndex index, std::string_view command) override {
    std::lock_guard<std::mutex> lock(mu_);
    applied_.emplace_back(index, std::string(command));
    return "applied:" + std::string(command);
  }

  std::vector<std::pair<LogIndex, std::string>> applied() const {
    std::lock_guard<std::mutex> lock(mu_);
    return applied_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<LogIndex, std::string>> applied_;
};

RaftOptions FastRaft() {
  RaftOptions options;
  options.election_timeout_min_ms = 50;
  options.election_timeout_max_ms = 100;
  options.heartbeat_interval_ms = 20;
  return options;
}

struct Cluster {
  SimNet net;
  std::unique_ptr<RaftGroup> group;
  std::vector<RecordingSm*> sms;

  explicit Cluster(size_t n = 3) {
    std::vector<uint32_t> servers;
    for (size_t i = 0; i < n; i++) servers.push_back(static_cast<uint32_t>(i));
    group = std::make_unique<RaftGroup>(
        &net, "test", servers,
        [this](ReplicaId) {
          auto sm = std::make_unique<RecordingSm>();
          sms.push_back(sm.get());
          return sm;
        },
        FastRaft());
  }
};

TEST(RaftTest, ElectsExactlyOneLeader) {
  Cluster c;
  ASSERT_TRUE(c.group->Start().ok());
  auto leader = c.group->WaitForLeader();
  ASSERT_TRUE(leader.ok());
  int leaders = 0;
  for (size_t i = 0; i < c.group->size(); i++) {
    if (c.group->replica(i)->IsLeader()) leaders++;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(RaftTest, ProposeCommitsAndReturnsApplyResult) {
  Cluster c;
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  auto result = c.group->Propose("hello");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "applied:hello");
}

TEST(RaftTest, AllReplicasApplyInSameOrder) {
  Cluster c;
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(c.group->Propose("cmd" + std::to_string(i)).ok());
  }
  // Followers apply on subsequent AppendEntries; give heartbeats a moment.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto reference = c.sms[0]->applied();
  // Only compare the command payloads (no-op barrier entries are skipped by
  // Apply already since they are empty).
  ASSERT_GE(reference.size(), 20u);
  for (size_t r = 1; r < c.sms.size(); r++) {
    EXPECT_EQ(c.sms[r]->applied(), reference) << "replica " << r;
  }
}

TEST(RaftTest, GroupCommitBatchesConcurrentProposals) {
  Cluster c;
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  RaftNode* leader = c.group->Leader();
  ASSERT_NE(leader, nullptr);

  constexpr int kProposals = 200;
  std::vector<std::future<StatusOr<std::string>>> futures;
  futures.reserve(kProposals);
  for (int i = 0; i < kProposals; i++) {
    futures.push_back(leader->Propose("p" + std::to_string(i)));
  }
  for (auto& f : futures) {
    auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.status();
  }
  // All proposals committed; batching means far fewer synced wal appends
  // than proposals is *possible*, but at minimum everything applied once.
  auto applied = c.sms[leader->id()]->applied();
  int count = 0;
  for (const auto& [idx, cmd] : applied) {
    if (cmd.rfind("p", 0) == 0) count++;
  }
  EXPECT_EQ(count, kProposals);
}

TEST(RaftTest, FollowerFailureDoesNotBlockCommit) {
  Cluster c;
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  RaftNode* leader = c.group->Leader();
  // Crash one follower.
  for (size_t i = 0; i < c.group->size(); i++) {
    if (c.group->replica(i) != leader) {
      c.group->CrashReplica(i);
      break;
    }
  }
  auto result = c.group->Propose("still-works");
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST(RaftTest, LeaderFailoverElectsNewLeaderAndServes) {
  Cluster c;
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  ASSERT_TRUE(c.group->Propose("before-failover").ok());

  RaftNode* old_leader = c.group->Leader();
  size_t old_index = 0;
  for (size_t i = 0; i < c.group->size(); i++) {
    if (c.group->replica(i) == old_leader) old_index = i;
  }
  c.group->CrashReplica(old_index);

  auto new_leader = c.group->WaitForLeader(5000);
  ASSERT_TRUE(new_leader.ok());
  EXPECT_NE(*new_leader, old_leader->id());
  auto result = c.group->Propose("after-failover", 10000);
  ASSERT_TRUE(result.ok()) << result.status();
}

TEST(RaftTest, RestartedReplicaCatchesUp) {
  Cluster c;
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(c.group->Propose("pre" + std::to_string(i)).ok());
  }
  // Crash a follower, keep committing, restart it.
  RaftNode* leader = c.group->Leader();
  size_t victim = 0;
  for (size_t i = 0; i < c.group->size(); i++) {
    if (c.group->replica(i) != leader) victim = i;
  }
  c.group->CrashReplica(victim);
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(c.group->Propose("mid" + std::to_string(i), 10000).ok());
  }
  ASSERT_TRUE(c.group->RestartReplica(victim).ok());
  ASSERT_TRUE(c.group->Propose("post", 10000).ok());
  // Give replication a moment to fill the gap.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto applied = c.sms.back()->applied();  // restarted sm appended last
  int post_seen = 0;
  for (const auto& [idx, cmd] : applied) {
    if (cmd == "post") post_seen++;
  }
  EXPECT_EQ(post_seen, 1);
  // The restarted machine must have re-applied the full history.
  int total = 0;
  for (const auto& [idx, cmd] : applied) {
    if (cmd.rfind("pre", 0) == 0 || cmd.rfind("mid", 0) == 0) total++;
  }
  EXPECT_EQ(total, 10);
}

TEST(RaftTest, PartitionedLeaderStepsDown) {
  Cluster c;
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  RaftNode* leader = c.group->Leader();

  // Partition the leader from both followers.
  for (size_t i = 0; i < c.group->size(); i++) {
    if (c.group->replica(i) != leader) {
      c.net.SetPartitioned(leader->net_id(), c.group->replica(i)->net_id(),
                           true);
    }
  }
  // Majority side elects a new leader.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  RaftNode* new_leader = nullptr;
  while (std::chrono::steady_clock::now() < deadline) {
    for (size_t i = 0; i < c.group->size(); i++) {
      RaftNode* n = c.group->replica(i);
      if (n != leader && n->IsLeader()) new_leader = n;
    }
    if (new_leader != nullptr) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_NE(new_leader, nullptr);
  EXPECT_GT(new_leader->CurrentTerm(), leader->CurrentTerm() - 1);

  // Old leader cannot commit.
  auto fut = leader->Propose("lost");
  // Heal; the old leader must step down and the proposal must not be lost
  // silently as success.
  c.net.HealAll();
  auto result = fut.wait_for(std::chrono::seconds(5));
  ASSERT_EQ(result, std::future_status::ready);
  EXPECT_FALSE(fut.get().ok());
}

TEST(RaftTest, ReadBarrierOnlyOnLeader) {
  Cluster c;
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  RaftNode* leader = c.group->Leader();
  EXPECT_TRUE(leader->ReadBarrier().ok());
  for (size_t i = 0; i < c.group->size(); i++) {
    RaftNode* n = c.group->replica(i);
    if (n != leader) {
      EXPECT_EQ(n->ReadBarrier().code(), ErrorCode::kNotLeader);
    }
  }
}

TEST(RaftTest, ReadBarrierAfterFailoverWaitsForCatchUp) {
  Cluster c;
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(c.group->Propose("h" + std::to_string(i)).ok());
  }
  // Kill the leader; once the new leader's read barrier passes, its state
  // machine must hold the full committed history.
  RaftNode* old_leader = c.group->Leader();
  size_t old_index = 0;
  for (size_t i = 0; i < c.group->size(); i++) {
    if (c.group->replica(i) == old_leader) old_index = i;
  }
  c.group->CrashReplica(old_index);
  ASSERT_TRUE(c.group->WaitForLeader(5000).ok());
  RaftNode* new_leader = c.group->Leader();
  ASSERT_NE(new_leader, nullptr);
  ASSERT_TRUE(new_leader->ReadBarrier(5000).ok());
  auto applied = c.sms[new_leader->id()]->applied();
  int history = 0;
  for (const auto& [idx, cmd] : applied) {
    if (cmd.rfind("h", 0) == 0) history++;
  }
  EXPECT_EQ(history, 10);
}

TEST(RaftTest, ReadCommittedSinceExposesCdcFeed) {
  Cluster c;
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  ASSERT_TRUE(c.group->Propose("cdc-1").ok());
  ASSERT_TRUE(c.group->Propose("cdc-2").ok());
  RaftNode* leader = c.group->Leader();
  auto feed = leader->ReadCommittedSince(0, 100);
  std::vector<std::string> commands;
  for (auto& [idx, cmd] : feed) commands.push_back(cmd);
  EXPECT_EQ(commands,
            (std::vector<std::string>{"cdc-1", "cdc-2"}));
}

// State machine with snapshot support: an ordered map of key=value
// commands ("set k v").
class SnapshotSm : public StateMachine {
 public:
  std::string Apply(LogIndex, std::string_view command) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto sep = command.find('=');
    if (sep != std::string_view::npos) {
      state_[std::string(command.substr(0, sep))] =
          std::string(command.substr(sep + 1));
    }
    return "ok";
  }
  std::string Snapshot() override {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto& [k, v] : state_) {
      out += k + "=" + v + "\n";
    }
    return out.empty() ? std::string("\n") : out;
  }
  Status Restore(std::string_view image) override {
    std::lock_guard<std::mutex> lock(mu_);
    state_.clear();
    size_t pos = 0;
    while (pos < image.size()) {
      size_t nl = image.find('\n', pos);
      if (nl == std::string_view::npos) break;
      std::string_view line = image.substr(pos, nl - pos);
      pos = nl + 1;
      auto sep = line.find('=');
      if (sep == std::string_view::npos) continue;
      state_[std::string(line.substr(0, sep))] =
          std::string(line.substr(sep + 1));
    }
    return Status::Ok();
  }
  std::map<std::string, std::string> state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> state_;
};

struct SnapshotCluster {
  SimNet net;
  std::unique_ptr<RaftGroup> group;
  std::vector<SnapshotSm*> sms;

  explicit SnapshotCluster(size_t threshold) {
    RaftOptions options = FastRaft();
    options.snapshot_threshold = threshold;
    group = std::make_unique<RaftGroup>(
        &net, "snap", std::vector<uint32_t>{0, 1, 2},
        [this](ReplicaId) {
          auto sm = std::make_unique<SnapshotSm>();
          sms.push_back(sm.get());
          return sm;
        },
        options);
  }
};

TEST(RaftSnapshotTest, LogCompactsPastThreshold) {
  SnapshotCluster c(/*threshold=*/25);
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(
        c.group->Propose("k" + std::to_string(i % 10) + "=v" +
                         std::to_string(i))
            .ok());
  }
  RaftNode* leader = c.group->Leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GT(leader->SnapshotIndex(), 0u);
  // Data intact after compaction.
  auto state = c.sms[leader->id()]->state();
  EXPECT_EQ(state.size(), 10u);
  EXPECT_EQ(state["k9"], "v99");
}

TEST(RaftSnapshotTest, RestartRecoversFromSnapshotPlusSuffix) {
  SnapshotCluster c(/*threshold=*/20);
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(c.group->Propose("key=" + std::to_string(i)).ok());
  }
  // Restart a follower; it must recover via its persisted snapshot + the
  // WAL suffix and converge to the same state.
  RaftNode* leader = c.group->Leader();
  size_t victim = 0;
  for (size_t i = 0; i < c.group->size(); i++) {
    if (c.group->replica(i) != leader) victim = i;
  }
  c.group->CrashReplica(victim);
  ASSERT_TRUE(c.group->RestartReplica(victim).ok());
  ASSERT_TRUE(c.group->Propose("key=final", 10000).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto state = c.sms.back()->state();  // rebuilt machine
  EXPECT_EQ(state["key"], "final");
}

TEST(RaftSnapshotTest, LaggingFollowerReceivesInstallSnapshot) {
  SnapshotCluster c(/*threshold=*/15);
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  // Crash a follower, commit far past the compaction threshold so the
  // follower's entries are gone from every live log.
  RaftNode* leader = c.group->Leader();
  size_t victim = 0;
  for (size_t i = 0; i < c.group->size(); i++) {
    if (c.group->replica(i) != leader) victim = i;
  }
  c.group->CrashReplica(victim);
  for (int i = 0; i < 80; i++) {
    ASSERT_TRUE(
        c.group->Propose("x" + std::to_string(i % 5) + "=" +
                             std::to_string(i),
                         10000)
            .ok());
  }
  ASSERT_GT(c.group->Leader()->SnapshotIndex(), 0u);
  ASSERT_TRUE(c.group->RestartReplica(victim).ok());
  // The leader ships a snapshot; the follower converges.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(8);
  bool converged = false;
  while (std::chrono::steady_clock::now() < deadline && !converged) {
    auto state = c.sms.back()->state();
    converged = state.size() == 5 && state["x4"] == "79";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(converged);
}

TEST(RaftTest, ConcurrentProposersAllSucceed) {
  Cluster c;
  ASSERT_TRUE(c.group->Start().ok());
  ASSERT_TRUE(c.group->WaitForLeader().ok());
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&c, &ok_count, t] {
      for (int i = 0; i < 25; i++) {
        auto result =
            c.group->Propose("t" + std::to_string(t) + "-" + std::to_string(i));
        if (result.ok()) ok_count++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok_count.load(), 200);
}

}  // namespace
}  // namespace cfs
