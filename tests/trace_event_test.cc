// Unit tests for the causal-tracing layer (src/common/trace_event.h):
// sampling policy (head + tail), bounded stores, ring wrap accounting,
// span-tree structure, node attribution through SimNet, the Perfetto
// export, and the span-vs-accumulator phase agreement the Fig 13
// cross-check relies on.
//
// All tests drive the process-wide TraceCollector::Global(). Head
// sampling counts ops per THREAD, so tests needing a deterministic
// sample position run their workload in a fresh std::thread.

#include "src/common/trace_event.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/net/simnet.h"

namespace cfs {
namespace trace {
namespace {

void SleepMicros(int64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

// Enables tracing with tail capture off unless asked for; every test
// leaves the collector disabled and empty for the next one.
class TraceEventTest : public ::testing::Test {
 protected:
  void TearDown() override { Disable(); }

  static void Enable(uint32_t sample_every, int64_t slow_us = 0,
                     size_t ring_capacity = 4096, size_t max_slow_ops = 64) {
    TraceOptions options;
    options.enabled = true;
    options.sample_every = sample_every;
    options.slow_op_threshold_us = slow_us;
    options.ring_capacity = ring_capacity;
    options.max_slow_ops = max_slow_ops;
    TraceCollector::Global().Configure(options);
    TraceCollector::Global().Reset();
  }

  static void Disable() {
    TraceOptions off;
    off.enabled = false;
    TraceCollector::Global().Configure(off);
    TraceCollector::Global().Reset();
  }

  // Runs `fn` on a brand-new thread (fresh per-thread op counter and
  // ring) and joins it.
  template <typename Fn>
  static void OnFreshThread(Fn fn) {
    std::thread t(fn);
    t.join();
  }
};

TEST_F(TraceEventTest, DisabledLayerIsInert) {
  Disable();
  EXPECT_FALSE(Active());
  OnFreshThread([] {
    BeginOp("ignored");
    EXPECT_FALSE(Active());
    EXPECT_EQ(CurrentTraceId(), 0u);
    {
      ScopedSpan span(Category::kExec, "nothing");
      Instant(Category::kCache, "nothing");
    }
    FinishOp(123456);
  });
  TraceCollector::Stats stats = TraceCollector::Global().stats();
  EXPECT_EQ(stats.ops_seen, 0u);
  EXPECT_EQ(stats.ops_retained, 0u);
  EXPECT_TRUE(TraceCollector::Global().SnapshotRetained().empty());
  EXPECT_TRUE(TraceCollector::Global().SnapshotSlowOps().empty());
}

TEST_F(TraceEventTest, BothTriggersOffRecordsNothing) {
  // "Enabled with sampling disabled" must cost the same as disabled: no
  // retention trigger is armed, so BeginOp refuses to activate and spans
  // stay one-boolean no-ops (the bench_compare.sh tracing-tax mode).
  Enable(/*sample_every=*/0, /*slow_us=*/0);
  OnFreshThread([] {
    BeginOp("never");
    EXPECT_FALSE(Active());
    { ScopedSpan span(Category::kExec, "nothing"); }
    FinishOp(999999);
  });
  EXPECT_EQ(TraceCollector::Global().stats().ops_seen, 0u);
  EXPECT_TRUE(TraceCollector::Global().SnapshotRetained().empty());
  EXPECT_TRUE(TraceCollector::Global().SnapshotSlowOps().empty());
}

TEST_F(TraceEventTest, HeadSamplingRetainsEveryNthOpPerThread) {
  Enable(/*sample_every=*/2);
  OnFreshThread([] {
    for (int i = 0; i < 5; i++) {
      BeginOp(("op" + std::to_string(i)).c_str());
      EXPECT_TRUE(Active());
      EXPECT_NE(CurrentTraceId(), 0u);
      FinishOp(10);
    }
  });
  // Ops 0, 2, 4 are the 1st, 3rd, 5th begun on that thread.
  std::vector<OpRecord> retained = TraceCollector::Global().SnapshotRetained();
  ASSERT_EQ(retained.size(), 3u);
  EXPECT_EQ(retained[0].name, "op0");
  EXPECT_EQ(retained[1].name, "op2");
  EXPECT_EQ(retained[2].name, "op4");
  EXPECT_NE(retained[0].trace_id, retained[1].trace_id);
  for (const OpRecord& op : retained) {
    EXPECT_FALSE(op.slow);
    ASSERT_FALSE(op.events.empty());
    // The root op span is emitted last and parents the tree.
    EXPECT_EQ(op.events.back().category, Category::kOp);
    EXPECT_EQ(op.events.back().parent_span_id, 0u);
  }
  TraceCollector::Stats stats = TraceCollector::Global().stats();
  EXPECT_EQ(stats.ops_seen, 5u);
  EXPECT_EQ(stats.ops_retained, 3u);
  EXPECT_EQ(stats.ops_slow, 0u);
}

TEST_F(TraceEventTest, TailCaptureCatchesSlowOpsHeadSamplingSkipped) {
  // Head sampling fully off; only the tail-capture trigger retains.
  Enable(/*sample_every=*/0, /*slow_us=*/1000);
  OnFreshThread([] {
    BeginOp("fast");
    FinishOp(500);
    BeginOp("slow");
    FinishOp(5000);
  });
  EXPECT_TRUE(TraceCollector::Global().SnapshotRetained().empty());
  std::vector<OpRecord> slow = TraceCollector::Global().SnapshotSlowOps();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].name, "slow");
  EXPECT_TRUE(slow[0].slow);
  EXPECT_EQ(slow[0].total_us, 5000);
  TraceCollector::Stats stats = TraceCollector::Global().stats();
  EXPECT_EQ(stats.ops_seen, 2u);
  EXPECT_EQ(stats.ops_slow, 1u);
}

TEST_F(TraceEventTest, SlowOpLogIsBoundedAndKeepsSlowest) {
  Enable(/*sample_every=*/0, /*slow_us=*/100, /*ring_capacity=*/4096,
         /*max_slow_ops=*/2);
  OnFreshThread([] {
    const int64_t totals[] = {200, 400, 300, 1000};
    for (int64_t total : totals) {
      BeginOp("op");
      FinishOp(total);
    }
  });
  // Bounded at 2; 300 never displaces 400, 1000 evicts the fastest (200).
  std::vector<OpRecord> slow = TraceCollector::Global().SnapshotSlowOps();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].total_us, 1000);  // slowest first
  EXPECT_EQ(slow[1].total_us, 400);
}

TEST_F(TraceEventTest, RingWrapDropsOldestAndCountsThem) {
  Enable(/*sample_every=*/1, /*slow_us=*/0, /*ring_capacity=*/16);
  OnFreshThread([] {
    BeginOp("wrapper");
    for (int i = 0; i < 40; i++) Instant(Category::kCache, "tick");
    FinishOp(10);
  });
  std::vector<OpRecord> retained = TraceCollector::Global().SnapshotRetained();
  ASSERT_EQ(retained.size(), 1u);
  const OpRecord& op = retained[0];
  // 40 instants + 1 root span emitted; the ring holds 16.
  EXPECT_EQ(op.events.size(), 16u);
  EXPECT_EQ(op.dropped, 25u);
  // The most recent events survive — the root span is still the last.
  EXPECT_EQ(op.events.back().category, Category::kOp);
  EXPECT_EQ(TraceCollector::Global().stats().events_dropped, 25u);
}

TEST_F(TraceEventTest, SpanTreeParentLinksAndCompleteSpans) {
  Enable(/*sample_every=*/1);
  OnFreshThread([] {
    BeginOp("tree");
    {
      ScopedSpan outer(Category::kResolve, "outer");
      {
        ScopedSpan inner(Category::kResolve, "inner");
        Instant(Category::kCache, "hit");
      }
      CompleteSpan(Category::kLock, "queue_wait", 250);
    }
    FinishOp(10);
  });
  std::vector<OpRecord> retained = TraceCollector::Global().SnapshotRetained();
  ASSERT_EQ(retained.size(), 1u);
  const OpRecord& op = retained[0];

  auto find = [&](const char* name) -> const Event* {
    for (const Event& e : op.events) {
      if (std::string(e.name) == name) return &e;
    }
    return nullptr;
  };
  const Event* outer = find("outer");
  const Event* inner = find("inner");
  const Event* hit = find("hit");
  const Event* wait = find("queue_wait");
  const Event* root = &op.events.back();
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(hit, nullptr);
  ASSERT_NE(wait, nullptr);
  // Causal chain: root -> outer -> {inner -> hit, queue_wait}.
  EXPECT_EQ(outer->parent_span_id, root->span_id);
  EXPECT_EQ(inner->parent_span_id, outer->span_id);
  EXPECT_EQ(hit->parent_span_id, inner->span_id);
  EXPECT_EQ(hit->type, EventType::kInstant);
  EXPECT_EQ(wait->parent_span_id, outer->span_id);
  EXPECT_EQ(wait->dur_us, 250);

  std::string tree = FormatOpTree(op, TraceCollector::Global());
  EXPECT_NE(tree.find("tree"), std::string::npos) << tree;
  EXPECT_NE(tree.find("outer"), std::string::npos) << tree;
  EXPECT_NE(tree.find("queue_wait"), std::string::npos) << tree;
}

TEST_F(TraceEventTest, PhaseSharesAgreeWithOpTraceAccumulators) {
  // The Fig 13 acceptance cross-check in unit form: TraceSpan feeds the
  // OpTrace accumulator and the event stream from ONE pair of clock
  // reads, and PhaseUsFromEvents applies the same outermost-span-owns
  // rule, so the two readouts agree to integer-division error (~1us per
  // span boundary).
  Enable(/*sample_every=*/1);
  PhaseBreakdown accumulated;
  OnFreshThread([&accumulated] {
    OpTrace::Begin("agree");
    {
      TraceSpan resolve(Phase::kResolve);
      SleepMicros(2000);
      {
        TraceSpan nested(Phase::kResolve);  // same phase: union, not sum
        SleepMicros(1000);
      }
    }
    {
      TraceSpan exec(Phase::kShardExec);
      SleepMicros(1500);
    }
    accumulated.Add(OpTrace::Finish());
  });
  std::vector<OpRecord> retained = TraceCollector::Global().SnapshotRetained();
  ASSERT_EQ(retained.size(), 1u);
  std::vector<int64_t> span_us =
      PhaseUsFromEvents(retained[0].events, kNumPhases);
  const size_t resolve = static_cast<size_t>(Phase::kResolve);
  const size_t exec = static_cast<size_t>(Phase::kShardExec);
  EXPECT_GE(span_us[resolve], 2000);
  EXPECT_GE(span_us[exec], 1500);
  EXPECT_NEAR(static_cast<double>(span_us[resolve]),
              static_cast<double>(accumulated.us[resolve]), 5.0);
  EXPECT_NEAR(static_cast<double>(span_us[exec]),
              static_cast<double>(accumulated.us[exec]), 5.0);
}

TEST_F(TraceEventTest, SimNetCallAttributesSpansToDestinationNode) {
  Enable(/*sample_every=*/1);
  SimNet net;  // zero-latency mode: handlers run inline on the caller
  NodeId client = net.AddNode("client", 0);
  NodeId shard = net.AddNode("tafdb-s1", 1);
  const uint32_t shard_node = net.TraceNodeOf(shard);
  EXPECT_NE(shard_node, kNoNode);

  OnFreshThread([&] {
    BeginOp("create");
    Status st = net.Call(client, shard, [&]() -> Status {
      ScopedSpan span(Category::kExec, "primitive");
      EXPECT_EQ(CurrentNode(), shard_node);
      return Status::Ok();
    });
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(CurrentNode(), kNoNode);  // popped after the handler
    FinishOp(10);
  });

  std::vector<OpRecord> retained = TraceCollector::Global().SnapshotRetained();
  ASSERT_EQ(retained.size(), 1u);
  const Event* primitive = nullptr;
  const Event* rpc = nullptr;
  for (const Event& e : retained[0].events) {
    if (std::string(e.name) == "primitive") primitive = &e;
    if (e.category == Category::kRpc) rpc = &e;
  }
  ASSERT_NE(primitive, nullptr);
  EXPECT_EQ(primitive->node, shard_node);
  ASSERT_NE(rpc, nullptr);  // the SimNet edge span
  EXPECT_EQ(rpc->node, shard_node);
  EXPECT_EQ(TraceCollector::Global().NodeName(primitive->node), "tafdb-s1");

  // Same name -> same interned id, across SimNet instances.
  EXPECT_EQ(TraceCollector::Global().InternNode("tafdb-s1"), shard_node);

  // The text rendering shows the attribution.
  std::string tree =
      FormatOpTree(retained[0], TraceCollector::Global());
  EXPECT_NE(tree.find("[tafdb-s1]"), std::string::npos) << tree;
}

TEST_F(TraceEventTest, PerfettoJsonIsWellFormedWithCausalArgs) {
  Enable(/*sample_every=*/1);
  OnFreshThread([] {
    OpScope op("background");
    ScopedSpan span(Category::kGc, "scan");
  });
  std::string json = TraceCollector::Global().DumpPerfettoJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"gc\""), std::string::npos);
  // Balanced braces/brackets — a cheap structural validity check that
  // needs no JSON parser.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); i++) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TraceEventTest, ResetDropsOpsButKeepsNodeTableAndConfig) {
  Enable(/*sample_every=*/1);
  uint32_t node = TraceCollector::Global().InternNode("sticky");
  OnFreshThread([] {
    BeginOp("op");
    FinishOp(10);
  });
  ASSERT_FALSE(TraceCollector::Global().SnapshotRetained().empty());
  TraceCollector::Global().Reset();
  EXPECT_TRUE(TraceCollector::Global().SnapshotRetained().empty());
  EXPECT_EQ(TraceCollector::Global().stats().ops_seen, 0u);
  EXPECT_TRUE(TraceCollector::Global().enabled());
  EXPECT_EQ(TraceCollector::Global().InternNode("sticky"), node);
  EXPECT_EQ(TraceCollector::Global().NodeName(node), "sticky");
}

TEST_F(TraceEventTest, ConcurrentOpsSnapshotsAndDumps) {
  // Writers record ops while a reader snapshots and exports: the drain
  // path (per-thread ring -> collector under mu_) and the read path must
  // be free of races (this test is in check.sh's TSan leg).
  Enable(/*sample_every=*/4, /*slow_us=*/1);
  constexpr int kThreads = 4;
  constexpr int kOps = 200;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)TraceCollector::Global().SnapshotRetained();
      (void)TraceCollector::Global().SnapshotSlowOps();
      (void)TraceCollector::Global().DumpPerfettoJson();
      (void)TraceCollector::Global().stats();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([t] {
      for (int i = 0; i < kOps; i++) {
        BeginOp("concurrent");
        {
          ScopedSpan span(Category::kExec, "work");
          Instant(Category::kCache, "tick");
        }
        FinishOp((t * kOps + i) % 97);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  reader.join();

  TraceCollector::Stats stats = TraceCollector::Global().stats();
  EXPECT_EQ(stats.ops_seen, static_cast<uint64_t>(kThreads) * kOps);
  // Retained + slow stay within their configured bounds.
  const TraceOptions& options = TraceCollector::Global().options();
  EXPECT_LE(TraceCollector::Global().SnapshotRetained().size(),
            options.max_retained_ops);
  EXPECT_LE(TraceCollector::Global().SnapshotSlowOps().size(),
            options.max_slow_ops);
}

}  // namespace
}  // namespace trace
}  // namespace cfs
