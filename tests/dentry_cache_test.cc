// Unit tests for the sharded, epoch-tagged client dentry cache
// (src/core/dentry_cache.h): LRU bounds, negative-entry TTLs, epoch
// staleness and revalidation, prefix invalidation, and concurrent use.

#include "src/core/dentry_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"

namespace cfs {
namespace {

using Outcome = DentryCache::Outcome;

constexpr InodeId kDir = 7;

DentryCache::Options SmallOptions() {
  DentryCache::Options o;
  o.capacity = 8;
  o.shards = 1;  // deterministic LRU order
  o.negative_ttl_ms = 10;
  o.epoch_ttl_ms = 100;
  return o;
}

TEST(DentryCacheTest, MissThenHitAfterFill) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);
  cache.ObserveDirEpoch(kDir, 0);

  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kMiss);
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/0);

  auto hit = cache.Lookup("/d/a", kDir);
  EXPECT_EQ(hit.outcome, Outcome::kHit);
  EXPECT_EQ(hit.id, 42u);
  EXPECT_EQ(hit.type, InodeType::kFile);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DentryCacheTest, EntryWithoutEpochViewIsStale) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);
  // Fill without ever observing the parent's epoch: the entry must not be
  // trusted (it has no coherence baseline).
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/0);
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kMiss);
  EXPECT_EQ(cache.stats().stale_drops, 1u);
}

TEST(DentryCacheTest, EpochMismatchDropsEntry) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);
  cache.ObserveDirEpoch(kDir, 3);
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/3);
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kHit);

  // A directory mutation elsewhere bumps the epoch; once this engine
  // observes it, the tagged entry is stale on first touch.
  cache.ObserveDirEpoch(kDir, 4);
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kMiss);
  EXPECT_EQ(cache.stats().stale_drops, 1u);
  // And the entry is gone, not resurrectable.
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kMiss);
}

TEST(DentryCacheTest, ParentMismatchDropsEntry) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);
  cache.ObserveDirEpoch(kDir, 1);
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/1);
  // Same path string, different parent directory id (the directory was
  // replaced): the entry must not serve.
  cache.ObserveDirEpoch(kDir + 1, 1);
  EXPECT_EQ(cache.Lookup("/d/a", kDir + 1).outcome, Outcome::kMiss);
}

TEST(DentryCacheTest, AgedEpochViewDemandsValidation) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);  // epoch_ttl_ms = 100
  cache.ObserveDirEpoch(kDir, 5);
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/5);
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kHit);

  clock.AdvanceMicros(101 * 1000);
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kNeedsValidation);
  EXPECT_EQ(cache.stats().revalidations, 1u);

  // Revalidation with an unchanged epoch refreshes the view; the entry
  // serves again.
  cache.ObserveDirEpoch(kDir, 5);
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kHit);

  // Revalidation that surfaces a bump turns the entry stale instead.
  clock.AdvanceMicros(101 * 1000);
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kNeedsValidation);
  cache.ObserveDirEpoch(kDir, 6);
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kMiss);
}

TEST(DentryCacheTest, NegativeEntryServesThenExpires) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);  // negative_ttl_ms = 10
  cache.ObserveDirEpoch(kDir, 1);
  cache.PutNegative("/d/missing", kDir, /*epoch=*/1);

  EXPECT_EQ(cache.Lookup("/d/missing", kDir).outcome, Outcome::kNegativeHit);
  EXPECT_EQ(cache.stats().negative_hits, 1u);

  clock.AdvanceMicros(11 * 1000);
  EXPECT_EQ(cache.Lookup("/d/missing", kDir).outcome, Outcome::kMiss);
  EXPECT_EQ(cache.stats().stale_drops, 1u);
}

TEST(DentryCacheTest, ZeroNegativeTtlDisablesNegativeCaching) {
  ManualClock clock;
  DentryCache::Options options = SmallOptions();
  options.negative_ttl_ms = 0;
  DentryCache cache(options, &clock);
  cache.ObserveDirEpoch(kDir, 1);
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/1);

  // PutNegative with the TTL disabled must not plant an ENOENT — but it
  // must still retire the contradicted positive entry.
  cache.PutNegative("/d/a", kDir, /*epoch=*/1);
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kMiss);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DentryCacheTest, LruEvictsOldestWithinCapacity) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);  // capacity 8, one shard
  cache.ObserveDirEpoch(kDir, 1);
  for (int i = 0; i < 8; i++) {
    cache.PutPositive("/d/e" + std::to_string(i), kDir, 100 + i,
                      InodeType::kFile, /*epoch=*/1);
  }
  // Touch the oldest so it moves to the front.
  EXPECT_EQ(cache.Lookup("/d/e0", kDir).outcome, Outcome::kHit);

  cache.PutPositive("/d/e8", kDir, 108, InodeType::kFile, /*epoch=*/1);
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // e1 (now the LRU tail) was evicted; e0 survived its touch.
  EXPECT_EQ(cache.Lookup("/d/e1", kDir).outcome, Outcome::kMiss);
  EXPECT_EQ(cache.Lookup("/d/e0", kDir).outcome, Outcome::kHit);
}

TEST(DentryCacheTest, ErasePrefixDropsSubtreeButNotSiblingPrefix) {
  ManualClock clock;
  DentryCache::Options options = SmallOptions();
  options.capacity = 64;
  options.shards = 4;  // prefix scan must cover every shard
  DentryCache cache(options, &clock);
  cache.ObserveDirEpoch(kDir, 1);
  cache.PutPositive("/a", kDir, 1, InodeType::kDirectory, /*epoch=*/1);
  cache.PutPositive("/a/x", kDir, 2, InodeType::kFile, /*epoch=*/1);
  cache.PutPositive("/a/x/y", kDir, 3, InodeType::kFile, /*epoch=*/1);
  cache.PutPositive("/ab", kDir, 4, InodeType::kFile,
                    /*epoch=*/1);  // sibling, not child

  cache.ErasePrefix("/a");
  EXPECT_EQ(cache.Lookup("/a", kDir).outcome, Outcome::kMiss);
  EXPECT_EQ(cache.Lookup("/a/x", kDir).outcome, Outcome::kMiss);
  EXPECT_EQ(cache.Lookup("/a/x/y", kDir).outcome, Outcome::kMiss);
  // "/ab" shares the byte prefix but is not inside "/a": must survive.
  EXPECT_EQ(cache.Lookup("/ab", kDir).outcome, Outcome::kHit);
  EXPECT_EQ(cache.stats().prefix_drops, 2u);  // "/a/x", "/a/x/y"
}

TEST(DentryCacheTest, ZeroCapacityDisablesCache) {
  ManualClock clock;
  DentryCache::Options options = SmallOptions();
  options.capacity = 0;
  DentryCache cache(options, &clock);
  cache.ObserveDirEpoch(kDir, 1);
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/1);
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kMiss);
  EXPECT_EQ(cache.size(), 0u);
  // Disabled-cache lookups do not pollute the hit/miss counters.
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(DentryCacheTest, EpochRegressionIgnoredExceptReset) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);
  cache.ObserveDirEpoch(kDir, 9);
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/9);

  // A reordered (older) observation must not roll the view back.
  cache.ObserveDirEpoch(kDir, 8);
  EXPECT_EQ(cache.ObservedDirEpoch(kDir), 9u);
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kHit);

  // A reset to 0 (shard restart) is adopted and invalidates tagged entries.
  cache.ObserveDirEpoch(kDir, 0);
  EXPECT_EQ(cache.ObservedDirEpoch(kDir), 0u);
  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kMiss);
}

// Regression for the fill/broadcast race: a resolve reads a dentry while
// the parent is at epoch 1; before the fill lands, a rename commits, bumps
// the epoch, and its invalidation broadcast refreshes this engine's view
// to 2. The fill is tagged with the epoch observed WITH the data (1), so
// it must be treated as stale — tagging with the refreshed view would
// make pre-rename data indistinguishable from fresh.
TEST(DentryCacheTest, FillTaggedOlderThanViewIsStaleNotFresh) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);
  cache.ObserveDirEpoch(kDir, 1);
  // ... dentry read happens here, piggybacking epoch 1 ...
  cache.ObserveDirEpoch(kDir, 2);  // broadcast lands before the fill
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/1);

  EXPECT_EQ(cache.Lookup("/d/a", kDir).outcome, Outcome::kMiss);
  EXPECT_EQ(cache.stats().stale_drops, 1u);
}

TEST(DentryCacheTest, LookupValidatedRefreshesAgedViewAndServesHit) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);  // epoch_ttl_ms = 100
  cache.ObserveDirEpoch(kDir, 5);
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/5);
  clock.AdvanceMicros(101 * 1000);

  int refreshes = 0;
  auto refresh = [&](uint64_t* epoch) {
    refreshes++;
    *epoch = 5;  // unchanged on the shard
    return true;
  };
  auto result = cache.LookupValidated("/d/a", kDir, refresh);
  EXPECT_EQ(result.outcome, Outcome::kHit);
  EXPECT_EQ(result.id, 42u);
  EXPECT_EQ(refreshes, 1);
  // One logical lookup: one terminal outcome, plus the revalidate event.
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().revalidations, 1u);
}

// With epoch_ttl_ms <= 0 every hit revalidates — but the revalidated retry
// must then serve the hit (one extra RPC per hit), not degrade every
// lookup to a miss plus the RPC.
TEST(DentryCacheTest, ZeroEpochTtlRevalidatesEveryHitButStillServes) {
  ManualClock clock;
  DentryCache::Options options = SmallOptions();
  options.epoch_ttl_ms = 0;
  DentryCache cache(options, &clock);
  cache.ObserveDirEpoch(kDir, 1);
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/1);

  auto refresh = [](uint64_t* epoch) {
    *epoch = 1;
    return true;
  };
  EXPECT_EQ(cache.LookupValidated("/d/a", kDir, refresh).outcome,
            Outcome::kHit);
  EXPECT_EQ(cache.LookupValidated("/d/a", kDir, refresh).outcome,
            Outcome::kHit);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().revalidations, 2u);
}

TEST(DentryCacheTest, LookupValidatedRefreshSurfacingBumpDropsEntry) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);
  cache.ObserveDirEpoch(kDir, 5);
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/5);
  clock.AdvanceMicros(101 * 1000);

  auto refresh = [](uint64_t* epoch) {
    *epoch = 6;  // a mutation happened since the fill
    return true;
  };
  EXPECT_EQ(cache.LookupValidated("/d/a", kDir, refresh).outcome,
            Outcome::kMiss);
  EXPECT_EQ(cache.stats().stale_drops, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DentryCacheTest, LookupValidatedUnreachableShardIsMiss) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);
  cache.ObserveDirEpoch(kDir, 5);
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/5);
  clock.AdvanceMicros(101 * 1000);

  auto refresh = [](uint64_t*) { return false; };
  EXPECT_EQ(cache.LookupValidated("/d/a", kDir, refresh).outcome,
            Outcome::kMiss);
  // The entry itself was not dropped — it may serve once the view can be
  // refreshed again.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().revalidations, 1u);
}

// Counter accounting: N logical lookups record exactly N terminal
// outcomes, whatever mix of revalidations happened along the way.
TEST(DentryCacheTest, OneTerminalOutcomePerLogicalLookup) {
  ManualClock clock;
  DentryCache cache(SmallOptions(), &clock);  // epoch_ttl_ms = 100
  cache.ObserveDirEpoch(kDir, 1);
  cache.PutPositive("/d/a", kDir, 42, InodeType::kFile, /*epoch=*/1);
  cache.PutNegative("/d/gone", kDir, /*epoch=*/1);

  auto refresh = [](uint64_t* epoch) {
    *epoch = 1;
    return true;
  };
  constexpr uint64_t kLookups = 12;
  for (uint64_t i = 0; i < kLookups; i++) {
    // Half the rounds age the view out so the revalidation path runs.
    if (i % 2 == 0) clock.AdvanceMicros(101 * 1000);
    const char* path = i % 3 == 0 ? "/d/a" : (i % 3 == 1 ? "/d/gone"
                                                         : "/d/absent");
    (void)cache.LookupValidated(path, kDir, refresh);
  }
  DentryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.negative_hits, kLookups);
}

// Concurrency smoke: mixed fills, lookups, and prefix drops across threads.
// Run under TSan by scripts/check.sh; asserts only crash-freedom and that
// the LRU bound holds.
TEST(DentryCacheTest, ConcurrentMixedUseStaysBounded) {
  DentryCache::Options options;
  options.capacity = 256;
  options.shards = 8;
  options.negative_ttl_ms = 1;
  options.epoch_ttl_ms = 1;
  DentryCache cache(options);  // real clock: TTL paths get exercised

  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; i++) {
        InodeId dir = static_cast<InodeId>(i % 16);
        std::string path =
            "/p" + std::to_string(i % 16) + "/c" + std::to_string(i % 97);
        switch ((i + t) % 5) {
          case 0:
            cache.ObserveDirEpoch(dir, static_cast<uint64_t>(i % 7));
            break;
          case 1:
            cache.PutPositive(path, dir, static_cast<InodeId>(i),
                              InodeType::kFile,
                              static_cast<uint64_t>(i % 7));
            break;
          case 2:
            cache.PutNegative(path, dir, static_cast<uint64_t>(i % 7));
            break;
          case 3:
            (void)cache.Lookup(path, dir);
            break;
          case 4:
            if (i % 31 == 0) {
              cache.ErasePrefix("/p" + std::to_string(i % 16));
            } else {
              cache.Erase(path);
            }
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 256u);
}

}  // namespace
}  // namespace cfs
