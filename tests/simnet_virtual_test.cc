// Virtual-time simulation tests (DESIGN.md §11): the simtime::Scheduler's
// ordering and clock rules, LatencyMode::kVirtual latency accrual, seeded
// determinism end to end (same seed, same trace, bit for bit), and the
// regression that sim-mode trace spans carry VIRTUAL timestamps.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/simtime.h"
#include "src/common/trace_event.h"
#include "src/core/cfs.h"
#include "src/net/simnet.h"
#include "src/workload/workload.h"

namespace cfs {
namespace {

// ---------------------------------------------------------------------------
// Scheduler mechanics.

TEST(SimTimeScheduler, DispatchesInTimeOrderWithFifoTies) {
  simtime::Scheduler sched(1);
  std::vector<int> order;
  sched.At(5, [&] { order.push_back(1); });
  sched.At(3, [&] { order.push_back(0); });
  sched.At(5, [&] { order.push_back(2); });  // same slot: after the first 5
  sched.RunUntil(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sched.now_us(), 10);
  EXPECT_EQ(sched.events_run(), 3u);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(SimTimeScheduler, ClockIsMonotonicUnderConcurrentScheduling) {
  simtime::Scheduler sched(2);
  std::vector<int64_t> stamps;
  // Each event reschedules two more at pseudo-random offsets — including
  // attempts to schedule into the past, which must clamp to "now".
  std::function<void(int)> tick = [&](int depth) {
    stamps.push_back(sched.now_us());
    if (depth >= 6) return;
    int64_t fwd = static_cast<int64_t>(sched.NextRand() % 97);
    sched.After(fwd, [&tick, depth] { tick(depth + 1); });
    sched.At(sched.now_us() - 50, [&tick, depth] { tick(depth + 1); });
  };
  sched.At(0, [&tick] { tick(0); });
  sched.RunUntil(1000000);
  ASSERT_GT(stamps.size(), 10u);
  for (size_t i = 1; i < stamps.size(); i++) {
    EXPECT_GE(stamps[i], stamps[i - 1]) << "virtual clock went backwards";
  }
}

TEST(SimTimeScheduler, AccrualFeedsTaskClockAndResetsPerEvent) {
  simtime::Scheduler sched(3);
  int64_t during = -1, next_dispatch = -1, next_task = -1;
  sched.At(10, [&] {
    sched.AdvanceUs(100);
    sched.AdvanceUs(-5);  // non-positive delays are ignored
    during = sched.task_now_us();
    sched.After(7, [&] {
      next_dispatch = sched.now_us();
      next_task = sched.task_now_us();  // fresh event: no leftover accrual
    });
  });
  sched.RunUntil(1000);
  EXPECT_EQ(during, 110);
  EXPECT_EQ(next_dispatch, 117);
  EXPECT_EQ(next_task, 117);
}

TEST(SimTimeScheduler, CancelPendingDropsQueuedEvents) {
  simtime::Scheduler sched(4);
  int ran = 0;
  sched.At(1, [&] { ran++; });
  sched.At(2, [&] { ran++; });
  EXPECT_EQ(sched.CancelPending(), 2u);
  sched.RunUntil(10);
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(sched.now_us(), 10);
}

TEST(SimTimeScheduler, SeededStreamReplaysIdentically) {
  simtime::Scheduler a(99), b(99), c(100);
  bool any_diff = false;
  for (int i = 0; i < 64; i++) {
    uint64_t ra = a.NextRand();
    EXPECT_EQ(ra, b.NextRand());
    if (ra != c.NextRand()) any_diff = true;
  }
  EXPECT_TRUE(any_diff) << "different seeds produced the same stream";
}

TEST(SimTimeScheduler, NowNanosOrRealUsesTaskClockUnderScheduler) {
  simtime::Scheduler sched(5);
  int64_t nanos = -1;
  sched.At(10, [&] {
    EXPECT_EQ(simtime::Current(), &sched);
    sched.AdvanceUs(5);
    nanos = simtime::NowNanosOrReal();
  });
  sched.RunUntil(100);
  EXPECT_EQ(nanos, 15 * 1000);
  EXPECT_EQ(simtime::Current(), nullptr);
  // Off-scheduler: a real steady-clock read, far past any virtual value.
  EXPECT_GT(simtime::NowNanosOrReal(), 1000 * 1000);
}

// ---------------------------------------------------------------------------
// SimNet in LatencyMode::kVirtual.

NetOptions VirtualNet(int64_t rtt_us, int64_t jitter_pct) {
  NetOptions options;
  options.mode = LatencyMode::kVirtual;
  options.cross_node_rtt_us = rtt_us;
  options.same_node_rtt_us = 0;
  options.jitter_pct = jitter_pct;
  return options;
}

TEST(SimNetVirtual, AdvancesTaskClockInsteadOfSleeping) {
  SimNet net(VirtualNet(1000, 0));
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  simtime::Scheduler sched(7);
  int64_t observed = -1;
  sched.At(0, [&] {
    EXPECT_TRUE(net.BeginCall(a, b).ok());
    EXPECT_TRUE(net.BeginCall(a, b).ok());
    observed = sched.task_now_us();
  });
  Stopwatch sw;
  sched.RunUntil(10);
  EXPECT_LT(sw.ElapsedMicros(), 500000) << "virtual mode must not sleep";
  EXPECT_EQ(observed, 2000);
  EXPECT_EQ(net.TotalInjectedLatencyUs(), 2000);
}

TEST(SimNetVirtual, InjectLatencyFalseChargesNothing) {
  SimNet net(VirtualNet(1000, 0));
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  simtime::Scheduler sched(7);
  int64_t observed = -1;
  sched.At(0, [&] {
    // The charge-once fan-out path: only the first hop of a serialized
    // round models the network.
    EXPECT_TRUE(net.BeginCall(a, b, /*inject_latency=*/true).ok());
    EXPECT_TRUE(net.BeginCall(a, b, /*inject_latency=*/false).ok());
    observed = sched.task_now_us();
  });
  sched.RunUntil(10);
  EXPECT_EQ(observed, 1000);
  EXPECT_EQ(net.TotalInjectedLatencyUs(), 1000);
  EXPECT_EQ(net.TotalCalls(), 2u);  // both hops still count as calls
}

TEST(SimNetVirtual, NoSchedulerMeansNoCharge) {
  SimNet net(VirtualNet(1000, 0));
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  ASSERT_EQ(simtime::Current(), nullptr);
  Stopwatch sw;
  EXPECT_TRUE(net.BeginCall(a, b).ok());  // setup/population thread
  EXPECT_LT(sw.ElapsedMicros(), 500000);
  EXPECT_EQ(net.TotalInjectedLatencyUs(), 0);
}

TEST(SimNetVirtual, JitterComesFromSchedulerSeed) {
  auto total_for = [](uint64_t seed) {
    SimNet net(VirtualNet(1000, 10));
    NodeId a = net.AddNode("a", 0);
    NodeId b = net.AddNode("b", 1);
    simtime::Scheduler sched(seed);
    sched.At(0, [&] {
      for (int i = 0; i < 16; i++) (void)net.BeginCall(a, b);
    });
    sched.RunUntil(1);
    return net.TotalInjectedLatencyUs();
  };
  EXPECT_EQ(total_for(42), total_for(42));
  EXPECT_NE(total_for(42), total_for(43));
}

// ---------------------------------------------------------------------------
// End to end: a small full-CFS cluster in sim mode.

constexpr size_t kSimClients = 32;
constexpr int64_t kSimDurationMs = 20;
constexpr int64_t kSimWarmupMs = 5;

CfsOptions SimCluster(uint64_t seed) {
  CfsOptions options = CfsFullOptions();
  options.num_servers = 4;
  options.tafdb.num_shards = 2;
  options.tafdb.range_stripe_width = 4;
  options.filestore.num_nodes = 2;
  options.net.mode = LatencyMode::kVirtual;
  options.net.seed = seed;
  options.net.cross_node_rtt_us = 150;
  options.net.same_node_rtt_us = 5;
  options.net.jitter_pct = 10;
  options.tafdb.raft.inline_replication = true;
  options.filestore.raft.inline_replication = true;
  options.renamer.raft.inline_replication = true;
  options.start_gc = false;
  return options;
}

RunResult RunSimOnce(uint64_t seed) {
  Cfs fs(SimCluster(seed));
  EXPECT_TRUE(fs.Start().ok());
  {
    auto setup = fs.NewClient();
    EXPECT_TRUE(SetupPrivateDirs(setup.get(), kSimClients).ok());
  }
  RunResult result;
  {
    std::vector<std::unique_ptr<MetadataClient>> clients;
    for (size_t i = 0; i < kSimClients; i++) clients.push_back(fs.NewClient());
    WorkloadRunner runner(std::move(clients));
    simtime::Scheduler sched(seed);
    result = runner.RunSimulated(sched, MakeCreateOp(0.0), kSimDurationMs,
                                 kSimWarmupMs);
  }
  fs.Stop();
  return result;
}

TEST(SimNetVirtual, SameSeedReplaysIdenticalRun) {
  RunResult first = RunSimOnce(1234);
  RunResult second = RunSimOnce(1234);
  ASSERT_GT(first.ops, 0u);
  EXPECT_EQ(first.ops, second.ops);
  EXPECT_EQ(first.errors, second.errors);
  EXPECT_EQ(first.latency.count(), second.latency.count());
  EXPECT_DOUBLE_EQ(first.latency.mean(), second.latency.mean());
  EXPECT_EQ(first.latency.P50(), second.latency.P50());
  EXPECT_EQ(first.latency.P99(), second.latency.P99());
  EXPECT_EQ(first.latency.P999(), second.latency.P999());
  EXPECT_EQ(first.latency.max(), second.latency.max());
  EXPECT_EQ(first.latency.Summary(), second.latency.Summary());
}

TEST(SimNetVirtual, SimModeSpansCarryVirtualTimestamps) {
  trace::TraceCollector& collector = trace::TraceCollector::Global();
  trace::TraceOptions options;
  options.enabled = true;
  options.sample_every = 1;     // retain every op
  options.slow_op_threshold_us = 0;
  collector.Reset();
  collector.Configure(options);

  RunResult result = RunSimOnce(77);
  ASSERT_GT(result.ops, 0u);

  trace::TraceOptions off;
  off.enabled = false;
  collector.Configure(off);
  std::vector<trace::OpRecord> retained = collector.SnapshotRetained();
  collector.Reset();

  ASSERT_FALSE(retained.empty());
  // Virtual time starts at 0 and the run measures kSimDurationMs of it; a
  // task dispatched near the deadline can accrue a little past it. A real
  // steady-clock stamp (process uptime, well past seconds by the time a
  // test binary runs) would be orders of magnitude larger.
  const int64_t limit_us = kSimDurationMs * 1000 + 100000;
  for (const trace::OpRecord& op : retained) {
    ASSERT_FALSE(op.events.empty());
    for (const trace::Event& ev : op.events) {
      EXPECT_GE(ev.ts_us, 0);
      EXPECT_LE(ev.end_us(), limit_us)
          << "span '" << ev.name << "' stamped with wall clock?";
    }
  }
}

}  // namespace
}  // namespace cfs
