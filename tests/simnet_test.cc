// Unit tests for SimNet: delivery, latency modes, fault injection, stats.

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/net/simnet.h"

namespace cfs {
namespace {

TEST(SimNetTest, CallInvokesHandler) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  int called = 0;
  Status st = net.Call(a, b, [&]() -> Status {
    called++;
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(called, 1);
  EXPECT_EQ(net.TotalCalls(), 1u);
  EXPECT_EQ(net.CallsTo(b), 1u);
  EXPECT_EQ(net.CallsTo(a), 0u);
}

TEST(SimNetTest, CallPropagatesStatusOr) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  auto result = net.Call(a, b, [&]() -> StatusOr<int> { return 42; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(SimNetTest, DownNodeUnreachable) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  net.SetNodeDown(b, true);
  Status st = net.Call(a, b, [&]() -> Status { return Status::Ok(); });
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  net.SetNodeDown(b, false);
  EXPECT_TRUE(net.Call(a, b, [&]() -> Status { return Status::Ok(); }).ok());
}

TEST(SimNetTest, PartitionIsSymmetricAndHealable) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  NodeId c = net.AddNode("c", 2);
  net.SetPartitioned(a, b, true);
  EXPECT_FALSE(net.BeginCall(a, b).ok());
  EXPECT_FALSE(net.BeginCall(b, a).ok());
  EXPECT_TRUE(net.BeginCall(a, c).ok());
  net.HealAll();
  EXPECT_TRUE(net.BeginCall(a, b).ok());
}

TEST(SimNetTest, ThreadHopCounter) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  SimNet::ResetThreadHops();
  for (int i = 0; i < 5; i++) {
    (void)net.Call(a, b, [] { return Status::Ok(); });
  }
  EXPECT_EQ(SimNet::ThreadHops(), 5u);
  SimNet::ResetThreadHops();
  EXPECT_EQ(SimNet::ThreadHops(), 0u);
}

TEST(SimNetTest, SleepModeInjectsCrossNodeLatency) {
  NetOptions options;
  options.mode = LatencyMode::kSleep;
  options.cross_node_rtt_us = 2000;
  options.same_node_rtt_us = 0;
  options.jitter_pct = 0;
  SimNet net(options);
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  NodeId a2 = net.AddNode("a2", 0);

  Stopwatch sw;
  (void)net.BeginCall(a, b);
  EXPECT_GE(sw.ElapsedMicros(), 2000);

  sw.Reset();
  (void)net.BeginCall(a, a2);  // same server: no cross-node cost
  EXPECT_LT(sw.ElapsedMicros(), 1500);
}

TEST(SimNetTest, ZeroModeIsFast) {
  SimNet net;  // default zero latency
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  Stopwatch sw;
  for (int i = 0; i < 10000; i++) {
    (void)net.BeginCall(a, b);
  }
  EXPECT_LT(sw.ElapsedMicros(), 1000000);
  EXPECT_EQ(net.TotalCalls(), 10000u);
}

TEST(SimNetTest, ResetStatsClearsCounters) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  (void)net.BeginCall(a, b);
  net.ResetStats();
  EXPECT_EQ(net.TotalCalls(), 0u);
  EXPECT_EQ(net.CallsTo(b), 0u);
}

TEST(SimNetTest, NamesAndServers) {
  SimNet net;
  NodeId a = net.AddNode("alpha", 3);
  EXPECT_EQ(net.NameOf(a), "alpha");
  EXPECT_EQ(net.ServerOf(a), 3u);
  EXPECT_EQ(net.NumNodes(), 1u);
}

}  // namespace
}  // namespace cfs
