// Unit tests for SimNet: delivery, latency modes, fault injection, stats.

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/net/simnet.h"

namespace cfs {
namespace {

TEST(SimNetTest, CallInvokesHandler) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  int called = 0;
  Status st = net.Call(a, b, [&]() -> Status {
    called++;
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(called, 1);
  EXPECT_EQ(net.TotalCalls(), 1u);
  EXPECT_EQ(net.CallsTo(b), 1u);
  EXPECT_EQ(net.CallsTo(a), 0u);
}

TEST(SimNetTest, CallPropagatesStatusOr) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  auto result = net.Call(a, b, [&]() -> StatusOr<int> { return 42; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(SimNetTest, DownNodeUnreachable) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  net.SetNodeDown(b, true);
  Status st = net.Call(a, b, [&]() -> Status { return Status::Ok(); });
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  net.SetNodeDown(b, false);
  EXPECT_TRUE(net.Call(a, b, [&]() -> Status { return Status::Ok(); }).ok());
}

TEST(SimNetTest, PartitionIsSymmetricAndHealable) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  NodeId c = net.AddNode("c", 2);
  net.SetPartitioned(a, b, true);
  EXPECT_FALSE(net.BeginCall(a, b).ok());
  EXPECT_FALSE(net.BeginCall(b, a).ok());
  EXPECT_TRUE(net.BeginCall(a, c).ok());
  net.HealAll();
  EXPECT_TRUE(net.BeginCall(a, b).ok());
}

TEST(SimNetTest, ThreadHopCounter) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  SimNet::ResetThreadHops();
  for (int i = 0; i < 5; i++) {
    (void)net.Call(a, b, [] { return Status::Ok(); });
  }
  EXPECT_EQ(SimNet::ThreadHops(), 5u);
  SimNet::ResetThreadHops();
  EXPECT_EQ(SimNet::ThreadHops(), 0u);
}

TEST(SimNetTest, SleepModeInjectsCrossNodeLatency) {
  NetOptions options;
  options.mode = LatencyMode::kSleep;
  options.cross_node_rtt_us = 2000;
  options.same_node_rtt_us = 0;
  options.jitter_pct = 0;
  SimNet net(options);
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  NodeId a2 = net.AddNode("a2", 0);

  Stopwatch sw;
  (void)net.BeginCall(a, b);
  EXPECT_GE(sw.ElapsedMicros(), 2000);

  sw.Reset();
  (void)net.BeginCall(a, a2);  // same server: no cross-node cost
  EXPECT_LT(sw.ElapsedMicros(), 1500);
}

TEST(SimNetTest, ZeroModeIsFast) {
  SimNet net;  // default zero latency
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  Stopwatch sw;
  for (int i = 0; i < 10000; i++) {
    (void)net.BeginCall(a, b);
  }
  EXPECT_LT(sw.ElapsedMicros(), 1000000);
  EXPECT_EQ(net.TotalCalls(), 10000u);
}

TEST(SimNetTest, ResetStatsClearsCounters) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  (void)net.BeginCall(a, b);
  net.ResetStats();
  EXPECT_EQ(net.TotalCalls(), 0u);
  EXPECT_EQ(net.CallsTo(b), 0u);
  EXPECT_EQ(net.CallsBetween(a, b), 0u);
  EXPECT_EQ(net.TotalInjectedLatencyUs(), 0);
  EXPECT_TRUE(net.EdgeStats().empty());
}

TEST(SimNetTest, EdgeStatsCountPerDirectedEdge) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  NodeId c = net.AddNode("c", 2);
  for (int i = 0; i < 3; i++) (void)net.BeginCall(a, b);
  (void)net.BeginCall(b, a);
  (void)net.BeginCall(a, c);

  EXPECT_EQ(net.CallsBetween(a, b), 3u);
  EXPECT_EQ(net.CallsBetween(b, a), 1u);  // edges are directed
  EXPECT_EQ(net.CallsBetween(a, c), 1u);
  EXPECT_EQ(net.CallsBetween(c, a), 0u);

  auto edges = net.EdgeStats();
  EXPECT_EQ(edges.size(), 3u);
  const SimNet::EdgeStat& ab = edges[std::make_pair(a, b)];
  EXPECT_EQ(ab.calls, 3u);
  // Zero-latency mode injects nothing.
  EXPECT_EQ(ab.injected_us, 0);
  EXPECT_EQ(net.TotalInjectedLatencyUs(), 0);

  // A failed delivery is not a completed round trip: no edge bump.
  net.SetNodeDown(c, true);
  (void)net.BeginCall(a, c);
  EXPECT_EQ(net.CallsBetween(a, c), 1u);
}

TEST(SimNetTest, SleepModeAccumulatesInjectedLatency) {
  NetOptions options;
  options.mode = LatencyMode::kSleep;
  options.cross_node_rtt_us = 1000;
  options.jitter_pct = 0;
  SimNet net(options);
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  OpTrace::ClearPhase(Phase::kRpc);
  (void)net.BeginCall(a, b);
  (void)net.BeginCall(a, b);
  EXPECT_EQ(net.TotalInjectedLatencyUs(), 2000);
  EXPECT_EQ(net.EdgeStats()[std::make_pair(a, b)].injected_us, 2000);
  // Each hop also stamps the calling thread's trace.
  EXPECT_EQ(OpTrace::PhaseUs(Phase::kRpc), 2000);
  EXPECT_EQ(OpTrace::PhaseCount(Phase::kRpc), 2u);
  OpTrace::ClearPhase(Phase::kRpc);
}

TEST(SimNetTest, RegistersMetricsProbe) {
  SimNet net;
  NodeId a = net.AddNode("alpha", 0);
  NodeId b = net.AddNode("beta", 1);
  (void)net.BeginCall(a, b);
  std::string json = MetricsRegistry::Global().DumpJson();
  // The probe exposes total and per-edge samples named by node.
  EXPECT_NE(json.find("\"calls.alpha->beta\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_calls\":1"), std::string::npos) << json;
}

TEST(SimNetTest, NamesAndServers) {
  SimNet net;
  NodeId a = net.AddNode("alpha", 3);
  EXPECT_EQ(net.NameOf(a), "alpha");
  EXPECT_EQ(net.ServerOf(a), 3u);
  EXPECT_EQ(net.NumNodes(), 1u);
}

}  // namespace
}  // namespace cfs
