// Unit tests for src/common: status propagation, binary encoding, CRC32C,
// histograms, PRNG distributions, and the thread pool.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/common/clock.h"
#include "src/common/crc32.h"
#include "src/common/encoding.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"

namespace cfs {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing inode");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing inode");
}

TEST(StatusTest, RetryableClassification) {
  EXPECT_TRUE(Status::Conflict().IsRetryable());
  EXPECT_TRUE(Status::Timeout().IsRetryable());
  EXPECT_TRUE(Status::NotLeader().IsRetryable());
  EXPECT_TRUE(Status::Unavailable().IsRetryable());
  EXPECT_FALSE(Status::NotFound().IsRetryable());
  EXPECT_FALSE(Status::AlreadyExists().IsRetryable());
}

TEST(StatusTest, EveryCodeHasName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); c++) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(StatusOrTest, ValueAndError) {
  auto good = ParsePositive(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(42), 42);
}

Status UseReturnIfError(bool fail) {
  CFS_RETURN_IF_ERROR(fail ? Status::IoError("boom") : Status::Ok());
  return Status::Ok();
}

TEST(StatusOrTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), ErrorCode::kIoError);
}

TEST(EncodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x123456789abcdef0ULL);
  Decoder dec(buf);
  uint32_t a;
  uint64_t b;
  ASSERT_TRUE(dec.GetFixed32(&a));
  ASSERT_TRUE(dec.GetFixed64(&b));
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0x123456789abcdef0ULL);
  EXPECT_TRUE(dec.empty());
}

TEST(EncodingTest, VarintRoundTripBoundaries) {
  std::vector<uint64_t> values = {0,    1,    127,        128,
                                  16383, 16384, UINT32_MAX, UINT64_MAX};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec(buf);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(dec.GetVarint64(&got));
    EXPECT_EQ(got, v);
  }
}

TEST(EncodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Decoder dec(buf);
  std::string a, b, c;
  ASSERT_TRUE(dec.GetLengthPrefixed(&a));
  ASSERT_TRUE(dec.GetLengthPrefixed(&b));
  ASSERT_TRUE(dec.GetLengthPrefixed(&c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
}

TEST(EncodingTest, TruncatedInputFailsCleanly) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  // Keep the truncated copy alive: Decoder only holds a view of it.
  std::string truncated = buf.substr(0, 3);
  Decoder dec(truncated);
  std::string out;
  EXPECT_FALSE(dec.GetLengthPrefixed(&out));
  uint64_t v;
  Decoder dec2(std::string_view("\xff\xff", 2));
  EXPECT_FALSE(dec2.GetVarint64(&v));
}

TEST(Crc32Test, KnownVector) {
  // CRC32C("123456789") = 0xE3069283 (well-known check value).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32Test, DetectsCorruption) {
  std::string data = "the quick brown fox";
  uint32_t crc = Crc32c(data);
  data[3] ^= 1;
  EXPECT_NE(Crc32c(data), crc);
}

TEST(HashTest, Fnv1aIsStable) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
}

TEST(HashTest, HashU64SpreadsSequentialIds) {
  // Partitioning by HashU64(id) % n must not map sequential ids to one bin.
  std::vector<int> bins(8, 0);
  for (uint64_t id = 1; id <= 8000; id++) {
    bins[HashU64(id) % 8]++;
  }
  for (int count : bins) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  for (int i = 1; i <= 10000; i++) h.Record(i);
  EXPECT_EQ(h.count(), 10000);
  EXPECT_LE(h.P50(), h.P99());
  EXPECT_LE(h.P99(), h.P999());
  EXPECT_NEAR(static_cast<double>(h.P50()), 5000, 1200);
  EXPECT_NEAR(static_cast<double>(h.P99()), 9900, 2200);
  EXPECT_EQ(h.max(), 10000);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  a.Record(10);
  b.Record(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_NEAR(a.mean(), 15.0, 0.01);
}

TEST(HistogramTest, StripedAggregation) {
  StripedHistogram striped(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&striped, t] {
      for (int i = 0; i < 1000; i++) striped.Record(t, 100);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(striped.Aggregate().count(), 4000);
}

TEST(RandomTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.Uniform(10), 10u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, DeterministicForSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, ZipfIsSkewed) {
  Rng rng(3);
  ZipfGenerator zipf(1000, 0.99);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; i++) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Head should dominate the tail.
  EXPECT_GT(counts[0], counts[500] * 5);
}

TEST(RandomTest, WeightedChoiceMatchesWeights) {
  Rng rng(11);
  WeightedChoice choice({75.0, 20.0, 5.0});
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; i++) counts[choice.Next(rng)]++;
  EXPECT_NEAR(counts[0] / 100000.0, 0.75, 0.02);
  EXPECT_NEAR(counts[1] / 100000.0, 0.20, 0.02);
  EXPECT_NEAR(counts[2] / 100000.0, 0.05, 0.02);
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(1000);
  EXPECT_EQ(clock.NowNanos(), 1000);
  clock.AdvanceMicros(5);
  EXPECT_EQ(clock.NowNanos(), 6000);
  Stopwatch sw(&clock);
  clock.AdvanceMicros(10);
  EXPECT_EQ(sw.ElapsedMicros(), 10);
}

TEST(ClockTest, RealClockMonotonic) {
  auto* clock = RealClock::Get();
  MonoNanos a = clock->NowNanos();
  MonoNanos b = clock->NowNanos();
  EXPECT_GE(b, a);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(pool.Submit([&counter] { counter++; }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, WaitBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; i++) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done++;
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

}  // namespace
}  // namespace cfs
