// Renamer service tests: request validation, loop detection via parent
// backpointers, 2PC commit behaviour, no-op renames, and concurrency
// (conflicting normal-path renames must serialize, not corrupt).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/cfs.h"
#include "src/core/gc.h"

namespace cfs {
namespace {

class RenamerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CfsOptions options = CfsFullOptions();
    options.num_servers = 6;
    options.tafdb.num_shards = 3;
    options.tafdb.range_stripe_width = 2;
    options.tafdb.raft.election_timeout_min_ms = 50;
    options.tafdb.raft.election_timeout_max_ms = 100;
    options.tafdb.raft.heartbeat_interval_ms = 20;
    options.filestore.num_nodes = 2;
    options.filestore.raft = options.tafdb.raft;
    options.renamer.raft = options.tafdb.raft;
    options.start_gc = false;
    fs_ = std::make_unique<Cfs>(options);
    ASSERT_TRUE(fs_->Start().ok());
    client_ = fs_->NewClient();
  }
  void TearDown() override {
    client_.reset();
    fs_->Stop();
  }

  InodeId IdOf(const std::string& path) {
    auto info = client_->Lookup(path);
    return info.ok() ? info->id : kInvalidInode;
  }

  std::unique_ptr<Cfs> fs_;
  std::unique_ptr<MetadataClient> client_;
};

TEST_F(RenamerTest, SelfRenameIsNoOp) {
  ASSERT_TRUE(client_->Mkdir("/d", 0755).ok());
  ASSERT_TRUE(client_->Create("/d/f", 0644).ok());
  RenameRequest req;
  req.src_parent = IdOf("/d");
  req.src_name = "f";
  req.dst_parent = req.src_parent;
  req.dst_name = "f";
  EXPECT_TRUE(fs_->renamer()->Rename(req).ok());
  EXPECT_TRUE(client_->GetAttr("/d/f").ok());
}

TEST_F(RenamerTest, MissingSourceFails) {
  ASSERT_TRUE(client_->Mkdir("/d", 0755).ok());
  RenameRequest req;
  req.src_parent = IdOf("/d");
  req.src_name = "missing";
  req.dst_parent = kRootInode;
  req.dst_name = "x";
  EXPECT_TRUE(fs_->renamer()->Rename(req).IsNotFound());
}

TEST_F(RenamerTest, DirectoryMoveUpdatesParentPointer) {
  ASSERT_TRUE(client_->Mkdir("/from", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/to", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/from/mv", 0755).ok());
  InodeId moved = IdOf("/from/mv");
  InodeId to = IdOf("/to");

  ASSERT_TRUE(client_->Rename("/from/mv", "/to/mv").ok());
  auto attr = fs_->tafdb()->ShardFor(moved)->Get(InodeKey::AttrRecord(moved));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->parent, to);
}

TEST_F(RenamerTest, DeepLoopDetection) {
  ASSERT_TRUE(client_->Mkdir("/a", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/a/b", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/a/b/c", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/a/b/c/d", 0755).ok());
  auto before = fs_->renamer()->stats();
  Status st = client_->Rename("/a", "/a/b/c/d/evil");
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fs_->renamer()->stats().loops_detected,
            before.loops_detected + 1);
  // Sibling-level move is not a loop.
  ASSERT_TRUE(client_->Mkdir("/other", 0755).ok());
  EXPECT_TRUE(client_->Rename("/a/b/c", "/other/c").ok());
}

TEST_F(RenamerTest, ReplacedEmptyDirIsRetired) {
  ASSERT_TRUE(client_->Mkdir("/s", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/t", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/s/victim", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/t/repl", 0755).ok());
  InodeId victim = IdOf("/s/victim");

  ASSERT_TRUE(client_->Rename("/t/repl", "/s/victim").ok());
  EXPECT_TRUE(fs_->tafdb()
                  ->ShardFor(victim)
                  ->Get(InodeKey::AttrRecord(victim))
                  .status()
                  .IsNotFound());
  auto now = client_->GetAttr("/s/victim");
  ASSERT_TRUE(now.ok());
  EXPECT_NE(now->id, victim);
}

TEST_F(RenamerTest, ConcurrentNormalPathRenamesSerialize) {
  ASSERT_TRUE(client_->Mkdir("/ca", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/cb", 0755).ok());
  constexpr int kFiles = 12;
  for (int i = 0; i < kFiles; i++) {
    ASSERT_TRUE(client_->Create("/ca/f" + std::to_string(i), 0644).ok());
  }
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<MetadataClient>> clients;
  for (int t = 0; t < 4; t++) clients.push_back(fs_->NewClient());
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      for (int i = t; i < kFiles; i += 4) {
        std::string from = "/ca/f" + std::to_string(i);
        std::string to = "/cb/g" + std::to_string(i);
        if (clients[t]->Rename(from, to).ok()) ok++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kFiles);
  auto ca = client_->GetAttr("/ca");
  auto cb = client_->GetAttr("/cb");
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ(ca->children, 0);
  EXPECT_EQ(cb->children, kFiles);
  EXPECT_GE(fs_->renamer()->stats().committed, static_cast<uint64_t>(kFiles));
}

TEST_F(RenamerTest, RacingRenamesOfSameSourceOnlyOneWins) {
  ASSERT_TRUE(client_->Mkdir("/ra", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/rb", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/rc", 0755).ok());
  ASSERT_TRUE(client_->Create("/ra/one", 0644).ok());

  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<MetadataClient>> clients;
  for (int t = 0; t < 2; t++) clients.push_back(fs_->NewClient());
  threads.emplace_back([&] {
    if (clients[0]->Rename("/ra/one", "/rb/one").ok()) wins++;
  });
  threads.emplace_back([&] {
    if (clients[1]->Rename("/ra/one", "/rc/one").ok()) wins++;
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(wins.load(), 1);
  // Verify with a cold-cache client: dentry caches may hold stale entries
  // (the moved file's attribute record legitimately still exists).
  auto fresh = fs_->NewClient();
  int found = 0;
  if (fresh->GetAttr("/rb/one").ok()) found++;
  if (fresh->GetAttr("/rc/one").ok()) found++;
  EXPECT_EQ(found, 1);
  EXPECT_TRUE(fresh->GetAttr("/ra/one").status().IsNotFound());
}

}  // namespace
}  // namespace cfs
