// Workload harness tests: closed-loop accounting, setup helpers, op
// factories (collision-free names, contention targeting), trace spec
// integrity, size sampling, and a short end-to-end trace replay.

#include <gtest/gtest.h>

#include "src/core/cfs.h"
#include "src/core/gc.h"
#include "src/workload/traces.h"
#include "src/workload/workload.h"

namespace cfs {
namespace {

CfsOptions TestCluster() {
  CfsOptions options = CfsFullOptions();
  options.num_servers = 6;
  options.tafdb.num_shards = 2;
  options.tafdb.raft.election_timeout_min_ms = 50;
  options.tafdb.raft.election_timeout_max_ms = 100;
  options.tafdb.raft.heartbeat_interval_ms = 20;
  options.filestore.num_nodes = 2;
  options.filestore.raft = options.tafdb.raft;
  options.renamer.raft = options.tafdb.raft;
  return options;
}

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_unique<Cfs>(TestCluster());
    ASSERT_TRUE(fs_->Start().ok());
    setup_ = fs_->NewClient();
  }
  void TearDown() override {
    setup_.reset();
    fs_->Stop();
  }

  std::vector<std::unique_ptr<MetadataClient>> Clients(size_t n) {
    std::vector<std::unique_ptr<MetadataClient>> out;
    for (size_t i = 0; i < n; i++) out.push_back(fs_->NewClient());
    return out;
  }

  std::unique_ptr<Cfs> fs_;
  std::unique_ptr<MetadataClient> setup_;
};

TEST_F(WorkloadTest, CreateOpRunsErrorFree) {
  ASSERT_TRUE(SetupPrivateDirs(setup_.get(), 4).ok());
  WorkloadRunner runner(Clients(4));
  RunResult result = runner.Run(MakeCreateOp(0.0), 300, 50);
  EXPECT_GT(result.ops, 0u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.ops_per_sec(), 0.0);
  EXPECT_GT(result.latency.count(), 0);
}

TEST_F(WorkloadTest, ContentionTargetsSharedDirectory) {
  ASSERT_TRUE(SetupPrivateDirs(setup_.get(), 2).ok());
  WorkloadRunner runner(Clients(2));
  RunResult result = runner.Run(MakeCreateOp(1.0), 200, 0);
  EXPECT_EQ(result.errors, 0u);
  auto shared = setup_->GetAttr("/shared");
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(static_cast<uint64_t>(shared->children), result.ops);
}

TEST_F(WorkloadTest, PairedOpsLeaveNoResidue) {
  ASSERT_TRUE(SetupPrivateDirs(setup_.get(), 2).ok());
  WorkloadRunner runner(Clients(2));
  RunResult unlinks = runner.Run(MakeUnlinkAfterCreateOp(0.0), 200, 0);
  EXPECT_EQ(unlinks.errors, 0u);
  RunResult rmdirs = runner.Run(MakeRmdirAfterMkdirOp(0.0), 200, 0);
  EXPECT_EQ(rmdirs.errors, 0u);
  for (int t = 0; t < 2; t++) {
    auto dir = setup_->GetAttr("/priv" + std::to_string(t));
    ASSERT_TRUE(dir.ok());
    EXPECT_EQ(dir->children, 0);
  }
}

TEST_F(WorkloadTest, ReadSideOpsUsePopulation) {
  ASSERT_TRUE(SetupPrivateDirs(setup_.get(), 2).ok());
  auto clients = Clients(2);
  std::vector<MetadataClient*> raw;
  for (auto& c : clients) raw.push_back(c.get());
  for (int t = 0; t < 2; t++) {
    ASSERT_TRUE(
        PopulateDirectory(raw, "/priv" + std::to_string(t), 16).ok());
  }
  WorkloadRunner runner(std::move(clients));
  RunResult result = runner.Run(MakeGetAttrOp(0.0, 16, 0), 200, 0);
  EXPECT_EQ(result.errors, 0u);
  RunResult lookups = runner.Run(MakeLookupOp(0.0, 16, 0), 200, 0);
  EXPECT_EQ(lookups.errors, 0u);
  RunResult setattrs = runner.Run(MakeSetAttrOp(0.0, 16, 0), 200, 0);
  EXPECT_EQ(setattrs.errors, 0u);
}

TEST_F(WorkloadTest, RenameOpTogglesWithoutErrors) {
  ASSERT_TRUE(setup_->Mkdir("/ren", 0755).ok());
  constexpr int kThreads = 2;
  for (int t = 0; t < kThreads; t++) {
    ASSERT_TRUE(setup_->Mkdir("/ren/t" + std::to_string(t), 0755).ok());
    ASSERT_TRUE(setup_->Mkdir("/ren/x" + std::to_string(t), 0755).ok());
    for (int i = 0; i < 16; i++) {
      ASSERT_TRUE(setup_
                      ->Create("/ren/t" + std::to_string(t) + "/r" +
                                   std::to_string(i) + "_a",
                               0644)
                      .ok());
    }
  }
  WorkloadRunner runner(Clients(kThreads));
  RunResult result = runner.Run(MakeRenameOp(0.9), 300, 0);
  EXPECT_GT(result.ops, 0u);
  EXPECT_EQ(result.errors, 0u);
}

TEST_F(WorkloadTest, RunCountExecutesExactly) {
  ASSERT_TRUE(SetupPrivateDirs(setup_.get(), 3).ok());
  WorkloadRunner runner(Clients(3));
  RunResult result = runner.RunCount(MakeCreateOp(0.0), 10);
  EXPECT_EQ(result.ops, 30u);
  EXPECT_EQ(result.errors, 0u);
}

TEST(TraceSpecTest, MixesSumToRoughly100) {
  for (const auto& spec : AllTraces()) {
    double total = 0;
    for (const auto& [op, pct] : spec.mix) total += pct;
    EXPECT_NEAR(total, 100.0, 0.5) << spec.name;
    EXPECT_FALSE(spec.file_size_cdf.empty());
    EXPECT_NEAR(spec.file_size_cdf.back().second, 1.0, 1e-9);
    EXPECT_NEAR(spec.io_size_cdf.back().second, 1.0, 1e-9);
  }
}

TEST(TraceSpecTest, SampleSizeMatchesAnchors) {
  // Fig 14 anchors: fraction of files <= 32KB per trace.
  struct Anchor {
    TraceSpec spec;
    double at_32k;
  };
  std::vector<Anchor> anchors = {{TraceTr0(), 0.7527},
                                 {TraceTr1(), 0.9134},
                                 {TraceTr2(), 0.8751}};
  for (auto& [spec, expected] : anchors) {
    Rng rng(42);
    int below = 0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; i++) {
      if (SampleSize(spec.file_size_cdf, rng) <= (32u << 10)) below++;
    }
    EXPECT_NEAR(below / static_cast<double>(kSamples), expected, 0.02)
        << spec.name;
    EXPECT_NEAR(CdfAt(spec.file_size_cdf, 32 << 10), expected, 1e-9);
  }
}

TEST(TraceSpecTest, Table1SharesMatchPaper) {
  auto shares = Table1OpShares();
  double total = 0;
  double getattr = 0;
  for (const auto& s : shares) {
    total += s.ratio;
    if (s.op == "getattr") getattr = s.ratio;
  }
  EXPECT_NEAR(total, 100.0, 0.5);
  EXPECT_NEAR(getattr, 75.25, 1e-9);  // the dominant op driving tiering
}

TEST_F(WorkloadTest, TraceReplayEndToEnd) {
  TraceReplayConfig config;
  config.num_dirs = 2;
  config.files_per_dir = 8;
  config.duration_ms = 300;
  config.warmup_ms = 0;
  TraceReplayer replayer(TraceTr1(), config);

  auto populate = Clients(2);
  std::vector<MetadataClient*> raw;
  for (auto& c : populate) raw.push_back(c.get());
  ASSERT_TRUE(replayer.Prepare(setup_.get(), raw).ok());

  TraceReplayResult result = replayer.Replay(Clients(2));
  EXPECT_GT(result.fs_ops, 0u);
  EXPECT_GE(result.meta_ops, result.fs_ops);  // stat etc. decompose
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.fs_latency.P999(), 0);
}

}  // namespace
}  // namespace cfs
