// Unit tests for the WAL: append/LSN sequencing, replay (memory and file),
// CDC tailing, prefix truncation, and torn-tail recovery.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/wal/wal.h"

namespace cfs {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("cfs_wal_test_" + name + "_" + std::to_string(::getpid())))
      .string();
}

TEST(WalTest, AppendAssignsSequentialLsns) {
  Wal wal;
  ASSERT_TRUE(wal.Open().ok());
  for (uint64_t i = 0; i < 10; i++) {
    auto lsn = wal.Append("rec" + std::to_string(i));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, i);
  }
  EXPECT_EQ(wal.NextLsn(), 10u);
}

TEST(WalTest, MemoryReplayDeliversInOrder) {
  Wal wal;
  ASSERT_TRUE(wal.Open().ok());
  (void)wal.Append("a");
  (void)wal.Append("b");
  (void)wal.Append("c");
  std::vector<std::string> seen;
  ASSERT_TRUE(wal.Replay([&](uint64_t lsn, std::string_view rec) {
                   EXPECT_EQ(lsn, seen.size());
                   seen.emplace_back(rec);
                 }).ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(WalTest, ReadFromTailsWindow) {
  Wal wal;
  ASSERT_TRUE(wal.Open().ok());
  for (int i = 0; i < 20; i++) {
    (void)wal.Append("r" + std::to_string(i));
  }
  auto batch = wal.ReadFrom(15, 100);
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch[0].first, 15u);
  EXPECT_EQ(batch[0].second, "r15");
  auto capped = wal.ReadFrom(0, 3);
  EXPECT_EQ(capped.size(), 3u);
}

TEST(WalTest, TruncatePrefixDropsOldRecords) {
  Wal wal;
  ASSERT_TRUE(wal.Open().ok());
  for (int i = 0; i < 10; i++) {
    (void)wal.Append("r" + std::to_string(i));
  }
  wal.TruncatePrefix(7);
  EXPECT_EQ(wal.FirstLsn(), 7u);
  auto batch = wal.ReadFrom(0, 100);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].first, 7u);
}

TEST(WalTest, WindowCapEvictsOldest) {
  WalOptions options;
  options.memory_window = 4;
  Wal wal(options);
  ASSERT_TRUE(wal.Open().ok());
  for (int i = 0; i < 10; i++) {
    (void)wal.Append("r" + std::to_string(i));
  }
  EXPECT_EQ(wal.FirstLsn(), 6u);
  EXPECT_EQ(wal.ReadFrom(0, 100).size(), 4u);
}

TEST(WalTest, FileBackedReplaySurvivesReopen) {
  std::string path = TempPath("reopen");
  std::remove(path.c_str());
  {
    WalOptions options;
    options.path = path;
    Wal wal(options);
    ASSERT_TRUE(wal.Open().ok());
    (void)wal.Append("persisted-1");
    (void)wal.Append("persisted-2");
  }
  WalOptions options;
  options.path = path;
  Wal wal(options);
  ASSERT_TRUE(wal.Open().ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(wal.Replay([&](uint64_t, std::string_view rec) {
                   seen.emplace_back(rec);
                 }).ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"persisted-1", "persisted-2"}));
  std::remove(path.c_str());
}

TEST(WalTest, TornTailStopsReplayCleanly) {
  std::string path = TempPath("torn");
  std::remove(path.c_str());
  WalOptions options;
  options.path = path;
  Wal wal(options);
  ASSERT_TRUE(wal.Open().ok());
  (void)wal.Append("good-record");
  (void)wal.Append("will-be-torn");
  ASSERT_TRUE(wal.CorruptTailForTest(4).ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(wal.Replay([&](uint64_t, std::string_view rec) {
                   seen.emplace_back(rec);
                 }).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "good-record");
  std::remove(path.c_str());
}

TEST(WalTest, SyncedAppendsCounted) {
  Wal wal;
  ASSERT_TRUE(wal.Open().ok());
  (void)wal.Append("a", /*sync=*/true);
  (void)wal.Append("b", /*sync=*/false);
  (void)wal.Append("c", /*sync=*/true);
  EXPECT_EQ(wal.synced_appends(), 2u);
}

TEST(WalTest, SimulatedFsyncDelayApplies) {
  WalOptions options;
  options.fsync_delay_us = 2000;
  Wal wal(options);
  ASSERT_TRUE(wal.Open().ok());
  auto start = std::chrono::steady_clock::now();
  (void)wal.Append("slow", /*sync=*/true);
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 2000);
  start = std::chrono::steady_clock::now();
  (void)wal.Append("fast", /*sync=*/false);
  elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  EXPECT_LT(elapsed, 2000);
}

}  // namespace
}  // namespace cfs
