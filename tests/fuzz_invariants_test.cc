// Namespace-invariant fuzz: several clients issue a random mix of metadata
// operations against one CFS cluster, then the whole namespace is audited:
//
//   I1  every directory's delta-applied `children` counter equals the
//       number of entries readdir returns (no lost updates, no leaks);
//   I2  every dentry's attribute record exists in its tier (after GC has
//       settled, no dangling dentries);
//   I3  every directory attribute record's parent backpointer names the
//       directory that actually contains its dentry (rename consistency);
//   I4  readdir never shows the reserved attribute key.
//
// Runs against full CFS and the lock-based CFS-base configuration with
// several seeds (TEST_P), in zero-latency mode so thousands of ops fit in
// a test budget.

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>

#include "src/core/cfs.h"
#include "src/core/gc.h"

namespace cfs {
namespace {

struct FuzzParam {
  bool primitives;
  uint64_t seed;
};

class FuzzInvariantsTest : public ::testing::TestWithParam<FuzzParam> {};

std::string RandomName(Rng& rng) {
  return "n" + std::to_string(rng.Uniform(40));
}

TEST_P(FuzzInvariantsTest, RandomOpsPreserveInvariants) {
  CfsOptions options =
      GetParam().primitives ? CfsFullOptions() : CfsBaseOptions();
  options.num_servers = 6;
  options.tafdb.num_shards = 3;
  options.tafdb.range_stripe_width = 2;
  options.tafdb.raft.election_timeout_min_ms = 50;
  options.tafdb.raft.election_timeout_max_ms = 100;
  options.tafdb.raft.heartbeat_interval_ms = 20;
  options.filestore.num_nodes = 2;
  options.filestore.raft = options.tafdb.raft;
  options.renamer.raft = options.tafdb.raft;
  // The orphan grace period must exceed the create pipeline's tail latency
  // (attr write -> link write) or the pairing analysis would reclaim
  // in-flight creations; generous here because the 1-core CI box can delay
  // a raft commit by hundreds of ms under this op storm.
  options.gc_interval_ms = 100;
  options.gc_grace_ms = 2000;
  // The audit below expects a single retry to converge. A cached ENOENT
  // planted by the op storm has no mutation to invalidate it (creates do
  // not bump directory epochs), so disable negative caching here; the
  // strict-convergence coherence tests exercise the TTL path instead.
  options.dentry_negative_ttl_ms = 0;
  Cfs fs(options);
  ASSERT_TRUE(fs.Start().ok());

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 400;
  // A fixed pool of directories keeps collisions (EEXIST/ENOENT/ENOTEMPTY)
  // frequent — the interesting paths.
  auto setup = fs.NewClient();
  std::vector<std::string> dirs = {"/d0", "/d1", "/d2", "/d3"};
  for (const auto& d : dirs) {
    ASSERT_TRUE(setup->Mkdir(d, 0755).ok());
  }

  std::vector<std::thread> threads;
  std::atomic<int> hard_failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      auto client = fs.NewClient();
      Rng rng(GetParam().seed * 7919 + t);
      for (int i = 0; i < kOpsPerThread; i++) {
        const std::string& dir = dirs[rng.Uniform(dirs.size())];
        std::string path = dir + "/" + RandomName(rng);
        Status st;
        switch (rng.Uniform(8)) {
          case 0: st = client->Create(path, 0644); break;
          case 1: st = client->Unlink(path); break;
          case 2: st = client->Mkdir(path, 0755); break;
          case 3: st = client->Rmdir(path); break;
          case 4: st = client->GetAttr(path).status(); break;
          case 5: st = client->ReadDir(dir).status(); break;
          case 6: {
            std::string to =
                dirs[rng.Uniform(dirs.size())] + "/" + RandomName(rng);
            st = client->Rename(path, to);
            break;
          }
          case 7: {
            SetAttrSpec spec;
            spec.mtime = rng.Next() % 100000;
            st = client->SetAttr(path, spec);
            break;
          }
        }
        // POSIX errors are expected under this fuzz; infrastructure errors
        // are not.
        switch (st.code()) {
          case ErrorCode::kOk:
          case ErrorCode::kNotFound:
          case ErrorCode::kAlreadyExists:
          case ErrorCode::kNotADirectory:
          case ErrorCode::kIsADirectory:
          case ErrorCode::kNotEmpty:
          case ErrorCode::kInvalidArgument:
            break;
          default:
            hard_failures++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hard_failures.load(), 0);

  // Let async cleanups and the GC settle before auditing.
  fs.filestore()->DrainAsync();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  fs.gc()->RunOnceForTest();

  // ---- audit ----
  auto audit = fs.NewClient();
  std::deque<std::pair<std::string, InodeId>> queue;
  queue.emplace_back("/", kRootInode);
  size_t dirs_checked = 0, entries_checked = 0;
  while (!queue.empty()) {
    auto [path, id] = queue.front();
    queue.pop_front();
    // One retry, as for GetAttr below: proxy-shared dentry caches may be
    // stale right after the op storm and must self-heal.
    auto listing = audit->ReadDir(path);
    if (!listing.ok()) listing = audit->ReadDir(path);
    ASSERT_TRUE(listing.ok()) << path << ": " << listing.status();
    auto attr = audit->GetAttr(path);
    if (!attr.ok()) attr = audit->GetAttr(path);
    ASSERT_TRUE(attr.ok()) << path << ": " << attr.status();
    // I1: counter == fanout.
    EXPECT_EQ(static_cast<size_t>(attr->children), listing->size()) << path;
    dirs_checked++;
    for (const auto& entry : *listing) {
      // I4: reserved names never leak into listings.
      EXPECT_NE(entry.name, kAttrKeyStr);
      std::string child_path =
          (path == "/" ? "" : path) + "/" + entry.name;
      // I2: every dentry's attributes resolve. One retry is allowed: a
      // stale cached dentry (proxy-mode engines share caches with the
      // just-finished op storm) fails once, self-invalidates, and must
      // converge — the same revalidation a kernel client performs.
      auto child_attr = audit->GetAttr(child_path);
      if (!child_attr.ok()) {
        child_attr = audit->GetAttr(child_path);
      }
      if (!child_attr.ok()) {
        auto gc_stats = fs.gc()->stats();
        ADD_FAILURE() << child_path << ": " << child_attr.status()
                      << " id=" << entry.id
                      << " type=" << static_cast<int>(entry.type)
                      << " gc_orphans=" << gc_stats.orphan_attrs_deleted
                      << " gc_missed=" << gc_stats.missed_deletes_fixed
                      << " gc_dangling=" << gc_stats.dangling_entries_removed;
        continue;
      }
      entries_checked++;
      if (entry.type == InodeType::kDirectory) {
        // I3: parent backpointer agrees with the containing directory.
        auto rec = fs.tafdb()
                       ->ShardFor(entry.id)
                       ->Get(InodeKey::AttrRecord(entry.id));
        ASSERT_TRUE(rec.ok()) << child_path;
        EXPECT_EQ(rec->parent, id) << child_path;
        queue.emplace_back(child_path, entry.id);
      }
    }
  }
  EXPECT_GE(dirs_checked, dirs.size() + 1);
  (void)entries_checked;
  fs.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzInvariantsTest,
    ::testing::Values(FuzzParam{true, 1}, FuzzParam{true, 2},
                      FuzzParam{true, 3}, FuzzParam{false, 1},
                      FuzzParam{false, 2}),
    [](const ::testing::TestParamInfo<FuzzParam>& info) {
      return std::string(info.param.primitives ? "FullCfs" : "CfsBase") +
             "Seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace cfs
