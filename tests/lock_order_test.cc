// Tests for the runtime lock-order tracker (src/common/lock_order.h) and
// the annotated cfs::Mutex / cfs::SharedMutex / cfs::CondVar wrappers
// (src/common/thread_annotations.h).
//
// Lock-class names are process-global and live for the process lifetime, so
// every test uses names unique to itself ("t.<test>.<lock>"); rank-0 classes
// exercise the held-before graph alone, ranked classes the rank rule.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/lock_order.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/simtime.h"
#include "src/common/thread_annotations.h"

namespace cfs {
namespace {

using lock_order::Violation;

#ifdef CFS_LOCK_ORDER_TRACKING

// Installs a recording handler for the test's lifetime (the default handler
// aborts the process) and resets the held-before graph so tests do not see
// edges recorded by earlier tests or by static initialization.
class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lock_order::ResetGraphForTest();
    lock_order::SetViolationHandler(
        [this](const Violation& v) { violations_.push_back(v); });
  }

  void TearDown() override {
    lock_order::SetViolationHandler(nullptr);
    lock_order::ResetGraphForTest();
  }

  std::vector<Violation> violations_;
};

TEST_F(LockOrderTest, RankRespectingNestingIsSilent) {
  Mutex outer{"t.silent.outer", 101};
  Mutex inner{"t.silent.inner", 102};
  for (int i = 0; i < 3; i++) {
    MutexLock a(outer);
    MutexLock b(inner);
    EXPECT_TRUE(violations_.empty());
  }
  EXPECT_TRUE(violations_.empty());
  EXPECT_EQ(lock_order::HeldDepthForTest(), 0u);
}

TEST_F(LockOrderTest, RankInversionReportsBothNames) {
  Mutex low{"t.rank.low", 110};
  Mutex high{"t.rank.high", 111};
  {
    MutexLock a(high);
    MutexLock b(low);  // rank 110 while holding rank 111: inversion
  }
  ASSERT_EQ(violations_.size(), 1u);
  const Violation& v = violations_[0];
  EXPECT_EQ(v.kind, Violation::Kind::kRank);
  EXPECT_EQ(v.acquiring, "t.rank.low");
  EXPECT_EQ(v.acquiring_rank, 110);
  EXPECT_EQ(v.held, "t.rank.high");
  EXPECT_EQ(v.held_rank, 111);
}

TEST_F(LockOrderTest, UnrankedClassesSkipTheRankRule) {
  // Rank 0 opts out of the rank rule: nesting under a ranked lock in either
  // order is fine as long as the graph stays acyclic.
  Mutex ranked{"t.unranked.ranked", 120};
  Mutex graph_only{"t.unranked.free", 0};
  {
    MutexLock a(ranked);
    MutexLock b(graph_only);
  }
  {
    // Same order again — consistent, so still silent.
    MutexLock a(ranked);
    MutexLock b(graph_only);
  }
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockOrderTest, InvertedOrderReportsCycleWithBothNames) {
  Mutex a{"t.cycle.a", 0};
  Mutex b{"t.cycle.b", 0};
  {
    MutexLock la(a);
    MutexLock lb(b);  // records a -> b
  }
  EXPECT_TRUE(violations_.empty());
  {
    MutexLock lb(b);
    MutexLock la(a);  // a already reaches b: deadlock potential
  }
  ASSERT_EQ(violations_.size(), 1u);
  const Violation& v = violations_[0];
  EXPECT_EQ(v.kind, Violation::Kind::kCycle);
  EXPECT_EQ(v.acquiring, "t.cycle.a");
  EXPECT_EQ(v.held, "t.cycle.b");
  // The report's elaboration names the path closing the cycle.
  EXPECT_NE(v.detail.find("t.cycle.a"), std::string::npos);
  EXPECT_NE(v.detail.find("t.cycle.b"), std::string::npos);
}

TEST_F(LockOrderTest, CycleAcrossThreeClassesIsDetected) {
  Mutex a{"t.cycle3.a", 0};
  Mutex b{"t.cycle3.b", 0};
  Mutex c{"t.cycle3.c", 0};
  {
    MutexLock la(a);
    MutexLock lb(b);  // a -> b
  }
  {
    MutexLock lb(b);
    MutexLock lc(c);  // b -> c
  }
  EXPECT_TRUE(violations_.empty());
  {
    MutexLock lc(c);
    MutexLock la(a);  // a reaches c transitively: cycle
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].kind, Violation::Kind::kCycle);
  EXPECT_EQ(violations_[0].acquiring, "t.cycle3.a");
  EXPECT_EQ(violations_[0].held, "t.cycle3.c");
}

TEST_F(LockOrderTest, InversionsAreSeenAcrossThreads) {
  // The whole point of the graph: thread 1 executes a -> b, thread 2
  // executes b -> a, and the second thread gets the report even though
  // neither thread ever deadlocks in this run.
  Mutex a{"t.xthread.a", 0};
  Mutex b{"t.xthread.b", 0};
  std::thread t1([&] {
    MutexLock la(a);
    MutexLock lb(b);
  });
  t1.join();
  EXPECT_TRUE(violations_.empty());
  // Handler runs on the violating thread; collect into a local vector.
  std::vector<Violation> remote;
  lock_order::SetViolationHandler(
      [&remote](const Violation& v) { remote.push_back(v); });
  std::thread t2([&] {
    MutexLock lb(b);
    MutexLock la(a);
  });
  t2.join();
  ASSERT_EQ(remote.size(), 1u);
  EXPECT_EQ(remote[0].kind, Violation::Kind::kCycle);
  EXPECT_EQ(remote[0].acquiring, "t.xthread.a");
  EXPECT_EQ(remote[0].held, "t.xthread.b");
}

TEST_F(LockOrderTest, RecursiveAcquisitionReportsSelf) {
  // Driven through the hook API: actually relocking a std::mutex would
  // deadlock before the expectation ran. In production the report aborts,
  // so the underlying relock is never reached.
  uint32_t cls = lock_order::RegisterClass("t.self.mu", 0);
  lock_order::OnAcquire(cls);
  lock_order::OnAcquire(cls);
  ASSERT_GE(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].kind, Violation::Kind::kSelf);
  EXPECT_EQ(violations_[0].acquiring, "t.self.mu");
  lock_order::OnRelease(cls);
  lock_order::OnRelease(cls);
  EXPECT_EQ(lock_order::HeldDepthForTest(), 0u);
}

TEST_F(LockOrderTest, RepeatedInversionKeepsReporting) {
  // The inverted edge is never admitted to the graph, so re-executing the
  // bad order re-reports instead of silently "sanctioning" it.
  Mutex a{"t.repeat.a", 0};
  Mutex b{"t.repeat.b", 0};
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  for (int i = 0; i < 2; i++) {
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_EQ(violations_.size(), 2u);
}

TEST_F(LockOrderTest, TryLockIsRecordedButNotChecked) {
  Mutex low{"t.try.low", 130};
  Mutex high{"t.try.high", 131};
  {
    MutexLock a(high);
    // A try-acquisition never blocks, so it is exempt from the order check…
    ASSERT_TRUE(low.TryLock());
    EXPECT_TRUE(violations_.empty());
    EXPECT_EQ(lock_order::HeldDepthForTest(), 2u);
    low.Unlock();
  }
  // …but a blocking acquisition made while a try-lock is held is checked
  // against it.
  ASSERT_TRUE(high.TryLock());
  {
    MutexLock b(low);  // rank 130 while holding rank 131
  }
  high.Unlock();
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].kind, Violation::Kind::kRank);
  EXPECT_EQ(violations_[0].held, "t.try.high");
}

TEST_F(LockOrderTest, SharedMutexParticipatesInOrdering) {
  SharedMutex rw{"t.shared.rw", 141};
  Mutex low{"t.shared.low", 140};
  {
    ReaderMutexLock r(rw);
    EXPECT_EQ(lock_order::HeldDepthForTest(), 1u);
  }
  {
    WriterMutexLock w(rw);
    EXPECT_EQ(lock_order::HeldDepthForTest(), 1u);
  }
  EXPECT_EQ(lock_order::HeldDepthForTest(), 0u);
  EXPECT_TRUE(violations_.empty());
  // Shared acquisitions obey the rank rule too.
  {
    MutexLock a(low);
    ReaderMutexLock r(rw);  // 141 over 140: fine
  }
  EXPECT_TRUE(violations_.empty());
  {
    ReaderMutexLock r(rw);
    MutexLock a(low);  // 140 while holding 141: inversion
  }
  // Both detectors fire: the rank rule, and the cycle check (the first
  // nesting above recorded low -> rw, which this order inverts).
  ASSERT_EQ(violations_.size(), 2u);
  EXPECT_EQ(violations_[0].kind, Violation::Kind::kRank);
  EXPECT_EQ(violations_[1].kind, Violation::Kind::kCycle);
  for (const Violation& v : violations_) {
    EXPECT_EQ(v.acquiring, "t.shared.low");
    EXPECT_EQ(v.held, "t.shared.rw");
  }
}

TEST_F(LockOrderTest, CondVarWaitReleasesAndReacquiresThroughTracker) {
  Mutex mu{"t.condvar.mu", 150};
  CondVar cv;
  bool ready = false;
  size_t depth_after_wait = 0;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) {
      cv.Wait(mu);
    }
    // The wait's relock went through OnAcquire: the lock is tracked as held.
    depth_after_wait = lock_order::HeldDepthForTest();
  });
  {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  }
  waiter.join();
  EXPECT_EQ(depth_after_wait, 1u);
  EXPECT_TRUE(violations_.empty());
  EXPECT_EQ(lock_order::HeldDepthForTest(), 0u);
}

TEST_F(LockOrderTest, CondVarWaitUntilTimesOut) {
  Mutex mu{"t.condvar.timeout", 151};
  CondVar cv;
  MutexLock lock(mu);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_FALSE(cv.WaitUntil(mu, deadline));
  // Timed-out wait still re-acquired: the held stack is balanced.
  EXPECT_EQ(lock_order::HeldDepthForTest(), 1u);
}

TEST_F(LockOrderTest, RelockableMutexLockBalancesTheStack) {
  Mutex mu{"t.relock.mu", 160};
  {
    MutexLock lock(mu);
    EXPECT_EQ(lock_order::HeldDepthForTest(), 1u);
    lock.Unlock();
    EXPECT_EQ(lock_order::HeldDepthForTest(), 0u);
    lock.Lock();
    EXPECT_EQ(lock_order::HeldDepthForTest(), 1u);
  }
  EXPECT_EQ(lock_order::HeldDepthForTest(), 0u);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockOrderTest, DisabledTrackerRecordsNothing) {
  Mutex a{"t.disabled.a", 0};
  Mutex b{"t.disabled.b", 0};
  lock_order::SetEnabled(false);
  {
    MutexLock la(a);
    MutexLock lb(b);
    EXPECT_EQ(lock_order::HeldDepthForTest(), 0u);
  }
  lock_order::SetEnabled(true);
  {
    // No a -> b edge was recorded above, so the "inverted" order is the
    // first order the tracker sees — silent.
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_TRUE(violations_.empty());
}

// ---------------------------------------------------------------------------
// Virtual-time leg: the tracker must behave identically when the locking
// code runs inside simtime::Scheduler tasks, and its hold-span accounting
// must read the *virtual* clock there (a lock held across AdvanceUs charges
// the advanced microseconds, not the nanoseconds of wall time that passed).

TEST_F(LockOrderTest, InversionDetectedInsideSchedulerTasks) {
  Mutex a{"t.vt.inv.a", 0};
  Mutex b{"t.vt.inv.b", 0};
  simtime::Scheduler sched(7);
  sched.At(0, [&] {
    MutexLock la(a);
    MutexLock lb(b);  // record a -> b
  });
  sched.At(10, [&] {
    MutexLock lb(b);
    MutexLock la(a);  // invert it
  });
  sched.RunUntil(100);
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].kind, Violation::Kind::kCycle);
  EXPECT_EQ(violations_[0].acquiring, "t.vt.inv.a");
  EXPECT_EQ(violations_[0].held, "t.vt.inv.b");
}

TEST_F(LockOrderTest, HoldSpansAccrueOnTheVirtualClock) {
  Mutex mu{"t.vt.span", 0};
  lock_order::ResetScopeStats();
  simtime::Scheduler sched(7);
  sched.At(0, [&] {
    MutexLock lock(mu);
    sched.AdvanceUs(1000);
  });
  sched.RunUntil(10'000);
  for (const auto& scope : lock_order::ScopeSnapshot()) {
    if (scope.name != "t.vt.span") continue;
    EXPECT_EQ(scope.holds, 1u);
    // The wall time spent inside the task is nanoseconds; only the virtual
    // advance can account for a 1000us span.
    EXPECT_GE(scope.total_hold_us, 1000);
    EXPECT_LE(scope.total_hold_us, 1100);
    return;
  }
  FAIL() << "class t.vt.span not found in ScopeSnapshot()";
}

TEST_F(LockOrderTest, ProductionRanksMatchDesignTable) {
  // Every production class registered so far must carry a positive rank —
  // rank 0 is reserved for test locks, and an unranked production class
  // would silently opt out of the hierarchy. Classes register lazily when
  // their mutex is constructed, so force two cfs_common ones to exist.
  MetricsRegistry::Global().GetCounter("lock_order_test.touch")->Add();
  CFS_LOG(kDebug) << "lock_order_test touching common.logging";
  bool saw_production_class = false;
  for (const auto& [name, rank] : lock_order::RegisteredClasses()) {
    if (name.rfind("t.", 0) == 0) continue;  // this file's classes
    saw_production_class = true;
    EXPECT_GT(rank, 0) << "production lock class \"" << name
                       << "\" is unranked";
  }
  EXPECT_TRUE(saw_production_class);
}

#endif  // CFS_LOCK_ORDER_TRACKING

// Wrapper smoke tests that must hold with or without the tracker compiled
// in (CFS_LOCK_ORDER=OFF builds still use the wrappers everywhere).
TEST(LockWrappersTest, MutexBasicLockableInterface) {
  Mutex mu{"t.smoke.basic", 0};
  mu.lock();
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  mu.Lock();
  std::thread t([&] {
    EXPECT_FALSE(mu.TryLock());  // held by the main thread
  });
  t.join();
  mu.Unlock();
}

TEST(LockWrappersTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex rw{"t.smoke.readers", 0};
  ReaderMutexLock r1(rw);
  std::thread t([&] {
    ReaderMutexLock r2(rw);  // would deadlock if readers excluded each other
  });
  t.join();
}

TEST(LockWrappersTest, MutexActuallyExcludes) {
  Mutex mu{"t.smoke.excl", 0};
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; i++) {
        MutexLock lock(mu);
        counter++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

}  // namespace
}  // namespace cfs
