// POSIX-semantics conformance suite (the pjdfstest analogue, §3.2): drives
// the PosixFs adapter over full CFS and asserts errno-level behaviour for
// the behaviour classes pjdfstest covers — mkdir/rmdir, open flags,
// unlink, rename corner cases, chmod/chown/truncate/utimens, symlink and
// hard-link behaviour, and readdir. Parameterized sweeps exercise name
// shapes and directory fanouts property-style.

#include <gtest/gtest.h>

#include <cerrno>

#include "src/core/cfs.h"
#include "src/core/gc.h"
#include "src/core/posix.h"

namespace cfs {
namespace {

class PosixConformanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CfsOptions options = CfsFullOptions();
    options.num_servers = 6;
    options.tafdb.num_shards = 2;
    options.tafdb.raft.election_timeout_min_ms = 50;
    options.tafdb.raft.election_timeout_max_ms = 100;
    options.tafdb.raft.heartbeat_interval_ms = 20;
    options.filestore.num_nodes = 2;
    options.filestore.raft = options.tafdb.raft;
    options.renamer.raft = options.tafdb.raft;
    fs_ = new Cfs(options);
    ASSERT_TRUE(fs_->Start().ok());
    posix_ = new PosixFs(fs_->NewClient());
  }

  static void TearDownTestSuite() {
    delete posix_;
    fs_->Stop();
    delete fs_;
    fs_ = nullptr;
    posix_ = nullptr;
  }

  // Fresh scratch directory per test.
  void SetUp() override {
    dir_ = "/scratch_" + std::string(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    for (char& c : dir_) {
      if (c == '/') c = '_';
    }
    dir_ = "/" + dir_.substr(1);
    ASSERT_EQ(posix_->Mkdir(dir_, 0755), 0);
  }

  std::string P(const std::string& rel) { return dir_ + "/" + rel; }

  static Cfs* fs_;
  static PosixFs* posix_;
  std::string dir_;
};

Cfs* PosixConformanceTest::fs_ = nullptr;
PosixFs* PosixConformanceTest::posix_ = nullptr;

// ---- mkdir / rmdir ----

TEST_F(PosixConformanceTest, MkdirCreatesWithMode) {
  ASSERT_EQ(posix_->Mkdir(P("d"), 0751), 0);
  StatBuf st;
  ASSERT_EQ(posix_->Stat(P("d"), &st), 0);
  EXPECT_EQ(st.type, InodeType::kDirectory);
  EXPECT_EQ(st.mode, 0751u);
  EXPECT_GE(st.nlink, 2);
}

TEST_F(PosixConformanceTest, MkdirEexistOnAnyExisting) {
  ASSERT_EQ(posix_->Mkdir(P("d"), 0755), 0);
  EXPECT_EQ(posix_->Mkdir(P("d"), 0755), -EEXIST);
  int fd = posix_->Open(P("f"), kOCreat, 0644);
  ASSERT_GE(fd, 0);
  posix_->Close(fd);
  EXPECT_EQ(posix_->Mkdir(P("f"), 0755), -EEXIST);
}

TEST_F(PosixConformanceTest, MkdirEnoentMissingAncestor) {
  EXPECT_EQ(posix_->Mkdir(P("no/such/dir"), 0755), -ENOENT);
}

TEST_F(PosixConformanceTest, MkdirEnotdirFileComponent) {
  int fd = posix_->Open(P("f"), kOCreat, 0644);
  ASSERT_GE(fd, 0);
  posix_->Close(fd);
  EXPECT_EQ(posix_->Mkdir(P("f/sub"), 0755), -ENOTDIR);
}

TEST_F(PosixConformanceTest, RmdirSemantics) {
  ASSERT_EQ(posix_->Mkdir(P("d"), 0755), 0);
  ASSERT_EQ(posix_->Mkdir(P("d/sub"), 0755), 0);
  EXPECT_EQ(posix_->Rmdir(P("d")), -ENOTEMPTY);
  EXPECT_EQ(posix_->Rmdir(P("d/sub")), 0);
  EXPECT_EQ(posix_->Rmdir(P("d")), 0);
  EXPECT_EQ(posix_->Rmdir(P("d")), -ENOENT);
  int fd = posix_->Open(P("f"), kOCreat, 0644);
  ASSERT_GE(fd, 0);
  posix_->Close(fd);
  EXPECT_EQ(posix_->Rmdir(P("f")), -ENOTDIR);
}

// ---- open ----

TEST_F(PosixConformanceTest, OpenCreatExclTruncMatrix) {
  // O_CREAT creates.
  int fd = posix_->Open(P("f"), kOCreat, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(posix_->Close(fd), 0);
  // O_CREAT on existing opens.
  fd = posix_->Open(P("f"), kOCreat, 0600);
  ASSERT_GE(fd, 0);
  StatBuf st;
  ASSERT_EQ(posix_->Stat(P("f"), &st), 0);
  EXPECT_EQ(st.mode, 0644u);  // existing mode preserved
  posix_->Close(fd);
  // O_CREAT|O_EXCL on existing: EEXIST.
  EXPECT_EQ(posix_->Open(P("f"), kOCreat | kOExcl, 0644), -EEXIST);
  // Plain open on missing: ENOENT.
  EXPECT_EQ(posix_->Open(P("missing"), 0), -ENOENT);
  // Open on directory: EISDIR.
  ASSERT_EQ(posix_->Mkdir(P("d"), 0755), 0);
  EXPECT_EQ(posix_->Open(P("d"), 0), -EISDIR);
  // O_TRUNC zeroes the size.
  fd = posix_->Open(P("f"), 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(posix_->PWrite(fd, "12345678", 0), 8);
  posix_->Close(fd);
  ASSERT_EQ(posix_->Stat(P("f"), &st), 0);
  EXPECT_EQ(st.size, 8);
  fd = posix_->Open(P("f"), kOTrunc);
  ASSERT_GE(fd, 0);
  posix_->Close(fd);
  ASSERT_EQ(posix_->Stat(P("f"), &st), 0);
  EXPECT_EQ(st.size, 0);
}

TEST_F(PosixConformanceTest, CloseInvalidFdIsEbadf) {
  EXPECT_EQ(posix_->Close(99999), -EBADF);
  EXPECT_EQ(posix_->PWrite(99999, "x", 0), -EBADF);
  std::string out;
  EXPECT_EQ(posix_->PRead(99999, 0, 1, &out), -EBADF);
}

// ---- unlink ----

TEST_F(PosixConformanceTest, UnlinkSemantics) {
  int fd = posix_->Open(P("f"), kOCreat, 0644);
  ASSERT_GE(fd, 0);
  posix_->Close(fd);
  EXPECT_EQ(posix_->Unlink(P("f")), 0);
  EXPECT_EQ(posix_->Unlink(P("f")), -ENOENT);
  ASSERT_EQ(posix_->Mkdir(P("d"), 0755), 0);
  EXPECT_EQ(posix_->Unlink(P("d")), -EISDIR);
}

// ---- stat / chmod / chown / utimens / truncate ----

TEST_F(PosixConformanceTest, AttributeRoundTrips) {
  int fd = posix_->Open(P("f"), kOCreat, 0644);
  ASSERT_GE(fd, 0);
  posix_->Close(fd);

  EXPECT_EQ(posix_->Chmod(P("f"), 0400), 0);
  StatBuf st;
  ASSERT_EQ(posix_->Stat(P("f"), &st), 0);
  EXPECT_EQ(st.mode, 0400u);

  EXPECT_EQ(posix_->Chown(P("f"), 42, 43), 0);
  ASSERT_EQ(posix_->Stat(P("f"), &st), 0);
  EXPECT_EQ(st.uid, 42u);
  EXPECT_EQ(st.gid, 43u);

  EXPECT_EQ(posix_->Truncate(P("f"), 1000), 0);
  ASSERT_EQ(posix_->Stat(P("f"), &st), 0);
  EXPECT_EQ(st.size, 1000);

  EXPECT_EQ(posix_->Utimens(P("f"), 123456), 0);
  ASSERT_EQ(posix_->Stat(P("f"), &st), 0);
  EXPECT_EQ(st.mtime, 123456u);

  EXPECT_EQ(posix_->Chmod(P("missing"), 0644), -ENOENT);
  ASSERT_EQ(posix_->Mkdir(P("d"), 0755), 0);
  EXPECT_EQ(posix_->Truncate(P("d"), 0), -EISDIR);
}

// ---- rename ----

TEST_F(PosixConformanceTest, RenameBasicAndCorners) {
  int fd = posix_->Open(P("a"), kOCreat, 0644);
  ASSERT_GE(fd, 0);
  posix_->Close(fd);

  EXPECT_EQ(posix_->Rename(P("a"), P("b")), 0);
  StatBuf st;
  EXPECT_EQ(posix_->Stat(P("a"), &st), -ENOENT);
  EXPECT_EQ(posix_->Stat(P("b"), &st), 0);

  // rename to itself succeeds and changes nothing.
  EXPECT_EQ(posix_->Rename(P("b"), P("b")), 0);
  EXPECT_EQ(posix_->Stat(P("b"), &st), 0);

  // missing source: ENOENT.
  EXPECT_EQ(posix_->Rename(P("ghost"), P("c")), -ENOENT);

  // file over directory: EISDIR; directory over file: ENOTDIR.
  ASSERT_EQ(posix_->Mkdir(P("dir"), 0755), 0);
  EXPECT_EQ(posix_->Rename(P("b"), P("dir")), -EISDIR);
  EXPECT_EQ(posix_->Rename(P("dir"), P("b")), -ENOTDIR);

  // directory over empty directory succeeds.
  ASSERT_EQ(posix_->Mkdir(P("dir2"), 0755), 0);
  EXPECT_EQ(posix_->Rename(P("dir"), P("dir2")), 0);
  EXPECT_EQ(posix_->Stat(P("dir"), &st), -ENOENT);

  // ancestor into descendant: EINVAL.
  ASSERT_EQ(posix_->Mkdir(P("dir2/inner"), 0755), 0);
  EXPECT_EQ(posix_->Rename(P("dir2"), P("dir2/inner/x")), -EINVAL);
}

TEST_F(PosixConformanceTest, RenamePreservesInodeAndContent) {
  int fd = posix_->Open(P("src"), kOCreat, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(posix_->PWrite(fd, "persistent-content", 0), 18);
  posix_->Close(fd);
  StatBuf before;
  ASSERT_EQ(posix_->Stat(P("src"), &before), 0);

  ASSERT_EQ(posix_->Rename(P("src"), P("dst")), 0);
  StatBuf after;
  ASSERT_EQ(posix_->Stat(P("dst"), &after), 0);
  EXPECT_EQ(after.ino, before.ino);
  EXPECT_EQ(after.size, 18);

  fd = posix_->Open(P("dst"), 0);
  ASSERT_GE(fd, 0);
  std::string out;
  ASSERT_EQ(posix_->PRead(fd, 0, 18, &out), 18);
  EXPECT_EQ(out, "persistent-content");
  posix_->Close(fd);
}

// ---- symlink / link ----

TEST_F(PosixConformanceTest, SymlinkBehaviour) {
  EXPECT_EQ(posix_->Symlink("/nonexistent/target", P("dangling")), 0);
  std::string target;
  EXPECT_EQ(posix_->ReadlinkInto(P("dangling"), &target), 0);
  EXPECT_EQ(target, "/nonexistent/target");
  // Symlink over existing name: EEXIST.
  EXPECT_EQ(posix_->Symlink("/x", P("dangling")), -EEXIST);
  // readlink on non-symlink: EINVAL.
  ASSERT_EQ(posix_->Mkdir(P("d"), 0755), 0);
  EXPECT_EQ(posix_->ReadlinkInto(P("d"), &target), -EINVAL);
  // unlink removes the link, not any target.
  EXPECT_EQ(posix_->Unlink(P("dangling")), 0);
}

TEST_F(PosixConformanceTest, HardLinkBehaviour) {
  int fd = posix_->Open(P("f"), kOCreat, 0644);
  ASSERT_GE(fd, 0);
  posix_->Close(fd);
  EXPECT_EQ(posix_->LinkFile(P("f"), P("l")), 0);
  StatBuf a, b;
  ASSERT_EQ(posix_->Stat(P("f"), &a), 0);
  ASSERT_EQ(posix_->Stat(P("l"), &b), 0);
  EXPECT_EQ(a.ino, b.ino);
  EXPECT_EQ(a.nlink, 2);
  // link to missing source: ENOENT; over existing dest: EEXIST; dir: EACCES.
  EXPECT_EQ(posix_->LinkFile(P("missing"), P("l2")), -ENOENT);
  EXPECT_EQ(posix_->LinkFile(P("f"), P("l")), -EEXIST);
  ASSERT_EQ(posix_->Mkdir(P("d"), 0755), 0);
  EXPECT_EQ(posix_->LinkFile(P("d"), P("dl")), -EACCES);
}

// ---- readdir ----

TEST_F(PosixConformanceTest, ReadDirContents) {
  ASSERT_EQ(posix_->Mkdir(P("d"), 0755), 0);
  for (int i = 0; i < 10; i++) {
    int fd = posix_->Open(P("d/f" + std::to_string(i)), kOCreat, 0644);
    ASSERT_GE(fd, 0);
    posix_->Close(fd);
  }
  std::vector<DirEntry> entries;
  ASSERT_EQ(posix_->ReadDirInto(P("d"), &entries), 0);
  EXPECT_EQ(entries.size(), 10u);
  EXPECT_EQ(posix_->ReadDirInto(P("missing"), &entries), -ENOENT);
  int fd = posix_->Open(P("plain"), kOCreat, 0644);
  ASSERT_GE(fd, 0);
  posix_->Close(fd);
  EXPECT_EQ(posix_->ReadDirInto(P("plain"), &entries), -ENOTDIR);
}

// ---- I/O ----

TEST_F(PosixConformanceTest, WriteReadRoundTrip) {
  int fd = posix_->Open(P("io"), kOCreat, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(posix_->PWrite(fd, "0123456789", 0), 10);
  std::string out;
  ASSERT_EQ(posix_->PRead(fd, 0, 10, &out), 10);
  EXPECT_EQ(out, "0123456789");
  ASSERT_EQ(posix_->PRead(fd, 4, 3, &out), 3);
  EXPECT_EQ(out, "456");
  posix_->Close(fd);
}

// ---- invalid paths ----

TEST_F(PosixConformanceTest, InvalidPathsRejected) {
  EXPECT_EQ(posix_->Mkdir("relative/path", 0755), -EINVAL);
  EXPECT_EQ(posix_->Mkdir(P("a/../b"), 0755), -EINVAL);
  EXPECT_EQ(posix_->Rmdir("/"), -EINVAL);
  // "_ATTR" is a legal file name: the reserved attribute kStr is "/_ATTR",
  // which no path component can collide with ('/' is the separator).
  EXPECT_EQ(posix_->Mkdir(P("_ATTR"), 0755), 0);
  std::vector<DirEntry> entries;
  ASSERT_EQ(posix_->ReadDirInto(P("_ATTR"), &entries), 0);
  EXPECT_TRUE(entries.empty());
}

// ---- parameterized name-shape sweep (property-style) ----

class NameShapeTest : public PosixConformanceTest,
                      public ::testing::WithParamInterface<const char*> {};

// Re-declare statics access through the fixture hierarchy.
TEST_P(NameShapeTest, CreateStatUnlinkRoundTrip) {
  std::string name = GetParam();
  std::string path = P(name);
  int fd = posix_->Open(path, kOCreat, 0644);
  ASSERT_GE(fd, 0) << name;
  posix_->Close(fd);
  StatBuf st;
  EXPECT_EQ(posix_->Stat(path, &st), 0) << name;
  std::vector<DirEntry> entries;
  ASSERT_EQ(posix_->ReadDirInto(dir_, &entries), 0);
  bool found = false;
  for (const auto& e : entries) {
    if (e.name == name) found = true;
  }
  EXPECT_TRUE(found) << name;
  EXPECT_EQ(posix_->Unlink(path), 0) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Names, NameShapeTest,
    ::testing::Values("plain", "with.dots", "with-dashes", "with_underscore",
                      "UPPERCASE", "0numeric", " space-lead",
                      "ünïcödé", "very-long-name-very-long-name-very-long-"
                                 "name-very-long-name-very-long-name-123456"),
    [](const ::testing::TestParamInfo<const char*>& param) {
      return "case" + std::to_string(param.index);
    });

// ---- parameterized fanout sweep ----

class FanoutTest : public PosixConformanceTest,
                   public ::testing::WithParamInterface<int> {};

TEST_P(FanoutTest, ChildrenCountMatchesFanout) {
  int fanout = GetParam();
  ASSERT_EQ(posix_->Mkdir(P("fan"), 0755), 0);
  for (int i = 0; i < fanout; i++) {
    int fd = posix_->Open(P("fan/f" + std::to_string(i)), kOCreat, 0644);
    ASSERT_GE(fd, 0);
    posix_->Close(fd);
  }
  StatBuf st;
  ASSERT_EQ(posix_->Stat(P("fan"), &st), 0);
  std::vector<DirEntry> entries;
  ASSERT_EQ(posix_->ReadDirInto(P("fan"), &entries), 0);
  EXPECT_EQ(entries.size(), static_cast<size_t>(fanout));
  // Unlink everything; the directory becomes removable again.
  for (int i = 0; i < fanout; i++) {
    EXPECT_EQ(posix_->Unlink(P("fan/f" + std::to_string(i))), 0);
  }
  EXPECT_EQ(posix_->Rmdir(P("fan")), 0);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, FanoutTest,
                         ::testing::Values(1, 2, 7, 32, 100));

}  // namespace
}  // namespace cfs
