// Lock manager tests: modes, reentrancy, upgrades, FIFO/starvation control,
// timeouts (deadlock escape), ordered multi-key acquisition, wait tracking.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "src/txn/lock_manager.h"
#include "src/txn/timestamp_oracle.h"
#include "src/txn/two_phase_commit.h"

namespace cfs {
namespace {

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Lock(1, "row", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Lock(2, "row", LockMode::kShared).ok());
  EXPECT_TRUE(lm.IsLocked("row"));
  lm.UnlockAll(1);
  lm.UnlockAll(2);
  EXPECT_FALSE(lm.IsLocked("row"));
}

TEST(LockManagerTest, ExclusiveExcludes) {
  LockManager lm;
  EXPECT_TRUE(lm.Lock(1, "row", LockMode::kExclusive).ok());
  EXPECT_EQ(lm.Lock(2, "row", LockMode::kShared, 20000).code(),
            ErrorCode::kTimeout);
  EXPECT_EQ(lm.Lock(2, "row", LockMode::kExclusive, 20000).code(),
            ErrorCode::kTimeout);
  lm.Unlock(1, "row");
  EXPECT_TRUE(lm.Lock(2, "row", LockMode::kExclusive).ok());
}

TEST(LockManagerTest, ReentrantSameTxn) {
  LockManager lm;
  EXPECT_TRUE(lm.Lock(1, "row", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Lock(1, "row", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Lock(1, "row", LockMode::kShared).ok());
  EXPECT_EQ(lm.HeldCount(1), 1u);
}

TEST(LockManagerTest, SoleSharedHolderUpgrades) {
  LockManager lm;
  EXPECT_TRUE(lm.Lock(1, "row", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Lock(1, "row", LockMode::kExclusive).ok());
  // Now exclusive: another shared must wait.
  EXPECT_EQ(lm.Lock(2, "row", LockMode::kShared, 20000).code(),
            ErrorCode::kTimeout);
}

TEST(LockManagerTest, UpgradeBlockedWhileOthersShare) {
  LockManager lm;
  EXPECT_TRUE(lm.Lock(1, "row", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Lock(2, "row", LockMode::kShared).ok());
  EXPECT_EQ(lm.Lock(1, "row", LockMode::kExclusive, 20000).code(),
            ErrorCode::kTimeout);
  lm.UnlockAll(2);
  EXPECT_TRUE(lm.Lock(1, "row", LockMode::kExclusive).ok());
}

TEST(LockManagerTest, WaiterIsWokenOnRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "row", LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    ASSERT_TRUE(lm.Lock(2, "row", LockMode::kExclusive, 2000000).ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lm.Unlock(1, "row");
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockManagerTest, QueuedWriterBlocksNewReaders) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "row", LockMode::kShared).ok());
  std::thread writer([&] {
    // Will queue behind txn 1's shared lock.
    ASSERT_TRUE(lm.Lock(2, "row", LockMode::kExclusive, 2000000).ok());
    lm.UnlockAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // A new reader must not overtake the queued writer.
  EXPECT_EQ(lm.Lock(3, "row", LockMode::kShared, 20000).code(),
            ErrorCode::kTimeout);
  lm.UnlockAll(1);
  writer.join();
  EXPECT_TRUE(lm.Lock(3, "row", LockMode::kShared).ok());
}

TEST(LockManagerTest, LockAllIsAtomicOnFailure) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(9, "b", LockMode::kExclusive).ok());
  Status st = lm.LockAll(1, {"a", "b", "c"}, LockMode::kExclusive, 20000);
  EXPECT_EQ(st.code(), ErrorCode::kTimeout);
  // Nothing must remain held by txn 1.
  EXPECT_EQ(lm.HeldCount(1), 0u);
  EXPECT_FALSE(lm.IsLocked("a"));
  lm.UnlockAll(9);
  EXPECT_TRUE(lm.LockAll(1, {"a", "b", "c"}, LockMode::kExclusive).ok());
  EXPECT_EQ(lm.HeldCount(1), 3u);
}

TEST(LockManagerTest, LockAllOrderingPreventsDeadlock) {
  LockManager lm;
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  // Two txns locking the same keys in opposite declared order: ordered
  // acquisition must prevent deadlock.
  for (int t = 0; t < 2; t++) {
    threads.emplace_back([&lm, &done, t] {
      for (int i = 0; i < 50; i++) {
        TxnId txn = 100 + static_cast<TxnId>(t);
        std::vector<std::string> keys =
            t == 0 ? std::vector<std::string>{"x", "y"}
                   : std::vector<std::string>{"y", "x"};
        ASSERT_TRUE(lm.LockAll(txn, keys, LockMode::kExclusive, 5000000).ok());
        lm.UnlockAll(txn);
      }
      done++;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(done.load(), 2);
}

TEST(LockManagerTest, ThreadWaitAccounting) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, "row", LockMode::kExclusive).ok());
  std::thread waiter([&] {
    LockManager::ResetThreadWait();
    ASSERT_TRUE(lm.Lock(2, "row", LockMode::kExclusive, 2000000).ok());
    EXPECT_GE(LockManager::ThreadWaitMicros(), 10000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  lm.Unlock(1, "row");
  waiter.join();
  auto stats = lm.stats();
  EXPECT_GE(stats.acquisitions, 2u);
  EXPECT_GE(stats.contended_acquisitions, 1u);
  EXPECT_GT(stats.total_wait_us, 0);
}

TEST(TimestampOracleTest, MonotonicAndBatched) {
  TimestampOracle oracle;
  uint64_t a = oracle.Next();
  uint64_t b = oracle.Next();
  EXPECT_GT(b, a);
  uint64_t first = oracle.NextBatch(100);
  EXPECT_GT(first, b);
  EXPECT_EQ(oracle.Next(), first + 100);
  oracle.AdvanceTo(100000);
  EXPECT_GT(oracle.Next(), 100000u);
}

TEST(TimestampCacheTest, HandsOutDistinctTimestamps) {
  SimNet net;
  NodeId ts_node = net.AddNode("ts", 0);
  NodeId client = net.AddNode("client", 1);
  TimestampOracle oracle(ts_node);
  TimestampCache cache(&net, client, &oracle, 16);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(seen.insert(cache.Next()).second);
  }
  // 100 timestamps from batches of 16 -> ceil(100/16)=7 oracle RPCs.
  EXPECT_EQ(net.TotalCalls(), 7u);
}

// --- 2PC over toy participants ---

class ToyParticipant : public TxnParticipant {
 public:
  ToyParticipant(NodeId net_id, bool vote_yes)
      : net_id_(net_id), vote_yes_(vote_yes) {}

  Status Prepare(TxnId) override {
    prepares++;
    return vote_yes_ ? Status::Ok() : Status::Aborted("vote no");
  }
  Status Commit(TxnId) override {
    commits++;
    return Status::Ok();
  }
  Status Abort(TxnId) override {
    aborts++;
    return Status::Ok();
  }
  NodeId ParticipantNetId() const override { return net_id_; }

  int prepares = 0, commits = 0, aborts = 0;

 private:
  NodeId net_id_;
  bool vote_yes_;
};

TEST(TwoPhaseCommitTest, AllYesCommits) {
  SimNet net;
  NodeId coord = net.AddNode("coord", 0);
  ToyParticipant p1(net.AddNode("p1", 1), true);
  ToyParticipant p2(net.AddNode("p2", 2), true);
  TwoPhaseCommit tpc(&net);
  EXPECT_TRUE(tpc.Run(coord, {&p1, &p2}, 7).ok());
  EXPECT_EQ(p1.commits, 1);
  EXPECT_EQ(p2.commits, 1);
  EXPECT_EQ(tpc.stats().committed, 1u);
  // 2 prepares + 2 commits = 4 RPCs.
  EXPECT_EQ(net.TotalCalls(), 4u);
}

TEST(TwoPhaseCommitTest, AnyNoAbortsEverywhere) {
  SimNet net;
  NodeId coord = net.AddNode("coord", 0);
  ToyParticipant p1(net.AddNode("p1", 1), true);
  ToyParticipant p2(net.AddNode("p2", 2), false);
  TwoPhaseCommit tpc(&net);
  Status st = tpc.Run(coord, {&p1, &p2}, 8);
  EXPECT_EQ(st.code(), ErrorCode::kAborted);
  EXPECT_EQ(p1.commits, 0);
  EXPECT_EQ(p2.commits, 0);
  EXPECT_EQ(p1.aborts, 1);
  EXPECT_EQ(p2.aborts, 1);
  EXPECT_EQ(tpc.stats().aborted, 1u);
}

TEST(TwoPhaseCommitTest, UnreachableParticipantAborts) {
  SimNet net;
  NodeId coord = net.AddNode("coord", 0);
  ToyParticipant p1(net.AddNode("p1", 1), true);
  ToyParticipant p2(net.AddNode("p2", 2), true);
  net.SetNodeDown(p2.ParticipantNetId(), true);
  TwoPhaseCommit tpc(&net);
  Status st = tpc.Run(coord, {&p1, &p2}, 9);
  EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(p1.commits, 0);
}

TEST(TwoPhaseCommitTest, DeduplicatesParticipants) {
  SimNet net;
  NodeId coord = net.AddNode("coord", 0);
  ToyParticipant p1(net.AddNode("p1", 1), true);
  TwoPhaseCommit tpc(&net);
  EXPECT_TRUE(tpc.Run(coord, {&p1, &p1, &p1}, 10).ok());
  EXPECT_EQ(p1.prepares, 1);
  EXPECT_EQ(p1.commits, 1);
}

}  // namespace
}  // namespace cfs
