// Critical-section scope auditor tests (src/common/lock_order.h +
// SimNet::OnRpcEdge wiring): RPC-under-lock detection and reporting,
// RpcHoldPolicy registration rules, logical scope entries, hold-span
// accounting, unbalanced-pop diagnostics, and the end-to-end paper claim —
// CFS issues no RPC under any never-across-rpc lock class while the
// HopsFS baseline's transaction row locks span RPCs by design.
//
// Lock-class names are process-global; every test uses names unique to
// itself ("t.cs.<test>.<lock>").

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/baselines/hopsfs/hopsfs.h"
#include "src/common/lock_order.h"
#include "src/common/thread_annotations.h"
#include "src/core/cfs.h"
#include "src/net/simnet.h"
#include "src/txn/timestamp_oracle.h"

namespace cfs {
namespace {

using lock_order::RpcHoldPolicy;
using lock_order::Violation;

#ifdef CFS_LOCK_ORDER_TRACKING

// Finds a class's scope stats by name; fails the test if absent.
lock_order::ClassScope ScopeOf(const std::string& name) {
  for (auto& cs : lock_order::ScopeSnapshot()) {
    if (cs.name == name) return cs;
  }
  ADD_FAILURE() << "lock class not registered: " << name;
  return {};
}

// Installs a recording handler (the default aborts) and restores RPC
// enforcement, which some tests toggle off.
class CsScopeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lock_order::ResetGraphForTest();
    lock_order::SetRpcEnforcement(true);
    lock_order::SetViolationHandler(
        [this](const Violation& v) { violations_.push_back(v); });
  }

  void TearDown() override {
    lock_order::SetViolationHandler(nullptr);
    lock_order::SetRpcEnforcement(true);
    lock_order::ResetGraphForTest();
  }

  std::vector<Violation> violations_;
};

TEST_F(CsScopeTest, RpcUnderNeverClassReportsClassAndEdge) {
  SimNet net;
  NodeId client = net.AddNode("client", 0);
  NodeId shard = net.AddNode("shard", 1);
  Mutex mu{"t.cs.report.mu", 2};
  {
    MutexLock lock(mu);
    (void)net.Call(client, shard, [] { return Status::Ok(); });
  }
  ASSERT_EQ(violations_.size(), 1u);
  const Violation& v = violations_[0];
  EXPECT_EQ(v.kind, Violation::Kind::kRpcUnderLock);
  EXPECT_EQ(v.held, "t.cs.report.mu");
  EXPECT_EQ(v.held_rank, 2);
  EXPECT_EQ(v.rpc_edge, "client -> shard");
  auto cs = ScopeOf("t.cs.report.mu");
  EXPECT_EQ(cs.rpcs_under_lock, 1u);
  EXPECT_EQ(cs.rpc_violations, 1u);
}

TEST_F(CsScopeTest, RpcChargedToEveryHeldNeverClass) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  Mutex outer{"t.cs.multi.outer", 3};
  Mutex inner{"t.cs.multi.inner", 4};
  {
    MutexLock lo(outer);
    MutexLock li(inner);
    (void)net.Call(a, b, [] { return Status::Ok(); });
  }
  EXPECT_EQ(violations_.size(), 2u);
  EXPECT_EQ(ScopeOf("t.cs.multi.outer").rpcs_under_lock, 1u);
  EXPECT_EQ(ScopeOf("t.cs.multi.inner").rpcs_under_lock, 1u);
}

TEST_F(CsScopeTest, MulticastChargesPerDestination) {
  SimNet net;
  NodeId src = net.AddNode("src", 0);
  std::vector<NodeId> dests{net.AddNode("d0", 1), net.AddNode("d1", 2)};
  Mutex mu{"t.cs.mcast.mu", 5};
  {
    MutexLock lock(mu);
    net.Multicast(src, dests, [](NodeId) {});
  }
  EXPECT_EQ(violations_.size(), 2u);
  EXPECT_EQ(ScopeOf("t.cs.mcast.mu").rpcs_under_lock, 2u);
  EXPECT_EQ(violations_[0].rpc_edge, "src -> d0");
  EXPECT_EQ(violations_[1].rpc_edge, "src -> d1");
}

TEST_F(CsScopeTest, AllowedScopeClassIsCountedNotReported) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  uint32_t cls = lock_order::RegisterClass(
      "t.cs.allowed.rowlock", 0, RpcHoldPolicy::kAllowedAcrossRpc,
      "models a baseline's row locks held across transaction round trips");
  lock_order::OnScopeEnter(cls);
  for (int i = 0; i < 3; i++) {
    (void)net.Call(a, b, [] { return Status::Ok(); });
  }
  lock_order::OnScopeExit(cls);
  EXPECT_TRUE(violations_.empty());
  auto cs = ScopeOf("t.cs.allowed.rowlock");
  EXPECT_EQ(cs.policy, RpcHoldPolicy::kAllowedAcrossRpc);
  EXPECT_EQ(cs.rpcs_under_lock, 3u);
  EXPECT_EQ(cs.rpc_violations, 0u);
  EXPECT_EQ(cs.holds, 1u);
  EXPECT_EQ(cs.holds_with_rpc, 1u);
  // 3 RPCs under one hold -> the "2-7 rpcs" bucket.
  EXPECT_EQ(cs.rpc_buckets[lock_order::RpcHoldBucketFor(3)].holds, 1u);
}

TEST_F(CsScopeTest, ScopeEntriesAreExemptFromSelfAndRankChecks) {
  // One thread legally holds many row locks of one class, under a held
  // ranked mutex, without tripping the deadlock checks.
  uint32_t cls = lock_order::RegisterClass(
      "t.cs.exempt.rowlock", 0, RpcHoldPolicy::kAllowedAcrossRpc,
      "logical row locks, many per thread");
  Mutex mu{"t.cs.exempt.mu", 6};
  lock_order::OnScopeEnter(cls);
  lock_order::OnScopeEnter(cls);
  {
    MutexLock lock(mu);
  }
  lock_order::OnScopeExit(cls);
  lock_order::OnScopeExit(cls);
  EXPECT_TRUE(violations_.empty());
  EXPECT_EQ(ScopeOf("t.cs.exempt.rowlock").holds, 2u);
  EXPECT_EQ(lock_order::HeldDepthForTest(), 0u);
}

TEST_F(CsScopeTest, EnforcementOffCountsWithoutReporting) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  Mutex mu{"t.cs.noenforce.mu", 7};
  lock_order::SetRpcEnforcement(false);
  uint64_t before = lock_order::TotalRpcUnderLockViolations();
  {
    MutexLock lock(mu);
    (void)net.Call(a, b, [] { return Status::Ok(); });
  }
  EXPECT_TRUE(violations_.empty());
  EXPECT_EQ(ScopeOf("t.cs.noenforce.mu").rpc_violations, 1u);
  EXPECT_EQ(lock_order::TotalRpcUnderLockViolations(), before + 1);
}

TEST_F(CsScopeTest, HoldSpansBucketedByRpcCount) {
  Mutex mu{"t.cs.span.mu", 8};
  {
    MutexLock lock(mu);
  }
  auto cs = ScopeOf("t.cs.span.mu");
  EXPECT_EQ(cs.holds, 1u);
  EXPECT_EQ(cs.holds_with_rpc, 0u);
  EXPECT_EQ(cs.rpc_buckets[0].holds, 1u);
  EXPECT_GE(cs.max_hold_us, 0);
  EXPECT_GE(cs.total_hold_us, 0);
}

TEST_F(CsScopeTest, UnbalancedReleaseCountsAndWarnsOnce) {
  uint32_t cls = lock_order::RegisterClass("t.cs.unbal.mu", 0);
  uint64_t before = lock_order::TotalUnbalancedPops();
  lock_order::OnRelease(cls);  // nothing held: wrapper-bug diagnostic
  lock_order::OnRelease(cls);
  EXPECT_EQ(lock_order::TotalUnbalancedPops(), before + 2);
  EXPECT_EQ(ScopeOf("t.cs.unbal.mu").unbalanced_pops, 2u);
}

TEST_F(CsScopeTest, TimestampCacheRefillIssuesNoRpcUnderLock) {
  // Regression for the pruned-scope refactor: TimestampCache::Next drops
  // txn.tscache across the oracle refill RPC. Any held never-across-rpc
  // class at the refill would be recorded here.
  SimNet net;
  NodeId ts_node = net.AddNode("ts", 0);
  NodeId client = net.AddNode("client", 1);
  TimestampOracle oracle(ts_node);
  TimestampCache cache(&net, client, &oracle, 8);
  for (int i = 0; i < 100; i++) {
    (void)cache.Next();
  }
  EXPECT_GT(net.TotalCalls(), 0u);
  EXPECT_TRUE(violations_.empty());
}

// --- End-to-end: the acceptance claim -------------------------------------

CfsOptions SmallCfs() {
  CfsOptions options = CfsFullOptions();
  options.num_servers = 6;
  options.tafdb.num_shards = 2;
  options.tafdb.range_stripe_width = 4;
  options.tafdb.raft.election_timeout_min_ms = 50;
  options.tafdb.raft.election_timeout_max_ms = 100;
  options.tafdb.raft.heartbeat_interval_ms = 20;
  options.filestore.num_nodes = 2;
  options.filestore.raft = options.tafdb.raft;
  options.renamer.raft = options.tafdb.raft;
  return options;
}

BaselineOptions SmallBaseline() {
  BaselineOptions options;
  options.num_servers = 6;
  options.num_proxies = 2;
  options.tafdb.num_shards = 3;
  options.tafdb.raft.election_timeout_min_ms = 50;
  options.tafdb.raft.election_timeout_max_ms = 100;
  options.tafdb.raft.heartbeat_interval_ms = 20;
  options.filestore.num_nodes = 2;
  options.filestore.raft = options.tafdb.raft;
  return options;
}

// Full CFS with the *default abort handler* live: a single RPC issued under
// any never-across-rpc class would kill the test. The snapshot then pins
// the paper's claim — 0 RPCs-under-lock for every CFS lock class — while
// the renamer's deliberately-exempt directory locks do span RPCs.
TEST(CsScopeEndToEndTest, CfsIssuesNoRpcUnderAnyNeverClass) {
  lock_order::ResetScopeStats();
  Cfs fs(SmallCfs());
  ASSERT_TRUE(fs.Start().ok());
  {
    auto client = fs.NewClient();
    ASSERT_TRUE(client->Mkdir("/a", 0755).ok());
    ASSERT_TRUE(client->Mkdir("/b", 0755).ok());
    for (int i = 0; i < 20; i++) {
      ASSERT_TRUE(
          client->Create("/a/f" + std::to_string(i), 0644).ok());
    }
    ASSERT_TRUE(client->Mkdir("/a/sub", 0755).ok());
    // Directory move between parents: the renamer's normal path, which
    // holds coordinator dir locks (allowed-across-rpc) across the txn.
    ASSERT_TRUE(client->Rename("/a/sub", "/b/sub").ok());
    ASSERT_TRUE(client->Lookup("/b/sub").ok());
    ASSERT_TRUE(client->ReadDir("/a").ok());
  }
  fs.Stop();

  uint64_t allowed_rpcs = 0;
  for (const auto& cs : lock_order::ScopeSnapshot()) {
    if (cs.policy == RpcHoldPolicy::kNeverAcrossRpc) {
      EXPECT_EQ(cs.rpcs_under_lock, 0u)
          << "never-across-rpc class \"" << cs.name
          << "\" saw an RPC while held";
      EXPECT_EQ(cs.rpc_violations, 0u) << cs.name;
    } else {
      allowed_rpcs += cs.rpcs_under_lock;
      EXPECT_EQ(cs.rpc_violations, 0u) << cs.name;
    }
  }
  // The dir-rename coordinator really did hold its locks across RPCs.
  EXPECT_GT(ScopeOf("renamer.dirlock").rpcs_under_lock, 0u);
  EXPECT_GT(allowed_rpcs, 0u);
}

// HopsFS baseline: lock-based transactions must show RPCs under the
// lockmgr.row scope class (counted, never fatal), and still no RPC under
// any never-across-rpc mutex class.
TEST(CsScopeEndToEndTest, HopsFsRowLocksSpanRpcsByDesign) {
  lock_order::ResetScopeStats();
  HopsFsCluster cluster("hopsfs", SmallBaseline());
  ASSERT_TRUE(cluster.Start().ok());
  {
    auto client = cluster.NewClient();
    ASSERT_TRUE(client->Mkdir("/d", 0755).ok());
    for (int i = 0; i < 20; i++) {
      ASSERT_TRUE(
          client->Create("/d/f" + std::to_string(i), 0644).ok());
    }
    ASSERT_TRUE(client->Lookup("/d/f0").ok());
  }
  cluster.Stop();

  auto rows = ScopeOf("lockmgr.row");
  EXPECT_EQ(rows.policy, RpcHoldPolicy::kAllowedAcrossRpc);
  EXPECT_GT(rows.rpcs_under_lock, 0u)
      << "HopsFS transactions should hold row locks across RPC round trips";
  EXPECT_GT(rows.holds_with_rpc, 0u);
  EXPECT_EQ(rows.rpc_violations, 0u);
  EXPECT_FALSE(rows.justification.empty());
  for (const auto& cs : lock_order::ScopeSnapshot()) {
    if (cs.policy == RpcHoldPolicy::kNeverAcrossRpc) {
      EXPECT_EQ(cs.rpcs_under_lock, 0u) << cs.name;
    }
  }
}

// --- Death tests: the default handler names the class and the edge -------

using CsScopeDeathTest = ::testing::Test;

TEST(CsScopeDeathTest, RpcUnderNeverLockAbortsNamingClassAndEdge) {
  SimNet net;
  NodeId client = net.AddNode("client", 0);
  NodeId shard = net.AddNode("shard", 1);
  Mutex mu{"t.cs.death.mu", 9};
  EXPECT_DEATH(
      {
        MutexLock lock(mu);
        (void)net.Call(client, shard, [] { return Status::Ok(); });
      },
      "rpc under lock.*client -> shard.*t\\.cs\\.death\\.mu");
}

TEST(CsScopeDeathTest, AllowedPolicyWithoutJustificationAborts) {
  EXPECT_DEATH(
      (void)lock_order::RegisterClass("t.cs.death.nojust", 0,
                                      RpcHoldPolicy::kAllowedAcrossRpc, ""),
      "without a justification");
}

TEST(CsScopeDeathTest, PolicyMismatchOnReregistrationAborts) {
  (void)lock_order::RegisterClass("t.cs.death.remix", 0);
  EXPECT_DEATH(
      (void)lock_order::RegisterClass("t.cs.death.remix", 0,
                                      RpcHoldPolicy::kAllowedAcrossRpc,
                                      "different policy"),
      "re-registered");
}

#endif  // CFS_LOCK_ORDER_TRACKING

}  // namespace
}  // namespace cfs
