// Availability integration tests: the metadata service must keep serving
// (after re-election) when replicas crash, and recover replicas must catch
// up — the high-availability story of §3.2 (raft-protected BE groups,
// FileStore replication, Renamer group).

#include <gtest/gtest.h>

#include <thread>

#include "src/core/cfs.h"
#include "src/core/gc.h"

namespace cfs {
namespace {

class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CfsOptions options = CfsFullOptions();
    options.num_servers = 6;
    options.tafdb.num_shards = 2;
    options.tafdb.range_stripe_width = 4;
    options.tafdb.raft.election_timeout_min_ms = 60;
    options.tafdb.raft.election_timeout_max_ms = 120;
    options.tafdb.raft.heartbeat_interval_ms = 20;
    options.filestore.num_nodes = 2;
    options.filestore.raft = options.tafdb.raft;
    options.renamer.raft = options.tafdb.raft;
    fs_ = std::make_unique<Cfs>(options);
    ASSERT_TRUE(fs_->Start().ok());
    client_ = fs_->NewClient();
  }
  void TearDown() override {
    client_.reset();
    fs_->Stop();
  }

  // Crashes the current leader of `group`; returns its replica index.
  size_t CrashLeader(RaftGroup* group) {
    RaftNode* leader = group->Leader();
    EXPECT_NE(leader, nullptr);
    size_t index = 0;
    for (size_t i = 0; i < group->size(); i++) {
      if (group->replica(i) == leader) index = i;
    }
    group->CrashReplica(index);
    return index;
  }

  // Retries an op across the election window.
  Status Eventually(const std::function<Status()>& op,
                    int64_t timeout_ms = 8000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    Status last;
    while (std::chrono::steady_clock::now() < deadline) {
      last = op();
      if (last.ok() || !last.IsRetryable()) return last;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return last;
  }

  std::unique_ptr<Cfs> fs_;
  std::unique_ptr<MetadataClient> client_;
};

TEST_F(FailoverTest, TafDbShardLeaderCrashIsMasked) {
  ASSERT_TRUE(client_->Mkdir("/ha", 0755).ok());
  ASSERT_TRUE(client_->Create("/ha/before", 0644).ok());

  // Crash the leader of the shard owning /ha's namespace.
  auto dir = client_->Lookup("/ha");
  ASSERT_TRUE(dir.ok());
  RaftGroup* group = fs_->tafdb()->ShardFor(dir->id)->raft_group();
  size_t crashed = CrashLeader(group);

  // Writes to that shard succeed once a new leader is elected.
  EXPECT_TRUE(
      Eventually([&] { return client_->Create("/ha/during", 0644); }).ok());
  // Pre-crash data still resolves.
  EXPECT_TRUE(
      Eventually([&] { return client_->GetAttr("/ha/before").status(); }).ok());

  // Restart the crashed replica: it recovers from its log and catches up.
  ASSERT_TRUE(group->RestartReplica(crashed).ok());
  EXPECT_TRUE(
      Eventually([&] { return client_->Create("/ha/after", 0644); }).ok());
  auto listing = client_->ReadDir("/ha");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 3u);
}

TEST_F(FailoverTest, FileStoreLeaderCrashIsMasked) {
  ASSERT_TRUE(client_->Create("/blob", 0644).ok());
  ASSERT_TRUE(client_->Write("/blob", 0, "survives-failover").ok());
  auto info = client_->Lookup("/blob");
  ASSERT_TRUE(info.ok());

  RaftGroup* group = fs_->filestore()->NodeFor(info->id)->raft_group();
  CrashLeader(group);

  // Attribute reads and data reads recover after re-election.
  EXPECT_TRUE(
      Eventually([&] { return client_->GetAttr("/blob").status(); }).ok());
  auto data = Eventually([&] { return client_->Read("/blob", 0, 17).status(); });
  EXPECT_TRUE(data.ok());
  auto content = client_->Read("/blob", 0, 17);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "survives-failover");
}

TEST_F(FailoverTest, RenamerCoordinatorFailover) {
  ASSERT_TRUE(client_->Mkdir("/ra", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/rb", 0755).ok());
  ASSERT_TRUE(client_->Create("/ra/f", 0644).ok());

  // Cross-directory renames route through the Renamer coordinator; crash
  // it and a new coordinator (raft leader) takes over.
  Renamer* renamer = fs_->renamer();
  NodeId old_coordinator = renamer->CoordinatorNetId();
  (void)old_coordinator;
  ASSERT_TRUE(client_->Rename("/ra/f", "/rb/f").ok());

  // Note: Renamer's group object is internal; crash a TafDB leader instead
  // to exercise renames across shard failover.
  auto dir = client_->Lookup("/ra");
  ASSERT_TRUE(dir.ok());
  RaftGroup* group = fs_->tafdb()->ShardFor(dir->id)->raft_group();
  CrashLeader(group);
  EXPECT_TRUE(
      Eventually([&] { return client_->Rename("/rb/f", "/ra/f"); }).ok());
  EXPECT_TRUE(
      Eventually([&] { return client_->GetAttr("/ra/f").status(); }).ok());
}

TEST_F(FailoverTest, WorkloadContinuesAcrossCrash) {
  ASSERT_TRUE(client_->Mkdir("/load", 0755).ok());
  std::atomic<bool> running{true};
  std::atomic<int> ok{0}, retryable{0}, hard{0};
  std::thread worker([&] {
    auto c = fs_->NewClient();
    uint64_t seq = 0;
    while (running.load()) {
      Status st = c->Create("/load/f" + std::to_string(seq++), 0644);
      if (st.ok()) {
        ok++;
      } else if (st.IsRetryable()) {
        retryable++;
      } else {
        hard++;
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  RaftGroup* group = fs_->tafdb()->shard(0)->raft_group();
  size_t crashed = CrashLeader(group);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  ASSERT_TRUE(group->RestartReplica(crashed).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  running.store(false);
  worker.join();

  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(hard.load(), 0);  // only clean retryable errors during failover
  // Parent fanout equals the successful creates despite the crash window.
  auto dir = client_->GetAttr("/load");
  ASSERT_TRUE(dir.ok());
  auto listing = client_->ReadDir("/load");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), static_cast<size_t>(dir->children));
}

}  // namespace
}  // namespace cfs
