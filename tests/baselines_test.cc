// Semantics tests for the two baseline systems. The baselines must be
// POSIX-correct (modulo documented HDFS-style limits) so the benchmark
// comparisons measure architecture, not bugs.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/baselines/hopsfs/hopsfs.h"
#include "src/baselines/infinifs/infinifs.h"

namespace cfs {
namespace {

BaselineOptions SmallBaseline() {
  BaselineOptions options;
  options.num_servers = 6;
  options.num_proxies = 2;
  options.tafdb.num_shards = 3;
  options.tafdb.raft.election_timeout_min_ms = 50;
  options.tafdb.raft.election_timeout_max_ms = 100;
  options.tafdb.raft.heartbeat_interval_ms = 20;
  options.filestore.num_nodes = 2;
  options.filestore.raft = options.tafdb.raft;
  return options;
}

// Type-erased handle so one test suite covers both systems.
struct SystemHandle {
  std::function<std::unique_ptr<MetadataClient>()> new_client;
  std::function<void()> stop;
  bool supports_hard_links = false;
};

SystemHandle MakeHopsFs() {
  auto cluster = std::make_shared<HopsFsCluster>("hopsfs", SmallBaseline());
  EXPECT_TRUE(cluster->Start().ok());
  return SystemHandle{
      [cluster] { return cluster->NewClient(); },
      [cluster] { cluster->Stop(); },
      false,
  };
}

SystemHandle MakeInfiniFs() {
  auto cluster = std::make_shared<InfiniFsCluster>("infinifs", SmallBaseline());
  EXPECT_TRUE(cluster->Start().ok());
  return SystemHandle{
      [cluster] { return cluster->NewClient(); },
      [cluster] { cluster->Stop(); },
      false,
  };
}

class BaselineTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    handle_ = GetParam() == 0 ? MakeHopsFs() : MakeInfiniFs();
    client_ = handle_.new_client();
  }
  void TearDown() override {
    client_.reset();
    handle_.stop();
  }

  SystemHandle handle_;
  std::unique_ptr<MetadataClient> client_;
};

TEST_P(BaselineTest, BasicNamespaceOps) {
  ASSERT_TRUE(client_->Mkdir("/dir", 0755).ok());
  ASSERT_TRUE(client_->Create("/dir/file", 0644).ok());
  auto info = client_->GetAttr("/dir/file");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->type, InodeType::kFile);
  EXPECT_EQ(info->mode, 0644u);

  auto dir = client_->GetAttr("/dir");
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(dir->IsDirectory());
  EXPECT_EQ(dir->children, 1);

  auto entries = client_->ReadDir("/dir");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "file");

  ASSERT_TRUE(client_->Unlink("/dir/file").ok());
  EXPECT_TRUE(client_->GetAttr("/dir/file").status().IsNotFound());
  ASSERT_TRUE(client_->Rmdir("/dir").ok());
  EXPECT_TRUE(client_->GetAttr("/dir").status().IsNotFound());
}

TEST_P(BaselineTest, ErrorSemantics) {
  ASSERT_TRUE(client_->Mkdir("/d", 0755).ok());
  ASSERT_TRUE(client_->Create("/d/f", 0644).ok());
  EXPECT_TRUE(client_->Create("/d/f", 0644).IsAlreadyExists());
  EXPECT_TRUE(client_->Mkdir("/d", 0755).IsAlreadyExists());
  EXPECT_TRUE(client_->GetAttr("/nope").status().IsNotFound());
  EXPECT_EQ(client_->Unlink("/d").code(), ErrorCode::kIsADirectory);
  EXPECT_EQ(client_->Rmdir("/d/f").code(), ErrorCode::kNotADirectory);
  EXPECT_EQ(client_->Rmdir("/d").code(), ErrorCode::kNotEmpty);
}

TEST_P(BaselineTest, SetAttrRoundTrip) {
  ASSERT_TRUE(client_->Create("/f", 0644).ok());
  SetAttrSpec spec;
  spec.mode = 0640;
  spec.uid = 3;
  ASSERT_TRUE(client_->SetAttr("/f", spec).ok());
  auto info = client_->GetAttr("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->mode, 0640u);
  EXPECT_EQ(info->uid, 3u);
}

TEST_P(BaselineTest, RenameIntraAndCrossDirectory) {
  ASSERT_TRUE(client_->Mkdir("/a", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/b", 0755).ok());
  ASSERT_TRUE(client_->Create("/a/x", 0644).ok());

  ASSERT_TRUE(client_->Rename("/a/x", "/a/y").ok());
  EXPECT_TRUE(client_->GetAttr("/a/x").status().IsNotFound());
  EXPECT_TRUE(client_->GetAttr("/a/y").ok());

  ASSERT_TRUE(client_->Rename("/a/y", "/b/z").ok());
  EXPECT_TRUE(client_->GetAttr("/b/z").ok());
  auto a = client_->GetAttr("/a");
  auto b = client_->GetAttr("/b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->children, 0);
  EXPECT_EQ(b->children, 1);
}

TEST_P(BaselineTest, RenameDirectoryAndLoopRejection) {
  ASSERT_TRUE(client_->Mkdir("/p", 0755).ok());
  ASSERT_TRUE(client_->Mkdir("/p/sub", 0755).ok());
  ASSERT_TRUE(client_->Create("/p/sub/f", 0644).ok());
  ASSERT_TRUE(client_->Mkdir("/q", 0755).ok());

  EXPECT_EQ(client_->Rename("/p", "/p/sub/evil").code(),
            ErrorCode::kInvalidArgument);
  ASSERT_TRUE(client_->Rename("/p/sub", "/q/moved").ok());
  EXPECT_TRUE(client_->GetAttr("/q/moved/f").ok());
  EXPECT_TRUE(client_->GetAttr("/p/sub").status().IsNotFound());
}

TEST_P(BaselineTest, RenameOverwriteFile) {
  ASSERT_TRUE(client_->Mkdir("/ow", 0755).ok());
  ASSERT_TRUE(client_->Create("/ow/src", 0644).ok());
  ASSERT_TRUE(client_->Create("/ow/dst", 0644).ok());
  auto src = client_->GetAttr("/ow/src");
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(client_->Rename("/ow/src", "/ow/dst").ok());
  auto dst = client_->GetAttr("/ow/dst");
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(dst->id, src->id);
  auto parent = client_->GetAttr("/ow");
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->children, 1);
}

TEST_P(BaselineTest, SymlinkSupportedHardLinkRefused) {
  ASSERT_TRUE(client_->Create("/t", 0644).ok());
  ASSERT_TRUE(client_->Symlink("/t", "/l").ok());
  auto target = client_->ReadLink("/l");
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "/t");
  EXPECT_EQ(client_->Link("/t", "/h").code(), ErrorCode::kUnimplemented);
}

TEST_P(BaselineTest, DataPathWriteRead) {
  ASSERT_TRUE(client_->Create("/blob", 0644).ok());
  ASSERT_TRUE(client_->Write("/blob", 0, "payload-123").ok());
  auto data = client_->Read("/blob", 0, 11);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "payload-123");
}

TEST_P(BaselineTest, ConcurrentCreatesPreserveChildrenCount) {
  ASSERT_TRUE(client_->Mkdir("/conc", 0755).ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10;
  std::vector<std::unique_ptr<MetadataClient>> clients;
  for (int t = 0; t < kThreads; t++) clients.push_back(handle_.new_client());
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string path =
            "/conc/f" + std::to_string(t) + "_" + std::to_string(i);
        if (clients[t]->Create(path, 0644).ok()) ok++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  auto parent = client_->GetAttr("/conc");
  ASSERT_TRUE(parent.ok());
  // Locks (not merges) protect the baselines' counters; still no lost
  // updates allowed.
  EXPECT_EQ(parent->children, kThreads * kPerThread);
}

INSTANTIATE_TEST_SUITE_P(Systems, BaselineTest, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& param) {
                           return param.param == 0 ? "HopsFS" : "InfiniFS";
                         });

}  // namespace
}  // namespace cfs
