// Tests for the LSM KV store: memtable versioning, batches, scans,
// snapshots, flush/compaction, WAL recovery, plus a randomized property test
// against a reference model.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <optional>

#include "src/common/random.h"
#include "src/kv/kvstore.h"

namespace cfs {
namespace {

TEST(MemTableTest, VersionedGet) {
  MemTable mt;
  mt.Add("k", "v1", 1, ValueType::kPut);
  mt.Add("k", "v2", 5, ValueType::kPut);
  auto latest = mt.Get("k", UINT64_MAX);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->value, "v2");
  auto old = mt.Get("k", 3);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->value, "v1");
  EXPECT_FALSE(mt.Get("k", 0).has_value());
  EXPECT_FALSE(mt.Get("other", UINT64_MAX).has_value());
}

TEST(MemTableTest, TombstoneIsVisibleVersion) {
  MemTable mt;
  mt.Add("k", "v", 1, ValueType::kPut);
  mt.Add("k", "", 2, ValueType::kDelete);
  auto e = mt.Get("k", UINT64_MAX);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->type, ValueType::kDelete);
}

TEST(MemTableTest, RangeVisitInOrder) {
  MemTable mt;
  mt.Add("b", "2", 2, ValueType::kPut);
  mt.Add("a", "1", 1, ValueType::kPut);
  mt.Add("c", "3", 3, ValueType::kPut);
  std::vector<std::string> keys;
  mt.VisitRange("a", "c", [&](const KvEntry& e) {
    keys.push_back(e.key);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

TEST(SortedRunTest, GetHonorsSnapshot) {
  std::vector<KvEntry> entries = {
      {"k", "v2", 5, ValueType::kPut},
      {"k", "v1", 1, ValueType::kPut},
  };
  SortedRun run(std::move(entries));
  auto latest = run.Get("k", UINT64_MAX);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->value, "v2");
  auto old = run.Get("k", 2);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->value, "v1");
}

TEST(SortedRunTest, MergeKeepsNewestAndSnapshotVersions) {
  auto run1 = std::make_shared<SortedRun>(std::vector<KvEntry>{
      {"a", "new", 10, ValueType::kPut},
  });
  auto run2 = std::make_shared<SortedRun>(std::vector<KvEntry>{
      {"a", "mid", 5, ValueType::kPut},
      {"a", "old", 2, ValueType::kPut},
  });
  // Snapshot at seq 6 pins "mid"; "old" is shadowed for every reader.
  auto merged = SortedRun::Merge({run1, run2}, /*keep_seq=*/6, true);
  ASSERT_EQ(merged->size(), 2u);
  EXPECT_EQ(merged->entries()[0].value, "new");
  EXPECT_EQ(merged->entries()[1].value, "mid");
}

TEST(SortedRunTest, MergeDropsShadowedTombstones) {
  auto run = std::make_shared<SortedRun>(std::vector<KvEntry>{
      {"a", "", 10, ValueType::kDelete},
      {"a", "v", 2, ValueType::kPut},
  });
  auto merged = SortedRun::Merge({run}, UINT64_MAX, /*drop_tombstones=*/true);
  EXPECT_EQ(merged->size(), 0u);
}

TEST(KvStoreTest, PutGetDelete) {
  KvStore kv;
  ASSERT_TRUE(kv.Open().ok());
  ASSERT_TRUE(kv.Put("key", "value").ok());
  auto got = kv.Get("key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "value");
  ASSERT_TRUE(kv.Delete("key").ok());
  EXPECT_TRUE(kv.Get("key").status().IsNotFound());
}

TEST(KvStoreTest, BatchIsAppliedInOrder) {
  KvStore kv;
  ASSERT_TRUE(kv.Open().ok());
  WriteBatch batch;
  batch.Put("k", "first");
  batch.Delete("k");
  batch.Put("k", "second");
  ASSERT_TRUE(kv.Write(batch).ok());
  auto got = kv.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "second");
}

TEST(KvStoreTest, ScanRangeSortedAndBounded) {
  KvStore kv;
  ASSERT_TRUE(kv.Open().ok());
  for (int i = 9; i >= 0; i--) {
    ASSERT_TRUE(kv.Put("k" + std::to_string(i), std::to_string(i)).ok());
  }
  auto rows = kv.Scan("k2", "k7");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows.front().first, "k2");
  EXPECT_EQ(rows.back().first, "k6");
  auto limited = kv.Scan("k0", "", 3);
  EXPECT_EQ(limited.size(), 3u);
}

TEST(KvStoreTest, ScanSkipsTombstones) {
  KvStore kv;
  ASSERT_TRUE(kv.Open().ok());
  ASSERT_TRUE(kv.Put("a", "1").ok());
  ASSERT_TRUE(kv.Put("b", "2").ok());
  ASSERT_TRUE(kv.Delete("a").ok());
  auto rows = kv.Scan("", "");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first, "b");
  EXPECT_EQ(kv.CountRange("", ""), 1u);
}

TEST(KvStoreTest, SnapshotReadsAreStable) {
  KvStore kv;
  ASSERT_TRUE(kv.Open().ok());
  ASSERT_TRUE(kv.Put("k", "old").ok());
  uint64_t snap = kv.GetSnapshot();
  ASSERT_TRUE(kv.Put("k", "new").ok());
  ASSERT_TRUE(kv.Put("k2", "added-later").ok());
  auto at_snap = kv.Get("k", snap);
  ASSERT_TRUE(at_snap.ok());
  EXPECT_EQ(*at_snap, "old");
  EXPECT_TRUE(kv.Get("k2", snap).status().IsNotFound());
  EXPECT_EQ(kv.Scan("", "", 0, snap).size(), 1u);
  kv.ReleaseSnapshot(snap);
}

TEST(KvStoreTest, SnapshotSurvivesFlushAndCompaction) {
  KvOptions options;
  options.memtable_flush_bytes = 1;  // flush on every write
  options.max_runs_before_compaction = 2;
  KvStore kv(options);
  ASSERT_TRUE(kv.Open().ok());
  ASSERT_TRUE(kv.Put("k", "v1").ok());
  uint64_t snap = kv.GetSnapshot();
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(kv.Put("k", "v" + std::to_string(i + 2)).ok());
  }
  ASSERT_TRUE(kv.Compact().ok());
  auto old = kv.Get("k", snap);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(*old, "v1");
  kv.ReleaseSnapshot(snap);
}

TEST(KvStoreTest, FlushAndCompactPreserveData) {
  KvOptions options;
  options.memtable_flush_bytes = 256;
  options.max_runs_before_compaction = 2;
  KvStore kv(options);
  ASSERT_TRUE(kv.Open().ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(kv.Put("key" + std::to_string(i), std::string(32, 'x')).ok());
  }
  EXPECT_GT(kv.stats().flushes, 0u);
  EXPECT_GT(kv.stats().compactions, 0u);
  for (int i = 0; i < 500; i++) {
    EXPECT_TRUE(kv.Get("key" + std::to_string(i)).ok()) << i;
  }
}

TEST(KvStoreTest, DeleteAcrossFlushIsHonored) {
  KvOptions options;
  options.memtable_flush_bytes = 128;
  KvStore kv(options);
  ASSERT_TRUE(kv.Open().ok());
  ASSERT_TRUE(kv.Put("victim", std::string(200, 'v')).ok());  // forces flush
  ASSERT_TRUE(kv.Delete("victim").ok());
  ASSERT_TRUE(kv.Flush().ok());
  ASSERT_TRUE(kv.Compact().ok());
  EXPECT_TRUE(kv.Get("victim").status().IsNotFound());
}

TEST(KvStoreTest, RecoversFromWal) {
  std::string path =
      (std::filesystem::temp_directory_path() /
       ("cfs_kv_recover_" + std::to_string(::getpid())))
          .string();
  std::remove(path.c_str());
  {
    KvOptions options;
    options.wal.path = path;
    KvStore kv(options);
    ASSERT_TRUE(kv.Open().ok());
    ASSERT_TRUE(kv.Put("persist-me", "yes").ok());
    ASSERT_TRUE(kv.Delete("persist-me-not").ok());
  }
  KvOptions options;
  options.wal.path = path;
  KvStore kv(options);
  ASSERT_TRUE(kv.Open().ok());
  auto got = kv.Get("persist-me");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "yes");
  std::remove(path.c_str());
}

TEST(WriteBatchTest, EncodeDecodeRoundTrip) {
  WriteBatch batch;
  batch.Put("alpha", "1");
  batch.Delete("beta");
  batch.Put("gamma", std::string(300, 'g'));
  auto decoded = WriteBatch::Decode(batch.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->ops().size(), 3u);
  EXPECT_EQ(decoded->ops()[0].key, "alpha");
  EXPECT_EQ(decoded->ops()[1].type, ValueType::kDelete);
  EXPECT_EQ(decoded->ops()[2].value.size(), 300u);
}

// Property test: random workload against a std::map reference model, with
// aggressive flush/compaction settings, across several seeds.
class KvPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvPropertyTest, MatchesReferenceModel) {
  KvOptions options;
  options.memtable_flush_bytes = 512;
  options.max_runs_before_compaction = 3;
  KvStore kv(options);
  ASSERT_TRUE(kv.Open().ok());
  std::map<std::string, std::string> model;
  Rng rng(GetParam());

  for (int step = 0; step < 3000; step++) {
    std::string key = "k" + std::to_string(rng.Uniform(200));
    uint64_t action = rng.Uniform(10);
    if (action < 6) {
      std::string value = "v" + std::to_string(rng.Next() % 100000);
      ASSERT_TRUE(kv.Put(key, value).ok());
      model[key] = value;
    } else if (action < 8) {
      ASSERT_TRUE(kv.Delete(key).ok());
      model.erase(key);
    } else if (action == 8) {
      auto got = kv.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key;
        EXPECT_EQ(*got, it->second);
      }
    } else {
      auto rows = kv.Scan("k", "l");
      EXPECT_EQ(rows.size(), model.size());
    }
  }
  // Final full comparison.
  auto rows = kv.Scan("", "");
  ASSERT_EQ(rows.size(), model.size());
  auto it = model.begin();
  for (const auto& [k, v] : rows) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace cfs
