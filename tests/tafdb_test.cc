// TafDB tests: schema round-trips, single-shard atomic primitive semantics
// (Table 2 / Figure 8), conflict reconciliation (delta-apply + LWW),
// raft-backed shard execution, scans, and the 2PC participant path.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/tafdb/tafdb.h"

namespace cfs {
namespace {

// ---------- schema ----------

TEST(SchemaTest, KeyEncodingPreservesOrder) {
  // (kid, kstr) order must match encoded lexicographic order.
  std::vector<InodeKey> keys = {
      InodeKey::IdRecord(1, "a"),   InodeKey::IdRecord(1, "b"),
      InodeKey::IdRecord(2, "a"),   InodeKey::AttrRecord(2),
      InodeKey::IdRecord(255, "x"), InodeKey::IdRecord(256, "a"),
  };
  for (size_t i = 0; i < keys.size(); i++) {
    for (size_t j = 0; j < keys.size(); j++) {
      EXPECT_EQ(keys[i] < keys[j], keys[i].Encode() < keys[j].Encode())
          << i << " vs " << j;
    }
  }
}

TEST(SchemaTest, KeyRoundTrip) {
  InodeKey key = InodeKey::IdRecord(12345678901234ULL, "some-file.txt");
  auto decoded = InodeKey::Decode(key.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, key);
  EXPECT_FALSE(decoded->IsAttr());
  EXPECT_TRUE(InodeKey::AttrRecord(7).IsAttr());
}

TEST(SchemaTest, DirBoundsBracketDirectory) {
  std::string lower = DirLowerBound(10);
  std::string upper = DirUpperBound(10);
  EXPECT_LT(lower, InodeKey::AttrRecord(10).Encode());
  EXPECT_LE(lower, InodeKey::IdRecord(10, "zzz").Encode());
  EXPECT_GT(upper, InodeKey::IdRecord(10, "zzz").Encode());
  EXPECT_LE(upper, InodeKey::IdRecord(11, "a").Encode());
}

TEST(SchemaTest, RecordValueRoundTrip) {
  InodeRecord attr = InodeRecord::MakeDirAttr(42, 1000, 0755, 5, 6);
  attr.children = 17;
  auto decoded = InodeRecord::DecodeValue(attr.key, attr.EncodeValue());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, 42u);
  EXPECT_EQ(decoded->type, InodeType::kDirectory);
  EXPECT_EQ(decoded->children, 17);
  EXPECT_EQ(decoded->links, 2);
  EXPECT_EQ(decoded->mtime, 1000u);
  EXPECT_EQ(decoded->mode, 0755u);
  EXPECT_EQ(decoded->uid, 5u);
  EXPECT_EQ(decoded->gid, 6u);
}

TEST(SchemaTest, IdRecordOmitsUnusedFields) {
  InodeRecord rec = InodeRecord::MakeIdRecord(1, "f", 99, InodeType::kFile);
  auto decoded = InodeRecord::DecodeValue(rec.key, rec.EncodeValue());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->Has(InodeRecord::kFieldId));
  EXPECT_TRUE(decoded->Has(InodeRecord::kFieldType));
  EXPECT_FALSE(decoded->Has(InodeRecord::kFieldChildren));
  EXPECT_FALSE(decoded->Has(InodeRecord::kFieldMtime));
  // An attribute record is ~0.2KB in the paper; ours is much smaller, but
  // the id record must stay lean regardless.
  EXPECT_LT(rec.EncodeValue().size(), 16u);
}

TEST(SchemaTest, SymlinkTargetRoundTrip) {
  InodeRecord rec = InodeRecord::MakeFileAttr(7, 1, 0644, 0, 0);
  rec.type = InodeType::kSymlink;
  rec.symlink_target = "/a/b/c";
  rec.Set(InodeRecord::kFieldSymlink);
  auto decoded = InodeRecord::DecodeValue(rec.key, rec.EncodeValue());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->symlink_target, "/a/b/c");
}

// ---------- primitive execution against a bare KV ----------

class PrimitiveExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(kv_.Open().ok());
    // A parent directory (id 10) with one child file "old" (id 20).
    PrimitiveOp bootstrap;
    bootstrap.inserts.push_back(InodeRecord::MakeDirAttr(10, 1, 0755, 0, 0));
    bootstrap.inserts.push_back(
        InodeRecord::MakeIdRecord(10, "old", 20, InodeType::kFile));
    auto r = ExecutePrimitive(bootstrap, &kv_);
    ASSERT_TRUE(r.status.ok());
    PrimitiveOp bump;
    UpdateSpec u;
    u.key = InodeKey::AttrRecord(10);
    u.children_delta = 1;
    bump.updates.push_back(u);
    ASSERT_TRUE(ExecutePrimitive(bump, &kv_).status.ok());
  }

  int64_t Children() {
    auto rec = ReadRecord(kv_, InodeKey::AttrRecord(10));
    return rec.ok() ? rec->children : -1;
  }

  KvStore kv_;
};

TEST_F(PrimitiveExecTest, InsertWithUpdateCreatesAndBumpsParent) {
  Predicate parent_exists;
  parent_exists.key = InodeKey::AttrRecord(10);
  parent_exists.kind = Predicate::Kind::kExistsWithType;
  parent_exists.type = InodeType::kDirectory;

  UpdateSpec bump;
  bump.key = InodeKey::AttrRecord(10);
  bump.children_delta = 1;
  bump.lww.mtime = 50;
  bump.lww.ts = 50;

  auto op = PrimitiveOp::InsertWithUpdate(
      InodeRecord::MakeIdRecord(10, "new", 21, InodeType::kFile),
      parent_exists, bump);
  auto result = ExecutePrimitive(op, &kv_);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(Children(), 2);
  auto rec = ReadRecord(kv_, InodeKey::IdRecord(10, "new"));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->id, 21u);

  // Duplicate insert: implicit existence check fails, nothing changes.
  auto dup = ExecutePrimitive(op, &kv_);
  EXPECT_TRUE(dup.status.IsAlreadyExists());
  EXPECT_EQ(Children(), 2);
}

TEST_F(PrimitiveExecTest, InsertFailsWhenParentMissing) {
  Predicate parent_exists;
  parent_exists.key = InodeKey::AttrRecord(999);
  parent_exists.kind = Predicate::Kind::kExistsWithType;
  parent_exists.type = InodeType::kDirectory;
  UpdateSpec bump;
  bump.key = InodeKey::AttrRecord(999);
  bump.children_delta = 1;
  auto op = PrimitiveOp::InsertWithUpdate(
      InodeRecord::MakeIdRecord(999, "x", 30, InodeType::kFile), parent_exists,
      bump);
  auto result = ExecutePrimitive(op, &kv_);
  EXPECT_TRUE(result.status.IsNotFound());
  EXPECT_FALSE(kv_.Contains(InodeKey::IdRecord(999, "x").Encode()));
}

TEST_F(PrimitiveExecTest, DeleteWithUpdateRemovesAndDecrements) {
  DeleteSpec del;
  del.key = InodeKey::IdRecord(10, "old");
  del.type_is = InodeType::kFile;
  UpdateSpec dec;
  dec.key = InodeKey::AttrRecord(10);
  dec.children_delta = -1;
  auto op = PrimitiveOp::DeleteWithUpdate(del, dec);
  auto result = ExecutePrimitive(op, &kv_);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.deleted, 1);
  EXPECT_EQ(Children(), 0);
  EXPECT_FALSE(kv_.Contains(InodeKey::IdRecord(10, "old").Encode()));

  // Deleting again: NotFound, parent unchanged.
  auto again = ExecutePrimitive(op, &kv_);
  EXPECT_TRUE(again.status.IsNotFound());
  EXPECT_EQ(Children(), 0);
}

TEST_F(PrimitiveExecTest, DeleteDirectoryAsFileFails) {
  PrimitiveOp mkdir_op;
  mkdir_op.inserts.push_back(
      InodeRecord::MakeIdRecord(10, "subdir", 30, InodeType::kDirectory));
  ASSERT_TRUE(ExecutePrimitive(mkdir_op, &kv_).status.ok());

  DeleteSpec del;
  del.key = InodeKey::IdRecord(10, "subdir");
  del.type_is = InodeType::kFile;  // unlink() on a directory
  UpdateSpec dec;
  dec.key = InodeKey::AttrRecord(10);
  dec.children_delta = -1;
  auto result = ExecutePrimitive(PrimitiveOp::DeleteWithUpdate(del, dec), &kv_);
  EXPECT_EQ(result.status.code(), ErrorCode::kIsADirectory);
}

TEST_F(PrimitiveExecTest, ChildrenZeroPredicateEnforcesEmptiness) {
  Predicate empty_check;
  empty_check.key = InodeKey::AttrRecord(10);
  empty_check.kind = Predicate::Kind::kChildrenZero;
  PrimitiveOp op;
  op.checks.push_back(empty_check);
  auto result = ExecutePrimitive(op, &kv_);
  EXPECT_EQ(result.status.code(), ErrorCode::kNotEmpty);  // has "old"
}

TEST_F(PrimitiveExecTest, IntraDirRenameToFreshName) {
  // rename "old" -> "fresh": destination does not exist.
  InodeRecord moved = InodeRecord::MakeIdRecord(10, "fresh", 20, InodeType::kFile);
  DeleteSpec del_a;
  del_a.key = InodeKey::IdRecord(10, "old");
  del_a.type_is = InodeType::kFile;
  DeleteSpec del_b;
  del_b.key = InodeKey::IdRecord(10, "fresh");
  del_b.type_is = InodeType::kFile;
  del_b.ifexist = true;
  UpdateSpec upd;
  upd.key = InodeKey::AttrRecord(10);
  upd.children_delta_auto = true;
  upd.lww.mtime = 60;
  upd.lww.ts = 60;
  auto op = PrimitiveOp::InsertAndDeleteWithUpdate(moved, {del_a, del_b}, upd,
                                                   {});
  auto result = ExecutePrimitive(op, &kv_);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.deleted, 1);  // only A existed
  EXPECT_EQ(Children(), 1);      // 1 + (1 insert - 1 delete) = 1
  auto rec = ReadRecord(kv_, InodeKey::IdRecord(10, "fresh"));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->id, 20u);
  EXPECT_FALSE(kv_.Contains(InodeKey::IdRecord(10, "old").Encode()));
}

TEST_F(PrimitiveExecTest, IntraDirRenameOverExistingTarget) {
  // Add target "victim" (id 25) first.
  PrimitiveOp add;
  add.inserts.push_back(
      InodeRecord::MakeIdRecord(10, "victim", 25, InodeType::kFile));
  UpdateSpec bump;
  bump.key = InodeKey::AttrRecord(10);
  bump.children_delta = 1;
  add.updates.push_back(bump);
  ASSERT_TRUE(ExecutePrimitive(add, &kv_).status.ok());
  ASSERT_EQ(Children(), 2);

  // rename "old" -> "victim".
  InodeRecord moved =
      InodeRecord::MakeIdRecord(10, "victim", 20, InodeType::kFile);
  DeleteSpec del_a;
  del_a.key = InodeKey::IdRecord(10, "old");
  del_a.type_is = InodeType::kFile;
  DeleteSpec del_b;
  del_b.key = InodeKey::IdRecord(10, "victim");
  del_b.type_is = InodeType::kFile;
  del_b.ifexist = true;
  UpdateSpec upd;
  upd.key = InodeKey::AttrRecord(10);
  upd.children_delta_auto = true;
  auto op = PrimitiveOp::InsertAndDeleteWithUpdate(moved, {del_a, del_b}, upd,
                                                   {});
  auto result = ExecutePrimitive(op, &kv_);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.deleted, 2);  // both A and B existed
  EXPECT_EQ(Children(), 1);      // 2 + (1 - 2) = 1
  auto rec = ReadRecord(kv_, InodeKey::IdRecord(10, "victim"));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->id, 20u);  // victim now points at A's inode
}

TEST_F(PrimitiveExecTest, RenameSourceMissingFails) {
  InodeRecord moved = InodeRecord::MakeIdRecord(10, "b", 99, InodeType::kFile);
  DeleteSpec del_a;
  del_a.key = InodeKey::IdRecord(10, "missing");
  del_a.type_is = InodeType::kFile;
  UpdateSpec upd;
  upd.key = InodeKey::AttrRecord(10);
  upd.children_delta_auto = true;
  auto op = PrimitiveOp::InsertAndDeleteWithUpdate(moved, {del_a}, upd, {});
  auto result = ExecutePrimitive(op, &kv_);
  EXPECT_TRUE(result.status.IsNotFound());
  EXPECT_FALSE(kv_.Contains(InodeKey::IdRecord(10, "b").Encode()));
}

TEST_F(PrimitiveExecTest, DeltaApplyIsCommutative) {
  // Apply +1 and -1 in both orders; final children must match.
  UpdateSpec plus;
  plus.key = InodeKey::AttrRecord(10);
  plus.children_delta = 1;
  UpdateSpec minus = plus;
  minus.children_delta = -1;
  PrimitiveOp op_plus, op_minus;
  op_plus.updates.push_back(plus);
  op_minus.updates.push_back(minus);

  int64_t start = Children();
  ASSERT_TRUE(ExecutePrimitive(op_plus, &kv_).status.ok());
  ASSERT_TRUE(ExecutePrimitive(op_minus, &kv_).status.ok());
  EXPECT_EQ(Children(), start);
  ASSERT_TRUE(ExecutePrimitive(op_minus, &kv_).status.ok());
  ASSERT_TRUE(ExecutePrimitive(op_plus, &kv_).status.ok());
  EXPECT_EQ(Children(), start);
}

TEST_F(PrimitiveExecTest, LastWriterWinsIgnoresStaleTimestamps) {
  UpdateSpec newer;
  newer.key = InodeKey::AttrRecord(10);
  newer.lww.mtime = 100;
  newer.lww.mode = 0700;
  newer.lww.ts = 100;
  UpdateSpec older;
  older.key = InodeKey::AttrRecord(10);
  older.lww.mtime = 42;
  older.lww.mode = 0777;
  older.lww.ts = 50;  // stale

  PrimitiveOp op_newer, op_older;
  op_newer.updates.push_back(newer);
  op_older.updates.push_back(older);
  ASSERT_TRUE(ExecutePrimitive(op_newer, &kv_).status.ok());
  ASSERT_TRUE(ExecutePrimitive(op_older, &kv_).status.ok());

  auto rec = ReadRecord(kv_, InodeKey::AttrRecord(10));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->mtime, 100u);  // stale write did not clobber
  EXPECT_EQ(rec->mode, 0700u);
  EXPECT_EQ(rec->lww_ts, 100u);

  // But the stale op's deltas (if any) would still apply: deltas and LWW
  // reconcile independently.
}

TEST_F(PrimitiveExecTest, FailedCheckLeavesNoPartialState) {
  // insert + update, but with a failing kNotExists check on an existing key.
  Predicate must_not_exist;
  must_not_exist.key = InodeKey::IdRecord(10, "old");
  must_not_exist.kind = Predicate::Kind::kNotExists;
  PrimitiveOp op;
  op.checks.push_back(must_not_exist);
  op.inserts.push_back(
      InodeRecord::MakeIdRecord(10, "partial", 77, InodeType::kFile));
  UpdateSpec bump;
  bump.key = InodeKey::AttrRecord(10);
  bump.children_delta = 1;
  op.updates.push_back(bump);

  int64_t before = Children();
  auto result = ExecutePrimitive(op, &kv_);
  EXPECT_TRUE(result.status.IsAlreadyExists());
  EXPECT_EQ(Children(), before);
  EXPECT_FALSE(kv_.Contains(InodeKey::IdRecord(10, "partial").Encode()));
}

TEST(PrimitiveCodecTest, OpEncodeDecodeRoundTrip) {
  PrimitiveOp op;
  Predicate check;
  check.key = InodeKey::AttrRecord(5);
  check.kind = Predicate::Kind::kExistsWithType;
  check.type = InodeType::kDirectory;
  check.ifexist = true;
  op.checks.push_back(check);
  DeleteSpec del;
  del.key = InodeKey::IdRecord(5, "gone");
  del.ifexist = true;
  del.type_is = InodeType::kFile;
  op.deletes.push_back(del);
  op.inserts.push_back(InodeRecord::MakeIdRecord(5, "new", 9, InodeType::kFile));
  op.puts.push_back(InodeRecord::MakeDirAttr(9, 3, 0711, 1, 2));
  UpdateSpec upd;
  upd.key = InodeKey::AttrRecord(5);
  upd.children_delta = -2;
  upd.links_delta = 3;
  upd.size_delta = -100;
  upd.children_delta_auto = true;
  upd.must_exist = false;
  upd.lww.mtime = 11;
  upd.lww.mode = 0644;
  upd.lww.size = -5;
  upd.lww.ts = 12;
  op.updates.push_back(upd);

  auto decoded = PrimitiveOp::Decode(op.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->checks.size(), 1u);
  EXPECT_EQ(decoded->checks[0].kind, Predicate::Kind::kExistsWithType);
  EXPECT_TRUE(decoded->checks[0].ifexist);
  ASSERT_EQ(decoded->deletes.size(), 1u);
  EXPECT_EQ(*decoded->deletes[0].type_is, InodeType::kFile);
  ASSERT_EQ(decoded->inserts.size(), 1u);
  EXPECT_EQ(decoded->inserts[0].id, 9u);
  ASSERT_EQ(decoded->puts.size(), 1u);
  EXPECT_EQ(decoded->puts[0].mode, 0711u);
  ASSERT_EQ(decoded->updates.size(), 1u);
  EXPECT_EQ(decoded->updates[0].children_delta, -2);
  EXPECT_EQ(decoded->updates[0].links_delta, 3);
  EXPECT_EQ(decoded->updates[0].size_delta, -100);
  EXPECT_TRUE(decoded->updates[0].children_delta_auto);
  EXPECT_FALSE(decoded->updates[0].must_exist);
  EXPECT_EQ(*decoded->updates[0].lww.mtime, 11u);
  EXPECT_EQ(*decoded->updates[0].lww.size, -5);
  EXPECT_EQ(decoded->updates[0].lww.ts, 12u);
}

TEST(PrimitiveCodecTest, ResultRoundTrip) {
  PrimitiveResult r;
  r.status = Status::NotEmpty("dir");
  r.deleted = 3;
  auto decoded = PrimitiveResult::Decode(r.Encode());
  EXPECT_EQ(decoded.status.code(), ErrorCode::kNotEmpty);
  EXPECT_EQ(decoded.status.message(), "dir");
  EXPECT_EQ(decoded.deleted, 3);
}

// ---------- raft-backed shard & cluster ----------

RaftOptions FastRaft() {
  RaftOptions options;
  options.election_timeout_min_ms = 50;
  options.election_timeout_max_ms = 100;
  options.heartbeat_interval_ms = 20;
  return options;
}

class TafDbClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TafDbOptions options;
    options.num_shards = 2;
    options.replicas = 3;
    options.range_stripe_width = 4;
    options.raft = FastRaft();
    cluster_ = std::make_unique<TafDbCluster>(
        &net_, std::vector<uint32_t>{0, 1, 2, 3, 4, 5}, options);
    ASSERT_TRUE(cluster_->Start().ok());
  }

  void TearDown() override { cluster_->Stop(); }

  SimNet net_;
  std::unique_ptr<TafDbCluster> cluster_;
};

TEST_F(TafDbClusterTest, RootExistsAfterBootstrap) {
  auto root = cluster_->ShardFor(kRootInode)->Get(InodeKey::AttrRecord(kRootInode));
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->type, InodeType::kDirectory);
}

TEST_F(TafDbClusterTest, ExecutePrimitiveThroughRaft) {
  InodeId dir = kRootInode;
  Predicate parent_exists;
  parent_exists.key = InodeKey::AttrRecord(dir);
  parent_exists.kind = Predicate::Kind::kExistsWithType;
  parent_exists.type = InodeType::kDirectory;
  UpdateSpec bump;
  bump.key = InodeKey::AttrRecord(dir);
  bump.children_delta = 1;
  auto op = PrimitiveOp::InsertWithUpdate(
      InodeRecord::MakeIdRecord(dir, "f1", 100, InodeType::kFile),
      parent_exists, bump);
  auto result = cluster_->ShardFor(dir)->ExecutePrimitive(op);
  ASSERT_TRUE(result.status.ok()) << result.status;
  auto rec = cluster_->ShardFor(dir)->Get(InodeKey::IdRecord(dir, "f1"));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->id, 100u);
}

TEST_F(TafDbClusterTest, RangePartitionKeepsDirectoryTogether) {
  // Every key of one directory maps to the same shard.
  for (InodeId dir : {1ULL, 5ULL, 100ULL, 12345ULL}) {
    size_t attr_shard = cluster_->ShardIndexFor(dir);
    EXPECT_EQ(cluster_->ShardIndexFor(dir), attr_shard);
  }
  // Different stripes spread across shards.
  std::set<size_t> seen;
  for (InodeId dir = 0; dir < 64; dir += 4) {
    seen.insert(cluster_->ShardIndexFor(dir));
  }
  EXPECT_EQ(seen.size(), cluster_->num_shards());
}

TEST_F(TafDbClusterTest, ScanDirReturnsChildrenSorted) {
  InodeId dir = kRootInode;
  for (const char* name : {"charlie", "alpha", "bravo"}) {
    PrimitiveOp op;
    op.inserts.push_back(
        InodeRecord::MakeIdRecord(dir, name, 200 + name[0], InodeType::kFile));
    ASSERT_TRUE(cluster_->ShardFor(dir)->ExecutePrimitive(op).status.ok());
  }
  auto rows = cluster_->ShardFor(dir)->ScanDir(dir, "", 0);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0].key.kstr, "alpha");
  EXPECT_EQ((*rows)[1].key.kstr, "bravo");
  EXPECT_EQ((*rows)[2].key.kstr, "charlie");

  // Pagination: continue after "alpha", limit 1.
  auto page = cluster_->ShardFor(dir)->ScanDir(dir, "alpha", 1);
  ASSERT_TRUE(page.ok());
  ASSERT_EQ(page->size(), 1u);
  EXPECT_EQ((*page)[0].key.kstr, "bravo");
}

TEST_F(TafDbClusterTest, ConcurrentPrimitivesOnSharedParentAllSucceed) {
  InodeId dir = kRootInode;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string name =
            "c" + std::to_string(t) + "_" + std::to_string(i);
        Predicate parent_exists;
        parent_exists.key = InodeKey::AttrRecord(dir);
        parent_exists.kind = Predicate::Kind::kExistsWithType;
        parent_exists.type = InodeType::kDirectory;
        UpdateSpec bump;
        bump.key = InodeKey::AttrRecord(dir);
        bump.children_delta = 1;
        bump.lww.mtime = static_cast<uint64_t>(t * 1000 + i);
        bump.lww.ts = static_cast<uint64_t>(t * 1000 + i);
        auto op = PrimitiveOp::InsertWithUpdate(
            InodeRecord::MakeIdRecord(dir, name,
                                      1000 + static_cast<InodeId>(t * 100 + i),
                                      InodeType::kFile),
            parent_exists, bump);
        if (cluster_->ShardFor(dir)->ExecutePrimitive(op).status.ok()) ok++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  // Delta-applied children counter must equal the number of inserts: no
  // lost updates despite full contention on one record.
  auto attr = cluster_->ShardFor(dir)->Get(InodeKey::AttrRecord(dir));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->children, kThreads * kPerThread);
}

TEST_F(TafDbClusterTest, TwoPhaseCommitAcrossShards) {
  // Find two kids on different shards.
  InodeId kid_a = 1, kid_b = 0;
  for (InodeId k = 2; k < 100; k++) {
    if (cluster_->ShardIndexFor(k) != cluster_->ShardIndexFor(kid_a)) {
      kid_b = k;
      break;
    }
  }
  ASSERT_NE(kid_b, 0u);
  // Bootstrap attr record for kid_b's directory.
  PrimitiveOp mk;
  mk.inserts.push_back(InodeRecord::MakeDirAttr(kid_b, 1, 0755, 0, 0));
  ASSERT_TRUE(cluster_->ShardFor(kid_b)->ExecutePrimitive(mk).status.ok());

  TafDbShard* shard_a = cluster_->ShardFor(kid_a);
  TafDbShard* shard_b = cluster_->ShardFor(kid_b);
  TxnId txn = 777;

  PrimitiveOp write_a;
  write_a.puts.push_back(
      InodeRecord::MakeIdRecord(kid_a, "cross", 500, InodeType::kFile));
  PrimitiveOp write_b;
  UpdateSpec bump;
  bump.key = InodeKey::AttrRecord(kid_b);
  bump.children_delta = 1;
  write_b.updates.push_back(bump);

  ASSERT_TRUE(shard_a->Stage(txn, write_a).ok());
  ASSERT_TRUE(shard_b->Stage(txn, write_b).ok());

  NodeId coord = net_.AddNode("coordinator", 0);
  TwoPhaseCommit tpc(&net_);
  ASSERT_TRUE(tpc.Run(coord, {shard_a, shard_b}, txn).ok());

  auto rec = shard_a->Get(InodeKey::IdRecord(kid_a, "cross"));
  ASSERT_TRUE(rec.ok());
  auto attr = shard_b->Get(InodeKey::AttrRecord(kid_b));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->children, 1);
}

TEST_F(TafDbClusterTest, AbortedTwoPhaseCommitLeavesNoState) {
  TafDbShard* shard = cluster_->ShardFor(kRootInode);
  TxnId txn = 888;
  PrimitiveOp write;
  write.puts.push_back(
      InodeRecord::MakeIdRecord(kRootInode, "phantom", 600, InodeType::kFile));
  ASSERT_TRUE(shard->Stage(txn, write).ok());
  ASSERT_TRUE(shard->Prepare(txn).ok());
  ASSERT_TRUE(shard->Abort(txn).ok());
  EXPECT_TRUE(
      shard->Get(InodeKey::IdRecord(kRootInode, "phantom")).status().IsNotFound());
}

TEST_F(TafDbClusterTest, CdcFeedSeesCommittedPrimitives) {
  TafDbShard* shard = cluster_->ShardFor(kRootInode);
  PrimitiveOp op;
  op.inserts.push_back(
      InodeRecord::MakeIdRecord(kRootInode, "cdc-file", 700, InodeType::kFile));
  ASSERT_TRUE(shard->ExecutePrimitive(op).status.ok());
  auto feed = shard->ReadCommittedSince(0, 1000);
  bool found = false;
  for (auto& [index, cmd] : feed) {
    for (auto& ins : cmd.op.inserts) {
      if (ins.key.kstr == "cdc-file") found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TafDbClusterTest, TimestampAndIdServicesAreDistinctAndMonotonic) {
  uint64_t ts1 = cluster_->ts_oracle()->Next();
  uint64_t ts2 = cluster_->ts_oracle()->Next();
  EXPECT_GT(ts2, ts1);
  InodeId id1 = cluster_->id_allocator()->Next();
  EXPECT_GT(id1, kRootInode);
}

}  // namespace
}  // namespace cfs
