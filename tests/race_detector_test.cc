// Tests for the dynamic race & atomicity auditor (src/common/race_detector.h):
// lockset tracking across Mutex/SharedMutex modes, the unheld-declared-lock
// and Eraser lockset-empty checks, happens-before exoneration (init-then-share
// and same-lock handoff), AccessScope atomicity, seeded reproducibility of
// report fingerprints under schedule fuzzing, and the abort-on-report mode
// the CI race-audit job runs in.

#include "src/common/race_detector.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/simtime.h"
#include "src/common/thread_annotations.h"

namespace cfs {
namespace {

#if defined(CFS_RACE_DETECT_ENABLED) && defined(CFS_LOCK_ORDER_TRACKING)

class RaceDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    race::ResetForTest();
    race::SetEnabled(true);
    race::SetAbortOnReport(false);
  }
  void TearDown() override {
    race::SetEnabled(false);
    race::ResetForTest();
  }

  static std::vector<race::Report> ReportsOfKind(race::Report::Kind kind) {
    std::vector<race::Report> out;
    for (const auto& r : race::Reports()) {
      if (r.kind == kind) out.push_back(r);
    }
    return out;
  }
};

// --- Lockset bookkeeping across lock modes -------------------------------

TEST_F(RaceDetectorTest, LocksetTracksExclusiveAndSharedModes) {
  Mutex mu{"t.race.ls.mu", 0};
  SharedMutex smu{"t.race.ls.smu", 0};
  EXPECT_EQ(race::LocksHeldForTest(), 0u);
  {
    MutexLock lock(mu);
    EXPECT_TRUE(race::HoldsForTest(mu.order_class(), race::LockMode::kExclusive));
    EXPECT_FALSE(race::HoldsForTest(mu.order_class(), race::LockMode::kShared));
    EXPECT_EQ(race::LocksHeldForTest(), 1u);
    {
      ReaderMutexLock rlock(smu);
      EXPECT_TRUE(
          race::HoldsForTest(smu.order_class(), race::LockMode::kShared));
      EXPECT_FALSE(
          race::HoldsForTest(smu.order_class(), race::LockMode::kExclusive));
      EXPECT_EQ(race::LocksHeldForTest(), 2u);
    }
    EXPECT_FALSE(race::HoldsForTest(smu.order_class(), race::LockMode::kShared));
  }
  {
    WriterMutexLock wlock(smu);
    EXPECT_TRUE(
        race::HoldsForTest(smu.order_class(), race::LockMode::kExclusive));
    EXPECT_FALSE(race::HoldsForTest(smu.order_class(), race::LockMode::kShared));
  }
  EXPECT_EQ(race::LocksHeldForTest(), 0u);
  EXPECT_EQ(race::ReportCount(), 0u);
}

// --- The declaration check (unheld-declared-lock) ------------------------

TEST_F(RaceDetectorTest, WriteUnderDeclaredLockIsClean) {
  Mutex mu{"t.race.decl.ok", 0};
  int field = 0;
  {
    MutexLock lock(mu);
    CFS_SHARED_WRITE(field, mu);
    field = 1;
  }
  {
    MutexLock lock(mu);
    CFS_SHARED_READ(field, mu);
    EXPECT_EQ(field, 1);
  }
  EXPECT_EQ(race::ReportCount(), 0u);
}

TEST_F(RaceDetectorTest, WriteWithoutDeclaredLockReports) {
  Mutex mu{"t.race.decl.miss", 0};
  int field = 0;
  CFS_SHARED_WRITE(field, mu);  // no lock held: the planted bug
  field = 1;
  auto reports = ReportsOfKind(race::Report::Kind::kUnheldDeclaredLock);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].field, "field");
  EXPECT_EQ(reports[0].declared_lock, "t.race.decl.miss");
  EXPECT_TRUE(reports[0].is_write);
  EXPECT_EQ(reports[0].locks_held, "<none>");
}

TEST_F(RaceDetectorTest, SharedModeAcceptsReadsButNotWrites) {
  SharedMutex smu{"t.race.decl.shared", 0};
  int field = 0;
  {
    ReaderMutexLock rlock(smu);
    CFS_SHARED_READ(field, smu);  // read under shared mode: fine
    (void)field;
  }
  EXPECT_EQ(race::ReportCount(), 0u);
  {
    ReaderMutexLock rlock(smu);
    CFS_SHARED_WRITE(field, smu);  // write needs exclusive mode
    field = 1;
  }
  auto reports = ReportsOfKind(race::Report::Kind::kUnheldDeclaredLock);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].declared_lock, "t.race.decl.shared");
  {
    WriterMutexLock wlock(smu);
    CFS_SHARED_WRITE(field, smu);  // write under exclusive mode: fine
    field = 2;
  }
  EXPECT_EQ(race::ReportCount(), 1u);
}

TEST_F(RaceDetectorTest, HoldingTheWrongLockStillViolatesTheDeclaration) {
  Mutex declared{"t.race.decl.right", 0};
  Mutex other{"t.race.decl.wrong", 0};
  int field = 0;
  {
    MutexLock lock(other);
    CFS_SHARED_WRITE(field, declared);
    field = 1;
  }
  auto reports = ReportsOfKind(race::Report::Kind::kUnheldDeclaredLock);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].declared_lock, "t.race.decl.right");
  EXPECT_EQ(reports[0].locks_held, "t.race.decl.wrong");
}

// --- AccessScope: atomicity of compound regions --------------------------

TEST_F(RaceDetectorTest, AccessScopeCleanWhenGuardHeldThroughout) {
  Mutex mu{"t.race.scope.ok", 0};
  int field = 0;
  {
    MutexLock lock(mu);
    CFS_ACCESS_SCOPE(scope, field, mu, /*is_write=*/true);
    field += 1;
    field += 1;
  }
  EXPECT_EQ(race::ReportCount(), 0u);
}

TEST_F(RaceDetectorTest, AccessScopeReportsGuardDroppedMidRegion) {
  Mutex mu{"t.race.scope.drop", 0};
  int field = 0;
  {
    MutexLock lock(mu);
    CFS_ACCESS_SCOPE(scope, field, mu, /*is_write=*/true);
    field += 1;
    lock.Unlock();  // guard dropped while the compound update is in flight
    field += 1;
    lock.Lock();
  }
  auto reports = ReportsOfKind(race::Report::Kind::kScopeGuardDropped);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].field, "field");
  EXPECT_EQ(reports[0].declared_lock, "t.race.scope.drop");
}

// --- Happens-before exoneration ------------------------------------------

TEST_F(RaceDetectorTest, InitThenShareAcrossTasksIsSilent) {
  // Unlocked initialization, then hand-off to a simulated task: the
  // creator→event edge orders the accesses, so no report.
  int field = 0;
  race::RecordAccess(&field, "field", /*declared_cls=*/0, /*is_write=*/true,
                     __FILE__, __LINE__);
  field = 1;
  Mutex mu{"t.race.hb.handoff", 0};
  simtime::Scheduler sched(11);
  sched.At(0, [&] {
    MutexLock lock(mu);
    CFS_SHARED_WRITE(field, mu);
    field = 2;
  });
  sched.RunUntil(100);
  EXPECT_EQ(race::ReportCount(), 0u);
}

TEST_F(RaceDetectorTest, SameLockHandoffAcrossTasksIsSilent) {
  Mutex mu{"t.race.hb.samelock", 0};
  int field = 0;
  simtime::Scheduler sched(11);
  for (int i = 0; i < 4; i++) {
    sched.At(i * 10, [&] {
      MutexLock lock(mu);
      CFS_SHARED_WRITE(field, mu);
      field += 1;
    });
  }
  sched.RunUntil(1000);
  EXPECT_EQ(field, 4);
  EXPECT_EQ(race::ReportCount(), 0u);
}

TEST_F(RaceDetectorTest, DisjointLocksetsAcrossTasksReportLocksetEmpty) {
  // The classic Eraser condition: two tasks guard the same location with
  // *different* locks. Each access satisfies its own (wrong) declaration,
  // but the candidate lockset drains to empty and no happens-before edge
  // orders the writes.
  Mutex mu_a{"t.race.eraser.a", 0};
  Mutex mu_b{"t.race.eraser.b", 0};
  int field = 0;
  simtime::Scheduler sched(11);
  sched.At(0, [&] {
    MutexLock lock(mu_a);
    CFS_SHARED_WRITE(field, mu_a);
    field += 1;
  });
  sched.At(10, [&] {
    MutexLock lock(mu_b);
    CFS_SHARED_WRITE(field, mu_b);
    field += 1;
  });
  sched.RunUntil(1000);
  auto reports = ReportsOfKind(race::Report::Kind::kLocksetEmpty);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].field, "field");
  EXPECT_EQ(reports[0].locks_held, "t.race.eraser.b");
  EXPECT_NE(reports[0].prior.find("locks=t.race.eraser.a"), std::string::npos)
      << reports[0].prior;
  EXPECT_GE(reports[0].virtual_us, 0) << "expected an on-scheduler report";
}

TEST_F(RaceDetectorTest, AddressReuseAcrossObjectLifetimesRestartsTracking) {
  // The fig9-style teardown/rebuild pattern: an object dies and the
  // allocator hands its storage to an unrelated object. With no
  // deallocation hook, the detector must notice the field identity changed
  // at that address and restart tracking instead of fabricating a race
  // between the two objects' histories.
  Mutex mu_a{"t.race.reuse.a", 0};
  Mutex mu_b{"t.race.reuse.b", 0};
  int slot = 0;  // stands in for a reused heap address
  simtime::Scheduler sched(11);
  sched.At(0, [&] {
    MutexLock lock(mu_a);
    race::RecordAccess(&slot, "old_object_field", mu_a.order_class(),
                       /*is_write=*/true, __FILE__, __LINE__);
    slot = 1;
  });
  sched.At(10, [&] {
    MutexLock lock(mu_b);
    race::RecordAccess(&slot, "new_object_field", mu_b.order_class(),
                       /*is_write=*/true, __FILE__, __LINE__);
    slot = 2;
  });
  sched.RunUntil(1000);
  EXPECT_EQ(race::ReportCount(), 0u);
}

// --- Schedule fuzzing ----------------------------------------------------

TEST_F(RaceDetectorTest, FuzzedProperlyLockedWorkloadStaysClean) {
  Mutex mu{"t.race.fuzz.clean", 0};
  int counter = 0;
  simtime::Scheduler sched(29);
  simtime::FuzzOptions fuzz;
  fuzz.enabled = true;
  fuzz.seed = 123;
  fuzz.prob_pct = 50;
  fuzz.max_perturb_us = 20;
  sched.SetFuzz(fuzz);
  for (int i = 0; i < 64; i++) {
    sched.At(i % 8, [&] {  // deliberate same-time ties for the fuzzer
      MutexLock lock(mu);
      CFS_SHARED_WRITE(counter, mu);
      counter += 1;
    });
  }
  sched.RunUntil(100000);
  EXPECT_EQ(counter, 64);
  EXPECT_EQ(race::ReportCount(), 0u);
  EXPECT_GT(sched.fuzz_perturbations(simtime::FuzzKind::kLockAcquire), 0u)
      << "fuzzer should have perturbed at least one lock acquisition";
}

// Context ids are allocated from a process-global counter, so absolute ids
// differ between runs in one process; reproducibility is about everything
// else plus the *relative* context structure. Renumber ctx ids by first
// appearance before comparing.
std::string NormalizeCtxIds(const std::vector<std::string>& fingerprints) {
  std::string joined;
  for (const auto& f : fingerprints) joined += f + "\n";
  std::vector<std::string> seen;
  std::string out;
  size_t i = 0;
  while (i < joined.size()) {
    if (joined.compare(i, 4, "ctx=") == 0) {
      size_t j = i + 4;
      while (j < joined.size() && isdigit(joined[j]) != 0) j++;
      std::string id = joined.substr(i + 4, j - (i + 4));
      size_t idx = 0;
      for (; idx < seen.size(); idx++) {
        if (seen[idx] == id) break;
      }
      if (idx == seen.size()) seen.push_back(id);
      out += "ctx=#" + std::to_string(idx);
      i = j;
    } else {
      out += joined[i++];
    }
  }
  return out;
}

TEST_F(RaceDetectorTest, SameSeedReproducesIdenticalFingerprints) {
  auto run = [&](uint64_t seed) {
    race::ResetForTest();
    Mutex mu_a{"t.race.repro.a", 0};
    Mutex mu_b{"t.race.repro.b", 0};
    int field = 0;
    int bare = 0;
    simtime::Scheduler sched(seed);
    simtime::FuzzOptions fuzz;
    fuzz.enabled = true;
    fuzz.seed = seed;
    fuzz.prob_pct = 50;
    fuzz.max_perturb_us = 30;
    sched.SetFuzz(fuzz);
    // Two planted bugs: disjoint locksets on `field`, and an unlocked
    // write to `bare` with a declared guard.
    for (int i = 0; i < 4; i++) {
      sched.At(5, [&] {
        MutexLock lock(mu_a);
        CFS_SHARED_WRITE(field, mu_a);
        field += 1;
      });
      sched.At(5, [&] {
        MutexLock lock(mu_b);
        CFS_SHARED_WRITE(field, mu_b);
        field += 1;
      });
    }
    sched.At(7, [&] {
      CFS_SHARED_WRITE(bare, mu_a);
      bare = 1;
    });
    sched.RunUntil(100000);
    std::vector<std::string> fps;
    for (const auto& r : race::Reports()) fps.push_back(race::Fingerprint(r));
    EXPECT_FALSE(fps.empty());
    return NormalizeCtxIds(fps);
  };
  std::string first = run(77);
  std::string second = run(77);
  EXPECT_EQ(first, second) << "same seed must replay identical reports";
}

// --- Abort-on-report (the CI race-audit mode) ----------------------------

using RaceDetectorDeathTest = RaceDetectorTest;

TEST_F(RaceDetectorDeathTest, PlantedRaceAbortsNamingTheViolation) {
  Mutex mu{"t.race.death.mu", 0};
  int planted = 0;
  EXPECT_DEATH(
      {
        race::SetAbortOnReport(true);
        CFS_SHARED_WRITE(planted, mu);
        planted = 1;
      },
      "\\[race\\] unheld-declared-lock field=planted write "
      "declared=t\\.race\\.death\\.mu");
}

#else

TEST(RaceDetectorTest, DisabledBuildStubsAreInert) {
  int field = 0;
  race::RecordAccess(&field, "field", 0, true, __FILE__, __LINE__);
  EXPECT_EQ(race::ReportCount(), 0u);
  EXPECT_FALSE(race::Enabled());
}

#endif  // CFS_RACE_DETECT_ENABLED && CFS_LOCK_ORDER_TRACKING

}  // namespace
}  // namespace cfs
