// FileStore tests: attribute CRUD with delta/LWW merges, block I/O,
// piggybacked creation, whole-file deletion, 2PC staging, hash
// distribution, async deletion, and the CDC feed.

#include <gtest/gtest.h>

#include <set>

#include "src/filestore/filestore.h"

namespace cfs {
namespace {

FileStoreOptions FastOptions() {
  FileStoreOptions options;
  options.num_nodes = 3;
  options.raft.election_timeout_min_ms = 50;
  options.raft.election_timeout_max_ms = 100;
  options.raft.heartbeat_interval_ms = 20;
  return options;
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<FileStoreCluster>(
        &net_, std::vector<uint32_t>{0, 1, 2}, FastOptions());
    ASSERT_TRUE(cluster_->Start().ok());
  }
  void TearDown() override { cluster_->Stop(); }

  SimNet net_;
  std::unique_ptr<FileStoreCluster> cluster_;
};

TEST_F(FileStoreTest, PutGetDeleteAttr) {
  InodeId id = 42;
  InodeRecord attr = InodeRecord::MakeFileAttr(id, 100, 0644, 1, 2);
  FileStoreNode* node = cluster_->NodeFor(id);
  ASSERT_TRUE(node->PutAttr(attr, "").ok());
  auto got = node->GetAttr(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->mode, 0644u);
  EXPECT_EQ(got->type, InodeType::kFile);
  ASSERT_TRUE(node->DeleteAttr(id).ok());
  EXPECT_TRUE(node->GetAttr(id).status().IsNotFound());
}

TEST_F(FileStoreTest, SetAttrMergesLwwAndDeltas) {
  InodeId id = 7;
  FileStoreNode* node = cluster_->NodeFor(id);
  ASSERT_TRUE(node->PutAttr(InodeRecord::MakeFileAttr(id, 10, 0644, 0, 0), "")
                  .ok());
  UpdateSpec newer;
  newer.key = InodeKey::AttrRecord(id);
  newer.links_delta = 1;
  newer.lww.mode = 0600;
  newer.lww.ts = 100;
  ASSERT_TRUE(node->SetAttr(id, newer).ok());
  UpdateSpec stale;
  stale.key = InodeKey::AttrRecord(id);
  stale.links_delta = 1;
  stale.lww.mode = 0777;
  stale.lww.ts = 50;  // older than the previous write
  ASSERT_TRUE(node->SetAttr(id, stale).ok());

  auto got = node->GetAttr(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->links, 3);      // both deltas applied (commutative)
  EXPECT_EQ(got->mode, 0600u);   // stale LWW write ignored
}

TEST_F(FileStoreTest, PiggybackedBlockLandsWithAttr) {
  InodeId id = 9;
  FileStoreNode* node = cluster_->NodeFor(id);
  ASSERT_TRUE(
      node->PutAttr(InodeRecord::MakeFileAttr(id, 1, 0644, 0, 0), "block0")
          .ok());
  auto block = node->ReadBlock(id, 0);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(*block, "block0");
}

TEST_F(FileStoreTest, WriteBlockBumpsSizeAndMtime) {
  InodeId id = 11;
  FileStoreNode* node = cluster_->NodeFor(id);
  ASSERT_TRUE(node->PutAttr(InodeRecord::MakeFileAttr(id, 1, 0644, 0, 0), "")
                  .ok());
  ASSERT_TRUE(node->WriteBlock(id, 0, "0123456789", /*mtime_ts=*/55).ok());
  auto got = node->GetAttr(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size, 10);
  EXPECT_EQ(got->mtime, 55u);
  ASSERT_TRUE(node->WriteBlock(id, 3, "xyz", 60).ok());
  got = node->GetAttr(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size, 13);
  auto b3 = node->ReadBlock(id, 3);
  ASSERT_TRUE(b3.ok());
  EXPECT_EQ(*b3, "xyz");
}

TEST_F(FileStoreTest, DeleteFileRemovesAttrAndAllBlocks) {
  InodeId id = 13;
  FileStoreNode* node = cluster_->NodeFor(id);
  ASSERT_TRUE(node->PutAttr(InodeRecord::MakeFileAttr(id, 1, 0644, 0, 0), "")
                  .ok());
  for (uint64_t b = 0; b < 5; b++) {
    ASSERT_TRUE(node->WriteBlock(id, b, "data", 2).ok());
  }
  ASSERT_TRUE(node->DeleteFile(id).ok());
  EXPECT_TRUE(node->GetAttr(id).status().IsNotFound());
  for (uint64_t b = 0; b < 5; b++) {
    EXPECT_TRUE(node->ReadBlock(id, b).status().IsNotFound()) << b;
  }
}

TEST_F(FileStoreTest, TwoPhaseCommitStaging) {
  InodeId id = 17;
  FileStoreNode* node = cluster_->NodeFor(id);
  FileStoreCommand put;
  put.kind = FileStoreCommand::Kind::kPutAttr;
  put.id = id;
  put.attr = InodeRecord::MakeFileAttr(id, 1, 0644, 0, 0);
  TxnId txn = 1234;
  ASSERT_TRUE(node->Stage(txn, put).ok());
  ASSERT_TRUE(node->Prepare(txn).ok());
  // Not visible before commit.
  EXPECT_TRUE(node->GetAttr(id).status().IsNotFound());
  ASSERT_TRUE(node->Commit(txn).ok());
  EXPECT_TRUE(node->GetAttr(id).ok());

  // Abort path leaves nothing.
  InodeId id2 = 18;
  FileStoreCommand put2 = put;
  put2.id = id2;
  put2.attr = InodeRecord::MakeFileAttr(id2, 1, 0644, 0, 0);
  FileStoreNode* node2 = cluster_->NodeFor(id2);
  TxnId txn2 = 1235;
  ASSERT_TRUE(node2->Stage(txn2, put2).ok());
  ASSERT_TRUE(node2->Prepare(txn2).ok());
  ASSERT_TRUE(node2->Abort(txn2).ok());
  EXPECT_TRUE(node2->GetAttr(id2).status().IsNotFound());
}

TEST_F(FileStoreTest, HashPartitionSpreadsIds) {
  std::set<size_t> nodes_hit;
  std::vector<int> counts(cluster_->num_nodes(), 0);
  for (InodeId id = 1; id <= 3000; id++) {
    size_t n = cluster_->NodeIndexFor(id);
    nodes_hit.insert(n);
    counts[n]++;
  }
  EXPECT_EQ(nodes_hit.size(), cluster_->num_nodes());
  for (int c : counts) {
    EXPECT_GT(c, 700);  // roughly balanced thirds of 3000
    EXPECT_LT(c, 1300);
  }
}

TEST_F(FileStoreTest, AsyncDeleteEventuallyApplies) {
  InodeId id = 21;
  FileStoreNode* node = cluster_->NodeFor(id);
  ASSERT_TRUE(node->PutAttr(InodeRecord::MakeFileAttr(id, 1, 0644, 0, 0), "")
                  .ok());
  cluster_->DeleteAttrAsync(id);
  cluster_->DrainAsync();
  EXPECT_TRUE(node->GetAttr(id).status().IsNotFound());
}

TEST_F(FileStoreTest, CdcFeedReportsCommands) {
  InodeId id = 23;
  FileStoreNode* node = cluster_->NodeFor(id);
  ASSERT_TRUE(node->PutAttr(InodeRecord::MakeFileAttr(id, 1, 0644, 0, 0), "")
                  .ok());
  ASSERT_TRUE(node->DeleteAttr(id).ok());
  auto feed = node->ReadCommittedSince(0, 100);
  bool saw_put = false, saw_delete = false;
  for (auto& [index, cmd] : feed) {
    if (cmd.kind == FileStoreCommand::Kind::kPutAttr && cmd.id == id) {
      saw_put = true;
    }
    if (cmd.kind == FileStoreCommand::Kind::kDeleteAttr && cmd.id == id) {
      saw_delete = true;
    }
  }
  EXPECT_TRUE(saw_put);
  EXPECT_TRUE(saw_delete);
}

TEST_F(FileStoreTest, CommandCodecRoundTrip) {
  FileStoreCommand cmd;
  cmd.kind = FileStoreCommand::Kind::kWriteBlock;
  cmd.txn = 99;
  cmd.id = 31;
  cmd.block_index = 4;
  cmd.data = std::string(1000, 'z');
  cmd.update.key = InodeKey::AttrRecord(31);
  cmd.update.size_delta = 1000;
  cmd.update.lww.mtime = 5;
  cmd.update.lww.ts = 5;
  auto decoded = FileStoreCommand::Decode(cmd.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, FileStoreCommand::Kind::kWriteBlock);
  EXPECT_EQ(decoded->txn, 99u);
  EXPECT_EQ(decoded->id, 31u);
  EXPECT_EQ(decoded->block_index, 4u);
  EXPECT_EQ(decoded->data.size(), 1000u);
  EXPECT_EQ(decoded->update.size_delta, 1000);
  EXPECT_EQ(*decoded->update.lww.mtime, 5u);
}

TEST_F(FileStoreTest, SurvivesNodeReplicaFailure) {
  InodeId id = 37;
  FileStoreNode* node = cluster_->NodeFor(id);
  ASSERT_TRUE(node->PutAttr(InodeRecord::MakeFileAttr(id, 1, 0644, 0, 0), "")
                  .ok());
  // Crash one follower replica of the raft group; writes must continue.
  RaftGroup* group = node->raft_group();
  RaftNode* leader = group->Leader();
  for (size_t i = 0; i < group->size(); i++) {
    if (group->replica(i) != leader) {
      group->CrashReplica(i);
      break;
    }
  }
  UpdateSpec update;
  update.key = InodeKey::AttrRecord(id);
  update.lww.mode = 0700;
  update.lww.ts = 99;
  EXPECT_TRUE(node->SetAttr(id, update).ok());
  auto got = node->GetAttr(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->mode, 0700u);
}

}  // namespace
}  // namespace cfs
