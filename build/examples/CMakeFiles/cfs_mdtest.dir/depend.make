# Empty dependencies file for cfs_mdtest.
# This may be replaced when dependencies are built.
