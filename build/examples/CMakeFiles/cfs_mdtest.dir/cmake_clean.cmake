file(REMOVE_RECURSE
  "CMakeFiles/cfs_mdtest.dir/cfs_mdtest.cpp.o"
  "CMakeFiles/cfs_mdtest.dir/cfs_mdtest.cpp.o.d"
  "cfs_mdtest"
  "cfs_mdtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_mdtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
