# Empty compiler generated dependencies file for analytics_shared_dir.
# This may be replaced when dependencies are built.
