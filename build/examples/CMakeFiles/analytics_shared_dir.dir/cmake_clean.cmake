file(REMOVE_RECURSE
  "CMakeFiles/analytics_shared_dir.dir/analytics_shared_dir.cpp.o"
  "CMakeFiles/analytics_shared_dir.dir/analytics_shared_dir.cpp.o.d"
  "analytics_shared_dir"
  "analytics_shared_dir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_shared_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
