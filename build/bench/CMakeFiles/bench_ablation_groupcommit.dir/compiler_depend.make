# Empty compiler generated dependencies file for bench_ablation_groupcommit.
# This may be replaced when dependencies are built.
