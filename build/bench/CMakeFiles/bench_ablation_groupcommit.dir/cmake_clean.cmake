file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_groupcommit.dir/bench_ablation_groupcommit.cpp.o"
  "CMakeFiles/bench_ablation_groupcommit.dir/bench_ablation_groupcommit.cpp.o.d"
  "bench_ablation_groupcommit"
  "bench_ablation_groupcommit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_groupcommit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
