# Empty dependencies file for bench_fig11_contention.
# This may be replaced when dependencies are built.
