file(REMOVE_RECURSE
  "CMakeFiles/bench_sec56_rename.dir/bench_sec56_rename.cpp.o"
  "CMakeFiles/bench_sec56_rename.dir/bench_sec56_rename.cpp.o.d"
  "bench_sec56_rename"
  "bench_sec56_rename.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec56_rename.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
