# Empty compiler generated dependencies file for bench_sec56_rename.
# This may be replaced when dependencies are built.
