# Empty dependencies file for bench_fig14_trace_sizes.
# This may be replaced when dependencies are built.
