file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_large_directory.dir/bench_fig12_large_directory.cpp.o"
  "CMakeFiles/bench_fig12_large_directory.dir/bench_fig12_large_directory.cpp.o.d"
  "bench_fig12_large_directory"
  "bench_fig12_large_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_large_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
