# Empty dependencies file for bench_fig4_lock_overhead.
# This may be replaced when dependencies are built.
