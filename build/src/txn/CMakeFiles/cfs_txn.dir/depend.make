# Empty dependencies file for cfs_txn.
# This may be replaced when dependencies are built.
