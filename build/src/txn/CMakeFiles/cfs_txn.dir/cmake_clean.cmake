file(REMOVE_RECURSE
  "CMakeFiles/cfs_txn.dir/lock_manager.cc.o"
  "CMakeFiles/cfs_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/cfs_txn.dir/two_phase_commit.cc.o"
  "CMakeFiles/cfs_txn.dir/two_phase_commit.cc.o.d"
  "libcfs_txn.a"
  "libcfs_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
