file(REMOVE_RECURSE
  "libcfs_txn.a"
)
