file(REMOVE_RECURSE
  "CMakeFiles/cfs_renamer.dir/renamer.cc.o"
  "CMakeFiles/cfs_renamer.dir/renamer.cc.o.d"
  "libcfs_renamer.a"
  "libcfs_renamer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_renamer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
