# Empty compiler generated dependencies file for cfs_renamer.
# This may be replaced when dependencies are built.
