file(REMOVE_RECURSE
  "libcfs_renamer.a"
)
