
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tafdb/primitives.cc" "src/tafdb/CMakeFiles/cfs_tafdb.dir/primitives.cc.o" "gcc" "src/tafdb/CMakeFiles/cfs_tafdb.dir/primitives.cc.o.d"
  "/root/repo/src/tafdb/schema.cc" "src/tafdb/CMakeFiles/cfs_tafdb.dir/schema.cc.o" "gcc" "src/tafdb/CMakeFiles/cfs_tafdb.dir/schema.cc.o.d"
  "/root/repo/src/tafdb/shard.cc" "src/tafdb/CMakeFiles/cfs_tafdb.dir/shard.cc.o" "gcc" "src/tafdb/CMakeFiles/cfs_tafdb.dir/shard.cc.o.d"
  "/root/repo/src/tafdb/tafdb.cc" "src/tafdb/CMakeFiles/cfs_tafdb.dir/tafdb.cc.o" "gcc" "src/tafdb/CMakeFiles/cfs_tafdb.dir/tafdb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/cfs_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/cfs_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/cfs_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/cfs_wal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
