# Empty compiler generated dependencies file for cfs_tafdb.
# This may be replaced when dependencies are built.
