file(REMOVE_RECURSE
  "libcfs_tafdb.a"
)
