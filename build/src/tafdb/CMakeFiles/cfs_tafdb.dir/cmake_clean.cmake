file(REMOVE_RECURSE
  "CMakeFiles/cfs_tafdb.dir/primitives.cc.o"
  "CMakeFiles/cfs_tafdb.dir/primitives.cc.o.d"
  "CMakeFiles/cfs_tafdb.dir/schema.cc.o"
  "CMakeFiles/cfs_tafdb.dir/schema.cc.o.d"
  "CMakeFiles/cfs_tafdb.dir/shard.cc.o"
  "CMakeFiles/cfs_tafdb.dir/shard.cc.o.d"
  "CMakeFiles/cfs_tafdb.dir/tafdb.cc.o"
  "CMakeFiles/cfs_tafdb.dir/tafdb.cc.o.d"
  "libcfs_tafdb.a"
  "libcfs_tafdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_tafdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
