# Empty dependencies file for cfs_tafdb.
# This may be replaced when dependencies are built.
