file(REMOVE_RECURSE
  "libcfs_raft.a"
)
