# Empty dependencies file for cfs_wal.
# This may be replaced when dependencies are built.
