file(REMOVE_RECURSE
  "CMakeFiles/cfs_wal.dir/wal.cc.o"
  "CMakeFiles/cfs_wal.dir/wal.cc.o.d"
  "libcfs_wal.a"
  "libcfs_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
