# Empty compiler generated dependencies file for cfs_wal.
# This may be replaced when dependencies are built.
