file(REMOVE_RECURSE
  "libcfs_wal.a"
)
