file(REMOVE_RECURSE
  "libcfs_kv.a"
)
