file(REMOVE_RECURSE
  "CMakeFiles/cfs_kv.dir/kvstore.cc.o"
  "CMakeFiles/cfs_kv.dir/kvstore.cc.o.d"
  "CMakeFiles/cfs_kv.dir/memtable.cc.o"
  "CMakeFiles/cfs_kv.dir/memtable.cc.o.d"
  "CMakeFiles/cfs_kv.dir/sorted_run.cc.o"
  "CMakeFiles/cfs_kv.dir/sorted_run.cc.o.d"
  "libcfs_kv.a"
  "libcfs_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
