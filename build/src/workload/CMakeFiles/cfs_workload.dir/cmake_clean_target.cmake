file(REMOVE_RECURSE
  "libcfs_workload.a"
)
