# Empty compiler generated dependencies file for cfs_workload.
# This may be replaced when dependencies are built.
