file(REMOVE_RECURSE
  "CMakeFiles/cfs_workload.dir/traces.cc.o"
  "CMakeFiles/cfs_workload.dir/traces.cc.o.d"
  "CMakeFiles/cfs_workload.dir/workload.cc.o"
  "CMakeFiles/cfs_workload.dir/workload.cc.o.d"
  "libcfs_workload.a"
  "libcfs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
