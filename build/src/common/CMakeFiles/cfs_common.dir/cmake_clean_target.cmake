file(REMOVE_RECURSE
  "libcfs_common.a"
)
