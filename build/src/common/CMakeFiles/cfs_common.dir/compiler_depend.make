# Empty compiler generated dependencies file for cfs_common.
# This may be replaced when dependencies are built.
