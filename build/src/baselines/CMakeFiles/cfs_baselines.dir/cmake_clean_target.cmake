file(REMOVE_RECURSE
  "libcfs_baselines.a"
)
