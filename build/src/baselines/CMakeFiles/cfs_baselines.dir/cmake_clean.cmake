file(REMOVE_RECURSE
  "CMakeFiles/cfs_baselines.dir/baseline_common.cc.o"
  "CMakeFiles/cfs_baselines.dir/baseline_common.cc.o.d"
  "CMakeFiles/cfs_baselines.dir/hopsfs/hopsfs.cc.o"
  "CMakeFiles/cfs_baselines.dir/hopsfs/hopsfs.cc.o.d"
  "CMakeFiles/cfs_baselines.dir/infinifs/infinifs.cc.o"
  "CMakeFiles/cfs_baselines.dir/infinifs/infinifs.cc.o.d"
  "libcfs_baselines.a"
  "libcfs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
