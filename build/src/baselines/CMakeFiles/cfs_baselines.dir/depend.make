# Empty dependencies file for cfs_baselines.
# This may be replaced when dependencies are built.
