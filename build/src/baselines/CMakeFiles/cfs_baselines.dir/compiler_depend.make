# Empty compiler generated dependencies file for cfs_baselines.
# This may be replaced when dependencies are built.
