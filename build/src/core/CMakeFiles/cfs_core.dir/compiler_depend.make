# Empty compiler generated dependencies file for cfs_core.
# This may be replaced when dependencies are built.
