file(REMOVE_RECURSE
  "libcfs_core.a"
)
