file(REMOVE_RECURSE
  "CMakeFiles/cfs_core.dir/cfs.cc.o"
  "CMakeFiles/cfs_core.dir/cfs.cc.o.d"
  "CMakeFiles/cfs_core.dir/cfs_engine.cc.o"
  "CMakeFiles/cfs_core.dir/cfs_engine.cc.o.d"
  "CMakeFiles/cfs_core.dir/gc.cc.o"
  "CMakeFiles/cfs_core.dir/gc.cc.o.d"
  "CMakeFiles/cfs_core.dir/metadata_client.cc.o"
  "CMakeFiles/cfs_core.dir/metadata_client.cc.o.d"
  "CMakeFiles/cfs_core.dir/posix.cc.o"
  "CMakeFiles/cfs_core.dir/posix.cc.o.d"
  "libcfs_core.a"
  "libcfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
