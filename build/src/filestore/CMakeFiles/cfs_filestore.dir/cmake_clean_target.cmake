file(REMOVE_RECURSE
  "libcfs_filestore.a"
)
