file(REMOVE_RECURSE
  "CMakeFiles/cfs_filestore.dir/filestore.cc.o"
  "CMakeFiles/cfs_filestore.dir/filestore.cc.o.d"
  "libcfs_filestore.a"
  "libcfs_filestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_filestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
