# Empty dependencies file for cfs_filestore.
# This may be replaced when dependencies are built.
