file(REMOVE_RECURSE
  "libcfs_net.a"
)
