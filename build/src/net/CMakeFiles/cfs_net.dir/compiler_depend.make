# Empty compiler generated dependencies file for cfs_net.
# This may be replaced when dependencies are built.
