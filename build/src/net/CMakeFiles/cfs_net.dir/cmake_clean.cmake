file(REMOVE_RECURSE
  "CMakeFiles/cfs_net.dir/simnet.cc.o"
  "CMakeFiles/cfs_net.dir/simnet.cc.o.d"
  "libcfs_net.a"
  "libcfs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
