# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/raft_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/tafdb_test[1]_include.cmake")
include("/root/repo/build/tests/cfs_core_test[1]_include.cmake")
include("/root/repo/build/tests/renamer_test[1]_include.cmake")
include("/root/repo/build/tests/posix_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/filestore_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/failover_test[1]_include.cmake")
