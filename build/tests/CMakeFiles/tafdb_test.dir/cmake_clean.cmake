file(REMOVE_RECURSE
  "CMakeFiles/tafdb_test.dir/tafdb_test.cc.o"
  "CMakeFiles/tafdb_test.dir/tafdb_test.cc.o.d"
  "tafdb_test"
  "tafdb_test.pdb"
  "tafdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tafdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
