# Empty dependencies file for tafdb_test.
# This may be replaced when dependencies are built.
