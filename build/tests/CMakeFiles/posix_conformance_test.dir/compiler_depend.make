# Empty compiler generated dependencies file for posix_conformance_test.
# This may be replaced when dependencies are built.
