file(REMOVE_RECURSE
  "CMakeFiles/posix_conformance_test.dir/posix_conformance_test.cc.o"
  "CMakeFiles/posix_conformance_test.dir/posix_conformance_test.cc.o.d"
  "posix_conformance_test"
  "posix_conformance_test.pdb"
  "posix_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
