file(REMOVE_RECURSE
  "CMakeFiles/cfs_core_test.dir/cfs_core_test.cc.o"
  "CMakeFiles/cfs_core_test.dir/cfs_core_test.cc.o.d"
  "cfs_core_test"
  "cfs_core_test.pdb"
  "cfs_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
