# Empty dependencies file for renamer_test.
# This may be replaced when dependencies are built.
