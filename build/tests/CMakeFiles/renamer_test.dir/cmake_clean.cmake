file(REMOVE_RECURSE
  "CMakeFiles/renamer_test.dir/renamer_test.cc.o"
  "CMakeFiles/renamer_test.dir/renamer_test.cc.o.d"
  "renamer_test"
  "renamer_test.pdb"
  "renamer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renamer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
