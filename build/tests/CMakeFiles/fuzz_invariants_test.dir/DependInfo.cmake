
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fuzz_invariants_test.cc" "tests/CMakeFiles/fuzz_invariants_test.dir/fuzz_invariants_test.cc.o" "gcc" "tests/CMakeFiles/fuzz_invariants_test.dir/fuzz_invariants_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/renamer/CMakeFiles/cfs_renamer.dir/DependInfo.cmake"
  "/root/repo/build/src/filestore/CMakeFiles/cfs_filestore.dir/DependInfo.cmake"
  "/root/repo/build/src/tafdb/CMakeFiles/cfs_tafdb.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/cfs_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/cfs_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/cfs_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/cfs_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cfs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
