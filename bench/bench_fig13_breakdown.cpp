// Figure 13 — ablation: the impact of enabling CFS's optimizations one at
// a time, against InfiniFS as the reference. Paper setup: a smaller
// cluster (6 servers), 100 clients, 10% contention; ops create, mkdir,
// getattr; results normalized to CFS-base.
//
// Expected shape: getattr gains arrive with "+new-org" (FileStore offload);
// create/mkdir gains arrive with "+primitives" (distributed-txn and lock
// elimination); "+no-proxy" trims another ~20-30% of latency everywhere.

#include "bench/bench_common.h"
#include "src/common/metrics.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

System MakeSmallCfs(const std::string& name, CfsOptions options) {
  options = BenchCfsOptions(std::move(options));
  options.num_servers = 6;
  options.tafdb.num_shards = 6;
  options.filestore.num_nodes = 6;
  auto fs = std::make_shared<Cfs>(options);
  if (!fs->Start().ok()) std::exit(1);
  return System{name,
                [fs] { return fs->NewClient(); },
                [fs] { fs->Stop(); },
                [fs] { return fs->net(); }};
}

System MakeSmallInfiniFs() {
  BaselineOptions options = BenchBaselineOptions(false);
  options.num_servers = 6;
  options.tafdb.num_shards = 6;
  options.filestore.num_nodes = 6;
  auto cluster = std::make_shared<InfiniFsCluster>("infinifs-s", options);
  if (!cluster->Start().ok()) std::exit(1);
  return System{"InfiniFS",
                [cluster] { return cluster->NewClient(); },
                [cluster] { cluster->Stop(); },
                [cluster] { return cluster->net(); }};
}

}  // namespace

int main() {
  TraceSession trace_session("fig13_breakdown");
  Logger::Get().set_level(LogLevel::kWarn);
  size_t clients = std::max<size_t>(Clients() / 2, 8);  // "100 clients" scaled
  int64_t duration = DurationMs();
  constexpr double kContention = 0.10;

  struct Config {
    std::string name;
    std::function<System()> make;
  };
  std::vector<Config> configs = {
      {"InfiniFS", MakeSmallInfiniFs},
      {"CFS-base", [] { return MakeSmallCfs("CFS-base", CfsBaseOptions()); }},
      {"+new-org", [] { return MakeSmallCfs("+new-org", CfsNewOrgOptions()); }},
      {"+primitives",
       [] { return MakeSmallCfs("+primitives", CfsPrimitivesOptions()); }},
      {"+no-proxy", [] { return MakeSmallCfs("+no-proxy", CfsFullOptions()); }},
  };

  const char* op_names[3] = {"create", "mkdir", "getattr"};

  struct Row {
    std::string name;
    double kops[3];
    double avg_us[3];
    PhaseBreakdown phases[3];
    // Span-tree-derived phase sums (tracing on only), captured right
    // after each run while the bounded trace stores still hold it.
    int64_t span_us[3][kNumPhases];
    int64_t span_total[3];
    size_t span_ops[3];
  };
  std::vector<Row> rows;
  // The last configuration's system stays up through the final registry
  // dump so its SimNet edge probe is included.
  std::function<void()> deferred_stop;

  for (auto& config : configs) {
    System system = config.make();
    std::fprintf(stderr, "[fig13] %s...\n", config.name.c_str());
    PreparePopulation(system, clients, /*files_per_dir=*/64,
                      /*shared_files=*/64);
    OpFn ops[3] = {MakeCreateOp(kContention), MakeMkdirOp(kContention),
                   MakeGetAttrOp(kContention, 64, 64)};
    Row row{};
    row.name = config.name;
    for (int i = 0; i < 3; i++) {
      std::string label = "fig13." + config.name + "." + op_names[i];
      RunResult result =
          RunWorkload(system, clients, ops[i], duration, duration / 4, label);
      row.kops[i] = result.kops();
      row.avg_us[i] = result.latency.mean();
      row.phases[i] = result.phases;
      if (trace_session.enabled()) {
        // Fold this run's span trees into the row now, then reset the
        // collector: the retained/slow stores are bounded, and fifteen
        // runs sharing them would leave later rows with only tail-biased
        // slow-op samples. Slow ops land in the slow-op log INSTEAD of
        // the retained store, so the union is the comparison set.
        trace::TraceCollector& collector = trace::TraceCollector::Global();
        std::vector<trace::OpRecord> kept = collector.SnapshotRetained();
        std::vector<trace::OpRecord> slow = collector.SnapshotSlowOps();
        kept.insert(kept.end(), std::make_move_iterator(slow.begin()),
                    std::make_move_iterator(slow.end()));
        for (const trace::OpRecord& op : kept) {
          if (op.name != label) continue;
          row.span_ops[i]++;
          row.span_total[i] += op.total_us;
          std::vector<int64_t> per_phase =
              trace::PhaseUsFromEvents(op.events, kNumPhases);
          for (size_t p = 0; p < kNumPhases; p++) {
            row.span_us[i][p] += per_phase[p];
          }
        }
        collector.Reset();
      }
    }
    rows.push_back(row);
    if (&config == &configs.back()) {
      deferred_stop = system.stop;
    } else {
      system.stop();
    }
  }

  const Row* base_row = nullptr;
  for (const auto& row : rows) {
    if (row.name == "CFS-base") base_row = &row;
  }

  PrintHeader("Figure 13: throughput normalized to CFS-base (10% contention)");
  std::printf("%-12s %9s %9s %9s   (absolute Kops/s)\n", "config",
              op_names[0], op_names[1], op_names[2]);
  for (const auto& row : rows) {
    std::printf("%-12s", row.name.c_str());
    for (int i = 0; i < 3; i++) {
      std::printf(" %8.2fx", row.kops[i] / base_row->kops[i]);
    }
    std::printf("   [%.1f %.1f %.1f]\n", row.kops[0], row.kops[1],
                row.kops[2]);
  }

  PrintHeader("Figure 13: average latency normalized to CFS-base");
  std::printf("%-12s %9s %9s %9s   (absolute us)\n", "config", op_names[0],
              op_names[1], op_names[2]);
  for (const auto& row : rows) {
    std::printf("%-12s", row.name.c_str());
    for (int i = 0; i < 3; i++) {
      std::printf(" %8.2fx", row.avg_us[i] / base_row->avg_us[i]);
    }
    std::printf("   [%.0f %.0f %.0f]\n", row.avg_us[0], row.avg_us[1],
                row.avg_us[2]);
  }

  // Where each configuration spends its time, from the per-op trace spans:
  // resolve (path resolution), lock (lock acquire/release RPCs + queueing,
  // zero on the primitive path), exec (shard-side execution incl. 2PC),
  // other (RPC transit, proxy hop, client work). The ablation's mechanism
  // is visible here: "+primitives" zeroes the lock column, "+no-proxy"
  // shrinks "other".
  PrintHeader("Figure 13: avg latency phase split (us, from trace spans)");
  std::printf("%-12s %-8s %9s %9s %9s %9s %9s\n", "config", "op", "total",
              "resolve", "lock", "exec", "other");
  for (const auto& row : rows) {
    for (int i = 0; i < 3; i++) {
      const PhaseBreakdown& ph = row.phases[i];
      double total = ph.AvgTotalUs();
      double resolve = ph.AvgPhaseUs(Phase::kResolve);
      double lock = ph.AvgPhaseUs(Phase::kLockWait);
      double exec = ph.AvgPhaseUs(Phase::kShardExec);
      std::printf("%-12s %-8s %9.0f %9.0f %9.0f %9.0f %9.0f\n",
                  row.name.c_str(), op_names[i], total, resolve, lock, exec,
                  total - resolve - lock - exec);
    }
  }

  // With tracing on, re-derive the same shares from the retained span
  // trees and print the deltas — the causal layer and the accumulators are
  // two independent readouts of one instrumented code path, so they must
  // agree (acceptance: within 5 points on every phase share).
  if (trace_session.enabled()) {
    PrintHeader(
        "Figure 13: phase shares, span-tree-derived vs accumulators (pct)");
    std::printf("%-12s %-8s %6s  %15s %15s %15s\n", "config", "op", "ops",
                "resolve", "lock", "exec");
    const Phase checked[3] = {Phase::kResolve, Phase::kLockWait,
                              Phase::kShardExec};
    for (const auto& row : rows) {
      for (int i = 0; i < 3; i++) {
        if (row.span_ops[i] == 0 || row.span_total[i] <= 0) continue;
        const PhaseBreakdown& ph = row.phases[i];
        std::printf("%-12s %-8s %6zu ", row.name.c_str(), op_names[i],
                    row.span_ops[i]);
        for (Phase p : checked) {
          double span_share =
              100.0 *
              static_cast<double>(row.span_us[i][static_cast<size_t>(p)]) /
              static_cast<double>(row.span_total[i]);
          double acc_share = 100.0 * ph.Share(p);
          std::printf(" %5.1f/%5.1f d%3.1f", span_share, acc_share,
                      span_share > acc_share ? span_share - acc_share
                                             : acc_share - span_share);
        }
        std::printf("\n");
      }
    }
  }

  PrintHeader("Metrics registry dump");
  std::printf("%s\n", MetricsRegistry::Global().DumpJson().c_str());
  deferred_stop();
  return 0;
}
