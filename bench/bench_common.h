// Shared benchmark infrastructure: builds the three systems (HopsFS-like,
// InfiniFS-like, CFS and its ablation variants) at "bench scale" — the
// paper's 50-server / 500-client testbed scaled to a single machine (see
// EXPERIMENTS.md):
//   - injected SimNet latency (150 us cross-node RTT, 30 us WAL fsync),
//     paid as real sleeps (wall-clock mode) or as virtual time (sim mode),
//   - 8 physical servers, 8 TafDB shards, 8 FileStore nodes, 4 proxies,
//   - wall-clock mode: up to ~64 client OS threads (each mostly blocked in
//     simulated RPCs); sim mode: tens of thousands of simulated clients.
//
// Every bench binary prints paper-style rows; durations and client counts
// can be scaled via env vars:
//   CFS_BENCH_DURATION_MS (default 2000)   per measured point (wall clock)
//   CFS_BENCH_CLIENTS     (default 48)     "500 concurrent clients"
//   CFS_BENCH_LARGEDIR_FILES (default 20000)  Fig 12 population
//
// Simulation mode (DESIGN.md §11). CFS_SIM=1 switches every bench from
// sleep-injected latency + one OS thread per client to a discrete-event
// virtual clock (LatencyMode::kVirtual, inline raft replication, GC off)
// with simulated clients (WorkloadRunner::RunSimulated). Runs are
// deterministic: same seed, same results, bit for bit. Sim knobs:
//   CFS_SIM             (default 0)    1 = simulate
//   CFS_SIM_SEED        (default 42)   scheduler + jitter + workload seed
//   CFS_SIM_DURATION_MS (default 25)   measured VIRTUAL window per point
//   CFS_SIM_WARMUP_MS   (default CFS_SIM_DURATION_MS/4)  virtual warmup
//   CFS_SIM_CLIENTS     (default 10000)  bench_fig10_simscale client count
// Throughput printed in sim mode is virtual ops/s (ops per simulated
// second) — not comparable to wall-clock numbers (bench_results/BASELINE.md).
//
// Causal tracing (src/common/trace_event.h) is driven by TraceSession:
//   CFS_BENCH_TRACE_OUT        output directory; unset = tracing off
//   CFS_TRACE_SAMPLE_EVERY     head sampling: every Nth op (default 64,
//                              0 = tail capture only)
//   CFS_TRACE_SLOW_US          slow-op threshold in us (default 20000)
//   CFS_TRACE_RING_CAP         per-thread ring capacity (default 4096)
//   CFS_TRACE_MAX_OPS          retained-op store bound (default 512)
//   CFS_TRACE_MAX_SLOW_OPS     slow-op log bound (default 64)
// On destruction the session writes TRACE_<bench>.json (Perfetto) and
// TRACE_<bench>.slowops.txt (indented slow-op span trees) to the directory.

#ifndef CFS_BENCH_BENCH_COMMON_H_
#define CFS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/simtime.h"
#include "src/common/trace_event.h"
#include "src/baselines/hopsfs/hopsfs.h"
#include "src/baselines/infinifs/infinifs.h"
#include "src/core/cfs.h"
#include "src/core/gc.h"
#include "src/workload/traces.h"
#include "src/workload/workload.h"

namespace cfs::bench {

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

inline int64_t DurationMs() { return EnvInt("CFS_BENCH_DURATION_MS", 2000); }
inline size_t Clients() {
  return static_cast<size_t>(EnvInt("CFS_BENCH_CLIENTS", 48));
}

// Virtual-time simulation configuration (see the header comment; knobs are
// read once).
struct SimConfig {
  bool enabled = false;
  uint64_t seed = 42;
  int64_t duration_ms = 25;
  int64_t warmup_ms = 6;
};

inline const SimConfig& Sim() {
  static const SimConfig config = [] {
    SimConfig s;
    s.enabled = EnvInt("CFS_SIM", 0) != 0;
    s.seed = static_cast<uint64_t>(EnvInt("CFS_SIM_SEED", 42));
    s.duration_ms = EnvInt("CFS_SIM_DURATION_MS", 25);
    s.warmup_ms = EnvInt("CFS_SIM_WARMUP_MS", s.duration_ms / 4);
    return s;
  }();
  return config;
}

inline NetOptions BenchNet() {
  NetOptions net;
  net.mode = Sim().enabled ? LatencyMode::kVirtual : LatencyMode::kSleep;
  net.seed = Sim().seed;
  net.cross_node_rtt_us = 150;
  net.same_node_rtt_us = 5;
  net.jitter_pct = 10;
  return net;
}

inline RaftOptions BenchRaft() {
  RaftOptions raft;
  // Long election timeouts: benches must never see spurious elections.
  raft.election_timeout_min_ms = 400;
  raft.election_timeout_max_ms = 800;
  raft.heartbeat_interval_ms = 100;
  raft.wal.fsync_delay_us = 30;  // NVMe-class WAL flush
  // Sim mode replicates synchronously on the proposing (scheduler) thread;
  // no ticker/replicator/heartbeat threads exist to perturb the run.
  raft.inline_replication = Sim().enabled;
  return raft;
}

inline CfsOptions BenchCfsOptions(CfsOptions base) {
  base.num_servers = 8;
  base.num_proxies = 4;
  base.net = BenchNet();
  base.tafdb.num_shards = 8;
  // Pre-split ranges sized for balance: sequential inode ids must spread
  // across shards (the paper's range partitioning assumes operators size
  // ranges appropriately; a coarse stripe would pin every benchmark
  // directory onto one shard).
  base.tafdb.range_stripe_width = 4;
  base.tafdb.raft = BenchRaft();
  base.filestore.num_nodes = 8;
  base.filestore.raft = BenchRaft();
  base.renamer.raft = BenchRaft();
  base.gc_interval_ms = 500;
  // The GC thread ticks on the wall clock, outside virtual time; disable
  // it in sim mode so runs are deterministic.
  if (Sim().enabled) base.start_gc = false;
  return base;
}

inline BaselineOptions BenchBaselineOptions(bool hopsfs) {
  BaselineOptions options;
  options.num_servers = 8;
  options.num_proxies = 4;
  options.net = BenchNet();
  options.tafdb.num_shards = 8;
  options.tafdb.raft = BenchRaft();
  options.filestore.num_nodes = 8;
  options.filestore.raft = BenchRaft();
  if (hopsfs) {
    // Calibration for NDB's heavier per-row processing and lower per-node
    // scalability relative to the key-value backends (paper §5.2: "the
    // limited scalability of each NDB-data node").
    options.tafdb.read_processing_us = 250;
    options.tafdb.read_concurrency = 2;
  }
  return options;
}

// Type-erased running system.
struct System {
  std::string name;
  std::function<std::unique_ptr<MetadataClient>()> new_client;
  std::function<void()> stop;
  std::function<SimNet*()> net;

  std::vector<std::unique_ptr<MetadataClient>> MakeClients(size_t n) const {
    std::vector<std::unique_ptr<MetadataClient>> out;
    out.reserve(n);
    for (size_t i = 0; i < n; i++) out.push_back(new_client());
    return out;
  }
};

inline System MakeHopsFs() {
  auto cluster =
      std::make_shared<HopsFsCluster>("hopsfs", BenchBaselineOptions(true));
  Status st = cluster->Start();
  if (!st.ok()) {
    std::fprintf(stderr, "HopsFS start failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return System{"HopsFS",
                [cluster] { return cluster->NewClient(); },
                [cluster] { cluster->Stop(); },
                [cluster] { return cluster->net(); }};
}

inline System MakeInfiniFs() {
  auto cluster = std::make_shared<InfiniFsCluster>("infinifs",
                                                   BenchBaselineOptions(false));
  Status st = cluster->Start();
  if (!st.ok()) {
    std::fprintf(stderr, "InfiniFS start failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return System{"InfiniFS",
                [cluster] { return cluster->NewClient(); },
                [cluster] { cluster->Stop(); },
                [cluster] { return cluster->net(); }};
}

// Builds a System from fully-configured options (no BenchCfsOptions
// defaults applied) — for benches that configure legs explicitly, e.g.
// bench_fig10_simscale running a wall-clock leg and a virtual-time leg in
// one process regardless of CFS_SIM.
inline System MakeCfsConfigured(const std::string& name, CfsOptions options) {
  auto fs = std::make_shared<Cfs>(std::move(options));
  Status st = fs->Start();
  if (!st.ok()) {
    std::fprintf(stderr, "%s start failed: %s\n", name.c_str(),
                 st.ToString().c_str());
    std::exit(1);
  }
  return System{name,
                [fs] { return fs->NewClient(); },
                [fs] { fs->Stop(); },
                [fs] { return fs->net(); }};
}

inline System MakeCfs(const std::string& name, CfsOptions options) {
  return MakeCfsConfigured(name, BenchCfsOptions(std::move(options)));
}

// Forces a mode onto fully-built options — what BenchCfsOptions picks from
// CFS_SIM, made explicit for MakeCfsConfigured callers.
inline CfsOptions WithSimMode(CfsOptions options, uint64_t seed) {
  options.net.mode = LatencyMode::kVirtual;
  options.net.seed = seed;
  options.tafdb.raft.inline_replication = true;
  options.filestore.raft.inline_replication = true;
  options.renamer.raft.inline_replication = true;
  options.start_gc = false;
  return options;
}

inline CfsOptions WithWallMode(CfsOptions options) {
  options.net.mode = LatencyMode::kSleep;
  options.tafdb.raft.inline_replication = false;
  options.filestore.raft.inline_replication = false;
  options.renamer.raft.inline_replication = false;
  options.start_gc = true;
  return options;
}

inline System MakeCfsFull() { return MakeCfs("CFS", CfsFullOptions()); }

// All three systems of §5.2-§5.6.
inline std::vector<std::function<System()>> AllSystems() {
  return {MakeHopsFs, MakeInfiniFs, MakeCfsFull};
}

// Populates /priv<t> (one per client) and /shared with `files` each.
inline void PreparePopulation(const System& system, size_t clients,
                              size_t files_per_dir, size_t shared_files) {
  auto setup = system.new_client();
  Status st = SetupPrivateDirs(setup.get(), clients);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  auto workers = system.MakeClients(8);
  std::vector<MetadataClient*> raw;
  for (auto& w : workers) raw.push_back(w.get());
  if (files_per_dir > 0) {
    for (size_t t = 0; t < clients; t++) {
      (void)PopulateDirectory(raw, "/priv" + std::to_string(t),
                              files_per_dir);
    }
  }
  if (shared_files > 0) {
    (void)PopulateDirectory(raw, "/shared", shared_files);
  }
}

// Closed loop of `op` over `clients` fresh clients of `system` — the one
// call every fig bench measures through, so CFS_SIM transparently switches
// the whole suite. Wall-clock mode: one OS thread per client for
// `duration_ms` (+ `warmup_ms`). Sim mode: simulated clients on a fresh
// scheduler seeded with CFS_SIM_SEED, for CFS_SIM_DURATION_MS of virtual
// time (the caller's durations are wall-clock budgets and do not apply);
// the client count still comes from the caller, so sweeps keep their
// shape, and each point gets its own scheduler, so points are
// independently replayable.
inline RunResult RunWorkload(const System& system, size_t clients,
                             const OpFn& op, int64_t duration_ms,
                             int64_t warmup_ms,
                             const std::string& trace_label = "") {
  WorkloadRunner runner(system.MakeClients(clients));
  if (!Sim().enabled) {
    return runner.Run(op, duration_ms, warmup_ms, trace_label);
  }
  simtime::Scheduler sched(Sim().seed);
  return runner.RunSimulated(sched, op, Sim().duration_ms, Sim().warmup_ms,
                             trace_label);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Machine-readable results. When CFS_BENCH_JSON_DIR is set (as
// run_all_benches.sh does), a bench writes BENCH_<bench>.json there on
// destruction: one record per (system, workload) with op/s, p50/p99
// latency and op/error counts, so the perf trajectory can be tracked
// across PRs instead of eyeballed from table dumps.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench) : bench_(std::move(bench)) {}
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;
  ~JsonReporter() { Flush(); }

  void Add(const std::string& system, const std::string& workload,
           const RunResult& result) {
    records_.push_back(Record{system, workload, result.ops_per_sec(),
                              static_cast<double>(result.latency.P50()),
                              static_cast<double>(result.latency.P99()),
                              result.ops, result.errors});
  }

  void Flush() {
    if (flushed_) return;
    flushed_ = true;
    const char* dir = std::getenv("CFS_BENCH_JSON_DIR");
    if (dir == nullptr || records_.empty()) return;
    std::string path = std::string(dir) + "/BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n",
                 bench_.c_str());
    for (size_t i = 0; i < records_.size(); i++) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "    {\"system\": \"%s\", \"workload\": \"%s\", "
                   "\"ops_per_sec\": %.1f, \"p50_us\": %.0f, "
                   "\"p99_us\": %.0f, \"ops\": %llu, \"errors\": %llu}%s\n",
                   r.system.c_str(), r.workload.c_str(), r.ops_per_sec,
                   r.p50_us, r.p99_us,
                   static_cast<unsigned long long>(r.ops),
                   static_cast<unsigned long long>(r.errors),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote %s (%zu records)\n", path.c_str(),
                 records_.size());
  }

 private:
  struct Record {
    std::string system;
    std::string workload;
    double ops_per_sec;
    double p50_us;
    double p99_us;
    uint64_t ops;
    uint64_t errors;
  };
  std::string bench_;
  std::vector<Record> records_;
  bool flushed_ = false;
};

// Enables causal tracing for the binary's lifetime when CFS_BENCH_TRACE_OUT
// is set (see the header comment for the knobs). Construct one per bench
// main, before any system starts; the destructor writes the Perfetto JSON
// and the slow-op tree dump.
class TraceSession {
 public:
  explicit TraceSession(std::string bench) : bench_(std::move(bench)) {
    const char* dir = std::getenv("CFS_BENCH_TRACE_OUT");
    if (dir == nullptr || dir[0] == '\0') return;
    dir_ = dir;
    trace::TraceOptions options;
    options.enabled = true;
    options.sample_every =
        static_cast<uint32_t>(EnvInt("CFS_TRACE_SAMPLE_EVERY", 64));
    options.slow_op_threshold_us = EnvInt("CFS_TRACE_SLOW_US", 20000);
    options.ring_capacity =
        static_cast<size_t>(EnvInt("CFS_TRACE_RING_CAP", 4096));
    options.max_retained_ops =
        static_cast<size_t>(EnvInt("CFS_TRACE_MAX_OPS", 512));
    options.max_slow_ops =
        static_cast<size_t>(EnvInt("CFS_TRACE_MAX_SLOW_OPS", 64));
    trace::TraceCollector::Global().Configure(options);
    std::fprintf(stderr,
                 "[trace] enabled: sample_every=%u slow_us=%lld -> %s\n",
                 options.sample_every,
                 static_cast<long long>(options.slow_op_threshold_us),
                 dir_.c_str());
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  ~TraceSession() {
    if (dir_.empty()) return;
    trace::TraceCollector& collector = trace::TraceCollector::Global();
    trace::TraceOptions off;
    off.enabled = false;
    collector.Configure(off);

    std::string json_path = dir_ + "/TRACE_" + bench_ + ".json";
    if (!collector.WritePerfettoJson(json_path)) {
      std::fprintf(stderr, "[trace] cannot write %s\n", json_path.c_str());
    }
    std::string slow_path = dir_ + "/TRACE_" + bench_ + ".slowops.txt";
    std::FILE* f = std::fopen(slow_path.c_str(), "w");
    if (f != nullptr) {
      for (const trace::OpRecord& op : collector.SnapshotSlowOps()) {
        std::string tree = trace::FormatOpTree(op, collector);
        std::fwrite(tree.data(), 1, tree.size(), f);
        std::fputc('\n', f);
      }
      std::fclose(f);
    }
    trace::TraceCollector::Stats stats = collector.stats();
    std::fprintf(stderr,
                 "[trace] wrote %s: ops_seen=%llu retained=%llu slow=%llu "
                 "events_dropped=%llu\n",
                 json_path.c_str(),
                 static_cast<unsigned long long>(stats.ops_seen),
                 static_cast<unsigned long long>(stats.ops_retained),
                 static_cast<unsigned long long>(stats.ops_slow),
                 static_cast<unsigned long long>(stats.events_dropped));
  }

  bool enabled() const { return !dir_.empty(); }

 private:
  std::string bench_;
  std::string dir_;
};

}  // namespace cfs::bench

#endif  // CFS_BENCH_BENCH_COMMON_H_
