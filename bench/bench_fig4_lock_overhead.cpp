// Figure 4 — the motivating experiment (§2.2): a small HopsFS deployment
// (3 database shards) running create under increasing workload intensity
// and contention.
//   (a) throughput vs number of clients for contention rates 0/50/100% —
//       near-linear scaling without contention, a flat line at 100%;
//   (b) latency breakdown at a fixed intensity: the "Lock" share (lock
//       acquisition/release round trips + queue waiting) grows from a
//       substantial base to the dominant cost as contention rises.

#include "bench/bench_common.h"
#include "src/common/metrics.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

System MakeSmallHopsFs() {
  BaselineOptions options = BenchBaselineOptions(true);
  options.tafdb.num_shards = 3;  // the paper's 3 database instances
  options.num_servers = 3;
  options.num_proxies = 2;
  auto cluster = std::make_shared<HopsFsCluster>("hopsfs-small", options);
  Status st = cluster->Start();
  if (!st.ok()) std::exit(1);
  return System{"HopsFS-3shard",
                [cluster] { return cluster->NewClient(); },
                [cluster] { cluster->Stop(); },
                [cluster] { return cluster->net(); }};
}

}  // namespace

int main() {
  TraceSession trace_session("fig4_lock_overhead");
  Logger::Get().set_level(LogLevel::kWarn);
  int64_t duration = DurationMs() / 2;
  const std::vector<size_t> client_counts = {3, 6, 12, 24, 48};
  const std::vector<double> contentions = {0.0, 0.5, 1.0};

  // ---- (a) throughput sweep ----
  PrintHeader("Figure 4(a): HopsFS create throughput (Kops/s)");
  std::printf("%-8s", "clients");
  for (double c : contentions) std::printf("  %6.0f%%", c * 100);
  std::printf("\n");

  for (size_t clients : client_counts) {
    std::printf("%-8zu", clients);
    for (double contention : contentions) {
      System system = MakeSmallHopsFs();
      PreparePopulation(system, clients, 0, 0);
      RunResult result = RunWorkload(system, clients,
                                     MakeCreateOp(contention), duration,
                                     duration / 4);
      std::printf("  %7.2f", result.kops());
      std::fflush(stdout);
      system.stop();
    }
    std::printf("\n");
  }

  // ---- (b) latency breakdown ----
  // The split comes from each op's trace spans: every lock acquire/release
  // RPC (plus in-queue blocking) runs under a kLockWait span, shard
  // execution under kShardExec, path resolution under kResolve. "Other" is
  // the remainder of op wall time (untraced RPC transit, client work).
  PrintHeader("Figure 4(b): create latency breakdown (12 clients)");
  std::printf("%-12s %10s %10s %10s %10s %8s\n", "contention", "total(us)",
              "lock(us)", "exec(us)", "other(us)", "lock%");
  for (double contention : contentions) {
    System system = MakeSmallHopsFs();
    size_t clients = 12;
    PreparePopulation(system, clients, 0, 0);
    std::string label =
        "fig4.create.c" + std::to_string(static_cast<int>(contention * 100));
    RunResult result = RunWorkload(system, clients, MakeCreateOp(contention),
                                   duration, duration / 4, label);
    const PhaseBreakdown& ph = result.phases;
    double total = ph.AvgTotalUs();
    double lock = ph.AvgPhaseUs(Phase::kLockWait);
    double exec = ph.AvgPhaseUs(Phase::kShardExec);
    double other = total - lock - exec;  // resolve + RPC transit + client
    std::printf("%-12.0f %10.0f %10.0f %10.0f %10.0f %7.1f%%\n",
                contention * 100, total, lock, exec, other,
                100.0 * ph.Share(Phase::kLockWait));
    if (contention == contentions.back()) {
      // Dump while the last system is still up so its SimNet edge probe is
      // included alongside the published trace aggregates.
      PrintHeader("Metrics registry dump");
      std::printf("%s\n", MetricsRegistry::Global().DumpJson().c_str());
    }
    system.stop();
  }
  return 0;
}
