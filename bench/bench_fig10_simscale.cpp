// Figure 10 at simulation scale — the virtual-clock counterpart of
// bench_fig10_scalability. Runs full CFS twice in one process:
//   1. a wall-clock leg: LatencyMode::kSleep, one OS thread per client
//      (CFS_SIMSCALE_REAL_CLIENTS, default 128; 0 skips the leg), real
//      sleeps for every injected RPC latency;
//   2. a virtual-time leg: LatencyMode::kVirtual + inline raft replication
//      + GC off, with CFS_SIM_CLIENTS (default 10000) simulated clients on
//      a discrete-event scheduler (DESIGN.md §11).
// Both legs run the Fig 10 no-contention create and getattr workloads. The
// point is the tentpole acceptance check: the 10k-client simulated sweep
// finishes in LESS wall-clock time than the 128-thread real run, and two
// runs with the same CFS_SIM_SEED produce identical op counts and latency
// histograms.
//
// Knobs (on top of bench_common.h's):
//   CFS_SIMSCALE_REAL_CLIENTS (default 128)  wall-clock leg threads; 0=skip
//   CFS_SIM_CLIENTS           (default 10000) simulated clients
//   CFS_SIM_SEED              (default 42)
//   CFS_SIM_DURATION_MS / CFS_SIM_WARMUP_MS — defaults here are 1/1 (not
//       the fig benches' 25/6): sim cost scales with clients x virtual
//       time, and 10k clients x 1 ms is already ~10 client-seconds of
//       simulated load per workload.
//   CFS_SIM_FILES_PER_DIR     (default 2)    per-dir population (getattr
//                                            reads it)
//   CFS_SIM_LOG=<path>  write a deterministic fingerprint of the sim leg
//                       (seed, clients, per-workload op counts and latency
//                       histogram stats — no wall-clock values), which CI
//                       byte-compares across two same-seed runs.
//
// The sim leg ignores CFS_SIM: both legs are configured explicitly via
// WithWallMode/WithSimMode so the comparison always runs in one process.
// JSON output records the sim leg only — those numbers are deterministic;
// the wall-clock leg varies run to run and is covered by
// bench_fig10_scalability.

#include <chrono>
#include <cinttypes>

#include "bench/bench_common.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

struct Leg {
  std::string workload;
  RunResult result;
};

double WallSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

void PrintLeg(const char* mode, size_t clients, const Leg& leg) {
  std::printf("  %-9s %-8s c=%-6zu ops=%-9" PRIu64 " err=%-4" PRIu64
              " %8.1f kops/s  p50=%" PRId64 "us p99=%" PRId64 "us\n",
              mode, leg.workload.c_str(), clients, leg.result.ops,
              leg.result.errors, leg.result.kops(), leg.result.latency.P50(),
              leg.result.latency.P99());
}

// Sim-leg population: one scheduler task creating every dir and file
// sequentially, so WAL fsync and RPC delays accrue onto the VIRTUAL clock
// instead of being paid as real sleeps — at 10k clients the population is
// ~90k metadata ops, which would otherwise dominate the leg's wall time.
// The resulting namespace is identical to PreparePopulation's.
void PreparePopulationSim(const System& system, size_t clients,
                          size_t files_per_dir, uint64_t seed) {
  auto setup = system.new_client();
  simtime::Scheduler sched(seed);
  Status failed = Status::Ok();
  sched.At(0, [&] {
    Status st = SetupPrivateDirs(setup.get(), clients);
    if (!st.ok()) {
      failed = st;
      return;
    }
    for (size_t t = 0; t < clients; t++) {
      std::string dir = "/priv" + std::to_string(t);
      for (size_t i = 0; i < files_per_dir; i++) {
        st = setup->Create(dir + "/f" + std::to_string(i), 0644);
        if (!st.ok() && !st.IsAlreadyExists()) {
          failed = st;
          return;
        }
      }
    }
  });
  sched.RunUntil(1);
  if (!failed.ok()) {
    std::fprintf(stderr, "[simscale] sim population failed: %s\n",
                 failed.ToString().c_str());
    std::exit(1);
  }
}

// Runs the two Fig 10 workloads against `system`. In sim mode each workload
// gets a fresh scheduler seeded with `seed`, so a point is replayable on
// its own; in wall mode plain OS-thread Run() is used.
std::vector<Leg> RunLegs(const System& system, size_t clients,
                         size_t files_per_dir, bool sim, uint64_t seed,
                         int64_t duration_ms, int64_t warmup_ms) {
  double pop_secs = WallSeconds([&] {
    if (sim) {
      PreparePopulationSim(system, clients, files_per_dir, seed);
    } else {
      PreparePopulation(system, clients, files_per_dir, 0);
    }
  });
  std::vector<Leg> legs;
  const std::vector<std::pair<std::string, OpFn>> workloads = {
      {"create", MakeCreateOp(0.0)},
      {"getattr", MakeGetAttrOp(0.0, files_per_dir, 0)},
  };
  WorkloadRunner runner(system.MakeClients(clients));
  for (const auto& [name, op] : workloads) {
    RunResult result;
    double secs = WallSeconds([&] {
      if (sim) {
        simtime::Scheduler sched(seed);
        result = runner.RunSimulated(sched, op, duration_ms, warmup_ms);
      } else {
        result = runner.Run(op, duration_ms, warmup_ms);
      }
    });
    std::fprintf(stderr, "[simscale] %s %s leg: %.2fs (population %.2fs)\n",
                 sim ? "sim" : "real", name.c_str(), secs, pop_secs);
    legs.push_back(Leg{name, std::move(result)});
  }
  return legs;
}

// Deterministic fingerprint of the sim leg: everything here is a pure
// function of (seed, clients, virtual duration) — no wall-clock values —
// so two same-seed runs must produce byte-identical files.
void WriteSimLog(const char* path, uint64_t seed, size_t clients,
                 int64_t duration_ms, const std::vector<Leg>& legs) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[simscale] cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "simscale seed=%" PRIu64 " clients=%zu virtual_ms=%" PRId64
               "\n", seed, clients, duration_ms);
  for (const Leg& leg : legs) {
    const Histogram& h = leg.result.latency;
    std::fprintf(f,
                 "%s ops=%" PRIu64 " errors=%" PRIu64 " count=%" PRId64
                 " mean=%.3f p50=%" PRId64 " p90=%" PRId64 " p99=%" PRId64
                 " p999=%" PRId64 " max=%" PRId64 "\n",
                 leg.workload.c_str(), leg.result.ops, leg.result.errors,
                 h.count(), h.mean(), h.P50(), h.Percentile(90), h.P99(),
                 h.P999(), h.max());
  }
  std::fclose(f);
  std::fprintf(stderr, "[simscale] wrote %s\n", path);
}

}  // namespace

int main() {
  TraceSession trace_session("fig10_simscale");
  Logger::Get().set_level(LogLevel::kWarn);

  const size_t real_clients =
      static_cast<size_t>(EnvInt("CFS_SIMSCALE_REAL_CLIENTS", 128));
  const size_t sim_clients =
      static_cast<size_t>(EnvInt("CFS_SIM_CLIENTS", 10000));
  const size_t files_per_dir =
      static_cast<size_t>(EnvInt("CFS_SIM_FILES_PER_DIR", 2));
  const uint64_t seed = Sim().seed;
  // This bench defaults to a smaller virtual window than the fig benches'
  // CFS_SIM_DURATION_MS default (25 ms): simulation cost scales with
  // clients x virtual time, and at 10k clients 1 ms of virtual time is
  // already ~10 client-seconds of simulated load per workload.
  const int64_t sim_duration_ms = EnvInt("CFS_SIM_DURATION_MS", 1);
  const int64_t sim_warmup_ms = EnvInt("CFS_SIM_WARMUP_MS", 1);
  const int64_t real_duration_ms = DurationMs();

  JsonReporter json("fig10_simscale");

  PrintHeader("Figure 10 at simulation scale: real threads vs virtual time");

  // Wall-clock leg: sleep-injected latency, one OS thread per client.
  double real_secs = 0;
  if (real_clients > 0) {
    std::fprintf(stderr, "[simscale] real leg: %zu threads, %" PRId64
                 " ms\n", real_clients, real_duration_ms);
    System system =
        MakeCfsConfigured("CFS", WithWallMode(BenchCfsOptions(
                                     CfsFullOptions())));
    std::vector<Leg> legs;
    real_secs = WallSeconds([&] {
      legs = RunLegs(system, real_clients, files_per_dir, /*sim=*/false,
                     seed, real_duration_ms, real_duration_ms / 4);
    });
    for (const Leg& leg : legs) PrintLeg("real", real_clients, leg);
    std::printf("  real leg wall clock: %.2fs\n", real_secs);
    system.stop();
  } else {
    std::fprintf(stderr, "[simscale] real leg skipped "
                 "(CFS_SIMSCALE_REAL_CLIENTS=0)\n");
  }

  // Virtual-time leg: deterministic discrete-event simulation.
  std::fprintf(stderr, "[simscale] sim leg: %zu simulated clients, %" PRId64
               " virtual ms, seed %" PRIu64 "\n", sim_clients,
               sim_duration_ms, seed);
  System system = MakeCfsConfigured(
      "CFS-sim", WithSimMode(BenchCfsOptions(CfsFullOptions()), seed));
  std::vector<Leg> legs;
  double sim_secs = WallSeconds([&] {
    legs = RunLegs(system, sim_clients, files_per_dir, /*sim=*/true, seed,
                   sim_duration_ms, sim_warmup_ms);
  });
  for (const Leg& leg : legs) {
    PrintLeg("sim", sim_clients, leg);
    // Virtual ops/s; deterministic, so safe to track across PRs.
    json.Add("CFS-sim", leg.workload + "/c" + std::to_string(sim_clients),
             leg.result);
  }
  std::printf("  sim leg wall clock: %.2fs (includes population setup)\n",
              sim_secs);
  system.stop();

  if (real_clients > 0) {
    std::printf("\n  %zu simulated clients vs %zu real threads: "
                "%.2fs vs %.2fs wall clock (%.1fx)%s\n",
                sim_clients, real_clients, sim_secs, real_secs,
                real_secs > 0 ? real_secs / sim_secs : 0.0,
                sim_secs < real_secs ? " — sim leg faster" : "");
  }

  if (const char* log = std::getenv("CFS_SIM_LOG");
      log != nullptr && log[0] != '\0') {
    WriteSimLog(log, seed, sim_clients, sim_duration_ms, legs);
  }
  return 0;
}
