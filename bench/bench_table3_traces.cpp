// Table 3 — operation compositions of the three real-world traces: the
// published file-system-op mixes driving the synthesis, verified against
// an empirical sample of the generator's WeightedChoice stream.

#include "bench/bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main() {
  PrintHeader("Table 3: file-system-op composition of tr-0 / tr-1 / tr-2");
  for (const auto& spec : AllTraces()) {
    std::printf("%s:\n", spec.name.c_str());

    // Empirical sample of the generator.
    std::vector<double> weights;
    for (const auto& [op, pct] : spec.mix) weights.push_back(pct);
    WeightedChoice choice(weights);
    Rng rng(7777);
    constexpr int kSamples = 500000;
    std::vector<int> counts(spec.mix.size(), 0);
    for (int i = 0; i < kSamples; i++) counts[choice.Next(rng)]++;

    for (size_t i = 0; i < spec.mix.size(); i++) {
      std::printf("  %-14s published %5.1f%%   synthesized %5.1f%%\n",
                  std::string(FsOpName(spec.mix[i].first)).c_str(),
                  spec.mix[i].second, 100.0 * counts[i] / kSamples);
    }
  }
  return 0;
}
