// Figure 12 — one shared, large, flat directory (the paper uses 1M files;
// scaled here via CFS_BENCH_LARGEDIR_FILES, default 20000), all clients
// issuing requests against it.
//
// Expected shape: write-side ops (create/unlink/mkdir/rmdir) concentrate on
// the directory's single namespace shard for every system, so absolute
// numbers drop — but CFS still wins via lock elimination. The headline is
// getattr/setattr: CFS's file attributes are hash-partitioned across all
// FileStore nodes and keep scaling, while both baselines serve every
// attribute read from the one shard that owns the directory (inline rows)
// and collapse.

#include "bench/bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main() {
  TraceSession trace_session("fig12_large_directory");
  Logger::Get().set_level(LogLevel::kWarn);
  size_t clients = Clients();
  int64_t duration = DurationMs();
  size_t population =
      static_cast<size_t>(EnvInt("CFS_BENCH_LARGEDIR_FILES", 20000));

  const MetaOp ops[] = {MetaOp::kCreate, MetaOp::kUnlink, MetaOp::kMkdir,
                        MetaOp::kRmdir,  MetaOp::kLookup, MetaOp::kGetAttr,
                        MetaOp::kSetAttr};

  struct Row {
    std::string system;
    double kops[7];
  };
  std::vector<Row> rows;
  JsonReporter json("fig12_large_directory");

  for (auto& make_system : AllSystems()) {
    System system = make_system();
    std::fprintf(stderr, "[fig12] %s: populating %zu files...\n",
                 system.name.c_str(), population);
    auto setup = system.new_client();
    (void)setup->Mkdir("/bigdir", 0755);
    {
      auto workers = system.MakeClients(16);
      std::vector<MetadataClient*> raw;
      for (auto& w : workers) raw.push_back(w.get());
      Status st = PopulateDirectory(raw, "/bigdir", population);
      if (!st.ok()) {
        std::fprintf(stderr, "populate failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    Row row;
    row.system = system.name;
    for (size_t i = 0; i < 7; i++) {
      RunResult result = RunWorkload(system, clients,
                                     MakeLargeDirOp(ops[i], "/bigdir", population),
                                    duration, duration / 4);
      row.kops[i] = result.kops();
      json.Add(system.name, std::string(MetaOpName(ops[i])), result);
      std::fprintf(stderr, "[fig12] %s %s: %.1f Kops/s\n", system.name.c_str(),
                   std::string(MetaOpName(ops[i])).c_str(), row.kops[i]);
    }
    rows.push_back(row);
    system.stop();
  }

  PrintHeader("Figure 12: shared large directory (" +
              std::to_string(population) + " files), " +
              std::to_string(clients) + " clients — throughput (Kops/s)");
  std::printf("%-10s", "system");
  for (MetaOp op : ops) {
    std::printf(" %9s", std::string(MetaOpName(op)).c_str());
  }
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("%-10s", row.system.c_str());
    for (double v : row.kops) std::printf(" %9.2f", v);
    std::printf("\n");
  }
  PrintHeader("CFS speedups in the large directory");
  for (size_t s = 0; s + 1 < rows.size(); s++) {
    std::printf("vs %-9s", rows[s].system.c_str());
    for (size_t i = 0; i < 7; i++) {
      std::printf(" %8.2fx", rows.back().kops[i] / rows[s].kops[i]);
    }
    std::printf("\n");
  }
  return 0;
}
