// Figure 10 — scalability w.r.t. the number of concurrent clients for
// create and getattr, no contention. Paper (50..500 clients, scaled here
// to 8..64): CFS scales near-linearly; HopsFS flattens early; InfiniFS
// sits between, with the CFS gap widening as clients increase.

#include "bench/bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main() {
  TraceSession trace_session("fig10_scalability");
  Logger::Get().set_level(LogLevel::kWarn);
  int64_t duration = DurationMs() / 2;
  const std::vector<size_t> client_counts = {8, 16, 32, 48, 64};

  struct Point {
    std::string system;
    std::vector<double> create_kops;
    std::vector<double> getattr_kops;
  };
  std::vector<Point> points;
  JsonReporter json("fig10_scalability");

  for (auto& make_system : AllSystems()) {
    Point point;
    for (size_t clients : client_counts) {
      System system = make_system();
      if (point.system.empty()) point.system = system.name;
      std::fprintf(stderr, "[fig10] %s @ %zu clients\n", system.name.c_str(),
                   clients);
      PreparePopulation(system, clients, /*files_per_dir=*/64, 0);
      {
        RunResult result =
            RunWorkload(system, clients, MakeCreateOp(0.0), duration,
                        duration / 4);
        point.create_kops.push_back(result.kops());
        json.Add(system.name, "create/c" + std::to_string(clients), result);
      }
      {
        RunResult result = RunWorkload(system, clients,
                                       MakeGetAttrOp(0.0, 64, 0), duration,
                                       duration / 4);
        point.getattr_kops.push_back(result.kops());
        json.Add(system.name, "getattr/c" + std::to_string(clients), result);
      }
      system.stop();
    }
    points.push_back(std::move(point));
  }

  for (int which = 0; which < 2; which++) {
    PrintHeader(which == 0
                    ? "Figure 10(a): create throughput (Kops/s) vs clients"
                    : "Figure 10(b): getattr throughput (Kops/s) vs clients");
    std::printf("%-10s", "system");
    for (size_t c : client_counts) std::printf(" %8zu", c);
    std::printf("   scale(last/first)\n");
    for (const auto& point : points) {
      const auto& series = which == 0 ? point.create_kops : point.getattr_kops;
      std::printf("%-10s", point.system.c_str());
      for (double v : series) std::printf(" %8.1f", v);
      std::printf(" %10.2fx\n", series.back() / series.front());
    }
  }
  return 0;
}
