// Figure 11 — create and mkdir throughput under contention rates 0/50/100%
// (clients forced to target the shared directory with the given
// probability). Paper: all systems degrade with contention, but at >= 50%
// CFS holds roughly 1.7-2x InfiniFS on create and an order of magnitude on
// mkdir (baselines run mkdir as a 2PC transaction under a contended row
// lock; CFS's primitives merge the shared parent's counters without locks).

#include "bench/bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main() {
  TraceSession trace_session("fig11_contention");
  Logger::Get().set_level(LogLevel::kWarn);
  size_t clients = Clients();
  int64_t duration = DurationMs();
  const std::vector<double> contentions = {0.0, 0.5, 1.0};

  struct Row {
    std::string system;
    std::vector<double> create_kops;
    std::vector<double> mkdir_kops;
  };
  std::vector<Row> rows;
  JsonReporter json("fig11_contention");

  for (auto& make_system : AllSystems()) {
    Row row;
    for (double contention : contentions) {
      System system = make_system();
      if (row.system.empty()) row.system = system.name;
      std::fprintf(stderr, "[fig11] %s @ %.0f%%\n", system.name.c_str(),
                   contention * 100);
      PreparePopulation(system, clients, 0, 0);
      std::string pct = std::to_string(static_cast<int>(contention * 100));
      {
        RunResult result = RunWorkload(system, clients,
                                       MakeCreateOp(contention), duration,
                                       duration / 4);
        row.create_kops.push_back(result.kops());
        json.Add(system.name, "create/cont" + pct, result);
      }
      {
        RunResult result = RunWorkload(system, clients,
                                       MakeMkdirOp(contention), duration,
                                       duration / 4);
        row.mkdir_kops.push_back(result.kops());
        json.Add(system.name, "mkdir/cont" + pct, result);
      }
      system.stop();
    }
    rows.push_back(std::move(row));
  }

  for (int which = 0; which < 2; which++) {
    PrintHeader(which == 0 ? "Figure 11(a): create (Kops/s) vs contention"
                           : "Figure 11(b): mkdir (Kops/s) vs contention");
    std::printf("%-10s", "system");
    for (double c : contentions) std::printf("  %6.0f%%", c * 100);
    std::printf("\n");
    for (const auto& row : rows) {
      const auto& series = which == 0 ? row.create_kops : row.mkdir_kops;
      std::printf("%-10s", row.system.c_str());
      for (double v : series) std::printf("  %7.2f", v);
      std::printf("\n");
    }
    // CFS multiple over each baseline at 100% contention.
    for (size_t s = 0; s + 1 < rows.size(); s++) {
      const auto& base = which == 0 ? rows[s].create_kops : rows[s].mkdir_kops;
      const auto& cfs_series =
          which == 0 ? rows.back().create_kops : rows.back().mkdir_kops;
      std::printf("CFS vs %-9s at 100%%: %.2fx\n", rows[s].system.c_str(),
                  cfs_series.back() / base.back());
    }
  }
  return 0;
}
