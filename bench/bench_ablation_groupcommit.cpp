// Ablation (DESIGN.md §5.3): raft group-commit batching is the mechanism
// that lets a single CFS metadata shard absorb highly contended updates —
// without it, each contended primitive pays its own replication round and
// the shard serializes at 1/RTT. This bench runs full CFS with the
// replication batch capped at 1 entry vs the default, under 100% contention
// (every client creating in one shared directory).
//
// Expected: an order-of-magnitude throughput gap at full contention and a
// negligible one without contention (private directories rarely batch).

#include "bench/bench_common.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

System MakeCfsWithBatch(size_t max_batch) {
  CfsOptions options = BenchCfsOptions(CfsFullOptions());
  options.tafdb.raft.max_batch_entries = max_batch;
  options.filestore.raft.max_batch_entries = max_batch;
  auto fs = std::make_shared<Cfs>(options);
  if (!fs->Start().ok()) std::exit(1);
  return System{"CFS(batch=" + std::to_string(max_batch) + ")",
                [fs] { return fs->NewClient(); },
                [fs] { fs->Stop(); },
                [fs] { return fs->net(); }};
}

}  // namespace

int main() {
  TraceSession trace_session("ablation_groupcommit");
  Logger::Get().set_level(LogLevel::kWarn);
  size_t clients = Clients();
  int64_t duration = DurationMs();

  PrintHeader("Ablation: raft group-commit batching (create, " +
              std::to_string(clients) + " clients)");
  std::printf("%-16s %14s %14s\n", "config", "0%% cont (K/s)",
              "100%% cont (K/s)");

  double base_contended = 0;
  for (size_t batch : {size_t{1}, size_t{512}}) {
    double kops[2];
    for (int which = 0; which < 2; which++) {
      System system = MakeCfsWithBatch(batch);
      PreparePopulation(system, clients, 0, 0);
      kops[which] = RunWorkload(system, clients,
                                MakeCreateOp(which == 0 ? 0.0 : 1.0),
                                duration, duration / 4)
                        .kops();
      system.stop();
    }
    std::printf("%-16s %14.2f %14.2f\n",
                ("batch=" + std::to_string(batch)).c_str(), kops[0], kops[1]);
    if (batch == 1) {
      base_contended = kops[1];
    } else {
      std::printf("group commit gains %.1fx at full contention\n",
                  kops[1] / base_contended);
    }
  }
  return 0;
}
