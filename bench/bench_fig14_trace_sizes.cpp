// Figure 14 — file-size and IO-size distributions of the three synthesized
// production traces. Prints the CDF the generator is anchored on and an
// empirical CDF from one million samples, so the synthesis can be checked
// against the paper's figures (75.27% / 91.34% / 87.51% of files <= 32KB;
// up to 96.37% of IOs <= 32KB, 45.2-70.7% <= 1KB).

#include "bench/bench_common.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

void PrintDistribution(const char* what, const SizeCdf& cdf) {
  const uint64_t bounds[] = {1 << 10, 4 << 10, 32 << 10, 256 << 10, 1 << 20};
  // Empirical check.
  Rng rng(20260705);
  constexpr int kSamples = 1000000;
  std::vector<int> below(std::size(bounds), 0);
  for (int i = 0; i < kSamples; i++) {
    uint64_t s = SampleSize(cdf, rng);
    for (size_t b = 0; b < std::size(bounds); b++) {
      if (s <= bounds[b]) below[b]++;
    }
  }
  std::printf("  %-10s", what);
  for (size_t b = 0; b < std::size(bounds); b++) {
    std::printf("  <=%3lluK %5.1f%% (model %5.1f%%)",
                static_cast<unsigned long long>(bounds[b] >> 10),
                100.0 * below[b] / kSamples, 100.0 * CdfAt(cdf, bounds[b]));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintHeader("Figure 14: file/IO size distributions of tr-0, tr-1, tr-2");
  for (const auto& spec : AllTraces()) {
    std::printf("%s:\n", spec.name.c_str());
    PrintDistribution("file size", spec.file_size_cdf);
    PrintDistribution("IO size", spec.io_size_cdf);
  }
  std::printf(
      "\npaper anchors: files <=32K: 75.27%% (tr-0), 91.34%% (tr-1), "
      "87.51%% (tr-2); IOs <=32K up to 96.37%%, <=1K 45.2-70.7%%\n");
  return 0;
}
