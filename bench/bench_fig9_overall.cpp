// Figure 9 — overall performance of seven metadata requests across HopsFS,
// InfiniFS, and CFS: (a) peak throughput under high load (every client in
// its private directory, no contention), (b) average latency under light
// load (a single client).
//
// Expected shape (paper §5.2): CFS >= InfiniFS >= HopsFS for every op;
// create/unlink close between CFS and InfiniFS (~20%); mkdir/rmdir better
// on CFS (distributed-txn elimination); getattr/setattr much better on CFS
// (FileStore offload); CFS create latency slightly above InfiniFS (the
// extra FileStore RPC), unlink comparable (async write-back).

#include "bench/bench_common.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

struct OpSpec {
  const char* name;
  OpFn (*make)();
};

OpFn CreateOp() { return MakeCreateOp(0.0); }
OpFn UnlinkOp() { return MakeUnlinkAfterCreateOp(0.0); }
OpFn MkdirOp() { return MakeMkdirOp(0.0); }
OpFn RmdirOp() { return MakeRmdirAfterMkdirOp(0.0); }
OpFn LookupOp() { return MakeLookupOp(0.0, 64, 0); }
OpFn GetAttrOp() { return MakeGetAttrOp(0.0, 64, 0); }
OpFn SetAttrOp() { return MakeSetAttrOp(0.0, 64, 0); }

constexpr OpSpec kOps[] = {
    {"create", CreateOp},   {"unlink", UnlinkOp},   {"mkdir", MkdirOp},
    {"rmdir", RmdirOp},     {"lookup", LookupOp},   {"getattr", GetAttrOp},
    {"setattr", SetAttrOp},
};

}  // namespace

int main() {
  TraceSession trace_session("fig9_overall");
  Logger::Get().set_level(LogLevel::kWarn);
  size_t clients = Clients();
  int64_t duration = DurationMs();

  struct Row {
    std::string system;
    double kops[7];
    double avg_us[7];
  };
  std::vector<Row> rows;
  JsonReporter json("fig9_overall");

  for (auto& make_system : AllSystems()) {
    System system = make_system();
    std::fprintf(stderr, "[fig9] running %s...\n", system.name.c_str());
    PreparePopulation(system, clients, /*files_per_dir=*/64,
                      /*shared_files=*/0);
    Row row;
    row.system = system.name;

    // (a) peak throughput with many clients.
    for (size_t i = 0; i < 7; i++) {
      RunResult result =
          RunWorkload(system, clients, kOps[i].make(), duration, duration / 4);
      row.kops[i] = result.kops();
      json.Add(system.name, std::string(kOps[i].name) + "/peak", result);
    }
    // (b) average latency with a single light client.
    for (size_t i = 0; i < 7; i++) {
      RunResult result =
          RunWorkload(system, 1, kOps[i].make(), duration / 2, duration / 8);
      row.avg_us[i] = result.latency.mean();
      json.Add(system.name, std::string(kOps[i].name) + "/light", result);
    }
    rows.push_back(row);
    system.stop();
  }

  PrintHeader("Figure 9(a): peak throughput (Kops/s), " +
              std::to_string(clients) + " clients, no contention");
  std::printf("%-10s", "system");
  for (const auto& op : kOps) std::printf(" %9s", op.name);
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("%-10s", row.system.c_str());
    for (double v : row.kops) std::printf(" %9.1f", v);
    std::printf("\n");
  }

  PrintHeader("Figure 9(b): average latency (us), single client");
  std::printf("%-10s", "system");
  for (const auto& op : kOps) std::printf(" %9s", op.name);
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("%-10s", row.system.c_str());
    for (double v : row.avg_us) std::printf(" %9.0f", v);
    std::printf("\n");
  }

  // Paper-style summary: CFS speedup over each baseline.
  PrintHeader("CFS speedups (throughput)");
  for (size_t s = 0; s + 1 < rows.size(); s++) {
    std::printf("vs %-9s", rows[s].system.c_str());
    for (size_t i = 0; i < 7; i++) {
      std::printf(" %8.2fx", rows.back().kops[i] / rows[s].kops[i]);
    }
    std::printf("\n");
  }
  return 0;
}
