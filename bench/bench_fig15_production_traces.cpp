// Figure 15 — end-to-end replay of the three production traces with data
// access enabled, CFS vs InfiniFS (the paper drops HopsFS here: HDFS
// semantics can't replay the random-access traces). Reports metadata and
// file-system-op throughput plus P999 tail latency.
//
// Expected shape: CFS ahead on every trace (paper: 1.62-2.55x end-to-end,
// 35-62% P999 reductions), with the biggest tail win on rename-bearing
// tr-1.

#include "bench/bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main() {
  TraceSession trace_session("fig15_production_traces");
  Logger::Get().set_level(LogLevel::kWarn);
  size_t clients = Clients();
  int64_t duration = DurationMs();

  struct Cell {
    double fs_kops;
    double meta_kops;
    int64_t fs_p999;
    int64_t meta_p999;
  };
  // results[system][trace]
  std::vector<std::vector<Cell>> results;
  std::vector<std::string> system_names;

  std::vector<std::function<System()>> systems = {MakeInfiniFs, MakeCfsFull};
  for (auto& make_system : systems) {
    System system = make_system();
    system_names.push_back(system.name);
    std::vector<Cell> row;
    for (const auto& spec : AllTraces()) {
      std::fprintf(stderr, "[fig15] %s replaying %s...\n", system.name.c_str(),
                   spec.name.c_str());
      TraceReplayConfig config;
      config.num_dirs = 16;
      config.files_per_dir = 64;
      config.duration_ms = duration;
      config.warmup_ms = duration / 4;
      TraceReplayer replayer(spec, config);

      auto setup = system.new_client();
      auto populate_owned = system.MakeClients(8);
      std::vector<MetadataClient*> populate;
      for (auto& c : populate_owned) populate.push_back(c.get());
      Status st = replayer.Prepare(setup.get(), populate);
      if (!st.ok()) {
        std::fprintf(stderr, "prepare failed: %s\n", st.ToString().c_str());
        return 1;
      }
      TraceReplayResult result = replayer.Replay(system.MakeClients(clients));
      row.push_back(Cell{result.fs_ops_per_sec() / 1000.0,
                         result.meta_ops_per_sec() / 1000.0,
                         result.fs_latency.P999(),
                         result.meta_latency.P999()});
    }
    results.push_back(std::move(row));
    system.stop();
  }

  auto traces = AllTraces();
  PrintHeader("Figure 15: trace replay with data access, " +
              std::to_string(clients) + " clients");
  std::printf("%-10s %-6s %12s %12s %12s %12s\n", "system", "trace",
              "fs Kops/s", "meta Kops/s", "fs P999(us)", "meta P999(us)");
  for (size_t s = 0; s < results.size(); s++) {
    for (size_t t = 0; t < traces.size(); t++) {
      const Cell& cell = results[s][t];
      std::printf("%-10s %-6s %12.2f %12.2f %12lld %12lld\n",
                  system_names[s].c_str(), traces[t].name.c_str(),
                  cell.fs_kops, cell.meta_kops,
                  static_cast<long long>(cell.fs_p999),
                  static_cast<long long>(cell.meta_p999));
    }
  }

  PrintHeader("CFS vs InfiniFS");
  for (size_t t = 0; t < traces.size(); t++) {
    const Cell& base = results[0][t];
    const Cell& cfs_cell = results[1][t];
    std::printf(
        "%s: end-to-end %.2fx, metadata %.2fx, fs P999 %.1f%% shorter\n",
        traces[t].name.c_str(), cfs_cell.fs_kops / base.fs_kops,
        cfs_cell.meta_kops / base.meta_kops,
        100.0 * (1.0 - static_cast<double>(cfs_cell.fs_p999) /
                           static_cast<double>(base.fs_p999)));
  }
  return 0;
}
