// Table 1 — aggregated percentage of metadata operations triggered by
// POSIX calls across the nine production workloads (§2). Prints the
// published shares and cross-checks them against the metadata ops the
// three synthesized traces decompose into, plus the §2 headline that
// metadata operations account for 67-96% of DFS requests.

#include <map>

#include "bench/bench_common.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

// Decomposes a trace's file-system mix into metadata-op shares the way
// §3.2/§5.8 describe (stat -> lookup+getattr, open -> lookup, read ->
// getattr, open(O_CREAT) -> lookup+create, unlink -> lookup+unlink, ...).
std::map<std::string, double> DecomposeToMetaOps(const TraceSpec& spec) {
  std::map<std::string, double> meta;
  for (const auto& [op, pct] : spec.mix) {
    switch (op) {
      case FsOp::kStat:
        meta["lookup"] += pct;
        meta["getattr"] += pct;
        break;
      case FsOp::kOpen:
        meta["lookup"] += pct;
        break;
      case FsOp::kOpenCreat:
        meta["lookup"] += pct;
        meta["create"] += pct;
        break;
      case FsOp::kRead:
        meta["getattr"] += pct;
        break;
      case FsOp::kWrite:
        meta["setattr"] += pct;
        break;
      case FsOp::kOpendir:
        meta["readdir"] += pct;
        break;
      case FsOp::kUnlink:
        meta["unlink"] += pct;
        break;
      case FsOp::kRename:
        meta["rename"] += pct;
        break;
      case FsOp::kMkdir:
        meta["mkdir"] += pct;
        break;
      case FsOp::kChmod:
        meta["setattr"] += pct;
        break;
    }
  }
  double total = 0;
  for (auto& [name, v] : meta) total += v;
  for (auto& [name, v] : meta) v = 100.0 * v / total;
  return meta;
}

}  // namespace

int main() {
  PrintHeader("Table 1: metadata-op shares across the nine workloads");
  std::printf("%-10s %8s\n", "op", "ratio");
  double total = 0;
  for (const auto& share : Table1OpShares()) {
    std::printf("%-10s %7.2f%%\n", share.op.c_str(), share.ratio);
    total += share.ratio;
  }
  std::printf("%-10s %7.2f%%\n", "total", total);

  PrintHeader("Cross-check: metadata decomposition of the three traces");
  std::printf("%-10s", "op");
  auto traces = AllTraces();
  std::vector<std::map<std::string, double>> decomposed;
  for (const auto& spec : traces) {
    std::printf(" %8s", spec.name.c_str());
    decomposed.push_back(DecomposeToMetaOps(spec));
  }
  std::printf("\n");
  for (const char* op : {"getattr", "lookup", "create", "unlink", "setattr",
                         "readdir", "mkdir", "rename"}) {
    std::printf("%-10s", op);
    for (auto& meta : decomposed) {
      std::printf(" %7.1f%%", meta.count(op) != 0 ? meta[op] : 0.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\n(getattr dominates everywhere — the access pattern the tiered\n"
      "metadata organization optimizes; paper Table 3 lists 95.1/63.2/66.8%%\n"
      "getattr for tr-0/1/2.)\n");

  PrintHeader("Section 2 headline: metadata vs data operations");
  for (const auto& spec : traces) {
    double data_pct = 0;
    for (const auto& [op, pct] : spec.mix) {
      if (op == FsOp::kRead || op == FsOp::kWrite) data_pct += pct;
    }
    std::printf("%s: metadata %.1f%% / data %.1f%%\n", spec.name.c_str(),
                100.0 - data_pct, data_pct);
  }
  std::printf("(paper: metadata ops are 67-96%% of DFS requests)\n");
  return 0;
}
