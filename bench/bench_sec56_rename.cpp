// §5.6 rename test — a mix of 90% intra-directory file renames (CFS fast
// path: one insert_and_delete_with_update primitive) and 10% other renames
// (normal path through the rename coordinator / lock-based transactions).
// Reports throughput and P99/P999 tail latency for all three systems.
//
// Expected shape: CFS > InfiniFS > HopsFS throughput; HopsFS's subtree
// locking serializes renames (worst tails); CFS's tails are the shortest
// because 90% of requests never touch a coordinator.

#include "bench/bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main() {
  TraceSession trace_session("sec56_rename");
  Logger::Get().set_level(LogLevel::kWarn);
  size_t clients = Clients();
  int64_t duration = DurationMs();
  constexpr int kFilesPerThread = 16;

  PrintHeader("Section 5.6: rename mix (90% intra-directory file renames)");
  std::printf("%-10s %12s %10s %10s %10s\n", "system", "renames/s", "avg(us)",
              "P99(us)", "P999(us)");

  std::vector<std::pair<std::string, RunResult>> results;
  for (auto& make_system : AllSystems()) {
    System system = make_system();
    std::fprintf(stderr, "[sec56] %s...\n", system.name.c_str());
    // Populate the rename working set: /ren/t<t>/r<i>_a plus the
    // cross-directory targets /ren/x<t>.
    auto setup = system.new_client();
    (void)setup->Mkdir("/ren", 0755);
    for (size_t t = 0; t < clients; t++) {
      (void)setup->Mkdir("/ren/t" + std::to_string(t), 0755);
      (void)setup->Mkdir("/ren/x" + std::to_string(t), 0755);
    }
    {
      auto workers = system.MakeClients(8);
      std::atomic<size_t> cursor{0};
      std::vector<std::thread> threads;
      for (auto& w : workers) {
        threads.emplace_back([&, client = w.get()] {
          for (;;) {
            size_t i = cursor.fetch_add(1);
            if (i >= clients * kFilesPerThread) return;
            size_t t = i / kFilesPerThread;
            size_t f = i % kFilesPerThread;
            (void)client->Create("/ren/t" + std::to_string(t) + "/r" +
                                     std::to_string(f) + "_a",
                                 0644);
          }
        });
      }
      for (auto& th : threads) th.join();
    }

    RunResult result =
        RunWorkload(system, clients, MakeRenameOp(0.9), duration, duration / 4);
    std::printf("%-10s %12.0f %10.0f %10lld %10lld\n", system.name.c_str(),
                result.ops_per_sec(), result.latency.mean(),
                static_cast<long long>(result.latency.P99()),
                static_cast<long long>(result.latency.P999()));
    results.emplace_back(system.name, std::move(result));
    system.stop();
  }

  const RunResult& cfs_result = results.back().second;
  for (size_t s = 0; s + 1 < results.size(); s++) {
    const RunResult& base = results[s].second;
    std::printf(
        "CFS vs %-9s throughput %+.1f%%, P99 %.1f%% shorter, P999 %.1f%% "
        "shorter\n",
        results[s].first.c_str(),
        100.0 * (cfs_result.ops_per_sec() / base.ops_per_sec() - 1.0),
        100.0 * (1.0 - static_cast<double>(cfs_result.latency.P99()) /
                           static_cast<double>(base.latency.P99())),
        100.0 * (1.0 - static_cast<double>(cfs_result.latency.P999()) /
                           static_cast<double>(base.latency.P999())));
  }
  return 0;
}
