// Dentry-cache resolve benchmark: lookup throughput vs. cache capacity, and
// throughput under a concurrent rename-invalidation load.
//
// Part 1 sweeps CfsOptions::dentry_cache_capacity over {0 (uncached), 1k,
// 64k} and measures multi-threaded getattr throughput on deep paths
// (/priv<t>/lvl1/lvl2/f<i>, 4 components). With the cache cold-disabled
// every resolve walks the chain through TafDB; warm caches collapse it to
// one attribute fetch, which is the client-side metadata resolving win the
// paper builds on (§3.1).
//
// Part 2 keeps the cache at 64k and injects cross-directory renames at
// increasing rates from a dedicated client; every rename broadcasts a
// prefix invalidation, so the sweep shows coherence overhead vs. churn.
//
// Output: paper-style rows plus the dentry_cache.* counters and the final
// metrics-registry JSON (CFS_BENCH_JSON=1).

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/random.h"

namespace cfs::bench {
namespace {

constexpr size_t kDirsPerClient = 2;   // lvl1 fan-out under each /priv<t>
constexpr size_t kFilesPerDir = 64;

struct CacheCounters {
  uint64_t hit, miss, negative_hit, stale, evict, prefix_drop, revalidate;
};

CacheCounters ReadCounters() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  return CacheCounters{
      registry.GetCounter("dentry_cache.hit")->value(),
      registry.GetCounter("dentry_cache.miss")->value(),
      registry.GetCounter("dentry_cache.negative_hit")->value(),
      registry.GetCounter("dentry_cache.stale")->value(),
      registry.GetCounter("dentry_cache.evict")->value(),
      registry.GetCounter("dentry_cache.prefix_drop")->value(),
      registry.GetCounter("dentry_cache.revalidate")->value(),
  };
}

CacheCounters Delta(const CacheCounters& a, const CacheCounters& b) {
  return CacheCounters{b.hit - a.hit,
                       b.miss - a.miss,
                       b.negative_hit - a.negative_hit,
                       b.stale - a.stale,
                       b.evict - a.evict,
                       b.prefix_drop - a.prefix_drop,
                       b.revalidate - a.revalidate};
}

// Builds /priv<t>/d<j>/sub/f<i> for every client thread.
void PopulateDeepTree(const System& system, size_t clients) {
  auto setup = system.new_client();
  for (size_t t = 0; t < clients; t++) {
    std::string priv = "/priv" + std::to_string(t);
    (void)setup->Mkdir(priv, 0755);
    for (size_t j = 0; j < kDirsPerClient; j++) {
      std::string d1 = priv + "/d" + std::to_string(j);
      (void)setup->Mkdir(d1, 0755);
      (void)setup->Mkdir(d1 + "/sub", 0755);
      for (size_t i = 0; i < kFilesPerDir; i++) {
        (void)setup->Create(d1 + "/sub/f" + std::to_string(i), 0644);
      }
    }
  }
}

std::string DeepPath(size_t t, uint64_t j, uint64_t i) {
  return "/priv" + std::to_string(t) + "/d" + std::to_string(j) + "/sub/f" +
         std::to_string(i);
}

// Runs `clients` threads of deep-path getattrs for DurationMs; returns kops.
double RunLookupLoad(const System& system, size_t clients,
                     std::atomic<bool>* stop_flag) {
  auto handles = system.MakeClients(clients);
  std::atomic<uint64_t> ops{0};
  std::atomic<bool> local_stop{false};
  std::atomic<bool>* stop = stop_flag != nullptr ? stop_flag : &local_stop;

  std::vector<std::thread> threads;
  for (size_t t = 0; t < clients; t++) {
    MetadataClient* client = handles[t].get();
    threads.emplace_back([client, t, stop, &ops] {
      Rng rng(0x9d5f + t);
      uint64_t local = 0;
      while (!stop->load(std::memory_order_relaxed)) {
        auto info = client->GetAttr(DeepPath(t, rng.Uniform(kDirsPerClient),
                                             rng.Uniform(kFilesPerDir)));
        if (info.ok()) local++;
      }
      ops.fetch_add(local);
    });
  }
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(DurationMs()));
  stop->store(true);
  for (auto& thread : threads) thread.join();
  return static_cast<double>(ops.load()) / 1000.0 / watch.ElapsedSeconds();
}

void PrintRow(const std::string& label, double kops,
              const CacheCounters& d) {
  uint64_t lookups = d.hit + d.miss + d.negative_hit;
  double hit_rate =
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(d.hit + d.negative_hit) /
                         static_cast<double>(lookups);
  std::printf(
      "%-28s %8.1f kops/s   hit%%=%5.1f  hits=%llu misses=%llu stale=%llu "
      "evict=%llu prefix_drop=%llu revalidate=%llu\n",
      label.c_str(), kops, hit_rate, (unsigned long long)d.hit,
      (unsigned long long)d.miss, (unsigned long long)d.stale,
      (unsigned long long)d.evict, (unsigned long long)d.prefix_drop,
      (unsigned long long)d.revalidate);
}

void CapacitySweep(size_t clients) {
  PrintHeader("cache_resolve: getattr throughput vs. dentry cache capacity");
  const size_t capacities[] = {0, 1024, 65536};
  for (size_t capacity : capacities) {
    CfsOptions options = CfsFullOptions();
    options.dentry_cache_capacity = capacity;
    System system = MakeCfs("CFS", options);
    PopulateDeepTree(system, clients);

    CacheCounters before = ReadCounters();
    double kops = RunLookupLoad(system, clients, nullptr);
    CacheCounters after = ReadCounters();
    PrintRow("capacity=" + std::to_string(capacity), kops,
             Delta(before, after));
    system.stop();
  }
}

void RenameChurnSweep(size_t clients) {
  PrintHeader("cache_resolve: lookup throughput vs. rename-invalidation rate");
  const int64_t renames_per_sec[] = {0, 20, 200};
  for (int64_t rate : renames_per_sec) {
    CfsOptions options = CfsFullOptions();  // 64k cache
    System system = MakeCfs("CFS", options);
    PopulateDeepTree(system, clients);
    // Directories the churn thread shuffles around (normal-path renames:
    // each one broadcasts a subtree prefix invalidation to every engine).
    auto renamer_client = system.new_client();
    (void)renamer_client->Mkdir("/churn", 0755);
    (void)renamer_client->Mkdir("/churn/a", 0755);
    (void)renamer_client->Create("/churn/a/f", 0644);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> renames{0};
    std::thread churn([&] {
      MetadataClient* c = renamer_client.get();
      bool flip = false;
      while (rate > 0 && !stop.load(std::memory_order_relaxed)) {
        Status st = flip ? c->Rename("/churn/b", "/churn/a")
                         : c->Rename("/churn/a", "/churn/b");
        if (st.ok()) {
          flip = !flip;
          renames.fetch_add(1);
        }
        std::this_thread::sleep_for(
            std::chrono::microseconds(1000000 / rate));
      }
    });

    CacheCounters before = ReadCounters();
    double kops = RunLookupLoad(system, clients, &stop);
    CacheCounters after = ReadCounters();
    churn.join();
    PrintRow("renames/s=" + std::to_string(rate) +
                 " (did " + std::to_string(renames.load()) + ")",
             kops, Delta(before, after));
    system.stop();
  }
}

}  // namespace
}  // namespace cfs::bench

int main() {
  using namespace cfs::bench;
  TraceSession trace_session("cache_resolve");
  size_t clients = Clients() > 16 ? 16 : Clients();
  std::printf("clients=%zu duration_ms=%lld\n", clients,
              (long long)DurationMs());

  CapacitySweep(clients);
  RenameChurnSweep(clients);

  if (EnvInt("CFS_BENCH_JSON", 0) != 0) {
    std::printf("\n--- metrics registry (JSON) ---\n%s\n",
                cfs::MetricsRegistry::Global().DumpJson().c_str());
  }
  return 0;
}
