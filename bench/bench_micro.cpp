// Substrate micro-benchmarks (google-benchmark): the building blocks under
// every table/figure bench — encoding, CRC, memtable/KV ops, primitive
// execution, lock acquisition, SimNet dispatch, and a raft commit round in
// zero-latency mode.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "src/common/crc32.h"
#include "src/common/encoding.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/core/dentry_cache.h"
#include "src/core/metadata_client.h"
#include "src/kv/kvstore.h"
#include "src/raft/raft.h"
#include "src/tafdb/primitives.h"
#include "src/txn/lock_manager.h"

namespace cfs {
namespace {

void BM_VarintRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    std::string buf;
    PutVarint64(&buf, 0x123456789aULL);
    Decoder dec(buf);
    uint64_t v;
    dec.GetVarint64(&v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_VarintRoundTrip);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

void BM_InodeKeyEncode(benchmark::State& state) {
  InodeKey key = InodeKey::IdRecord(123456, "some-file-name.dat");
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Encode());
  }
}
BENCHMARK(BM_InodeKeyEncode);

void BM_RecordEncodeDecode(benchmark::State& state) {
  InodeRecord rec = InodeRecord::MakeDirAttr(42, 1000, 0755, 1, 2, 7);
  for (auto _ : state) {
    auto decoded = InodeRecord::DecodeValue(rec.key, rec.EncodeValue());
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RecordEncodeDecode);

void BM_MemTableAdd(benchmark::State& state) {
  MemTable mt;
  uint64_t seq = 0;
  Rng rng(1);
  for (auto _ : state) {
    mt.Add("key" + std::to_string(rng.Uniform(100000)), "value", ++seq,
           ValueType::kPut);
  }
}
BENCHMARK(BM_MemTableAdd);

void BM_KvStorePutGet(benchmark::State& state) {
  KvStore kv;
  (void)kv.Open();
  Rng rng(2);
  for (auto _ : state) {
    std::string key = "k" + std::to_string(rng.Uniform(10000));
    (void)kv.Put(key, "payload", /*sync=*/false);
    benchmark::DoNotOptimize(kv.Get(key));
  }
}
BENCHMARK(BM_KvStorePutGet);

void BM_KvStoreScan100(benchmark::State& state) {
  KvStore kv;
  (void)kv.Open();
  for (int i = 0; i < 1000; i++) {
    (void)kv.Put("scan" + std::to_string(1000 + i), "v", false);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.Scan("scan1100", "scan1200"));
  }
}
BENCHMARK(BM_KvStoreScan100);

void BM_ExecutePrimitiveCreate(benchmark::State& state) {
  KvStore kv;
  (void)kv.Open();
  PrimitiveOp bootstrap;
  bootstrap.inserts.push_back(InodeRecord::MakeDirAttr(1, 1, 0755, 0, 0));
  (void)ExecutePrimitive(bootstrap, &kv);
  uint64_t seq = 0;
  for (auto _ : state) {
    Predicate check;
    check.key = InodeKey::AttrRecord(1);
    check.kind = Predicate::Kind::kExistsWithType;
    check.type = InodeType::kDirectory;
    UpdateSpec bump;
    bump.key = InodeKey::AttrRecord(1);
    bump.children_delta = 1;
    auto op = PrimitiveOp::InsertWithUpdate(
        InodeRecord::MakeIdRecord(1, "f" + std::to_string(seq++), seq,
                                  InodeType::kFile),
        check, bump);
    benchmark::DoNotOptimize(ExecutePrimitive(op, &kv));
  }
}
BENCHMARK(BM_ExecutePrimitiveCreate);

void BM_PrimitiveEncodeDecode(benchmark::State& state) {
  Predicate check;
  check.key = InodeKey::AttrRecord(1);
  check.kind = Predicate::Kind::kExistsWithType;
  check.type = InodeType::kDirectory;
  UpdateSpec bump;
  bump.key = InodeKey::AttrRecord(1);
  bump.children_delta = 1;
  bump.lww.mtime = 99;
  bump.lww.ts = 99;
  auto op = PrimitiveOp::InsertWithUpdate(
      InodeRecord::MakeIdRecord(1, "file", 2, InodeType::kFile), check, bump);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrimitiveOp::Decode(op.Encode()));
  }
}
BENCHMARK(BM_PrimitiveEncodeDecode);

void BM_LockUncontended(benchmark::State& state) {
  LockManager lm;
  TxnId txn = 1;
  for (auto _ : state) {
    (void)lm.Lock(txn, "row", LockMode::kExclusive);
    lm.Unlock(txn, "row");
  }
}
BENCHMARK(BM_LockUncontended);

void BM_SimNetCallZeroLatency(benchmark::State& state) {
  SimNet net;
  NodeId a = net.AddNode("a", 0);
  NodeId b = net.AddNode("b", 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Call(a, b, [] { return Status::Ok(); }));
  }
}
BENCHMARK(BM_SimNetCallZeroLatency);

class CountingSm : public StateMachine {
 public:
  std::string Apply(LogIndex, std::string_view) override {
    count++;
    return "ok";
  }
  uint64_t count = 0;
};

void BM_RaftProposeCommit(benchmark::State& state) {
  SimNet net;
  RaftOptions options;
  options.election_timeout_min_ms = 50;
  options.election_timeout_max_ms = 100;
  options.heartbeat_interval_ms = 20;
  RaftGroup group(&net, "bench", {0, 1, 2},
                  [](ReplicaId) { return std::make_unique<CountingSm>(); },
                  options);
  if (!group.Start().ok() || !group.WaitForLeader().ok()) {
    state.SkipWithError("no leader");
    return;
  }
  for (auto _ : state) {
    auto result = group.Propose("command");
    if (!result.ok()) {
      state.SkipWithError("propose failed");
      break;
    }
  }
  group.Stop();
}
BENCHMARK(BM_RaftProposeCommit)->Unit(benchmark::kMicrosecond);

// --- dentry cache: sharded lookups vs. the old process-wide mutex map ---
//
// The resolve hot path used to take one engine-global std::mutex around a
// std::map for every cached component. Run these two at ->Threads(8) to see
// the difference: the sharded cache scales with threads, the mutex map
// serializes them.

constexpr int kCachePaths = 1024;

std::string CachePath(uint64_t i) { return "/dir/file" + std::to_string(i); }

class DentryCacheBench : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    if (state.thread_index() == 0) {
      DentryCache::Options options;
      options.capacity = 1 << 16;
      options.shards = 16;
      cache_ = std::make_unique<DentryCache>(options);
      cache_->ObserveDirEpoch(1, 1);
      for (int i = 0; i < kCachePaths; i++) {
        cache_->PutPositive(CachePath(i), 1, 100 + i, InodeType::kFile,
                            /*epoch=*/1);
      }
    }
  }
  void TearDown(const benchmark::State& state) override {
    if (state.thread_index() == 0) cache_.reset();
  }

 protected:
  std::unique_ptr<DentryCache> cache_;
};

BENCHMARK_DEFINE_F(DentryCacheBench, ShardedLookup)(benchmark::State& state) {
  Rng rng(7 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache_->Lookup(CachePath(rng.Uniform(kCachePaths)), 1));
  }
}
BENCHMARK_REGISTER_F(DentryCacheBench, ShardedLookup)->Threads(1)->Threads(8);

class MutexMapCacheBench : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State& state) override {
    if (state.thread_index() == 0) {
      map_.clear();
      for (int i = 0; i < kCachePaths; i++) {
        map_[CachePath(i)] = {100 + i, InodeType::kFile};
      }
    }
  }

 protected:
  std::mutex mu_;
  std::map<std::string, std::pair<InodeId, InodeType>> map_;
};

BENCHMARK_DEFINE_F(MutexMapCacheBench, GlobalLockLookup)
(benchmark::State& state) {
  Rng rng(7 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    std::string path = CachePath(rng.Uniform(kCachePaths));
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(path);
    benchmark::DoNotOptimize(it);
  }
}
BENCHMARK_REGISTER_F(MutexMapCacheBench, GlobalLockLookup)
    ->Threads(1)
    ->Threads(8);

void BM_PathSplit(benchmark::State& state) {
  std::string path = "/a/bb/ccc/dddd/eeeee/file.txt";
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitPath(path));
  }
}
BENCHMARK(BM_PathSplit);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(5);
  for (auto _ : state) {
    h.Record(static_cast<int64_t>(rng.Uniform(100000)));
  }
  benchmark::DoNotOptimize(h.P99());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace
}  // namespace cfs

BENCHMARK_MAIN();
