// Renamer — the dedicated service for normal-path (cross-directory or
// directory-moving) renames (paper §4.3).
//
// Fast-path renames (intra-directory, file-to-file — ~99% in production)
// never reach this service: ClientLib executes them directly with the
// insert_and_delete_with_update primitive. Everything else is funneled to
// the Renamer coordinator, which
//   1. acquires coordinator-local locks on the source entry, destination
//      entry, and both parent directories (canonically ordered),
//   2. re-reads and validates both entries from TafDB under those locks,
//   3. rejects orphaned loops (renaming an ancestor into its own subtree)
//      by walking the destination's ancestor chain via parent backpointers,
//   4. executes the cross-shard mutation as deterministically ordered,
//      id-hint-guarded single-shard primitives with compensation (see the
//      commentary in Rename() — a deliberate strengthening of the paper's
//      "conventional locking and 2PC" so normal-path renames are also
//      robust against concurrent fast-path primitives),
//   5. cleans up replaced files' attributes in FileStore after commit.
//
// The coordinator role is held by the leader of a small raft group (the
// paper deploys a 3-node Renamer cluster); the group's log is used only for
// leader election, since all rename state is transient coordination state.

#ifndef CFS_RENAMER_RENAMER_H_
#define CFS_RENAMER_RENAMER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"

#include "src/filestore/filestore.h"
#include "src/net/simnet.h"
#include "src/raft/raft.h"
#include "src/tafdb/tafdb.h"
#include "src/txn/lock_manager.h"
#include "src/txn/two_phase_commit.h"

namespace cfs {

struct RenameRequest {
  InodeId src_parent = kInvalidInode;
  std::string src_name;
  InodeId dst_parent = kInvalidInode;
  std::string dst_name;
  // Full client-visible paths, carried so the post-commit invalidation
  // broadcast can name what moved (client dentry caches key by path). May
  // be empty when the caller has no cache to keep coherent (tests, tools);
  // the broadcast then only publishes the parents' new epochs.
  std::string src_path;
  std::string dst_path;
};

// Post-commit cache invalidation, broadcast to every client engine after a
// normal-path rename: the exact paths that moved (whole subtrees when a
// directory moved) plus both parents' freshly bumped epochs, so receivers
// refresh their views instead of waiting out the epoch TTL.
struct CacheInvalidation {
  std::string src_path;
  std::string dst_path;
  bool subtree = false;  // a directory moved: drop cached descendants too
  InodeId src_parent = kInvalidInode;
  uint64_t src_parent_epoch = 0;
  InodeId dst_parent = kInvalidInode;
  uint64_t dst_parent_epoch = 0;
};

struct RenamerOptions {
  size_t replicas = 3;
  RaftOptions raft;
  int64_t lock_timeout_us = 2000000;
  // When true (CFS tiered mode), replaced files' attributes live in
  // FileStore and are deleted there post-commit; otherwise they are TafDB
  // attribute records handled inside the transaction.
  bool tiered_attrs = true;
  // Lock-based deployments (CFS-base / +new-org) synchronize every mutation
  // through the shards' row-lock managers; the Renamer must take the same
  // row locks or its writes would slip between their read-modify-write
  // critical sections.
  bool use_shard_row_locks = false;
};

class Renamer {
 public:
  Renamer(SimNet* net, std::vector<uint32_t> servers, TafDbCluster* tafdb,
          FileStoreCluster* filestore, RenamerOptions options);

  Status Start();
  void Stop();

  // Front door for RPC accounting (the coordinator node).
  NodeId CoordinatorNetId() const;

  // Executes a normal-path rename. Runs on the caller's thread; the caller
  // is expected to have routed the RPC via SimNet to CoordinatorNetId().
  Status Rename(const RenameRequest& req);

  struct Stats {
    uint64_t fast_rejected = 0;   // requests that were actually fast-path
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t loops_detected = 0;
    uint64_t invalidations_broadcast = 0;
  };
  Stats stats() const;

  // Installed by the assembled system (Cfs): delivers a post-commit
  // CacheInvalidation to every registered client engine. Runs on the
  // renaming caller's thread, synchronously, before Rename returns — which
  // is what makes post-rename lookups through other engines coherent. Must
  // be set before Start() and outlive the Renamer.
  void set_invalidation_broadcast(
      std::function<void(const CacheInvalidation&)> fn) {
    broadcast_ = std::move(fn);
  }

 private:
  // Walks dst ancestors; returns true if `candidate` appears (loop).
  StatusOr<bool> IsAncestorOf(InodeId candidate, InodeId node);

  SimNet* net_;  // tsa-coverage: allow(immutable after construction)
  TafDbCluster* tafdb_;  // tsa-coverage: allow(immutable after construction)
  // tsa-coverage: allow(immutable after construction)
  FileStoreCluster* filestore_;
  // tsa-coverage: allow(immutable after construction)
  RenamerOptions options_;
  // Leader election only; built by Start() before any rename is routed.
  // tsa-coverage: allow(start/stop lifecycle only)
  std::unique_ptr<RaftGroup> group_;
  // Coordinator-local directory locks, deliberately held across the rename
  // transaction's network round trips — the one CFS component the paper
  // exempts from the pruned-scope rule, so its scope class is
  // allowed-across-rpc (audited and counted, never fatal).
  // cs-policy: allowed-across-rpc renamer.dirlock
  LockManager locks_{LockManagerOptions{}, RealClock::Get(), "renamer.dirlock",
                     "the rename coordinator serializes directory moves by "
                     "holding src/dst directory locks across the rename "
                     "transaction's read/validate/commit round trips (paper "
                     "§4.3); normal-path metadata operations never take "
                     "these locks"};
  std::atomic<TxnId> next_txn_{1};
  // Installed once before Start() (see set_invalidation_broadcast).
  // tsa-coverage: allow(immutable after construction)
  std::function<void(const CacheInvalidation&)> broadcast_;

  // Stats-only leaf.
  mutable Mutex stats_mu_{"renamer.stats", 85};
  Stats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace cfs

#endif  // CFS_RENAMER_RENAMER_H_
