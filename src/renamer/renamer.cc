#include "src/renamer/renamer.h"

#include <map>
#include <optional>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/race_detector.h"
#include "src/common/trace_event.h"

namespace cfs {
namespace {

// A trivial state machine: the Renamer's raft group exists only to elect a
// stable coordinator (all rename state is transient coordination state).
class NoopSm : public StateMachine {
 public:
  std::string Apply(LogIndex, std::string_view) override { return ""; }
};

std::string EntryLockKey(InodeId parent, const std::string& name) {
  return "e:" + std::to_string(parent) + "/" + name;
}

std::string DirLockKey(InodeId dir) { return "d:" + std::to_string(dir); }

}  // namespace

Renamer::Renamer(SimNet* net, std::vector<uint32_t> servers,
                 TafDbCluster* tafdb, FileStoreCluster* filestore,
                 RenamerOptions options)
    : net_(net),
      tafdb_(tafdb),
      filestore_(filestore),
      options_(std::move(options)) {
  group_ = std::make_unique<RaftGroup>(
      net_, "renamer", std::move(servers),
      [](ReplicaId) { return std::make_unique<NoopSm>(); }, options_.raft);
}

Status Renamer::Start() {
  CFS_RETURN_IF_ERROR(group_->Start());
  auto leader = group_->WaitForLeader();
  if (!leader.ok()) return leader.status();
  return Status::Ok();
}

void Renamer::Stop() { group_->Stop(); }

NodeId Renamer::CoordinatorNetId() const {
  RaftNode* leader = group_->Leader();
  return leader != nullptr ? leader->net_id() : group_->replica(0)->net_id();
}

StatusOr<bool> Renamer::IsAncestorOf(InodeId candidate, InodeId node) {
  // Walk parent backpointers from `node` toward the root; bounded to break
  // cycles created by corruption rather than looping forever.
  NodeId self = CoordinatorNetId();
  InodeId walk = node;
  for (int depth = 0; depth < 4096 && walk != kInvalidInode &&
                      walk != kRootInode;
       depth++) {
    if (walk == candidate) return true;
    TafDbShard* shard = tafdb_->ShardFor(walk);
    auto attr = net_->Call(self, shard->ServiceNetId(), [&] {
      return shard->Get(InodeKey::AttrRecord(walk));
    });
    if (!attr.ok()) return attr.status();
    walk = attr->parent;
  }
  return walk == candidate;
}

Status Renamer::Rename(const RenameRequest& req) {
  if (req.src_parent == req.dst_parent && req.src_name == req.dst_name) {
    return Status::Ok();  // rename to itself is a no-op
  }
  // The whole normal-path coordination (locks, loop check, 2PC) counts as
  // the renamer phase of the calling op's trace.
  TraceSpan span(Phase::kRenamer);
  static Counter* const renames =
      MetricsRegistry::Global().GetCounter("renamer.renames");
  renames->Add();
  NodeId self = CoordinatorNetId();
  TxnId txn = next_txn_.fetch_add(1);
  uint64_t ts = 0;
  {
    // One RPC to the time service for the LWW ordering timestamp.
    Status st = net_->Call(self, tafdb_->ts_net_id(), [&]() -> Status {
      ts = tafdb_->ts_oracle()->Next();
      return Status::Ok();
    });
    if (!st.ok()) return st;
  }

  // 1. Coordinator-local locks over entries and parents, canonically
  //    ordered (LockAll sorts) — every normal-path rename is serialized
  //    through this one coordinator, so local locks suffice (§4.3).
  std::vector<std::string> lock_keys = {
      EntryLockKey(req.src_parent, req.src_name),
      EntryLockKey(req.dst_parent, req.dst_name),
      DirLockKey(req.src_parent),
      DirLockKey(req.dst_parent),
  };
  CFS_RETURN_IF_ERROR(
      locks_.LockAll(txn, lock_keys, LockMode::kExclusive,
                     options_.lock_timeout_us));
  struct Unlocker {
    LockManager* locks;
    TxnId txn;
    ~Unlocker() { locks->UnlockAll(txn); }
  } unlocker{&locks_, txn};

  // 1b. In lock-based deployments, also take the shard row locks that
  // create/unlink/mkdir/rmdir/setattr hold, in global shard order.
  struct ShardLocks {
    std::vector<std::pair<TafDbShard*, TxnId>> held;
    SimNet* net = nullptr;
    NodeId self = kInvalidNode;
    ~ShardLocks() {
      for (auto& [shard, txn_id] : held) {
        (void)net->Call(self, shard->ServiceNetId(), [&]() -> Status {
          shard->locks()->UnlockAll(txn_id);
          return Status::Ok();
        });
      }
    }
  } shard_locks;
  shard_locks.net = net_;
  shard_locks.self = self;
  if (options_.use_shard_row_locks) {
    std::map<size_t, std::vector<std::string>> plan;
    plan[tafdb_->ShardIndexFor(req.src_parent)].push_back(
        InodeKey::IdRecord(req.src_parent, req.src_name).Encode());
    plan[tafdb_->ShardIndexFor(req.src_parent)].push_back(
        InodeKey::AttrRecord(req.src_parent).Encode());
    plan[tafdb_->ShardIndexFor(req.dst_parent)].push_back(
        InodeKey::IdRecord(req.dst_parent, req.dst_name).Encode());
    plan[tafdb_->ShardIndexFor(req.dst_parent)].push_back(
        InodeKey::AttrRecord(req.dst_parent).Encode());
    for (auto& [index, keys] : plan) {
      TafDbShard* shard = tafdb_->shard(index);
      Status st = net_->Call(self, shard->ServiceNetId(), [&] {
        return shard->locks()->LockAll(txn, keys, LockMode::kExclusive,
                                       options_.lock_timeout_us);
      });
      if (!st.ok()) return st;
      shard_locks.held.emplace_back(shard, txn);
    }
  }

  // 2. Re-read and validate both entries under locks.
  TafDbShard* src_shard = tafdb_->ShardFor(req.src_parent);
  auto src = net_->Call(self, src_shard->ServiceNetId(), [&] {
    return src_shard->Get(InodeKey::IdRecord(req.src_parent, req.src_name));
  });
  if (!src.ok()) return src.status();
  const bool src_is_dir = src->type == InodeType::kDirectory;

  TafDbShard* dst_shard = tafdb_->ShardFor(req.dst_parent);
  auto dst = net_->Call(self, dst_shard->ServiceNetId(), [&] {
    return dst_shard->Get(InodeKey::IdRecord(req.dst_parent, req.dst_name));
  });
  const bool dst_exists = dst.ok();
  if (dst_exists) {
    if (src_is_dir && dst->type != InodeType::kDirectory) {
      return Status::NotADirectory(req.dst_name);
    }
    if (!src_is_dir && dst->type == InodeType::kDirectory) {
      return Status::IsADirectory(req.dst_name);
    }
  }

  // 3. Orphan-loop prevention for directory moves: the destination parent
  //    must not be the moved directory or any of its descendants.
  if (src_is_dir) {
    auto loop = IsAncestorOf(src->id, req.dst_parent);
    if (!loop.ok()) return loop.status();
    if (*loop) {
      MutexLock lock(stats_mu_);
      CFS_SHARED_WRITE(stats_, stats_mu_);
      stats_.loops_detected++;
      return Status::InvalidArgument("rename would orphan a directory loop");
    }
  }

  // 4. Replacing an (empty) directory: atomically verify emptiness and
  //    retire its attribute record before touching the namespace, so no new
  //    children can appear under it mid-rename.
  std::optional<InodeRecord> retired_dst_attr;
  if (dst_exists && dst->type == InodeType::kDirectory) {
    PrimitiveOp retire;
    Predicate empty_check;
    empty_check.key = InodeKey::AttrRecord(dst->id);
    empty_check.kind = Predicate::Kind::kChildrenZero;
    retire.checks.push_back(empty_check);
    DeleteSpec del_attr;
    del_attr.key = InodeKey::AttrRecord(dst->id);
    retire.deletes.push_back(del_attr);
    TafDbShard* dir_shard = tafdb_->ShardFor(dst->id);
    PrimitiveResult result;
    Status delivered = net_->BeginCall(self, dir_shard->ServiceNetId());
    if (!delivered.ok()) return delivered;
    // Direct-call site: attribute the retire primitive to the shard like
    // SimNet::Call would.
    trace::NodeScope node(net_->TraceNodeOf(dir_shard->ServiceNetId()));
    trace::ScopedSpan exec(trace::Category::kExec, "retire_dst");
    result = dir_shard->ExecutePrimitive(retire);
    if (!result.status.ok()) return result.status;  // kNotEmpty and friends
    if (!result.deleted_records.empty()) {
      retired_dst_attr = result.deleted_records.front();
    }
  }

  // 5+6. Execute as deterministically ORDERED, hint-guarded single-shard
  // primitives (the same pruning discipline as the rest of CFS), rather
  // than optimistic staged 2PC: the hint ids make each step refuse to act
  // on entries that a concurrent fast-path rename or unlink replaced, and
  // the ordering guarantees the externally visible states are legal
  // serializations (a briefly-invisible file; never two live dentries).
  //
  //   step A (src shard): delete <src_parent, src_name> guarded by the
  //          observed inode id; parent fanout delta derived from the
  //          actual deletion (children_delta_auto).
  //   step B (dst shard): delete the observed dst entry (ifexist, hinted),
  //          insert the new dentry, parent fanout via auto delta.
  //   step C (moved directory): reparent its attribute record.
  //
  // If step B fails (a name appeared at dst concurrently), step A is
  // compensated by re-inserting the source dentry; if even that collides,
  // the outcome equals a crash between the steps and the GC reclaims the
  // attribute — the file is gone, a legal unlink serialization.
  Status commit_status;
  {
    // Step A.
    PrimitiveOp src_op;
    DeleteSpec del_src;
    del_src.key = InodeKey::IdRecord(req.src_parent, req.src_name);
    del_src.hint_id = src->id;
    src_op.deletes.push_back(del_src);
    UpdateSpec dec;
    dec.key = InodeKey::AttrRecord(req.src_parent);
    dec.children_delta_auto = true;
    dec.lww.mtime = ts;
    dec.lww.ts = ts;
    if (src_is_dir) dec.links_delta = -1;
    src_op.updates.push_back(dec);
    TafDbShard* src_op_shard = tafdb_->ShardFor(req.src_parent);
    commit_status = net_->Call(self, src_op_shard->ServiceNetId(), [&] {
      return src_op_shard->ExecutePrimitive(src_op).status;
    });
    if (!commit_status.ok() && retired_dst_attr.has_value()) {
      // Step A lost a race: the retired destination directory is still
      // live; restore its attribute image.
      PrimitiveOp restore;
      restore.puts.push_back(*retired_dst_attr);
      TafDbShard* dir_shard = tafdb_->ShardFor(dst->id);
      (void)net_->Call(self, dir_shard->ServiceNetId(), [&] {
        return dir_shard->ExecutePrimitive(restore).status;
      });
    }

    // Step B.
    if (commit_status.ok()) {
      PrimitiveOp dst_op;
      if (dst_exists) {
        DeleteSpec del_dst;
        del_dst.key = InodeKey::IdRecord(req.dst_parent, req.dst_name);
        del_dst.ifexist = true;
        del_dst.hint_id = dst->id;
        dst_op.deletes.push_back(del_dst);
      }
      dst_op.inserts.push_back(InodeRecord::MakeIdRecord(
          req.dst_parent, req.dst_name, src->id, src->type));
      UpdateSpec inc;
      inc.key = InodeKey::AttrRecord(req.dst_parent);
      inc.children_delta_auto = true;
      inc.lww.mtime = ts;
      inc.lww.ts = ts;
      // A directory moving in adds a ".." link — unless it replaces another
      // directory whose link it also removes.
      if (src_is_dir && !dst_exists) inc.links_delta = 1;
      dst_op.updates.push_back(inc);
      TafDbShard* dst_op_shard = tafdb_->ShardFor(req.dst_parent);
      Status step_b = net_->Call(self, dst_op_shard->ServiceNetId(), [&] {
        return dst_op_shard->ExecutePrimitive(dst_op).status;
      });
      if (!step_b.ok()) {
        // Compensate the retired destination-directory attribute and step
        // A; best effort.
        if (retired_dst_attr.has_value()) {
          PrimitiveOp restore;
          restore.puts.push_back(*retired_dst_attr);
          TafDbShard* dir_shard = tafdb_->ShardFor(dst->id);
          (void)net_->Call(self, dir_shard->ServiceNetId(), [&] {
            return dir_shard->ExecutePrimitive(restore).status;
          });
        }
        PrimitiveOp undo;
        undo.inserts.push_back(InodeRecord::MakeIdRecord(
            req.src_parent, req.src_name, src->id, src->type));
        UpdateSpec inc_back;
        inc_back.key = InodeKey::AttrRecord(req.src_parent);
        inc_back.children_delta_auto = true;
        if (src_is_dir) inc_back.links_delta = 1;
        undo.updates.push_back(inc_back);
        (void)net_->Call(self, src_op_shard->ServiceNetId(), [&] {
          return src_op_shard->ExecutePrimitive(undo).status;
        });
        commit_status = step_b;
      }
    }

    // Step C.
    if (commit_status.ok() && src_is_dir) {
      PrimitiveOp reparent_op;
      UpdateSpec reparent;
      reparent.key = InodeKey::AttrRecord(src->id);
      reparent.lww.parent = req.dst_parent;
      reparent.lww.ctime = ts;
      reparent.lww.ts = ts;
      reparent.must_exist = false;
      reparent_op.updates.push_back(reparent);
      TafDbShard* dir_shard = tafdb_->ShardFor(src->id);
      (void)net_->Call(self, dir_shard->ServiceNetId(), [&] {
        return dir_shard->ExecutePrimitive(reparent_op).status;
      });
    }

    // Replaced file attribute in the non-tiered layout.
    if (commit_status.ok() && dst_exists &&
        dst->type != InodeType::kDirectory && filestore_ == nullptr) {
      PrimitiveOp retire;
      DeleteSpec del;
      del.key = InodeKey::AttrRecord(dst->id);
      del.ifexist = true;
      retire.deletes.push_back(del);
      TafDbShard* attr_shard = tafdb_->ShardFor(dst->id);
      (void)net_->Call(self, attr_shard->ServiceNetId(), [&] {
        return attr_shard->ExecutePrimitive(retire).status;
      });
    }
  }
  {
    MutexLock lock(stats_mu_);
    CFS_SHARED_WRITE(stats_, stats_mu_);
    if (commit_status.ok()) {
      stats_.committed++;
    } else {
      stats_.aborted++;
    }
  }
  MetricsRegistry::Global()
      .GetCounter(commit_status.ok() ? "renamer.committed"
                                     : "renamer.aborted")
      ->Add();

  if (!commit_status.ok()) return commit_status;

  // 7. Post-commit: bump both parents' mutation epochs so client engines
  //    detect their cached dentries as stale on first touch. The bumps are
  //    piggybacked on the shard mutations just executed (no extra RPC round
  //    trips); the epoch lives on the shard owning the directory's entry
  //    list.
  CacheInvalidation inv;
  inv.src_path = req.src_path;
  inv.dst_path = req.dst_path;
  inv.subtree = src_is_dir;
  inv.src_parent = req.src_parent;
  inv.src_parent_epoch =
      tafdb_->ShardFor(req.src_parent)->BumpDirEpoch(req.src_parent);
  inv.dst_parent = req.dst_parent;
  inv.dst_parent_epoch =
      req.dst_parent == req.src_parent
          ? inv.src_parent_epoch
          : tafdb_->ShardFor(req.dst_parent)->BumpDirEpoch(req.dst_parent);

  // 8. Eager cluster-wide invalidation: one synchronous SimNet fan-out to
  //    every client engine before the rename returns. Directory moves drop
  //    whole cached subtrees (prefix invalidation); without this, deep
  //    cached paths under the moved directory would keep resolving to the
  //    old location until their parents' epoch views aged out.
  if (broadcast_) {
    broadcast_(inv);
    MutexLock lock(stats_mu_);
    CFS_SHARED_WRITE(stats_, stats_mu_);
    stats_.invalidations_broadcast++;
  }

  // 9. Replaced file attributes in FileStore are orphaned by design
  //    (deterministic ordering, Fig 7) and reclaimed asynchronously.
  if (dst_exists && dst->type != InodeType::kDirectory &&
      options_.tiered_attrs && filestore_ != nullptr) {
    filestore_->UnrefAsync(dst->id);
  }
  return Status::Ok();
}

Renamer::Stats Renamer::stats() const {
  MutexLock lock(stats_mu_);
  CFS_SHARED_READ(stats_, stats_mu_);
  return stats_;
}

}  // namespace cfs
