#include "src/txn/lock_manager.h"

#include <algorithm>
#include <chrono>

#include "src/common/metrics.h"
#include "src/common/trace_event.h"

namespace cfs {
namespace {

// Cached global-registry instruments shared by all LockManager instances.
struct LockMetrics {
  Counter* acquisitions;
  Counter* contended;
  Counter* timeouts;
  Counter* wait_us;
  Gauge* waiters;
};

LockMetrics& Metrics() {
  static LockMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return LockMetrics{r.GetCounter("lockmgr.acquisitions"),
                       r.GetCounter("lockmgr.contended"),
                       r.GetCounter("lockmgr.timeouts"),
                       r.GetCounter("lockmgr.wait_us"),
                       r.GetGauge("lockmgr.waiters")};
  }();
  return m;
}

}  // namespace

LockManager::LockManager(LockManagerOptions options, const Clock* clock,
                         const char* scope_class,
                         const char* scope_justification)
    : options_(options), clock_(clock) {
#ifdef CFS_LOCK_ORDER_TRACKING
  // Rank 0: logical scope entries are exempt from the rank/cycle checks
  // (deadlock escape is the timeout above); the class exists for the
  // RPC-under-lock and hold-span audit.
  scope_class_ = lock_order::RegisterClass(
      scope_class, 0, lock_order::RpcHoldPolicy::kAllowedAcrossRpc,
      scope_justification);
#else
  (void)scope_class;
  (void)scope_justification;
#endif
}

void LockManager::ScopeEnter() {
#ifdef CFS_LOCK_ORDER_TRACKING
  lock_order::OnScopeEnter(scope_class_);
#endif
}

void LockManager::ScopeExit() {
#ifdef CFS_LOCK_ORDER_TRACKING
  lock_order::OnScopeExit(scope_class_);
#endif
}

bool LockManager::CanGrantLocked(const Entry& e, TxnId txn, LockMode mode,
                                 uint64_t ticket) const {
  auto self = e.holders.find(txn);
  if (self != e.holders.end()) {
    if (self->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return true;  // reentrant
    }
    // Upgrade S -> X: only as the sole holder; upgrades may jump the queue
    // (queued writers would otherwise deadlock against us).
    return e.holders.size() == 1;
  }
  if (mode == LockMode::kShared) {
    for (const auto& [holder, held_mode] : e.holders) {
      if (held_mode == LockMode::kExclusive) return false;
    }
    // Don't overtake an earlier-queued writer (starvation control).
    for (const auto& w : e.queue) {
      if (w.ticket >= ticket) break;
      if (w.mode == LockMode::kExclusive) return false;
    }
    return true;
  }
  // Exclusive: no other holders and nobody queued ahead.
  if (!e.holders.empty()) return false;
  for (const auto& w : e.queue) {
    if (w.ticket < ticket) return false;
    break;
  }
  return true;
}

Status LockManager::Lock(TxnId txn, std::string_view key, LockMode mode,
                         int64_t timeout_us) {
  if (timeout_us < 0) timeout_us = options_.default_timeout_us;
  MutexLock lock(mu_);
  auto& entry = table_[std::string(key)];

  // Fast path.
  if (CanGrantLocked(entry, txn, mode, next_ticket_)) {
    auto [it, inserted] = entry.holders.emplace(txn, mode);
    if (!inserted && mode == LockMode::kExclusive) {
      it->second = LockMode::kExclusive;  // upgrade
    }
    auto& txn_keys = held_[txn];
    bool first_key = txn_keys.empty();
    txn_keys.insert(std::string(key));
    if (first_key) ScopeEnter();
    stats_.acquisitions++;
    Metrics().acquisitions->Add();
    return Status::Ok();
  }

  // Contended: enqueue and wait.
  uint64_t ticket = next_ticket_++;
  entry.queue.push_back(Waiter{txn, mode, ticket});
  stats_.contended_acquisitions++;
  Metrics().contended->Add();
  Metrics().waiters->Add(1);
  MonoNanos start = clock_->NowNanos();
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_us);
  bool granted = false;
  while (!granted) {
    auto& e = table_[std::string(key)];
    if (CanGrantLocked(e, txn, mode, ticket)) {
      granted = true;
      break;
    }
    if (!cv_.WaitUntil(mu_, deadline)) {
      auto& e2 = table_[std::string(key)];
      if (CanGrantLocked(e2, txn, mode, ticket)) {
        granted = true;
        break;
      }
      // Remove our waiter entry and give up.
      auto& q = e2.queue;
      q.erase(std::remove_if(q.begin(), q.end(),
                             [&](const Waiter& w) { return w.ticket == ticket; }),
              q.end());
      stats_.timeouts++;
      int64_t waited = (clock_->NowNanos() - start) / 1000;
      stats_.total_wait_us += waited;
      OpTrace::AddPhase(Phase::kLockWait, waited);
      // Causal-trace mirror of the AddPhase stamp: a span covering the
      // in-queue wait (thread-local write, safe under mu_).
      trace::CompleteSpan(trace::Category::kLock, "queue_timeout", waited,
                          static_cast<uint8_t>(Phase::kLockWait));
      Metrics().timeouts->Add();
      Metrics().wait_us->Add(static_cast<uint64_t>(waited));
      Metrics().waiters->Add(-1);
      cv_.NotifyAll();
      return Status::Timeout("lock timeout on " + std::string(key));
    }
  }
  auto& e = table_[std::string(key)];
  auto& q = e.queue;
  q.erase(std::remove_if(q.begin(), q.end(),
                         [&](const Waiter& w) { return w.ticket == ticket; }),
          q.end());
  auto [it, inserted] = e.holders.emplace(txn, mode);
  if (!inserted && mode == LockMode::kExclusive) {
    it->second = LockMode::kExclusive;
  }
  auto& txn_keys = held_[txn];
  bool first_key = txn_keys.empty();
  txn_keys.insert(std::string(key));
  if (first_key) ScopeEnter();
  stats_.acquisitions++;
  int64_t waited = (clock_->NowNanos() - start) / 1000;
  stats_.total_wait_us += waited;
  OpTrace::AddPhase(Phase::kLockWait, waited);
  trace::CompleteSpan(trace::Category::kLock, "queue_wait", waited,
                      static_cast<uint8_t>(Phase::kLockWait));
  Metrics().acquisitions->Add();
  Metrics().wait_us->Add(static_cast<uint64_t>(waited));
  Metrics().waiters->Add(-1);
  // Our grant may unblock compatible readers queued behind us.
  cv_.NotifyAll();
  return Status::Ok();
}

Status LockManager::LockAll(TxnId txn, std::vector<std::string> keys,
                            LockMode mode, int64_t timeout_us) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<std::string> acquired;
  for (const auto& key : keys) {
    Status st = Lock(txn, key, mode, timeout_us);
    if (!st.ok()) {
      for (const auto& k : acquired) {
        Unlock(txn, k);
      }
      return st;
    }
    acquired.push_back(key);
  }
  return Status::Ok();
}

void LockManager::Unlock(TxnId txn, std::string_view key) {
  MutexLock lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return;
  it->second.holders.erase(txn);
  auto hit = held_.find(txn);
  if (hit != held_.end()) {
    hit->second.erase(std::string(key));
    if (hit->second.empty()) {
      held_.erase(hit);
      ScopeExit();
    }
  }
  if (it->second.holders.empty() && it->second.queue.empty()) {
    table_.erase(it);
  }
  cv_.NotifyAll();
}

void LockManager::UnlockAll(TxnId txn) {
  MutexLock lock(mu_);
  auto hit = held_.find(txn);
  if (hit == held_.end()) return;
  for (const auto& key : hit->second) {
    auto it = table_.find(key);
    if (it == table_.end()) continue;
    it->second.holders.erase(txn);
    if (it->second.holders.empty() && it->second.queue.empty()) {
      table_.erase(it);
    }
  }
  held_.erase(hit);
  ScopeExit();
  cv_.NotifyAll();
}

bool LockManager::IsLocked(std::string_view key) const {
  MutexLock lock(mu_);
  auto it = table_.find(key);
  return it != table_.end() && !it->second.holders.empty();
}

size_t LockManager::HeldCount(TxnId txn) const {
  MutexLock lock(mu_);
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

// The legacy thread-wait accessors are pure delegates to the kLockWait
// phase of the thread's OpTrace, so span-based and counter-based callers
// agree on one number.
void LockManager::ResetThreadWait() { OpTrace::ClearPhase(Phase::kLockWait); }
int64_t LockManager::ThreadWaitMicros() {
  return OpTrace::PhaseUs(Phase::kLockWait);
}
void LockManager::AddThreadWait(int64_t micros) {
  OpTrace::AddPhase(Phase::kLockWait, micros);
  trace::CompleteSpan(trace::Category::kLock, "thread_wait", micros,
                      static_cast<uint8_t>(Phase::kLockWait));
}

LockManager::Stats LockManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace cfs
