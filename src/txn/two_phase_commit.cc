#include "src/txn/two_phase_commit.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "src/common/metrics.h"
#include "src/common/race_detector.h"
#include "src/common/simtime.h"

namespace cfs {
namespace {

struct TwoPcMetrics {
  Counter* runs;
  Counter* committed;
  Counter* aborted;
  Counter* prepare_rpcs;
};

TwoPcMetrics& Metrics() {
  static TwoPcMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return TwoPcMetrics{r.GetCounter("2pc.runs"), r.GetCounter("2pc.committed"),
                        r.GetCounter("2pc.aborted"),
                        r.GetCounter("2pc.prepare_rpcs")};
  }();
  return m;
}

}  // namespace

Status TwoPhaseCommit::Run(NodeId coordinator,
                           const std::vector<TxnParticipant*>& participants,
                           TxnId txn) {
  // Deduplicate participants (a txn may buffer writes on one shard through
  // several logical tables).
  std::vector<TxnParticipant*> unique = participants;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  // Each phase fans out to every participant in parallel (the round-trip
  // latency of a phase is one RPC + one replicated write, not their sum).
  auto fan_out = [&](const std::function<Status(TxnParticipant*)>& phase)
      -> std::vector<Status> {
    std::vector<Status> results(unique.size());
    if (unique.size() == 1) {
      results[0] = net_->Call(coordinator, unique[0]->ParticipantNetId(),
                              [&] { return phase(unique[0]); });
      return results;
    }
    // On a simtime::Scheduler thread, run the fan-out serially in
    // deterministic participant order: helper threads would escape the
    // virtual clock and scramble replay. The round trip is charged once
    // (first call), like the parallel fan-out it models; participant
    // processing serializes, a documented sim-mode over-charge for
    // cross-shard phases (DESIGN.md §11).
    if (simtime::Current() != nullptr) {
      bool latency_charged = false;
      for (size_t i = 0; i < unique.size(); i++) {
        results[i] = net_->Call(
            coordinator, unique[i]->ParticipantNetId(),
            [&] { return phase(unique[i]); },
            /*inject_latency=*/!latency_charged);
        latency_charged = true;
      }
      return results;
    }
    std::vector<std::thread> threads;
    threads.reserve(unique.size());
    for (size_t i = 0; i < unique.size(); i++) {
      threads.emplace_back([&, i] {
        results[i] = net_->Call(coordinator, unique[i]->ParticipantNetId(),
                                [&] { return phase(unique[i]); });
      });
    }
    for (auto& t : threads) t.join();
    return results;
  };

  // Phase 1: prepare. The spans run on the coordinator thread and so time
  // each phase's full fan-out wall clock, even when participants execute on
  // helper threads.
  Metrics().runs->Add();
  Status failure = Status::Ok();
  std::vector<Status> votes;
  {
    TraceSpan span(Phase::kTwoPcPrepare, "2pc_prepare");
    votes = fan_out([txn](TxnParticipant* p) { return p->Prepare(txn); });
  }
  {
    MutexLock lock(mu_);
    CFS_SHARED_WRITE(stats_, mu_);
    stats_.prepare_rpcs += unique.size();
  }
  Metrics().prepare_rpcs->Add(unique.size());
  for (const Status& vote : votes) {
    if (!vote.ok()) failure = vote;
  }

  // Phase 2: decision.
  if (failure.ok()) {
    {
      TraceSpan span(Phase::kTwoPcDecision, "2pc_commit");
      (void)fan_out([txn](TxnParticipant* p) { return p->Commit(txn); });
    }
    Metrics().committed->Add();
    MutexLock lock(mu_);
    CFS_SHARED_WRITE(stats_, mu_);
    stats_.decision_rpcs += unique.size();
    stats_.committed++;
    return Status::Ok();
  }
  {
    TraceSpan span(Phase::kTwoPcDecision, "2pc_abort");
    (void)fan_out([txn](TxnParticipant* p) { return p->Abort(txn); });
  }
  Metrics().aborted->Add();
  {
    MutexLock lock(mu_);
    CFS_SHARED_WRITE(stats_, mu_);
    stats_.decision_rpcs += unique.size();
    stats_.aborted++;
  }
  return failure;
}

TwoPcStats TwoPhaseCommit::stats() const {
  MutexLock lock(mu_);
  CFS_SHARED_READ(stats_, mu_);
  return stats_;
}

}  // namespace cfs
