// Row-level lock manager — the coordination mechanism whose cost the paper
// measures (§2.2: locking accounts for 52.91%..93.86% of request time in
// HopsFS) and that CFS's single-shard primitives remove from the hot path.
//
// Shared/exclusive locks over string row keys with FIFO wait queues,
// timeout-based deadlock escape, and ordered multi-key acquisition. The
// time a thread spends blocked is accumulated in a thread-local counter so
// the Fig 4 latency-breakdown bench can report Lock vs Execute vs Other.

#ifndef CFS_TXN_LOCK_MANAGER_H_
#define CFS_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace cfs {

using TxnId = uint64_t;

enum class LockMode { kShared, kExclusive };

struct LockManagerOptions {
  int64_t default_timeout_us = 2000000;  // deadlock escape hatch
};

class LockManager {
 public:
  // `scope_class` / `scope_justification` name the logical
  // critical-section class (src/common/lock_order.h) that a transaction's
  // row-lock hold window is charged to: entered when a txn's held set goes
  // empty -> non-empty on this manager, exited when it drains. Row locks
  // are granted and released over RPC but *held* by the calling thread in
  // between — exactly the lock-across-round-trips scope the paper prunes —
  // so the class is registered kAllowedAcrossRpc and must justify itself.
  // cs-policy: allowed-across-rpc lockmgr.row
  explicit LockManager(
      LockManagerOptions options = {}, const Clock* clock = RealClock::Get(),
      const char* scope_class = "lockmgr.row",
      const char* scope_justification =
          "row locks intentionally span RPC round trips: lock-based "
          "transactions (HopsFS/InfiniFS baselines and CFS's !primitives "
          "mode) read, mutate and commit over the network while holding "
          "them — the critical-section scope the paper measures and prunes");

  // Blocks until granted or timeout (kTimeout). Reentrant: a txn already
  // holding the key in the same (or stronger) mode succeeds immediately; a
  // sole shared holder may upgrade to exclusive.
  Status Lock(TxnId txn, std::string_view key, LockMode mode,
              int64_t timeout_us = -1);

  // Sorts keys and acquires them in order (deadlock avoidance for
  // multi-object transactions). On failure, releases everything acquired.
  Status LockAll(TxnId txn, std::vector<std::string> keys, LockMode mode,
                 int64_t timeout_us = -1);

  void Unlock(TxnId txn, std::string_view key);
  void UnlockAll(TxnId txn);

  // Introspection / test support.
  bool IsLocked(std::string_view key) const;
  size_t HeldCount(TxnId txn) const;

  // Thread-local accumulated blocked time, for latency breakdowns. These
  // delegate to the calling thread's OpTrace kLockWait phase (see
  // src/common/metrics.h) so span- and counter-based callers agree.
  static void ResetThreadWait();
  static int64_t ThreadWaitMicros();
  // Adds externally measured lock-phase time (e.g. the RPC round trips a
  // client spends acquiring/releasing remote locks) to the same counter.
  // No-op while a kLockWait TraceSpan is open on this thread.
  static void AddThreadWait(int64_t micros);

  struct Stats {
    uint64_t acquisitions = 0;
    uint64_t contended_acquisitions = 0;
    uint64_t timeouts = 0;
    int64_t total_wait_us = 0;
  };
  Stats stats() const;

 private:
  struct Waiter {
    TxnId txn;
    LockMode mode;
    uint64_t ticket;
  };

  struct Entry {
    // Current holders. Exclusive implies exactly one holder.
    std::map<TxnId, LockMode> holders;
    std::deque<Waiter> queue;
  };

  // True if `txn` can be granted `mode` on `e` right now, honoring FIFO
  // (no grant past earlier waiters unless already compatible holder).
  bool CanGrantLocked(const Entry& e, TxnId txn, LockMode mode,
                      uint64_t ticket) const REQUIRES(mu_);

  // Pushes/pops a row-lock scope entry on empty<->non-empty transitions of
  // held_[txn]. The entry lands on the *calling* thread's held stack
  // (grants run inline on the caller via SimNet), which is what makes
  // RPC-under-row-lock accounting work.
  void ScopeEnter();
  void ScopeExit();

  // tsa-coverage: allow(immutable after construction)
  LockManagerOptions options_;
  const Clock* clock_;
#ifdef CFS_LOCK_ORDER_TRACKING
  uint32_t scope_class_ = 0;
#endif
  // Per-manager table lock. Held only for table bookkeeping — blocked
  // acquisitions wait on cv_ with mu_ released, and no other cfs lock is
  // ever taken underneath it (Metrics() instruments are cached pointers).
  mutable Mutex mu_{"lockmgr.shard", 50};
  CondVar cv_;
  std::map<std::string, Entry, std::less<>> table_ GUARDED_BY(mu_);
  std::map<TxnId, std::set<std::string>> held_ GUARDED_BY(mu_);
  uint64_t next_ticket_ GUARDED_BY(mu_) = 1;
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace cfs

#endif  // CFS_TXN_LOCK_MANAGER_H_
