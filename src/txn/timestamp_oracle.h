// Timestamp oracle — the paper's TafDB "time servers (TS) assigning
// monotonically increasing timestamps to order metadata transactions"
// (§3.2). Shard leaders fetch timestamps in batches to keep the oracle off
// the per-request critical path; last-writer-wins attribute merges (§4.2)
// compare these timestamps.

#ifndef CFS_TXN_TIMESTAMP_ORACLE_H_
#define CFS_TXN_TIMESTAMP_ORACLE_H_

#include <atomic>
#include <cstdint>

#include "src/common/thread_annotations.h"
#include "src/net/simnet.h"

namespace cfs {

class TimestampOracle {
 public:
  explicit TimestampOracle(NodeId net_id = kInvalidNode) : net_id_(net_id) {}

  // Late placement binding (set once during cluster construction).
  void set_net_id(NodeId net_id) { net_id_ = net_id; }

  // Returns the next timestamp (strictly increasing across all callers).
  uint64_t Next() { return next_.fetch_add(1, std::memory_order_relaxed) + 1; }

  // Reserves `n` consecutive timestamps; returns the first.
  uint64_t NextBatch(uint64_t n) {
    return next_.fetch_add(n, std::memory_order_relaxed) + 1;
  }

  uint64_t Peek() const { return next_.load(std::memory_order_relaxed); }
  NodeId net_id() const { return net_id_; }

  // Moves the counter forward so the next value exceeds `floor` (used to
  // reserve well-known low ids such as the root inode).
  void AdvanceTo(uint64_t floor) {
    uint64_t cur = next_.load(std::memory_order_relaxed);
    while (cur < floor &&
           !next_.compare_exchange_weak(cur, floor, std::memory_order_relaxed)) {
    }
  }

 private:
  NodeId net_id_;
  std::atomic<uint64_t> next_{0};
};

// Client-side batching cache: fetches a window of timestamps from the
// oracle over the network, hands them out locally.
class TimestampCache {
 public:
  TimestampCache(SimNet* net, NodeId self, TimestampOracle* oracle,
                 uint64_t batch = 1024)
      : net_(net), self_(self), oracle_(oracle), batch_(batch) {}

  uint64_t Next() {
    MutexLock lock(mu_);
    if (next_value_ >= limit_) {
      // Pruned critical-section scope: the refill round trip runs with
      // txn.tscache released (never-across-rpc policy), so concurrent
      // callers may race to refill.
      lock.Unlock();
      uint64_t first = 0;
      Status st = net_->Call(self_, oracle_->net_id(), [&]() -> Status {
        first = oracle_->NextBatch(batch_);
        return Status::Ok();
      });
      lock.Lock();
      if (st.ok() && next_value_ >= limit_) {
        // Adopt the fetched window only if no concurrent refill landed
        // while the lock was dropped; oracle batches are disjoint, so an
        // unadopted window is simply skipped, never reissued.
        next_value_ = first;
        limit_ = first + batch_;
      }
      // On delivery failure, fall through and reuse the exhausted window:
      // strict global ordering is lost only while partitioned from the
      // oracle, never uniqueness within this client.
    }
    return next_value_++;
  }

 private:
  SimNet* net_;  // tsa-coverage: allow(immutable after construction)
  NodeId self_;  // tsa-coverage: allow(immutable after construction)
  // tsa-coverage: allow(immutable after construction)
  TimestampOracle* oracle_;
  uint64_t batch_;  // tsa-coverage: allow(immutable after construction)
  // Never held across the refill RPC (see Next): never-across-rpc policy.
  Mutex mu_{"txn.tscache", 30};
  uint64_t next_value_ GUARDED_BY(mu_) = 0;
  uint64_t limit_ GUARDED_BY(mu_) = 0;
};

}  // namespace cfs

#endif  // CFS_TXN_TIMESTAMP_ORACLE_H_
