// Two-phase commit coordinator — the cross-shard atomic-commit protocol the
// baselines (HopsFS for every multi-shard transaction, InfiniFS for
// mkdir/rmdir/rename) pay on their critical paths, and that CFS confines to
// the Renamer's normal-path renames (§4.3).
//
// Every Prepare/Commit/Abort is one SimNet RPC from the coordinator to the
// participant, so the protocol's latency shows up faithfully in benches.

#ifndef CFS_TXN_TWO_PHASE_COMMIT_H_
#define CFS_TXN_TWO_PHASE_COMMIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/net/simnet.h"
#include "src/txn/lock_manager.h"

namespace cfs {

// A shard-side participant in a distributed transaction. Implementations
// buffer writes under `txn`, vote in Prepare, and make them visible in
// Commit (or drop them in Abort).
class TxnParticipant {
 public:
  virtual ~TxnParticipant() = default;
  virtual Status Prepare(TxnId txn) = 0;
  virtual Status Commit(TxnId txn) = 0;
  virtual Status Abort(TxnId txn) = 0;
  virtual NodeId ParticipantNetId() const = 0;
};

struct TwoPcStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t prepare_rpcs = 0;
  uint64_t decision_rpcs = 0;
};

class TwoPhaseCommit {
 public:
  explicit TwoPhaseCommit(SimNet* net) : net_(net) {}

  // Runs the protocol from `coordinator` over the participants. If any
  // prepare fails, aborts everywhere and returns the failing status.
  // Participants co-located on one shard are deduplicated by net id.
  Status Run(NodeId coordinator, const std::vector<TxnParticipant*>& participants,
             TxnId txn);

  TwoPcStats stats() const;

 private:
  SimNet* net_;  // tsa-coverage: allow(immutable after construction)
  // Stats-only leaf; never held across an RPC.
  mutable Mutex mu_{"twopc.stats", 86};
  TwoPcStats stats_ GUARDED_BY(mu_);
};

}  // namespace cfs

#endif  // CFS_TXN_TWO_PHASE_COMMIT_H_
