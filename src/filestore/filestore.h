// FileStore — the flat, distributed object store for file data blocks that
// additionally keeps each file's attribute record in a local KV store
// (paper §3.2, §4.1: "we put the file attributes close to their data on the
// same FileStore node ... keys are inode ids while values are byte streams
// encoded by file attributes").
//
// File attributes are HASH-partitioned by inode id across FileStore nodes —
// the tiered-metadata half of the paper's design: attribute traffic
// (getattr/setattr, 78% of production ops per Table 1) spreads evenly over
// all data nodes even when every file lives in one huge directory (Fig 12),
// while the namespace hierarchy stays range-partitioned in TafDB.
//
// Every node is a raft group of 3 replicas; attribute mutations merge with
// the same delta/LWW reconciliation rules as TafDB primitives. Attribute
// writes triggered by create are piggybacked on the data-block creation
// (§5.7 "+new-org": "its extra cost is avoided by piggybacking this write
// on the data block creation").

#ifndef CFS_FILESTORE_FILESTORE_H_
#define CFS_FILESTORE_FILESTORE_H_

#include <memory>
#include <string>
#include <vector>

#include <atomic>
#include <deque>
#include <map>
#include <memory>

#include "src/common/hash.h"
#include "src/common/load_gate.h"
#include "src/common/thread_annotations.h"
#include "src/common/thread_pool.h"
#include "src/kv/kvstore.h"
#include "src/net/simnet.h"
#include "src/raft/raft.h"
#include "src/tafdb/primitives.h"
#include "src/tafdb/schema.h"
#include "src/txn/two_phase_commit.h"

namespace cfs {

// Raft command envelope for FileStore state machines.
struct FileStoreCommand {
  enum class Kind : uint8_t {
    kPutAttr = 0,     // insert attribute record (optionally with block 0)
    kDeleteAttr = 1,  // remove attribute record
    kSetAttr = 2,     // merge deltas / LWW sets into the attribute
    kWriteBlock = 3,  // write one data block, bump size/mtime
    kDeleteFile = 4,  // remove attribute + all blocks
    kPrepare = 5,     // stage an inner command durably (2PC vote); the
                      // encoded inner command rides in `data`
    kCommitTxn = 6,   // apply the staged command
    kAbortTxn = 7,    // drop the staged command
    kUnref = 8,       // drop one link; delete attr+blocks at zero links
  };

  Kind kind = Kind::kPutAttr;
  TxnId txn = 0;
  // Unique per logical request; reused on retries for exactly-once apply.
  uint64_t request_id = 0;
  InodeId id = kInvalidInode;
  InodeRecord attr;         // kPutAttr
  UpdateSpec update;        // kSetAttr / kWriteBlock size+mtime merge
  uint64_t block_index = 0; // kWriteBlock
  std::string data;         // kWriteBlock payload; kPutAttr piggyback block

  std::string Encode() const;
  static StatusOr<FileStoreCommand> Decode(std::string_view data);
};

class FileStoreSm : public StateMachine {
 public:
  explicit FileStoreSm(KvOptions kv_options);

  std::string Apply(LogIndex index, std::string_view command) override;
  std::string Snapshot() override;
  Status Restore(std::string_view state) override;

  const KvStore& kv() const { return kv_; }

  // Applies one non-transactional command to shard state.
  PrimitiveResult ApplyCommand(const FileStoreCommand& cmd);

  static std::string AttrKey(InodeId id);
  static std::string BlockKey(InodeId id, uint64_t index);
  static std::string BlockPrefix(InodeId id);

 private:
  KvStore kv_;
  std::map<TxnId, FileStoreCommand> staged_;
  std::map<uint64_t, std::string> applied_requests_;
  std::deque<uint64_t> applied_order_;
};

struct FileStoreOptions {
  size_t num_nodes = 4;
  size_t replicas = 3;
  size_t block_size = 64 * 1024;
  RaftOptions raft;
  KvOptions kv;
  // Server-side processing cost per attribute read, modelling the light
  // RocksDB key-value path (paper §4.1: "manipulating file attributes
  // through FileStore is cheaper than doing so in TafDB"). Charged in both
  // latency-injecting modes (kSleep: real sleep gated by a per-node
  // concurrency limit so hotspots queue; kVirtual: accrued on the
  // virtual clock — DESIGN.md §11); skipped in kZero unit tests.
  int64_t read_processing_us = 15;
  size_t read_concurrency = 16;
};

// One FileStore node (a raft group of replicas).
class FileStoreNode : public TxnParticipant {
 public:
  FileStoreNode(SimNet* net, std::string name, std::vector<uint32_t> servers,
                const FileStoreOptions& options);

  Status Start();
  void Stop();

  NodeId ServiceNetId() const;

  // Attribute path (metadata ops).
  Status PutAttr(const InodeRecord& attr, std::string piggyback_block = "");
  Status DeleteAttr(InodeId id);
  // Atomically decrements the link count; reclaims the attribute record and
  // every data block once it reaches zero (hard-link-safe unlink cleanup).
  Status Unref(InodeId id);
  Status SetAttr(InodeId id, const UpdateSpec& update);
  StatusOr<InodeRecord> GetAttr(InodeId id) const;

  // Data path.
  Status WriteBlock(InodeId id, uint64_t index, std::string data,
                    uint64_t mtime_ts);
  StatusOr<std::string> ReadBlock(InodeId id, uint64_t index) const;
  Status DeleteFile(InodeId id);

  // Distributed transaction participation (used by the non-primitive
  // configurations, where a create's attribute placement and namespace
  // update commit atomically via 2PC).
  Status Stage(TxnId txn, FileStoreCommand cmd);
  Status Prepare(TxnId txn) override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;
  NodeId ParticipantNetId() const override { return ServiceNetId(); }

  // GC change capture.
  std::vector<std::pair<LogIndex, FileStoreCommand>> ReadCommittedSince(
      LogIndex from, size_t max) const;

  RaftGroup* raft_group() { return group_.get(); }

 private:
  Status Propose(const FileStoreCommand& cmd);
  const FileStoreSm* LeaderSm() const;
  void ReadProcessingGate() const;

  SimNet* net_;  // tsa-coverage: allow(immutable after construction)
  std::string name_;  // tsa-coverage: allow(immutable after construction)
  // tsa-coverage: allow(immutable after construction)
  FileStoreOptions options_;
  // Built by Start() before any request is routed here.
  // tsa-coverage: allow(start/stop lifecycle only)
  std::unique_ptr<RaftGroup> group_;
  // Leaf: released before any raft proposal.
  mutable Mutex staged_mu_{"filestore.staged", 61};
  std::map<TxnId, FileStoreCommand> staged_ GUARDED_BY(staged_mu_);
  // tsa-coverage: allow(internally synchronized)
  mutable LoadGate read_gate_;
  std::atomic<uint64_t> request_seq_{1};
};

// The hash-partitioned cluster of FileStore nodes.
class FileStoreCluster {
 public:
  FileStoreCluster(SimNet* net, std::vector<uint32_t> servers,
                   FileStoreOptions options);

  Status Start();
  void Stop();

  size_t NodeIndexFor(InodeId id) const {
    return static_cast<size_t>(HashU64(id) % nodes_.size());
  }
  FileStoreNode* NodeFor(InodeId id) { return nodes_[NodeIndexFor(id)].get(); }
  FileStoreNode* node(size_t i) { return nodes_[i].get(); }
  size_t num_nodes() const { return nodes_.size(); }
  size_t block_size() const { return options_.block_size; }

  // Fire-and-forget deletion (unlink hides FileStore latency, §5.2).
  void DeleteAttrAsync(InodeId id);
  // Fire-and-forget unref (hard-link-safe).
  void UnrefAsync(InodeId id);
  // Test support: drain pending async deletions.
  void DrainAsync();

 private:
  SimNet* net_;
  FileStoreOptions options_;
  std::vector<std::unique_ptr<FileStoreNode>> nodes_;
  std::unique_ptr<ThreadPool> async_pool_;
};

}  // namespace cfs

#endif  // CFS_FILESTORE_FILESTORE_H_
