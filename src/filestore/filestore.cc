#include "src/filestore/filestore.h"

#include "src/common/encoding.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace cfs {
namespace {

struct FileStoreMetrics {
  Counter* mutations;
  Counter* attr_reads;
  Counter* block_reads;
};

FileStoreMetrics& Metrics() {
  static FileStoreMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return FileStoreMetrics{r.GetCounter("filestore.mutations"),
                            r.GetCounter("filestore.attr_reads"),
                            r.GetCounter("filestore.block_reads")};
  }();
  return m;
}

void PutBigEndian64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 7; i >= 0; i--) {
    buf[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  dst->append(buf, 8);
}

}  // namespace

std::string FileStoreSm::AttrKey(InodeId id) {
  std::string key(1, 'A');
  PutBigEndian64(&key, id);
  return key;
}

std::string FileStoreSm::BlockKey(InodeId id, uint64_t index) {
  std::string key(1, 'B');
  PutBigEndian64(&key, id);
  PutBigEndian64(&key, index);
  return key;
}

std::string FileStoreSm::BlockPrefix(InodeId id) {
  std::string key(1, 'B');
  PutBigEndian64(&key, id);
  return key;
}

std::string FileStoreCommand::Encode() const {
  std::string out;
  out.push_back(static_cast<char>(kind));
  PutVarint64(&out, txn);
  PutVarint64(&out, request_id);
  PutVarint64(&out, id);
  PutVarint64(&out, block_index);
  PutLengthPrefixed(&out, data);
  PutLengthPrefixed(&out, attr.EncodeValue());
  PrimitiveOp update_carrier;
  update_carrier.updates.push_back(update);
  PutLengthPrefixed(&out, update_carrier.Encode());
  return out;
}

StatusOr<FileStoreCommand> FileStoreCommand::Decode(std::string_view raw) {
  if (raw.empty()) return Status::Corruption("empty filestore command");
  FileStoreCommand cmd;
  cmd.kind = static_cast<Kind>(raw[0]);
  Decoder dec(raw.substr(1));
  std::string_view attr_raw, update_raw;
  if (!dec.GetVarint64(&cmd.txn) || !dec.GetVarint64(&cmd.request_id) ||
      !dec.GetVarint64(&cmd.id) ||
      !dec.GetVarint64(&cmd.block_index) ||
      !dec.GetLengthPrefixed(&cmd.data) ||
      !dec.GetLengthPrefixed(&attr_raw) ||
      !dec.GetLengthPrefixed(&update_raw)) {
    return Status::Corruption("filestore command truncated");
  }
  auto attr = InodeRecord::DecodeValue(InodeKey::AttrRecord(cmd.id), attr_raw);
  if (!attr.ok()) return attr.status();
  cmd.attr = std::move(attr).value();
  auto carrier = PrimitiveOp::Decode(update_raw);
  if (!carrier.ok()) return carrier.status();
  if (!carrier->updates.empty()) cmd.update = carrier->updates[0];
  return cmd;
}

FileStoreSm::FileStoreSm(KvOptions kv_options) : kv_(std::move(kv_options)) {
  (void)kv_.Open();
}

PrimitiveResult FileStoreSm::ApplyCommand(const FileStoreCommand& cmd) {
  PrimitiveResult result;
  switch (cmd.kind) {
    case FileStoreCommand::Kind::kPutAttr: {
      WriteBatch batch;
      batch.Put(AttrKey(cmd.id), cmd.attr.EncodeValue());
      if (!cmd.data.empty()) {
        batch.Put(BlockKey(cmd.id, 0), cmd.data);  // piggybacked first block
      }
      result.status = kv_.Write(batch, /*sync=*/false);
      break;
    }
    case FileStoreCommand::Kind::kDeleteAttr:
      result.status = kv_.Delete(AttrKey(cmd.id), /*sync=*/false);
      break;
    case FileStoreCommand::Kind::kSetAttr: {
      auto value = kv_.Get(AttrKey(cmd.id));
      if (!value.ok()) {
        result.status = value.status();
        break;
      }
      auto rec = InodeRecord::DecodeValue(InodeKey::AttrRecord(cmd.id), *value);
      if (!rec.ok()) {
        result.status = rec.status();
        break;
      }
      ApplyUpdateToRecord(cmd.update, 0, &rec.value());
      result.status =
          kv_.Put(AttrKey(cmd.id), rec->EncodeValue(), /*sync=*/false);
      break;
    }
    case FileStoreCommand::Kind::kWriteBlock: {
      WriteBatch batch;
      batch.Put(BlockKey(cmd.id, cmd.block_index), cmd.data);
      // Merge size/mtime into the co-located attribute record when present;
      // in non-tiered configurations the attribute lives in TafDB and the
      // caller updates it there instead.
      auto value = kv_.Get(AttrKey(cmd.id));
      if (value.ok()) {
        auto rec =
            InodeRecord::DecodeValue(InodeKey::AttrRecord(cmd.id), *value);
        if (!rec.ok()) {
          result.status = rec.status();
          break;
        }
        ApplyUpdateToRecord(cmd.update, 0, &rec.value());
        batch.Put(AttrKey(cmd.id), rec->EncodeValue());
      }
      result.status = kv_.Write(batch, /*sync=*/false);
      break;
    }
    case FileStoreCommand::Kind::kUnref: {
      auto value = kv_.Get(AttrKey(cmd.id));
      if (!value.ok()) {
        result.status = Status::Ok();  // already gone: idempotent
        break;
      }
      auto rec = InodeRecord::DecodeValue(InodeKey::AttrRecord(cmd.id), *value);
      if (!rec.ok()) {
        result.status = rec.status();
        break;
      }
      rec->links -= 1;
      if (rec->links > 0) {
        result.status =
            kv_.Put(AttrKey(cmd.id), rec->EncodeValue(), /*sync=*/false);
        break;
      }
      // Last link gone: reclaim the attribute and all blocks.
      WriteBatch batch;
      batch.Delete(AttrKey(cmd.id));
      std::string prefix = BlockPrefix(cmd.id);
      std::string upper = prefix;
      upper.back() = static_cast<char>(upper.back() + 1);
      for (const auto& [key, v] : kv_.Scan(prefix, upper)) {
        batch.Delete(key);
        result.deleted++;
      }
      result.status = kv_.Write(batch, /*sync=*/false);
      break;
    }
    case FileStoreCommand::Kind::kDeleteFile: {
      WriteBatch batch;
      batch.Delete(AttrKey(cmd.id));
      std::string prefix = BlockPrefix(cmd.id);
      std::string upper = prefix;
      upper.back() = static_cast<char>(upper.back() + 1);
      for (const auto& [key, v] : kv_.Scan(prefix, upper)) {
        batch.Delete(key);
        result.deleted++;
      }
      result.status = kv_.Write(batch, /*sync=*/false);
      break;
    }
    default:
      result.status = Status::Internal("transactional kind in ApplyCommand");
      break;
  }
  return result;
}

std::string FileStoreSm::Apply(LogIndex, std::string_view command) {
  PrimitiveResult result;
  auto decoded = FileStoreCommand::Decode(command);
  if (!decoded.ok()) {
    result.status = decoded.status();
    return result.Encode();
  }
  FileStoreCommand& cmd = *decoded;
  if (cmd.request_id != 0) {
    auto it = applied_requests_.find(cmd.request_id);
    if (it != applied_requests_.end()) {
      return it->second;  // exactly-once: replay the original result
    }
  }
  switch (cmd.kind) {
    case FileStoreCommand::Kind::kPrepare: {
      auto inner = FileStoreCommand::Decode(cmd.data);
      if (!inner.ok()) {
        result.status = inner.status();
      } else {
        staged_[cmd.txn] = std::move(inner).value();
        result.status = Status::Ok();
      }
      break;
    }
    case FileStoreCommand::Kind::kCommitTxn: {
      auto it = staged_.find(cmd.txn);
      if (it == staged_.end()) {
        result.status = Status::NotFound("no staged filestore txn");
      } else {
        result = ApplyCommand(it->second);
        staged_.erase(it);
      }
      break;
    }
    case FileStoreCommand::Kind::kAbortTxn:
      staged_.erase(cmd.txn);
      result.status = Status::Ok();
      break;
    default:
      result = ApplyCommand(cmd);
      break;
  }
  std::string encoded = result.Encode();
  if (cmd.request_id != 0) {
    applied_requests_.emplace(cmd.request_id, encoded);
    applied_order_.push_back(cmd.request_id);
    while (applied_order_.size() > (1u << 16)) {
      applied_requests_.erase(applied_order_.front());
      applied_order_.pop_front();
    }
  }
  return encoded;
}

std::string FileStoreSm::Snapshot() {
  std::string out;
  auto rows = kv_.Scan("", "");
  PutVarint64(&out, rows.size());
  for (const auto& [key, value] : rows) {
    PutLengthPrefixed(&out, key);
    PutLengthPrefixed(&out, value);
  }
  PutVarint64(&out, staged_.size());
  for (const auto& [txn, cmd] : staged_) {
    PutVarint64(&out, txn);
    PutLengthPrefixed(&out, cmd.Encode());
  }
  PutVarint64(&out, applied_order_.size());
  for (uint64_t id : applied_order_) {
    PutVarint64(&out, id);
    PutLengthPrefixed(&out, applied_requests_[id]);
  }
  return out;
}

Status FileStoreSm::Restore(std::string_view state) {
  Decoder dec(state);
  uint64_t rows, staged, dedup;
  if (!dec.GetVarint64(&rows)) return Status::Corruption("snapshot rows");
  kv_.Clear();
  WriteBatch batch;
  for (uint64_t i = 0; i < rows; i++) {
    std::string key, value;
    if (!dec.GetLengthPrefixed(&key) || !dec.GetLengthPrefixed(&value)) {
      return Status::Corruption("snapshot row truncated");
    }
    batch.Put(key, value);
    if (batch.size() >= 1024) {
      CFS_RETURN_IF_ERROR(kv_.Write(batch, /*sync=*/false));
      batch.Clear();
    }
  }
  CFS_RETURN_IF_ERROR(kv_.Write(batch, /*sync=*/false));
  staged_.clear();
  if (!dec.GetVarint64(&staged)) return Status::Corruption("snapshot staged");
  for (uint64_t i = 0; i < staged; i++) {
    uint64_t txn;
    std::string_view cmd_raw;
    if (!dec.GetVarint64(&txn) || !dec.GetLengthPrefixed(&cmd_raw)) {
      return Status::Corruption("snapshot staged truncated");
    }
    auto cmd = FileStoreCommand::Decode(cmd_raw);
    if (!cmd.ok()) return cmd.status();
    staged_[txn] = std::move(cmd).value();
  }
  applied_requests_.clear();
  applied_order_.clear();
  if (!dec.GetVarint64(&dedup)) return Status::Corruption("snapshot dedup");
  for (uint64_t i = 0; i < dedup; i++) {
    uint64_t id;
    std::string result;
    if (!dec.GetVarint64(&id) || !dec.GetLengthPrefixed(&result)) {
      return Status::Corruption("snapshot dedup truncated");
    }
    applied_requests_.emplace(id, std::move(result));
    applied_order_.push_back(id);
  }
  return Status::Ok();
}

FileStoreNode::FileStoreNode(SimNet* net, std::string name,
                             std::vector<uint32_t> servers,
                             const FileStoreOptions& options)
    : net_(net),
      name_(std::move(name)),
      options_(options),
      read_gate_(options.read_concurrency, options.read_processing_us) {
  KvOptions kv = options_.kv;
  kv.use_wal = false;  // raft log provides durability
  group_ = std::make_unique<RaftGroup>(
      net_, name_, std::move(servers),
      [kv](ReplicaId) { return std::make_unique<FileStoreSm>(kv); },
      options_.raft);
}

Status FileStoreNode::Start() { return group_->Start(); }
void FileStoreNode::Stop() { group_->Stop(); }

NodeId FileStoreNode::ServiceNetId() const {
  RaftNode* leader = group_->Leader();
  return leader != nullptr ? leader->net_id() : group_->replica(0)->net_id();
}

const FileStoreSm* FileStoreNode::LeaderSm() const {
  RaftNode* leader = group_->Leader();
  if (leader != nullptr) {
    // Same linearizable-read rule as TafDB shards (see TafDbShard).
    (void)leader->ReadBarrier();
    return static_cast<const FileStoreSm*>(
        const_cast<FileStoreNode*>(this)->group_->state_machine(leader->id()));
  }
  return static_cast<const FileStoreSm*>(
      const_cast<FileStoreNode*>(this)->group_->state_machine(0));
}

void FileStoreNode::ReadProcessingGate() const {
  if (net_->options().mode != LatencyMode::kZero) {
    read_gate_.Charge();
  }
}

Status FileStoreNode::Propose(const FileStoreCommand& cmd) {
  Metrics().mutations->Add();
  FileStoreCommand stamped = cmd;
  stamped.request_id =
      (static_cast<uint64_t>(group_->replica(0)->net_id()) << 40) |
      request_seq_.fetch_add(1);
  auto result = group_->Propose(stamped.Encode());
  if (!result.ok()) return result.status();
  return PrimitiveResult::Decode(*result).status;
}

Status FileStoreNode::PutAttr(const InodeRecord& attr,
                              std::string piggyback_block) {
  FileStoreCommand cmd;
  cmd.kind = FileStoreCommand::Kind::kPutAttr;
  cmd.id = attr.id;
  cmd.attr = attr;
  cmd.data = std::move(piggyback_block);
  return Propose(cmd);
}

Status FileStoreNode::DeleteAttr(InodeId id) {
  FileStoreCommand cmd;
  cmd.kind = FileStoreCommand::Kind::kDeleteAttr;
  cmd.id = id;
  return Propose(cmd);
}

Status FileStoreNode::SetAttr(InodeId id, const UpdateSpec& update) {
  FileStoreCommand cmd;
  cmd.kind = FileStoreCommand::Kind::kSetAttr;
  cmd.id = id;
  cmd.update = update;
  return Propose(cmd);
}

StatusOr<InodeRecord> FileStoreNode::GetAttr(InodeId id) const {
  Metrics().attr_reads->Add();
  ReadProcessingGate();
  auto value = LeaderSm()->kv().Get(FileStoreSm::AttrKey(id));
  if (!value.ok()) return value.status();
  return InodeRecord::DecodeValue(InodeKey::AttrRecord(id), *value);
}

Status FileStoreNode::WriteBlock(InodeId id, uint64_t index, std::string data,
                                 uint64_t mtime_ts) {
  FileStoreCommand cmd;
  cmd.kind = FileStoreCommand::Kind::kWriteBlock;
  cmd.id = id;
  cmd.block_index = index;
  cmd.update.key = InodeKey::AttrRecord(id);
  cmd.update.size_delta = static_cast<int64_t>(data.size());
  cmd.update.lww.mtime = mtime_ts;
  cmd.update.lww.ts = mtime_ts;
  cmd.data = std::move(data);
  return Propose(cmd);
}

StatusOr<std::string> FileStoreNode::ReadBlock(InodeId id,
                                               uint64_t index) const {
  Metrics().block_reads->Add();
  ReadProcessingGate();
  return LeaderSm()->kv().Get(FileStoreSm::BlockKey(id, index));
}

Status FileStoreNode::Unref(InodeId id) {
  FileStoreCommand cmd;
  cmd.kind = FileStoreCommand::Kind::kUnref;
  cmd.id = id;
  return Propose(cmd);
}

Status FileStoreNode::DeleteFile(InodeId id) {
  FileStoreCommand cmd;
  cmd.kind = FileStoreCommand::Kind::kDeleteFile;
  cmd.id = id;
  return Propose(cmd);
}

Status FileStoreNode::Stage(TxnId txn, FileStoreCommand cmd) {
  MutexLock lock(staged_mu_);
  staged_[txn] = std::move(cmd);
  return Status::Ok();
}

Status FileStoreNode::Prepare(TxnId txn) {
  FileStoreCommand inner;
  {
    MutexLock lock(staged_mu_);
    auto it = staged_.find(txn);
    if (it == staged_.end()) return Status::NotFound("nothing staged");
    inner = it->second;
  }
  FileStoreCommand cmd;
  cmd.kind = FileStoreCommand::Kind::kPrepare;
  cmd.txn = txn;
  cmd.data = inner.Encode();
  return Propose(cmd);
}

Status FileStoreNode::Commit(TxnId txn) {
  {
    MutexLock lock(staged_mu_);
    staged_.erase(txn);
  }
  FileStoreCommand cmd;
  cmd.kind = FileStoreCommand::Kind::kCommitTxn;
  cmd.txn = txn;
  return Propose(cmd);
}

Status FileStoreNode::Abort(TxnId txn) {
  {
    MutexLock lock(staged_mu_);
    staged_.erase(txn);
  }
  FileStoreCommand cmd;
  cmd.kind = FileStoreCommand::Kind::kAbortTxn;
  cmd.txn = txn;
  (void)Propose(cmd);
  return Status::Ok();
}

std::vector<std::pair<LogIndex, FileStoreCommand>>
FileStoreNode::ReadCommittedSince(LogIndex from, size_t max) const {
  RaftNode* leader = group_->Leader();
  RaftNode* source =
      leader != nullptr ? leader
                        : const_cast<FileStoreNode*>(this)->group_->replica(0);
  std::vector<std::pair<LogIndex, FileStoreCommand>> out;
  for (auto& [index, raw] : source->ReadCommittedSince(from, max)) {
    auto cmd = FileStoreCommand::Decode(raw);
    if (cmd.ok()) {
      out.emplace_back(index, std::move(cmd).value());
    }
  }
  return out;
}

FileStoreCluster::FileStoreCluster(SimNet* net, std::vector<uint32_t> servers,
                                   FileStoreOptions options)
    : net_(net), options_(std::move(options)) {
  size_t server_cursor = 0;
  auto next_server = [&]() {
    uint32_t s = servers.empty() ? 0 : servers[server_cursor % servers.size()];
    server_cursor++;
    return s;
  };
  for (size_t i = 0; i < options_.num_nodes; i++) {
    std::vector<uint32_t> replica_servers;
    for (size_t r = 0; r < options_.replicas; r++) {
      replica_servers.push_back(next_server());
    }
    nodes_.push_back(std::make_unique<FileStoreNode>(
        net_, "filestore-n" + std::to_string(i), std::move(replica_servers),
        options_));
  }
  async_pool_ = std::make_unique<ThreadPool>(8, "fs-async");
}

Status FileStoreCluster::Start() {
  for (auto& node : nodes_) {
    CFS_RETURN_IF_ERROR(node->Start());
  }
  for (auto& node : nodes_) {
    auto leader = node->raft_group()->WaitForLeader();
    if (!leader.ok()) return leader.status();
  }
  CFS_LOG(kInfo) << "filestore started: " << nodes_.size() << " nodes";
  return Status::Ok();
}

void FileStoreCluster::Stop() {
  async_pool_->Shutdown();
  for (auto& node : nodes_) {
    node->Stop();
  }
}

void FileStoreCluster::DeleteAttrAsync(InodeId id) {
  FileStoreNode* node = NodeFor(id);
  async_pool_->Submit([node, id] { (void)node->DeleteFile(id); });
}

void FileStoreCluster::UnrefAsync(InodeId id) {
  FileStoreNode* node = NodeFor(id);
  async_pool_->Submit([node, id] { (void)node->Unref(id); });
}

void FileStoreCluster::DrainAsync() { async_pool_->Wait(); }

}  // namespace cfs
