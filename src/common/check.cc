#include "src/common/check.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/logging.h"

namespace cfs {
namespace internal {

void CheckFailed(const char* expr, const char* file, int line,
                 const char* note) {
  std::string message = std::string("CFS_CHECK failed: ") + expr;
  if (note != nullptr) {
    message += " (";
    message += note;
    message += ")";
  }
  // kError so the report survives any runtime level filter.
  Logger::Get().Write(LogLevel::kError, file, line, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace cfs
