// Lightweight Status / StatusOr error-propagation types used across CFS.
//
// The error vocabulary deliberately mirrors POSIX file-system error classes
// (ENOENT, EEXIST, ENOTDIR, ...) plus the distributed-system failure modes
// the paper's protocols must surface (kConflict for lock/txn aborts,
// kUnavailable for partitions, kNotLeader for raft redirects).

#ifndef CFS_COMMON_STATUS_H_
#define CFS_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "src/common/check.h"

namespace cfs {

enum class ErrorCode {
  kOk = 0,
  kNotFound,        // ENOENT
  kAlreadyExists,   // EEXIST
  kNotADirectory,   // ENOTDIR
  kIsADirectory,    // EISDIR
  kNotEmpty,        // ENOTEMPTY
  kInvalidArgument, // EINVAL
  kPermissionDenied,// EACCES
  kCrossDevice,     // EXDEV (would-be orphan loop etc.)
  kConflict,        // transaction/lock conflict, retryable
  kAborted,         // explicitly aborted (2PC, failed predicate)
  kTimeout,         // lock or rpc deadline exceeded
  kUnavailable,     // node down / partitioned
  kNotLeader,       // raft: retry against leader
  kIoError,         // wal/kv corruption or write failure
  kCorruption,      // checksum mismatch
  kUnimplemented,
  kInternal,
};

std::string_view ErrorCodeName(ErrorCode code);

// [[nodiscard]]: a dropped Status is a swallowed error. Enforced by
// -Werror=unused-result (CMakeLists.txt) and a lint.sh grep; deliberate
// drops must say so with a (void) cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") {
    return Status(ErrorCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = "") {
    return Status(ErrorCode::kAlreadyExists, std::move(m));
  }
  static Status NotADirectory(std::string m = "") {
    return Status(ErrorCode::kNotADirectory, std::move(m));
  }
  static Status IsADirectory(std::string m = "") {
    return Status(ErrorCode::kIsADirectory, std::move(m));
  }
  static Status NotEmpty(std::string m = "") {
    return Status(ErrorCode::kNotEmpty, std::move(m));
  }
  static Status InvalidArgument(std::string m = "") {
    return Status(ErrorCode::kInvalidArgument, std::move(m));
  }
  static Status PermissionDenied(std::string m = "") {
    return Status(ErrorCode::kPermissionDenied, std::move(m));
  }
  static Status CrossDevice(std::string m = "") {
    return Status(ErrorCode::kCrossDevice, std::move(m));
  }
  static Status Conflict(std::string m = "") {
    return Status(ErrorCode::kConflict, std::move(m));
  }
  static Status Aborted(std::string m = "") {
    return Status(ErrorCode::kAborted, std::move(m));
  }
  static Status Timeout(std::string m = "") {
    return Status(ErrorCode::kTimeout, std::move(m));
  }
  static Status Unavailable(std::string m = "") {
    return Status(ErrorCode::kUnavailable, std::move(m));
  }
  static Status NotLeader(std::string m = "") {
    return Status(ErrorCode::kNotLeader, std::move(m));
  }
  static Status IoError(std::string m = "") {
    return Status(ErrorCode::kIoError, std::move(m));
  }
  static Status Corruption(std::string m = "") {
    return Status(ErrorCode::kCorruption, std::move(m));
  }
  static Status Unimplemented(std::string m = "") {
    return Status(ErrorCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m = "") {
    return Status(ErrorCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == ErrorCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == ErrorCode::kAlreadyExists; }
  bool IsConflict() const { return code_ == ErrorCode::kConflict; }
  bool IsRetryable() const {
    return code_ == ErrorCode::kConflict || code_ == ErrorCode::kTimeout ||
           code_ == ErrorCode::kNotLeader || code_ == ErrorCode::kUnavailable;
  }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// A value-or-error holder in the spirit of absl::StatusOr.
// [[nodiscard]] for the same reason as Status: dropping one swallows the
// error *and* the value.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CFS_CHECK_MSG(!status_.ok(),
                  "StatusOr constructed from OK status w/o value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CFS_CHECK(ok());
    return *value_;
  }
  T& value() & {
    CFS_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    CFS_CHECK(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cfs

// Early-return helpers. Kept as macros (the one idiomatic use of macros in
// status-based codebases) so call sites stay single-line.
#define CFS_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::cfs::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

#define CFS_ASSIGN_OR_RETURN(lhs, expr)    \
  auto CFS_CONCAT_(_sor_, __LINE__) = (expr);            \
  if (!CFS_CONCAT_(_sor_, __LINE__).ok())                \
    return CFS_CONCAT_(_sor_, __LINE__).status();        \
  lhs = std::move(CFS_CONCAT_(_sor_, __LINE__)).value()

#define CFS_CONCAT_INNER_(a, b) a##b
#define CFS_CONCAT_(a, b) CFS_CONCAT_INNER_(a, b)

#endif  // CFS_COMMON_STATUS_H_
