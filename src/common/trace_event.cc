#include "src/common/trace_event.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include "src/common/clock.h"
#include "src/common/simtime.h"
#include "src/common/metrics.h"

namespace cfs {
namespace trace {

namespace {

// Virtual microseconds during a simulated run (so sim-mode spans carry
// virtual timestamps), steady-clock microseconds otherwise.
int64_t NowUs() { return simtime::NowNanosOrReal() / 1000; }

// trace_id / span_id allocators. Global atomics: ids must be unique across
// threads and cheap; contention is one fetch_add per op / per span, and
// spans are only allocated while the thread is actively tracing.
std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint64_t> g_next_span_id{1};

void CopyName(char (&dst)[23], const char* src) {
  size_t n = 0;
  if (src != nullptr) {
    for (; n + 1 < sizeof(dst) && src[n] != '\0'; n++) dst[n] = src[n];
  }
  dst[n] = '\0';
}

// Per-thread recording state. The ring is written and drained exclusively
// by the owning thread — "lock-free" in the strongest sense: no shared
// write at all on the record path. Config (capacity) is latched at the
// first recorded event of each op, so Configure between runs is safe.
struct Tls {
  std::vector<Event> ring;
  uint64_t head = 0;         // monotonically increasing write position
  uint64_t op_start_head = 0;
  uint64_t op_dropped_base = 0;

  bool active = false;
  uint64_t trace_id = 0;
  uint64_t current_parent = 0;  // span id new events are parented under
  uint64_t root_span = 0;
  int64_t op_start_us = 0;
  uint32_t current_node = kNoNode;
  uint64_t ops_begun = 0;  // per-thread head-sampling counter
  char op_name[48] = {};
};

Tls& tls() {
  thread_local Tls t;
  return t;
}

void Emit(Tls& t, const Event& e) {
  if (t.ring.empty()) return;  // BeginOp sizes the ring; empty = disabled
  t.ring[t.head % t.ring.size()] = e;
  t.head++;
}

}  // namespace

const char* CategoryName(Category category) {
  switch (category) {
    case Category::kOp:
      return "op";
    case Category::kResolve:
      return "resolve";
    case Category::kCache:
      return "cache";
    case Category::kLock:
      return "lock";
    case Category::kExec:
      return "exec";
    case Category::kTwoPc:
      return "2pc";
    case Category::kWal:
      return "wal";
    case Category::kRaft:
      return "raft";
    case Category::kRename:
      return "rename";
    case Category::kRpc:
      return "rpc";
    case Category::kGc:
      return "gc";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// TraceCollector

TraceCollector& TraceCollector::Global() {
  static TraceCollector* const collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Configure(const TraceOptions& options) {
  bool register_probe = false;
  {
    MutexLock lock(mu_);
    options_ = options;
    if (options_.ring_capacity == 0) options_.ring_capacity = 1;
    enabled_.store(options.enabled, std::memory_order_release);
    register_probe = options.enabled && probe_handle_ == 0;
  }
  if (register_probe) {
    // Probe is counters-only; registered outside mu_ so the lock order
    // stays metrics.registry(87) > trace.collector(82) everywhere.
    uint64_t handle = MetricsRegistry::Global().RegisterProbe("trace", [this] {
      Stats s = stats();
      std::vector<std::pair<std::string, int64_t>> samples;
      samples.emplace_back("ops_seen", static_cast<int64_t>(s.ops_seen));
      samples.emplace_back("ops_retained",
                           static_cast<int64_t>(s.ops_retained));
      samples.emplace_back("ops_slow", static_cast<int64_t>(s.ops_slow));
      samples.emplace_back("events_dropped",
                           static_cast<int64_t>(s.events_dropped));
      samples.emplace_back("retained_full_drops",
                           static_cast<int64_t>(s.retained_full_drops));
      return samples;
    });
    MutexLock lock(mu_);
    probe_handle_ = handle;
  }
}

uint32_t TraceCollector::InternNode(const std::string& name) {
  MutexLock lock(mu_);
  for (size_t i = 0; i < node_names_.size(); i++) {
    if (node_names_[i] == name) return static_cast<uint32_t>(i);
  }
  node_names_.push_back(name);
  return static_cast<uint32_t>(node_names_.size() - 1);
}

std::string TraceCollector::NodeName(uint32_t node) const {
  MutexLock lock(mu_);
  if (node >= node_names_.size()) return "";
  return node_names_[node];
}

void TraceCollector::Retain(OpRecord&& record, bool head_sampled, bool slow) {
  MutexLock lock(mu_);
  stats_.events_dropped += record.dropped;
  if (slow) {
    stats_.ops_slow++;
    if (slow_ops_.size() < options_.max_slow_ops) {
      slow_ops_.push_back(std::move(record));
      return;
    }
    // Full: keep the slowest ops seen — replace the current fastest if
    // this op is slower.
    size_t fastest = 0;
    for (size_t i = 1; i < slow_ops_.size(); i++) {
      if (slow_ops_[i].total_us < slow_ops_[fastest].total_us) fastest = i;
    }
    if (record.total_us > slow_ops_[fastest].total_us) {
      slow_ops_[fastest] = std::move(record);
    }
    return;
  }
  if (head_sampled) {
    if (retained_.size() < options_.max_retained_ops) {
      stats_.ops_retained++;
      retained_.push_back(std::move(record));
    } else {
      stats_.retained_full_drops++;
    }
  }
}

std::vector<OpRecord> TraceCollector::SnapshotRetained() const {
  MutexLock lock(mu_);
  return retained_;
}

std::vector<OpRecord> TraceCollector::SnapshotSlowOps() const {
  std::vector<OpRecord> out;
  {
    MutexLock lock(mu_);
    out = slow_ops_;
  }
  std::sort(out.begin(), out.end(), [](const OpRecord& a, const OpRecord& b) {
    return a.total_us > b.total_us;
  });
  return out;
}

TraceCollector::Stats TraceCollector::stats() const {
  MutexLock lock(mu_);
  Stats s = stats_;
  s.ops_seen = ops_seen_.load(std::memory_order_relaxed);
  return s;
}

void TraceCollector::Reset() {
  MutexLock lock(mu_);
  retained_.clear();
  slow_ops_.clear();
  stats_ = Stats{};
  ops_seen_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Perfetto export

namespace {

void AppendEscaped(std::string* out, const char* s) {
  out->push_back('"');
  for (; *s != '\0'; s++) {
    char c = *s;
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Perfetto pids: 1 = unattributed (client / coordinator-local work),
// node id + 2 otherwise.
int64_t PidOf(uint32_t node) {
  return node == kNoNode ? 1 : static_cast<int64_t>(node) + 2;
}

void AppendEvent(std::string* out, const OpRecord& op, const Event& e,
                 int64_t tid) {
  char buf[256];
  out->append("{\"name\":");
  AppendEscaped(out, e.name);
  std::snprintf(buf, sizeof(buf),
                ",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%" PRId64
                ",\"dur\":%" PRId64 ",\"pid\":%" PRId64 ",\"tid\":%" PRId64
                ",\"args\":{\"trace_id\":%" PRIu64 ",\"span_id\":%" PRIu64
                ",\"parent_span_id\":%" PRIu64 "}},\n",
                CategoryName(e.category),
                e.type == EventType::kInstant ? "i" : "X", e.ts_us,
                e.type == EventType::kInstant ? int64_t{0} : e.dur_us,
                PidOf(e.node), tid, op.trace_id, e.span_id, e.parent_span_id);
  out->append(buf);
}

}  // namespace

std::string TraceCollector::DumpPerfettoJson() const {
  std::vector<OpRecord> ops = SnapshotRetained();
  std::vector<OpRecord> slow = SnapshotSlowOps();
  ops.insert(ops.end(), std::make_move_iterator(slow.begin()),
             std::make_move_iterator(slow.end()));

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Process-name metadata: one "process" per cluster node.
  std::vector<std::string> names;
  {
    MutexLock lock(mu_);
    names = node_names_;
  }
  char buf[128];
  out.append(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"client\"}},\n");
  for (size_t i = 0; i < names.size(); i++) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRId64
                  ",\"args\":{\"name\":",
                  PidOf(static_cast<uint32_t>(i)));
    out.append(buf);
    AppendEscaped(&out, names[i].c_str());
    out.append("}},\n");
  }
  // One tid per retained op keeps each op's spans on their own track (the
  // events of one op are single-threaded, so they nest cleanly there).
  int64_t tid = 0;
  for (const OpRecord& op : ops) {
    tid++;
    for (const Event& e : op.events) {
      AppendEvent(&out, op, e, tid);
    }
  }
  // Closing sentinel avoids trailing-comma bookkeeping above.
  out.append("{\"name\":\"trace_end\",\"ph\":\"i\",\"ts\":0,\"pid\":1,"
             "\"tid\":0,\"s\":\"g\"}\n]}\n");
  return out;
}

bool TraceCollector::WritePerfettoJson(const std::string& path) const {
  std::string json = DumpPerfettoJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

// ---------------------------------------------------------------------------
// Thread-local recording

bool Active() { return tls().active; }

uint64_t CurrentTraceId() { return tls().active ? tls().trace_id : 0; }

uint64_t CurrentParentSpan() {
  return tls().active ? tls().current_parent : 0;
}

void BeginOp(const char* name) {
  TraceCollector& collector = TraceCollector::Global();
  if (!collector.enabled()) return;
  // Both retention triggers off means no op can ever be kept, so don't
  // record at all: "enabled with sampling disabled" costs the same one
  // thread-local test per span as disabled (the bench_compare.sh
  // tracing-tax target relies on this).
  if (collector.options().sample_every == 0 &&
      collector.options().slow_op_threshold_us <= 0) {
    return;
  }
  Tls& t = tls();
  if (t.active) return;  // nested op brackets: outermost wins
  size_t capacity = collector.options().ring_capacity;
  if (t.ring.size() != capacity) {
    t.ring.assign(capacity, Event{});
    t.head = 0;
  }
  t.active = true;
  t.trace_id = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  t.root_span = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  t.current_parent = t.root_span;
  t.op_start_us = NowUs();
  t.op_start_head = t.head;
  t.current_node = kNoNode;
  t.ops_begun++;
  std::snprintf(t.op_name, sizeof(t.op_name), "%s",
                name != nullptr ? name : "op");
}

void FinishOp(int64_t total_us) {
  Tls& t = tls();
  if (!t.active) return;
  t.active = false;
  TraceCollector& collector = TraceCollector::Global();
  const TraceOptions& options = collector.options();
  if (total_us < 0) total_us = NowUs() - t.op_start_us;

  bool head_sampled = options.sample_every != 0 &&
                      (t.ops_begun - 1) % options.sample_every == 0;
  bool slow = options.slow_op_threshold_us > 0 &&
              total_us >= options.slow_op_threshold_us;
  collector.ops_seen_.fetch_add(1, std::memory_order_relaxed);
  if (!collector.enabled() || (!head_sampled && !slow)) {
    t.current_parent = 0;
    return;  // discard: O(1), the ring simply gets overwritten
  }

  // Root op span closes the record.
  Event root;
  root.span_id = t.root_span;
  root.parent_span_id = 0;
  root.ts_us = t.op_start_us;
  root.dur_us = total_us;
  root.node = kNoNode;
  root.category = Category::kOp;
  root.phase = kNoPhase;
  CopyName(root.name, t.op_name);
  Emit(t, root);

  OpRecord record;
  record.trace_id = t.trace_id;
  record.name = t.op_name;
  record.start_us = t.op_start_us;
  record.total_us = total_us;
  record.slow = slow;
  uint64_t emitted = t.head - t.op_start_head;
  uint64_t kept = std::min<uint64_t>(emitted, t.ring.size());
  record.dropped = static_cast<uint32_t>(emitted - kept);
  record.events.reserve(kept);
  for (uint64_t i = t.head - kept; i < t.head; i++) {
    record.events.push_back(t.ring[i % t.ring.size()]);
  }
  t.current_parent = 0;
  collector.Retain(std::move(record), head_sampled, slow);
}

ScopedSpan::ScopedSpan(Category category, const char* name, uint8_t phase)
    : active_(tls().active), category_(category), phase_(phase), name_(name) {
  if (!active_) return;
  Tls& t = tls();
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  saved_parent_ = t.current_parent;
  t.current_parent = span_id_;
  start_us_ = NowUs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tls& t = tls();
  t.current_parent = saved_parent_;
  Event e;
  e.span_id = span_id_;
  e.parent_span_id = saved_parent_;
  e.ts_us = start_us_;
  e.dur_us = NowUs() - start_us_;
  e.node = t.current_node;
  e.category = category_;
  e.phase = phase_;
  CopyName(e.name, name_);
  Emit(t, e);
}

void Instant(Category category, const char* name) {
  Tls& t = tls();
  if (!t.active) return;
  Event e;
  e.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  e.parent_span_id = t.current_parent;
  e.ts_us = NowUs();
  e.dur_us = 0;
  e.node = t.current_node;
  e.category = category;
  e.type = EventType::kInstant;
  e.phase = kNoPhase;
  CopyName(e.name, name);
  Emit(t, e);
}

void CompleteSpan(Category category, const char* name, int64_t dur_us,
                  uint8_t phase) {
  Tls& t = tls();
  if (!t.active) return;
  if (dur_us < 0) dur_us = 0;
  int64_t end = NowUs();
  Event e;
  e.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  e.parent_span_id = t.current_parent;
  e.ts_us = end - dur_us;
  e.dur_us = dur_us;
  e.node = t.current_node;
  e.category = category;
  e.phase = phase;
  CopyName(e.name, name);
  Emit(t, e);
}

uint64_t PushSpan(uint64_t* saved_parent) {
  Tls& t = tls();
  if (!t.active) return 0;
  uint64_t span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  *saved_parent = t.current_parent;
  t.current_parent = span_id;
  return span_id;
}

void PopSpan(uint64_t span_id, uint64_t saved_parent, Category category,
             const char* name, uint8_t phase, int64_t ts_us, int64_t dur_us) {
  Tls& t = tls();
  if (!t.active) return;
  t.current_parent = saved_parent;
  Event e;
  e.span_id = span_id;
  e.parent_span_id = saved_parent;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.node = t.current_node;
  e.category = category;
  e.phase = phase;
  CopyName(e.name, name);
  Emit(t, e);
}

OpScope::OpScope(const char* name) {
  active_ = TraceCollector::Global().enabled() && !tls().active;
  if (!active_) return;
  start_us_ = NowUs();
  BeginOp(name);
}

OpScope::~OpScope() {
  if (!active_) return;
  FinishOp(NowUs() - start_us_);
}

// ---------------------------------------------------------------------------
// Node attribution

NodeScope::NodeScope(uint32_t node) : saved_(tls().current_node) {
  tls().current_node = node;
}

NodeScope::~NodeScope() { tls().current_node = saved_; }

uint32_t CurrentNode() { return tls().current_node; }

void RpcEvent(const char* from, const char* to, uint32_t to_node,
              int64_t injected_us) {
  Tls& t = tls();
  if (!t.active) return;
  if (injected_us < 0) injected_us = 0;
  int64_t end = NowUs();
  Event e;
  e.span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  e.parent_span_id = t.current_parent;
  e.ts_us = end - injected_us;
  e.dur_us = injected_us;
  e.node = to_node;
  e.category = Category::kRpc;
  e.phase = static_cast<uint8_t>(Phase::kRpc);
  std::snprintf(e.name, sizeof(e.name), "%.10s>%.10s",
                from != nullptr ? from : "?", to != nullptr ? to : "?");
  Emit(t, e);
}

// ---------------------------------------------------------------------------
// Analysis helpers

std::vector<int64_t> PhaseUsFromEvents(const std::vector<Event>& events,
                                       size_t num_phases) {
  // Per phase, the union length of its spans' [ts, end) intervals. The
  // events of one op come from one thread, so same-phase spans either nest
  // or are disjoint; the union is exactly the outermost spans' wall time —
  // the OpTrace accumulation rule.
  std::vector<int64_t> out(num_phases, 0);
  std::vector<std::vector<std::pair<int64_t, int64_t>>> intervals(num_phases);
  for (const Event& e : events) {
    if (e.phase == kNoPhase || e.phase >= num_phases) continue;
    if (e.type != EventType::kComplete) continue;
    intervals[e.phase].emplace_back(e.ts_us, e.end_us());
  }
  for (size_t p = 0; p < num_phases; p++) {
    auto& iv = intervals[p];
    std::sort(iv.begin(), iv.end());
    int64_t covered_until = INT64_MIN;
    for (const auto& [begin, end] : iv) {
      if (begin >= covered_until) {
        out[p] += end - begin;
        covered_until = end;
      } else if (end > covered_until) {
        out[p] += end - covered_until;
        covered_until = end;
      }
    }
  }
  return out;
}

std::string FormatOpTree(const OpRecord& record,
                         const TraceCollector& nodes) {
  // Index children by parent span id; order siblings by begin timestamp.
  std::map<uint64_t, std::vector<const Event*>> children;
  for (const Event& e : record.events) {
    children[e.parent_span_id].push_back(&e);
  }
  for (auto& [parent, list] : children) {
    std::sort(list.begin(), list.end(), [](const Event* a, const Event* b) {
      return a->ts_us != b->ts_us ? a->ts_us < b->ts_us
                                  : a->span_id < b->span_id;
    });
  }

  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s  total=%" PRId64 "us  trace_id=%" PRIu64 "%s%s\n",
                record.name.c_str(), record.total_us, record.trace_id,
                record.slow ? "  [slow]" : "",
                record.dropped > 0 ? "  [events dropped]" : "");
  out.append(buf);

  // Iterative DFS from the root op span(s) (parent 0).
  struct Frame {
    const Event* event;
    int depth;
  };
  std::vector<Frame> stack;
  auto push_children = [&](uint64_t span, int depth) {
    auto it = children.find(span);
    if (it == children.end()) return;
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      stack.push_back({*rit, depth});
    }
  };
  push_children(0, 1);
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Event& e = *f.event;
    out.append(static_cast<size_t>(f.depth) * 2, ' ');
    out.append(e.name[0] != '\0' ? e.name : CategoryName(e.category));
    if (e.type == EventType::kInstant) {
      std::snprintf(buf, sizeof(buf), "  @+%" PRId64 "us",
                    e.ts_us - record.start_us);
    } else {
      std::snprintf(buf, sizeof(buf), "  %" PRId64 "us", e.dur_us);
    }
    out.append(buf);
    if (e.node != kNoNode) {
      std::string node_name = nodes.NodeName(e.node);
      if (!node_name.empty()) {
        out.append("  [");
        out.append(node_name);
        out.push_back(']');
      }
    }
    out.push_back('\n');
    if (f.depth < 32) push_children(e.span_id, f.depth + 1);
  }
  return out;
}

}  // namespace trace
}  // namespace cfs
