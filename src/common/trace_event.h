// Causal distributed tracing (paper §5.2/§5.7 attribution, ROADMAP items 3
// and 5): where OpTrace (src/common/metrics.h) answers "how much time did
// this op spend per phase", this layer answers "WHICH shard, WHICH RPC
// edge, WHICH lock queue made this op slow" — the per-op evidence Fig 4 and
// Fig 13 aggregate away.
//
//   TraceCollector — process-wide sink. Each thread records timestamped
//     span events into its own lock-free ring buffer (single producer, the
//     owning thread; no shared-state write on the hot path). At op end the
//     owning thread drains its ring into the collector under a mutex, but
//     only for ops the sampling policy retains, so the common case is a
//     ring-index reset.
//
//   Events carry {trace_id, span_id, parent_span_id, category, phase,
//     name, node}. `node` is an interned cluster-node identity stamped by
//     SimNet: RPC handlers run on the caller's thread, so propagation of
//     the trace context across "the network" is the thread itself, and
//     SimNet::Call/Multicast push the destination node around the handler
//     (NodeScope). A rename's 2PC fan-out, Raft appends, WAL fsyncs and
//     renamer dirlock waits therefore appear as one causally-linked span
//     tree spanning shards, under one trace_id.
//
//   Sampling policy — two independent retention triggers:
//     * head sampling: every `sample_every`-th op beginning on a thread is
//       retained (0 disables head sampling entirely);
//     * tail capture: an op whose total latency reaches
//       `slow_op_threshold_us` is ALWAYS retained into the bounded slow-op
//       log (which keeps the slowest ops seen, evicting the fastest), even
//       if head sampling skipped it — events are recorded for every op
//       while tracing is enabled precisely so the tail is reconstructable.
//     With `enabled == false` (the default), or with both triggers off
//     (sample_every == 0 and slow_op_threshold_us == 0, when nothing could
//     ever be retained), the whole layer costs one thread-local boolean
//     test per span.
//
//   Export: DumpPerfettoJson() emits Chrome/Perfetto trace-event JSON
//     (load in https://ui.perfetto.dev) — one "process" per cluster node,
//     one track per retained op, plus span args {trace_id, span_id,
//     parent_span_id}. FormatOpTree() renders the same tree as indented
//     text for terminals (examples/trace_dump.cpp, slow-op logs).
//
// The categories below are cross-checked against DESIGN.md §10's
// observability table by scripts/docs_lint.sh, like lock classes.

#ifndef CFS_COMMON_TRACE_EVENT_H_
#define CFS_COMMON_TRACE_EVENT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"

namespace cfs {
namespace trace {

// Interned cluster-node identity ("which shard"). kNoNode = not attributed
// (client/coordinator-local work).
inline constexpr uint32_t kNoNode = UINT32_MAX;
// Event phase byte for spans that do not map to an OpTrace phase.
inline constexpr uint8_t kNoPhase = UINT8_MAX;

// Coarse span taxonomy (the Perfetto "cat" field). Keep in sync with
// CategoryName() and DESIGN.md §10 (docs_lint.sh cross-checks both).
enum class Category : uint8_t {
  kOp = 0,   // root span of one operation
  kResolve,  // path resolution
  kCache,    // dentry cache consult / invalidation
  kLock,     // lock acquire/release/queue wait
  kExec,     // shard-side execution
  kTwoPc,    // 2PC prepare/decision fan-out
  kWal,      // WAL append + fsync
  kRaft,     // raft proposal/replication wait
  kRename,   // renamer coordination
  kRpc,      // one network round trip (SimNet edge)
  kGc,       // background GC scan
};
inline constexpr size_t kNumCategories = static_cast<size_t>(Category::kGc) + 1;
const char* CategoryName(Category category);

enum class EventType : uint8_t {
  kComplete,  // a span with begin timestamp and duration
  kInstant,   // a point event (dur 0)
};

// One trace event. Fixed-size (64 bytes) so the per-thread ring is a flat
// array; names are truncated into the inline buffer.
struct Event {
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root (the op span's parent)
  int64_t ts_us = 0;            // monotonic clock, microseconds
  int64_t dur_us = 0;
  uint32_t node = kNoNode;
  Category category = Category::kOp;
  EventType type = EventType::kComplete;
  uint8_t phase = kNoPhase;  // cfs::Phase value, or kNoPhase
  char name[23] = {};        // NUL-terminated, truncated

  int64_t end_us() const { return ts_us + dur_us; }
};
static_assert(sizeof(Event) == 64, "Event should stay one cache line");

// One retained operation: its identity plus every event recorded on the
// owning thread between begin and finish, in emission order (children
// complete before parents, so the last event is the root op span).
struct OpRecord {
  uint64_t trace_id = 0;
  std::string name;
  int64_t start_us = 0;
  int64_t total_us = 0;
  bool slow = false;       // retained by the tail-capture trigger
  uint32_t dropped = 0;    // events lost to ring wrap-around during the op
  std::vector<Event> events;
};

struct TraceOptions {
  bool enabled = false;
  // Head sampling: retain every Nth op per thread (1 = all, 0 = none).
  uint32_t sample_every = 64;
  // Tail capture: ops with total latency >= threshold always land in the
  // slow-op log (0 disables tail capture).
  int64_t slow_op_threshold_us = 20000;
  // Per-thread ring capacity in events; an op emitting more than this
  // loses its oldest events (counted in OpRecord::dropped).
  size_t ring_capacity = 4096;
  // Bounded stores: head-sampled ops stop being retained when full; the
  // slow-op log keeps the slowest ops seen, evicting the fastest.
  size_t max_retained_ops = 512;
  size_t max_slow_ops = 64;
};

class TraceCollector {
 public:
  // Process-wide collector (intentionally leaked, like MetricsRegistry).
  static TraceCollector& Global();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // Installs the policy. Enabling registers a "trace" metrics probe
  // (ops_seen / ops_retained / slow ops / drop counters) on the global
  // MetricsRegistry. Not safe to race with active recording threads: call
  // before the workload starts (benches) or between runs.
  void Configure(const TraceOptions& options);
  const TraceOptions& options() const { return options_; }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Interns a cluster-node name, returning a stable id for Event::node.
  // Same name -> same id, so identities survive SimNet teardown.
  uint32_t InternNode(const std::string& name);
  std::string NodeName(uint32_t node) const;  // "" for kNoNode/unknown

  // Snapshots (copies) of the retained stores.
  std::vector<OpRecord> SnapshotRetained() const;
  // Slow-op log, slowest first.
  std::vector<OpRecord> SnapshotSlowOps() const;

  // Chrome/Perfetto trace-event JSON over retained + slow ops.
  std::string DumpPerfettoJson() const;
  // Convenience: DumpPerfettoJson() to a file; false on IO error.
  bool WritePerfettoJson(const std::string& path) const;

  // Drops retained/slow ops and zeroes the policy counters (node intern
  // table and configuration survive).
  void Reset();

  struct Stats {
    uint64_t ops_seen = 0;
    uint64_t ops_retained = 0;   // head-sampled ops stored
    uint64_t ops_slow = 0;       // tail-captured ops stored
    uint64_t events_dropped = 0; // ring wrap-arounds
    uint64_t retained_full_drops = 0;  // head-sampled but store was full
  };
  Stats stats() const;

 private:
  friend class ScopedSpan;
  friend class OpScope;
  friend void BeginOp(const char* name);
  friend void FinishOp(int64_t total_us);

  TraceCollector() = default;
  void Retain(OpRecord&& record, bool head_sampled, bool slow)
      EXCLUDES(mu_);

  std::atomic<bool> enabled_{false};
  // Bumped once per finished op on the fast path; everything else only
  // moves when the sampling policy retains an op.
  std::atomic<uint64_t> ops_seen_{0};
  // Written only by Configure (under mu_); the unlocked options() accessor
  // is setup-time read-only. tsa-coverage: allow(configure-then-read)
  TraceOptions options_;

  mutable Mutex mu_{"trace.collector", 82};
  std::vector<std::string> node_names_ GUARDED_BY(mu_);
  std::vector<OpRecord> retained_ GUARDED_BY(mu_);
  std::vector<OpRecord> slow_ops_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
  uint64_t probe_handle_ GUARDED_BY(mu_) = 0;
};

// ---------------------------------------------------------------------------
// Thread-local recording API. All functions are cheap no-ops while the
// collector is disabled or the thread has no active op.

// True while the calling thread is inside a BeginOp/FinishOp bracket with
// the collector enabled (i.e. span emission will record something).
bool Active();

// Brackets one operation. BeginOp starts a new trace_id, roots the span
// stack, and snapshots the ring position; FinishOp emits the root op span,
// applies the sampling policy, and either drains the ring into the
// collector or discards the op's events in O(1). OpTrace::Begin/Finish
// call these, so workload-driven ops are traced with zero plumbing.
void BeginOp(const char* name);
void FinishOp(int64_t total_us);

// The active op's trace id (0 when not active).
uint64_t CurrentTraceId();
// The span that newly emitted events will be parented under (0 = root).
uint64_t CurrentParentSpan();

// RAII causal span. Unlike TraceSpan's same-phase guard, EVERY ScopedSpan
// emits an event — nested same-category spans are what make the tree (the
// recursion of path resolution, a raft append inside a shard exec).
class ScopedSpan {
 public:
  // `name` must outlive the span (string literals).
  ScopedSpan(Category category, const char* name, uint8_t phase = kNoPhase);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  Category category_;
  uint8_t phase_;
  const char* name_;
  uint64_t span_id_ = 0;
  uint64_t saved_parent_ = 0;
  int64_t start_us_ = 0;
};

// A point event under the current parent span.
void Instant(Category category, const char* name);

// A span whose duration was measured by the caller (e.g. the lock
// manager's computed in-queue wait): recorded as [end - dur, end] ending
// now, parented under the current span.
void CompleteSpan(Category category, const char* name, int64_t dur_us,
                  uint8_t phase = kNoPhase);

// Low-level span hooks for cfs::TraceSpan (metrics.cc), which must share
// ONE clock read between the OpTrace phase accumulator and the emitted
// event so span-derived phase sums equal the accumulator sums. PushSpan
// allocates a span id and parents subsequent events under it (the previous
// parent lands in *saved_parent); PopSpan restores the parent and records
// the completed event with the caller's timestamps. PushSpan returns 0
// when the thread is not tracing (skip the PopSpan).
uint64_t PushSpan(uint64_t* saved_parent);
void PopSpan(uint64_t span_id, uint64_t saved_parent, Category category,
             const char* name, uint8_t phase, int64_t ts_us, int64_t dur_us);

// Root bracket for background work that is not an OpTrace op (GC cycles):
// BeginOp at construction, FinishOp(elapsed) at destruction.
class OpScope {
 public:
  explicit OpScope(const char* name);
  ~OpScope();

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  bool active_;
  int64_t start_us_ = 0;
};

// ---------------------------------------------------------------------------
// Node attribution (SimNet).

// Pushes `node` (an InternNode id) as the calling thread's current cluster
// node for the scope's lifetime; spans emitted inside are attributed to it.
class NodeScope {
 public:
  explicit NodeScope(uint32_t node);
  ~NodeScope();

  NodeScope(const NodeScope&) = delete;
  NodeScope& operator=(const NodeScope&) = delete;

 private:
  uint32_t saved_;
};

uint32_t CurrentNode();

// Emits the kRpc span for one round trip: `from`/`to` are node names (used
// for the span label, truncated), `to_node` the interned destination,
// `injected_us` the injected round-trip latency (the span's duration,
// ending now). No-op when the thread is not actively tracing.
void RpcEvent(const char* from, const char* to, uint32_t to_node,
              int64_t injected_us);

// ---------------------------------------------------------------------------
// Analysis helpers (report tools, tests).

// Per-phase microseconds derived from a retained op's span tree: for each
// phase byte, the length of the union of its spans' intervals. Matches the
// OpTrace accumulators' outermost-span-owns-the-wall-time rule, so
// span-derived phase shares can be cross-checked against the Fig 13 phase
// accumulators (they are computed from the same clock reads).
std::vector<int64_t> PhaseUsFromEvents(const std::vector<Event>& events,
                                       size_t num_phases);

// Indented-text rendering of one op's span tree:
//   create  1234us  trace_id=7
//     resolve  310us
//       rpc client#0>tafdb.shard1  152us  [tafdb.shard1]
// Children are ordered by begin timestamp.
std::string FormatOpTree(const OpRecord& record, const TraceCollector& nodes);

}  // namespace trace
}  // namespace cfs

#endif  // CFS_COMMON_TRACE_EVENT_H_
