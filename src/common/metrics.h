// Unified observability layer (paper §2.2 / §5.7): every figure in the
// reproduction is an *attribution* claim — Fig 4 says locking eats
// 52.91–93.86% of HopsFS request time, Fig 13 says which optimization bought
// which share back. This header is the single source of truth for those
// numbers:
//
//   MetricsRegistry — process-wide named counters, gauges and latency
//     histograms, plus dump-time probes for subsystems that keep their own
//     state (e.g. SimNet's per-edge tables). Text and JSON exposition.
//
//   OpTrace / TraceSpan — a thread-local per-operation trace. A client
//     thread brackets one metadata op with OpTrace::Begin()/Finish(); any
//     subsystem the op passes through (resolution, lock manager, WAL, raft,
//     2PC, renamer — services execute RPC handlers on the caller's thread,
//     see SimNet) stamps its phase with an RAII TraceSpan, without any
//     argument plumbing. Nested spans of the SAME phase count once (the
//     outermost span owns the wall time), so e.g. the lock manager's
//     in-queue wait nested inside an engine's lock-RPC span is not double
//     counted, and recursive path resolution charges resolve time once.
//
// Phase accumulators are plain thread-locals and are live even outside a
// Begin()/Finish() bracket, which keeps legacy accessors like
// LockManager::ThreadWaitMicros() working as pure delegates.

#ifndef CFS_COMMON_METRICS_H_
#define CFS_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/thread_annotations.h"

namespace cfs {

// ---------------------------------------------------------------------------
// Registry instruments

// Monotonically increasing event count. Lock-free; pointers handed out by
// the registry are stable for the process lifetime, so hot paths should
// resolve a counter once and cache the pointer.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous signed level (queue depth, in-flight ops).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Latency histogram safe for concurrent Record from many threads: stripes
// on the calling thread's identity over the shared log-bucketed Histogram.
class LatencyRecorder {
 public:
  LatencyRecorder() : striped_(16) {}

  void Record(int64_t value_us);
  // Folds an already-aggregated histogram in (end-of-run publication).
  void Merge(const Histogram& other) { striped_.Merge(other); }
  Histogram Snapshot() const { return striped_.Aggregate(); }
  void Reset() { striped_.Reset(); }

 private:
  StripedHistogram striped_;
};

// ---------------------------------------------------------------------------
// MetricsRegistry

class MetricsRegistry {
 public:
  // The process-wide default registry (intentionally leaked: background
  // threads may record during shutdown).
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name. Returned pointers remain valid for the
  // registry's lifetime; instruments are never erased.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  LatencyRecorder* GetHistogram(std::string_view name);

  // A probe is a dump-time callback contributing (key, value) samples from
  // a subsystem's internal state (e.g. SimNet per-edge call tables).
  // Returns a handle for Unregister; the owner must unregister before its
  // state dies. Probes run with the registry lock RELEASED (they take their
  // owner's locks — holding mu_ across them would order metrics.registry
  // before every probed subsystem's lock), so a probe registered or
  // unregistered concurrently with a dump may be missed by that dump.
  using ProbeFn =
      std::function<std::vector<std::pair<std::string, int64_t>>()>;
  uint64_t RegisterProbe(std::string name, ProbeFn fn);
  void UnregisterProbe(uint64_t handle);

  // Exposition. JSON shape:
  //   {"counters":{...},"gauges":{...},
  //    "histograms":{"name":{"count":..,"mean_us":..,"p50_us":..,
  //                          "p99_us":..,"p999_us":..,"max_us":..}},
  //    "probes":{"probe-name":{...}}}
  std::string DumpJson() const;
  // One "name value" line per instrument (histograms use Summary()).
  std::string DumpText() const;

  // Zeroes every counter/gauge/histogram (probes reflect live state and are
  // unaffected; reset their owners directly, e.g. SimNet::ResetStats).
  void ResetAll();

 private:
  mutable Mutex mu_{"metrics.registry", 87};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyRecorder>, std::less<>>
      histograms_ GUARDED_BY(mu_);
  std::map<uint64_t, std::pair<std::string, ProbeFn>> probes_ GUARDED_BY(mu_);
  uint64_t next_probe_ GUARDED_BY(mu_) = 1;
};

// ---------------------------------------------------------------------------
// Per-operation trace phases

// The timed phases a metadata operation can pass through. Phases are not
// required to be disjoint: kRpc accumulates inside resolve/lock/exec spans,
// and 2PC/raft/WAL phases nest inside kShardExec. The breakdown benches
// treat {resolve, lock_wait, shard_exec, renamer} as the disjoint top-level
// split (their code regions do not overlap in any engine) and everything
// uncovered as "other".
enum class Phase : uint8_t {
  kResolve = 0,     // path resolution: dentry reads + cache misses
  kLockWait,        // lock phase: acquire/release RPCs + in-queue blocking
  kShardExec,       // shard-side execution: primitive or txn commit path
  kTwoPcPrepare,    // 2PC phase 1 fan-out (nested in kShardExec)
  kTwoPcDecision,   // 2PC phase 2 fan-out (nested in kShardExec)
  kWalFsync,        // WAL flush delay (leader thread)
  kRaftAppend,      // raft proposal: replication wait (nested in kShardExec)
  kRenamer,         // normal-path rename coordination
  kResolveCached,   // dentry-cache consult + epoch validation (in kResolve)
  kRpc,             // injected network round-trip latency (SimNet)
};
inline constexpr size_t kNumPhases = static_cast<size_t>(Phase::kRpc) + 1;

std::string_view PhaseName(Phase phase);

// One operation's accumulated trace.
struct OpTraceData {
  int64_t us[kNumPhases] = {};
  uint32_t count[kNumPhases] = {};
  int64_t total_us = 0;

  int64_t PhaseUs(Phase p) const { return us[static_cast<size_t>(p)]; }
  uint32_t PhaseCount(Phase p) const { return count[static_cast<size_t>(p)]; }
};

// Thread-local trace context. All static; services stamp the calling
// thread's context.
class OpTrace {
 public:
  // Zeroes the accumulators and starts the op stopwatch. Also opens a
  // causal-trace op bracket (src/common/trace_event.h) named `op_name`, so
  // every OpTrace'd op is a candidate for span-tree capture.
  static void Begin(const char* op_name = "op");
  // Stops the stopwatch (total_us) and returns the accumulated trace.
  // Closes the causal-trace bracket with the same total.
  static OpTraceData Finish();

  // Manual stamp (e.g. a computed blocked duration). No-op if a TraceSpan
  // of the same phase is open on this thread — the span owns the wall time.
  static void AddPhase(Phase phase, int64_t us);

  // Accumulator access (works outside Begin/Finish brackets too).
  static int64_t PhaseUs(Phase phase);
  static uint32_t PhaseCount(Phase phase);
  static void ClearPhase(Phase phase);

 private:
  friend class TraceSpan;
  struct Tls;
  static Tls& tls();
};

// RAII phase timer. The outermost span of a given phase on a thread owns
// the phase's wall time; nested spans of the same phase are no-ops for the
// accumulator. When the thread is causally tracing, EVERY TraceSpan (owning
// or nested) additionally emits a trace event — the nesting is what forms
// the span tree — using the same clock reads as the accumulator, so
// span-derived phase times match the OpTrace sums by construction.
class TraceSpan {
 public:
  // `name` must outlive the span (string literals); nullptr = PhaseName.
  explicit TraceSpan(Phase phase, const char* name = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Phase phase_;
  bool owns_;        // false when nested inside a same-phase span
  bool emit_;        // true when a causal-trace event will be emitted
  const char* name_;
  uint64_t span_id_ = 0;
  uint64_t saved_parent_ = 0;
  MonoNanos start_ = 0;
};

// ---------------------------------------------------------------------------
// Aggregation across many ops (bench harness support)

struct PhaseBreakdown {
  int64_t us[kNumPhases] = {};
  uint64_t count[kNumPhases] = {};
  int64_t total_us = 0;
  uint64_t ops = 0;

  void Add(const OpTraceData& trace);
  void Merge(const PhaseBreakdown& other);

  int64_t PhaseUs(Phase p) const { return us[static_cast<size_t>(p)]; }
  // Fraction of total op wall time spent in `p`, in [0,1].
  double Share(Phase p) const;
  double AvgPhaseUs(Phase p) const;
  double AvgTotalUs() const;

  // Publishes the aggregate under "trace.<label>.*": per-phase .us/.count
  // counters, .ops/.total_us counters, and a lock_share_pct gauge — the
  // Fig 4 "Lock" share derived from spans.
  void PublishTo(MetricsRegistry& registry, const std::string& label) const;
};

}  // namespace cfs

#endif  // CFS_COMMON_METRICS_H_
