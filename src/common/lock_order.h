// Runtime lock-order (potential-deadlock) tracker and critical-section
// scope auditor behind cfs::Mutex / cfs::SharedMutex
// (src/common/thread_annotations.h). Compiled in when
// CFS_LOCK_ORDER_TRACKING is defined (CMake option CFS_LOCK_ORDER, ON by
// default; turn it off for peak-performance benchmarking).
//
// Model (a deliberately small lockdep): every mutex belongs to a lock
// *class* keyed by its registered name — all 16 shards of the dentry cache
// are one class. Each thread keeps a stack of held classes. A blocking
// acquisition is checked two ways:
//
//   1. Rank rule: the acquired class's rank must be strictly greater than
//      the rank of every held ranked class (DESIGN.md's hierarchy table).
//      Rank 0 = unranked, exempt from this rule.
//   2. Held-before graph: for every held class H, the edge H -> C is added
//      to a global digraph. If C already reaches H, this acquisition order
//      inverts an order executed earlier (possibly by another thread, hours
//      ago, across an RPC hop) and a cycle report fires with both lock
//      names and the offending path.
//
// Acquisitions via try_lock are recorded as held but not checked: a try
// that never blocks cannot complete a deadlock cycle, but later blocking
// acquisitions must still order against the lock it took.
//
// The graph only grows on the first occurrence of an edge per thread (a
// thread-local verified-edge cache front-runs the global graph mutex), so
// steady-state overhead is a few thread-local bit tests per acquisition.
//
// Violations invoke the installed handler; the default prints both lock
// names plus the held stack to stderr and aborts. Tests install a recording
// handler (SetViolationHandler) to observe reports without dying.
//
// ---------------------------------------------------------------------------
// Critical-section scope auditing (the paper's central invariant)
//
// CFS scales by *pruning the scope of critical sections*: unlike HopsFS
// (row locks held across the RPCs of a multi-round transaction) and
// InfiniFS, CFS's single-shard primitives never hold a lock across a
// network round trip. The tracker turns that thesis into a machine-checked
// invariant:
//
//   - Every lock class carries an RpcHoldPolicy. kNeverAcrossRpc (the
//     default) means issuing an RPC with the class held is a bug;
//     kAllowedAcrossRpc requires a justification string and marks classes
//     that *intentionally* model baseline behaviour (the lock manager's
//     logical row locks, the renamer's directory locks).
//   - SimNet::BeginCall / Multicast invoke OnRpcEdge with the call's edge
//     (source and destination node names). Every held entry's RPC count is
//     bumped; a held kNeverAcrossRpc class raises a kRpcUnderLock violation
//     naming the lock class and the RPC edge (abort by default, counted
//     when enforcement is off or a recording handler is installed).
//   - Releases feed per-class hold-span accounting: hold-time totals and
//     maxima split by "number of RPCs issued under the lock"
//     (0 / 1 / 2-7 / 8+), so scripts/cs_scope_report.sh can reproduce the
//     paper's scope-comparison narrative against both baselines.
//   - Logical (non-mutex) critical sections — e.g. a transaction's row
//     locks, granted and released over RPC but *held* by the calling
//     thread between the two — participate through OnScopeEnter/Exit.
//     Scope entries are audited for RPCs-under-lock and hold spans but are
//     exempt from the rank/cycle/self checks (row-lock deadlocks are
//     handled by the lock manager's timeouts, and one thread legally holds
//     many row locks of one class).

#ifndef CFS_COMMON_LOCK_ORDER_H_
#define CFS_COMMON_LOCK_ORDER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cfs {
namespace lock_order {

// Upper bound on registered lock classes. Shared with the race detector
// (src/common/race_detector.cc), whose locksets are bitsets over class ids.
inline constexpr size_t kMaxLockClasses = 256;

// How a lock class relates to network round trips (the paper's pruned
// critical-section scope). kAllowedAcrossRpc requires a justification.
enum class RpcHoldPolicy : uint8_t {
  kNeverAcrossRpc = 0,
  kAllowedAcrossRpc = 1,
};

const char* RpcHoldPolicyName(RpcHoldPolicy policy);

struct Violation {
  enum class Kind { kRank, kCycle, kSelf, kRpcUnderLock };
  Kind kind = Kind::kRank;
  std::string acquiring;  // class being acquired (empty for kRpcUnderLock)
  int acquiring_rank = 0;
  std::string held;  // held class it conflicts with
  int held_rank = 0;
  // For kRpcUnderLock: "source-node -> destination-node" of the offending
  // call.
  std::string rpc_edge;
  // Human-readable elaboration: the held stack, and for cycles the
  // held-before path that the new edge closes.
  std::string detail;
};

// Registers (or looks up) the lock class `name` and returns its id (> 0).
// All registrations of one name must agree on `rank`, `policy` and
// `justification`; a mismatch aborts — it is a programming error, not a
// runtime condition. kAllowedAcrossRpc without a non-empty justification
// aborts: intentionally holding a lock across an RPC is an exception that
// must explain itself.
uint32_t RegisterClass(const char* name, int rank);
uint32_t RegisterClass(const char* name, int rank, RpcHoldPolicy policy,
                       const char* justification);

// Hooks called by the cfs::Mutex / cfs::SharedMutex wrappers.
void OnAcquire(uint32_t cls);      // rank + cycle checks, then push
void OnTryAcquired(uint32_t cls);  // push only (try_lock cannot deadlock)
void OnRelease(uint32_t cls);      // pop + hold-span accounting

// Logical critical sections (no mutex object): pushed/popped around e.g. a
// transaction's row-lock hold window. Audited for RPC-under-lock and hold
// spans; exempt from rank/cycle/self checks, and one thread may hold many
// entries of one class.
void OnScopeEnter(uint32_t cls);
void OnScopeExit(uint32_t cls);

// Called by SimNet once per issued RPC with the call's edge. Charges the
// RPC to every held entry and reports a kRpcUnderLock violation for every
// held kNeverAcrossRpc class (see SetRpcEnforcement).
void OnRpcEdge(const char* from_node, const char* to_node);

// Aborts unless the calling thread holds a lock of class `cls`.
void AssertHeld(uint32_t cls);

// Runtime toggle (compile-time gate is CFS_LOCK_ORDER_TRACKING). While
// disabled, acquisitions are not recorded at all.
void SetEnabled(bool enabled);
bool Enabled();

// When enforcement is on (the default), an RPC issued under a
// kNeverAcrossRpc class reports a violation (abort unless a handler is
// installed). When off, the event is only counted in the scope stats —
// the mode the scope-report tool uses to *measure* baselines instead of
// killing them.
void SetRpcEnforcement(bool enforce);
bool RpcEnforcement();

// Installs `handler` for subsequent violations; an empty handler restores
// the default print-and-abort behaviour.
using ViolationHandler = std::function<void(const Violation&)>;
void SetViolationHandler(ViolationHandler handler);

// The name/rank pairs of every class registered so far (diagnostics).
std::vector<std::pair<std::string, int>> RegisteredClasses();

// The registered name of class `cls` ("<unknown>" for 0/out-of-range).
// Used by the race detector to report violations by lock-class name.
std::string ClassName(uint32_t cls);

// ---------------------------------------------------------------------------
// Scope accounting snapshot

// Hold spans are split by how many RPCs were issued while the entry was
// held: bucket 0 = no RPC, 1 = one, 2 = 2..7, 3 = 8 or more.
inline constexpr size_t kNumRpcHoldBuckets = 4;
const char* RpcHoldBucketLabel(size_t bucket);
size_t RpcHoldBucketFor(uint64_t rpcs);

struct ClassScope {
  std::string name;
  int rank = 0;
  RpcHoldPolicy policy = RpcHoldPolicy::kNeverAcrossRpc;
  std::string justification;

  uint64_t holds = 0;           // completed hold spans
  uint64_t holds_with_rpc = 0;  // spans during which >= 1 RPC was issued
  uint64_t rpcs_under_lock = 0; // total RPCs issued while held
  uint64_t rpc_violations = 0;  // RPCs under a held kNeverAcrossRpc class
  uint64_t unbalanced_pops = 0; // releases with no matching held entry
  int64_t max_hold_us = 0;
  int64_t total_hold_us = 0;

  struct Bucket {
    uint64_t holds = 0;
    int64_t total_us = 0;
    int64_t max_us = 0;
  };
  Bucket rpc_buckets[kNumRpcHoldBuckets];
};

// Per-class scope stats for every registered class, in registration order.
std::vector<ClassScope> ScopeSnapshot();
// Zeroes every class's scope stats (the report tool calls this between
// systems; class registrations survive).
void ResetScopeStats();
// Process-wide totals (cheap; used by tests and the metrics probe).
uint64_t TotalRpcUnderLockViolations();
uint64_t TotalUnbalancedPops();

// Test support: drops every held-before edge and invalidates the per-thread
// verified-edge caches. Registered classes survive (their ids are baked
// into live mutexes).
void ResetGraphForTest();
// Test support: depth of the calling thread's held stack.
size_t HeldDepthForTest();

}  // namespace lock_order
}  // namespace cfs

#endif  // CFS_COMMON_LOCK_ORDER_H_
