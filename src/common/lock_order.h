// Runtime lock-order (potential-deadlock) tracker behind cfs::Mutex /
// cfs::SharedMutex (src/common/thread_annotations.h). Compiled in when
// CFS_LOCK_ORDER_TRACKING is defined (CMake option CFS_LOCK_ORDER, ON by
// default; turn it off for peak-performance benchmarking).
//
// Model (a deliberately small lockdep): every mutex belongs to a lock
// *class* keyed by its registered name — all 16 shards of the dentry cache
// are one class. Each thread keeps a stack of held classes. A blocking
// acquisition is checked two ways:
//
//   1. Rank rule: the acquired class's rank must be strictly greater than
//      the rank of every held ranked class (DESIGN.md's hierarchy table).
//      Rank 0 = unranked, exempt from this rule.
//   2. Held-before graph: for every held class H, the edge H -> C is added
//      to a global digraph. If C already reaches H, this acquisition order
//      inverts an order executed earlier (possibly by another thread, hours
//      ago, across an RPC hop) and a cycle report fires with both lock
//      names and the offending path.
//
// Acquisitions via try_lock are recorded as held but not checked: a try
// that never blocks cannot complete a deadlock cycle, but later blocking
// acquisitions must still order against the lock it took.
//
// The graph only grows on the first occurrence of an edge per thread (a
// thread-local verified-edge cache front-runs the global graph mutex), so
// steady-state overhead is a few thread-local bit tests per acquisition.
//
// Violations invoke the installed handler; the default prints both lock
// names plus the held stack to stderr and aborts. Tests install a recording
// handler (SetViolationHandler) to observe reports without dying.

#ifndef CFS_COMMON_LOCK_ORDER_H_
#define CFS_COMMON_LOCK_ORDER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cfs {
namespace lock_order {

struct Violation {
  enum class Kind { kRank, kCycle, kSelf };
  Kind kind = Kind::kRank;
  std::string acquiring;  // class being acquired
  int acquiring_rank = 0;
  std::string held;  // held class it conflicts with
  int held_rank = 0;
  // Human-readable elaboration: the held stack, and for cycles the
  // held-before path that the new edge closes.
  std::string detail;
};

// Registers (or looks up) the lock class `name` and returns its id (> 0).
// All registrations of one name must agree on `rank`; a mismatch aborts —
// it is a programming error, not a runtime condition.
uint32_t RegisterClass(const char* name, int rank);

// Hooks called by the cfs::Mutex / cfs::SharedMutex wrappers.
void OnAcquire(uint32_t cls);      // rank + cycle checks, then push
void OnTryAcquired(uint32_t cls);  // push only (try_lock cannot deadlock)
void OnRelease(uint32_t cls);      // pop (tolerates unbalanced pops)

// Aborts unless the calling thread holds a lock of class `cls`.
void AssertHeld(uint32_t cls);

// Runtime toggle (compile-time gate is CFS_LOCK_ORDER_TRACKING). While
// disabled, acquisitions are not recorded at all.
void SetEnabled(bool enabled);
bool Enabled();

// Installs `handler` for subsequent violations; an empty handler restores
// the default print-and-abort behaviour.
using ViolationHandler = std::function<void(const Violation&)>;
void SetViolationHandler(ViolationHandler handler);

// The name/rank pairs of every class registered so far (diagnostics).
std::vector<std::pair<std::string, int>> RegisteredClasses();

// Test support: drops every held-before edge and invalidates the per-thread
// verified-edge caches. Registered classes survive (their ids are baked
// into live mutexes).
void ResetGraphForTest();
// Test support: depth of the calling thread's held stack.
size_t HeldDepthForTest();

}  // namespace lock_order
}  // namespace cfs

#endif  // CFS_COMMON_LOCK_ORDER_H_
