// Software CRC32C (Castagnoli) used to checksum WAL records.

#ifndef CFS_COMMON_CRC32_H_
#define CFS_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace cfs {

uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

}  // namespace cfs

#endif  // CFS_COMMON_CRC32_H_
