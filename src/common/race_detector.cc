#include "src/common/race_detector.h"

#ifdef CFS_RACE_DETECT_ENABLED

#include <algorithm>
#include <atomic>
#include <bitset>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/common/lock_order.h"
#include "src/common/simtime.h"
#include "src/common/trace_event.h"

// Internal state is synchronized with raw std::mutex on purpose (like
// lock_order.cc): cfs::Mutex would recurse into the very hooks this module
// implements. scripts/lint_allowlist.txt enumerates this file for the raw-
// mutex lint exemption.

namespace cfs {
namespace race {
namespace {

constexpr size_t kMaxClasses = lock_order::kMaxLockClasses;
using Lockset = std::bitset<kMaxClasses>;

// ---------------------------------------------------------------------------
// Vector clocks: flat ctx-sorted vectors (contexts are dense small ints).

// Entry cap: a long-running process accumulates contexts (every OS thread
// and every simulated task chain is one), and unbounded clocks would make
// every join O(all contexts ever). Past the cap the lowest-clock entries
// are evicted; a lost entry can only turn "ordered" into "unordered", so
// the failure mode is a (rare, init/teardown-shaped) extra report — never
// a missed one.
constexpr size_t kMaxVcEntries = 1024;

struct VectorClock {
  // (ctx, clock), sorted by ctx ascending.
  std::vector<std::pair<uint32_t, uint64_t>> entries;

  uint64_t Get(uint32_t ctx) const {
    auto it = std::lower_bound(
        entries.begin(), entries.end(), ctx,
        [](const auto& e, uint32_t c) { return e.first < c; });
    return (it != entries.end() && it->first == ctx) ? it->second : 0;
  }

  void Set(uint32_t ctx, uint64_t clock) {
    auto it = std::lower_bound(
        entries.begin(), entries.end(), ctx,
        [](const auto& e, uint32_t c) { return e.first < c; });
    if (it != entries.end() && it->first == ctx) {
      if (clock > it->second) it->second = clock;
    } else {
      entries.insert(it, {ctx, clock});
      Cap();
    }
  }

  void Join(const VectorClock& other) {
    if (other.entries.empty()) return;
    // Linear merge of two ctx-sorted runs.
    std::vector<std::pair<uint32_t, uint64_t>> merged;
    merged.reserve(entries.size() + other.entries.size());
    size_t i = 0;
    size_t j = 0;
    while (i < entries.size() && j < other.entries.size()) {
      if (entries[i].first < other.entries[j].first) {
        merged.push_back(entries[i++]);
      } else if (entries[i].first > other.entries[j].first) {
        merged.push_back(other.entries[j++]);
      } else {
        merged.emplace_back(entries[i].first,
                            std::max(entries[i].second,
                                     other.entries[j].second));
        i++;
        j++;
      }
    }
    merged.insert(merged.end(), entries.begin() + i, entries.end());
    merged.insert(merged.end(), other.entries.begin() + j,
                  other.entries.end());
    entries = std::move(merged);
    Cap();
  }

  bool Covers(uint32_t ctx, uint64_t clock) const { return Get(ctx) >= clock; }

 private:
  void Cap() {
    while (entries.size() > kMaxVcEntries) {
      auto lowest = std::min_element(
          entries.begin(), entries.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      entries.erase(lowest);
    }
  }
};

// ---------------------------------------------------------------------------
// Contexts: OS threads and simulated tasks. Context ids are allocated in
// creation order — deterministic under a seeded single-threaded sim.

std::atomic<uint32_t> g_next_ctx{1};
std::atomic<uint64_t> g_next_token{1};

struct Ctx {
  uint32_t id = 0;
  uint64_t clock = 1;  // this context's own logical clock
  VectorClock vc;      // includes the self entry

  void Tick() {
    clock++;
    vc.Set(id, clock);
  }
};

Ctx MakeCtx() {
  Ctx c;
  c.id = g_next_ctx.fetch_add(1, std::memory_order_relaxed);
  c.vc.Set(c.id, c.clock);
  return c;
}

struct ThreadState {
  Ctx thread_ctx;
  std::vector<Ctx> task_stack;  // active sim-task contexts (depth ~1)
  // Lockset: per-class hold counts by mode, plus the derived bitsets.
  uint8_t held_excl[kMaxClasses] = {};
  uint8_t held_shared[kMaxClasses] = {};
  Lockset any_set;
  Lockset excl_set;
  std::vector<std::pair<uint32_t, LockMode>> order;  // acquisition order
  // Per-class sync-slot version this context is known to have joined;
  // skipping the join when nothing changed makes uncontended reacquisition
  // O(1). Invalidated wholesale on task switches (the task has its own vc).
  uint64_t sync_seen[kMaxClasses] = {};
  // Per-class release counter: lets AccessScope prove its declared lock was
  // held for the *whole* region, not merely at entry and exit (a
  // drop-and-reacquire in between bumps the epoch).
  uint64_t release_epoch[kMaxClasses] = {};
  bool initialized = false;
};

ThreadState& State() {
  thread_local ThreadState state;
  if (!state.initialized) {
    state.thread_ctx = MakeCtx();
    state.initialized = true;
  }
  return state;
}

Ctx& CurrentCtx(ThreadState& t) {
  return t.task_stack.empty() ? t.thread_ctx : t.task_stack.back();
}

// ---------------------------------------------------------------------------
// Sync-object (lock-class) vector clocks: release joins the releaser's
// clock in, acquire joins the class clock out — the HB edges of the
// release→acquire discipline, at class granularity (DESIGN.md §12).

struct SyncSlot {
  std::mutex mu;
  VectorClock vc;
  // Bumped on every release; lets acquirers skip the join when the slot
  // has not moved since they last synchronized with it.
  std::atomic<uint64_t> version{0};
};

SyncSlot* GetSync() {
  static SyncSlot* const s = new SyncSlot[kMaxClasses];
  return s;
}

// Pending task tokens: the creator's clock snapshot, consumed at dispatch.
struct TokenTable {
  std::mutex mu;
  std::unordered_map<uint64_t, VectorClock> pending;
};

TokenTable& Tokens() {
  static TokenTable* const t = new TokenTable();
  return *t;
}

// ---------------------------------------------------------------------------
// Location table: sharded by SplitMix64-mixed address.

struct Epoch {
  uint32_t ctx = 0;
  uint64_t clock = 0;
};

struct Loc {
  const char* name = nullptr;
  uint32_t declared_cls = 0;
  enum class St : uint8_t { kExclusive, kShared, kSharedMod } st = St::kExclusive;
  Epoch owner;       // exclusive state: the owning epoch
  Lockset lockset;   // candidate set once shared
  Epoch last_write;
  std::string last_write_locks;
  const char* last_write_file = nullptr;
  int last_write_line = 0;
  std::vector<Epoch> reads;  // reads since the last write (capped)
  // Sites already reported for this location, by kind (throttle).
  uint8_t reported_kinds = 0;
};

constexpr size_t kLocShards = 64;
constexpr size_t kMaxReadEpochs = 8;

struct LocShard {
  std::mutex mu;
  std::unordered_map<uintptr_t, Loc> map;
};

LocShard* GetLocs() {
  static LocShard* const s = new LocShard[kLocShards];
  return s;
}

size_t ShardOf(uintptr_t addr) {
  uint64_t state = static_cast<uint64_t>(addr) ^ 0x9e3779b97f4a7c15ULL;
  uint64_t z = (state ^ (state >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<size_t>((z ^ (z >> 31)) % kLocShards);
}

// ---------------------------------------------------------------------------
// Switches, report store.

bool EnvFlag(const char* name, bool def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  return !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool>* const f =
      new std::atomic<bool>(EnvFlag("CFS_RACE_DETECT", false));
  return *f;
}

std::atomic<bool>& AbortFlag() {
  static std::atomic<bool>* const f =
      new std::atomic<bool>(EnvFlag("CFS_RACE_ABORT", false));
  return *f;
}

size_t MaxReports() {
  static const size_t n = [] {
    const char* v = std::getenv("CFS_RACE_MAX_REPORTS");
    long parsed = (v != nullptr) ? std::strtol(v, nullptr, 10) : 0;
    return parsed > 0 ? static_cast<size_t>(parsed) : size_t{64};
  }();
  return n;
}

struct ReportStore {
  std::mutex mu;
  std::vector<Report> reports;
};

ReportStore& Store() {
  static ReportStore* const s = new ReportStore();
  return *s;
}

std::atomic<uint64_t> g_report_count{0};

std::string LocksetString(const ThreadState& t) {
  std::string out;
  for (const auto& [cls, mode] : t.order) {
    if (!out.empty()) out += ",";
    out += lock_order::ClassName(cls);
    if (mode == LockMode::kShared) out += "(shared)";
  }
  return out.empty() ? "<none>" : out;
}

void Emit(Report r) {
  g_report_count.fetch_add(1, std::memory_order_relaxed);
  std::string line = Fingerprint(r);
  std::fprintf(stderr,
               "[race] %s trace_id=%llu virtual_us=%lld prior={%s}\n",
               line.c_str(), static_cast<unsigned long long>(r.trace_id),
               static_cast<long long>(r.virtual_us), r.prior.c_str());
  std::fflush(stderr);
  if (AbortFlag().load(std::memory_order_relaxed)) std::abort();
  ReportStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mu);
  if (store.reports.size() < MaxReports()) store.reports.push_back(std::move(r));
}

Report MakeReport(Report::Kind kind, const ThreadState& t, const Ctx& ctx,
                  const char* field, uint32_t declared_cls, bool is_write,
                  const char* file, int line) {
  Report r;
  r.kind = kind;
  r.field = field;
  r.declared_lock =
      declared_cls != 0 ? lock_order::ClassName(declared_cls) : "<none>";
  r.locks_held = LocksetString(t);
  r.file = file;
  r.line = line;
  r.is_write = is_write;
  r.ctx = ctx.id;
  r.trace_id = trace::CurrentTraceId();
  simtime::Scheduler* sched = simtime::Current();
  r.virtual_us = sched != nullptr ? sched->task_now_us() : -1;
  return r;
}

}  // namespace

const char* ReportKindName(Report::Kind kind) {
  switch (kind) {
    case Report::Kind::kUnheldDeclaredLock: return "unheld-declared-lock";
    case Report::Kind::kLocksetEmpty: return "lockset-empty";
    case Report::Kind::kScopeGuardDropped: return "scope-guard-dropped";
  }
  return "?";
}

std::string Fingerprint(const Report& r) {
  // Deliberately excludes wall-clock and trace ids: under a seeded sim,
  // identical seeds must produce byte-identical fingerprints.
  std::string out = ReportKindName(r.kind);
  out += " field=";
  out += r.field;
  out += r.is_write ? " write" : " read";
  out += " declared=";
  out += r.declared_lock;
  out += " held=";
  out += r.locks_held;
  out += " at ";
  // Strip directories for replay stability across checkouts.
  const char* slash = std::strrchr(r.file.c_str(), '/');
  out += (slash != nullptr) ? slash + 1 : r.file.c_str();
  out += ":" + std::to_string(r.line);
  out += " ctx=" + std::to_string(r.ctx);
  return out;
}

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetAbortOnReport(bool abort_on_report) {
  AbortFlag().store(abort_on_report, std::memory_order_relaxed);
}

bool AbortOnReport() { return AbortFlag().load(std::memory_order_relaxed); }

void OnLockAcquired(uint32_t cls, LockMode mode) {
  if (cls == 0 || cls >= kMaxClasses || !Enabled()) return;
  ThreadState& t = State();
  uint8_t* counts = mode == LockMode::kShared ? t.held_shared : t.held_excl;
  if (counts[cls] < 255) counts[cls]++;
  t.any_set.set(cls);
  if (mode == LockMode::kExclusive) t.excl_set.set(cls);
  t.order.emplace_back(cls, mode);
  // HB in-edge: everything that happened before the last release of this
  // class happened before us. Skipped when the slot has not moved since we
  // last synchronized — the common reacquisition case.
  Ctx& ctx = CurrentCtx(t);
  SyncSlot& slot = GetSync()[cls];
  if (slot.version.load(std::memory_order_acquire) != t.sync_seen[cls]) {
    std::lock_guard<std::mutex> lock(slot.mu);
    ctx.vc.Join(slot.vc);
    t.sync_seen[cls] = slot.version.load(std::memory_order_relaxed);
  }
}

void OnLockReleased(uint32_t cls, LockMode mode) {
  if (cls == 0 || cls >= kMaxClasses) return;
  ThreadState& t = State();
  if (!t.initialized) return;
  uint8_t* counts = mode == LockMode::kShared ? t.held_shared : t.held_excl;
  if (counts[cls] == 0) return;  // acquired while disabled; stay balanced
  counts[cls]--;
  t.release_epoch[cls]++;
  if (t.held_excl[cls] == 0) t.excl_set.reset(cls);
  if (t.held_excl[cls] == 0 && t.held_shared[cls] == 0) t.any_set.reset(cls);
  for (size_t i = t.order.size(); i > 0; i--) {
    if (t.order[i - 1].first == cls && t.order[i - 1].second == mode) {
      t.order.erase(t.order.begin() + static_cast<std::ptrdiff_t>(i - 1));
      break;
    }
  }
  if (!Enabled()) return;
  // HB out-edge: publish our clock to the class, then tick so later local
  // work is not ordered before a future acquirer. The join runs both ways —
  // at class granularity the slot already merges all instances' histories,
  // so absorbing it here adds nothing the next acquire would not — which
  // makes "fully synchronized at version N" true and the acquire-side skip
  // sound.
  Ctx& ctx = CurrentCtx(t);
  {
    SyncSlot& slot = GetSync()[cls];
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.vc.Join(ctx.vc);
    ctx.vc.Join(slot.vc);
    t.sync_seen[cls] =
        slot.version.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  ctx.Tick();
}

uint64_t OnTaskCreate() {
  if (!Enabled()) return 0;
  ThreadState& t = State();
  Ctx& ctx = CurrentCtx(t);
  uint64_t token = g_next_token.fetch_add(1, std::memory_order_relaxed);
  {
    TokenTable& tokens = Tokens();
    std::lock_guard<std::mutex> lock(tokens.mu);
    tokens.pending[token] = ctx.vc;  // creator happens-before the event
  }
  ctx.Tick();
  return token;
}

void OnTaskBegin(uint64_t token) {
  if (!Enabled()) return;
  ThreadState& t = State();
  Ctx task = MakeCtx();
  if (token != 0) {
    TokenTable& tokens = Tokens();
    std::lock_guard<std::mutex> lock(tokens.mu);
    auto it = tokens.pending.find(token);
    if (it != tokens.pending.end()) {
      task.vc.Join(it->second);
      tokens.pending.erase(it);
    }
  }
  t.task_stack.push_back(std::move(task));
  std::memset(t.sync_seen, 0, sizeof(t.sync_seen));
}

void OnTaskEnd() {
  ThreadState& t = State();
  if (!t.initialized || t.task_stack.empty()) return;
  t.task_stack.pop_back();
  std::memset(t.sync_seen, 0, sizeof(t.sync_seen));
}

void RecordAccess(const void* addr, const char* field, uint32_t declared_cls,
                  bool is_write, const char* file, int line) {
  if (!Enabled() || addr == nullptr) return;
  ThreadState& t = State();
  Ctx& ctx = CurrentCtx(t);
  const uint64_t now_clock = ctx.clock;

  // Check 1 — the declaration: a write needs the declared class exclusive,
  // a read accepts shared or exclusive.
  bool declared_ok = true;
  if (declared_cls != 0 && declared_cls < kMaxClasses) {
    declared_ok = is_write ? t.held_excl[declared_cls] > 0
                           : t.any_set.test(declared_cls);
  }

  auto addr_int = reinterpret_cast<uintptr_t>(addr);
  LocShard& shard = GetLocs()[ShardOf(addr_int)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(addr_int);
  Loc& loc = it->second;
  if (!inserted && loc.name != nullptr && std::strcmp(loc.name, field) != 0) {
    // Same address, different field: the object tracked here was destroyed
    // and the allocator reused its storage (there is no deallocation hook
    // to evict stale entries). Restart tracking — chaining the old object's
    // history onto the new one fabricates races between unrelated fields.
    loc = Loc{};
    inserted = true;
  }

  auto report = [&](Report::Kind kind, const Loc& l) {
    uint8_t bit = static_cast<uint8_t>(1u << static_cast<unsigned>(kind));
    if ((loc.reported_kinds & bit) != 0) {
      g_report_count.fetch_add(1, std::memory_order_relaxed);
      return;  // location+kind already reported in full; keep counting
    }
    loc.reported_kinds |= bit;
    Report r = MakeReport(kind, t, ctx, field, declared_cls, is_write, file,
                          line);
    if (l.last_write.ctx != 0) {
      r.prior = "write ctx=" + std::to_string(l.last_write.ctx) + " locks=" +
                (l.last_write_locks.empty() ? "<none>" : l.last_write_locks);
      if (l.last_write_file != nullptr) {
        const char* slash = std::strrchr(l.last_write_file, '/');
        r.prior += " at ";
        r.prior += slash != nullptr ? slash + 1 : l.last_write_file;
        r.prior += ":" + std::to_string(l.last_write_line);
      }
    }
    Emit(std::move(r));
  };

  if (!declared_ok) report(Report::Kind::kUnheldDeclaredLock, loc);

  if (inserted) {
    loc.name = field;
    loc.declared_cls = declared_cls;
    loc.st = Loc::St::kExclusive;
    loc.owner = {ctx.id, now_clock};
    loc.lockset = t.any_set;
  }

  // True if every access recorded in `epochs` happens-before this one.
  auto covered = [&](const Epoch& e) {
    return e.ctx == ctx.id || ctx.vc.Covers(e.ctx, e.clock);
  };

  switch (loc.st) {
    case Loc::St::kExclusive:
      if (loc.owner.ctx == ctx.id || covered(loc.owner)) {
        loc.owner = {ctx.id, now_clock};  // same owner / silent handoff
        loc.lockset = t.any_set;
      } else {
        // Genuinely concurrent second context: enter the shared regime.
        // Eraser: the candidate set becomes the locks common to both sides.
        loc.st = is_write ? Loc::St::kSharedMod : Loc::St::kShared;
        loc.lockset &= is_write ? t.excl_set : t.any_set;
        if (loc.lockset.none()) report(Report::Kind::kLocksetEmpty, loc);
      }
      break;
    case Loc::St::kShared:
    case Loc::St::kSharedMod: {
      bool ordered = covered(loc.last_write);
      if (is_write) {
        for (const Epoch& e : loc.reads) ordered = ordered && covered(e);
      }
      Lockset refined = loc.lockset;
      refined &= is_write ? t.excl_set : t.any_set;
      if (refined.none() && ordered) {
        // Phase change: all prior accesses happen-before this one — the
        // location starts a new era under (possibly) a new discipline.
        loc.st = Loc::St::kExclusive;
        loc.owner = {ctx.id, now_clock};
        loc.lockset = t.any_set;
      } else {
        loc.lockset = refined;
        if (is_write) loc.st = Loc::St::kSharedMod;
        if (refined.none() && loc.st == Loc::St::kSharedMod) {
          report(Report::Kind::kLocksetEmpty, loc);
        }
      }
      break;
    }
  }

  if (is_write) {
    loc.last_write = {ctx.id, now_clock};
    loc.last_write_locks = LocksetString(t);
    if (loc.last_write_locks == "<none>") loc.last_write_locks.clear();
    loc.last_write_file = file;
    loc.last_write_line = line;
    loc.reads.clear();
  } else if (loc.reads.size() < kMaxReadEpochs) {
    loc.reads.push_back({ctx.id, now_clock});
  }
}

AccessScope::AccessScope(const void* addr, const char* field,
                         uint32_t declared_cls, bool is_write,
                         const char* file, int line)
    : field_(field),
      declared_cls_(declared_cls),
      file_(file),
      line_(line),
      armed_(Enabled()) {
  if (!armed_) return;
  if (declared_cls_ != 0 && declared_cls_ < kMaxClasses) {
    release_epoch_at_entry_ = State().release_epoch[declared_cls_];
  }
  RecordAccess(addr, field, declared_cls, is_write, file, line);
}

AccessScope::~AccessScope() {
  if (!armed_ || !Enabled()) return;
  if (declared_cls_ == 0 || declared_cls_ >= kMaxClasses) return;
  ThreadState& t = State();
  // Atomicity of the whole region: the declared lock must still be held AND
  // never have been released since the scope opened — a drop-and-reacquire
  // lets another context observe the half-done update even though the lock
  // is back by now.
  if (t.any_set.test(declared_cls_) &&
      t.release_epoch[declared_cls_] == release_epoch_at_entry_) {
    return;
  }
  Report r = MakeReport(Report::Kind::kScopeGuardDropped, t, CurrentCtx(t),
                        field_, declared_cls_, /*is_write=*/false, file_,
                        line_);
  r.prior = t.any_set.test(declared_cls_)
                ? "declared lock released and reacquired mid-scope"
                : "declared lock released before the access scope closed";
  Emit(std::move(r));
}

size_t ReportCount() {
  return static_cast<size_t>(g_report_count.load(std::memory_order_relaxed));
}

std::vector<Report> Reports() {
  ReportStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mu);
  return store.reports;
}

void ResetForTest() {
  for (size_t i = 0; i < kLocShards; i++) {
    LocShard& shard = GetLocs()[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  for (size_t i = 0; i < kMaxClasses; i++) {
    SyncSlot& slot = GetSync()[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.vc.entries.clear();
  }
  {
    TokenTable& tokens = Tokens();
    std::lock_guard<std::mutex> lock(tokens.mu);
    tokens.pending.clear();
  }
  {
    ReportStore& store = Store();
    std::lock_guard<std::mutex> lock(store.mu);
    store.reports.clear();
  }
  g_report_count.store(0, std::memory_order_relaxed);
  // The calling thread's context restarts with a fresh clock; other
  // threads' TLS is intentionally untouched (they may hold locks).
  ThreadState& t = State();
  t.thread_ctx = MakeCtx();
  t.task_stack.clear();
  std::memset(t.sync_seen, 0, sizeof(t.sync_seen));
}

size_t LocksHeldForTest() { return State().order.size(); }

bool HoldsForTest(uint32_t cls, LockMode mode) {
  ThreadState& t = State();
  if (cls == 0 || cls >= kMaxClasses) return false;
  return mode == LockMode::kShared ? t.held_shared[cls] > 0
                                   : t.held_excl[cls] > 0;
}

}  // namespace race
}  // namespace cfs

#else  // !CFS_RACE_DETECT_ENABLED

// Detector compiled out (-DCFS_RACE_DETECT=OFF): keep the result-inspection
// API linkable so tests and the audit tooling build either way.

namespace cfs {
namespace race {

const char* ReportKindName(Report::Kind) { return "?"; }
std::string Fingerprint(const Report&) { return ""; }
void SetEnabled(bool) {}
bool Enabled() { return false; }
void SetAbortOnReport(bool) {}
bool AbortOnReport() { return false; }
void OnLockAcquired(uint32_t, LockMode) {}
void OnLockReleased(uint32_t, LockMode) {}
uint64_t OnTaskCreate() { return 0; }
void OnTaskBegin(uint64_t) {}
void OnTaskEnd() {}
void RecordAccess(const void*, const char*, uint32_t, bool, const char*,
                  int) {}
AccessScope::AccessScope(const void*, const char*, uint32_t, bool,
                         const char*, int)
    : field_(nullptr), declared_cls_(0), file_(nullptr), line_(0),
      armed_(false) {}
AccessScope::~AccessScope() = default;
size_t ReportCount() { return 0; }
std::vector<Report> Reports() { return {}; }
void ResetForTest() {}
size_t LocksHeldForTest() { return 0; }
bool HoldsForTest(uint32_t, LockMode) { return false; }

}  // namespace race
}  // namespace cfs

#endif  // CFS_RACE_DETECT_ENABLED
