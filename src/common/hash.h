// Hash helpers: FNV-1a for partitioning decisions (stable across runs,
// independent of std::hash implementation details).

#ifndef CFS_COMMON_HASH_H_
#define CFS_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace cfs {

inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashU64(uint64_t x) {
  // Finalizer from splitmix64; good avalanche for partitioning inode ids.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace cfs

#endif  // CFS_COMMON_HASH_H_
