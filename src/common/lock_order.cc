#include "src/common/lock_order.h"

#include <atomic>
#include <bitset>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

// The tracker's own state is synchronized with raw std::mutex on purpose:
// instrumenting it with cfs::Mutex would recurse into these hooks.

namespace cfs {
namespace lock_order {
namespace {

constexpr size_t kMaxClasses = 256;

struct ClassInfo {
  std::string name;
  int rank = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, uint32_t> by_name;
  std::vector<ClassInfo> classes;  // index = id - 1
};

// Leaked: lock classes are registered from objects with static storage
// duration and must outlive every destructor that releases a lock.
Registry& GetRegistry() {
  static Registry* const r = new Registry();
  return *r;
}

struct Graph {
  std::mutex mu;
  std::bitset<kMaxClasses> adj[kMaxClasses];  // adj[h][c]: h held before c
};

Graph& GetGraph() {
  static Graph* const g = new Graph();
  return *g;
}

std::atomic<bool> g_enabled{true};
// Bumped by ResetGraphForTest so per-thread verified-edge caches notice.
std::atomic<uint64_t> g_graph_epoch{1};

std::mutex g_handler_mu;
ViolationHandler g_handler;  // empty = default print-and-abort

struct ThreadState {
  std::vector<uint32_t> held;  // class ids, acquisition order
  std::bitset<kMaxClasses * kMaxClasses> verified;  // edges already in graph
  uint64_t graph_epoch = 0;
};

ThreadState& State() {
  thread_local ThreadState state;
  return state;
}

ClassInfo InfoOf(uint32_t cls) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (cls == 0 || cls > r.classes.size()) return ClassInfo{"<unknown>", 0};
  return r.classes[cls - 1];
}

std::string HeldStackString(const std::vector<uint32_t>& held) {
  std::string out = "held stack: [";
  for (size_t i = 0; i < held.size(); i++) {
    ClassInfo info = InfoOf(held[i]);
    if (i > 0) out += ", ";
    out += "\"" + info.name + "\"(rank " + std::to_string(info.rank) + ")";
  }
  out += "]";
  return out;
}

void Report(Violation v) {
  ViolationHandler handler;
  {
    std::lock_guard<std::mutex> lock(g_handler_mu);
    handler = g_handler;
  }
  if (handler) {
    handler(v);
    return;
  }
  // Default: print both lock names and die. fprintf (not CFS_LOG): the
  // logger serializes on a cfs::Mutex and must not re-enter the tracker.
  const char* kind = v.kind == Violation::Kind::kRank    ? "rank inversion"
                     : v.kind == Violation::Kind::kCycle ? "deadlock cycle"
                                                         : "recursive acquisition";
  std::fprintf(stderr,
               "[lock_order] FATAL %s: acquiring \"%s\" (rank %d) while "
               "holding \"%s\" (rank %d); %s\n",
               kind, v.acquiring.c_str(), v.acquiring_rank, v.held.c_str(),
               v.held_rank, v.detail.c_str());
  std::fflush(stderr);
  std::abort();
}

// True if `from` reaches `to` in the held-before graph. Caller holds
// graph.mu.
bool Reaches(const Graph& graph, uint32_t from, uint32_t to) {
  std::bitset<kMaxClasses> visited;
  std::vector<uint32_t> stack{from};
  while (!stack.empty()) {
    uint32_t n = stack.back();
    stack.pop_back();
    if (n == to) return true;
    if (visited.test(n)) continue;
    visited.set(n);
    const auto& out = graph.adj[n];
    for (size_t i = 1; i < kMaxClasses; i++) {
      if (out.test(i) && !visited.test(i)) stack.push_back(static_cast<uint32_t>(i));
    }
  }
  return false;
}

// Shortest held-before path from `from` to `to`, as " -> "-joined names.
// Caller holds graph.mu.
std::string PathString(const Graph& graph, uint32_t from, uint32_t to) {
  std::vector<int> parent(kMaxClasses, -1);
  std::vector<uint32_t> queue{from};
  parent[from] = static_cast<int>(from);
  for (size_t head = 0; head < queue.size(); head++) {
    uint32_t n = queue[head];
    if (n == to) break;
    for (size_t i = 1; i < kMaxClasses; i++) {
      if (graph.adj[n].test(i) && parent[i] < 0) {
        parent[i] = static_cast<int>(n);
        queue.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  if (parent[to] < 0) return "";
  std::vector<uint32_t> path;
  for (uint32_t n = to;; n = static_cast<uint32_t>(parent[n])) {
    path.push_back(n);
    if (n == from) break;
  }
  std::string out;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += '"';
    out += InfoOf(*it).name;
    out += '"';
  }
  return out;
}

}  // namespace

uint32_t RegisterClass(const char* name, int rank) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.by_name.find(name);
  if (it != r.by_name.end()) {
    const ClassInfo& existing = r.classes[it->second - 1];
    if (existing.rank != rank) {
      std::fprintf(stderr,
                   "[lock_order] FATAL: lock class \"%s\" re-registered with "
                   "rank %d (was %d)\n",
                   name, rank, existing.rank);
      std::fflush(stderr);
      std::abort();
    }
    return it->second;
  }
  if (r.classes.size() >= kMaxClasses - 1) {
    std::fprintf(stderr, "[lock_order] FATAL: too many lock classes (>%zu)\n",
                 kMaxClasses - 1);
    std::fflush(stderr);
    std::abort();
  }
  r.classes.push_back(ClassInfo{name, rank});
  uint32_t id = static_cast<uint32_t>(r.classes.size());
  r.by_name.emplace(name, id);
  return id;
}

void OnAcquire(uint32_t cls) {
  if (cls == 0 || !g_enabled.load(std::memory_order_relaxed)) return;
  ThreadState& t = State();
  uint64_t epoch = g_graph_epoch.load(std::memory_order_acquire);
  if (t.graph_epoch != epoch) {
    t.verified.reset();
    t.graph_epoch = epoch;
  }

  ClassInfo acq;
  if (!t.held.empty()) acq = InfoOf(cls);
  for (uint32_t held : t.held) {
    if (held == cls) {
      Violation v;
      v.kind = Violation::Kind::kSelf;
      v.acquiring = acq.name;
      v.acquiring_rank = acq.rank;
      v.held = acq.name;
      v.held_rank = acq.rank;
      v.detail = "same lock class acquired twice on one thread; " +
                 HeldStackString(t.held);
      Report(std::move(v));
      continue;
    }
    ClassInfo held_info = InfoOf(held);
    if (acq.rank != 0 && held_info.rank != 0 && acq.rank <= held_info.rank) {
      Violation v;
      v.kind = Violation::Kind::kRank;
      v.acquiring = acq.name;
      v.acquiring_rank = acq.rank;
      v.held = held_info.name;
      v.held_rank = held_info.rank;
      v.detail = HeldStackString(t.held);
      Report(std::move(v));
    }
    // Held-before edge held -> cls, added once per (thread, graph epoch).
    size_t bit = static_cast<size_t>(held) * kMaxClasses + cls;
    if (t.verified.test(bit)) continue;
    Graph& graph = GetGraph();
    std::lock_guard<std::mutex> lock(graph.mu);
    if (!graph.adj[held].test(cls)) {
      if (Reaches(graph, cls, held)) {
        Violation v;
        v.kind = Violation::Kind::kCycle;
        v.acquiring = acq.name;
        v.acquiring_rank = acq.rank;
        v.held = held_info.name;
        v.held_rank = held_info.rank;
        v.detail = "new edge \"" + held_info.name + "\" -> \"" + acq.name +
                   "\" closes cycle: " + PathString(graph, cls, held) +
                   " -> \"" + acq.name + "\"; " + HeldStackString(t.held);
        Report(std::move(v));
        // Leave the inverted edge out so the graph keeps describing the
        // sanctioned order (and repeated inversions keep reporting).
        continue;
      }
      graph.adj[held].set(cls);
    }
    t.verified.set(bit);
  }
  t.held.push_back(cls);
}

void OnTryAcquired(uint32_t cls) {
  if (cls == 0 || !g_enabled.load(std::memory_order_relaxed)) return;
  State().held.push_back(cls);
}

void OnRelease(uint32_t cls) {
  if (cls == 0) return;
  // Runs even while disabled so stacks stay balanced across a Disable()
  // that happened with locks held. Pops the most recent matching entry
  // (releases are LIFO everywhere in this codebase, but a linear scan keeps
  // this correct even if they were not).
  std::vector<uint32_t>& held = State().held;
  for (size_t i = held.size(); i > 0; i--) {
    if (held[i - 1] == cls) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
}

void AssertHeld(uint32_t cls) {
  if (cls == 0 || !g_enabled.load(std::memory_order_relaxed)) return;
  for (uint32_t held : State().held) {
    if (held == cls) return;
  }
  ClassInfo info = InfoOf(cls);
  std::fprintf(stderr,
               "[lock_order] FATAL: AssertHeld(\"%s\") failed; %s\n",
               info.name.c_str(), HeldStackString(State().held).c_str());
  std::fflush(stderr);
  std::abort();
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetViolationHandler(ViolationHandler handler) {
  std::lock_guard<std::mutex> lock(g_handler_mu);
  g_handler = std::move(handler);
}

std::vector<std::pair<std::string, int>> RegisteredClasses() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, int>> out;
  out.reserve(r.classes.size());
  for (const ClassInfo& info : r.classes) {
    out.emplace_back(info.name, info.rank);
  }
  return out;
}

void ResetGraphForTest() {
  Graph& graph = GetGraph();
  std::lock_guard<std::mutex> lock(graph.mu);
  for (auto& row : graph.adj) row.reset();
  g_graph_epoch.fetch_add(1, std::memory_order_release);
}

size_t HeldDepthForTest() { return State().held.size(); }

}  // namespace lock_order
}  // namespace cfs
