#include "src/common/lock_order.h"

#include <atomic>
#include <bitset>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "src/common/race_detector.h"
#include "src/common/simtime.h"

// The tracker's own state is synchronized with raw std::mutex on purpose:
// instrumenting it with cfs::Mutex would recurse into these hooks.

namespace cfs {
namespace lock_order {
namespace {

constexpr size_t kMaxClasses = kMaxLockClasses;

struct ClassInfo {
  std::string name;
  int rank = 0;
  RpcHoldPolicy policy = RpcHoldPolicy::kNeverAcrossRpc;
  std::string justification;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, uint32_t> by_name;
  std::vector<ClassInfo> classes;  // index = id - 1
};

// Leaked: lock classes are registered from objects with static storage
// duration and must outlive every destructor that releases a lock.
Registry& GetRegistry() {
  static Registry* const r = new Registry();
  return *r;
}

struct Graph {
  std::mutex mu;
  std::bitset<kMaxClasses> adj[kMaxClasses];  // adj[h][c]: h held before c
};

Graph& GetGraph() {
  static Graph* const g = new Graph();
  return *g;
}

std::atomic<bool> g_enabled{true};
std::atomic<bool> g_rpc_enforce{true};
// Bumped by ResetGraphForTest so per-thread verified-edge caches notice.
std::atomic<uint64_t> g_graph_epoch{1};

std::mutex g_handler_mu;
ViolationHandler g_handler;  // empty = default print-and-abort

// Per-class critical-section scope accounting. Plain atomics indexed by
// class id: updated on the acquire/release/RPC fast paths with no lock, and
// snapshotted (approximately — counters move independently) by
// ScopeSnapshot(). Bucket index = RpcHoldBucketFor(rpcs issued under the
// span).
struct ScopeBucket {
  std::atomic<uint64_t> holds{0};
  std::atomic<int64_t> total_us{0};
  std::atomic<int64_t> max_us{0};
};

struct ScopeSlot {
  std::atomic<uint64_t> holds{0};
  std::atomic<uint64_t> holds_with_rpc{0};
  std::atomic<uint64_t> rpcs_under_lock{0};
  std::atomic<uint64_t> rpc_violations{0};
  std::atomic<uint64_t> unbalanced_pops{0};
  std::atomic<bool> unbalanced_warned{false};
  std::atomic<int64_t> max_hold_us{0};
  std::atomic<int64_t> total_hold_us{0};
  ScopeBucket buckets[kNumRpcHoldBuckets];
};

ScopeSlot* GetScope() {
  static ScopeSlot* const s = new ScopeSlot[kMaxClasses];
  return s;
}

std::atomic<uint64_t> g_total_rpc_violations{0};
std::atomic<uint64_t> g_total_unbalanced_pops{0};

void AtomicMax(std::atomic<int64_t>& slot, int64_t value) {
  int64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

// Hold-span timestamps: virtual task-clock nanoseconds under a driving
// simtime::Scheduler, steady-clock nanoseconds otherwise — so the scope
// accounting (and OnRpcEdge's per-bucket spans) measures simulated holds in
// simulated time, identically across same-seed replays.
int64_t NowNanos() { return simtime::NowNanosOrReal(); }

// One held entry on a thread's stack. scope_only entries are logical
// critical sections (e.g. row locks granted over RPC): they participate in
// RPC-under-lock accounting and hold spans but are exempt from the
// rank/cycle/self checks.
struct Held {
  uint32_t cls = 0;
  bool scope_only = false;
  uint64_t rpcs = 0;       // RPCs issued while this entry was held
  int64_t acquire_ns = 0;  // steady-clock acquisition time
};

struct ThreadState {
  std::vector<Held> held;  // acquisition order
  std::bitset<kMaxClasses * kMaxClasses> verified;  // edges already in graph
  uint64_t graph_epoch = 0;
};

ThreadState& State() {
  thread_local ThreadState state;
  return state;
}

ClassInfo InfoOf(uint32_t cls) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (cls == 0 || cls > r.classes.size()) return ClassInfo{"<unknown>", 0};
  return r.classes[cls - 1];
}

std::string HeldStackString(const std::vector<Held>& held) {
  std::string out = "held stack: [";
  for (size_t i = 0; i < held.size(); i++) {
    ClassInfo info = InfoOf(held[i].cls);
    if (i > 0) out += ", ";
    out += "\"" + info.name + "\"(rank " + std::to_string(info.rank);
    if (held[i].scope_only) out += ", scope";
    out += ")";
  }
  out += "]";
  return out;
}

void Report(Violation v) {
  ViolationHandler handler;
  {
    std::lock_guard<std::mutex> lock(g_handler_mu);
    handler = g_handler;
  }
  if (handler) {
    handler(v);
    return;
  }
  // Default: print both lock names and die. fprintf (not CFS_LOG): the
  // logger serializes on a cfs::Mutex and must not re-enter the tracker.
  if (v.kind == Violation::Kind::kRpcUnderLock) {
    std::fprintf(stderr,
                 "[lock_order] FATAL rpc under lock: issuing RPC %s while "
                 "holding \"%s\" (rank %d, policy never-across-rpc); %s\n",
                 v.rpc_edge.c_str(), v.held.c_str(), v.held_rank,
                 v.detail.c_str());
    std::fflush(stderr);
    std::abort();
  }
  const char* kind = v.kind == Violation::Kind::kRank    ? "rank inversion"
                     : v.kind == Violation::Kind::kCycle ? "deadlock cycle"
                                                         : "recursive acquisition";
  std::fprintf(stderr,
               "[lock_order] FATAL %s: acquiring \"%s\" (rank %d) while "
               "holding \"%s\" (rank %d); %s\n",
               kind, v.acquiring.c_str(), v.acquiring_rank, v.held.c_str(),
               v.held_rank, v.detail.c_str());
  std::fflush(stderr);
  std::abort();
}

// True if `from` reaches `to` in the held-before graph. Caller holds
// graph.mu.
bool Reaches(const Graph& graph, uint32_t from, uint32_t to) {
  std::bitset<kMaxClasses> visited;
  std::vector<uint32_t> stack{from};
  while (!stack.empty()) {
    uint32_t n = stack.back();
    stack.pop_back();
    if (n == to) return true;
    if (visited.test(n)) continue;
    visited.set(n);
    const auto& out = graph.adj[n];
    for (size_t i = 1; i < kMaxClasses; i++) {
      if (out.test(i) && !visited.test(i)) stack.push_back(static_cast<uint32_t>(i));
    }
  }
  return false;
}

// Shortest held-before path from `from` to `to`, as " -> "-joined names.
// Caller holds graph.mu.
std::string PathString(const Graph& graph, uint32_t from, uint32_t to) {
  std::vector<int> parent(kMaxClasses, -1);
  std::vector<uint32_t> queue{from};
  parent[from] = static_cast<int>(from);
  for (size_t head = 0; head < queue.size(); head++) {
    uint32_t n = queue[head];
    if (n == to) break;
    for (size_t i = 1; i < kMaxClasses; i++) {
      if (graph.adj[n].test(i) && parent[i] < 0) {
        parent[i] = static_cast<int>(n);
        queue.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  if (parent[to] < 0) return "";
  std::vector<uint32_t> path;
  for (uint32_t n = to;; n = static_cast<uint32_t>(parent[n])) {
    path.push_back(n);
    if (n == from) break;
  }
  std::string out;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += '"';
    out += InfoOf(*it).name;
    out += '"';
  }
  return out;
}

// Records the completed hold span of `entry` into its class's scope slot.
void RecordHoldSpan(const Held& entry) {
  ScopeSlot& slot = GetScope()[entry.cls];
  int64_t hold_us = (NowNanos() - entry.acquire_ns) / 1000;
  if (hold_us < 0) hold_us = 0;
  slot.holds.fetch_add(1, std::memory_order_relaxed);
  slot.total_hold_us.fetch_add(hold_us, std::memory_order_relaxed);
  AtomicMax(slot.max_hold_us, hold_us);
  if (entry.rpcs > 0) slot.holds_with_rpc.fetch_add(1, std::memory_order_relaxed);
  ScopeBucket& b = slot.buckets[RpcHoldBucketFor(entry.rpcs)];
  b.holds.fetch_add(1, std::memory_order_relaxed);
  b.total_us.fetch_add(hold_us, std::memory_order_relaxed);
  AtomicMax(b.max_us, hold_us);
}

// Pops the most recent held entry of class `cls` with the given scope-ness
// and records its hold span. A release with no matching entry is a wrapper
// bug (or an enable/disable toggle with locks held): counted per class and
// warned about once per class — never fatal, the lock itself is fine.
void PopHeld(uint32_t cls, bool scope_only, const char* what) {
  if (cls == 0) return;
  std::vector<Held>& held = State().held;
  for (size_t i = held.size(); i > 0; i--) {
    if (held[i - 1].cls == cls && held[i - 1].scope_only == scope_only) {
      RecordHoldSpan(held[i - 1]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
  if (!g_enabled.load(std::memory_order_relaxed)) {
    // Acquired while tracking was disabled; nothing was pushed, so nothing
    // to pop — not an imbalance.
    return;
  }
  ScopeSlot& slot = GetScope()[cls < kMaxClasses ? cls : 0];
  slot.unbalanced_pops.fetch_add(1, std::memory_order_relaxed);
  g_total_unbalanced_pops.fetch_add(1, std::memory_order_relaxed);
  bool expected = false;
  if (slot.unbalanced_warned.compare_exchange_strong(expected, true)) {
    ClassInfo info = InfoOf(cls);
    std::fprintf(stderr,
                 "[lock_order] WARNING: %s of \"%s\" with no matching held "
                 "entry on this thread (reported once per class; see "
                 "unbalanced_pops counter). Likely an acquire/release "
                 "imbalance in a wrapper, or tracking was toggled with the "
                 "lock held.\n",
                 what, info.name.c_str());
    std::fflush(stderr);
  }
}

void PushHeld(uint32_t cls, bool scope_only) {
  State().held.push_back(Held{cls, scope_only, 0, NowNanos()});
}

}  // namespace

const char* RpcHoldPolicyName(RpcHoldPolicy policy) {
  return policy == RpcHoldPolicy::kAllowedAcrossRpc ? "allowed-across-rpc"
                                                    : "never-across-rpc";
}

const char* RpcHoldBucketLabel(size_t bucket) {
  switch (bucket) {
    case 0: return "0 rpcs";
    case 1: return "1 rpc";
    case 2: return "2-7 rpcs";
    default: return "8+ rpcs";
  }
}

size_t RpcHoldBucketFor(uint64_t rpcs) {
  if (rpcs == 0) return 0;
  if (rpcs == 1) return 1;
  if (rpcs < 8) return 2;
  return 3;
}

uint32_t RegisterClass(const char* name, int rank) {
  return RegisterClass(name, rank, RpcHoldPolicy::kNeverAcrossRpc, nullptr);
}

uint32_t RegisterClass(const char* name, int rank, RpcHoldPolicy policy,
                       const char* justification) {
  if (policy == RpcHoldPolicy::kAllowedAcrossRpc &&
      (justification == nullptr || justification[0] == '\0')) {
    std::fprintf(stderr,
                 "[lock_order] FATAL: lock class \"%s\" registered as "
                 "allowed-across-rpc without a justification. Holding a lock "
                 "across an RPC is the exception the paper exists to avoid; "
                 "it must explain itself.\n",
                 name);
    std::fflush(stderr);
    std::abort();
  }
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.by_name.find(name);
  if (it != r.by_name.end()) {
    const ClassInfo& existing = r.classes[it->second - 1];
    if (existing.rank != rank || existing.policy != policy ||
        existing.justification != (justification ? justification : "")) {
      std::fprintf(stderr,
                   "[lock_order] FATAL: lock class \"%s\" re-registered with "
                   "rank %d / policy %s (was rank %d / policy %s)\n",
                   name, rank, RpcHoldPolicyName(policy), existing.rank,
                   RpcHoldPolicyName(existing.policy));
      std::fflush(stderr);
      std::abort();
    }
    return it->second;
  }
  if (r.classes.size() >= kMaxClasses - 1) {
    std::fprintf(stderr, "[lock_order] FATAL: too many lock classes (>%zu)\n",
                 kMaxClasses - 1);
    std::fflush(stderr);
    std::abort();
  }
  r.classes.push_back(
      ClassInfo{name, rank, policy, justification ? justification : ""});
  uint32_t id = static_cast<uint32_t>(r.classes.size());
  r.by_name.emplace(name, id);
  return id;
}

void OnAcquire(uint32_t cls) {
  // Preemption point: a blocking lock acquisition is where schedule choice
  // decides who enters the critical section first (DESIGN.md §12).
  simtime::FuzzPoint(simtime::FuzzKind::kLockAcquire);
  if (cls == 0 || !g_enabled.load(std::memory_order_relaxed)) return;
  ThreadState& t = State();
  uint64_t epoch = g_graph_epoch.load(std::memory_order_acquire);
  if (t.graph_epoch != epoch) {
    t.verified.reset();
    t.graph_epoch = epoch;
  }

  ClassInfo acq;
  if (!t.held.empty()) acq = InfoOf(cls);
  for (const Held& entry : t.held) {
    // Logical (scope-only) entries are not mutexes: blocking on them is
    // resolved by the lock manager's own timeouts, they are legally held
    // many-at-a-time, and they would flood the held-before graph. They only
    // matter to the RPC/scope accounting.
    if (entry.scope_only) continue;
    uint32_t held = entry.cls;
    if (held == cls) {
      Violation v;
      v.kind = Violation::Kind::kSelf;
      v.acquiring = acq.name;
      v.acquiring_rank = acq.rank;
      v.held = acq.name;
      v.held_rank = acq.rank;
      v.detail = "same lock class acquired twice on one thread; " +
                 HeldStackString(t.held);
      Report(std::move(v));
      continue;
    }
    ClassInfo held_info = InfoOf(held);
    if (acq.rank != 0 && held_info.rank != 0 && acq.rank <= held_info.rank) {
      Violation v;
      v.kind = Violation::Kind::kRank;
      v.acquiring = acq.name;
      v.acquiring_rank = acq.rank;
      v.held = held_info.name;
      v.held_rank = held_info.rank;
      v.detail = HeldStackString(t.held);
      Report(std::move(v));
    }
    // Held-before edge held -> cls, added once per (thread, graph epoch).
    size_t bit = static_cast<size_t>(held) * kMaxClasses + cls;
    if (t.verified.test(bit)) continue;
    Graph& graph = GetGraph();
    std::lock_guard<std::mutex> lock(graph.mu);
    if (!graph.adj[held].test(cls)) {
      if (Reaches(graph, cls, held)) {
        Violation v;
        v.kind = Violation::Kind::kCycle;
        v.acquiring = acq.name;
        v.acquiring_rank = acq.rank;
        v.held = held_info.name;
        v.held_rank = held_info.rank;
        v.detail = "new edge \"" + held_info.name + "\" -> \"" + acq.name +
                   "\" closes cycle: " + PathString(graph, cls, held) +
                   " -> \"" + acq.name + "\"; " + HeldStackString(t.held);
        Report(std::move(v));
        // Leave the inverted edge out so the graph keeps describing the
        // sanctioned order (and repeated inversions keep reporting).
        continue;
      }
      graph.adj[held].set(cls);
    }
    t.verified.set(bit);
  }
  PushHeld(cls, /*scope_only=*/false);
}

void OnTryAcquired(uint32_t cls) {
  if (cls == 0 || !g_enabled.load(std::memory_order_relaxed)) return;
  PushHeld(cls, /*scope_only=*/false);
}

void OnRelease(uint32_t cls) {
  simtime::FuzzPoint(simtime::FuzzKind::kLockRelease);
  // Runs even while disabled so stacks stay balanced across a Disable()
  // that happened with locks held. Pops the most recent matching entry
  // (releases are LIFO everywhere in this codebase, but a linear scan keeps
  // this correct even if they were not).
  PopHeld(cls, /*scope_only=*/false, "release");
}

void OnScopeEnter(uint32_t cls) {
  if (cls == 0 || !g_enabled.load(std::memory_order_relaxed)) return;
  PushHeld(cls, /*scope_only=*/true);
  // Logical critical sections protect data too (a transaction's row locks
  // guard the rows): feed them into the race detector's lockset.
  race::OnLockAcquired(cls, race::LockMode::kExclusive);
}

void OnScopeExit(uint32_t cls) {
  PopHeld(cls, /*scope_only=*/true, "scope exit");
  race::OnLockReleased(cls, race::LockMode::kExclusive);
}

void OnRpcEdge(const char* from_node, const char* to_node) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  ThreadState& t = State();
  if (t.held.empty()) return;
  ScopeSlot* scope = GetScope();
  bool enforce = g_rpc_enforce.load(std::memory_order_relaxed);
  // Snapshot violations before mutating: Report may not return (abort), so
  // count first, and walk by index because a recording handler could
  // re-enter locking code.
  for (size_t i = 0; i < t.held.size(); i++) {
    Held& entry = t.held[i];
    entry.rpcs++;
    ScopeSlot& slot = scope[entry.cls];
    slot.rpcs_under_lock.fetch_add(1, std::memory_order_relaxed);
    ClassInfo info = InfoOf(entry.cls);
    if (info.policy != RpcHoldPolicy::kNeverAcrossRpc) continue;
    slot.rpc_violations.fetch_add(1, std::memory_order_relaxed);
    g_total_rpc_violations.fetch_add(1, std::memory_order_relaxed);
    if (!enforce) continue;
    Violation v;
    v.kind = Violation::Kind::kRpcUnderLock;
    v.held = info.name;
    v.held_rank = info.rank;
    v.rpc_edge = std::string(from_node) + " -> " + to_node;
    v.detail = HeldStackString(t.held);
    Report(std::move(v));
  }
}

void AssertHeld(uint32_t cls) {
  if (cls == 0 || !g_enabled.load(std::memory_order_relaxed)) return;
  for (const Held& entry : State().held) {
    if (entry.cls == cls) return;
  }
  ClassInfo info = InfoOf(cls);
  std::fprintf(stderr,
               "[lock_order] FATAL: AssertHeld(\"%s\") failed; %s\n",
               info.name.c_str(), HeldStackString(State().held).c_str());
  std::fflush(stderr);
  std::abort();
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetRpcEnforcement(bool enforce) {
  g_rpc_enforce.store(enforce, std::memory_order_relaxed);
}

bool RpcEnforcement() { return g_rpc_enforce.load(std::memory_order_relaxed); }

void SetViolationHandler(ViolationHandler handler) {
  std::lock_guard<std::mutex> lock(g_handler_mu);
  g_handler = std::move(handler);
}

std::vector<std::pair<std::string, int>> RegisteredClasses() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, int>> out;
  out.reserve(r.classes.size());
  for (const ClassInfo& info : r.classes) {
    out.emplace_back(info.name, info.rank);
  }
  return out;
}

std::string ClassName(uint32_t cls) { return InfoOf(cls).name; }

std::vector<ClassScope> ScopeSnapshot() {
  std::vector<ClassInfo> classes;
  {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    classes = r.classes;
  }
  ScopeSlot* scope = GetScope();
  std::vector<ClassScope> out;
  out.reserve(classes.size());
  for (size_t i = 0; i < classes.size(); i++) {
    const ScopeSlot& slot = scope[i + 1];
    ClassScope cs;
    cs.name = classes[i].name;
    cs.rank = classes[i].rank;
    cs.policy = classes[i].policy;
    cs.justification = classes[i].justification;
    cs.holds = slot.holds.load(std::memory_order_relaxed);
    cs.holds_with_rpc = slot.holds_with_rpc.load(std::memory_order_relaxed);
    cs.rpcs_under_lock = slot.rpcs_under_lock.load(std::memory_order_relaxed);
    cs.rpc_violations = slot.rpc_violations.load(std::memory_order_relaxed);
    cs.unbalanced_pops = slot.unbalanced_pops.load(std::memory_order_relaxed);
    cs.max_hold_us = slot.max_hold_us.load(std::memory_order_relaxed);
    cs.total_hold_us = slot.total_hold_us.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kNumRpcHoldBuckets; b++) {
      cs.rpc_buckets[b].holds =
          slot.buckets[b].holds.load(std::memory_order_relaxed);
      cs.rpc_buckets[b].total_us =
          slot.buckets[b].total_us.load(std::memory_order_relaxed);
      cs.rpc_buckets[b].max_us =
          slot.buckets[b].max_us.load(std::memory_order_relaxed);
    }
    out.push_back(std::move(cs));
  }
  return out;
}

void ResetScopeStats() {
  ScopeSlot* scope = GetScope();
  for (size_t i = 0; i < kMaxClasses; i++) {
    ScopeSlot& slot = scope[i];
    slot.holds.store(0, std::memory_order_relaxed);
    slot.holds_with_rpc.store(0, std::memory_order_relaxed);
    slot.rpcs_under_lock.store(0, std::memory_order_relaxed);
    slot.rpc_violations.store(0, std::memory_order_relaxed);
    slot.unbalanced_pops.store(0, std::memory_order_relaxed);
    slot.max_hold_us.store(0, std::memory_order_relaxed);
    slot.total_hold_us.store(0, std::memory_order_relaxed);
    for (size_t b = 0; b < kNumRpcHoldBuckets; b++) {
      slot.buckets[b].holds.store(0, std::memory_order_relaxed);
      slot.buckets[b].total_us.store(0, std::memory_order_relaxed);
      slot.buckets[b].max_us.store(0, std::memory_order_relaxed);
    }
    // unbalanced_warned deliberately not reset: once per class per process.
  }
}

uint64_t TotalRpcUnderLockViolations() {
  return g_total_rpc_violations.load(std::memory_order_relaxed);
}

uint64_t TotalUnbalancedPops() {
  return g_total_unbalanced_pops.load(std::memory_order_relaxed);
}

void ResetGraphForTest() {
  Graph& graph = GetGraph();
  std::lock_guard<std::mutex> lock(graph.mu);
  for (auto& row : graph.adj) row.reset();
  g_graph_epoch.fetch_add(1, std::memory_order_release);
}

size_t HeldDepthForTest() { return State().held.size(); }

}  // namespace lock_order
}  // namespace cfs
