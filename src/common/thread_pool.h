// Fixed-size worker pool with a bounded-growth task queue. Used by raft
// groups for applying entries off the RPC path and by the GC for background
// scans.

#ifndef CFS_COMMON_THREAD_POOL_H_
#define CFS_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace cfs {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task; returns false after Shutdown().
  bool Submit(std::function<void()> task);

  // Blocks until the queue drains and all in-flight tasks finish.
  void Wait();

  // Stops accepting tasks, drains the queue, joins workers.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::string name_;  // tsa-coverage: allow(immutable after construction)
  // Tasks themselves run with mu_ released (a task may acquire any lock).
  Mutex mu_{"pool.queue", 83};
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  // Spawned in the constructor, joined only by Shutdown after shutdown_
  // flips — joining under mu_ would deadlock against WorkerLoop.
  // tsa-coverage: allow(start/stop lifecycle only)
  std::vector<std::thread> workers_;
  size_t active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace cfs

#endif  // CFS_COMMON_THREAD_POOL_H_
