// Binary record encoding used by the WAL, the KV store, and raft messages:
// little-endian fixed ints, LEB128 varints, and length-prefixed strings.
// Decoding is cursor-based and returns false on truncated input instead of
// throwing, so corrupt tails of a WAL can be detected and discarded.

#ifndef CFS_COMMON_ENCODING_H_
#define CFS_COMMON_ENCODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace cfs {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

inline void PutVarint32(std::string* dst, uint32_t v) {
  PutVarint64(dst, v);
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

// Cursor over an immutable byte buffer.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  bool GetFixed32(uint32_t* v) {
    if (data_.size() < 4) return false;
    std::memcpy(v, data_.data(), 4);
    data_.remove_prefix(4);
    return true;
  }

  bool GetFixed64(uint64_t* v) {
    if (data_.size() < 8) return false;
    std::memcpy(v, data_.data(), 8);
    data_.remove_prefix(8);
    return true;
  }

  bool GetVarint64(uint64_t* v) {
    uint64_t result = 0;
    int shift = 0;
    size_t i = 0;
    while (i < data_.size() && shift <= 63) {
      unsigned char byte = static_cast<unsigned char>(data_[i]);
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      i++;
      if ((byte & 0x80) == 0) {
        data_.remove_prefix(i);
        *v = result;
        return true;
      }
      shift += 7;
    }
    return false;
  }

  bool GetVarint32(uint32_t* v) {
    uint64_t x;
    if (!GetVarint64(&x) || x > UINT32_MAX) return false;
    *v = static_cast<uint32_t>(x);
    return true;
  }

  bool GetLengthPrefixed(std::string_view* out) {
    uint64_t len;
    if (!GetVarint64(&len) || data_.size() < len) return false;
    *out = data_.substr(0, len);
    data_.remove_prefix(len);
    return true;
  }

  bool GetLengthPrefixed(std::string* out) {
    std::string_view sv;
    if (!GetLengthPrefixed(&sv)) return false;
    out->assign(sv.data(), sv.size());
    return true;
  }

  bool empty() const { return data_.empty(); }
  size_t remaining() const { return data_.size(); }
  std::string_view rest() const { return data_; }

 private:
  std::string_view data_;
};

}  // namespace cfs

#endif  // CFS_COMMON_ENCODING_H_
