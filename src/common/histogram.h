// Log-bucketed latency histogram with percentile queries (P50/P99/P999) and
// a thread-striped wrapper so many client threads can record without a
// shared cache line. Values are in microseconds.

#ifndef CFS_COMMON_HISTOGRAM_H_
#define CFS_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cfs {

class Histogram {
 public:
  // Buckets: 0..kLinearMax in steps of kLinearStep, then x1.25 geometric.
  Histogram();

  void Record(int64_t value_us);
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const;
  int64_t max() const { return max_; }
  int64_t Percentile(double p) const;  // p clamped to [0, 100]; 0 when empty
  int64_t P50() const { return Percentile(50); }
  int64_t P99() const { return Percentile(99); }
  int64_t P999() const { return Percentile(99.9); }

  std::string Summary() const;

 private:
  size_t BucketFor(int64_t v) const;
  int64_t BucketUpper(size_t index) const;

  std::vector<int64_t> buckets_;
  std::vector<int64_t> bounds_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t max_ = 0;
};

// Per-thread histogram shards; call Aggregate() after the workload quiesces.
class StripedHistogram {
 public:
  explicit StripedHistogram(size_t stripes = 64);

  // thread_index need not be dense; it is folded onto the stripe count.
  void Record(size_t thread_index, int64_t value_us);
  // Folds a pre-aggregated histogram into one stripe (end-of-run merges).
  void Merge(const Histogram& other);
  Histogram Aggregate() const;
  void Reset();

 private:
  struct Stripe {
    std::unique_ptr<Histogram> h;
    std::unique_ptr<std::atomic_flag> lock;
  };
  std::vector<Stripe> stripes_;
};

}  // namespace cfs

#endif  // CFS_COMMON_HISTOGRAM_H_
