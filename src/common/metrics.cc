#include "src/common/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/lock_order.h"
#include "src/common/simtime.h"
#include "src/common/trace_event.h"

namespace cfs {

namespace {

// Dense per-thread index for histogram striping.
size_t ThreadIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendInt(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

}  // namespace

void LatencyRecorder::Record(int64_t value_us) {
  striped_.Record(ThreadIndex(), value_us);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = [] {
    MetricsRegistry* r = new MetricsRegistry();
#ifdef CFS_LOCK_ORDER_TRACKING
    // Critical-section scope audit (src/common/lock_order.h). Registered
    // here rather than in lock_order.cc so the tracker (which every mutex
    // hook runs through) never depends on the metrics layer. Per-class
    // samples are emitted only for classes with something to report, so a
    // clean CFS run dumps just the two process-wide totals (both 0).
    r->RegisterProbe("lock_scope", [] {
      std::vector<std::pair<std::string, int64_t>> samples;
      samples.emplace_back(
          "rpc_under_lock_violations",
          static_cast<int64_t>(lock_order::TotalRpcUnderLockViolations()));
      samples.emplace_back(
          "unbalanced_pops",
          static_cast<int64_t>(lock_order::TotalUnbalancedPops()));
      for (const auto& cs : lock_order::ScopeSnapshot()) {
        if (cs.rpcs_under_lock == 0 && cs.rpc_violations == 0 &&
            cs.unbalanced_pops == 0) {
          continue;
        }
        samples.emplace_back(cs.name + ".rpcs_under_lock",
                             static_cast<int64_t>(cs.rpcs_under_lock));
        samples.emplace_back(cs.name + ".max_hold_us", cs.max_hold_us);
        if (cs.rpc_violations > 0) {
          samples.emplace_back(cs.name + ".rpc_violations",
                               static_cast<int64_t>(cs.rpc_violations));
        }
        if (cs.unbalanced_pops > 0) {
          samples.emplace_back(cs.name + ".unbalanced_pops",
                               static_cast<int64_t>(cs.unbalanced_pops));
        }
      }
      return samples;
    });
#endif
    return r;
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock guard(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock guard(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

LatencyRecorder* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock guard(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyRecorder>())
             .first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::RegisterProbe(std::string name, ProbeFn fn) {
  MutexLock guard(mu_);
  uint64_t handle = next_probe_++;
  probes_.emplace(handle, std::make_pair(std::move(name), std::move(fn)));
  return handle;
}

void MetricsRegistry::UnregisterProbe(uint64_t handle) {
  MutexLock guard(mu_);
  probes_.erase(handle);
}

namespace {

// Probe callbacks take their owners' locks (e.g. SimNet's edge table), so
// the dumpers snapshot the probe list under the registry lock and invoke
// the callbacks after releasing it — the registry lock must stay a leaf.
using ProbeSnapshot =
    std::vector<std::pair<std::string, MetricsRegistry::ProbeFn>>;

}  // namespace

std::string MetricsRegistry::DumpJson() const {
  ProbeSnapshot probes;
  std::string out = "{";

  MutexLock guard(mu_);
  out.append("\"counters\":{");
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendUint(&out, counter->value());
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendInt(&out, gauge->value());
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, recorder] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    Histogram h = recorder->Snapshot();
    AppendJsonString(&out, name);
    out.append(":{\"count\":");
    AppendInt(&out, h.count());
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"mean_us\":%.1f", h.mean());
    out.append(buf);
    out.append(",\"p50_us\":");
    AppendInt(&out, h.P50());
    out.append(",\"p99_us\":");
    AppendInt(&out, h.P99());
    out.append(",\"p999_us\":");
    AppendInt(&out, h.P999());
    out.append(",\"max_us\":");
    AppendInt(&out, h.max());
    out.push_back('}');
  }
  out.append("},\"probes\":{");
  probes.reserve(probes_.size());
  for (const auto& [handle, named_fn] : probes_) {
    (void)handle;
    probes.push_back(named_fn);
  }
  guard.Unlock();

  first = true;
  for (const auto& [name, fn] : probes) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.append(":{");
    bool first_sample = true;
    for (const auto& [key, value] : fn()) {
      if (!first_sample) out.push_back(',');
      first_sample = false;
      AppendJsonString(&out, key);
      out.push_back(':');
      AppendInt(&out, value);
    }
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

std::string MetricsRegistry::DumpText() const {
  ProbeSnapshot probes;
  std::string out;
  MutexLock guard(mu_);
  for (const auto& [name, counter] : counters_) {
    out.append(name);
    out.push_back(' ');
    AppendUint(&out, counter->value());
    out.push_back('\n');
  }
  for (const auto& [name, gauge] : gauges_) {
    out.append(name);
    out.push_back(' ');
    AppendInt(&out, gauge->value());
    out.push_back('\n');
  }
  for (const auto& [name, recorder] : histograms_) {
    out.append(name);
    out.push_back(' ');
    out.append(recorder->Snapshot().Summary());
    out.push_back('\n');
  }
  probes.reserve(probes_.size());
  for (const auto& [handle, named_fn] : probes_) {
    (void)handle;
    probes.push_back(named_fn);
  }
  guard.Unlock();

  for (const auto& [name, fn] : probes) {
    for (const auto& [key, value] : fn()) {
      out.append(name);
      out.push_back('.');
      out.append(key);
      out.push_back(' ');
      AppendInt(&out, value);
      out.push_back('\n');
    }
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock guard(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, recorder] : histograms_) recorder->Reset();
}

// ---------------------------------------------------------------------------
// OpTrace / TraceSpan

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kResolve:
      return "resolve";
    case Phase::kLockWait:
      return "lock_wait";
    case Phase::kShardExec:
      return "shard_exec";
    case Phase::kTwoPcPrepare:
      return "2pc_prepare";
    case Phase::kTwoPcDecision:
      return "2pc_decision";
    case Phase::kWalFsync:
      return "wal_fsync";
    case Phase::kRaftAppend:
      return "raft_append";
    case Phase::kRenamer:
      return "renamer";
    case Phase::kResolveCached:
      return "resolve_cached";
    case Phase::kRpc:
      return "rpc";
  }
  return "unknown";
}

struct OpTrace::Tls {
  OpTraceData data;
  MonoNanos op_start = 0;
  // Bit i set while a TraceSpan for phase i is open on this thread; guards
  // against double counting from nested spans and manual AddPhase stamps.
  uint16_t active_mask = 0;
};
static_assert(kNumPhases <= 16, "active_mask is 16 bits");

OpTrace::Tls& OpTrace::tls() {
  thread_local Tls t;
  return t;
}

void OpTrace::Begin(const char* op_name) {
  Tls& t = tls();
  t.data = OpTraceData{};
  t.op_start = simtime::NowNanosOrReal();
  trace::BeginOp(op_name);
}

OpTraceData OpTrace::Finish() {
  Tls& t = tls();
  t.data.total_us = (simtime::NowNanosOrReal() - t.op_start) / 1000;
  trace::FinishOp(t.data.total_us);
  return t.data;
}

void OpTrace::AddPhase(Phase phase, int64_t us) {
  Tls& t = tls();
  size_t i = static_cast<size_t>(phase);
  if (t.active_mask & (1u << i)) return;  // an open span owns this phase
  t.data.us[i] += us;
  t.data.count[i]++;
}

int64_t OpTrace::PhaseUs(Phase phase) {
  return tls().data.us[static_cast<size_t>(phase)];
}

uint32_t OpTrace::PhaseCount(Phase phase) {
  return tls().data.count[static_cast<size_t>(phase)];
}

void OpTrace::ClearPhase(Phase phase) {
  Tls& t = tls();
  size_t i = static_cast<size_t>(phase);
  t.data.us[i] = 0;
  t.data.count[i] = 0;
}

namespace {

trace::Category CategoryForPhase(Phase phase) {
  switch (phase) {
    case Phase::kResolve:
      return trace::Category::kResolve;
    case Phase::kLockWait:
      return trace::Category::kLock;
    case Phase::kShardExec:
      return trace::Category::kExec;
    case Phase::kTwoPcPrepare:
    case Phase::kTwoPcDecision:
      return trace::Category::kTwoPc;
    case Phase::kWalFsync:
      return trace::Category::kWal;
    case Phase::kRaftAppend:
      return trace::Category::kRaft;
    case Phase::kRenamer:
      return trace::Category::kRename;
    case Phase::kResolveCached:
      return trace::Category::kCache;
    case Phase::kRpc:
      return trace::Category::kRpc;
  }
  return trace::Category::kOp;
}

}  // namespace

TraceSpan::TraceSpan(Phase phase, const char* name)
    : phase_(phase),
      emit_(trace::Active()),
      name_(name != nullptr ? name : PhaseName(phase).data()) {
  OpTrace::Tls& t = OpTrace::tls();
  uint16_t bit = static_cast<uint16_t>(1u << static_cast<size_t>(phase));
  owns_ = (t.active_mask & bit) == 0;
  if (owns_) t.active_mask |= bit;
  if (emit_) span_id_ = trace::PushSpan(&saved_parent_);
  // One clock read feeds both the accumulator and the causal event, so the
  // two stay in agreement by construction.
  if (owns_ || emit_) start_ = simtime::NowNanosOrReal();
}

TraceSpan::~TraceSpan() {
  if (!owns_ && !emit_) return;
  MonoNanos end = simtime::NowNanosOrReal();
  if (owns_) {
    OpTrace::Tls& t = OpTrace::tls();
    size_t i = static_cast<size_t>(phase_);
    t.active_mask &= static_cast<uint16_t>(~(1u << i));
    t.data.us[i] += (end - start_) / 1000;
    t.data.count[i]++;
  }
  if (emit_ && span_id_ != 0) {
    trace::PopSpan(span_id_, saved_parent_, CategoryForPhase(phase_), name_,
                   static_cast<uint8_t>(phase_), start_ / 1000,
                   (end - start_) / 1000);
  }
}

// ---------------------------------------------------------------------------
// PhaseBreakdown

void PhaseBreakdown::Add(const OpTraceData& trace) {
  for (size_t i = 0; i < kNumPhases; i++) {
    us[i] += trace.us[i];
    count[i] += trace.count[i];
  }
  total_us += trace.total_us;
  ops++;
}

void PhaseBreakdown::Merge(const PhaseBreakdown& other) {
  for (size_t i = 0; i < kNumPhases; i++) {
    us[i] += other.us[i];
    count[i] += other.count[i];
  }
  total_us += other.total_us;
  ops += other.ops;
}

double PhaseBreakdown::Share(Phase p) const {
  if (total_us <= 0) return 0.0;
  double share = static_cast<double>(PhaseUs(p)) /
                 static_cast<double>(total_us);
  return share > 1.0 ? 1.0 : share;
}

double PhaseBreakdown::AvgPhaseUs(Phase p) const {
  return ops == 0 ? 0.0
                  : static_cast<double>(PhaseUs(p)) / static_cast<double>(ops);
}

double PhaseBreakdown::AvgTotalUs() const {
  return ops == 0 ? 0.0
                  : static_cast<double>(total_us) / static_cast<double>(ops);
}

void PhaseBreakdown::PublishTo(MetricsRegistry& registry,
                               const std::string& label) const {
  const std::string prefix = "trace." + label + ".";
  for (size_t i = 0; i < kNumPhases; i++) {
    if (count[i] == 0 && us[i] == 0) continue;
    std::string phase(PhaseName(static_cast<Phase>(i)));
    registry.GetCounter(prefix + phase + ".us")
        ->Add(static_cast<uint64_t>(us[i]));
    registry.GetCounter(prefix + phase + ".count")->Add(count[i]);
  }
  registry.GetCounter(prefix + "ops")->Add(ops);
  registry.GetCounter(prefix + "total_us")
      ->Add(static_cast<uint64_t>(total_us));
  registry.GetGauge(prefix + "lock_share_pct")
      ->Set(static_cast<int64_t>(Share(Phase::kLockWait) * 100.0 + 0.5));
}

}  // namespace cfs
