// Compile-time lock discipline: Clang thread-safety-analysis macros plus the
// annotated capability wrappers (cfs::Mutex / cfs::SharedMutex / cfs::CondVar)
// every subsystem uses instead of the raw std synchronization types.
//
// Three layers, from bottom to top:
//
//   1. The annotation macros (GUARDED_BY, REQUIRES, ACQUIRE/RELEASE, ...).
//      Under clang they expand to thread-safety attributes, so
//      `-Wthread-safety` (the CFS_WERROR_TSA CMake option) proves at compile
//      time that every access to a guarded field happens with the right lock
//      held. Under other compilers they expand to nothing — zero overhead,
//      and the annotations are still enforced whenever anyone builds with
//      clang (scripts/lint.sh).
//
//   2. cfs::Mutex / cfs::SharedMutex: drop-in replacements for std::mutex /
//      std::shared_mutex carrying the CAPABILITY attribute (std types are
//      invisible to the analysis) and a registered name + rank. Ranks encode
//      the allowed nesting order documented in DESIGN.md ("Concurrency
//      invariants"): a lock may only be acquired while every held lock has a
//      strictly smaller rank.
//
//   3. The runtime lock-order tracker (src/common/lock_order.h, compiled in
//      when CFS_LOCK_ORDER_TRACKING is defined — the CFS_LOCK_ORDER CMake
//      option, default ON). Every acquisition checks the rank rule and feeds
//      a global held-before graph with cycle detection, so a potential
//      deadlock aborts with both lock names the first time the inverted
//      order is *executed* — even when the two acquisitions are separated by
//      an RPC hop (SimNet handlers run on the caller's thread, so lock
//      nesting spans "network" boundaries). The annotations cannot see that;
//      TSan only reports it if two threads actually race into the deadlock.
//
// Lock naming convention (enforced by scripts/docs_lint.sh): construct every
// mutex on a single line as  cfs::Mutex mu_{"subsystem.name", rank};  so the
// registered name/rank can be cross-checked against DESIGN.md's hierarchy
// table by grep.

#ifndef CFS_COMMON_THREAD_ANNOTATIONS_H_
#define CFS_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "src/common/lock_order.h"
#include "src/common/race_detector.h"

// Race-detector lockset hooks (src/common/race_detector.h) ride on the
// lock-order class ids, so they exist only when both CFS_LOCK_ORDER and
// CFS_RACE_DETECT are on (CMake enforces the dependency).
#if defined(CFS_LOCK_ORDER_TRACKING) && defined(CFS_RACE_DETECT_ENABLED)
#define CFS_RACE_LOCK_HOOK_(call) ::cfs::race::call
#else
#define CFS_RACE_LOCK_HOOK_(call) ((void)0)
#endif

// ---------------------------------------------------------------------------
// Annotation macros (abseil/LLVM style). No-ops outside clang.

#if defined(__clang__)
#define CFS_TSA_ATTRIBUTE_(x) __attribute__((x))
#else
#define CFS_TSA_ATTRIBUTE_(x)  // no-op
#endif

#define CAPABILITY(x) CFS_TSA_ATTRIBUTE_(capability(x))
#define SCOPED_CAPABILITY CFS_TSA_ATTRIBUTE_(scoped_lockable)
#define GUARDED_BY(x) CFS_TSA_ATTRIBUTE_(guarded_by(x))
#define PT_GUARDED_BY(x) CFS_TSA_ATTRIBUTE_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) CFS_TSA_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) CFS_TSA_ATTRIBUTE_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) CFS_TSA_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  CFS_TSA_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) CFS_TSA_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  CFS_TSA_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) CFS_TSA_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  CFS_TSA_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  CFS_TSA_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) CFS_TSA_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  CFS_TSA_ATTRIBUTE_(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) CFS_TSA_ATTRIBUTE_(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) CFS_TSA_ATTRIBUTE_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  CFS_TSA_ATTRIBUTE_(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) CFS_TSA_ATTRIBUTE_(lock_returned(x))
// Escape hatch for code the analysis cannot model. The only legitimate uses
// are inside this header's wrappers; scripts/lint.sh rejects it anywhere else.
#define NO_THREAD_SAFETY_ANALYSIS CFS_TSA_ATTRIBUTE_(no_thread_safety_analysis)

namespace cfs {

// ---------------------------------------------------------------------------
// cfs::Mutex — annotated, named, ranked std::mutex.

class CAPABILITY("mutex") Mutex {
 public:
  // `name` ("subsystem.lock") and `rank` identify this mutex's lock *class*
  // in the runtime order tracker; all instances constructed with the same
  // name share one class. rank > 0 enforces "only acquire while every held
  // lock has a smaller rank"; rank 0 opts out of the rank rule and relies on
  // the held-before graph alone (used by tests).
  //
  // `policy` is the class's critical-section scope policy (DESIGN.md §9):
  // kNeverAcrossRpc (default) makes issuing a SimNet RPC with this class
  // held a reported violation; kAllowedAcrossRpc marks a class that
  // intentionally spans round trips (baseline modeling) and requires a
  // non-empty `justification`.
  explicit Mutex(const char* name, int rank = 0,
                 lock_order::RpcHoldPolicy policy =
                     lock_order::RpcHoldPolicy::kNeverAcrossRpc,
                 const char* justification = nullptr) {
#ifdef CFS_LOCK_ORDER_TRACKING
    order_class_ = lock_order::RegisterClass(name, rank, policy, justification);
#else
    (void)name;
    (void)rank;
    (void)policy;
    (void)justification;
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#ifdef CFS_LOCK_ORDER_TRACKING
    lock_order::OnAcquire(order_class_);
#endif
    mu_.lock();
    CFS_RACE_LOCK_HOOK_(
        OnLockAcquired(order_class_, race::LockMode::kExclusive));
  }

  void Unlock() RELEASE() {
    // Race-detector hook first: the release→acquire happens-before edge
    // must be published before another thread can win the lock.
    CFS_RACE_LOCK_HOOK_(
        OnLockReleased(order_class_, race::LockMode::kExclusive));
    mu_.unlock();
#ifdef CFS_LOCK_ORDER_TRACKING
    lock_order::OnRelease(order_class_);
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#ifdef CFS_LOCK_ORDER_TRACKING
    // try_lock never blocks, so it cannot close a deadlock cycle itself; it
    // is recorded as held (without an order check) so that later blocking
    // acquisitions are checked against it.
    lock_order::OnTryAcquired(order_class_);
#endif
    CFS_RACE_LOCK_HOOK_(
        OnLockAcquired(order_class_, race::LockMode::kExclusive));
    return true;
  }

  // Runtime claim that the calling thread holds this mutex's lock class
  // (the tracker cannot distinguish instances of one class). Aborts if not.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifdef CFS_LOCK_ORDER_TRACKING
    lock_order::AssertHeld(order_class_);
#endif
  }

  // This mutex's lock-order class id (0 when tracking is compiled out).
  // The CFS_SHARED_READ/WRITE annotations use it to name the declared
  // guard in race reports.
  uint32_t order_class() const {
#ifdef CFS_LOCK_ORDER_TRACKING
    return order_class_;
#else
    return 0;
#endif
  }

  // BasicLockable interface so std::condition_variable_any (cfs::CondVar)
  // can unlock/relock through the tracker hooks. Annotated identically.
  void lock() ACQUIRE() { Lock(); }
  void unlock() RELEASE() { Unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return TryLock(); }

 private:
  std::mutex mu_;
#ifdef CFS_LOCK_ORDER_TRACKING
  uint32_t order_class_ = 0;
#endif
};

// ---------------------------------------------------------------------------
// cfs::SharedMutex — annotated, named, ranked std::shared_mutex. Shared
// acquisitions participate in order tracking exactly like exclusive ones
// (reader/writer deadlocks are still deadlocks).

class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name, int rank = 0,
                       lock_order::RpcHoldPolicy policy =
                           lock_order::RpcHoldPolicy::kNeverAcrossRpc,
                       const char* justification = nullptr) {
#ifdef CFS_LOCK_ORDER_TRACKING
    order_class_ = lock_order::RegisterClass(name, rank, policy, justification);
#else
    (void)name;
    (void)rank;
    (void)policy;
    (void)justification;
#endif
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
#ifdef CFS_LOCK_ORDER_TRACKING
    lock_order::OnAcquire(order_class_);
#endif
    mu_.lock();
    CFS_RACE_LOCK_HOOK_(
        OnLockAcquired(order_class_, race::LockMode::kExclusive));
  }

  void Unlock() RELEASE() {
    CFS_RACE_LOCK_HOOK_(
        OnLockReleased(order_class_, race::LockMode::kExclusive));
    mu_.unlock();
#ifdef CFS_LOCK_ORDER_TRACKING
    lock_order::OnRelease(order_class_);
#endif
  }

  void ReaderLock() ACQUIRE_SHARED() {
#ifdef CFS_LOCK_ORDER_TRACKING
    lock_order::OnAcquire(order_class_);
#endif
    mu_.lock_shared();
    CFS_RACE_LOCK_HOOK_(OnLockAcquired(order_class_, race::LockMode::kShared));
  }

  void ReaderUnlock() RELEASE_SHARED() {
    CFS_RACE_LOCK_HOOK_(OnLockReleased(order_class_, race::LockMode::kShared));
    mu_.unlock_shared();
#ifdef CFS_LOCK_ORDER_TRACKING
    lock_order::OnRelease(order_class_);
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#ifdef CFS_LOCK_ORDER_TRACKING
    lock_order::OnTryAcquired(order_class_);
#endif
    CFS_RACE_LOCK_HOOK_(
        OnLockAcquired(order_class_, race::LockMode::kExclusive));
    return true;
  }

  void AssertHeld() const ASSERT_CAPABILITY(this) {
#ifdef CFS_LOCK_ORDER_TRACKING
    lock_order::AssertHeld(order_class_);
#endif
  }

  // See Mutex::order_class().
  uint32_t order_class() const {
#ifdef CFS_LOCK_ORDER_TRACKING
    return order_class_;
#else
    return 0;
#endif
  }

 private:
  std::shared_mutex mu_;
#ifdef CFS_LOCK_ORDER_TRACKING
  uint32_t order_class_ = 0;
#endif
};

// ---------------------------------------------------------------------------
// Scoped lockers. These replace std::lock_guard / std::unique_lock /
// std::shared_lock at every call site: the std lockers have no thread-safety
// annotations, so guarded-field accesses under them would not be credited.

class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Manual unlock/relock inside the scope (e.g. dropping the lock across an
  // RPC and re-acquiring afterwards — raft's replicator loop).
  void Unlock() RELEASE() {
    mu_.Unlock();
    held_ = false;
  }
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// ---------------------------------------------------------------------------
// cfs::CondVar — condition variable waiting directly on cfs::Mutex, so the
// wait's internal unlock/relock flows through the order-tracker hooks and
// the analysis sees the lock held across the wait (the abseil convention:
// Wait REQUIRES the mutex).
//
// Deliberately no predicate-lambda overloads: the analysis checks lambda
// bodies separately and cannot credit the held lock to guarded fields read
// inside them. Call sites spell the loop out:
//     while (!condition) cv.Wait(mu);

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS { cv_.wait(mu); }

  // Returns false if `deadline` passed without a notification.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  }

  // Returns false on timeout.
  bool WaitForMicros(Mutex& mu, int64_t micros) REQUIRES(mu)
      NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mu, std::chrono::microseconds(micros)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace cfs

#endif  // CFS_COMMON_THREAD_ANNOTATIONS_H_
