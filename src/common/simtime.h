// Virtual time for discrete-event simulation (DESIGN.md §11).
//
// A simtime::Scheduler owns a monotonically advancing virtual clock and a
// min-heap of pending events. One OS thread drives it (RunUntil); while it
// does, the scheduler is published as the thread's *current* scheduler, and
// everything the dispatched task touches — SimNet latency injection, WAL
// fsync delay, LoadGate processing cost, OpTrace/TraceSpan timestamps —
// reads virtual time instead of sleeping or reading the steady clock.
//
// Execution model: run-to-completion with latency accrual. A dispatched
// task executes synchronously to completion on the scheduler thread; every
// modelled delay it hits calls AdvanceUs, which accrues onto the task-local
// clock (task_now_us = dispatch time + accrued so far) without yielding.
// A closed-loop client reschedules its next op At(task_now_us()), so the
// delays it accrued become the virtual spacing between its ops. This is
// weaker than a full coroutine DES — while one task runs, virtual time may
// locally run ahead of events still queued behind it — but dispatch order
// is a deterministic function of the event heap alone, which is the
// property replay needs (§11 discusses the approximation).
//
// Determinism: the scheduler's PRNG (NextRand) is the only randomness
// source virtual-mode components may use, and it is consumed in dispatch
// order, so identical seeds replay identical interleavings, latencies and
// results. Nothing here is thread-safe by design: all scheduling must
// happen on the driving thread (checked).

#ifndef CFS_COMMON_SIMTIME_H_
#define CFS_COMMON_SIMTIME_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/clock.h"

namespace cfs {
namespace simtime {

// Preemption-point kinds for schedule fuzzing (FuzzPoint below).
enum class FuzzKind : uint8_t {
  kLockAcquire = 0,
  kLockRelease = 1,
  kRpcEdge = 2,
  kWalFsync = 3,
};
inline constexpr size_t kNumFuzzKinds = 4;

// PCT-inspired seeded schedule perturbation (DESIGN.md §12). Under the
// run-to-completion accrual model there is no mid-task preemption to force;
// what reorders interleavings is *when* each task's next event lands and
// how same-time events tie-break. Fuzzing perturbs both, deterministically:
//
//   1. Every event pushed while fuzzing gets a priority drawn from a
//      dedicated SplitMix64 stream; same-virtual-time events dispatch in
//      priority order instead of FIFO (the priority-perturbation leg).
//   2. At every instrumented preemption point — lock acquire/release
//      (lock_order hooks), SimNet RPC edges, WAL fsync — FuzzPoint()
//      accrues, with probability prob_pct, a random virtual delay in
//      [1, max_perturb_us], sliding the running task's subsequent events
//      (and thus every lock-acquisition race) across other tasks' slots.
//
// The fuzz stream is separate from the scheduler's main PRNG so a seed
// sweep varies only the schedule, and identical (seed, fuzz seed) pairs
// replay byte-identically. Env knobs (read once, at Scheduler
// construction): CFS_SIM_FUZZ=1 enables, CFS_SIM_FUZZ_SEED (default:
// derived from the scheduler seed), CFS_SIM_FUZZ_PROB_PCT (default 25),
// CFS_SIM_FUZZ_MAX_US (default 50).
struct FuzzOptions {
  bool enabled = false;
  uint64_t seed = 0;  // 0 = derive from the scheduler seed
  uint32_t prob_pct = 25;
  int64_t max_perturb_us = 50;

  // Defaults overlaid with the CFS_SIM_FUZZ* environment knobs.
  static FuzzOptions FromEnv();
};

class Scheduler {
 public:
  explicit Scheduler(uint64_t seed = 42);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Schedules `fn` at virtual time `t_us` (clamped to now: scheduling into
  // the past dispatches in the current time slot, after already-queued
  // events of that slot — ties dispatch FIFO by insertion). Must be called
  // from the driving thread (inside RunUntil) or before/between runs.
  void At(int64_t t_us, std::function<void()> fn);
  // Schedules `fn` at task_now_us() + delta_us.
  void After(int64_t delta_us, std::function<void()> fn);

  // Dispatches events in (time, insertion) order until the heap is empty or
  // the next event is past `deadline_us`; leaves now_us() == deadline_us.
  // Publishes this scheduler as Current() for the duration.
  void RunUntil(int64_t deadline_us);

  // Drops all pending events (callers whose event closures are about to go
  // out of scope must cancel before returning). Returns how many.
  size_t CancelPending();

  // Virtual dispatch clock: the time of the event being dispatched. Never
  // decreases.
  int64_t now_us() const { return now_us_; }
  // Task-local clock: dispatch time plus delay accrued by the running task.
  int64_t task_now_us() const { return now_us_ + accrued_us_; }
  // Accrues `us` of modelled delay onto the running task (no-op if <= 0).
  void AdvanceUs(int64_t us) {
    if (us > 0) accrued_us_ += us;
  }

  // The seeded PRNG stream (SplitMix64). Sole randomness source for
  // virtual-mode components; consumed in dispatch order.
  uint64_t NextRand();

  // Installs a schedule-fuzz configuration (overriding the env-derived one
  // applied at construction). Affects events pushed from now on.
  void SetFuzz(const FuzzOptions& fuzz);
  const FuzzOptions& fuzz() const { return fuzz_; }

  // Called by the instrumented preemption points via the free FuzzPoint();
  // draws from the fuzz stream and maybe accrues a perturbation delay.
  void FuzzPointHit(FuzzKind kind);
  // Perturbations applied per kind (diagnostics / tests).
  uint64_t fuzz_perturbations(FuzzKind kind) const {
    return fuzz_hits_[static_cast<size_t>(kind)];
  }

  uint64_t seed() const { return seed_; }
  uint64_t events_run() const { return events_run_; }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    int64_t t_us;
    uint64_t pri;  // fuzzing: seeded draw; otherwise 0 (FIFO by seq)
    uint64_t seq;  // insertion order; breaks time (and priority) ties FIFO
    uint64_t race_token;  // race-detector HB token (0 when detector is off)
    std::function<void()> fn;
  };
  // std::push_heap/pop_heap max-heap comparator: "a after b".
  static bool Later(const Event& a, const Event& b) {
    if (a.t_us != b.t_us) return a.t_us > b.t_us;
    if (a.pri != b.pri) return a.pri > b.pri;
    return a.seq > b.seq;
  }

  std::vector<Event> heap_;
  int64_t now_us_ = 0;
  int64_t accrued_us_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
  uint64_t seed_;
  uint64_t rng_state_;
  FuzzOptions fuzz_;
  uint64_t fuzz_rng_state_ = 0;
  uint64_t fuzz_hits_[kNumFuzzKinds] = {};
  bool running_ = false;
};

// The scheduler driving this thread (set for the duration of RunUntil), or
// nullptr on every other thread — the discriminator every sim-aware delay
// and clock site branches on.
Scheduler* Current();

// Virtual task-clock nanoseconds under a driving scheduler, real
// steady-clock nanoseconds otherwise. Timestamp source for OpTrace,
// TraceSpan and causal-trace events.
int64_t NowNanosOrReal();

// Charges `us` of modelled delay: accrues virtual time under a driving
// scheduler, performs a real sleep otherwise.
void AdvanceOrSleepUs(int64_t us);

// Preemption point: forwards to the driving scheduler's FuzzPointHit when
// there is one with fuzzing enabled; free otherwise (one TLS read).
inline void FuzzPoint(FuzzKind kind) {
  Scheduler* sched = Current();
  if (sched != nullptr && sched->fuzz().enabled) sched->FuzzPointHit(kind);
}

// Clock facade over NowNanosOrReal, for components that take a Clock*
// (e.g. the dentry cache's TTL checks must expire in virtual time during a
// simulated run and wall time otherwise).
class SimAwareClock : public Clock {
 public:
  static const SimAwareClock* Get();
  MonoNanos NowNanos() const override { return NowNanosOrReal(); }
};

}  // namespace simtime
}  // namespace cfs

#endif  // CFS_COMMON_SIMTIME_H_
