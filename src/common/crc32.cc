#include "src/common/crc32.h"

#include <array>

namespace cfs {
namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // reversed CRC32C polynomial

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int k = 0; k < 8; k++) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t seed) {
  const auto& table = Table();
  uint32_t crc = ~seed;
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace cfs
