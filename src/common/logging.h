// Minimal leveled logger. Thread-safe, stderr-backed, level-filtered at
// runtime. Benchmarks set the level to kWarn to keep the hot path quiet.

#ifndef CFS_COMMON_LOGGING_H_
#define CFS_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>
#include <string_view>

namespace cfs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  static Logger& Get();

  void set_level(LogLevel level) { level_.store(static_cast<int>(level)); }
  LogLevel level() const { return static_cast<LogLevel>(level_.load()); }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load();
  }

  void Write(LogLevel level, std::string_view file, int line,
             std::string_view message);

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
};

// Stream-style log statement builder; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Get().Write(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace cfs

#define CFS_LOG(level)                                              \
  if (!::cfs::Logger::Get().Enabled(::cfs::LogLevel::level)) {      \
  } else                                                            \
    ::cfs::LogMessage(::cfs::LogLevel::level, __FILE__, __LINE__)

#endif  // CFS_COMMON_LOGGING_H_
