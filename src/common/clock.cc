#include "src/common/clock.h"

namespace cfs {

RealClock* RealClock::Get() {
  static RealClock clock;
  return &clock;
}

}  // namespace cfs
