// Dynamic race & atomicity auditor (DESIGN.md §12) — the runtime half of
// the GUARDED_BY coverage story. The static thread-safety analysis
// (thread_annotations.h + scripts/guarded_by_lint.sh) proves every *declared*
// guard relationship at compile time under clang; this module checks, while
// the code actually runs, that every annotated shared access really happens
// under the right lock — and that no schedule the virtual-time fuzzer
// (simtime::Scheduler::SetFuzz) can produce breaks that property.
//
// Lineage: Eraser's lockset algorithm refined with FastTrack-style
// happens-before exoneration, at the granularity this codebase already made
// first-class — named lock *classes* (lock_order.h), not mutex instances.
//
//   - Locksets. The cfs::Mutex / cfs::SharedMutex wrappers call
//     OnLockAcquired/OnLockReleased with the lock's class id and mode, so
//     every thread (and every simtime task — see below) carries the set of
//     classes it holds, split exclusive/shared. LockManager row locks and
//     other logical critical sections flow in through lock_order's
//     OnScopeEnter/Exit forwarding.
//
//   - Access annotations. CFS_SHARED_READ(field, mu) / CFS_SHARED_WRITE
//     (field, mu) are one-line markers placed at a shared field's access
//     sites; they record (address, declared lock class, mode) against the
//     calling context. race::AccessScope is the RAII form for compound
//     read-modify-write regions: it additionally re-checks at destruction
//     that the declared lock was held for the *whole* scope (an atomicity
//     check — catches a guard dropped mid-update).
//
//   - Checks. Two violation kinds, reported by lock-class name, field name,
//     site, lockset, and active trace id (trace_event.h):
//       kUnheldDeclaredLock ("empty lockset" w.r.t. the declaration): the
//         annotated access ran without its declared class held — writes
//         require exclusive mode, reads accept shared.
//       kLocksetEmpty (lockset intersection): the set of classes held at
//         *every* access to the location since it became shared has drained
//         to empty, and the conflicting accesses are not ordered by
//         happens-before — the Eraser condition.
//
//   - Happens-before. Per-context vector clocks, joined through lock-class
//     release→acquire edges and through simtime scheduling edges (a task
//     that schedules an event happens-before that event). Contexts are OS
//     threads plus simulated tasks: the scheduler multiplexes thousands of
//     logical clients onto one driving thread, and treating them as one
//     context would order everything and detect nothing. An event created
//     from inside a task continues that task's context (closed-loop clients
//     are sequential chains); an event created outside any task gets a
//     fresh context.
//
// The init-then-share idiom does not report: a location stays in an
// exclusive state while one context accesses it, and ownership transfers
// silently when the old owner's accesses happen-before the new context.
//
// Determinism: under a seeded simtime::Scheduler every context id, clock
// tick and report is a pure function of the seed, so a schedule-fuzz hit
// replays byte-identically (Fingerprint()); context-id salting in report
// fingerprints uses the same SplitMix64 stream discipline as the scheduler.
//
// Compiled in when CFS_RACE_DETECT_ENABLED is defined (CMake option
// CFS_RACE_DETECT, default ON; requires CFS_LOCK_ORDER for class ids).
// Runtime-enabled by env CFS_RACE_DETECT=1 or SetEnabled(true); disabled it
// costs one relaxed atomic load per hook. Reports print to stderr and
// accumulate (bounded); CFS_RACE_ABORT=1 / SetAbortOnReport makes the first
// report fatal — the mode the planted-race death tests and the CI race-audit
// job run in. CFS_RACE_MAX_REPORTS bounds the retained list.

#ifndef CFS_COMMON_RACE_DETECTOR_H_
#define CFS_COMMON_RACE_DETECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cfs {
namespace race {

enum class LockMode : uint8_t { kExclusive = 0, kShared = 1 };

struct Report {
  enum class Kind : uint8_t {
    kUnheldDeclaredLock,  // annotated access without its declared class held
    kLocksetEmpty,        // candidate lockset drained, accesses unordered
    kScopeGuardDropped,   // AccessScope: declared lock released mid-scope
  };
  Kind kind = Kind::kUnheldDeclaredLock;
  std::string field;          // annotated field name (#field)
  std::string declared_lock;  // lock-class name named in the annotation
  std::string locks_held;     // comma-joined lockset at the access
  std::string prior;          // prior conflicting access "ctx/clock/locks"
  std::string file;
  int line = 0;
  bool is_write = false;
  uint32_t ctx = 0;           // context (thread or sim task) id
  uint64_t trace_id = 0;      // active causal trace, 0 if none
  int64_t virtual_us = -1;    // simtime task clock, -1 off-scheduler
};

const char* ReportKindName(Report::Kind kind);

// Deterministic one-line summary (no wall-clock content): what the
// same-seed reproducibility tests and the race-audit artifact compare.
std::string Fingerprint(const Report& report);

// ---------------------------------------------------------------------------
// Runtime switches. Enabled() reads env CFS_RACE_DETECT on first call;
// AbortOnReport() reads CFS_RACE_ABORT.

void SetEnabled(bool enabled);
bool Enabled();
void SetAbortOnReport(bool abort_on_report);
bool AbortOnReport();

// ---------------------------------------------------------------------------
// Hooks from the lock wrappers (thread_annotations.h) and lock_order's
// logical-scope forwarding. `cls` is the lock_order class id; 0 is ignored.

void OnLockAcquired(uint32_t cls, LockMode mode);
void OnLockReleased(uint32_t cls, LockMode mode);

// Hooks from simtime::Scheduler, giving simulated tasks their own contexts
// and the creator→event happens-before edge. OnTaskCreate returns a token
// for the future event (0 when disabled — pass it back verbatim).
uint64_t OnTaskCreate();
void OnTaskBegin(uint64_t token);
void OnTaskEnd();

// ---------------------------------------------------------------------------
// Access recording (what the CFS_SHARED_* macros expand to).

void RecordAccess(const void* addr, const char* field, uint32_t declared_cls,
                  bool is_write, const char* file, int line);

// RAII compound-access region: records the access up front and verifies at
// destruction that the declared class is still held (atomicity of the whole
// region, not just the first touch).
class AccessScope {
 public:
  AccessScope(const void* addr, const char* field, uint32_t declared_cls,
              bool is_write, const char* file, int line);
  ~AccessScope();

  AccessScope(const AccessScope&) = delete;
  AccessScope& operator=(const AccessScope&) = delete;

 private:
  const char* field_;
  uint32_t declared_cls_;
  const char* file_;
  int line_;
  bool armed_;
  // Declared class's release count at entry; any change by destruction
  // means the guard was dropped (even if reacquired) mid-region.
  uint64_t release_epoch_at_entry_ = 0;
};

// ---------------------------------------------------------------------------
// Results & test support.

size_t ReportCount();                 // total reports (including dropped)
std::vector<Report> Reports();        // retained reports, oldest first
void ResetForTest();                  // drops reports + location table + VCs
size_t LocksHeldForTest();            // current context's lockset size
bool HoldsForTest(uint32_t cls, LockMode mode);

}  // namespace race
}  // namespace cfs

// ---------------------------------------------------------------------------
// Annotation macros. `mu` is a cfs::Mutex / cfs::SharedMutex (anything with
// an order_class()); `field` is the shared member the statement touches.
// Place at the access site, inside the critical section:
//
//   WriterMutexLock lock(epoch_mu_);
//   CFS_SHARED_WRITE(dir_epochs_, epoch_mu_);
//   dir_epochs_[dir]++;
//
// No-ops (to the last token) when the detector is compiled out.

#ifdef CFS_RACE_DETECT_ENABLED
#define CFS_SHARED_WRITE(field, mu)                                       \
  ::cfs::race::RecordAccess(&(field), #field, (mu).order_class(),         \
                            /*is_write=*/true, __FILE__, __LINE__)
#define CFS_SHARED_READ(field, mu)                                        \
  ::cfs::race::RecordAccess(&(field), #field, (mu).order_class(),         \
                            /*is_write=*/false, __FILE__, __LINE__)
#define CFS_ACCESS_SCOPE(scope_name, field, mu, is_write)                 \
  ::cfs::race::AccessScope scope_name(&(field), #field, (mu).order_class(), \
                                      (is_write), __FILE__, __LINE__)
#else
#define CFS_SHARED_WRITE(field, mu) ((void)0)
#define CFS_SHARED_READ(field, mu) ((void)0)
#define CFS_ACCESS_SCOPE(scope_name, field, mu, is_write) ((void)0)
#endif

#endif  // CFS_COMMON_RACE_DETECTOR_H_
