// LoadGate — models finite server-side processing capacity for read paths.
//
// Raft serializes writes through the log, so write-side queueing emerges
// naturally; reads against a leader have no such queue in a passive-object
// simulation. A LoadGate charges each read a processing cost and bounds
// concurrent readers per node, so a hot shard (e.g. every client stat-ing
// files of one huge directory, Fig 12) saturates and queues while a
// hash-partitioned attribute service spreads the same load across nodes.
//
// Disabled (zero cost) when processing_us == 0; callers also skip it in
// zero-latency test mode.

#ifndef CFS_COMMON_LOAD_GATE_H_
#define CFS_COMMON_LOAD_GATE_H_

#include <chrono>
#include <cstdint>
#include <semaphore>
#include <thread>

#include "src/common/simtime.h"

namespace cfs {

class LoadGate {
 public:
  LoadGate(size_t concurrency, int64_t processing_us)
      : sem_(static_cast<std::ptrdiff_t>(
            concurrency == 0 ? 1 : concurrency)),
        processing_us_(processing_us) {}

  LoadGate(const LoadGate&) = delete;
  LoadGate& operator=(const LoadGate&) = delete;

  // Charges one request's processing: waits for a slot, holds it for the
  // processing duration, releases. Under a driving simtime::Scheduler the
  // cost accrues onto the virtual clock instead; the concurrency bound is
  // not modelled there (a single scheduler thread never contends the
  // semaphore — queueing-at-capacity is a real-thread-mode effect,
  // DESIGN.md §11).
  void Charge() const {
    if (processing_us_ <= 0) return;
    if (simtime::Current() != nullptr) {
      simtime::AdvanceOrSleepUs(processing_us_);
      return;
    }
    sem_.acquire();
    std::this_thread::sleep_for(std::chrono::microseconds(processing_us_));
    sem_.release();
  }

 private:
  mutable std::counting_semaphore<4096> sem_;
  int64_t processing_us_;
};

}  // namespace cfs

#endif  // CFS_COMMON_LOAD_GATE_H_
