#include "src/common/logging.h"

#include <chrono>
#include <cstdio>

#include "src/common/thread_annotations.h"

namespace cfs {
namespace {

// Leaf lock: serializes the stderr write; nothing is ever acquired under it.
Mutex g_log_mutex{"common.logging", 95};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

std::string_view Basename(std::string_view path) {
  auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

Logger& Logger::Get() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, std::string_view file, int line,
                   std::string_view message) {
  using namespace std::chrono;
  auto now = duration_cast<microseconds>(
                 system_clock::now().time_since_epoch())
                 .count();
  std::string_view base = Basename(file);
  MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "%s %lld.%06lld %.*s:%d] %.*s\n", LevelTag(level),
               static_cast<long long>(now / 1000000),
               static_cast<long long>(now % 1000000),
               static_cast<int>(base.size()), base.data(), line,
               static_cast<int>(message.size()), message.data());
}

}  // namespace cfs
