#include "src/common/thread_pool.h"

namespace cfs {

ThreadPool::ThreadPool(size_t num_threads, std::string name)
    : name_(std::move(name)) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(mu_);
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      active_++;
    }
    task();
    {
      MutexLock lock(mu_);
      active_--;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace cfs
