#include "src/common/histogram.h"

#include <algorithm>
#include <cstdio>

namespace cfs {
namespace {

constexpr int64_t kLinearMax = 1000;   // 1 ms in 10 us steps
constexpr int64_t kLinearStep = 10;
constexpr int64_t kCeiling = 100LL * 1000 * 1000;  // 100 s

std::vector<int64_t> BuildBounds() {
  std::vector<int64_t> bounds;
  for (int64_t b = kLinearStep; b <= kLinearMax; b += kLinearStep) {
    bounds.push_back(b);
  }
  double v = static_cast<double>(kLinearMax);
  while (v < static_cast<double>(kCeiling)) {
    v *= 1.25;
    bounds.push_back(static_cast<int64_t>(v));
  }
  bounds.push_back(INT64_MAX);
  return bounds;
}

const std::vector<int64_t>& Bounds() {
  static const std::vector<int64_t> bounds = BuildBounds();
  return bounds;
}

}  // namespace

Histogram::Histogram() : bounds_(Bounds()) {
  buckets_.assign(bounds_.size(), 0);
}

size_t Histogram::BucketFor(int64_t v) const {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<size_t>(it - bounds_.begin());
}

int64_t Histogram::BucketUpper(size_t index) const { return bounds_[index]; }

void Histogram::Record(int64_t value_us) {
  if (value_us < 0) value_us = 0;
  buckets_[BucketFor(value_us)]++;
  count_++;
  sum_ += value_us;
  max_ = std::max(max_, value_us);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = max_ = 0;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(count_));
  if (rank >= count_) rank = count_ - 1;
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (seen > rank) {
      return std::min(BucketUpper(i), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1fus p50=%lldus p99=%lldus p999=%lldus max=%lldus",
                static_cast<long long>(count_), mean(),
                static_cast<long long>(P50()), static_cast<long long>(P99()),
                static_cast<long long>(P999()), static_cast<long long>(max_));
  return buf;
}

StripedHistogram::StripedHistogram(size_t stripes) {
  stripes_.resize(stripes);
  for (auto& s : stripes_) {
    s.h = std::make_unique<Histogram>();
    s.lock = std::make_unique<std::atomic_flag>();
  }
}

void StripedHistogram::Record(size_t thread_index, int64_t value_us) {
  auto& s = stripes_[thread_index % stripes_.size()];
  while (s.lock->test_and_set(std::memory_order_acquire)) {
  }
  s.h->Record(value_us);
  s.lock->clear(std::memory_order_release);
}

void StripedHistogram::Merge(const Histogram& other) {
  auto& s = stripes_[0];
  while (s.lock->test_and_set(std::memory_order_acquire)) {
  }
  s.h->Merge(other);
  s.lock->clear(std::memory_order_release);
}

Histogram StripedHistogram::Aggregate() const {
  Histogram out;
  for (const auto& s : stripes_) {
    while (s.lock->test_and_set(std::memory_order_acquire)) {
    }
    out.Merge(*s.h);
    s.lock->clear(std::memory_order_release);
  }
  return out;
}

void StripedHistogram::Reset() {
  for (auto& s : stripes_) {
    while (s.lock->test_and_set(std::memory_order_acquire)) {
    }
    s.h->Reset();
    s.lock->clear(std::memory_order_release);
  }
}

}  // namespace cfs
