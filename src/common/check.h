// CFS_CHECK / CFS_DCHECK — invariant assertions replacing bare assert().
//
//   CFS_CHECK(cond)            always on, release builds included: logs the
//                              failing expression through the leveled logger
//                              (src/common/logging.h) and aborts.
//   CFS_CHECK_MSG(cond, msg)   same, with an extra string-literal note.
//   CFS_DCHECK(cond)           CFS_CHECK in debug builds; compiled (so the
//                              expression stays type-checked) but never
//                              evaluated under NDEBUG.
//
// This header is deliberately dependency-free (it is included from
// status.h, which everything includes); the logging dependency lives in
// check.cc behind CheckFailed.

#ifndef CFS_COMMON_CHECK_H_
#define CFS_COMMON_CHECK_H_

namespace cfs {
namespace internal {

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const char* note);

}  // namespace internal
}  // namespace cfs

#define CFS_CHECK(cond)                                            \
  (__builtin_expect(static_cast<bool>(cond), true)                 \
       ? static_cast<void>(0)                                      \
       : ::cfs::internal::CheckFailed(#cond, __FILE__, __LINE__,   \
                                      nullptr))

#define CFS_CHECK_MSG(cond, note)                                  \
  (__builtin_expect(static_cast<bool>(cond), true)                 \
       ? static_cast<void>(0)                                      \
       : ::cfs::internal::CheckFailed(#cond, __FILE__, __LINE__,   \
                                      note))

#ifdef NDEBUG
#define CFS_DCHECK(cond)                       \
  do {                                         \
    if (false) static_cast<void>(cond);        \
  } while (false)
#else
#define CFS_DCHECK(cond) CFS_CHECK(cond)
#endif

#endif  // CFS_COMMON_CHECK_H_
