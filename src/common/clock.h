// Clock abstraction: production code uses the steady RealClock; tests that
// exercise timeouts and GC periods use ManualClock to advance time
// deterministically.

#ifndef CFS_COMMON_CLOCK_H_
#define CFS_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cfs {

// Monotonic nanoseconds since an arbitrary epoch.
using MonoNanos = int64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual MonoNanos NowNanos() const = 0;
  int64_t NowMicros() const { return NowNanos() / 1000; }
};

class RealClock : public Clock {
 public:
  static RealClock* Get();
  MonoNanos NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

class ManualClock : public Clock {
 public:
  explicit ManualClock(MonoNanos start = 0) : now_(start) {}
  MonoNanos NowNanos() const override { return now_.load(); }
  void AdvanceNanos(MonoNanos delta) { now_.fetch_add(delta); }
  void AdvanceMicros(int64_t micros) { AdvanceNanos(micros * 1000); }
  void SetNanos(MonoNanos t) { now_.store(t); }

 private:
  std::atomic<MonoNanos> now_;
};

// Simple stopwatch over a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock = RealClock::Get())
      : clock_(clock), start_(clock->NowNanos()) {}
  void Reset() { start_ = clock_->NowNanos(); }
  MonoNanos ElapsedNanos() const { return clock_->NowNanos() - start_; }
  int64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  const Clock* clock_;
  MonoNanos start_;
};

}  // namespace cfs

#endif  // CFS_COMMON_CLOCK_H_
