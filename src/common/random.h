// Fast deterministic PRNG (splitmix64 / xoshiro256**) plus the distribution
// helpers the workload generators need (uniform, Zipfian, weighted choice).

#ifndef CFS_COMMON_RANDOM_H_
#define CFS_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace cfs {

inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n).
  uint64_t Uniform(uint64_t n) {
    CFS_CHECK(n > 0);
    return Next() % n;
  }

  // Uniform in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    CFS_CHECK(hi >= lo);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

// Zipf-distributed generator over [0, n). Uses the classic rejection-free
// inverse-CDF approximation (Gray et al.) so setup is O(1).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    CFS_CHECK(n > 0);
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next(Rng& rng) {
    double u = rng.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    // Cap the exact sum; beyond the cap the tail contribution is negligible
    // for the directory sizes used in the benches.
    uint64_t limit = n < 1000000 ? n : 1000000;
    for (uint64_t i = 1; i <= limit; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

// Picks an index with probability proportional to the provided weights.
class WeightedChoice {
 public:
  explicit WeightedChoice(std::vector<double> weights)
      : cumulative_(std::move(weights)) {
    double total = 0;
    for (auto& w : cumulative_) {
      total += w;
      w = total;
    }
    total_ = total;
  }

  size_t Next(Rng& rng) const {
    double x = rng.NextDouble() * total_;
    size_t lo = 0, hi = cumulative_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] <= x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < cumulative_.size() ? lo : cumulative_.size() - 1;
  }

  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
  double total_ = 0;
};

}  // namespace cfs

#endif  // CFS_COMMON_RANDOM_H_
