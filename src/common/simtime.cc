#include "src/common/simtime.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/common/random.h"

namespace cfs {
namespace simtime {
namespace {

thread_local Scheduler* t_current = nullptr;

}  // namespace

Scheduler::Scheduler(uint64_t seed)
    : seed_(seed), rng_state_(seed ^ 0x9e3779b97f4a7c15ULL) {}

Scheduler::~Scheduler() {
  CFS_CHECK(!running_);
  CFS_CHECK(t_current != this);
}

void Scheduler::At(int64_t t_us, std::function<void()> fn) {
  // Scheduling is only legal from the driving thread: the heap is
  // deliberately unsynchronized so dispatch order is a pure function of
  // its contents.
  CFS_CHECK(!running_ || t_current == this);
  heap_.push_back(Event{std::max(t_us, now_us_), next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later);
}

void Scheduler::After(int64_t delta_us, std::function<void()> fn) {
  At(task_now_us() + std::max<int64_t>(delta_us, 0), std::move(fn));
}

void Scheduler::RunUntil(int64_t deadline_us) {
  CFS_CHECK(!running_);
  CFS_CHECK(t_current == nullptr);
  running_ = true;
  t_current = this;
  while (!heap_.empty() && heap_.front().t_us <= deadline_us) {
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Event event = std::move(heap_.back());
    heap_.pop_back();
    now_us_ = std::max(now_us_, event.t_us);
    accrued_us_ = 0;
    events_run_++;
    event.fn();
  }
  now_us_ = std::max(now_us_, deadline_us);
  accrued_us_ = 0;
  t_current = nullptr;
  running_ = false;
}

size_t Scheduler::CancelPending() {
  size_t n = heap_.size();
  heap_.clear();
  return n;
}

uint64_t Scheduler::NextRand() { return SplitMix64(rng_state_); }

Scheduler* Current() { return t_current; }

int64_t NowNanosOrReal() {
  Scheduler* sched = t_current;
  return sched != nullptr ? sched->task_now_us() * 1000
                          : RealClock::Get()->NowNanos();
}

void AdvanceOrSleepUs(int64_t us) {
  if (us <= 0) return;
  Scheduler* sched = t_current;
  if (sched != nullptr) {
    sched->AdvanceUs(us);
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

const SimAwareClock* SimAwareClock::Get() {
  static const SimAwareClock clock;
  return &clock;
}

}  // namespace simtime
}  // namespace cfs
