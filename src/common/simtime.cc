#include "src/common/simtime.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/common/race_detector.h"
#include "src/common/random.h"

namespace cfs {
namespace simtime {
namespace {

thread_local Scheduler* t_current = nullptr;

int64_t EnvInt64(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  return std::strtoll(v, nullptr, 10);
}

}  // namespace

FuzzOptions FuzzOptions::FromEnv() {
  FuzzOptions fuzz;
  fuzz.enabled = EnvInt64("CFS_SIM_FUZZ", 0) != 0;
  fuzz.seed = static_cast<uint64_t>(EnvInt64("CFS_SIM_FUZZ_SEED", 0));
  fuzz.prob_pct = static_cast<uint32_t>(
      std::clamp<int64_t>(EnvInt64("CFS_SIM_FUZZ_PROB_PCT", 25), 0, 100));
  fuzz.max_perturb_us =
      std::max<int64_t>(EnvInt64("CFS_SIM_FUZZ_MAX_US", 50), 1);
  return fuzz;
}

Scheduler::Scheduler(uint64_t seed)
    : seed_(seed), rng_state_(seed ^ 0x9e3779b97f4a7c15ULL) {
  SetFuzz(FuzzOptions::FromEnv());
}

Scheduler::~Scheduler() {
  CFS_CHECK(!running_);
  CFS_CHECK(t_current != this);
}

void Scheduler::At(int64_t t_us, std::function<void()> fn) {
  // Scheduling is only legal from the driving thread: the heap is
  // deliberately unsynchronized so dispatch order is a pure function of
  // its contents.
  CFS_CHECK(!running_ || t_current == this);
  uint64_t pri = fuzz_.enabled ? SplitMix64(fuzz_rng_state_) : 0;
  heap_.push_back(Event{std::max(t_us, now_us_), pri, next_seq_++,
                        race::OnTaskCreate(), std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later);
}

void Scheduler::After(int64_t delta_us, std::function<void()> fn) {
  At(task_now_us() + std::max<int64_t>(delta_us, 0), std::move(fn));
}

void Scheduler::RunUntil(int64_t deadline_us) {
  CFS_CHECK(!running_);
  CFS_CHECK(t_current == nullptr);
  running_ = true;
  t_current = this;
  while (!heap_.empty() && heap_.front().t_us <= deadline_us) {
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Event event = std::move(heap_.back());
    heap_.pop_back();
    now_us_ = std::max(now_us_, event.t_us);
    accrued_us_ = 0;
    events_run_++;
    race::OnTaskBegin(event.race_token);
    event.fn();
    race::OnTaskEnd();
  }
  now_us_ = std::max(now_us_, deadline_us);
  accrued_us_ = 0;
  t_current = nullptr;
  running_ = false;
}

size_t Scheduler::CancelPending() {
  size_t n = heap_.size();
  heap_.clear();
  return n;
}

uint64_t Scheduler::NextRand() { return SplitMix64(rng_state_); }

void Scheduler::SetFuzz(const FuzzOptions& fuzz) {
  fuzz_ = fuzz;
  if (fuzz_.seed == 0) fuzz_.seed = seed_ ^ 0xf0221f0221f0221fULL;
  fuzz_rng_state_ = fuzz_.seed;
}

void Scheduler::FuzzPointHit(FuzzKind kind) {
  if (!fuzz_.enabled) return;
  // Draw unconditionally so the stream position depends only on the
  // sequence of preemption points, not on which ones fired.
  uint64_t draw = SplitMix64(fuzz_rng_state_);
  if (fuzz_.prob_pct == 0 || (draw % 100) >= fuzz_.prob_pct) return;
  int64_t us = 1 + static_cast<int64_t>(
                       SplitMix64(fuzz_rng_state_) %
                       static_cast<uint64_t>(fuzz_.max_perturb_us));
  fuzz_hits_[static_cast<size_t>(kind)]++;
  AdvanceUs(us);
}

Scheduler* Current() { return t_current; }

int64_t NowNanosOrReal() {
  Scheduler* sched = t_current;
  return sched != nullptr ? sched->task_now_us() * 1000
                          : RealClock::Get()->NowNanos();
}

void AdvanceOrSleepUs(int64_t us) {
  if (us <= 0) return;
  Scheduler* sched = t_current;
  if (sched != nullptr) {
    sched->AdvanceUs(us);
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

const SimAwareClock* SimAwareClock::Get() {
  static const SimAwareClock clock;
  return &clock;
}

}  // namespace simtime
}  // namespace cfs
