#include "src/common/status.h"

namespace cfs {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kNotADirectory: return "NOT_A_DIRECTORY";
    case ErrorCode::kIsADirectory: return "IS_A_DIRECTORY";
    case ErrorCode::kNotEmpty: return "NOT_EMPTY";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kCrossDevice: return "CROSS_DEVICE";
    case ErrorCode::kConflict: return "CONFLICT";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kNotLeader: return "NOT_LEADER";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kCorruption: return "CORRUPTION";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cfs
