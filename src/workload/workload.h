// mdtest-like workload harness (paper §5.1: "we run the mdtest-like
// benchmarks to evaluate individual metadata requests with different
// parameters including contention rates, the number of clients, the
// directory size").
//
// A WorkloadRunner drives N clients in a closed loop against any
// MetadataClient (CFS or a baseline), measuring aggregate throughput and
// per-op latency — either as one OS thread per client (Run, wall clock) or
// as lightweight simulated clients on a simtime::Scheduler (RunSimulated,
// virtual clock; see DESIGN.md §11). Workload shapes:
//   - private-dir: every client works in its own directory (no contention,
//     Fig 9/10);
//   - contention: with probability `contention_rate` a client targets the
//     shared directory instead of its private one (Fig 4/11);
//   - large-dir: all clients operate on one pre-populated directory
//     (Fig 12).

#ifndef CFS_WORKLOAD_WORKLOAD_H_
#define CFS_WORKLOAD_WORKLOAD_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/common/simtime.h"
#include "src/core/metadata_client.h"

namespace cfs {

// The metadata op vocabulary of Table 1.
enum class MetaOp {
  kCreate,
  kGetAttr,
  kRmdir,
  kLookup,
  kMkdir,
  kReaddir,
  kUnlink,
  kSetAttr,
  kRename,
};

std::string_view MetaOpName(MetaOp op);

struct RunResult {
  uint64_t ops = 0;
  uint64_t errors = 0;
  double seconds = 0;
  Histogram latency;
  // Per-phase time aggregated from each op's OpTrace — the span-derived
  // Lock/Execute/Other split the Fig 4/13 benches report.
  PhaseBreakdown phases;

  double ops_per_sec() const { return seconds > 0 ? ops / seconds : 0; }
  double kops() const { return ops_per_sec() / 1000.0; }
};

// One operation issued by a client thread. Returns the op's status; errors
// are counted but do not stop the run.
using OpFn =
    std::function<Status(MetadataClient* client, size_t thread, uint64_t seq,
                         Rng& rng)>;

class WorkloadRunner {
 public:
  // Takes ownership of per-thread clients (one each).
  explicit WorkloadRunner(std::vector<std::unique_ptr<MetadataClient>> clients)
      : clients_(std::move(clients)) {}

  // Closed loop for `duration_ms` (wall clock) after `warmup_ms`. Every op
  // is bracketed with OpTrace::Begin()/Finish(); the aggregated phase
  // breakdown lands in RunResult::phases. A non-empty `trace_label`
  // additionally publishes the breakdown and latency histogram to the
  // global MetricsRegistry under "trace.<label>.*".
  RunResult Run(const OpFn& op, int64_t duration_ms, int64_t warmup_ms = 0,
                const std::string& trace_label = "");

  // Simulated clients on a virtual clock: each client is a state-machine
  // task on `sched` that runs one op to completion, then reschedules itself
  // at the virtual time its accrued latencies imply — a closed loop whose
  // think time is the op's own modelled latency, like Run()'s thread-per-
  // client loop, but with no OS threads and no wall-clock sleeps, so
  // 10k+ clients cost only their ops' CPU time. `duration_ms`/`warmup_ms`
  // are VIRTUAL milliseconds; RunResult::seconds is virtual seconds, so
  // ops_per_sec() is virtual throughput. Per-client RNGs derive from the
  // scheduler seed, so identical seeds replay identical runs. The system
  // under test must be configured for determinism (LatencyMode::kVirtual,
  // inline raft replication, GC off — see bench_common.h's sim wiring).
  RunResult RunSimulated(simtime::Scheduler& sched, const OpFn& op,
                         int64_t duration_ms, int64_t warmup_ms = 0,
                         const std::string& trace_label = "");

  // Fixed op count per thread (setup/populate phases).
  RunResult RunCount(const OpFn& op, uint64_t ops_per_thread);

  size_t num_clients() const { return clients_.size(); }
  MetadataClient* client(size_t i) { return clients_[i].get(); }

 private:
  std::vector<std::unique_ptr<MetadataClient>> clients_;
};

// ---- setup helpers ----

// Creates /priv0../privN-1 (one per client) plus /shared.
Status SetupPrivateDirs(MetadataClient* client, size_t clients);

// Populates `dir` with `count` files named f0..f(count-1), using the given
// clients in parallel.
Status PopulateDirectory(std::vector<MetadataClient*> clients,
                         const std::string& dir, size_t count);

// ---- op factories (mdtest phases) ----
// `contention_rate` in [0,1]: probability of targeting /shared instead of
// the thread's private directory. Created names embed (thread, seq) so they
// never collide.

OpFn MakeCreateOp(double contention_rate);
OpFn MakeUnlinkAfterCreateOp(double contention_rate);  // create then unlink
OpFn MakeMkdirOp(double contention_rate);
OpFn MakeRmdirAfterMkdirOp(double contention_rate);
// Read-side ops over a pre-populated population of `files_per_dir` files
// in each private dir (or `shared_files` in /shared under contention).
OpFn MakeGetAttrOp(double contention_rate, size_t files_per_dir,
                   size_t shared_files);
OpFn MakeLookupOp(double contention_rate, size_t files_per_dir,
                  size_t shared_files);
OpFn MakeSetAttrOp(double contention_rate, size_t files_per_dir,
                   size_t shared_files);
OpFn MakeReaddirOp(double contention_rate);
// Rename mix of §5.6: `intra_ratio` of intra-directory file renames, the
// rest cross-directory / directory renames.
OpFn MakeRenameOp(double intra_ratio);

// Ops targeting one shared large directory (Fig 12).
OpFn MakeLargeDirOp(MetaOp op, const std::string& dir, size_t population);

}  // namespace cfs

#endif  // CFS_WORKLOAD_WORKLOAD_H_
