#include "src/workload/traces.h"

#include <atomic>
#include <cmath>
#include <thread>

#include "src/common/clock.h"
#include "src/common/thread_annotations.h"

namespace cfs {

std::string_view FsOpName(FsOp op) {
  switch (op) {
    case FsOp::kRead: return "read";
    case FsOp::kWrite: return "write";
    case FsOp::kOpen: return "open";
    case FsOp::kOpenCreat: return "open(O_CREAT)";
    case FsOp::kStat: return "stat";
    case FsOp::kOpendir: return "opendir";
    case FsOp::kUnlink: return "unlink";
    case FsOp::kRename: return "rename";
    case FsOp::kMkdir: return "mkdir";
    case FsOp::kChmod: return "chmod/chown";
  }
  return "?";
}

// Table 3 compositions, and size CDFs anchored on the Fig 14 figures
// (75.27% / 91.34% / 87.51% of files <= 32KB; up to 96.37% of IOs <= 32KB
// with 45.20-70.70% <= 1KB).

TraceSpec TraceTr0() {
  TraceSpec spec;
  spec.name = "tr-0";
  spec.mix = {
      {FsOp::kRead, 17.8},
      {FsOp::kOpendir, 6.0},
      {FsOp::kStat, 51.8},
      {FsOp::kOpen, 24.4},
  };
  spec.file_size_cdf = {{1 << 10, 0.30}, {4 << 10, 0.52},
                        {32 << 10, 0.7527}, {256 << 10, 0.93},
                        {1 << 20, 1.0}};
  spec.io_size_cdf = {{1 << 10, 0.452}, {4 << 10, 0.71},
                      {32 << 10, 0.9637}, {256 << 10, 1.0}};
  return spec;
}

TraceSpec TraceTr1() {
  TraceSpec spec;
  spec.name = "tr-1";
  spec.mix = {
      {FsOp::kRead, 11.6},   {FsOp::kWrite, 8.2},
      {FsOp::kOpen, 3.1},    {FsOp::kOpenCreat, 8.4},
      {FsOp::kStat, 47.2},   {FsOp::kOpendir, 13.1},
      {FsOp::kUnlink, 8.0},  {FsOp::kRename, 0.3},
  };
  spec.file_size_cdf = {{1 << 10, 0.46}, {4 << 10, 0.72},
                        {32 << 10, 0.9134}, {256 << 10, 0.98},
                        {1 << 20, 1.0}};
  spec.io_size_cdf = {{1 << 10, 0.707}, {4 << 10, 0.85},
                      {32 << 10, 0.955}, {256 << 10, 1.0}};
  return spec;
}

TraceSpec TraceTr2() {
  TraceSpec spec;
  spec.name = "tr-2";
  spec.mix = {
      {FsOp::kWrite, 6.3},  {FsOp::kRead, 1.0},
      {FsOp::kOpen, 5.6},   {FsOp::kOpenCreat, 6.2},
      {FsOp::kStat, 49.3},  {FsOp::kChmod, 6.2},
      {FsOp::kUnlink, 5.1}, {FsOp::kOpendir, 19.0},
      {FsOp::kMkdir, 1.3},
  };
  spec.file_size_cdf = {{1 << 10, 0.38}, {4 << 10, 0.66},
                        {32 << 10, 0.8751}, {256 << 10, 0.97},
                        {1 << 20, 1.0}};
  spec.io_size_cdf = {{1 << 10, 0.60}, {4 << 10, 0.80},
                      {32 << 10, 0.94}, {256 << 10, 1.0}};
  return spec;
}

std::vector<TraceSpec> AllTraces() {
  return {TraceTr0(), TraceTr1(), TraceTr2()};
}

uint64_t SampleSize(const SizeCdf& cdf, Rng& rng) {
  double u = rng.NextDouble();
  uint64_t lower = 1;
  double prev = 0;
  for (const auto& [bound, frac] : cdf) {
    if (u <= frac) {
      // Log-uniform within the bucket [lower, bound].
      double lo = std::log2(static_cast<double>(lower));
      double hi = std::log2(static_cast<double>(bound));
      double pos = prev < frac ? (u - prev) / (frac - prev) : 0.5;
      return static_cast<uint64_t>(std::exp2(lo + pos * (hi - lo)));
    }
    lower = bound;
    prev = frac;
  }
  return cdf.empty() ? 1 : cdf.back().first;
}

double CdfAt(const SizeCdf& cdf, uint64_t bound) {
  double last = 0;
  for (const auto& [b, frac] : cdf) {
    if (b > bound) break;
    last = frac;
  }
  return last;
}

std::vector<MetaOpShare> Table1OpShares() {
  // Table 1 of the paper: aggregated metadata-op ratios across the nine
  // production workloads.
  return {
      {"create", 1.44},  {"lookup", 17.80}, {"unlink", 1.14},
      {"getattr", 75.25}, {"mkdir", 0.08},   {"setattr", 3.21},
      {"rmdir", 0.04},   {"readdir", 0.92}, {"rename", 0.12},
  };
}

std::string TraceReplayer::DirPath(size_t d) const {
  return "/" + spec_.name + "-d" + std::to_string(d);
}

std::string TraceReplayer::FilePath(size_t d, size_t f) const {
  return DirPath(d) + "/f" + std::to_string(f);
}

Status TraceReplayer::Prepare(MetadataClient* setup_client,
                              std::vector<MetadataClient*> populate_clients) {
  for (size_t d = 0; d < config_.num_dirs; d++) {
    Status st = setup_client->Mkdir(DirPath(d), 0755);
    if (!st.ok() && !st.IsAlreadyExists()) return st;
  }
  // Populate files (with initial content drawn from the file-size CDF,
  // capped so single-machine replay stays bounded).
  std::atomic<bool> failed{false};
  Mutex fail_mu{"workload.fail", 91};
  Status first_failure;
  std::vector<std::thread> threads;
  size_t total = config_.num_dirs * config_.files_per_dir;
  size_t per = (total + populate_clients.size() - 1) / populate_clients.size();
  for (size_t t = 0; t < populate_clients.size(); t++) {
    threads.emplace_back([&, t] {
      Rng rng(0x7ace5eed + t);
      size_t begin = t * per;
      size_t end = std::min(total, begin + per);
      for (size_t i = begin; i < end && !failed.load(); i++) {
        size_t d = i / config_.files_per_dir;
        size_t f = i % config_.files_per_dir;
        std::string path = FilePath(d, f);
        Status st = populate_clients[t]->Create(path, 0644);
        if (!st.ok() && !st.IsAlreadyExists()) {
          MutexLock lock(fail_mu);
          first_failure = st;
          failed.store(true);
          return;
        }
        uint64_t size = SampleSize(spec_.file_size_cdf, rng);
        std::string payload(
            std::min<uint64_t>(size, config_.io_cap_bytes), 'x');
        Status wst = populate_clients[t]->Write(path, 0, payload);
        if (!wst.ok()) {
          MutexLock lock(fail_mu);
          first_failure = wst;
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  if (failed.load()) {
    return Status(first_failure.code(),
                  "trace populate failed: " + first_failure.ToString());
  }
  return Status::Ok();
}

TraceReplayResult TraceReplayer::Replay(
    std::vector<std::unique_ptr<MetadataClient>> clients) {
  std::vector<double> weights;
  std::vector<FsOp> ops;
  for (const auto& [op, pct] : spec_.mix) {
    ops.push_back(op);
    weights.push_back(pct);
  }
  WeightedChoice choice(weights);

  std::atomic<bool> warming{config_.warmup_ms > 0};
  std::atomic<bool> running{true};
  std::atomic<uint64_t> fs_ops{0}, meta_ops{0}, errors{0};
  StripedHistogram fs_latency(clients.size());
  StripedHistogram meta_latency(clients.size());

  std::vector<std::thread> threads;
  for (size_t t = 0; t < clients.size(); t++) {
    threads.emplace_back([&, t] {
      MetadataClient* client = clients[t].get();
      Rng rng(0x0ddba11 + t * 977);
      uint64_t seq = 0;
      uint64_t local_fs = 0, local_meta = 0, local_err = 0;
      while (running.load(std::memory_order_relaxed)) {
        FsOp op = ops[choice.Next(rng)];
        size_t d = rng.Uniform(config_.num_dirs);
        size_t f = rng.Uniform(config_.files_per_dir);
        std::string path = FilePath(d, f);
        uint64_t meta_in_op = 1;
        Status st;
        Stopwatch sw;
        switch (op) {
          case FsOp::kStat: {
            // stat = lookup + getattr (§5.8).
            st = client->GetAttr(path).status();
            meta_in_op = 2;
            break;
          }
          case FsOp::kOpen:
            st = client->Lookup(path).status();
            break;
          case FsOp::kOpenCreat: {
            std::string fresh = DirPath(d) + "/t" + std::to_string(t) + "_" +
                                std::to_string(seq);
            st = client->Create(fresh, 0644);
            meta_in_op = 2;  // lookup + create
            break;
          }
          case FsOp::kRead: {
            auto info = client->GetAttr(path);  // freshness check
            st = info.status();
            if (st.ok()) {
              uint64_t len = std::min<uint64_t>(
                  SampleSize(spec_.io_size_cdf, rng), config_.io_cap_bytes);
              st = client->Read(path, 0, len).status();
              if (st.IsNotFound()) st = Status::Ok();  // EOF/hole
            }
            meta_in_op = 1;  // getattr
            break;
          }
          case FsOp::kWrite: {
            uint64_t len = std::min<uint64_t>(
                SampleSize(spec_.io_size_cdf, rng), config_.io_cap_bytes);
            st = client->Write(path, 0, std::string(len, 'w'));
            meta_in_op = 1;  // attribute merge
            break;
          }
          case FsOp::kOpendir:
            st = client->ReadDir(DirPath(d)).status();
            break;
          case FsOp::kUnlink: {
            std::string victim = DirPath(d) + "/v" + std::to_string(t) + "_" +
                                 std::to_string(seq);
            st = client->Create(victim, 0644);
            if (st.ok()) st = client->Unlink(victim);
            meta_in_op = 2;  // create + unlink
            break;
          }
          case FsOp::kRename: {
            std::string a = DirPath(d) + "/rn" + std::to_string(t) + "_" +
                            std::to_string(seq);
            st = client->Create(a, 0644);
            if (st.ok()) st = client->Rename(a, a + "_renamed");
            if (st.ok()) st = client->Unlink(a + "_renamed");
            meta_in_op = 3;
            break;
          }
          case FsOp::kMkdir: {
            st = client->Mkdir(DirPath(d) + "/m" + std::to_string(t) + "_" +
                                   std::to_string(seq),
                               0755);
            break;
          }
          case FsOp::kChmod: {
            SetAttrSpec spec;
            spec.mode = 0640;
            st = client->SetAttr(path, spec);
            break;
          }
        }
        int64_t us = sw.ElapsedMicros();
        seq++;
        if (!warming.load(std::memory_order_relaxed)) {
          fs_latency.Record(t, us);
          meta_latency.Record(t, us / static_cast<int64_t>(meta_in_op));
          local_fs += 1;
          local_meta += meta_in_op;
          if (!st.ok()) local_err++;
        }
      }
      fs_ops.fetch_add(local_fs);
      meta_ops.fetch_add(local_meta);
      errors.fetch_add(local_err);
    });
  }

  if (config_.warmup_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.warmup_ms));
    warming.store(false);
  }
  Stopwatch window;
  std::this_thread::sleep_for(std::chrono::milliseconds(config_.duration_ms));
  double seconds = window.ElapsedSeconds();
  running.store(false);
  for (auto& th : threads) th.join();

  TraceReplayResult result;
  result.fs_ops = fs_ops.load();
  result.meta_ops = meta_ops.load();
  result.errors = errors.load();
  result.seconds = seconds;
  result.fs_latency = fs_latency.Aggregate();
  result.meta_latency = meta_latency.Aggregate();
  return result;
}

}  // namespace cfs
