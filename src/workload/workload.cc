#include "src/workload/workload.h"

#include <chrono>
#include <thread>

#include "src/common/clock.h"
#include "src/common/thread_annotations.h"
#include "src/common/thread_pool.h"

namespace cfs {
namespace {

std::string PrivateDir(size_t thread) {
  return "/priv" + std::to_string(thread);
}

std::string TargetDir(size_t thread, double contention_rate, Rng& rng) {
  if (contention_rate > 0 && rng.NextDouble() < contention_rate) {
    return "/shared";
  }
  return PrivateDir(thread);
}

}  // namespace

std::string_view MetaOpName(MetaOp op) {
  switch (op) {
    case MetaOp::kCreate: return "create";
    case MetaOp::kGetAttr: return "getattr";
    case MetaOp::kRmdir: return "rmdir";
    case MetaOp::kLookup: return "lookup";
    case MetaOp::kMkdir: return "mkdir";
    case MetaOp::kReaddir: return "readdir";
    case MetaOp::kUnlink: return "unlink";
    case MetaOp::kSetAttr: return "setattr";
    case MetaOp::kRename: return "rename";
  }
  return "?";
}

RunResult WorkloadRunner::Run(const OpFn& op, int64_t duration_ms,
                              int64_t warmup_ms,
                              const std::string& trace_label) {
  std::atomic<bool> warming{warmup_ms > 0};
  std::atomic<bool> running{true};
  std::atomic<uint64_t> total_ops{0};
  std::atomic<uint64_t> total_errors{0};
  StripedHistogram latency(std::max<size_t>(clients_.size(), 1));
  Mutex phases_mu{"workload.phases", 90};
  PhaseBreakdown phases;

  // Causal-trace op name: the run's label when given ("fig9.cfs.create"),
  // so retained span trees say which bench op produced them.
  const char* op_name = trace_label.empty() ? "op" : trace_label.c_str();

  std::vector<std::thread> threads;
  threads.reserve(clients_.size());
  for (size_t t = 0; t < clients_.size(); t++) {
    threads.emplace_back([&, t] {
      Rng rng(0xbadc0ffee ^ (t * 0x9e3779b9));
      uint64_t seq = 0;
      uint64_t ops = 0;
      uint64_t errors = 0;
      PhaseBreakdown local;
      while (running.load(std::memory_order_relaxed)) {
        // One warming check per op, at begin: ops that start during
        // warm-up are excluded from the accumulators AND carry the
        // "warmup" trace label, so the causal-trace layer and the phase
        // accumulators see the same op population (fig13's span-vs-
        // accumulator cross-check filters by label).
        bool warm = warming.load(std::memory_order_relaxed);
        OpTrace::Begin(warm ? "warmup" : op_name);
        Status st = op(clients_[t].get(), t, seq++, rng);
        OpTraceData trace = OpTrace::Finish();
        if (!warm) {
          latency.Record(t, trace.total_us);
          local.Add(trace);
          ops++;
          if (!st.ok()) errors++;
        }
      }
      total_ops.fetch_add(ops);
      total_errors.fetch_add(errors);
      MutexLock lock(phases_mu);
      phases.Merge(local);
    });
  }

  if (warmup_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(warmup_ms));
    warming.store(false);
  }
  Stopwatch window;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  double seconds = window.ElapsedSeconds();
  running.store(false);
  for (auto& th : threads) th.join();

  RunResult result;
  result.ops = total_ops.load();
  result.errors = total_errors.load();
  result.seconds = seconds;
  result.latency = latency.Aggregate();
  result.phases = phases;
  if (!trace_label.empty()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    result.phases.PublishTo(registry, trace_label);
    registry.GetHistogram("trace." + trace_label + ".latency")
        ->Merge(result.latency);
  }
  return result;
}

RunResult WorkloadRunner::RunSimulated(simtime::Scheduler& sched,
                                       const OpFn& op, int64_t duration_ms,
                                       int64_t warmup_ms,
                                       const std::string& trace_label) {
  const char* op_name = trace_label.empty() ? "op" : trace_label.c_str();
  const int64_t start_us = sched.now_us();
  const int64_t warmup_end_us = start_us + warmup_ms * 1000;
  const int64_t deadline_us = warmup_end_us + duration_ms * 1000;

  uint64_t ops = 0;
  uint64_t errors = 0;
  Histogram latency;
  PhaseBreakdown phases;
  std::vector<Rng> rngs;
  std::vector<uint64_t> seqs(clients_.size(), 0);
  rngs.reserve(clients_.size());
  for (size_t t = 0; t < clients_.size(); t++) {
    // Same per-client stream family as Run(), keyed on the scheduler seed
    // so different seeds explore different op sequences.
    rngs.emplace_back(sched.seed() ^ 0xbadc0ffee ^ (t * 0x9e3779b9));
  }

  // One client = one self-rescheduling step function. The op runs to
  // completion on the scheduler thread; the latency it accrued becomes the
  // gap to its next op. As in Run(), an op that *starts* before the
  // deadline is counted even if its accrued latency ends past it.
  std::function<void(size_t)> step = [&](size_t t) {
    bool warm = sched.now_us() < warmup_end_us;
    OpTrace::Begin(warm ? "warmup" : op_name);
    Status st = op(clients_[t].get(), t, seqs[t]++, rngs[t]);
    OpTraceData trace = OpTrace::Finish();
    if (!warm) {
      latency.Record(trace.total_us);
      phases.Add(trace);
      ops++;
      if (!st.ok()) errors++;
    }
    int64_t next_us = sched.task_now_us();
    if (next_us < deadline_us) {
      sched.At(next_us, [&step, t] { step(t); });
    }
  };
  for (size_t t = 0; t < clients_.size(); t++) {
    sched.At(start_us, [&step, t] { step(t); });
  }
  sched.RunUntil(deadline_us);
  // Tasks scheduled past the deadline reference this frame; drop them.
  (void)sched.CancelPending();

  RunResult result;
  result.ops = ops;
  result.errors = errors;
  result.seconds = static_cast<double>(duration_ms) / 1000.0;
  result.latency = latency;
  result.phases = phases;
  if (!trace_label.empty()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    result.phases.PublishTo(registry, trace_label);
    registry.GetHistogram("trace." + trace_label + ".latency")
        ->Merge(result.latency);
  }
  return result;
}

RunResult WorkloadRunner::RunCount(const OpFn& op, uint64_t ops_per_thread) {
  std::atomic<uint64_t> total_errors{0};
  StripedHistogram latency(std::max<size_t>(clients_.size(), 1));
  Mutex phases_mu{"workload.phases", 90};
  PhaseBreakdown phases;
  Stopwatch window;
  std::vector<std::thread> threads;
  threads.reserve(clients_.size());
  for (size_t t = 0; t < clients_.size(); t++) {
    threads.emplace_back([&, t] {
      Rng rng(0xfeedface ^ (t * 0x9e3779b9));
      uint64_t errors = 0;
      PhaseBreakdown local;
      for (uint64_t seq = 0; seq < ops_per_thread; seq++) {
        OpTrace::Begin("setup");
        Status st = op(clients_[t].get(), t, seq, rng);
        OpTraceData trace = OpTrace::Finish();
        latency.Record(t, trace.total_us);
        local.Add(trace);
        if (!st.ok()) errors++;
      }
      total_errors.fetch_add(errors);
      MutexLock lock(phases_mu);
      phases.Merge(local);
    });
  }
  for (auto& th : threads) th.join();

  RunResult result;
  result.ops = ops_per_thread * clients_.size();
  result.errors = total_errors.load();
  result.seconds = window.ElapsedSeconds();
  result.latency = latency.Aggregate();
  result.phases = phases;
  return result;
}

Status SetupPrivateDirs(MetadataClient* client, size_t clients) {
  for (size_t t = 0; t < clients; t++) {
    Status st = client->Mkdir(PrivateDir(t), 0755);
    if (!st.ok() && !st.IsAlreadyExists()) return st;
  }
  Status st = client->Mkdir("/shared", 0755);
  if (!st.ok() && !st.IsAlreadyExists()) return st;
  return Status::Ok();
}

Status PopulateDirectory(std::vector<MetadataClient*> clients,
                         const std::string& dir, size_t count) {
  if (clients.empty()) return Status::InvalidArgument("no clients");
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  size_t per = (count + clients.size() - 1) / clients.size();
  for (size_t t = 0; t < clients.size(); t++) {
    threads.emplace_back([&, t] {
      size_t begin = t * per;
      size_t end = std::min(count, begin + per);
      for (size_t i = begin; i < end && !failed.load(); i++) {
        Status st = clients[t]->Create(dir + "/f" + std::to_string(i), 0644);
        if (!st.ok() && !st.IsAlreadyExists()) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  return failed.load() ? Status::Internal("populate failed") : Status::Ok();
}

OpFn MakeCreateOp(double contention_rate) {
  return [contention_rate](MetadataClient* client, size_t thread, uint64_t seq,
                           Rng& rng) {
    std::string dir = TargetDir(thread, contention_rate, rng);
    return client->Create(
        dir + "/c" + std::to_string(thread) + "_" + std::to_string(seq), 0644);
  };
}

OpFn MakeUnlinkAfterCreateOp(double contention_rate) {
  // Paired create+unlink keeps a closed loop sustainable; every system pays
  // the identical create cost, so relative unlink comparisons hold.
  return [contention_rate](MetadataClient* client, size_t thread, uint64_t seq,
                           Rng& rng) {
    std::string dir = TargetDir(thread, contention_rate, rng);
    std::string path =
        dir + "/u" + std::to_string(thread) + "_" + std::to_string(seq);
    Status st = client->Create(path, 0644);
    if (!st.ok()) return st;
    return client->Unlink(path);
  };
}

OpFn MakeMkdirOp(double contention_rate) {
  return [contention_rate](MetadataClient* client, size_t thread, uint64_t seq,
                           Rng& rng) {
    std::string dir = TargetDir(thread, contention_rate, rng);
    return client->Mkdir(
        dir + "/d" + std::to_string(thread) + "_" + std::to_string(seq), 0755);
  };
}

OpFn MakeRmdirAfterMkdirOp(double contention_rate) {
  return [contention_rate](MetadataClient* client, size_t thread, uint64_t seq,
                           Rng& rng) {
    std::string dir = TargetDir(thread, contention_rate, rng);
    std::string path =
        dir + "/rd" + std::to_string(thread) + "_" + std::to_string(seq);
    Status st = client->Mkdir(path, 0755);
    if (!st.ok()) return st;
    return client->Rmdir(path);
  };
}

namespace {

OpFn MakeReadSideOp(double contention_rate, size_t files_per_dir,
                    size_t shared_files,
                    Status (*fn)(MetadataClient*, const std::string&)) {
  return [=](MetadataClient* client, size_t thread, uint64_t, Rng& rng) {
    bool shared =
        contention_rate > 0 && rng.NextDouble() < contention_rate;
    std::string dir = shared ? "/shared" : PrivateDir(thread);
    size_t population = shared ? shared_files : files_per_dir;
    std::string path =
        dir + "/f" + std::to_string(rng.Uniform(std::max<size_t>(population, 1)));
    return fn(client, path);
  };
}

}  // namespace

OpFn MakeGetAttrOp(double contention_rate, size_t files_per_dir,
                   size_t shared_files) {
  return MakeReadSideOp(contention_rate, files_per_dir, shared_files,
                        [](MetadataClient* c, const std::string& p) {
                          return c->GetAttr(p).status();
                        });
}

OpFn MakeLookupOp(double contention_rate, size_t files_per_dir,
                  size_t shared_files) {
  return MakeReadSideOp(contention_rate, files_per_dir, shared_files,
                        [](MetadataClient* c, const std::string& p) {
                          return c->Lookup(p).status();
                        });
}

OpFn MakeSetAttrOp(double contention_rate, size_t files_per_dir,
                   size_t shared_files) {
  return MakeReadSideOp(contention_rate, files_per_dir, shared_files,
                        [](MetadataClient* c, const std::string& p) {
                          SetAttrSpec spec;
                          spec.mtime = 12345;
                          return c->SetAttr(p, spec);
                        });
}

OpFn MakeReaddirOp(double contention_rate) {
  return [contention_rate](MetadataClient* client, size_t thread, uint64_t,
                           Rng& rng) {
    std::string dir = TargetDir(thread, contention_rate, rng);
    return client->ReadDir(dir).status();
  };
}

OpFn MakeRenameOp(double intra_ratio) {
  // Per-thread population of toggling rename targets under /ren/t<t>
  // (intra-directory pairs) and /ren/x<t> (cross-directory); §5.6 uses a
  // 90/10 intra/other mix. Determinism: file index cycles, the side toggles
  // with the visit count, so sources always exist after setup created the
  // "_a" side.
  constexpr uint64_t kFilesPerThread = 16;
  return [intra_ratio](MetadataClient* client, size_t thread, uint64_t seq,
                       Rng&) {
    uint64_t index = seq % kFilesPerThread;
    uint64_t visit = seq / kFilesPerThread;
    bool intra = index < static_cast<uint64_t>(intra_ratio * kFilesPerThread);
    std::string t = std::to_string(thread);
    std::string base = "r" + std::to_string(index);
    if (intra) {
      std::string dir = "/ren/t" + t;
      std::string from = dir + "/" + base + (visit % 2 == 0 ? "_a" : "_b");
      std::string to = dir + "/" + base + (visit % 2 == 0 ? "_b" : "_a");
      return client->Rename(from, to);
    }
    std::string from_dir = visit % 2 == 0 ? "/ren/t" + t : "/ren/x" + t;
    std::string to_dir = visit % 2 == 0 ? "/ren/x" + t : "/ren/t" + t;
    return client->Rename(from_dir + "/" + base + "_a",
                          to_dir + "/" + base + "_a");
  };
}

OpFn MakeLargeDirOp(MetaOp op, const std::string& dir, size_t population) {
  switch (op) {
    case MetaOp::kCreate:
      return [dir](MetadataClient* client, size_t thread, uint64_t seq, Rng&) {
        return client->Create(dir + "/n" + std::to_string(thread) + "_" +
                                  std::to_string(seq),
                              0644);
      };
    case MetaOp::kUnlink:
      return [dir](MetadataClient* client, size_t thread, uint64_t seq, Rng&) {
        std::string path =
            dir + "/u" + std::to_string(thread) + "_" + std::to_string(seq);
        Status st = client->Create(path, 0644);
        if (!st.ok()) return st;
        return client->Unlink(path);
      };
    case MetaOp::kMkdir:
      return [dir](MetadataClient* client, size_t thread, uint64_t seq, Rng&) {
        return client->Mkdir(dir + "/d" + std::to_string(thread) + "_" +
                                 std::to_string(seq),
                             0755);
      };
    case MetaOp::kRmdir:
      return [dir](MetadataClient* client, size_t thread, uint64_t seq, Rng&) {
        std::string path =
            dir + "/rd" + std::to_string(thread) + "_" + std::to_string(seq);
        Status st = client->Mkdir(path, 0755);
        if (!st.ok()) return st;
        return client->Rmdir(path);
      };
    // Read-side ops follow mdtest's shared-directory semantics: every rank
    // (thread) works on its own slice of the shared directory's files, so
    // client dentry caches warm up and the measured op is the attribute
    // access itself, not a cold path resolution per call.
    case MetaOp::kLookup:
      return [dir, population](MetadataClient* client, size_t thread,
                               uint64_t, Rng& rng) {
        size_t chunk = std::max<size_t>(population / 64, 1);
        size_t base = (thread * chunk) % population;
        return client
            ->Lookup(dir + "/f" +
                     std::to_string(base + rng.Uniform(chunk)))
            .status();
      };
    case MetaOp::kGetAttr:
      return [dir, population](MetadataClient* client, size_t thread,
                               uint64_t, Rng& rng) {
        size_t chunk = std::max<size_t>(population / 64, 1);
        size_t base = (thread * chunk) % population;
        return client
            ->GetAttr(dir + "/f" +
                      std::to_string(base + rng.Uniform(chunk)))
            .status();
      };
    case MetaOp::kSetAttr:
      return [dir, population](MetadataClient* client, size_t thread,
                               uint64_t, Rng& rng) {
        size_t chunk = std::max<size_t>(population / 64, 1);
        size_t base = (thread * chunk) % population;
        SetAttrSpec spec;
        spec.mtime = 777;
        return client->SetAttr(
            dir + "/f" + std::to_string(base + rng.Uniform(chunk)), spec);
      };
    default:
      return [](MetadataClient*, size_t, uint64_t, Rng&) {
        return Status::Unimplemented("large-dir op");
      };
  }
}

}  // namespace cfs
