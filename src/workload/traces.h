// Production trace synthesis and replay (paper §5.8).
//
// The paper replays three traces (tr-0, tr-1, tr-2) sampled from nine
// production workloads. The traces themselves are proprietary; this module
// synthesizes statistically equivalent streams from the published
// statistics: the file-system-op compositions of Table 3 and the file/IO
// size distributions of Figure 14. The replayer executes the stream with
// data access enabled and reports both file-system-op and metadata-op
// throughput plus tail latency — the quantities Fig 15 compares.

#ifndef CFS_WORKLOAD_TRACES_H_
#define CFS_WORKLOAD_TRACES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/core/metadata_client.h"

namespace cfs {

enum class FsOp {
  kRead,
  kWrite,
  kOpen,
  kOpenCreat,
  kStat,
  kOpendir,
  kUnlink,
  kRename,
  kMkdir,
  kChmod,
};

std::string_view FsOpName(FsOp op);

// Piecewise CDF over sizes in bytes: (upper_bound, cumulative_fraction),
// fractions ending at 1.0.
using SizeCdf = std::vector<std::pair<uint64_t, double>>;

struct TraceSpec {
  std::string name;
  std::vector<std::pair<FsOp, double>> mix;  // Table 3 percentages
  SizeCdf file_size_cdf;                     // Fig 14 (a)
  SizeCdf io_size_cdf;                       // Fig 14 (b)
};

TraceSpec TraceTr0();
TraceSpec TraceTr1();
TraceSpec TraceTr2();
std::vector<TraceSpec> AllTraces();

// Draws a size from a CDF (log-uniform within the matched bucket).
uint64_t SampleSize(const SizeCdf& cdf, Rng& rng);

// Fraction of samples at or below `bound` (for reporting Fig 14 rows).
double CdfAt(const SizeCdf& cdf, uint64_t bound);

struct TraceReplayResult {
  uint64_t fs_ops = 0;
  uint64_t meta_ops = 0;  // metadata operations triggered (stat = 2, ...)
  uint64_t errors = 0;
  double seconds = 0;
  Histogram fs_latency;
  Histogram meta_latency;

  double fs_ops_per_sec() const { return seconds > 0 ? fs_ops / seconds : 0; }
  double meta_ops_per_sec() const {
    return seconds > 0 ? meta_ops / seconds : 0;
  }
};

struct TraceReplayConfig {
  size_t num_dirs = 8;        // namespace breadth
  size_t files_per_dir = 64;  // pre-populated working set
  size_t io_cap_bytes = 4096; // cap on actual payload bytes moved
  int64_t duration_ms = 3000;
  int64_t warmup_ms = 300;
};

// Pre-populates the namespace (directories plus files with sizes drawn from
// the trace's file-size CDF) using `setup_client`, then replays the op mix
// from `clients` in a closed loop.
class TraceReplayer {
 public:
  TraceReplayer(TraceSpec spec, TraceReplayConfig config)
      : spec_(std::move(spec)), config_(config) {}

  Status Prepare(MetadataClient* setup_client,
                 std::vector<MetadataClient*> populate_clients);
  TraceReplayResult Replay(
      std::vector<std::unique_ptr<MetadataClient>> clients);

  const TraceSpec& spec() const { return spec_; }

 private:
  std::string DirPath(size_t d) const;
  std::string FilePath(size_t d, size_t f) const;

  TraceSpec spec_;
  TraceReplayConfig config_;
};

// Aggregated metadata-op shares (Table 1): derived by decomposing the nine
// production workloads' file-system calls into metadata ops the way §3.2
// describes (stat -> lookup+getattr, open -> lookup, read -> getattr, ...).
struct MetaOpShare {
  std::string op;
  double ratio;
};
std::vector<MetaOpShare> Table1OpShares();

}  // namespace cfs

#endif  // CFS_WORKLOAD_TRACES_H_
