// Write-ahead log.
//
// Append-only sequence of opaque records, each assigned a monotonically
// increasing LSN. Three consumers:
//   - the KV store logs write batches before applying them to the memtable,
//   - raft persists log entries and votes,
//   - the garbage collector tails recent records as its change-data-capture
//     feed (paper §4.4).
//
// Records live in memory (the CDC window) and, when a path is configured,
// are also framed to a file ([crc32c][varint len][payload]) so recovery and
// corruption-detection paths can be tested against real bytes. fsync is
// simulated by default (a configurable sleep standing in for the paper's
// NVMe WAL flush); file-backed WALs can request real fdatasync.

#ifndef CFS_WAL_WAL_H_
#define CFS_WAL_WAL_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace cfs {

struct WalOptions {
  // Simulated flush latency applied on every synced append (0 disables).
  int64_t fsync_delay_us = 0;
  // Backing file; empty keeps the log memory-only.
  std::string path;
  // Issue a real fdatasync on synced appends (requires `path`).
  bool real_fsync = false;
  // Cap on the in-memory record window retained for CDC tailing; older
  // records are dropped from memory (they remain in the file if any).
  size_t memory_window = 1 << 20;
};

class Wal {
 public:
  explicit Wal(WalOptions options = {});
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (and replays nothing by itself); see Recover().
  Status Open();

  // Appends a record; if sync, pays the flush cost. Returns the LSN.
  StatusOr<uint64_t> Append(std::string_view record, bool sync = true);

  // Replays records from the backing file (or the memory window when
  // memory-only), in LSN order. Stops at the first corrupt frame, returning
  // how many records were delivered via Status OK (corrupt tails are
  // expected after a crash).
  Status Replay(
      const std::function<void(uint64_t lsn, std::string_view record)>& fn);

  // Returns records with lsn >= from_lsn currently in the memory window
  // (CDC tailing). `max` caps the batch.
  std::vector<std::pair<uint64_t, std::string>> ReadFrom(uint64_t from_lsn,
                                                         size_t max) const;

  // First LSN still held in the memory window.
  uint64_t FirstLsn() const;
  // LSN the next append will receive.
  uint64_t NextLsn() const;

  // Drops memory-window records with lsn < up_to (checkpointing).
  void TruncatePrefix(uint64_t up_to);

  // Test hook: chop the last `bytes` off the backing file to emulate a torn
  // write; subsequent Replay must stop cleanly before the torn frame.
  Status CorruptTailForTest(size_t bytes);

  uint64_t synced_appends() const {
    MutexLock lock(mu_);
    return synced_appends_;
  }

 private:
  Status AppendToFileLocked(std::string_view record) REQUIRES(mu_);

  WalOptions options_;  // tsa-coverage: allow(immutable after construction)
  // Leaf within the write path: raft/kv append while holding their own
  // locks, so wal.log ranks above them; the simulated fsync sleep happens
  // with mu_ released.
  mutable Mutex mu_{"wal.log", 70};
  std::deque<std::string> window_ GUARDED_BY(mu_);
  uint64_t window_base_ GUARDED_BY(mu_) = 0;  // LSN of window_.front()
  uint64_t next_lsn_ GUARDED_BY(mu_) = 0;
  std::FILE* file_ GUARDED_BY(mu_) = nullptr;
  uint64_t synced_appends_ GUARDED_BY(mu_) = 0;
};

}  // namespace cfs

#endif  // CFS_WAL_WAL_H_
