#include "src/wal/wal.h"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "src/common/crc32.h"
#include "src/common/encoding.h"
#include "src/common/metrics.h"
#include "src/common/race_detector.h"
#include "src/common/simtime.h"

namespace cfs {
namespace {

struct WalMetrics {
  Counter* appends;
  Counter* synced_appends;
  Counter* fsync_us;
};

WalMetrics& Metrics() {
  static WalMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return WalMetrics{r.GetCounter("wal.appends"),
                      r.GetCounter("wal.synced_appends"),
                      r.GetCounter("wal.fsync_us")};
  }();
  return m;
}

}  // namespace

Wal::Wal(WalOptions options) : options_(std::move(options)) {}

Wal::~Wal() {
  MutexLock lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status Wal::Open() {
  MutexLock lock(mu_);
  if (options_.path.empty()) return Status::Ok();
  file_ = std::fopen(options_.path.c_str(), "ab+");
  if (file_ == nullptr) {
    return Status::IoError("cannot open wal file: " + options_.path);
  }
  return Status::Ok();
}

StatusOr<uint64_t> Wal::Append(std::string_view record, bool sync) {
  uint64_t lsn;
  {
    MutexLock lock(mu_);
    CFS_SHARED_WRITE(window_, mu_);
    lsn = next_lsn_++;
    window_.emplace_back(record);
    while (window_.size() > options_.memory_window) {
      window_.pop_front();
      window_base_++;
    }
    if (file_ != nullptr) {
      Status st = AppendToFileLocked(record);
      if (!st.ok()) return st;
      if (sync && options_.real_fsync) {
        std::fflush(file_);
        fdatasync(fileno(file_));
      }
    }
    if (sync) synced_appends_++;
  }
  Metrics().appends->Add();
  if (sync) Metrics().synced_appends->Add();
  if (sync && options_.fsync_delay_us > 0) {
    TraceSpan span(Phase::kWalFsync);
    Metrics().fsync_us->Add(static_cast<uint64_t>(options_.fsync_delay_us));
    // Preemption point for schedule fuzzing: the fsync yield is where a
    // committing task's timing slides against concurrent committers.
    simtime::FuzzPoint(simtime::FuzzKind::kWalFsync);
    simtime::AdvanceOrSleepUs(options_.fsync_delay_us);
  }
  return lsn;
}

Status Wal::AppendToFileLocked(std::string_view record) {
  std::string frame;
  PutFixed32(&frame, Crc32c(record));
  PutVarint64(&frame, record.size());
  frame.append(record.data(), record.size());
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IoError("wal write failed");
  }
  return Status::Ok();
}

Status Wal::Replay(
    const std::function<void(uint64_t lsn, std::string_view record)>& fn) {
  MutexLock lock(mu_);
  if (file_ == nullptr) {
    // Memory-only: replay the window.
    uint64_t lsn = window_base_;
    // Copy out so fn may call back into this WAL.
    std::vector<std::string> records(window_.begin(), window_.end());
    lock.Unlock();
    for (const auto& r : records) {
      fn(lsn++, r);
    }
    return Status::Ok();
  }
  std::fflush(file_);
  std::fseek(file_, 0, SEEK_END);
  long size = std::ftell(file_);
  std::string buf;
  buf.resize(static_cast<size_t>(size));
  std::fseek(file_, 0, SEEK_SET);
  if (size > 0 &&
      std::fread(buf.data(), 1, buf.size(), file_) != buf.size()) {
    std::fseek(file_, 0, SEEK_END);
    return Status::IoError("wal read failed");
  }
  std::fseek(file_, 0, SEEK_END);
  lock.Unlock();

  Decoder dec(buf);
  uint64_t lsn = 0;
  while (!dec.empty()) {
    uint32_t crc;
    uint64_t len;
    if (!dec.GetFixed32(&crc) || !dec.GetVarint64(&len) ||
        dec.remaining() < len) {
      break;  // torn tail: stop cleanly
    }
    std::string_view payload = dec.rest().substr(0, len);
    if (Crc32c(payload) != crc) {
      break;  // corrupt frame: stop
    }
    fn(lsn++, payload);
    dec = Decoder(dec.rest().substr(len));
  }
  return Status::Ok();
}

std::vector<std::pair<uint64_t, std::string>> Wal::ReadFrom(
    uint64_t from_lsn, size_t max) const {
  MutexLock lock(mu_);
  CFS_SHARED_READ(window_, mu_);
  std::vector<std::pair<uint64_t, std::string>> out;
  if (from_lsn < window_base_) from_lsn = window_base_;
  for (uint64_t lsn = from_lsn; lsn < next_lsn_ && out.size() < max; lsn++) {
    out.emplace_back(lsn, window_[lsn - window_base_]);
  }
  return out;
}

uint64_t Wal::FirstLsn() const {
  MutexLock lock(mu_);
  return window_base_;
}

uint64_t Wal::NextLsn() const {
  MutexLock lock(mu_);
  return next_lsn_;
}

void Wal::TruncatePrefix(uint64_t up_to) {
  MutexLock lock(mu_);
  CFS_SHARED_WRITE(window_, mu_);
  while (window_base_ < up_to && !window_.empty()) {
    window_.pop_front();
    window_base_++;
  }
}

Status Wal::CorruptTailForTest(size_t bytes) {
  MutexLock lock(mu_);
  if (file_ == nullptr) return Status::InvalidArgument("memory-only wal");
  std::fflush(file_);
  std::fseek(file_, 0, SEEK_END);
  long size = std::ftell(file_);
  long new_size = size > static_cast<long>(bytes) ? size - static_cast<long>(bytes) : 0;
  if (ftruncate(fileno(file_), new_size) != 0) {
    return Status::IoError("ftruncate failed");
  }
  std::fseek(file_, 0, SEEK_END);
  return Status::Ok();
}

}  // namespace cfs
