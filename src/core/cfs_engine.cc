// CfsEngine — every metadata/data operation, for all CfsOptions variants.
//
// Full CFS (tiered + primitives + client resolving) follows Figure 8:
//   create : FileStore.PutAttr (piggybacked block) -> insert_with_update
//   unlink : delete_with_update -> async FileStore delete
//   mkdir  : attr record insert on the new dir's shard -> insert_with_update
//   rmdir  : emptiness-checked attr retire -> delete_with_update
//   rename : intra-directory files take the fast path
//            (insert_and_delete_with_update); everything else goes to the
//            Renamer coordinator.
// The two-tier orders are the deterministic ones of Figure 7: creation
// writes the leaf attribute first and links last; deletion unlinks first —
// crashes leave only orphaned attributes for the GC.
//
// With primitives disabled the same operations run as conventional
// lock-based read-modify-write transactions: row locks acquired in the
// shard's lock manager, interactive reads under the locks, buffered
// absolute write images, and 2PC when the write set spans shards. The lock
// hold time therefore includes every network round trip in between — the
// critical-section scope the paper measures and prunes.

#include <algorithm>
#include <functional>
#include <map>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/simtime.h"
#include "src/common/trace_event.h"
#include "src/core/cfs.h"
#include "src/core/gc.h"

namespace cfs {
namespace {

constexpr int64_t kLockTimeoutUs = 4000000;

Predicate ParentIsDir(InodeId parent) {
  Predicate p;
  p.key = InodeKey::AttrRecord(parent);
  p.kind = Predicate::Kind::kExistsWithType;
  p.type = InodeType::kDirectory;
  return p;
}

DentryCache::Options CacheOptionsFrom(const CfsOptions& options) {
  DentryCache::Options o;
  o.capacity = options.dentry_cache_capacity;
  o.shards = options.dentry_cache_shards;
  o.negative_ttl_ms = options.dentry_negative_ttl_ms;
  o.epoch_ttl_ms = options.dentry_epoch_ttl_ms;
  return o;
}

}  // namespace

CfsEngine::CfsEngine(Cfs* fs, NodeId self)
    : fs_(fs),
      self_(self),
      ts_cache_(fs->net(), self, fs->tafdb()->ts_oracle(), 512),
      id_cache_(fs->net(), self, fs->tafdb()->id_allocator(), 128),
      // Sim-aware clock: dentry TTLs expire in virtual time during a
      // simulated run (a wall-clock TTL would expire nondeterministically
      // mid-run and change RPC counts), wall time otherwise.
      cache_(CacheOptionsFrom(fs->options()), simtime::SimAwareClock::Get()) {
  fs_->RegisterEngine(this);
}

CfsEngine::~CfsEngine() { fs_->UnregisterEngine(this); }

uint64_t CfsEngine::NowTs() { return ts_cache_.Next(); }
InodeId CfsEngine::AllocId() { return id_cache_.Next(); }

TxnId CfsEngine::NextTxn() {
  return (static_cast<TxnId>(self_) << 32) | txn_seq_.fetch_add(1);
}

// ---------------------------------------------------------------------------
// Dentry cache

DentryCache::LookupResult CfsEngine::CacheLookup(const std::string& path,
                                                 InodeId parent) {
  TraceSpan span(Phase::kResolveCached);
  // On kNeedsValidation (the epoch view aged past dentry_epoch_ttl_ms, or
  // the TTL is <= 0 and every hit revalidates) the cache refreshes the
  // view with one cheap shard read and retries, trusting the just-fetched
  // view; an unreachable shard degrades to a miss. The cache records one
  // terminal hit/miss outcome per call.
  return cache_.LookupValidated(path, parent, [&](uint64_t* epoch) {
    TafDbShard* shard = fs_->tafdb()->ShardFor(parent);
    bool fetched = false;
    (void)fs_->net()->Call(self_, shard->ServiceNetId(), [&]() -> Status {
      *epoch = shard->DirEpoch(parent);
      fetched = true;
      return Status::Ok();
    });
    return fetched;
  });
}

void CfsEngine::CachePut(const std::string& path, InodeId parent, InodeId id,
                         InodeType type, uint64_t epoch) {
  cache_.PutPositive(path, parent, id, type, epoch);
}

void CfsEngine::CacheNegative(const std::string& path, InodeId parent,
                              uint64_t epoch) {
  cache_.PutNegative(path, parent, epoch);
}

void CfsEngine::CacheErase(const std::string& path) { cache_.Erase(path); }

void CfsEngine::BumpDirEpoch(InodeId dir) {
  // Runs on the shard the mutation just committed to; the bump rides the
  // same round, so no extra RPC is charged. Adopting the returned value
  // keeps our own cached entries under `dir` valid (their tags are updated
  // on the next fill; existing tags now mismatch, which is exactly right —
  // we just changed the directory).
  uint64_t epoch = fs_->tafdb()->ShardFor(dir)->BumpDirEpoch(dir);
  cache_.ObserveDirEpoch(dir, epoch);
}

void CfsEngine::InvalidateCache(const std::string& path) {
  cache_.ErasePrefix(path);
}

void CfsEngine::ApplyInvalidation(const CacheInvalidation& inv) {
  trace::Instant(trace::Category::kCache, "invalidate");
  if (!inv.src_path.empty()) {
    if (inv.subtree) {
      cache_.ErasePrefix(inv.src_path);
    } else {
      cache_.Erase(inv.src_path);
    }
  }
  if (!inv.dst_path.empty() && inv.dst_path != inv.src_path) {
    if (inv.subtree) {
      cache_.ErasePrefix(inv.dst_path);
    } else {
      cache_.Erase(inv.dst_path);
    }
  }
  if (inv.src_parent != kInvalidInode) {
    cache_.ObserveDirEpoch(inv.src_parent, inv.src_parent_epoch);
  }
  if (inv.dst_parent != kInvalidInode) {
    cache_.ObserveDirEpoch(inv.dst_parent, inv.dst_parent_epoch);
  }
}

// ---------------------------------------------------------------------------
// Resolution

StatusOr<InodeRecord> CfsEngine::ReadEntry(InodeId parent,
                                           const std::string& name,
                                           uint64_t* observed_epoch) {
  TafDbShard* shard = fs_->tafdb()->ShardFor(parent);
  uint64_t epoch = 0;
  bool fetched = false;
  auto rec = fs_->net()->Call(self_, shard->ServiceNetId(), [&] {
    // Piggyback the parent's mutation epoch on the entry read (same shard,
    // same round trip). Epoch before entry: the tag can only be older than
    // the content, so a concurrent bump makes the fill conservatively
    // stale rather than wrongly fresh. Callers that fill the cache must
    // tag with `*observed_epoch` — NOT the view at fill time, which a
    // concurrent invalidation broadcast may have advanced past this read.
    epoch = shard->DirEpoch(parent);
    fetched = true;
    return shard->Get(InodeKey::IdRecord(parent, name));
  });
  if (fetched) cache_.ObserveDirEpoch(parent, epoch);
  if (observed_epoch != nullptr) *observed_epoch = epoch;
  return rec;
}

StatusOr<InodeRecord> CfsEngine::ReadTafAttr(InodeId id) {
  TafDbShard* shard = fs_->tafdb()->ShardFor(id);
  return fs_->net()->Call(self_, shard->ServiceNetId(), [&] {
    return shard->Get(InodeKey::AttrRecord(id));
  });
}

Status CfsEngine::LockPhaseCall(NodeId service,
                                const std::function<Status()>& fn) {
  TraceSpan span(Phase::kLockWait);
  return fs_->net()->Call(self_, service, fn);
}

PrimitiveResult CfsEngine::ExecOnShard(InodeId kid, const PrimitiveOp& op) {
  TraceSpan span(Phase::kShardExec, "exec_on_shard");
  TafDbShard* shard = fs_->tafdb()->ShardFor(kid);
  Status delivered = fs_->net()->BeginCall(self_, shard->ServiceNetId());
  if (!delivered.ok()) {
    PrimitiveResult r;
    r.status = delivered;
    return r;
  }
  // Direct-call site (no SimNet::Call wrapper): attribute the shard-side
  // execution to the destination like Call() would.
  trace::NodeScope node(fs_->net()->TraceNodeOf(shard->ServiceNetId()));
  trace::ScopedSpan exec(trace::Category::kExec, "primitive");
  return shard->ExecutePrimitive(op);
}

StatusOr<InodeId> CfsEngine::ResolveDirId(const std::string& path) {
  auto resolved = Resolve(path);
  if (resolved.ok() && resolved->type != InodeType::kDirectory) {
    // The cached dentry may be a stale earlier generation of this name
    // (e.g. a file later replaced by a directory): revalidate before
    // surfacing ENOTDIR.
    resolved = Resolve(path, /*bypass_final_cache=*/true);
  }
  if (!resolved.ok()) return resolved.status();
  if (resolved->type != InodeType::kDirectory) {
    return Status::NotADirectory(path);
  }
  return resolved->id;
}

StatusOr<CfsEngine::Resolved> CfsEngine::ResolveParent(
    const std::string& path) {
  TraceSpan span(Phase::kResolve);
  auto split = SplitParent(path);
  if (!split.ok()) return split.status();
  auto& [parent_path, name] = *split;
  auto parent_id = ResolveDirId(parent_path);
  if (!parent_id.ok()) return parent_id.status();
  Resolved out;
  out.parent = *parent_id;
  out.name = name;
  return out;
}

StatusOr<CfsEngine::Resolved> CfsEngine::Resolve(const std::string& path,
                                                 bool bypass_final_cache) {
  // The same-phase guard makes the outermost frame of the ResolveParent /
  // ResolveDirId / Resolve recursion own the whole resolution time.
  TraceSpan span(Phase::kResolve);
  if (path == "/") {
    Resolved root;
    root.id = kRootInode;
    root.type = InodeType::kDirectory;
    return root;
  }
  auto parent = ResolveParent(path);
  if (!parent.ok()) return parent.status();
  Resolved out = std::move(parent).value();
  if (!bypass_final_cache) {
    DentryCache::LookupResult hit = CacheLookup(path, out.parent);
    if (hit.outcome == DentryCache::Outcome::kHit) {
      out.id = hit.id;
      out.type = hit.type;
      return out;
    }
    if (hit.outcome == DentryCache::Outcome::kNegativeHit) {
      return Status::NotFound(path);
    }
  }
  uint64_t entry_epoch = 0;
  auto entry = ReadEntry(out.parent, out.name, &entry_epoch);
  if (!entry.ok()) {
    // Tag the negative entry with the epoch read alongside the ENOENT: a
    // cached miss until the TTL runs out or the epoch moves.
    if (entry.status().IsNotFound()) {
      CacheNegative(path, out.parent, entry_epoch);
    }
    return entry.status();
  }
  out.id = entry->id;
  out.type = entry->type;
  CachePut(path, out.parent, out.id, out.type, entry_epoch);
  return out;
}

// ---------------------------------------------------------------------------
// Attribute placement

StatusOr<InodeRecord> CfsEngine::FetchAttr(InodeId id, InodeType type) {
  TraceSpan span(Phase::kShardExec);
  if (type != InodeType::kDirectory && fs_->options().tiered_attrs) {
    FileStoreNode* node = fs_->filestore()->NodeFor(id);
    return fs_->net()->Call(self_, node->ServiceNetId(),
                            [&] { return node->GetAttr(id); });
  }
  return ReadTafAttr(id);
}

Status CfsEngine::PlaceFileAttr(const InodeRecord& attr) {
  TraceSpan span(Phase::kShardExec);
  if (fs_->options().tiered_attrs) {
    FileStoreNode* node = fs_->filestore()->NodeFor(attr.id);
    // Piggyback the first (empty) data block on the attribute creation.
    return fs_->net()->Call(self_, node->ServiceNetId(),
                            [&] { return node->PutAttr(attr, ""); });
  }
  PrimitiveOp op;
  op.puts.push_back(attr);
  return ExecOnShard(attr.id, op).status;
}

void CfsEngine::DeleteFileAttrAsync(InodeId id) {
  if (fs_->options().tiered_attrs) {
    // Hard-link-safe: drop one reference; FileStore reclaims the record and
    // blocks atomically when the last link goes.
    fs_->filestore()->UnrefAsync(id);
    return;
  }
  // Non-tiered: read-check-retire the TafDB attribute record. The
  // read/delete window is benign: deletion-side ordering (Fig 7) already
  // removed the dentry, so the record is externally invisible.
  auto rec = ReadTafAttr(id);
  if (!rec.ok()) return;
  PrimitiveOp op;
  if (rec->links > 1) {
    UpdateSpec dec;
    dec.key = InodeKey::AttrRecord(id);
    dec.links_delta = -1;
    op.updates.push_back(dec);
  } else {
    DeleteSpec del;
    del.key = InodeKey::AttrRecord(id);
    del.ifexist = true;
    op.deletes.push_back(del);
  }
  (void)ExecOnShard(id, op);
}

// ---------------------------------------------------------------------------
// Lock-based commit machinery (non-primitive configurations)

Status CfsEngine::CommitWriteSets(std::map<size_t, PrimitiveOp> ops,
                                  TxnId txn) {
  TraceSpan span(Phase::kShardExec);
  if (ops.empty()) return Status::Ok();
  if (ops.size() == 1) {
    TafDbShard* shard = fs_->tafdb()->shard(ops.begin()->first);
    return fs_->net()->Call(self_, shard->ServiceNetId(), [&] {
      return shard->CommitLocal(ops.begin()->second).status;
    });
  }
  std::vector<TxnParticipant*> participants;
  for (auto& [index, op] : ops) {
    TafDbShard* shard = fs_->tafdb()->shard(index);
    Status st = fs_->net()->Call(self_, shard->ServiceNetId(),
                                 [&] { return shard->Stage(txn, op); });
    if (!st.ok()) return st;
    participants.push_back(shard);
  }
  TwoPhaseCommit tpc(fs_->net());
  return tpc.Run(self_, participants, txn);
}

// ---------------------------------------------------------------------------
// create / symlink

Status CfsEngine::CreateCommon(const std::string& path, uint32_t mode,
                               InodeType type,
                               const std::string& symlink_target) {
  auto parent = ResolveParent(path);
  if (!parent.ok()) return parent.status();
  // Capture the parent's epoch view BEFORE issuing the mutation: the fill
  // below must be tagged with a view no newer than the data it caches (a
  // broadcast landing mid-operation may both erase this path and advance
  // the view; tagging with the advanced view would resurrect it as fresh).
  uint64_t parent_epoch = cache_.ObservedDirEpoch(parent->parent);
  uint64_t ts = NowTs();
  InodeId id = AllocId();

  InodeRecord attr = InodeRecord::MakeFileAttr(id, ts, mode, 0, 0);
  attr.type = type;
  if (type == InodeType::kSymlink) {
    attr.symlink_target = symlink_target;
    attr.Set(InodeRecord::kFieldSymlink);
  }

  InodeRecord entry = InodeRecord::MakeIdRecord(parent->parent, parent->name,
                                                id, type);
  UpdateSpec bump;
  bump.key = InodeKey::AttrRecord(parent->parent);
  bump.children_delta = 1;
  bump.lww.mtime = ts;
  bump.lww.ts = ts;

  if (fs_->options().primitives) {
    // Figure 7/8a ordering: leaf attribute first, namespace link last.
    CFS_RETURN_IF_ERROR(PlaceFileAttr(attr));
    auto op = PrimitiveOp::InsertWithUpdate(entry, ParentIsDir(parent->parent),
                                            bump);
    PrimitiveResult result = ExecOnShard(parent->parent, op);
    if (!result.status.ok()) {
      // The attribute record is now an orphan; the GC's pairing analysis
      // will reclaim it (§4.4).
      if (result.status.IsNotFound()) CacheErase(path);
      return result.status;
    }
    CachePut(path, parent->parent, id, type, parent_epoch);
    return Status::Ok();
  }

  // Conventional path: row locks held across reads, attribute placement,
  // and the (possibly distributed) commit.
  TafDbShard* shard_p = fs_->tafdb()->ShardFor(parent->parent);
  TxnId txn = NextTxn();
  std::string attr_key = InodeKey::AttrRecord(parent->parent).Encode();
  std::string entry_key =
      InodeKey::IdRecord(parent->parent, parent->name).Encode();
  Status lock_st = LockPhaseCall(shard_p->ServiceNetId(), [&] {
    return shard_p->locks()->LockAll(txn, {attr_key, entry_key},
                                     LockMode::kExclusive, kLockTimeoutUs);
  });
  if (!lock_st.ok()) return lock_st;
  auto unlock = [&] {
    (void)LockPhaseCall(shard_p->ServiceNetId(), [&]() -> Status {
      shard_p->locks()->UnlockAll(txn);
      return Status::Ok();
    });
  };

  auto parent_attr = ReadTafAttr(parent->parent);
  if (!parent_attr.ok()) {
    unlock();
    return parent_attr.status();
  }
  if (parent_attr->type != InodeType::kDirectory) {
    unlock();
    return Status::NotADirectory(path);
  }
  auto existing = ReadEntry(parent->parent, parent->name);
  if (existing.ok()) {
    unlock();
    return Status::AlreadyExists(path);
  }

  std::map<size_t, PrimitiveOp> ops;
  PrimitiveOp& nsop = ops[fs_->tafdb()->ShardIndexFor(parent->parent)];
  nsop.puts.push_back(entry);
  InodeRecord parent_image = std::move(parent_attr).value();
  parent_image.children += 1;
  parent_image.mtime = ts;
  parent_image.lww_ts = ts;
  nsop.puts.push_back(parent_image);

  Status commit_st;
  if (fs_->options().tiered_attrs) {
    // "+new-org" without primitives: the attribute write joins the txn as a
    // FileStore 2PC participant (no deterministic-order trick yet). The
    // span closes before unlock() so lock and exec phases stay disjoint.
    TraceSpan exec_span(Phase::kShardExec);
    commit_st = [&]() -> Status {
      FileStoreNode* node = fs_->filestore()->NodeFor(id);
      FileStoreCommand put;
      put.kind = FileStoreCommand::Kind::kPutAttr;
      put.id = id;
      put.attr = attr;
      Status st = fs_->net()->Call(self_, node->ServiceNetId(),
                                   [&] { return node->Stage(txn, put); });
      if (!st.ok()) return st;
      st = fs_->net()->Call(self_, shard_p->ServiceNetId(), [&] {
        return shard_p->Stage(txn, nsop);
      });
      if (!st.ok()) return st;
      TwoPhaseCommit tpc(fs_->net());
      return tpc.Run(self_, {shard_p, node}, txn);
    }();
  } else {
    PrimitiveOp attr_op;
    attr_op.puts.push_back(attr);
    ops[fs_->tafdb()->ShardIndexFor(id)].puts.push_back(attr);
    commit_st = CommitWriteSets(std::move(ops), txn);
  }
  unlock();
  if (commit_st.ok()) {
    CachePut(path, parent->parent, id, type, parent_epoch);
  }
  return commit_st;
}

Status CfsEngine::Create(const std::string& path, uint32_t mode) {
  return CreateCommon(path, mode, InodeType::kFile, "");
}

Status CfsEngine::Symlink(const std::string& target,
                          const std::string& link_path) {
  return CreateCommon(link_path, 0777, InodeType::kSymlink, target);
}

// ---------------------------------------------------------------------------
// mkdir / rmdir

Status CfsEngine::Mkdir(const std::string& path, uint32_t mode) {
  auto parent = ResolveParent(path);
  if (!parent.ok()) return parent.status();
  // Pre-mutation view capture; see CreateCommon for why the fill must not
  // use a view refreshed after the mutation started.
  uint64_t parent_epoch = cache_.ObservedDirEpoch(parent->parent);
  uint64_t ts = NowTs();
  InodeId id = AllocId();

  InodeRecord dir_attr =
      InodeRecord::MakeDirAttr(id, ts, mode, 0, 0, parent->parent);
  InodeRecord entry = InodeRecord::MakeIdRecord(parent->parent, parent->name,
                                                id, InodeType::kDirectory);
  UpdateSpec bump;
  bump.key = InodeKey::AttrRecord(parent->parent);
  bump.children_delta = 1;
  bump.links_delta = 1;  // subdirectory's ".." link
  bump.lww.mtime = ts;
  bump.lww.ts = ts;

  if (fs_->options().primitives) {
    // Step 1: the new directory's attribute record (benign orphan on
    // crash). Step 2: link into the parent atomically.
    PrimitiveOp attr_op;
    attr_op.inserts.push_back(dir_attr);
    PrimitiveResult r1 = ExecOnShard(id, attr_op);
    if (!r1.status.ok()) return r1.status;

    auto op = PrimitiveOp::InsertWithUpdate(entry, ParentIsDir(parent->parent),
                                            bump);
    PrimitiveResult r2 = ExecOnShard(parent->parent, op);
    if (!r2.status.ok()) {
      if (r2.status.IsNotFound()) CacheErase(path);
      return r2.status;
    }
    CachePut(path, parent->parent, id, InodeType::kDirectory, parent_epoch);
    return Status::Ok();
  }

  // Conventional path: cross-shard 2PC (the mkdir cost the paper calls out
  // for HopsFS, InfiniFS, and CFS-base alike).
  TafDbShard* shard_p = fs_->tafdb()->ShardFor(parent->parent);
  TxnId txn = NextTxn();
  std::string attr_key = InodeKey::AttrRecord(parent->parent).Encode();
  std::string entry_key =
      InodeKey::IdRecord(parent->parent, parent->name).Encode();
  Status lock_st = LockPhaseCall(shard_p->ServiceNetId(), [&] {
    return shard_p->locks()->LockAll(txn, {attr_key, entry_key},
                                     LockMode::kExclusive, kLockTimeoutUs);
  });
  if (!lock_st.ok()) return lock_st;
  auto unlock = [&] {
    (void)LockPhaseCall(shard_p->ServiceNetId(), [&]() -> Status {
      shard_p->locks()->UnlockAll(txn);
      return Status::Ok();
    });
  };

  auto parent_attr = ReadTafAttr(parent->parent);
  if (!parent_attr.ok()) {
    unlock();
    return parent_attr.status();
  }
  if (parent_attr->type != InodeType::kDirectory) {
    unlock();
    return Status::NotADirectory(path);
  }
  if (ReadEntry(parent->parent, parent->name).ok()) {
    unlock();
    return Status::AlreadyExists(path);
  }

  std::map<size_t, PrimitiveOp> ops;
  PrimitiveOp& nsop = ops[fs_->tafdb()->ShardIndexFor(parent->parent)];
  nsop.puts.push_back(entry);
  InodeRecord parent_image = std::move(parent_attr).value();
  parent_image.children += 1;
  parent_image.links += 1;
  parent_image.mtime = ts;
  parent_image.lww_ts = ts;
  nsop.puts.push_back(parent_image);
  ops[fs_->tafdb()->ShardIndexFor(id)].puts.push_back(dir_attr);

  Status commit_st = CommitWriteSets(std::move(ops), txn);
  unlock();
  if (commit_st.ok()) {
    CachePut(path, parent->parent, id, InodeType::kDirectory, parent_epoch);
  }
  return commit_st;
}

Status CfsEngine::Rmdir(const std::string& path) {
  auto resolved = Resolve(path);
  if (resolved.ok() && resolved->type != InodeType::kDirectory) {
    resolved = Resolve(path, /*bypass_final_cache=*/true);  // revalidate
  }
  if (!resolved.ok()) return resolved.status();
  if (resolved->type != InodeType::kDirectory) {
    return Status::NotADirectory(path);
  }
  if (resolved->id == kRootInode) {
    return Status::InvalidArgument("cannot remove /");
  }
  uint64_t ts = NowTs();

  if (fs_->options().primitives) {
    // Step 1 (deletion-first order): atomically verify emptiness and retire
    // the attribute record; once gone, concurrent creates into this
    // directory fail their parent-exists check.
    PrimitiveOp retire;
    Predicate empty;
    empty.key = InodeKey::AttrRecord(resolved->id);
    empty.kind = Predicate::Kind::kChildrenZero;
    retire.checks.push_back(empty);
    DeleteSpec del_attr;
    del_attr.key = InodeKey::AttrRecord(resolved->id);
    retire.deletes.push_back(del_attr);
    PrimitiveResult r1 = ExecOnShard(resolved->id, retire);
    if (!r1.status.ok()) {
      if (r1.status.IsNotFound()) CacheErase(path);
      return r1.status;
    }

    // Step 2: unlink from the parent, guarded by the directory's id. A
    // crash here leaves a dangling dentry, repaired by on-demand GC when a
    // later getattr/readdir fails.
    DeleteSpec del_entry;
    del_entry.key = InodeKey::IdRecord(resolved->parent, resolved->name);
    del_entry.type_is = InodeType::kDirectory;
    del_entry.hint_id = resolved->id;
    del_entry.expect_attr_cleanup = true;
    UpdateSpec dec;
    dec.key = InodeKey::AttrRecord(resolved->parent);
    dec.children_delta = -1;
    dec.links_delta = -1;
    dec.lww.mtime = ts;
    dec.lww.ts = ts;
    auto op = PrimitiveOp::DeleteWithUpdate(del_entry, dec);
    PrimitiveResult r2 = ExecOnShard(resolved->parent, op);
    CacheErase(path);
    if (r2.status.ok()) BumpDirEpoch(resolved->parent);
    if (!r2.status.ok() && !r1.deleted_records.empty()) {
      // The dentry moved under us (a concurrent rename won): the directory
      // is alive somewhere else, so restore the exact attribute image step
      // 1 retired (compensation; re-creations into the directory were
      // impossible while the record was absent).
      PrimitiveOp restore;
      restore.puts.push_back(r1.deleted_records.front());
      (void)ExecOnShard(resolved->id, restore);
    }
    return r2.status;
  }

  // Conventional path: lock parent entry+attr and the directory's attr
  // (global shard-index order), read, validate emptiness, 2PC.
  TafDbShard* shard_p = fs_->tafdb()->ShardFor(resolved->parent);
  TafDbShard* shard_d = fs_->tafdb()->ShardFor(resolved->id);
  TxnId txn = NextTxn();
  size_t index_p = fs_->tafdb()->ShardIndexFor(resolved->parent);
  size_t index_d = fs_->tafdb()->ShardIndexFor(resolved->id);

  struct LockPlan {
    TafDbShard* shard;
    std::vector<std::string> keys;
    size_t index;
  };
  std::vector<LockPlan> plans;
  plans.push_back(
      {shard_p,
       {InodeKey::AttrRecord(resolved->parent).Encode(),
        InodeKey::IdRecord(resolved->parent, resolved->name).Encode()},
       index_p});
  if (index_d != index_p) {
    plans.push_back(
        {shard_d, {InodeKey::AttrRecord(resolved->id).Encode()}, index_d});
  } else {
    plans[0].keys.push_back(InodeKey::AttrRecord(resolved->id).Encode());
  }
  std::sort(plans.begin(), plans.end(),
            [](const LockPlan& a, const LockPlan& b) { return a.index < b.index; });
  std::vector<TafDbShard*> locked;
  auto unlock_all = [&] {
    for (TafDbShard* s : locked) {
      (void)LockPhaseCall(s->ServiceNetId(), [&]() -> Status {
        s->locks()->UnlockAll(txn);
        return Status::Ok();
      });
    }
  };
  for (auto& plan : plans) {
    Status st = LockPhaseCall(plan.shard->ServiceNetId(), [&] {
      return plan.shard->locks()->LockAll(txn, plan.keys,
                                          LockMode::kExclusive,
                                          kLockTimeoutUs);
    });
    if (!st.ok()) {
      unlock_all();
      return st;
    }
    locked.push_back(plan.shard);
  }

  // Revalidate the dentry under the locks: a stale cached resolution may
  // name a directory that has since been renamed elsewhere; acting on it
  // would delete a live directory's attribute record.
  auto locked_entry = ReadEntry(resolved->parent, resolved->name);
  if (!locked_entry.ok() || locked_entry->id != resolved->id ||
      locked_entry->type != InodeType::kDirectory) {
    unlock_all();
    CacheErase(path);
    return locked_entry.ok() ? Status::NotFound(path)
                             : locked_entry.status();
  }
  auto dir_attr = ReadTafAttr(resolved->id);
  if (!dir_attr.ok()) {
    unlock_all();
    CacheErase(path);
    return dir_attr.status();
  }
  if (dir_attr->children != 0) {
    unlock_all();
    return Status::NotEmpty(path);
  }
  auto parent_attr = ReadTafAttr(resolved->parent);
  if (!parent_attr.ok()) {
    unlock_all();
    return parent_attr.status();
  }

  std::map<size_t, PrimitiveOp> ops;
  {
    PrimitiveOp& op = ops[index_p];
    DeleteSpec del;
    del.key = InodeKey::IdRecord(resolved->parent, resolved->name);
    del.hint_id = resolved->id;
    del.expect_attr_cleanup = true;
    op.deletes.push_back(del);
    InodeRecord parent_image = std::move(parent_attr).value();
    parent_image.children -= 1;
    parent_image.links -= 1;
    parent_image.mtime = ts;
    parent_image.lww_ts = ts;
    op.puts.push_back(parent_image);
  }
  {
    PrimitiveOp& op = ops[index_d];
    DeleteSpec del;
    del.key = InodeKey::AttrRecord(resolved->id);
    op.deletes.push_back(del);
  }
  Status commit_st = CommitWriteSets(std::move(ops), txn);
  unlock_all();
  CacheErase(path);
  if (commit_st.ok()) BumpDirEpoch(resolved->parent);
  return commit_st;
}

// ---------------------------------------------------------------------------
// unlink

Status CfsEngine::Unlink(const std::string& path) {
  auto resolved = Resolve(path);
  if (resolved.ok() && resolved->type == InodeType::kDirectory) {
    resolved = Resolve(path, /*bypass_final_cache=*/true);  // revalidate
  }
  if (!resolved.ok()) return resolved.status();
  if (resolved->type == InodeType::kDirectory) {
    return Status::IsADirectory(path);
  }
  uint64_t ts = NowTs();

  if (fs_->options().primitives) {
    // Figure 8b: unlink the namespace first (atomic, checked), then remove
    // the attribute asynchronously — its latency is hidden (§5.2).
    DeleteSpec del;
    del.key = InodeKey::IdRecord(resolved->parent, resolved->name);
    del.forbid_directory = true;
    del.hint_id = resolved->id;
    del.expect_attr_cleanup = true;
    UpdateSpec dec;
    dec.key = InodeKey::AttrRecord(resolved->parent);
    dec.children_delta = -1;
    dec.lww.mtime = ts;
    dec.lww.ts = ts;
    auto op = PrimitiveOp::DeleteWithUpdate(del, dec);
    PrimitiveResult result = ExecOnShard(resolved->parent, op);
    CacheErase(path);
    if (!result.status.ok()) return result.status;
    BumpDirEpoch(resolved->parent);
    DeleteFileAttrAsync(resolved->id);
    return Status::Ok();
  }

  // Conventional path.
  TafDbShard* shard_p = fs_->tafdb()->ShardFor(resolved->parent);
  TxnId txn = NextTxn();
  std::string attr_key = InodeKey::AttrRecord(resolved->parent).Encode();
  std::string entry_key =
      InodeKey::IdRecord(resolved->parent, resolved->name).Encode();
  Status lock_st = LockPhaseCall(shard_p->ServiceNetId(), [&] {
    return shard_p->locks()->LockAll(txn, {attr_key, entry_key},
                                     LockMode::kExclusive, kLockTimeoutUs);
  });
  if (!lock_st.ok()) return lock_st;
  auto unlock = [&] {
    (void)LockPhaseCall(shard_p->ServiceNetId(), [&]() -> Status {
      shard_p->locks()->UnlockAll(txn);
      return Status::Ok();
    });
  };

  auto entry = ReadEntry(resolved->parent, resolved->name);
  if (!entry.ok()) {
    unlock();
    CacheErase(path);
    return entry.status();
  }
  if (entry->type == InodeType::kDirectory) {
    unlock();
    return Status::IsADirectory(path);
  }
  auto parent_attr = ReadTafAttr(resolved->parent);
  if (!parent_attr.ok()) {
    unlock();
    return parent_attr.status();
  }

  std::map<size_t, PrimitiveOp> ops;
  PrimitiveOp& nsop = ops[fs_->tafdb()->ShardIndexFor(resolved->parent)];
  DeleteSpec del;
  del.key = InodeKey::IdRecord(resolved->parent, resolved->name);
  del.hint_id = entry->id;
  del.expect_attr_cleanup = true;
  nsop.deletes.push_back(del);
  InodeRecord parent_image = std::move(parent_attr).value();
  parent_image.children -= 1;
  parent_image.mtime = ts;
  parent_image.lww_ts = ts;
  nsop.puts.push_back(parent_image);

  Status commit_st;
  if (fs_->options().tiered_attrs) {
    FileStoreNode* node = fs_->filestore()->NodeFor(entry->id);
    FileStoreCommand del_cmd;
    del_cmd.kind = FileStoreCommand::Kind::kDeleteFile;
    del_cmd.id = entry->id;
    Status st = fs_->net()->Call(self_, node->ServiceNetId(),
                                 [&] { return node->Stage(txn, del_cmd); });
    if (!st.ok()) {
      unlock();
      return st;
    }
    st = fs_->net()->Call(self_, shard_p->ServiceNetId(),
                          [&] { return shard_p->Stage(txn, nsop); });
    if (!st.ok()) {
      unlock();
      return st;
    }
    TwoPhaseCommit tpc(fs_->net());
    commit_st = tpc.Run(self_, {shard_p, node}, txn);
  } else {
    PrimitiveOp attr_op;
    DeleteSpec del_attr;
    del_attr.key = InodeKey::AttrRecord(entry->id);
    del_attr.ifexist = true;
    ops[fs_->tafdb()->ShardIndexFor(entry->id)].deletes.push_back(del_attr);
    commit_st = CommitWriteSets(std::move(ops), txn);
  }
  unlock();
  CacheErase(path);
  if (commit_st.ok()) BumpDirEpoch(resolved->parent);
  return commit_st;
}

// ---------------------------------------------------------------------------
// reads

StatusOr<FileInfo> CfsEngine::Lookup(const std::string& path) {
  if (path == "/") {
    auto attr = ReadTafAttr(kRootInode);
    if (!attr.ok()) return attr.status();
    return FileInfo::FromRecord(*attr);
  }
  auto parent = ResolveParent(path);
  if (!parent.ok()) return parent.status();
  uint64_t entry_epoch = 0;
  auto entry = ReadEntry(parent->parent, parent->name, &entry_epoch);
  if (!entry.ok()) {
    if (entry.status().IsNotFound()) {
      CacheNegative(path, parent->parent, entry_epoch);
    }
    return entry.status();
  }
  CachePut(path, parent->parent, entry->id, entry->type, entry_epoch);
  FileInfo info;
  info.id = entry->id;
  info.type = entry->type;
  return info;
}

StatusOr<FileInfo> CfsEngine::GetAttr(const std::string& path) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  auto attr = FetchAttr(resolved->id, resolved->type);
  if (!attr.ok()) {
    if (attr.status().IsNotFound()) {
      // Possibly a dangling dentry from a crashed rmdir/unlink: hand it to
      // the GC's on-demand path (§4.4) and re-resolve once.
      CacheErase(path);
      if (resolved->parent != kInvalidInode) {
        fs_->gc()->ReportDangling(resolved->parent, resolved->name,
                                  resolved->id);
      }
    }
    return attr.status();
  }
  return FileInfo::FromRecord(*attr);
}

Status CfsEngine::SetAttr(const std::string& path, const SetAttrSpec& spec) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  uint64_t ts = NowTs();
  UpdateSpec update;
  update.key = InodeKey::AttrRecord(resolved->id);
  update.lww.mode = spec.mode;
  update.lww.uid = spec.uid;
  update.lww.gid = spec.gid;
  update.lww.mtime = spec.mtime;
  update.lww.size = spec.size;
  update.lww.ctime = ts;
  update.lww.ts = ts;

  if (resolved->type != InodeType::kDirectory && fs_->options().tiered_attrs) {
    FileStoreNode* node = fs_->filestore()->NodeFor(resolved->id);
    return fs_->net()->Call(self_, node->ServiceNetId(),
                            [&] { return node->SetAttr(resolved->id, update); });
  }
  if (fs_->options().primitives) {
    PrimitiveOp op;
    op.updates.push_back(update);
    Status st = ExecOnShard(resolved->id, op).status;
    if (st.ok() && resolved->type == InodeType::kDirectory) {
      // Directory attributes are cached context for resolves under it;
      // publish the change so other engines revalidate.
      BumpDirEpoch(resolved->id);
    }
    return st;
  }

  // Conventional path: lock, read, write image.
  TafDbShard* shard = fs_->tafdb()->ShardFor(resolved->id);
  TxnId txn = NextTxn();
  std::string attr_key = InodeKey::AttrRecord(resolved->id).Encode();
  Status lock_st = LockPhaseCall(shard->ServiceNetId(), [&] {
    return shard->locks()->Lock(txn, attr_key, LockMode::kExclusive,
                                kLockTimeoutUs);
  });
  if (!lock_st.ok()) return lock_st;
  auto attr = ReadTafAttr(resolved->id);
  Status commit_st = attr.status();
  if (attr.ok()) {
    InodeRecord image = std::move(attr).value();
    ApplyUpdateToRecord(update, 0, &image);
    PrimitiveOp op;
    op.puts.push_back(image);
    commit_st = fs_->net()->Call(self_, shard->ServiceNetId(), [&] {
      return shard->CommitLocal(op).status;
    });
  }
  (void)LockPhaseCall(shard->ServiceNetId(), [&]() -> Status {
    shard->locks()->UnlockAll(txn);
    return Status::Ok();
  });
  if (commit_st.ok() && resolved->type == InodeType::kDirectory) {
    BumpDirEpoch(resolved->id);
  }
  return commit_st;
}

StatusOr<std::vector<DirEntry>> CfsEngine::ReadDir(const std::string& path) {
  auto dir_id = ResolveDirId(path);
  if (!dir_id.ok()) return dir_id.status();
  TafDbShard* shard = fs_->tafdb()->ShardFor(*dir_id);
  std::vector<DirEntry> out;
  std::string after;
  constexpr size_t kPage = 1024;
  for (;;) {
    auto page = fs_->net()->Call(self_, shard->ServiceNetId(), [&] {
      return shard->ScanDir(*dir_id, after, kPage);
    });
    if (!page.ok()) return page.status();
    for (const auto& rec : *page) {
      out.push_back(DirEntry{rec.key.kstr, rec.id, rec.type});
    }
    if (page->size() < kPage) break;
    after = page->back().key.kstr;
  }
  return out;
}

// ---------------------------------------------------------------------------
// rename / link

Status CfsEngine::Rename(const std::string& from, const std::string& to) {
  auto src = Resolve(from);
  if (!src.ok()) return src.status();
  auto dst_parent = ResolveParent(to);
  if (!dst_parent.ok()) return dst_parent.status();
  if (from == to) return Status::Ok();

  bool intra_dir = src->parent == dst_parent->parent;
  bool is_file = src->type != InodeType::kDirectory;

  if (fs_->options().primitives && intra_dir && is_file) {
    // Fast path (§4.3, Figure 8c): one single-shard primitive; the client's
    // cached lookups identified the case.
    uint64_t ts = NowTs();
    // Know the replaced file's id for the post-commit attribute cleanup.
    auto dst_entry = ReadEntry(dst_parent->parent, dst_parent->name);
    InodeId replaced =
        dst_entry.ok() && dst_entry->type != InodeType::kDirectory
            ? dst_entry->id
            : kInvalidInode;

    InodeRecord moved = InodeRecord::MakeIdRecord(
        dst_parent->parent, dst_parent->name, src->id, src->type);
    DeleteSpec del_a;
    del_a.key = InodeKey::IdRecord(src->parent, src->name);
    del_a.forbid_directory = true;
    del_a.hint_id = src->id;
    DeleteSpec del_b;
    del_b.key = InodeKey::IdRecord(dst_parent->parent, dst_parent->name);
    del_b.ifexist = true;
    del_b.forbid_directory = true;
    // Guard the replacement by the id observed at lookup: if the
    // destination changed concurrently, the delete is skipped, the insert
    // collides, and the rename fails cleanly instead of unref'ing a
    // still-linked inode.
    del_b.hint_id = replaced;
    UpdateSpec upd;
    upd.key = InodeKey::AttrRecord(dst_parent->parent);
    upd.children_delta_auto = true;
    upd.lww.mtime = ts;
    upd.lww.ts = ts;
    auto op = PrimitiveOp::InsertAndDeleteWithUpdate(moved, {del_a, del_b},
                                                     upd, {});
    PrimitiveResult result = ExecOnShard(src->parent, op);
    CacheErase(from);
    CacheErase(to);
    if (!result.status.ok()) return result.status;
    // Intra-directory: one parent, one epoch bump. Other engines' cached
    // entries for `from`/`to` go stale on their next epoch refresh.
    BumpDirEpoch(src->parent);
    if (replaced != kInvalidInode && result.deleted == 2) {
      DeleteFileAttrAsync(replaced);
    }
    return Status::Ok();
  }

  // Normal path: one RPC to the Renamer coordinator, which locks,
  // validates (orphan loops), and drives 2PC.
  RenameRequest req;
  req.src_parent = src->parent;
  req.src_name = src->name;
  req.dst_parent = dst_parent->parent;
  req.dst_name = dst_parent->name;
  req.src_path = from;
  req.dst_path = to;
  Renamer* renamer = fs_->renamer();
  Status st = fs_->net()->Call(self_, renamer->CoordinatorNetId(),
                               [&] { return renamer->Rename(req); });
  // The Renamer's post-commit broadcast already invalidated every engine
  // (including this one, subtree-wide for directory moves); these local
  // erases only cover the failure paths where no broadcast was sent.
  CacheErase(from);
  CacheErase(to);
  return st;
}

Status CfsEngine::Link(const std::string& existing,
                       const std::string& link_path) {
  auto src = Resolve(existing);
  if (!src.ok()) return src.status();
  if (src->type == InodeType::kDirectory) {
    return Status::PermissionDenied("hard link to directory");
  }
  auto parent = ResolveParent(link_path);
  if (!parent.ok()) return parent.status();
  // Pre-mutation view capture; see CreateCommon.
  uint64_t parent_epoch = cache_.ObservedDirEpoch(parent->parent);
  uint64_t ts = NowTs();

  // Bump the link count on the attribute first (orphan-tolerant order),
  // then insert the new dentry with parent update.
  UpdateSpec bump_links;
  bump_links.key = InodeKey::AttrRecord(src->id);
  bump_links.links_delta = 1;
  bump_links.lww.ctime = ts;
  bump_links.lww.ts = ts;
  if (fs_->options().tiered_attrs) {
    FileStoreNode* node = fs_->filestore()->NodeFor(src->id);
    Status st = fs_->net()->Call(self_, node->ServiceNetId(), [&] {
      return node->SetAttr(src->id, bump_links);
    });
    if (!st.ok()) return st;
  } else {
    PrimitiveOp op;
    op.updates.push_back(bump_links);
    Status st = ExecOnShard(src->id, op).status;
    if (!st.ok()) return st;
  }

  InodeRecord entry = InodeRecord::MakeIdRecord(parent->parent, parent->name,
                                                src->id, src->type);
  UpdateSpec bump;
  bump.key = InodeKey::AttrRecord(parent->parent);
  bump.children_delta = 1;
  bump.lww.mtime = ts;
  bump.lww.ts = ts;
  auto op =
      PrimitiveOp::InsertWithUpdate(entry, ParentIsDir(parent->parent), bump);
  PrimitiveResult result = ExecOnShard(parent->parent, op);
  if (!result.status.ok()) {
    // Roll the link count back (compensating delta; commutative).
    UpdateSpec unbump = bump_links;
    unbump.links_delta = -1;
    unbump.lww = LwwAssign{};
    if (fs_->options().tiered_attrs) {
      FileStoreNode* node = fs_->filestore()->NodeFor(src->id);
      (void)fs_->net()->Call(self_, node->ServiceNetId(), [&] {
        return node->SetAttr(src->id, unbump);
      });
    } else {
      PrimitiveOp rollback;
      rollback.updates.push_back(unbump);
      (void)ExecOnShard(src->id, rollback);
    }
    return result.status;
  }
  CachePut(link_path, parent->parent, src->id, src->type, parent_epoch);
  return Status::Ok();
}

StatusOr<std::string> CfsEngine::ReadLink(const std::string& path) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  if (resolved->type != InodeType::kSymlink) {
    return Status::InvalidArgument("not a symlink: " + path);
  }
  auto attr = FetchAttr(resolved->id, resolved->type);
  if (!attr.ok()) return attr.status();
  return attr->symlink_target;
}

// ---------------------------------------------------------------------------
// data plane

Status CfsEngine::Write(const std::string& path, uint64_t offset,
                        const std::string& data) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  if (resolved->type == InodeType::kDirectory) {
    return Status::IsADirectory(path);
  }
  uint64_t ts = NowTs();
  size_t block_size = fs_->filestore()->block_size();
  FileStoreNode* node = fs_->filestore()->NodeFor(resolved->id);
  Status st = fs_->net()->Call(self_, node->ServiceNetId(), [&] {
    return node->WriteBlock(resolved->id, offset / block_size, data, ts);
  });
  if (!st.ok()) return st;
  if (!fs_->options().tiered_attrs) {
    // Attribute record lives in TafDB: merge the size/mtime there too.
    UpdateSpec update;
    update.key = InodeKey::AttrRecord(resolved->id);
    update.size_delta = static_cast<int64_t>(data.size());
    update.lww.mtime = ts;
    update.lww.ts = ts;
    PrimitiveOp op;
    op.updates.push_back(update);
    return ExecOnShard(resolved->id, op).status;
  }
  return Status::Ok();
}

StatusOr<std::string> CfsEngine::Read(const std::string& path, uint64_t offset,
                                      size_t length) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  if (resolved->type == InodeType::kDirectory) {
    return Status::IsADirectory(path);
  }
  size_t block_size = fs_->filestore()->block_size();
  FileStoreNode* node = fs_->filestore()->NodeFor(resolved->id);
  auto block = fs_->net()->Call(self_, node->ServiceNetId(), [&] {
    return node->ReadBlock(resolved->id, offset / block_size);
  });
  if (!block.ok()) return block.status();
  size_t start = offset % block_size;
  if (start >= block->size()) return std::string();
  return block->substr(start, length);
}

}  // namespace cfs
