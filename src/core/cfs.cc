#include "src/core/cfs.h"

#include "src/common/logging.h"
#include "src/core/gc.h"

namespace cfs {

CfsOptions CfsBaseOptions() {
  CfsOptions options;
  options.tiered_attrs = false;
  options.primitives = false;
  options.client_resolving = false;
  return options;
}

CfsOptions CfsNewOrgOptions() {
  CfsOptions options = CfsBaseOptions();
  options.tiered_attrs = true;
  return options;
}

CfsOptions CfsPrimitivesOptions() {
  CfsOptions options = CfsNewOrgOptions();
  options.primitives = true;
  return options;
}

CfsOptions CfsFullOptions() {
  CfsOptions options = CfsPrimitivesOptions();
  options.client_resolving = true;
  return options;
}

namespace {

// Thin client used in proxy mode: every operation is one extra RPC hop to a
// metadata proxy node, where a server-side engine resolves and executes it
// (the architecture CFS's client-side metadata resolving removes, §3.1).
class ProxyClientStub : public MetadataClient {
 public:
  ProxyClientStub(Cfs* fs, NodeId client_node, size_t proxy_index)
      : fs_(fs), self_(client_node), proxy_index_(proxy_index) {}

  Status Mkdir(const std::string& path, uint32_t mode) override {
    return Forward([&](CfsEngine* e) { return e->Mkdir(path, mode); });
  }
  Status Rmdir(const std::string& path) override {
    return Forward([&](CfsEngine* e) { return e->Rmdir(path); });
  }
  Status Create(const std::string& path, uint32_t mode) override {
    return Forward([&](CfsEngine* e) { return e->Create(path, mode); });
  }
  Status Unlink(const std::string& path) override {
    return Forward([&](CfsEngine* e) { return e->Unlink(path); });
  }
  StatusOr<FileInfo> Lookup(const std::string& path) override {
    return ForwardOr<FileInfo>([&](CfsEngine* e) { return e->Lookup(path); });
  }
  StatusOr<FileInfo> GetAttr(const std::string& path) override {
    return ForwardOr<FileInfo>([&](CfsEngine* e) { return e->GetAttr(path); });
  }
  Status SetAttr(const std::string& path, const SetAttrSpec& spec) override {
    return Forward([&](CfsEngine* e) { return e->SetAttr(path, spec); });
  }
  StatusOr<std::vector<DirEntry>> ReadDir(const std::string& path) override {
    return ForwardOr<std::vector<DirEntry>>(
        [&](CfsEngine* e) { return e->ReadDir(path); });
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return Forward([&](CfsEngine* e) { return e->Rename(from, to); });
  }
  Status Symlink(const std::string& target,
                 const std::string& link_path) override {
    return Forward([&](CfsEngine* e) { return e->Symlink(target, link_path); });
  }
  StatusOr<std::string> ReadLink(const std::string& path) override {
    return ForwardOr<std::string>(
        [&](CfsEngine* e) { return e->ReadLink(path); });
  }
  Status Link(const std::string& existing,
              const std::string& link_path) override {
    return Forward([&](CfsEngine* e) { return e->Link(existing, link_path); });
  }
  Status Write(const std::string& path, uint64_t offset,
               const std::string& data) override {
    return Forward([&](CfsEngine* e) { return e->Write(path, offset, data); });
  }
  StatusOr<std::string> Read(const std::string& path, uint64_t offset,
                             size_t length) override {
    return ForwardOr<std::string>(
        [&](CfsEngine* e) { return e->Read(path, offset, length); });
  }

 private:
  template <typename Fn>
  Status Forward(Fn&& fn) {
    CfsEngine* engine = fs_->proxy_engine(proxy_index_);
    return fs_->net()->Call(self_, fs_->proxy_net_id(proxy_index_),
                            [&] { return fn(engine); });
  }
  template <typename T, typename Fn>
  StatusOr<T> ForwardOr(Fn&& fn) {
    CfsEngine* engine = fs_->proxy_engine(proxy_index_);
    return fs_->net()->Call(self_, fs_->proxy_net_id(proxy_index_),
                            [&]() -> StatusOr<T> { return fn(engine); });
  }

  Cfs* fs_;
  NodeId self_;
  size_t proxy_index_;
};

}  // namespace

Cfs::Cfs(CfsOptions options) : options_(std::move(options)), net_(options_.net) {
  std::vector<uint32_t> servers;
  for (uint32_t s = 0; s < options_.num_servers; s++) {
    servers.push_back(s);
  }
  tafdb_ = std::make_unique<TafDbCluster>(&net_, servers, options_.tafdb);
  filestore_ =
      std::make_unique<FileStoreCluster>(&net_, servers, options_.filestore);
  RenamerOptions renamer_options = options_.renamer;
  renamer_options.tiered_attrs = options_.tiered_attrs;
  renamer_options.use_shard_row_locks = !options_.primitives;
  std::vector<uint32_t> renamer_servers;
  for (size_t i = 0; i < renamer_options.replicas; i++) {
    renamer_servers.push_back(servers[i % servers.size()]);
  }
  renamer_ = std::make_unique<Renamer>(
      &net_, renamer_servers, tafdb_.get(),
      options_.tiered_attrs ? filestore_.get() : nullptr, renamer_options);
  renamer_->set_invalidation_broadcast(
      [this](const CacheInvalidation& inv) { BroadcastInvalidation(inv); });
  gc_ = std::make_unique<GarbageCollector>(this);

  if (!options_.client_resolving) {
    for (size_t i = 0; i < options_.num_proxies; i++) {
      NodeId node = net_.AddNode("proxy-" + std::to_string(i),
                                 static_cast<uint32_t>(i % servers.size()));
      proxy_nodes_.push_back(node);
      proxy_engines_.push_back(std::make_unique<CfsEngine>(this, node));
    }
  }
}

Cfs::~Cfs() { Stop(); }

Status Cfs::Start() {
  if (started_) return Status::Ok();
  CFS_RETURN_IF_ERROR(tafdb_->Start());
  CFS_RETURN_IF_ERROR(filestore_->Start());
  CFS_RETURN_IF_ERROR(renamer_->Start());
  if (options_.start_gc) {
    gc_->Start();
  }
  started_ = true;
  CFS_LOG(kInfo) << "cfs started (tiered=" << options_.tiered_attrs
                 << " primitives=" << options_.primitives
                 << " client_resolving=" << options_.client_resolving << ")";
  return Status::Ok();
}

void Cfs::Stop() {
  if (!started_) return;
  started_ = false;
  gc_->Stop();
  renamer_->Stop();
  filestore_->Stop();
  tafdb_->Stop();
}

void Cfs::RegisterEngine(CfsEngine* engine) {
  MutexLock lock(engines_mu_);
  engines_.push_back(engine);
}

void Cfs::UnregisterEngine(CfsEngine* engine) {
  MutexLock lock(engines_mu_);
  // A broadcast in flight fans out over a snapshot taken under this mutex
  // that may include `engine`; wait for every such broadcast to finish
  // before letting the engine's destructor proceed.
  while (active_broadcasts_ > 0) {
    engines_cv_.Wait(engines_mu_);
  }
  for (auto it = engines_.begin(); it != engines_.end(); ++it) {
    if (*it == engine) {
      engines_.erase(it);
      return;
    }
  }
}

void Cfs::BroadcastInvalidation(const CacheInvalidation& inv) {
  // Snapshot the registry, then fan out with engines_mu_ *released* —
  // cfs.engines is a never-across-rpc class and the multicast is a network
  // round trip. The snapshot's pointers stay alive because a concurrent
  // ~CfsEngine blocks in UnregisterEngine until active_broadcasts_ drains
  // back to zero. An engine registered after the snapshot misses this
  // invalidation, which is safe: it was just constructed and its cache is
  // empty.
  std::vector<CfsEngine*> snapshot;
  {
    MutexLock lock(engines_mu_);
    if (engines_.empty()) return;
    snapshot = engines_;
    active_broadcasts_++;
  }
  std::vector<NodeId> dests;
  dests.reserve(snapshot.size());
  for (CfsEngine* engine : snapshot) dests.push_back(engine->self());
  net_.Multicast(renamer_->CoordinatorNetId(), dests, [&](NodeId dest) {
    for (CfsEngine* engine : snapshot) {
      if (engine->self() == dest) {
        engine->ApplyInvalidation(inv);
        break;
      }
    }
  });
  {
    MutexLock lock(engines_mu_);
    active_broadcasts_--;
    if (active_broadcasts_ == 0) engines_cv_.NotifyAll();
  }
}

std::unique_ptr<MetadataClient> Cfs::NewClient() {
  // Clients run on dedicated client servers (the paper separates the 10
  // client machines from the 40 DFS servers); model them as servers beyond
  // the DFS range so every client->service call is cross-node.
  uint32_t client_server =
      static_cast<uint32_t>(options_.num_servers) +
      (next_client_server_.fetch_add(1) % 8);
  NodeId node = net_.AddNode("client", client_server);
  if (options_.client_resolving) {
    return std::make_unique<CfsEngine>(this, node);
  }
  size_t proxy = next_proxy_.fetch_add(1) % proxy_engines_.size();
  return std::make_unique<ProxyClientStub>(this, node, proxy);
}

}  // namespace cfs
