// Cfs — the assembled system (paper Figure 5): TafDB (namespace store),
// FileStore (file data + attributes), Renamer, the timestamp service, the
// garbage collector, and client construction.
//
// CfsOptions toggles the paper's three optimizations independently so the
// Fig 13 ablation can be reproduced with the same codebase:
//   tiered_attrs      — "+new-org":    file attributes offloaded to
//                       FileStore via hash partitioning (§4.1); when off,
//                       they are TafDB records on the shard of their own id.
//   primitives        — "+primitives": metadata mutations use single-shard
//                       atomic primitives (§4.2); when off, they run as
//                       lock-based read-modify-write transactions with 2PC
//                       for cross-shard write sets (the conventional path).
//   client_resolving  — "+no-proxy":   clients resolve and route metadata
//                       requests themselves (§3.1); when off, requests take
//                       an extra hop through a metadata proxy node.

#ifndef CFS_CORE_CFS_H_
#define CFS_CORE_CFS_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/core/dentry_cache.h"
#include "src/core/metadata_client.h"
#include "src/filestore/filestore.h"
#include "src/net/simnet.h"
#include "src/renamer/renamer.h"
#include "src/tafdb/tafdb.h"
#include "src/txn/timestamp_oracle.h"
#include "src/txn/two_phase_commit.h"

namespace cfs {

class CfsEngine;
class GarbageCollector;

struct CfsOptions {
  bool tiered_attrs = true;
  bool primitives = true;
  bool client_resolving = true;

  size_t num_servers = 8;   // physical servers (metadata+data co-deployed)
  size_t num_proxies = 4;   // only used when !client_resolving

  // Client dentry cache (per engine; see src/core/dentry_cache.h). The
  // capacity bounds positive+negative entries; 0 disables caching. The
  // negative TTL bounds how long a cached ENOENT can mask a concurrent
  // create (<= 0 disables negative caching); the epoch TTL bounds how long
  // a directory's epoch view is trusted before a cache hit forces one
  // revalidation RPC (<= 0 revalidates every hit). TTLs are measured on a
  // sim-aware clock: virtual time under LatencyMode::kVirtual, wall time
  // otherwise (DESIGN.md §11).
  size_t dentry_cache_capacity = 65536;
  size_t dentry_cache_shards = 16;
  int64_t dentry_negative_ttl_ms = 1000;
  int64_t dentry_epoch_ttl_ms = 2000;

  TafDbOptions tafdb;
  FileStoreOptions filestore;
  RenamerOptions renamer;
  NetOptions net;

  // Garbage collection cadence and orphan grace period. The grace period
  // must comfortably exceed the longest in-flight window between a
  // creation's two tier writes. Virtual-time benches set start_gc=false:
  // the GC thread ticks on the wall clock, outside the simulation's
  // virtual time (DESIGN.md §11).
  int64_t gc_interval_ms = 200;
  int64_t gc_grace_ms = 1000;
  bool start_gc = true;
};

// Helper producing the four Fig 13 configurations.
CfsOptions CfsBaseOptions();     // CFS-base
CfsOptions CfsNewOrgOptions();   // +new-org
CfsOptions CfsPrimitivesOptions();  // +primitives
CfsOptions CfsFullOptions();     // +no-proxy (full CFS)

class Cfs {
 public:
  explicit Cfs(CfsOptions options);
  ~Cfs();

  Cfs(const Cfs&) = delete;
  Cfs& operator=(const Cfs&) = delete;

  Status Start();
  void Stop();

  // Creates a client. With client_resolving, the returned client talks to
  // the services directly; otherwise it is a thin stub that forwards every
  // operation through a metadata proxy node.
  std::unique_ptr<MetadataClient> NewClient();

  SimNet* net() { return &net_; }
  TafDbCluster* tafdb() { return tafdb_.get(); }
  FileStoreCluster* filestore() { return filestore_.get(); }
  Renamer* renamer() { return renamer_.get(); }
  GarbageCollector* gc() { return gc_.get(); }
  const CfsOptions& options() const { return options_; }

  // Internal: engines living on proxy nodes (round-robin assigned).
  CfsEngine* proxy_engine(size_t i) { return proxy_engines_[i].get(); }
  size_t num_proxies() const { return proxy_engines_.size(); }
  NodeId proxy_net_id(size_t i) const { return proxy_nodes_[i]; }

  // Engine registry for cache-invalidation broadcast. Engines register in
  // their constructor and unregister in their destructor, so every engine
  // must be destroyed before its Cfs (all current call sites already do).
  void RegisterEngine(CfsEngine* engine);
  // Blocks until no broadcast is using the snapshot that may contain
  // `engine`, then removes it — so a destroyed engine is never touched.
  void UnregisterEngine(CfsEngine* engine);
  // Delivers `inv` to every registered engine as one SimNet multicast from
  // the Renamer coordinator (synchronous, on the renaming caller's
  // thread). The fan-out runs on a snapshot with engines_mu_ *released*
  // (pruned critical-section scope: no lock across RPCs); engines are kept
  // alive by an active-broadcast refcount that UnregisterEngine waits on.
  void BroadcastInvalidation(const CacheInvalidation& inv);

 private:
  // Topology below is assembled in the constructor and Start() (single
  // caller, before any concurrent use) and torn down by Stop().
  // tsa-coverage: allow(immutable after construction)
  CfsOptions options_;
  SimNet net_;  // tsa-coverage: allow(internally synchronized)
  // tsa-coverage: allow(start/stop lifecycle only)
  std::unique_ptr<TafDbCluster> tafdb_;
  // tsa-coverage: allow(start/stop lifecycle only)
  std::unique_ptr<FileStoreCluster> filestore_;
  // tsa-coverage: allow(start/stop lifecycle only)
  std::unique_ptr<Renamer> renamer_;
  // tsa-coverage: allow(start/stop lifecycle only)
  std::unique_ptr<GarbageCollector> gc_;
  // Guards the registry only; never held across the invalidation multicast
  // (never-across-rpc policy). Kept below simnet.* and dentry.* in rank for
  // the registry operations that nest under resolving paths.
  Mutex engines_mu_{"cfs.engines", 20};
  std::vector<CfsEngine*> engines_ GUARDED_BY(engines_mu_);
  // Broadcasts in flight over a snapshot of engines_. UnregisterEngine
  // waits for this to drain before letting an engine die.
  int active_broadcasts_ GUARDED_BY(engines_mu_) = 0;
  CondVar engines_cv_;
  // Filled by the constructor; const thereafter (RouteEngine only reads).
  // tsa-coverage: allow(immutable after construction)
  std::vector<NodeId> proxy_nodes_;
  // tsa-coverage: allow(immutable after construction)
  std::vector<std::unique_ptr<CfsEngine>> proxy_engines_;
  std::atomic<size_t> next_proxy_{0};
  std::atomic<uint32_t> next_client_server_{0};
  // Flipped only by Start()/Stop() (single lifecycle caller).
  bool started_ = false;  // tsa-coverage: allow(start/stop lifecycle only)
};

// The metadata engine implementing every operation for all CfsOptions
// variants. Instantiated per client (client-side metadata resolving) or per
// proxy node (proxy mode).
class CfsEngine : public MetadataClient {
 public:
  CfsEngine(Cfs* fs, NodeId self);
  ~CfsEngine() override;

  Status Mkdir(const std::string& path, uint32_t mode) override;
  Status Rmdir(const std::string& path) override;
  Status Create(const std::string& path, uint32_t mode) override;
  Status Unlink(const std::string& path) override;
  StatusOr<FileInfo> Lookup(const std::string& path) override;
  StatusOr<FileInfo> GetAttr(const std::string& path) override;
  Status SetAttr(const std::string& path, const SetAttrSpec& spec) override;
  StatusOr<std::vector<DirEntry>> ReadDir(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Symlink(const std::string& target,
                 const std::string& link_path) override;
  StatusOr<std::string> ReadLink(const std::string& path) override;
  Status Link(const std::string& existing,
              const std::string& link_path) override;
  Status Write(const std::string& path, uint64_t offset,
               const std::string& data) override;
  StatusOr<std::string> Read(const std::string& path, uint64_t offset,
                             size_t length) override;

  NodeId self() const { return self_; }
  // Drops `path` and every cached descendant (a directory rename moves the
  // whole subtree, so exact-path invalidation is not enough).
  void InvalidateCache(const std::string& path);
  // Applies a Renamer post-commit broadcast: drops the moved paths (subtrees
  // for directory moves) and adopts both parents' freshly bumped epochs.
  void ApplyInvalidation(const CacheInvalidation& inv);
  const DentryCache& dentry_cache() const { return cache_; }

 private:
  struct Resolved {
    InodeId parent = kInvalidInode;
    std::string name;       // empty for "/"
    InodeId id = kInvalidInode;
    InodeType type = InodeType::kNone;
  };

  // Resolves the parent directory of `path` (all but the last component).
  StatusOr<Resolved> ResolveParent(const std::string& path);
  // Resolves the full path (parent + final dentry read).
  StatusOr<Resolved> Resolve(const std::string& path,
                             bool bypass_final_cache = false);
  StatusOr<InodeId> ResolveDirId(const std::string& path);

  // Runs a lock acquire/release RPC under a kLockWait trace span (the
  // paper's "lock phase": the RPC round trips plus in-queue blocking).
  Status LockPhaseCall(NodeId service, const std::function<Status()>& fn);

  // One dentry read from TafDB (1 RPC). The parent's mutation epoch is
  // piggybacked on the same round and written to `*observed_epoch` (when
  // non-null) so callers can tag cache fills with the epoch observed
  // alongside the data — never a view refreshed by a concurrent
  // invalidation broadcast after the read.
  StatusOr<InodeRecord> ReadEntry(InodeId parent, const std::string& name,
                                  uint64_t* observed_epoch = nullptr);
  StatusOr<InodeRecord> ReadTafAttr(InodeId id);
  PrimitiveResult ExecOnShard(InodeId kid, const PrimitiveOp& op);

  // Full attribute record fetch honoring the tiering config.
  StatusOr<InodeRecord> FetchAttr(InodeId id, InodeType type);

  // Lock-based read-modify-write commit used when !primitives: stages the
  // per-shard write sets and commits (2PC if multi-shard) while the caller
  // holds the relevant row locks.
  Status CommitWriteSets(std::map<size_t, PrimitiveOp> ops, TxnId txn);

  // Shared bodies for create/symlink and attr-record placement.
  Status CreateCommon(const std::string& path, uint32_t mode, InodeType type,
                      const std::string& symlink_target);
  Status PlaceFileAttr(const InodeRecord& attr);
  void DeleteFileAttrAsync(InodeId id);

  uint64_t NowTs();
  InodeId AllocId();
  TxnId NextTxn();

  // Dentry cache (client-side metadata resolving; src/core/dentry_cache.h).
  // Consults the cache under a kResolveCached trace span; a
  // kNeedsValidation outcome triggers one DirEpoch RPC and a retry.
  DentryCache::LookupResult CacheLookup(const std::string& path,
                                        InodeId parent);
  // Fills tag the entry with `epoch`, the parent's epoch observed in the
  // same round as the cached data (ReadEntry's piggyback, or the view
  // captured before issuing an own mutation — older is conservative,
  // newer would mask staleness).
  void CachePut(const std::string& path, InodeId parent, InodeId id,
                InodeType type, uint64_t epoch);
  void CacheNegative(const std::string& path, InodeId parent,
                     uint64_t epoch);
  void CacheErase(const std::string& path);
  // Bumps `dir`'s mutation epoch on its TafDB shard after a local mutation
  // and adopts the new value (piggybacked on the mutation round — no extra
  // RPC is charged).
  void BumpDirEpoch(InodeId dir);

  Cfs* fs_;
  NodeId self_;
  TimestampCache ts_cache_;
  TimestampCache id_cache_;
  DentryCache cache_;
  std::atomic<TxnId> txn_seq_{1};
};

}  // namespace cfs

#endif  // CFS_CORE_CFS_H_
