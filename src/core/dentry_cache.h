// DentryCache — the client-side dentry cache behind CFS's metadata
// resolving (paper §3.1), replacing the placeholder per-engine map.
//
// Design (see DESIGN.md "Client cache & coherence"):
//   - Sharded bounded LRU: entries hash by full path onto N shards, each
//     with its own mutex and LRU list, so concurrent resolves on one engine
//     never serialize on a process-wide lock.
//   - Positive AND negative entries: a cached ENOENT short-circuits repeat
//     lookups of missing names; negative entries expire after a TTL, which
//     bounds how long a create by another client can stay invisible.
//   - Per-entry epoch tags: every entry records the parent directory's
//     mutation epoch (a counter kept on the directory's TafDB shard,
//     TafDbShard::DirEpoch) observed in the same round as the data it
//     caches — not the view at fill time, which a concurrent invalidation
//     broadcast could have refreshed past the data. A lookup is a hit
//     only if the tag matches the engine's current view of that epoch — a
//     directory mutation anywhere in the cluster bumps the epoch, so stale
//     dentries are detected on first touch after the view refreshes.
//   - Epoch views age: a view older than epoch_ttl_ms yields
//     kNeedsValidation, telling the engine to refresh the epoch with one
//     cheap RPC before trusting the hit. The TTL is therefore the staleness
//     bound for mutations that are not broadcast (see below).
//   - Eager prefix invalidation: directory renames drop whole cached
//     subtrees via ErasePrefix (driven by the Renamer's cluster-wide
//     broadcast), so deep paths under a moved directory never serve the old
//     location.
//
// Thread safety: all methods are safe for concurrent use. Lock order is
// epoch-view shard -> entry shard; no method holds two entry-shard locks.

#ifndef CFS_CORE_DENTRY_CACHE_H_
#define CFS_CORE_DENTRY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/thread_annotations.h"
#include "src/tafdb/schema.h"

namespace cfs {

class DentryCache {
 public:
  struct Options {
    // Total entry budget across all shards (positive + negative). 0
    // disables caching entirely: every Lookup is a miss, every Put a no-op.
    size_t capacity = 65536;
    // Shard count (rounded up to a power of two).
    size_t shards = 16;
    // How long a cached ENOENT may be served. <= 0 disables negative
    // caching entirely.
    int64_t negative_ttl_ms = 1000;
    // How long an observed directory epoch is trusted before a hit demands
    // revalidation. <= 0 means every hit revalidates.
    int64_t epoch_ttl_ms = 2000;
  };

  enum class Outcome : uint8_t {
    kMiss,             // nothing cached (or the entry was stale and dropped)
    kHit,              // valid positive entry
    kNegativeHit,      // valid cached ENOENT
    kNeedsValidation,  // entry present but the parent's epoch view is too
                       // old to trust; refresh via ObserveDirEpoch, retry
  };

  struct LookupResult {
    Outcome outcome = Outcome::kMiss;
    InodeId id = kInvalidInode;
    InodeType type = InodeType::kNone;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t negative_hits = 0;
    uint64_t stale_drops = 0;   // epoch/parent mismatch or expired negative
    uint64_t evictions = 0;     // LRU capacity evictions
    uint64_t prefix_drops = 0;  // entries removed by ErasePrefix
    uint64_t revalidations = 0; // epoch revalidation rounds triggered
  };

  explicit DentryCache(Options options, const Clock* clock = RealClock::Get());

  // Consults the cache for `path`, whose final component lives in directory
  // `parent`. Never blocks on RPCs; kNeedsValidation asks the caller to
  // fetch the directory epoch and retry (see LookupValidated, which does
  // exactly that). Records one counter per call.
  LookupResult Lookup(const std::string& path, InodeId parent);

  // Lookup plus the revalidation round: on kNeedsValidation, invokes
  // `refresh_epoch` (expected to fetch the parent's current epoch with one
  // cheap RPC; returns false if the shard is unreachable), adopts the
  // refreshed view, and retries with that view trusted as fresh — even
  // when epoch_ttl_ms <= 0 (revalidate-every-hit), the post-refresh retry
  // can serve the hit. Exactly one terminal outcome (hit / negative hit /
  // miss) is recorded per call, plus the revalidate event when a refresh
  // happened; a failed refresh is a miss.
  LookupResult LookupValidated(
      const std::string& path, InodeId parent,
      const std::function<bool(uint64_t*)>& refresh_epoch);

  // Fills a positive / negative entry tagged with `epoch` — the parent
  // directory's mutation epoch observed IN THE SAME ROUND as the data
  // being cached (e.g. piggybacked on the dentry-read RPC), never the
  // current view: a view refreshed by a concurrent invalidation broadcast
  // between the read and the fill would tag pre-mutation data as fresh.
  // An epoch older than the view only makes the entry conservatively
  // stale. Fills from callers that never observed the epoch pass 0 and
  // are treated as stale on first lookup.
  void PutPositive(const std::string& path, InodeId parent, InodeId id,
                   InodeType type, uint64_t epoch);
  void PutNegative(const std::string& path, InodeId parent, uint64_t epoch);

  // Drops the exact path.
  void Erase(const std::string& path);
  // Drops the exact path and every cached descendant ("path/..."). O(cached
  // entries) — acceptable because directory renames are rare (paper §4.3).
  void ErasePrefix(const std::string& path);

  // Records a fresh observation of `dir`'s mutation epoch (from a read
  // piggyback, an own mutation, or an invalidation broadcast). Regressing
  // epochs are ignored except the 0 reset after a shard restart, which
  // conservatively invalidates.
  void ObserveDirEpoch(InodeId dir, uint64_t epoch);
  // The engine's current view of `dir`'s epoch (0 if never observed).
  uint64_t ObservedDirEpoch(InodeId dir) const;

  void Clear();
  size_t size() const;
  size_t capacity() const { return options_.capacity; }
  Stats stats() const;

 private:
  struct Entry {
    InodeId parent = kInvalidInode;
    InodeId id = kInvalidInode;
    InodeType type = InodeType::kNone;
    uint64_t epoch = 0;            // parent epoch tag at fill time
    bool negative = false;
    int64_t negative_expire_us = 0;
  };
  // LRU list front = most recent; the index maps path -> list node.
  using LruList = std::list<std::pair<std::string, Entry>>;
  struct EntryShard {
    // All entry shards share one lock class; no method holds two at once.
    mutable Mutex mu{"dentry.entry", 41};
    LruList lru GUARDED_BY(mu);
    std::unordered_map<std::string, LruList::iterator> index GUARDED_BY(mu);
  };
  struct EpochView {
    uint64_t epoch = 0;
    int64_t observed_us = 0;
  };
  struct EpochShard {
    // Ordered before dentry.entry (see the lock-order note above).
    mutable Mutex mu{"dentry.epoch", 40};
    std::unordered_map<InodeId, EpochView> views GUARDED_BY(mu);
  };

  EntryShard& ShardFor(const std::string& path);
  EpochShard& EpochShardFor(InodeId dir) const;
  // Reads the view under the epoch-shard lock; ok=false when unobserved.
  bool ViewOf(InodeId dir, EpochView* out) const;
  void PutEntry(const std::string& path, Entry entry);
  // One cache consultation, no counters. `view_is_fresh` marks a view
  // refreshed within the same logical lookup (skips the TTL check; cannot
  // return kNeedsValidation). `*stale` is set when a stale entry was
  // dropped.
  LookupResult LookupRound(const std::string& path, InodeId parent,
                           bool view_is_fresh, bool* stale);
  void RecordOutcome(Outcome outcome, bool stale);

  Options options_;
  const Clock* clock_;
  size_t shard_mask_ = 0;
  size_t per_shard_capacity_ = 0;
  std::vector<EntryShard> entry_shards_;
  mutable std::vector<EpochShard> epoch_shards_;

  // Per-instance stats are atomics so recording stays outside the shard
  // mutexes; global registry counters aggregate the same events across all
  // engines (dentry_cache.*).
  struct AtomicStats {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> negative_hits{0};
    std::atomic<uint64_t> stale_drops{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> prefix_drops{0};
    std::atomic<uint64_t> revalidations{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace cfs

#endif  // CFS_CORE_DENTRY_CACHE_H_
