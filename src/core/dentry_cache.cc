#include "src/core/dentry_cache.h"

#include <functional>

#include "src/common/metrics.h"
#include "src/common/race_detector.h"

namespace cfs {
namespace {

// Cluster-wide cache counters (all engines fold in). Pointers are stable
// for the process lifetime; resolve once.
struct GlobalCounters {
  Counter* hit;
  Counter* miss;
  Counter* negative_hit;
  Counter* stale;
  Counter* evict;
  Counter* prefix_drop;
  Counter* revalidate;
};

const GlobalCounters& Counters() {
  static const GlobalCounters counters = [] {
    MetricsRegistry& registry = MetricsRegistry::Global();
    return GlobalCounters{
        registry.GetCounter("dentry_cache.hit"),
        registry.GetCounter("dentry_cache.miss"),
        registry.GetCounter("dentry_cache.negative_hit"),
        registry.GetCounter("dentry_cache.stale"),
        registry.GetCounter("dentry_cache.evict"),
        registry.GetCounter("dentry_cache.prefix_drop"),
        registry.GetCounter("dentry_cache.revalidate"),
    };
  }();
  return counters;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

DentryCache::DentryCache(Options options, const Clock* clock)
    : options_(options), clock_(clock) {
  size_t shards = RoundUpPow2(options_.shards == 0 ? 1 : options_.shards);
  // Never spread the budget so thin that shards round down to nothing.
  while (shards > 1 && options_.capacity > 0 && options_.capacity / shards == 0) {
    shards >>= 1;
  }
  shard_mask_ = shards - 1;
  per_shard_capacity_ = options_.capacity / shards;
  entry_shards_ = std::vector<EntryShard>(shards);
  epoch_shards_ = std::vector<EpochShard>(shards);
}

DentryCache::EntryShard& DentryCache::ShardFor(const std::string& path) {
  return entry_shards_[std::hash<std::string>{}(path) & shard_mask_];
}

DentryCache::EpochShard& DentryCache::EpochShardFor(InodeId dir) const {
  // Mix: sequential inode ids must not all land on one shard.
  uint64_t h = dir * 0x9e3779b97f4a7c15ULL;
  return epoch_shards_[(h >> 32) & shard_mask_];
}

bool DentryCache::ViewOf(InodeId dir, EpochView* out) const {
  EpochShard& shard = EpochShardFor(dir);
  MutexLock lock(shard.mu);
  CFS_SHARED_READ(shard.views, shard.mu);
  auto it = shard.views.find(dir);
  if (it == shard.views.end()) return false;
  *out = it->second;
  return true;
}

void DentryCache::ObserveDirEpoch(InodeId dir, uint64_t epoch) {
  if (options_.capacity == 0) return;
  int64_t now_us = clock_->NowMicros();
  EpochShard& shard = EpochShardFor(dir);
  MutexLock lock(shard.mu);
  CFS_SHARED_WRITE(shard.views, shard.mu);
  EpochView& view = shard.views[dir];
  // A lower epoch is a reordered observation — keep the newer view but
  // still refresh the timestamp (the shard was reachable just now). The
  // exception is a reset to 0 (shard restart): adopt it, so tagged entries
  // mismatch and conservatively revalidate.
  if (epoch >= view.epoch || epoch == 0) {
    view.epoch = epoch;
  }
  view.observed_us = now_us;
}

uint64_t DentryCache::ObservedDirEpoch(InodeId dir) const {
  EpochView view;
  return ViewOf(dir, &view) ? view.epoch : 0;
}

DentryCache::LookupResult DentryCache::LookupRound(const std::string& path,
                                                   InodeId parent,
                                                   bool view_is_fresh,
                                                   bool* stale) {
  LookupResult result;
  EpochView view;
  bool has_view = ViewOf(parent, &view);
  int64_t now_us = clock_->NowMicros();

  EntryShard& shard = ShardFor(path);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(path);
  if (it == shard.index.end()) return result;
  const Entry& entry = it->second->second;
  if (entry.parent != parent || !has_view || entry.epoch != view.epoch ||
      (entry.negative && now_us >= entry.negative_expire_us)) {
    // Re-parented, never-validated, epoch-mismatched, or an expired
    // ENOENT: drop it and miss.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    *stale = true;
  } else if (!view_is_fresh &&
             (options_.epoch_ttl_ms <= 0 ||
              now_us - view.observed_us > options_.epoch_ttl_ms * 1000)) {
    // The entry agrees with our view, but the view itself has aged out:
    // ask the caller to refresh the epoch first. A view refreshed within
    // this logical lookup (view_is_fresh) is trusted unconditionally,
    // which is what lets epoch_ttl_ms <= 0 mean "one revalidation RPC per
    // hit" rather than "hits never serve".
    result.outcome = Outcome::kNeedsValidation;
  } else {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    result.outcome = entry.negative ? Outcome::kNegativeHit : Outcome::kHit;
    result.id = entry.id;
    result.type = entry.type;
  }
  return result;
}

void DentryCache::RecordOutcome(Outcome outcome, bool stale) {
  switch (outcome) {
    case Outcome::kHit:
      stats_.hits.fetch_add(1, std::memory_order_relaxed);
      Counters().hit->Add();
      break;
    case Outcome::kNegativeHit:
      stats_.negative_hits.fetch_add(1, std::memory_order_relaxed);
      Counters().negative_hit->Add();
      break;
    case Outcome::kNeedsValidation:
      stats_.revalidations.fetch_add(1, std::memory_order_relaxed);
      Counters().revalidate->Add();
      break;
    case Outcome::kMiss:
      stats_.misses.fetch_add(1, std::memory_order_relaxed);
      Counters().miss->Add();
      if (stale) {
        stats_.stale_drops.fetch_add(1, std::memory_order_relaxed);
        Counters().stale->Add();
      }
      break;
  }
}

DentryCache::LookupResult DentryCache::Lookup(const std::string& path,
                                              InodeId parent) {
  if (options_.capacity == 0) {
    return LookupResult();  // disabled: always a miss, skip the counters
  }
  bool stale = false;
  LookupResult result = LookupRound(path, parent, /*view_is_fresh=*/false,
                                    &stale);
  RecordOutcome(result.outcome, stale);
  return result;
}

DentryCache::LookupResult DentryCache::LookupValidated(
    const std::string& path, InodeId parent,
    const std::function<bool(uint64_t*)>& refresh_epoch) {
  if (options_.capacity == 0) {
    return LookupResult();  // disabled: always a miss, skip the counters
  }
  bool stale = false;
  LookupResult result = LookupRound(path, parent, /*view_is_fresh=*/false,
                                    &stale);
  if (result.outcome == Outcome::kNeedsValidation) {
    // The revalidate event is recorded here; the retry below records the
    // terminal outcome, so one logical lookup counts exactly one of
    // hit / negative_hit / miss.
    RecordOutcome(Outcome::kNeedsValidation, /*stale=*/false);
    uint64_t epoch = 0;
    if (refresh_epoch && refresh_epoch(&epoch)) {
      ObserveDirEpoch(parent, epoch);
      result = LookupRound(path, parent, /*view_is_fresh=*/true, &stale);
    } else {
      // Shard unreachable: the view could not be refreshed, so the hit
      // cannot be trusted — treat as a miss.
      result = LookupResult();
    }
  }
  RecordOutcome(result.outcome, stale);
  return result;
}

void DentryCache::PutEntry(const std::string& path, Entry entry) {
  if (options_.capacity == 0) return;
  bool evicted = false;
  EntryShard& shard = ShardFor(path);
  {
    MutexLock lock(shard.mu);
    auto it = shard.index.find(path);
    if (it != shard.index.end()) {
      it->second->second = entry;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= per_shard_capacity_ && !shard.lru.empty()) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evicted = true;
    }
    shard.lru.emplace_front(path, entry);
    shard.index.emplace(path, shard.lru.begin());
  }
  if (evicted) {
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    Counters().evict->Add();
  }
}

void DentryCache::PutPositive(const std::string& path, InodeId parent,
                              InodeId id, InodeType type, uint64_t epoch) {
  Entry entry;
  entry.parent = parent;
  entry.id = id;
  entry.type = type;
  entry.epoch = epoch;
  PutEntry(path, entry);
}

void DentryCache::PutNegative(const std::string& path, InodeId parent,
                              uint64_t epoch) {
  if (options_.negative_ttl_ms <= 0) {
    // Negative caching disabled — but the ENOENT we just observed proves
    // any cached positive entry for this path is wrong.
    Erase(path);
    return;
  }
  Entry entry;
  entry.parent = parent;
  entry.negative = true;
  entry.epoch = epoch;
  entry.negative_expire_us =
      clock_->NowMicros() + options_.negative_ttl_ms * 1000;
  PutEntry(path, entry);
}

void DentryCache::Erase(const std::string& path) {
  EntryShard& shard = ShardFor(path);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(path);
  if (it == shard.index.end()) return;
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

void DentryCache::ErasePrefix(const std::string& path) {
  Erase(path);
  std::string prefix = path;
  if (prefix.empty() || prefix.back() != '/') prefix.push_back('/');
  uint64_t dropped = 0;
  for (EntryShard& shard : entry_shards_) {
    MutexLock lock(shard.mu);
    for (auto it = shard.index.begin(); it != shard.index.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        shard.lru.erase(it->second);
        it = shard.index.erase(it);
        dropped++;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) {
    stats_.prefix_drops.fetch_add(dropped, std::memory_order_relaxed);
    Counters().prefix_drop->Add(dropped);
  }
}

void DentryCache::Clear() {
  for (EntryShard& shard : entry_shards_) {
    MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
  for (EpochShard& shard : epoch_shards_) {
    MutexLock lock(shard.mu);
    shard.views.clear();
  }
}

size_t DentryCache::size() const {
  size_t total = 0;
  for (const EntryShard& shard : entry_shards_) {
    MutexLock lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

DentryCache::Stats DentryCache::stats() const {
  Stats out;
  out.hits = stats_.hits.load(std::memory_order_relaxed);
  out.misses = stats_.misses.load(std::memory_order_relaxed);
  out.negative_hits = stats_.negative_hits.load(std::memory_order_relaxed);
  out.stale_drops = stats_.stale_drops.load(std::memory_order_relaxed);
  out.evictions = stats_.evictions.load(std::memory_order_relaxed);
  out.prefix_drops = stats_.prefix_drops.load(std::memory_order_relaxed);
  out.revalidations = stats_.revalidations.load(std::memory_order_relaxed);
  return out;
}

}  // namespace cfs
