// Garbage collector (paper §4.4).
//
// The deterministic two-tier execution orders (Fig 7) confine crash damage
// to orphaned attribute records (creation interrupted before linking) and
// undeleted attribute records (deletion interrupted after unlinking). The
// collector tails the committed logs of every TafDB shard and FileStore
// node — the change-data-capture feed — and performs a pairing analysis:
//
//   attribute created (TafDB attr-record insert or FileStore PutAttr)
//     ... expects a namespace insert carrying the same inode id;
//   namespace delete carrying an inode id hint
//     ... expects the matching attribute deletion.
//
// Entries unpaired after a grace period are reclaimed. A second, on-demand
// mode repairs dangling dentries (crashed rmdir step 2): failed getattr /
// readdir calls report <parent, name, id>, and the collector removes the
// dentry after verifying the attribute record is really gone.

#ifndef CFS_CORE_GC_H_
#define CFS_CORE_GC_H_

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/thread_annotations.h"
#include "src/tafdb/schema.h"

namespace cfs {

class Cfs;

class GarbageCollector {
 public:
  explicit GarbageCollector(Cfs* fs);
  ~GarbageCollector();

  void Start();
  void Stop();

  // Runs one full collection pass synchronously (tests and shutdown).
  void RunOnceForTest();

  // On-demand mode: a client observed a dentry whose attribute record is
  // missing (getattr/readdir failure after a crashed rmdir/unlink).
  void ReportDangling(InodeId parent, const std::string& name, InodeId id);

  struct Stats {
    uint64_t orphan_attrs_deleted = 0;    // crashed creates
    uint64_t missed_deletes_fixed = 0;    // crashed unlink/rename cleanups
    uint64_t dangling_entries_removed = 0;  // crashed rmdir (on-demand)
    uint64_t events_processed = 0;
  };
  Stats stats() const;

 private:
  void Loop();
  void ScanOnce();
  void IngestTafDb() REQUIRES(mu_);
  void IngestFileStore() REQUIRES(mu_);
  void Reclaim() REQUIRES(mu_);
  void ProcessDangling() REQUIRES(mu_);
  void DeleteAttrEverywhere(InodeId id);

  Cfs* fs_;  // tsa-coverage: allow(immutable after construction)
  // Spawned by Start, joined by Stop after running_ flips (single
  // lifecycle caller). tsa-coverage: allow(start/stop lifecycle only)
  std::thread thread_;
  std::atomic<bool> running_{false};
  // Sleep/wake only; guards nothing (the predicate is the running_ atomic).
  Mutex cv_mu_{"gc.wake", 84};
  CondVar cv_;

  // Held across a whole collection pass, which reads every shard's raft
  // feed and issues repair writes — gc.scan is therefore the outermost
  // ranked lock in the process.
  mutable Mutex mu_{"gc.scan", 10};
  std::vector<uint64_t> tafdb_cursor_ GUARDED_BY(mu_);
  std::vector<uint64_t> filestore_cursor_ GUARDED_BY(mu_);
  // inode id -> first-seen time (nanos) of the unpaired event.
  std::map<InodeId, MonoNanos> pending_create_ GUARDED_BY(mu_);
  std::map<InodeId, MonoNanos> pending_delete_ GUARDED_BY(mu_);
  // ids whose attribute deletion we already observed (bounded memory: this
  // only needs to cover the grace window; cleared opportunistically).
  std::set<InodeId> attr_deleted_ GUARDED_BY(mu_);
  std::set<InodeId> linked_ GUARDED_BY(mu_);
  struct Dangling {
    InodeId parent;
    std::string name;
    InodeId id;
  };
  std::vector<Dangling> dangling_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace cfs

#endif  // CFS_CORE_GC_H_
