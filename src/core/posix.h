// PosixFs — a POSIX-flavoured adapter over MetadataClient, mirroring the
// VFS-adapter role described in §3.2: it maps user-level POSIX calls
// (open/stat/read/write/...) onto CFS internal metadata and data
// operations, e.g. open(O_CREAT) -> lookup + create, stat -> lookup +
// getattr, read -> getattr + read. Errors are reported as negative errno
// values so the conformance suite can assert POSIX semantics directly.

#ifndef CFS_CORE_POSIX_H_
#define CFS_CORE_POSIX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/core/metadata_client.h"

namespace cfs {

// POSIX-ish stat result.
struct StatBuf {
  InodeId ino = 0;
  uint32_t mode = 0;  // permission bits
  InodeType type = InodeType::kNone;
  int64_t size = 0;
  int64_t nlink = 0;
  uint64_t mtime = 0;
  uint64_t ctime = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
};

// open(2) flags (subset).
inline constexpr int kOCreat = 0x1;
inline constexpr int kOExcl = 0x2;
inline constexpr int kOTrunc = 0x4;
inline constexpr int kOAppend = 0x8;

// Maps an internal Status to a negative errno value (0 on success).
int StatusToErrno(const Status& status);

class PosixFs {
 public:
  explicit PosixFs(std::unique_ptr<MetadataClient> client)
      : client_(std::move(client)) {}

  // All calls return 0 / fd >= 0 on success, -errno on failure.
  int Mkdir(const std::string& path, uint32_t mode);
  int Rmdir(const std::string& path);
  int Open(const std::string& path, int flags, uint32_t mode = 0644);
  int Close(int fd);
  int Unlink(const std::string& path);
  int Stat(const std::string& path, StatBuf* out);
  int Chmod(const std::string& path, uint32_t mode);
  int Chown(const std::string& path, uint32_t uid, uint32_t gid);
  int Truncate(const std::string& path, int64_t size);
  int Utimens(const std::string& path, uint64_t mtime);
  int Rename(const std::string& from, const std::string& to);
  int Symlink(const std::string& target, const std::string& link_path);
  int ReadlinkInto(const std::string& path, std::string* target);
  int LinkFile(const std::string& existing, const std::string& link_path);
  int ReadDirInto(const std::string& path, std::vector<DirEntry>* out);

  // fd-based I/O. An fd opened with kOAppend writes at end-of-file
  // (O_APPEND semantics: the passed offset is ignored); otherwise the
  // caller-supplied offset is used as in pwrite(2).
  int64_t PWrite(int fd, const std::string& data, uint64_t offset);
  int64_t PRead(int fd, uint64_t offset, size_t length, std::string* out);

  MetadataClient* client() { return client_.get(); }

 private:
  struct OpenFile {
    std::string path;
    int flags = 0;
  };

  // tsa-coverage: allow(immutable after construction)
  std::unique_ptr<MetadataClient> client_;
  // Fd-table leaf: released before any MetadataClient call.
  Mutex mu_{"posix.fdtable", 88};
  std::map<int, OpenFile> open_files_ GUARDED_BY(mu_);
  int next_fd_ GUARDED_BY(mu_) = 3;
};

}  // namespace cfs

#endif  // CFS_CORE_POSIX_H_
