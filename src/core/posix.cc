#include "src/core/posix.h"

#include <cerrno>

#include "src/common/race_detector.h"

namespace cfs {

int StatusToErrno(const Status& status) {
  switch (status.code()) {
    case ErrorCode::kOk: return 0;
    case ErrorCode::kNotFound: return -ENOENT;
    case ErrorCode::kAlreadyExists: return -EEXIST;
    case ErrorCode::kNotADirectory: return -ENOTDIR;
    case ErrorCode::kIsADirectory: return -EISDIR;
    case ErrorCode::kNotEmpty: return -ENOTEMPTY;
    case ErrorCode::kInvalidArgument: return -EINVAL;
    case ErrorCode::kPermissionDenied: return -EACCES;
    case ErrorCode::kCrossDevice: return -EXDEV;
    case ErrorCode::kConflict:
    case ErrorCode::kAborted: return -EAGAIN;
    case ErrorCode::kTimeout: return -ETIMEDOUT;
    case ErrorCode::kUnavailable:
    case ErrorCode::kNotLeader: return -EIO;
    default: return -EIO;
  }
}

int PosixFs::Mkdir(const std::string& path, uint32_t mode) {
  return StatusToErrno(client_->Mkdir(path, mode));
}

int PosixFs::Rmdir(const std::string& path) {
  return StatusToErrno(client_->Rmdir(path));
}

int PosixFs::Open(const std::string& path, int flags, uint32_t mode) {
  // open(O_CREAT) decomposes into lookup + create (§3.2).
  auto info = client_->Lookup(path);
  if (info.ok()) {
    if ((flags & kOCreat) != 0 && (flags & kOExcl) != 0) {
      return -EEXIST;
    }
    if (info->type == InodeType::kDirectory) {
      return -EISDIR;
    }
    if ((flags & kOTrunc) != 0) {
      SetAttrSpec spec;
      spec.size = 0;
      int rc = StatusToErrno(client_->SetAttr(path, spec));
      if (rc != 0) return rc;
    }
  } else if (info.status().IsNotFound()) {
    if ((flags & kOCreat) == 0) {
      return -ENOENT;
    }
    int rc = StatusToErrno(client_->Create(path, mode));
    if (rc != 0) return rc;
  } else {
    return StatusToErrno(info.status());
  }
  MutexLock lock(mu_);
  CFS_SHARED_WRITE(open_files_, mu_);
  int fd = next_fd_++;
  open_files_[fd] = OpenFile{path, flags};
  return fd;
}

int PosixFs::Close(int fd) {
  MutexLock lock(mu_);
  CFS_SHARED_WRITE(open_files_, mu_);
  return open_files_.erase(fd) != 0 ? 0 : -EBADF;
}

int PosixFs::Unlink(const std::string& path) {
  return StatusToErrno(client_->Unlink(path));
}

int PosixFs::Stat(const std::string& path, StatBuf* out) {
  // stat decomposes into lookup + getattr.
  auto info = client_->GetAttr(path);
  if (!info.ok()) return StatusToErrno(info.status());
  out->ino = info->id;
  out->mode = info->mode;
  out->type = info->type;
  out->size = info->size;
  out->nlink = info->links;
  out->mtime = info->mtime;
  out->ctime = info->ctime;
  out->uid = info->uid;
  out->gid = info->gid;
  return 0;
}

int PosixFs::Chmod(const std::string& path, uint32_t mode) {
  SetAttrSpec spec;
  spec.mode = mode;
  return StatusToErrno(client_->SetAttr(path, spec));
}

int PosixFs::Chown(const std::string& path, uint32_t uid, uint32_t gid) {
  SetAttrSpec spec;
  spec.uid = uid;
  spec.gid = gid;
  return StatusToErrno(client_->SetAttr(path, spec));
}

int PosixFs::Truncate(const std::string& path, int64_t size) {
  auto info = client_->Lookup(path);
  if (!info.ok()) return StatusToErrno(info.status());
  if (info->type == InodeType::kDirectory) return -EISDIR;
  SetAttrSpec spec;
  spec.size = size;
  return StatusToErrno(client_->SetAttr(path, spec));
}

int PosixFs::Utimens(const std::string& path, uint64_t mtime) {
  SetAttrSpec spec;
  spec.mtime = mtime;
  return StatusToErrno(client_->SetAttr(path, spec));
}

int PosixFs::Rename(const std::string& from, const std::string& to) {
  return StatusToErrno(client_->Rename(from, to));
}

int PosixFs::Symlink(const std::string& target, const std::string& link_path) {
  return StatusToErrno(client_->Symlink(target, link_path));
}

int PosixFs::ReadlinkInto(const std::string& path, std::string* target) {
  auto result = client_->ReadLink(path);
  if (!result.ok()) return StatusToErrno(result.status());
  *target = std::move(result).value();
  return 0;
}

int PosixFs::LinkFile(const std::string& existing,
                      const std::string& link_path) {
  return StatusToErrno(client_->Link(existing, link_path));
}

int PosixFs::ReadDirInto(const std::string& path, std::vector<DirEntry>* out) {
  auto result = client_->ReadDir(path);
  if (!result.ok()) return StatusToErrno(result.status());
  *out = std::move(result).value();
  return 0;
}

int64_t PosixFs::PWrite(int fd, const std::string& data, uint64_t offset) {
  std::string path;
  int flags = 0;
  {
    MutexLock lock(mu_);
    auto it = open_files_.find(fd);
    if (it == open_files_.end()) return -EBADF;
    path = it->second.path;
    flags = it->second.flags;
  }
  if ((flags & kOAppend) != 0) {
    // O_APPEND: every write lands at the current end of file.
    auto info = client_->GetAttr(path);
    if (!info.ok()) return StatusToErrno(info.status());
    offset = static_cast<uint64_t>(info->size);
  }
  Status st = client_->Write(path, offset, data);
  if (!st.ok()) return StatusToErrno(st);
  return static_cast<int64_t>(data.size());
}

int64_t PosixFs::PRead(int fd, uint64_t offset, size_t length,
                       std::string* out) {
  std::string path;
  {
    MutexLock lock(mu_);
    auto it = open_files_.find(fd);
    if (it == open_files_.end()) return -EBADF;
    path = it->second.path;
  }
  // read decomposes into getattr (freshness check) + data read (§3.2).
  auto info = client_->GetAttr(path);
  if (!info.ok()) return StatusToErrno(info.status());
  auto data = client_->Read(path, offset, length);
  if (!data.ok()) {
    if (data.status().IsNotFound()) {
      out->clear();
      return 0;  // hole / EOF
    }
    return StatusToErrno(data.status());
  }
  *out = std::move(data).value();
  return static_cast<int64_t>(out->size());
}

}  // namespace cfs
