#include "src/core/gc.h"

#include <chrono>

#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/trace_event.h"
#include "src/core/cfs.h"

namespace cfs {
namespace {

// GC runs on its own thread, so it only feeds global counters (its work is
// never part of a client op's trace).
struct GcMetrics {
  Counter* events;
  Counter* orphan_attrs;
  Counter* missed_deletes;
  Counter* dangling_entries;
};

GcMetrics& Metrics() {
  static GcMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return GcMetrics{r.GetCounter("gc.events_processed"),
                     r.GetCounter("gc.orphan_attrs_deleted"),
                     r.GetCounter("gc.missed_deletes_fixed"),
                     r.GetCounter("gc.dangling_entries_removed")};
  }();
  return m;
}

}  // namespace

GarbageCollector::GarbageCollector(Cfs* fs) : fs_(fs) {}

GarbageCollector::~GarbageCollector() { Stop(); }

void GarbageCollector::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { Loop(); });
}

void GarbageCollector::Stop() {
  if (!running_.exchange(false)) return;
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

void GarbageCollector::Loop() {
  while (running_.load()) {
    {
      MutexLock lock(cv_mu_);
      auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(fs_->options().gc_interval_ms);
      while (running_.load()) {
        if (!cv_.WaitUntil(cv_mu_, deadline)) break;  // interval elapsed
      }
    }
    if (!running_.load()) return;
    ScanOnce();
  }
}

void GarbageCollector::RunOnceForTest() { ScanOnce(); }

void GarbageCollector::ScanOnce() {
  // GC cycles run on the collector thread outside any OpTrace bracket;
  // OpScope roots them as their own trace so slow scans land in the
  // slow-op log like any other operation.
  trace::OpScope op("gc_scan");
  trace::ScopedSpan span(trace::Category::kGc, "scan");
  MutexLock lock(mu_);
  IngestTafDb();
  IngestFileStore();
  Reclaim();
  ProcessDangling();
}

void GarbageCollector::IngestTafDb() {
  TafDbCluster* tafdb = fs_->tafdb();
  tafdb_cursor_.resize(tafdb->num_shards(), 0);
  MonoNanos now = RealClock::Get()->NowNanos();

  for (size_t s = 0; s < tafdb->num_shards(); s++) {
    // Drain the shard's feed completely: a partially ingested TafDB log
    // would make FileStore-side attribute creations look unpaired and the
    // pairing analysis would reclaim live files.
    for (;;) {
    auto feed = tafdb->shard(s)->ReadCommittedSince(tafdb_cursor_[s], 8192);
    for (auto& [index, cmd] : feed) {
      tafdb_cursor_[s] = index;
      // Prepared write sets almost always commit; treating them as applied
      // only risks a benign extra verification, never data loss (Reclaim
      // re-checks state before deleting).
      if (cmd.kind == ShardCommand::Kind::kAbortTxn) continue;
      const PrimitiveOp& op = cmd.op;
      stats_.events_processed++;
      Metrics().events->Add();

      std::set<InodeId> created_attrs;
      std::set<InodeId> inserted_ids;
      for (const auto& rec : op.inserts) {
        if (rec.key.IsAttr()) {
          created_attrs.insert(rec.id);
        } else if (rec.Has(InodeRecord::kFieldId)) {
          inserted_ids.insert(rec.id);
        }
      }
      // Absolute upserts (lock-based txns) count as links but never as
      // creations: they may be in-place attribute updates.
      for (const auto& rec : op.puts) {
        if (!rec.key.IsAttr() && rec.Has(InodeRecord::kFieldId)) {
          inserted_ids.insert(rec.id);
        }
      }
      std::set<InodeId> deleted_hints;
      for (const auto& del : op.deletes) {
        if (del.key.IsAttr()) {
          attr_deleted_.insert(del.key.kid);
          pending_delete_.erase(del.key.kid);
        } else if (del.hint_id != kInvalidInode && del.expect_attr_cleanup) {
          // Only unlink/rmdir-style deletes expect an attribute cleanup;
          // rename-style deletes re-link the inode elsewhere and must not
          // enter the pairing (their counterpart may be ingested in any
          // shard order).
          deleted_hints.insert(del.hint_id);
        }
      }

      for (InodeId id : inserted_ids) {
        linked_.insert(id);
        pending_create_.erase(id);
        // A re-inserted id (ordered rename's second step) is still live:
        // its earlier namespace delete must not trigger reclamation.
        pending_delete_.erase(id);
      }
      for (InodeId id : created_attrs) {
        // The root's attribute record is the one attribute that never has
        // a dentry linking to it (bootstrap); it is not an orphan.
        if (id == kRootInode) continue;
        if (linked_.count(id) == 0) {
          pending_create_.emplace(id, now);
        }
      }
      for (InodeId id : deleted_hints) {
        // An id both unlinked and re-inserted in one command is a rename:
        // its attribute must survive.
        if (inserted_ids.count(id) != 0) continue;
        if (attr_deleted_.count(id) == 0) {
          pending_delete_.emplace(id, now);
        }
      }
    }
    if (feed.size() < 8192) break;
    }
  }
}

void GarbageCollector::IngestFileStore() {
  FileStoreCluster* filestore = fs_->filestore();
  filestore_cursor_.resize(filestore->num_nodes(), 0);
  MonoNanos now = RealClock::Get()->NowNanos();

  for (size_t n = 0; n < filestore->num_nodes(); n++) {
    for (;;) {
    auto feed =
        filestore->node(n)->ReadCommittedSince(filestore_cursor_[n], 8192);
    for (auto& [index, raw_cmd] : feed) {
      filestore_cursor_[n] = index;
      stats_.events_processed++;
      Metrics().events->Add();
      const FileStoreCommand* cmd = &raw_cmd;
      StatusOr<FileStoreCommand> inner = Status::NotFound("");
      if (cmd->kind == FileStoreCommand::Kind::kPrepare) {
        inner = FileStoreCommand::Decode(cmd->data);
        if (!inner.ok()) continue;
        cmd = &inner.value();
      }
      switch (cmd->kind) {
        case FileStoreCommand::Kind::kPutAttr:
          if (cmd->id != kRootInode && linked_.count(cmd->id) == 0) {
            pending_create_.emplace(cmd->id, now);
          }
          break;
        case FileStoreCommand::Kind::kDeleteAttr:
        case FileStoreCommand::Kind::kDeleteFile:
        case FileStoreCommand::Kind::kUnref:
          // Unref is the unlink path's expected cleanup whether or not it
          // was the last link.
          attr_deleted_.insert(cmd->id);
          pending_delete_.erase(cmd->id);
          break;
        default:
          break;
      }
    }
    if (feed.size() < 8192) break;
    }
  }
}

void GarbageCollector::DeleteAttrEverywhere(InodeId id) {
  // Idempotent: covers tiered (FileStore) and non-tiered (TafDB attr
  // record) placements, plus orphaned directory attribute records.
  if (fs_->options().tiered_attrs) {
    (void)fs_->filestore()->NodeFor(id)->DeleteFile(id);
  }
  PrimitiveOp op;
  DeleteSpec del;
  del.key = InodeKey::AttrRecord(id);
  del.ifexist = true;
  op.deletes.push_back(del);
  (void)fs_->tafdb()->ShardFor(id)->ExecutePrimitive(op);
}

void GarbageCollector::Reclaim() {
  MonoNanos now = RealClock::Get()->NowNanos();
  MonoNanos grace = fs_->options().gc_grace_ms * 1000000;

  for (auto it = pending_create_.begin(); it != pending_create_.end();) {
    if (linked_.count(it->first) != 0) {
      it = pending_create_.erase(it);
      continue;
    }
    if (now - it->second >= grace) {
      DeleteAttrEverywhere(it->first);
      stats_.orphan_attrs_deleted++;
      Metrics().orphan_attrs->Add();
      it = pending_create_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = pending_delete_.begin(); it != pending_delete_.end();) {
    if (attr_deleted_.count(it->first) != 0) {
      it = pending_delete_.erase(it);
      continue;
    }
    if (now - it->second >= grace) {
      // A missed unlink cleanup: drop the reference the crashed client
      // never dropped (hard-link-safe), instead of force-deleting.
      if (fs_->options().tiered_attrs) {
        (void)fs_->filestore()->NodeFor(it->first)->Unref(it->first);
      } else {
        DeleteAttrEverywhere(it->first);
      }
      stats_.missed_deletes_fixed++;
      Metrics().missed_deletes->Add();
      it = pending_delete_.erase(it);
    } else {
      ++it;
    }
  }
  // Bound the memory of the pairing sets: anything old enough that no
  // counterpart event can still arrive is dropped.
  if (linked_.size() > 1u << 20) linked_.clear();
  if (attr_deleted_.size() > 1u << 20) attr_deleted_.clear();
}

void GarbageCollector::ReportDangling(InodeId parent, const std::string& name,
                                      InodeId id) {
  MutexLock lock(mu_);
  dangling_.push_back(Dangling{parent, name, id});
}

void GarbageCollector::ProcessDangling() {
  std::vector<Dangling> work;
  work.swap(dangling_);
  for (const auto& d : work) {
    // Verify the attribute record is really gone before removing the
    // dentry (the report may race a slow create).
    bool attr_exists =
        fs_->tafdb()->ShardFor(d.id)->Get(InodeKey::AttrRecord(d.id)).ok();
    if (!attr_exists && fs_->options().tiered_attrs) {
      attr_exists = fs_->filestore()->NodeFor(d.id)->GetAttr(d.id).ok();
    }
    if (attr_exists) continue;

    PrimitiveOp op;
    DeleteSpec del;
    del.key = InodeKey::IdRecord(d.parent, d.name);
    del.ifexist = true;
    del.hint_id = d.id;
    op.deletes.push_back(del);
    UpdateSpec dec;
    dec.key = InodeKey::AttrRecord(d.parent);
    dec.children_delta_auto = true;  // -1 only if the dentry still existed
    dec.must_exist = false;
    op.updates.push_back(dec);
    auto result = fs_->tafdb()->ShardFor(d.parent)->ExecutePrimitive(op);
    if (result.status.ok() && result.deleted > 0) {
      stats_.dangling_entries_removed++;
      Metrics().dangling_entries->Add();
    }
  }
}

GarbageCollector::Stats GarbageCollector::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace cfs
