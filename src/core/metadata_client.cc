#include "src/core/metadata_client.h"

namespace cfs {

StatusOr<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) j = path.size();
    if (j > i) {
      std::string component = path.substr(i, j - i);
      if (component == "." || component == "..") {
        return Status::InvalidArgument("'.'/'..' not supported: " + path);
      }
      if (component == kAttrKeyStr) {
        return Status::InvalidArgument("reserved name");
      }
      parts.push_back(std::move(component));
    }
    i = j + 1;
  }
  return parts;
}

StatusOr<std::pair<std::string, std::string>> SplitParent(
    const std::string& path) {
  auto parts = SplitPath(path);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) {
    return Status::InvalidArgument("root has no parent");
  }
  std::string name = parts->back();
  std::string parent = "/";
  for (size_t i = 0; i + 1 < parts->size(); i++) {
    if (parent.size() > 1) parent += '/';
    parent += (*parts)[i];
  }
  return std::make_pair(parent, name);
}

}  // namespace cfs
