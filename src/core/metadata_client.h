// The file-system-facing metadata/data API implemented by CFS and by both
// baselines (HopsFS-like, InfiniFS-like). Benchmarks and examples program
// against this interface so every system runs the identical workload.
//
// Paths are absolute ("/a/b/c"). Operations mirror the paper's seven
// sampled metadata requests (create, unlink, mkdir, rmdir, lookup, getattr,
// setattr) plus readdir, rename, symlink/readlink, link, and the data ops
// used by the trace replays.

#ifndef CFS_CORE_METADATA_CLIENT_H_
#define CFS_CORE_METADATA_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/tafdb/schema.h"

namespace cfs {

struct FileInfo {
  InodeId id = kInvalidInode;
  InodeType type = InodeType::kNone;
  int64_t size = 0;
  int64_t links = 0;
  int64_t children = 0;
  uint64_t mtime = 0;
  uint64_t ctime = 0;
  uint32_t mode = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;

  bool IsDirectory() const { return type == InodeType::kDirectory; }

  static FileInfo FromRecord(const InodeRecord& rec) {
    FileInfo info;
    info.id = rec.id;
    info.type = rec.type;
    info.size = rec.size;
    info.links = rec.links;
    info.children = rec.children;
    info.mtime = rec.mtime;
    info.ctime = rec.ctime;
    info.mode = rec.mode;
    info.uid = rec.uid;
    info.gid = rec.gid;
    return info;
  }
};

struct DirEntry {
  std::string name;
  InodeId id = kInvalidInode;
  InodeType type = InodeType::kNone;
};

// Partial attribute update (chmod/chown/utimens/truncate).
struct SetAttrSpec {
  std::optional<uint32_t> mode;
  std::optional<uint32_t> uid;
  std::optional<uint32_t> gid;
  std::optional<uint64_t> mtime;
  std::optional<int64_t> size;
};

class MetadataClient {
 public:
  virtual ~MetadataClient() = default;

  virtual Status Mkdir(const std::string& path, uint32_t mode) = 0;
  virtual Status Rmdir(const std::string& path) = 0;
  virtual Status Create(const std::string& path, uint32_t mode) = 0;
  virtual Status Unlink(const std::string& path) = 0;
  // Resolves the dentry (parent lookup + final component read).
  virtual StatusOr<FileInfo> Lookup(const std::string& path) = 0;
  // Full attribute fetch.
  virtual StatusOr<FileInfo> GetAttr(const std::string& path) = 0;
  virtual Status SetAttr(const std::string& path, const SetAttrSpec& spec) = 0;
  virtual StatusOr<std::vector<DirEntry>> ReadDir(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Symlink(const std::string& target,
                         const std::string& link_path) = 0;
  virtual StatusOr<std::string> ReadLink(const std::string& path) = 0;
  virtual Status Link(const std::string& existing,
                      const std::string& link_path) = 0;

  // Data plane (used by the end-to-end trace replays).
  virtual Status Write(const std::string& path, uint64_t offset,
                       const std::string& data) = 0;
  virtual StatusOr<std::string> Read(const std::string& path, uint64_t offset,
                                     size_t length) = 0;
};

// Splits "/a/b/c" into components; rejects empty names and relative paths.
StatusOr<std::vector<std::string>> SplitPath(const std::string& path);
// "/a/b/c" -> ("/a/b", "c"); "/" has no parent.
StatusOr<std::pair<std::string, std::string>> SplitParent(
    const std::string& path);

}  // namespace cfs

#endif  // CFS_CORE_METADATA_CLIENT_H_
