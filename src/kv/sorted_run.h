// Immutable sorted run — the flushed/compacted on-"disk" unit of the KV
// store (the SSTable analogue). Entries are in internal order (key asc,
// seq desc) and may contain multiple versions of a key.

#ifndef CFS_KV_SORTED_RUN_H_
#define CFS_KV_SORTED_RUN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "src/kv/memtable.h"

namespace cfs {

class SortedRun {
 public:
  // `entries` must already be in internal order.
  explicit SortedRun(std::vector<KvEntry> entries);

  // Newest version of key visible at snapshot_seq, or nullopt.
  std::optional<KvEntry> Get(std::string_view key, uint64_t snapshot_seq) const;

  // Visits entries with key in [start, end) (end empty = unbounded).
  void VisitRange(std::string_view start, std::string_view end,
                  const std::function<bool(const KvEntry&)>& visit) const;

  size_t size() const { return entries_.size(); }
  const std::vector<KvEntry>& entries() const { return entries_; }

  uint64_t min_seq() const { return min_seq_; }
  uint64_t max_seq() const { return max_seq_; }

  // k-way merges runs (newest first priority) into one run, dropping
  // versions not needed by any snapshot >= `keep_seq` except the newest per
  // key, and dropping tombstones entirely when `drop_tombstones`.
  static std::shared_ptr<SortedRun> Merge(
      const std::vector<std::shared_ptr<SortedRun>>& runs, uint64_t keep_seq,
      bool drop_tombstones);

 private:
  std::vector<KvEntry> entries_;
  uint64_t min_seq_ = UINT64_MAX;
  uint64_t max_seq_ = 0;
};

}  // namespace cfs

#endif  // CFS_KV_SORTED_RUN_H_
