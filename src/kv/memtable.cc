#include "src/kv/memtable.h"

#include <cstdlib>
#include <new>
#include <vector>

#include "src/common/check.h"

namespace cfs {

MemTable::MemTable() {
  KvEntry sentinel;
  head_ = NewNode(std::move(sentinel), kMaxHeight);
  for (int i = 0; i < kMaxHeight; i++) {
    head_->SetNext(i, nullptr);
  }
}

MemTable::~MemTable() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->Next(0);
    n->entry.~KvEntry();
    std::free(n);
    n = next;
  }
}

MemTable::Node* MemTable::NewNode(KvEntry entry, int height) {
  size_t size = sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1);
  void* mem = std::malloc(size);
  CFS_CHECK(mem != nullptr);
  Node* node = static_cast<Node*>(mem);
  new (&node->entry) KvEntry(std::move(entry));
  node->height = height;
  for (int i = 0; i < height; i++) {
    new (&node->next[i]) std::atomic<Node*>(nullptr);
  }
  return node;
}

int MemTable::RandomHeight() {
  int height = 1;
  while (height < kMaxHeight && (rng_.Next() & 3) == 0) {
    height++;
  }
  return height;
}

MemTable::Node* MemTable::FindGreaterOrEqual(std::string_view key,
                                             uint64_t seq,
                                             Node** prev) const {
  Node* x = head_;
  int level = max_height_.load(std::memory_order_acquire) - 1;
  for (;;) {
    Node* next = x->Next(level);
    bool go_right =
        next != nullptr &&
        InternalLess(next->entry.key, next->entry.seq, key, seq);
    if (go_right) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      level--;
    }
  }
}

void MemTable::Add(std::string_view key, std::string_view value, uint64_t seq,
                   ValueType type) {
  KvEntry entry{std::string(key), std::string(value), seq, type};
  size_t cost = key.size() + value.size() + 48;
  Node* prev[kMaxHeight];
  FindGreaterOrEqual(key, seq, prev);
  int height = RandomHeight();
  int max_h = max_height_.load(std::memory_order_relaxed);
  if (height > max_h) {
    for (int i = max_h; i < height; i++) {
      prev[i] = head_;
    }
    max_height_.store(height, std::memory_order_release);
  }
  Node* node = NewNode(std::move(entry), height);
  for (int i = 0; i < height; i++) {
    node->SetNext(i, prev[i]->Next(i));
    prev[i]->SetNext(i, node);
  }
  bytes_.fetch_add(cost, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<KvEntry> MemTable::Get(std::string_view key,
                                     uint64_t snapshot_seq) const {
  Node* n = FindGreaterOrEqual(key, snapshot_seq, nullptr);
  if (n != nullptr && n->entry.key == key) {
    return n->entry;
  }
  return std::nullopt;
}

void MemTable::VisitRange(
    std::string_view start, std::string_view end,
    const std::function<bool(const KvEntry&)>& visit) const {
  Node* n = FindGreaterOrEqual(start, UINT64_MAX, nullptr);
  while (n != nullptr) {
    if (!end.empty() && n->entry.key >= end) return;
    if (!visit(n->entry)) return;
    n = n->Next(0);
  }
}

void MemTable::VisitAll(
    const std::function<bool(const KvEntry&)>& visit) const {
  Node* n = head_->Next(0);
  while (n != nullptr) {
    if (!visit(n->entry)) return;
    n = n->Next(0);
  }
}

}  // namespace cfs
