// Skiplist memtable with LevelDB-style versioned internal keys:
// entries are ordered by (user_key asc, sequence desc), and carry a value
// type (put or tombstone). Readers at a snapshot sequence see the newest
// entry whose sequence is <= the snapshot.

#ifndef CFS_KV_MEMTABLE_H_
#define CFS_KV_MEMTABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/random.h"

namespace cfs {

enum class ValueType : uint8_t { kPut = 0, kDelete = 1 };

struct KvEntry {
  std::string key;
  std::string value;
  uint64_t seq = 0;
  ValueType type = ValueType::kPut;
};

// Orders by key asc, then seq desc (newer versions first).
inline bool InternalLess(std::string_view ak, uint64_t aseq,
                         std::string_view bk, uint64_t bseq) {
  int c = ak.compare(bk);
  if (c != 0) return c < 0;
  return aseq > bseq;
}

class MemTable {
 public:
  MemTable();
  ~MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Thread-safety: Add is externally serialized by the store's write path;
  // Get/Scan may run concurrently with Add (pointers are published with
  // release stores).
  void Add(std::string_view key, std::string_view value, uint64_t seq,
           ValueType type);

  // Newest version of `key` visible at `snapshot_seq`. Returns nullopt when
  // no version exists (a tombstone IS returned, as an entry of kDelete type,
  // so callers can distinguish "deleted here" from "not present here").
  std::optional<KvEntry> Get(std::string_view key, uint64_t snapshot_seq) const;

  // Visits all entries (every version) with key in [start, end) in internal
  // order. Return false from the visitor to stop.
  void VisitRange(std::string_view start, std::string_view end,
                  const std::function<bool(const KvEntry&)>& visit) const;

  // Visits every entry in internal order (for flushing).
  void VisitAll(const std::function<bool(const KvEntry&)>& visit) const;

  size_t ApproximateBytes() const { return bytes_.load(std::memory_order_relaxed); }
  size_t EntryCount() const { return entries_.load(std::memory_order_relaxed); }

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    KvEntry entry;
    int height;
    std::atomic<Node*> next[1];  // over-allocated to `height`

    Node* Next(int level) const {
      return next[level].load(std::memory_order_acquire);
    }
    void SetNext(int level, Node* n) {
      next[level].store(n, std::memory_order_release);
    }
  };

  Node* NewNode(KvEntry entry, int height);
  int RandomHeight();
  // Last node < (key, seq); fills prev[] when non-null.
  Node* FindGreaterOrEqual(std::string_view key, uint64_t seq,
                           Node** prev) const;

  Node* head_;
  std::atomic<int> max_height_{1};
  Rng rng_{0xdecafbad};
  std::atomic<size_t> bytes_{0};
  std::atomic<size_t> entries_{0};
};

}  // namespace cfs

#endif  // CFS_KV_MEMTABLE_H_
