#include "src/kv/kvstore.h"

#include <algorithm>
#include <set>

#include "src/common/encoding.h"
#include "src/common/race_detector.h"

namespace cfs {

void WriteBatch::Put(std::string_view key, std::string_view value) {
  ops_.push_back(Op{ValueType::kPut, std::string(key), std::string(value)});
}

void WriteBatch::Delete(std::string_view key) {
  ops_.push_back(Op{ValueType::kDelete, std::string(key), ""});
}

std::string WriteBatch::Encode() const {
  std::string out;
  PutVarint64(&out, ops_.size());
  for (const auto& op : ops_) {
    out.push_back(static_cast<char>(op.type));
    PutLengthPrefixed(&out, op.key);
    PutLengthPrefixed(&out, op.value);
  }
  return out;
}

StatusOr<WriteBatch> WriteBatch::Decode(std::string_view data) {
  Decoder dec(data);
  uint64_t count;
  if (!dec.GetVarint64(&count)) {
    return Status::Corruption("batch count");
  }
  WriteBatch batch;
  for (uint64_t i = 0; i < count; i++) {
    if (dec.empty()) return Status::Corruption("batch truncated");
    auto type = static_cast<ValueType>(dec.rest()[0]);
    dec = Decoder(dec.rest().substr(1));
    std::string key, value;
    if (!dec.GetLengthPrefixed(&key) || !dec.GetLengthPrefixed(&value)) {
      return Status::Corruption("batch op truncated");
    }
    if (type == ValueType::kPut) {
      batch.Put(key, value);
    } else {
      batch.Delete(key);
    }
  }
  return batch;
}

KvStore::KvStore(KvOptions options)
    : options_(std::move(options)),
      wal_(options_.wal),
      active_(std::make_shared<MemTable>()) {}

Status KvStore::Open() {
  CFS_RETURN_IF_ERROR(wal_.Open());
  if (!options_.use_wal) return Status::Ok();
  uint64_t max_seq = 0;
  Status replay = wal_.Replay([&](uint64_t, std::string_view record) {
    Decoder dec(record);
    uint64_t first_seq;
    if (!dec.GetVarint64(&first_seq)) return;
    auto batch = WriteBatch::Decode(dec.rest());
    if (!batch.ok()) return;
    uint64_t seq = first_seq;
    WriterMutexLock vlock(version_mu_);
    for (const auto& op : batch->ops()) {
      active_->Add(op.key, op.value, seq, op.type);
      max_seq = std::max(max_seq, seq);
      seq++;
    }
  });
  CFS_RETURN_IF_ERROR(replay);
  if (max_seq > seq_.load()) seq_.store(max_seq);
  return Status::Ok();
}

Status KvStore::Write(const WriteBatch& batch, bool sync) {
  if (batch.empty()) return Status::Ok();
  MutexLock lock(write_mu_);
  return WriteLocked(batch, sync);
}

Status KvStore::WriteLocked(const WriteBatch& batch, bool sync) {
  uint64_t first_seq = seq_.load(std::memory_order_relaxed) + 1;
  if (options_.use_wal) {
    std::string record;
    PutVarint64(&record, first_seq);
    record += batch.Encode();
    auto lsn = wal_.Append(record, sync);
    if (!lsn.ok()) return lsn.status();
  }
  uint64_t seq = first_seq;
  size_t active_bytes = 0;
  {
    // Apply under the version lock so structure swaps don't race. Note the
    // split guard: version_mu_ protects the *pointer* (read here); memtable
    // contents are serialized by write_mu_, which the caller holds.
    ReaderMutexLock vlock(version_mu_);
    CFS_SHARED_READ(active_, version_mu_);
    for (const auto& op : batch.ops()) {
      active_->Add(op.key, op.value, seq++, op.type);
    }
    // Sample the flush trigger here: touching active_ after the lock drops
    // would race a concurrent Flush() swapping the memtable out.
    active_bytes = active_->ApproximateBytes();
  }
  seq_.store(seq - 1, std::memory_order_release);
  {
    MutexLock slock(stats_mu_);
    CFS_SHARED_WRITE(stats_, stats_mu_);
    for (const auto& op : batch.ops()) {
      if (op.type == ValueType::kPut) {
        stats_.puts++;
      } else {
        stats_.deletes++;
      }
    }
  }
  if (active_bytes >= options_.memtable_flush_bytes) {
    CFS_RETURN_IF_ERROR(Flush());
  }
  return Status::Ok();
}

Status KvStore::Put(std::string_view key, std::string_view value, bool sync) {
  WriteBatch b;
  b.Put(key, value);
  return Write(b, sync);
}

Status KvStore::Delete(std::string_view key, bool sync) {
  WriteBatch b;
  b.Delete(key);
  return Write(b, sync);
}

StatusOr<std::string> KvStore::Get(std::string_view key,
                                   uint64_t snapshot_seq) const {
  {
    MutexLock slock(stats_mu_);
    CFS_SHARED_WRITE(stats_, stats_mu_);
    stats_.gets++;
  }
  ReaderMutexLock vlock(version_mu_);
  CFS_SHARED_READ(active_, version_mu_);
  // Per key, source order equals recency order: active > immutables (newest
  // first) > runs (newest first).
  if (auto e = active_->Get(key, snapshot_seq)) {
    if (e->type == ValueType::kDelete) return Status::NotFound();
    return e->value;
  }
  for (auto it = immutable_.rbegin(); it != immutable_.rend(); ++it) {
    if (auto e = (*it)->Get(key, snapshot_seq)) {
      if (e->type == ValueType::kDelete) return Status::NotFound();
      return e->value;
    }
  }
  for (const auto& run : runs_) {
    if (auto e = run->Get(key, snapshot_seq)) {
      if (e->type == ValueType::kDelete) return Status::NotFound();
      return e->value;
    }
  }
  return Status::NotFound();
}

bool KvStore::Contains(std::string_view key, uint64_t snapshot_seq) const {
  return Get(key, snapshot_seq).ok();
}

std::vector<std::pair<std::string, std::string>> KvStore::Scan(
    std::string_view start, std::string_view end, size_t limit,
    uint64_t snapshot_seq) const {
  {
    MutexLock slock(stats_mu_);
    CFS_SHARED_WRITE(stats_, stats_mu_);
    stats_.scans++;
  }
  ReaderMutexLock vlock(version_mu_);
  CFS_SHARED_READ(active_, version_mu_);
  // Merge newest-wins per key across all sources.
  std::map<std::string, KvEntry, std::less<>> merged;
  auto absorb = [&](const KvEntry& e) {
    if (e.seq > snapshot_seq) return true;
    auto it = merged.find(e.key);
    if (it == merged.end()) {
      merged.emplace(e.key, e);
    } else if (e.seq > it->second.seq) {
      it->second = e;
    }
    return true;
  };
  active_->VisitRange(start, end, absorb);
  for (const auto& mt : immutable_) {
    mt->VisitRange(start, end, absorb);
  }
  for (const auto& run : runs_) {
    run->VisitRange(start, end, absorb);
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& [key, entry] : merged) {
    if (entry.type == ValueType::kDelete) continue;
    out.emplace_back(key, entry.value);
    if (limit != 0 && out.size() >= limit) break;
  }
  return out;
}

size_t KvStore::CountRange(std::string_view start, std::string_view end,
                           uint64_t snapshot_seq) const {
  return Scan(start, end, 0, snapshot_seq).size();
}

uint64_t KvStore::GetSnapshot() {
  uint64_t seq = seq_.load(std::memory_order_acquire);
  MutexLock lock(snapshot_mu_);
  snapshots_.insert(seq);
  return seq;
}

void KvStore::ReleaseSnapshot(uint64_t seq) {
  MutexLock lock(snapshot_mu_);
  auto it = snapshots_.find(seq);
  if (it != snapshots_.end()) snapshots_.erase(it);
}

uint64_t KvStore::OldestSnapshotLocked() const {
  MutexLock lock(snapshot_mu_);
  return snapshots_.empty() ? UINT64_MAX : *snapshots_.begin();
}

Status KvStore::Flush() {
  // Caller holds write_mu_ (via WriteLocked) or calls explicitly with no
  // concurrent writers; seal the active memtable and convert it to a run.
  std::shared_ptr<MemTable> sealed;
  {
    WriterMutexLock vlock(version_mu_);
    CFS_SHARED_WRITE(active_, version_mu_);
    if (active_->EntryCount() == 0) return Status::Ok();
    sealed = active_;
    active_ = std::make_shared<MemTable>();
    immutable_.push_back(sealed);
  }
  std::vector<KvEntry> entries;
  entries.reserve(sealed->EntryCount());
  sealed->VisitAll([&](const KvEntry& e) {
    entries.push_back(e);
    return true;
  });
  auto run = std::make_shared<SortedRun>(std::move(entries));
  {
    WriterMutexLock vlock(version_mu_);
    CFS_SHARED_WRITE(runs_, version_mu_);
    runs_.insert(runs_.begin(), run);  // newest first
    immutable_.erase(std::remove(immutable_.begin(), immutable_.end(), sealed),
                     immutable_.end());
  }
  {
    MutexLock slock(stats_mu_);
    stats_.flushes++;
  }
  MaybeCompactLocked();
  return Status::Ok();
}

void KvStore::MaybeCompactLocked() {
  size_t nruns;
  {
    ReaderMutexLock vlock(version_mu_);
    CFS_SHARED_READ(runs_, version_mu_);
    nruns = runs_.size();
  }
  if (nruns > options_.max_runs_before_compaction) {
    (void)Compact();
  }
}

Status KvStore::Compact() {
  std::vector<std::shared_ptr<SortedRun>> to_merge;
  {
    ReaderMutexLock vlock(version_mu_);
    CFS_SHARED_READ(runs_, version_mu_);
    to_merge = runs_;
  }
  if (to_merge.size() < 2) return Status::Ok();
  uint64_t keep_seq = OldestSnapshotLocked();
  auto merged = SortedRun::Merge(to_merge, keep_seq, /*drop_tombstones=*/true);
  {
    WriterMutexLock vlock(version_mu_);
    CFS_SHARED_WRITE(runs_, version_mu_);
    // Preserve any runs flushed while we merged (they are newer; prepend).
    std::vector<std::shared_ptr<SortedRun>> remaining;
    for (const auto& r : runs_) {
      if (std::find(to_merge.begin(), to_merge.end(), r) == to_merge.end()) {
        remaining.push_back(r);
      }
    }
    remaining.push_back(merged);
    runs_ = std::move(remaining);
  }
  {
    MutexLock slock(stats_mu_);
    stats_.compactions++;
  }
  return Status::Ok();
}

void KvStore::Clear() {
  MutexLock wlock(write_mu_);
  WriterMutexLock vlock(version_mu_);
  active_ = std::make_shared<MemTable>();
  immutable_.clear();
  runs_.clear();
}

uint64_t KvStore::LastSequence() const {
  return seq_.load(std::memory_order_acquire);
}

KvStore::Stats KvStore::stats() const {
  MutexLock lock(stats_mu_);
  CFS_SHARED_READ(stats_, stats_mu_);
  return stats_;
}

}  // namespace cfs
