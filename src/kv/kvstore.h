// KvStore — the embedded ordered key-value engine used by TafDB shard
// replicas and FileStore nodes (the paper uses RocksDB for the latter).
//
// LSM shape: WAL -> active memtable -> flushed sorted runs -> tiered
// compaction into one run. Writes are atomic batches. Reads and range scans
// can be pinned to a snapshot sequence. Recovery replays the WAL.

#ifndef CFS_KV_KVSTORE_H_
#define CFS_KV_KVSTORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/kv/memtable.h"
#include "src/kv/sorted_run.h"
#include "src/wal/wal.h"

namespace cfs {

struct KvOptions {
  size_t memtable_flush_bytes = 4 << 20;
  size_t max_runs_before_compaction = 4;
  WalOptions wal;
  // When false (raft-applied stores), writes skip the engine's own WAL —
  // raft's log already provides durability and replay.
  bool use_wal = true;
};

class WriteBatch {
 public:
  void Put(std::string_view key, std::string_view value);
  void Delete(std::string_view key);
  void Clear() { ops_.clear(); }
  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }

  struct Op {
    ValueType type;
    std::string key;
    std::string value;
  };
  const std::vector<Op>& ops() const { return ops_; }

  std::string Encode() const;
  static StatusOr<WriteBatch> Decode(std::string_view data);

 private:
  std::vector<Op> ops_;
};

class KvStore {
 public:
  explicit KvStore(KvOptions options = {});

  // Opens the WAL and replays it (recovery).
  Status Open();

  Status Write(const WriteBatch& batch, bool sync = true);
  Status Put(std::string_view key, std::string_view value, bool sync = true);
  Status Delete(std::string_view key, bool sync = true);

  // snapshot_seq == UINT64_MAX reads the latest state.
  StatusOr<std::string> Get(std::string_view key,
                            uint64_t snapshot_seq = UINT64_MAX) const;
  bool Contains(std::string_view key,
                uint64_t snapshot_seq = UINT64_MAX) const;

  // Collects live (non-deleted) key/value pairs with key in [start, end),
  // at most `limit` (0 = unlimited).
  std::vector<std::pair<std::string, std::string>> Scan(
      std::string_view start, std::string_view end, size_t limit = 0,
      uint64_t snapshot_seq = UINT64_MAX) const;

  // Number of live keys in [start, end) — used for directory fanout checks.
  size_t CountRange(std::string_view start, std::string_view end,
                    uint64_t snapshot_seq = UINT64_MAX) const;

  // Snapshot management: a snapshot pins every version at or below its
  // sequence against compaction until released.
  uint64_t GetSnapshot();
  void ReleaseSnapshot(uint64_t seq);

  // Maintenance.
  Status Flush();        // active memtable -> sorted run
  Status Compact();      // merge all runs into one
  // Drops every key and version (snapshot restore support). The engine WAL
  // is untouched; raft-applied stores run with use_wal=false.
  void Clear();
  void MaybeCompactLocked();

  uint64_t LastSequence() const;
  Wal* wal() { return &wal_; }

  struct Stats {
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t gets = 0;
    uint64_t scans = 0;
    uint64_t flushes = 0;
    uint64_t compactions = 0;
  };
  Stats stats() const;

 private:
  Status WriteLocked(const WriteBatch& batch, bool sync) REQUIRES(write_mu_);
  uint64_t OldestSnapshotLocked() const;

  KvOptions options_;  // tsa-coverage: allow(immutable after construction)
  Wal wal_;  // tsa-coverage: allow(internally synchronized)

  // Writer lock is the outermost KV lock: held across the WAL append and
  // the structure-list update, so it ranks below kv.version and wal.log.
  Mutex write_mu_{"kv.write", 64};
  // Guards the structure lists (active/immutable/runs pointers).
  mutable SharedMutex version_mu_{"kv.version", 65};
  std::shared_ptr<MemTable> active_ GUARDED_BY(version_mu_);
  std::vector<std::shared_ptr<MemTable>> immutable_ GUARDED_BY(version_mu_);
  // Newest first.
  std::vector<std::shared_ptr<SortedRun>> runs_ GUARDED_BY(version_mu_);

  std::atomic<uint64_t> seq_{0};
  mutable Mutex snapshot_mu_{"kv.snapshot", 66};
  std::multiset<uint64_t> snapshots_ GUARDED_BY(snapshot_mu_);

  mutable Mutex stats_mu_{"kv.stats", 67};
  mutable Stats stats_ GUARDED_BY(stats_mu_);
};

}  // namespace cfs

#endif  // CFS_KV_KVSTORE_H_
