#include "src/kv/sorted_run.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace cfs {

SortedRun::SortedRun(std::vector<KvEntry> entries)
    : entries_(std::move(entries)) {
  for (const auto& e : entries_) {
    min_seq_ = std::min(min_seq_, e.seq);
    max_seq_ = std::max(max_seq_, e.seq);
  }
}

std::optional<KvEntry> SortedRun::Get(std::string_view key,
                                      uint64_t snapshot_seq) const {
  // First entry >= (key, snapshot_seq) in internal order.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [snapshot_seq](const KvEntry& e, std::string_view k) {
        return InternalLess(e.key, e.seq, k, snapshot_seq);
      });
  if (it != entries_.end() && it->key == key) {
    return *it;
  }
  return std::nullopt;
}

void SortedRun::VisitRange(
    std::string_view start, std::string_view end,
    const std::function<bool(const KvEntry&)>& visit) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), start,
                             [](const KvEntry& e, std::string_view k) {
                               return InternalLess(e.key, e.seq, k, UINT64_MAX);
                             });
  for (; it != entries_.end(); ++it) {
    if (!end.empty() && it->key >= end) return;
    if (!visit(*it)) return;
  }
}

std::shared_ptr<SortedRun> SortedRun::Merge(
    const std::vector<std::shared_ptr<SortedRun>>& runs, uint64_t keep_seq,
    bool drop_tombstones) {
  // Heap item: (entry pointer, run index, position).
  struct Cursor {
    const SortedRun* run;
    size_t pos;
    const KvEntry& entry() const { return run->entries_[pos]; }
  };
  auto greater = [](const Cursor& a, const Cursor& b) {
    const KvEntry& ea = a.entry();
    const KvEntry& eb = b.entry();
    return InternalLess(eb.key, eb.seq, ea.key, ea.seq);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
      greater);
  for (const auto& r : runs) {
    if (r && r->size() > 0) {
      heap.push(Cursor{r.get(), 0});
    }
  }

  std::vector<KvEntry> merged;
  std::string current_key;
  bool have_key = false;
  bool kept_at_or_below_keep_seq = false;

  auto flush_tombstone_tail = [&]() {
    // When dropping tombstones, a group whose newest kept version is a
    // tombstone entirely disappears for readers at or below keep_seq; later
    // versions were already appended, so only strip a trailing tombstone
    // whose seq <= keep_seq.
    if (drop_tombstones && !merged.empty() &&
        merged.back().type == ValueType::kDelete &&
        merged.back().key == current_key && merged.back().seq <= keep_seq) {
      merged.pop_back();
    }
  };

  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    const KvEntry& e = c.entry();
    if (!have_key || e.key != current_key) {
      flush_tombstone_tail();
      current_key = e.key;
      have_key = true;
      kept_at_or_below_keep_seq = false;
      merged.push_back(e);
      if (e.seq <= keep_seq) kept_at_or_below_keep_seq = true;
    } else {
      // Same key, strictly older version (internal order is seq desc).
      if (e.seq > keep_seq) {
        merged.push_back(e);
      } else if (!kept_at_or_below_keep_seq) {
        merged.push_back(e);
        kept_at_or_below_keep_seq = true;
      }
      // else: shadowed for every possible reader; drop.
    }
    if (c.pos + 1 < c.run->size()) {
      heap.push(Cursor{c.run, c.pos + 1});
    }
  }
  flush_tombstone_tail();
  return std::make_shared<SortedRun>(std::move(merged));
}

}  // namespace cfs
