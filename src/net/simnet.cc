#include "src/net/simnet.h"

#include <algorithm>

#include "src/common/metrics.h"
#include "src/common/race_detector.h"
#include "src/common/simtime.h"

namespace cfs {
namespace {

thread_local uint64_t t_hops = 0;

uint64_t EdgeKey(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

thread_local uint64_t t_rng_state =
    0x9e3779b97f4a7c15ULL ^
    std::hash<std::thread::id>{}(std::this_thread::get_id());

int64_t Jitter(int64_t base_us, int64_t jitter_pct, uint64_t r) {
  if (jitter_pct <= 0) return base_us;
  int64_t span = base_us * jitter_pct / 100;
  if (span <= 0) return base_us;
  return base_us - span + static_cast<int64_t>(r % (2 * static_cast<uint64_t>(span) + 1));
}

}  // namespace

SimNet::SimNet(NetOptions options)
    : options_(options), nodes_(new Node[kMaxNodes]) {
  static std::atomic<uint64_t> instance{0};
  std::string name = "simnet#" + std::to_string(instance.fetch_add(1));
  probe_handle_ = MetricsRegistry::Global().RegisterProbe(
      std::move(name), [this] { return ProbeSamples(); });
}

SimNet::~SimNet() {
  MetricsRegistry::Global().UnregisterProbe(probe_handle_);
}

NodeId SimNet::AddNode(std::string name, uint32_t server) {
  MutexLock lock(mu_);
  size_t id = num_nodes_.load(std::memory_order_relaxed);
  CFS_CHECK(id < kMaxNodes);
  nodes_[id].name = std::move(name);
  nodes_[id].server = server;
  nodes_[id].trace_node =
      trace::TraceCollector::Global().InternNode(nodes_[id].name);
  nodes_[id].calls = std::make_unique<std::atomic<uint64_t>>(0);
  // Publish: concurrent readers (raft replicators mid-call while a client
  // node registers) only dereference slots below num_nodes_.
  num_nodes_.store(id + 1, std::memory_order_release);
  return static_cast<NodeId>(id);
}

uint32_t SimNet::ServerOf(NodeId node) const {
  CFS_CHECK(node < num_nodes_.load(std::memory_order_acquire));
  return nodes_[node].server;
}

const std::string& SimNet::NameOf(NodeId node) const {
  CFS_CHECK(node < num_nodes_.load(std::memory_order_acquire));
  return nodes_[node].name;
}

size_t SimNet::NumNodes() const {
  return num_nodes_.load(std::memory_order_acquire);
}

void SimNet::SetNodeDown(NodeId node, bool down) {
  MutexLock lock(mu_);
  CFS_SHARED_WRITE(down_nodes_, mu_);
  if (down) {
    down_nodes_.insert(node);
  } else {
    down_nodes_.erase(node);
  }
  has_faults_.store(!down_nodes_.empty() || !partitions_.empty());
}

void SimNet::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  auto key = std::minmax(a, b);
  MutexLock lock(mu_);
  if (partitioned) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
  has_faults_.store(!down_nodes_.empty() || !partitions_.empty());
}

void SimNet::HealAll() {
  MutexLock lock(mu_);
  down_nodes_.clear();
  partitions_.clear();
  has_faults_.store(false);
}

Status SimNet::BeginCall(NodeId from, NodeId to, bool inject_latency) {
  if (has_faults_.load(std::memory_order_acquire)) {
    MutexLock lock(mu_);
    CFS_SHARED_READ(down_nodes_, mu_);
    if (down_nodes_.count(to) != 0) {
      return Status::Unavailable("node down: " + nodes_[to].name);
    }
    if (down_nodes_.count(from) != 0) {
      return Status::Unavailable("caller down: " + nodes_[from].name);
    }
    if (partitions_.count(std::minmax(from, to)) != 0) {
      return Status::Unavailable("network partition");
    }
  }
#ifdef CFS_LOCK_ORDER_TRACKING
  // Critical-section scope audit: charge this round trip to every lock the
  // calling thread holds (and report if any is kNeverAcrossRpc). Must run
  // with the fault-check lock above already released — simnet.node itself
  // is a never-across-rpc class.
  lock_order::OnRpcEdge(nodes_[from].name.c_str(), nodes_[to].name.c_str());
#endif
  // Preemption point for schedule fuzzing: an RPC edge is where a task's
  // timing slides against its peers (DESIGN.md §12).
  simtime::FuzzPoint(simtime::FuzzKind::kRpcEdge);
  int64_t injected_us = inject_latency ? InjectLatency(from, to) : 0;
  total_calls_.fetch_add(1, std::memory_order_relaxed);
  if (injected_us > 0) {
    total_injected_us_.fetch_add(injected_us, std::memory_order_relaxed);
  }
  t_hops++;
  OpTrace::AddPhase(Phase::kRpc, injected_us);
  if (trace::Active()) {
    trace::RpcEvent(nodes_[from].name.c_str(), nodes_[to].name.c_str(),
                    nodes_[to].trace_node, injected_us);
  }
  nodes_[to].calls->fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(edge_mu_);
    CFS_SHARED_WRITE(edges_, edge_mu_);
    EdgeStat& edge = edges_[EdgeKey(from, to)];
    edge.calls++;
    edge.injected_us += injected_us;
  }
  return Status::Ok();
}

size_t SimNet::Multicast(NodeId from, const std::vector<NodeId>& to,
                         const std::function<void(NodeId)>& fn) {
  size_t delivered = 0;
  bool latency_injected = false;
  for (NodeId dest : to) {
    if (has_faults_.load(std::memory_order_acquire)) {
      MutexLock lock(mu_);
      if (down_nodes_.count(dest) != 0 || down_nodes_.count(from) != 0 ||
          partitions_.count(std::minmax(from, dest)) != 0) {
        continue;
      }
    }
#ifdef CFS_LOCK_ORDER_TRACKING
    lock_order::OnRpcEdge(nodes_[from].name.c_str(),
                          nodes_[dest].name.c_str());
#endif
    simtime::FuzzPoint(simtime::FuzzKind::kRpcEdge);
    // The concurrent fan-out completes when the slowest call does: charge
    // one round trip of injected latency for the whole batch.
    int64_t injected_us = latency_injected ? 0 : InjectLatency(from, dest);
    latency_injected = true;
    total_calls_.fetch_add(1, std::memory_order_relaxed);
    if (injected_us > 0) {
      total_injected_us_.fetch_add(injected_us, std::memory_order_relaxed);
    }
    t_hops++;
    OpTrace::AddPhase(Phase::kRpc, injected_us);
    if (trace::Active()) {
      trace::RpcEvent(nodes_[from].name.c_str(), nodes_[dest].name.c_str(),
                      nodes_[dest].trace_node, injected_us);
    }
    nodes_[dest].calls->fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(edge_mu_);
      CFS_SHARED_WRITE(edges_, edge_mu_);
      EdgeStat& edge = edges_[EdgeKey(from, dest)];
      edge.calls++;
      edge.injected_us += injected_us;
    }
    {
      trace::NodeScope scope(nodes_[dest].trace_node);
      fn(dest);
    }
    delivered++;
  }
  return delivered;
}

int64_t SimNet::InjectLatency(NodeId from, NodeId to) {
  if (options_.mode == LatencyMode::kZero) return 0;
  int64_t base = (nodes_[from].server == nodes_[to].server)
                     ? options_.same_node_rtt_us
                     : options_.cross_node_rtt_us;
  if (options_.mode == LatencyMode::kVirtual) {
    simtime::Scheduler* sched = simtime::Current();
    // Off the scheduler thread (setup/population, stray background work)
    // there is no virtual clock to charge; the call is free, like kZero.
    if (sched == nullptr) return 0;
    int64_t us = Jitter(base, options_.jitter_pct, sched->NextRand());
    sched->AdvanceUs(us);
    return us > 0 ? us : 0;
  }
  int64_t us = Jitter(base, options_.jitter_pct, SplitMix64(t_rng_state));
  if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
  return us > 0 ? us : 0;
}

uint64_t SimNet::CallsTo(NodeId node) const {
  CFS_CHECK(node < num_nodes_.load(std::memory_order_acquire));
  return nodes_[node].calls->load();
}

uint64_t SimNet::CallsBetween(NodeId from, NodeId to) const {
  MutexLock lock(edge_mu_);
  CFS_SHARED_READ(edges_, edge_mu_);
  auto it = edges_.find(EdgeKey(from, to));
  return it == edges_.end() ? 0 : it->second.calls;
}

int64_t SimNet::TotalInjectedLatencyUs() const {
  return total_injected_us_.load(std::memory_order_relaxed);
}

std::map<std::pair<NodeId, NodeId>, SimNet::EdgeStat> SimNet::EdgeStats()
    const {
  MutexLock lock(edge_mu_);
  CFS_SHARED_READ(edges_, edge_mu_);
  std::map<std::pair<NodeId, NodeId>, EdgeStat> out;
  for (const auto& [key, stat] : edges_) {
    out[{static_cast<NodeId>(key >> 32), static_cast<NodeId>(key)}] = stat;
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> SimNet::ProbeSamples() const {
  std::vector<std::pair<std::string, int64_t>> samples;
  samples.emplace_back("total_calls", static_cast<int64_t>(TotalCalls()));
  samples.emplace_back("total_injected_us", TotalInjectedLatencyUs());
  auto edges = EdgeStats();
  // Published slots are immutable; snapshot the names without any lock.
  size_t n = num_nodes_.load(std::memory_order_acquire);
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; i++) names.push_back(nodes_[i].name);
  for (const auto& [edge, stat] : edges) {
    const std::string& from = names[edge.first];
    const std::string& to = names[edge.second];
    samples.emplace_back("calls." + from + "->" + to,
                         static_cast<int64_t>(stat.calls));
    if (stat.injected_us > 0) {
      samples.emplace_back("injected_us." + from + "->" + to,
                           stat.injected_us);
    }
  }
  return samples;
}

void SimNet::ResetStats() {
  total_calls_.store(0);
  total_injected_us_.store(0);
  size_t n = num_nodes_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; i++) {
    nodes_[i].calls->store(0);
  }
  MutexLock edge_lock(edge_mu_);
  edges_.clear();
}

uint32_t SimNet::TraceNodeOf(NodeId node) const {
  CFS_CHECK(node < num_nodes_.load(std::memory_order_acquire));
  return nodes_[node].trace_node;
}

void SimNet::ResetThreadHops() { t_hops = 0; }
uint64_t SimNet::ThreadHops() { return t_hops; }

}  // namespace cfs
