#include "src/net/simnet.h"

#include <algorithm>
#include <cassert>

namespace cfs {
namespace {

thread_local uint64_t t_hops = 0;

thread_local uint64_t t_rng_state =
    0x9e3779b97f4a7c15ULL ^
    std::hash<std::thread::id>{}(std::this_thread::get_id());

int64_t Jitter(int64_t base_us, int64_t jitter_pct) {
  if (jitter_pct <= 0) return base_us;
  uint64_t r = SplitMix64(t_rng_state);
  int64_t span = base_us * jitter_pct / 100;
  if (span <= 0) return base_us;
  return base_us - span + static_cast<int64_t>(r % (2 * static_cast<uint64_t>(span) + 1));
}

}  // namespace

SimNet::SimNet(NetOptions options) : options_(options) {}

NodeId SimNet::AddNode(std::string name, uint32_t server) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), server,
                        std::make_unique<std::atomic<uint64_t>>(0)});
  return id;
}

uint32_t SimNet::ServerOf(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(node < nodes_.size());
  return nodes_[node].server;
}

const std::string& SimNet::NameOf(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(node < nodes_.size());
  return nodes_[node].name;
}

size_t SimNet::NumNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

void SimNet::SetNodeDown(NodeId node, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  if (down) {
    down_nodes_.insert(node);
  } else {
    down_nodes_.erase(node);
  }
  has_faults_.store(!down_nodes_.empty() || !partitions_.empty());
}

void SimNet::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  auto key = std::minmax(a, b);
  std::lock_guard<std::mutex> lock(mu_);
  if (partitioned) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
  has_faults_.store(!down_nodes_.empty() || !partitions_.empty());
}

void SimNet::HealAll() {
  std::lock_guard<std::mutex> lock(mu_);
  down_nodes_.clear();
  partitions_.clear();
  has_faults_.store(false);
}

Status SimNet::BeginCall(NodeId from, NodeId to) {
  if (has_faults_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_nodes_.count(to) != 0) {
      return Status::Unavailable("node down: " + nodes_[to].name);
    }
    if (down_nodes_.count(from) != 0) {
      return Status::Unavailable("caller down: " + nodes_[from].name);
    }
    if (partitions_.count(std::minmax(from, to)) != 0) {
      return Status::Unavailable("network partition");
    }
  }
  InjectLatency(from, to);
  total_calls_.fetch_add(1, std::memory_order_relaxed);
  t_hops++;
  // nodes_ never shrinks; index read without the lock is safe after AddNode.
  nodes_[to].calls->fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void SimNet::InjectLatency(NodeId from, NodeId to) {
  if (options_.mode == LatencyMode::kZero) return;
  int64_t base = (nodes_[from].server == nodes_[to].server)
                     ? options_.same_node_rtt_us
                     : options_.cross_node_rtt_us;
  int64_t us = Jitter(base, options_.jitter_pct);
  if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

uint64_t SimNet::CallsTo(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(node < nodes_.size());
  return nodes_[node].calls->load();
}

void SimNet::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  total_calls_.store(0);
  for (auto& n : nodes_) {
    n.calls->store(0);
  }
}

void SimNet::ResetThreadHops() { t_hops = 0; }
uint64_t SimNet::ThreadHops() { return t_hops; }

}  // namespace cfs
