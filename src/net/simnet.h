// SimNet — the in-process cluster fabric.
//
// Every CFS/baseline service instance is registered as a node. A remote
// procedure call between two services goes through SimNet::Call, which
//   1. checks fault state (node down, pairwise partition) and fails the call
//      with kUnavailable without invoking the handler,
//   2. injects the configured network round-trip latency on the caller
//      thread, per LatencyMode: kZero charges nothing (unit tests), kSleep
//      blocks the OS thread for the jittered RTT (wall-clock benchmarks),
//      kVirtual accrues the jittered RTT onto the driving
//      simtime::Scheduler's virtual clock — no thread ever sleeps, jitter
//      draws from the scheduler's seeded PRNG, and a thread not driven by
//      a scheduler (background setup) charges nothing (DESIGN.md §11),
//   3. counts the hop, globally, per destination node, per (from,to) edge
//      (with cumulative injected latency), in a thread-local counter so
//      tests can assert exact RPC counts per operation, and as a kRpc stamp
//      on the calling thread's OpTrace.
//
// The handler then runs synchronously on the caller's thread; services are
// passive, internally synchronized objects. Server-side CPU queueing is not
// modelled (see DESIGN.md §5) — lock queueing and raft-log serialization,
// the effects the paper studies, are modelled by the services themselves.
//
// Each SimNet registers a dump-time probe ("simnet#<n>") with the global
// MetricsRegistry exposing total/per-edge call counts and injected latency.

#ifndef CFS_NET_SIMNET_H_
#define CFS_NET_SIMNET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/common/trace_event.h"

namespace cfs {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

enum class LatencyMode {
  kZero,     // no injected latency: fast deterministic unit tests
  kSleep,    // real sleep for the round-trip time: wall-clock benchmarks
  kVirtual,  // advance the driving simtime::Scheduler: simulated benchmarks
};

struct NetOptions {
  LatencyMode mode = LatencyMode::kZero;
  int64_t same_node_rtt_us = 5;     // loopback / same physical server
  int64_t cross_node_rtt_us = 150;  // datacenter network round trip
  int64_t jitter_pct = 10;          // uniform +/- jitter on each call
  // kVirtual jitter draws from the driving scheduler's seeded stream, so
  // replay determinism needs the Scheduler seed, not this one; kSleep
  // jitter uses a per-thread stream this seeds only notionally.
  uint64_t seed = 42;
};

class SimNet {
 public:
  // Per-(from,to) directed-edge traffic accounting.
  struct EdgeStat {
    uint64_t calls = 0;
    int64_t injected_us = 0;  // cumulative injected round-trip latency
  };

  explicit SimNet(NetOptions options = {});
  ~SimNet();

  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  // Registers a node (a service instance placement). `server` identifies the
  // physical server the node lives on; nodes sharing a server communicate at
  // same-node latency (the paper co-deploys metadata and data services).
  NodeId AddNode(std::string name, uint32_t server);

  uint32_t ServerOf(NodeId node) const;
  const std::string& NameOf(NodeId node) const;
  size_t NumNodes() const;

  // Fault injection.
  void SetNodeDown(NodeId node, bool down);
  void SetPartitioned(NodeId a, NodeId b, bool partitioned);
  void HealAll();

  // Performs delivery checks and latency injection for one round trip.
  // `inject_latency=false` still does fault checks and hop/edge accounting
  // but charges zero latency — for serialized fan-outs that model one
  // concurrent round and already charged the round trip on another call
  // (cf. Multicast; used by inline raft replication and sim-mode 2PC).
  Status BeginCall(NodeId from, NodeId to, bool inject_latency = true);

  // Invokes `fn` on the destination as one RPC round trip. If delivery
  // fails, returns the delivery error (fn's return type must be
  // constructible from Status: Status or StatusOr<T>). The handler runs on
  // the caller's thread under a trace::NodeScope for the destination, so
  // spans it emits are attributed to the destination node — that is how a
  // causal trace "propagates" across SimNet (cf. src/common/trace_event.h).
  template <typename Fn>
  auto Call(NodeId from, NodeId to, Fn&& fn, bool inject_latency = true)
      -> decltype(fn()) {
    Status delivery = BeginCall(from, to, inject_latency);
    if (!delivery.ok()) return delivery;
    trace::NodeScope scope(TraceNodeOf(to));
    return std::forward<Fn>(fn)();
  }

  // One concurrent fan-out round: invokes `fn(to)` for every deliverable
  // destination, with per-destination fault checks and hop/edge accounting,
  // but the round-trip latency of a single call injected once — the sender
  // issues all calls in parallel and joins the slowest. Undeliverable
  // destinations are skipped (fan-out is best-effort; used for cache
  // invalidation broadcast, where a down client simply restarts cold).
  // Returns the number of destinations reached.
  size_t Multicast(NodeId from, const std::vector<NodeId>& to,
                   const std::function<void(NodeId)>& fn);

  // Stats.
  uint64_t TotalCalls() const { return total_calls_.load(); }
  uint64_t CallsTo(NodeId node) const;
  uint64_t CallsBetween(NodeId from, NodeId to) const;
  int64_t TotalInjectedLatencyUs() const;
  std::map<std::pair<NodeId, NodeId>, EdgeStat> EdgeStats() const;
  void ResetStats();

  // Thread-local hop counter: reset before an op, read after, to assert how
  // many RPCs the op issued.
  static void ResetThreadHops();
  static uint64_t ThreadHops();

  // The destination's interned trace-node id (TraceCollector::InternNode),
  // for attributing spans at direct-BeginCall sites that invoke the
  // destination object without going through Call().
  uint32_t TraceNodeOf(NodeId node) const;

  const NetOptions& options() const { return options_; }
  void set_mode(LatencyMode mode) { options_.mode = mode; }

 private:
  struct Node {
    std::string name;
    uint32_t server = 0;
    // Interned trace identity (stable across SimNet instances: keyed by
    // name, so "tafdb.shard1" is the same trace node in every run).
    uint32_t trace_node = UINT32_MAX;
    std::unique_ptr<std::atomic<uint64_t>> calls;
  };

  // Returns the injected round-trip latency in microseconds (0 in kZero,
  // and 0 in kVirtual off the scheduler thread).
  int64_t InjectLatency(NodeId from, NodeId to);
  std::vector<std::pair<std::string, int64_t>> ProbeSamples() const;

  // Node table capacity. Fixed so the hot path (BeginCall) can index nodes_
  // without a lock: slots never move, a slot is fully initialized before
  // num_nodes_ publishes it (release/acquire), and published slots are
  // immutable apart from their atomic call counter. Sized for the
  // simulated-client benches: every simulated client registers a node, and
  // the Fig 10 sim sweep runs tens of thousands of them.
  static constexpr size_t kMaxNodes = 65536;

  NetOptions options_;  // tsa-coverage: allow(immutable after construction)
  // Serializes AddNode and guards the fault sets. RPC handlers run with no
  // SimNet lock held, so any service lock may be acquired "across" a call.
  mutable Mutex mu_{"simnet.node", 80};
  // Fixed array; slots at index < num_nodes_ are published immutable by
  // AddNode's release store (see comment there), so readers need no lock.
  // tsa-coverage: allow(publish-then-immutable via num_nodes_ acq/rel)
  std::unique_ptr<Node[]> nodes_;
  std::atomic<size_t> num_nodes_{0};
  std::set<NodeId> down_nodes_ GUARDED_BY(mu_);
  std::set<std::pair<NodeId, NodeId>> partitions_ GUARDED_BY(mu_);
  std::atomic<bool> has_faults_{false};
  std::atomic<uint64_t> total_calls_{0};
  std::atomic<int64_t> total_injected_us_{0};
  // Edge table, keyed (from << 32) | to. Guarded separately from mu_ so
  // edge updates never serialize against fault-set reads; never acquire
  // another lock while holding edge_mu_ (it is a leaf, rank-enforced).
  mutable Mutex edge_mu_{"simnet.edge", 81};
  std::map<uint64_t, EdgeStat> edges_ GUARDED_BY(edge_mu_);
  uint64_t probe_handle_ = 0;
};

}  // namespace cfs

#endif  // CFS_NET_SIMNET_H_
