// inode_table schema (paper §4.1, Figure 6).
//
// All namespace metadata lives in one table whose composite primary key is
// <kID, kStr>:
//   - directory/file *id records*:  kID = parent inode id, kStr = name,
//     carrying the child's inode id and type;
//   - directory *attribute records*: kID = the directory's own inode id,
//     kStr = the reserved "/_ATTR", carrying children/links/size/mtime/...
//
// Keys encode kID big-endian so the KV store's lexicographic order equals
// (kID, kStr) order: a directory's attribute record and all its children's
// id records form one contiguous key range, which range partitioning then
// keeps on a single shard — the property that makes the paper's metadata
// requests single-shard.
//
// Values are encoded with a field-presence bitmap; unused fields are absent
// (the paper's "unused fields set to NULL").

#ifndef CFS_TAFDB_SCHEMA_H_
#define CFS_TAFDB_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace cfs {

using InodeId = uint64_t;
inline constexpr InodeId kInvalidInode = 0;
inline constexpr InodeId kRootInode = 1;

// Reserved kStr for attribute records. '/' cannot appear in a file name, so
// this can never collide with a real directory entry, and it sorts before
// most printable names (irrelevant for correctness, handy when scanning).
inline constexpr std::string_view kAttrKeyStr = "/_ATTR";

enum class InodeType : uint8_t {
  kNone = 0,
  kFile = 1,
  kDirectory = 2,
  kSymlink = 3,
};

struct InodeKey {
  InodeId kid = kInvalidInode;
  std::string kstr;

  static InodeKey IdRecord(InodeId parent, std::string_view name) {
    return InodeKey{parent, std::string(name)};
  }
  static InodeKey AttrRecord(InodeId self) {
    return InodeKey{self, std::string(kAttrKeyStr)};
  }

  bool IsAttr() const { return kstr == kAttrKeyStr; }

  std::string Encode() const;
  static StatusOr<InodeKey> Decode(std::string_view encoded);

  friend bool operator==(const InodeKey& a, const InodeKey& b) {
    return a.kid == b.kid && a.kstr == b.kstr;
  }
  friend bool operator<(const InodeKey& a, const InodeKey& b) {
    if (a.kid != b.kid) return a.kid < b.kid;
    return a.kstr < b.kstr;
  }
};

// Prefix of every key with the given kID; [DirLowerBound, DirUpperBound)
// brackets a directory's attribute record plus all its children.
std::string DirLowerBound(InodeId kid);
std::string DirUpperBound(InodeId kid);

// One row of inode_table. Field presence is tracked explicitly so partial
// records (id records vs attribute records) round-trip exactly.
struct InodeRecord {
  InodeKey key;

  // Field presence bits.
  enum Field : uint32_t {
    kFieldId = 1u << 0,
    kFieldType = 1u << 1,
    kFieldChildren = 1u << 2,
    kFieldLinks = 1u << 3,
    kFieldSize = 1u << 4,
    kFieldMtime = 1u << 5,
    kFieldCtime = 1u << 6,
    kFieldMode = 1u << 7,
    kFieldUid = 1u << 8,
    kFieldGid = 1u << 9,
    kFieldSymlink = 1u << 10,
    kFieldLwwTs = 1u << 11,
    kFieldParent = 1u << 12,
  };
  uint32_t present = 0;

  InodeId id = kInvalidInode;  // id records: the child's inode id
  InodeType type = InodeType::kNone;
  int64_t children = 0;  // attribute records of directories
  int64_t links = 0;
  int64_t size = 0;
  uint64_t mtime = 0;
  uint64_t ctime = 0;
  uint32_t mode = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
  std::string symlink_target;
  // Timestamp of the last LWW write applied to this record (§4.2
  // last-writer-wins reconciliation).
  uint64_t lww_ts = 0;
  // Directory attribute records carry a parent backpointer so the Renamer
  // can walk ancestor chains for orphan-loop detection (§4.3).
  InodeId parent = kInvalidInode;

  bool Has(Field f) const { return (present & f) != 0; }
  void Set(Field f) { present |= f; }

  // Builders for the two record shapes.
  static InodeRecord MakeIdRecord(InodeId parent, std::string_view name,
                                  InodeId id, InodeType type);
  static InodeRecord MakeDirAttr(InodeId self, uint64_t now_ts, uint32_t mode,
                                 uint32_t uid, uint32_t gid,
                                 InodeId parent = kInvalidInode);
  static InodeRecord MakeFileAttr(InodeId self, uint64_t now_ts, uint32_t mode,
                                  uint32_t uid, uint32_t gid);

  std::string EncodeValue() const;
  static StatusOr<InodeRecord> DecodeValue(const InodeKey& key,
                                           std::string_view encoded);
};

}  // namespace cfs

#endif  // CFS_TAFDB_SCHEMA_H_
