// A TafDB metadata shard: a raft group of backend-server replicas, each
// applying ShardCommands to a local KV store holding a contiguous
// <kID, kStr> range of inode_table.
//
// Two execution paths coexist (the paper's point of comparison):
//   1. the CFS path — ExecutePrimitive proposes a single-shard atomic
//      primitive through raft; predicates and merges are evaluated inside
//      the serial apply, with no row locks;
//   2. the lock-based path used by the baselines and CFS-base — callers
//      hold row locks in the shard's LockManager across interactive reads,
//      then commit buffered writes either directly (single-shard) or via
//      the 2PC participant hooks (Stage/Prepare/Commit/Abort), each phase
//      a raft proposal of its own.
//
// Reads are served from the current leader's state machine.

#ifndef CFS_TAFDB_SHARD_H_
#define CFS_TAFDB_SHARD_H_

#include <deque>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/load_gate.h"
#include "src/common/thread_annotations.h"
#include "src/kv/kvstore.h"
#include "src/net/simnet.h"
#include "src/raft/raft.h"
#include "src/tafdb/primitives.h"
#include "src/txn/lock_manager.h"
#include "src/txn/two_phase_commit.h"

namespace cfs {

// The raft command envelope for shard state machines.
struct ShardCommand {
  enum class Kind : uint8_t {
    kPrimitive = 0,  // execute op atomically now
    kPrepare = 1,    // stage op durably under txn (2PC vote)
    kCommitTxn = 2,  // apply the staged op
    kAbortTxn = 3,   // drop the staged op
  };

  Kind kind = Kind::kPrimitive;
  TxnId txn = 0;
  // Unique per logical request; reused verbatim on retries so the state
  // machine can deduplicate (exactly-once apply under leadership churn,
  // where a retried proposal may otherwise commit twice).
  uint64_t request_id = 0;
  PrimitiveOp op;

  std::string Encode() const;
  static StatusOr<ShardCommand> Decode(std::string_view data);
};

// Replicated state machine: KV store + staged 2PC transactions.
class TafDbShardSm : public StateMachine {
 public:
  explicit TafDbShardSm(KvOptions kv_options);

  std::string Apply(LogIndex index, std::string_view command) override;
  // Log compaction support: serializes/replaces the full shard state
  // (live records, staged transactions, exactly-once bookkeeping).
  std::string Snapshot() override;
  Status Restore(std::string_view state) override;

  const KvStore& kv() const { return kv_; }
  KvStore* mutable_kv() { return &kv_; }

 private:
  KvStore kv_;
  std::map<TxnId, PrimitiveOp> staged_;
  // Exactly-once bookkeeping: request id -> cached encoded result, bounded.
  std::map<uint64_t, std::string> applied_requests_;
  std::deque<uint64_t> applied_order_;
};

struct TafDbShardOptions {
  RaftOptions raft;
  KvOptions kv;
  size_t replicas = 3;
  // Server-side processing cost per read, modelling the heavier
  // database-table path of TafDB relative to FileStore's raw KV lookups
  // (§5.2: "the faster processing enabled by FileStore, compared to
  // TafDB"). Charged in both latency-injecting modes (kSleep: real sleep
  // bounded by a per-shard concurrency limit so a hot shard queues,
  // Fig 12; kVirtual: accrued on the virtual clock, no queueing —
  // DESIGN.md §11); skipped in kZero unit tests.
  int64_t read_processing_us = 150;
  size_t read_concurrency = 2;
  // Extra server-side cost of LOCK-BASED transactional commits
  // (CommitLocal / Prepare / Commit) relative to single-shard atomic
  // primitives — the paper's §4.2 claim: stored-procedure-style
  // transactions execute statement by statement through the SQL layer,
  // while primitives are single commands "made even faster". Charged in
  // both latency-injecting modes, like read_processing_us; skipped in
  // kZero unit tests.
  int64_t txn_write_processing_us = 250;
  size_t txn_write_concurrency = 16;
};

class TafDbShard : public TxnParticipant {
 public:
  // `servers` lists the physical servers hosting the replicas.
  TafDbShard(SimNet* net, std::string name, std::vector<uint32_t> servers,
             TafDbShardOptions options);

  Status Start();
  void Stop();

  // Front-door net id for RPC latency accounting: the current leader
  // replica (falls back to replica 0 during elections).
  NodeId ServiceNetId() const;

  // ---- CFS path ----
  PrimitiveResult ExecutePrimitive(const PrimitiveOp& op);

  // ---- reads (leader-served) ----
  StatusOr<InodeRecord> Get(const InodeKey& key) const;
  // Children of `kid` with name > after (exclusive), attr record excluded.
  StatusOr<std::vector<InodeRecord>> ScanDir(InodeId kid,
                                             const std::string& after,
                                             size_t limit) const;

  // ---- lock-based transaction path (baselines, CFS-base) ----
  LockManager* locks() { return &locks_; }
  // Single-shard commit of a validated write set (one raft round).
  PrimitiveResult CommitLocal(const PrimitiveOp& write_set);
  // Buffers a write set for a distributed txn; made durable by Prepare.
  Status Stage(TxnId txn, PrimitiveOp write_set);
  // TxnParticipant (each phase is one raft proposal):
  Status Prepare(TxnId txn) override;
  Status Commit(TxnId txn) override;
  Status Abort(TxnId txn) override;
  NodeId ParticipantNetId() const override { return ServiceNetId(); }

  // ---- directory epoch coherence hints (client dentry caches) ----
  // A per-directory mutation counter kept on the shard owning the
  // directory's entry list (same kID routing as its id records). Mutating
  // ops bump it; client engines tag cached dentries with the epoch observed
  // at fill time and treat a mismatch as staleness on first touch. The
  // epochs are unreplicated soft state (coherence hints, not data): after a
  // shard restart they reset to zero, which merely forces clients to
  // revalidate — the tag comparison is equality, not ordering.
  uint64_t DirEpoch(InodeId dir) const;
  uint64_t BumpDirEpoch(InodeId dir);  // returns the new epoch

  // ---- GC change capture ----
  std::vector<std::pair<LogIndex, ShardCommand>> ReadCommittedSince(
      LogIndex from, size_t max) const;

  RaftGroup* raft_group() { return group_.get(); }
  const std::string& name() const { return name_; }

 private:
  const TafDbShardSm* LeaderSm() const;
  // Proposes a kPrimitive command through raft (shared by the CFS primitive
  // path and the lock-based single-shard commit).
  PrimitiveResult ProposePrimitive(const PrimitiveOp& op);
  void ReadProcessingGate() const;

  void TxnWriteProcessingGate() const;

  SimNet* net_;  // tsa-coverage: allow(immutable after construction)
  std::string name_;  // tsa-coverage: allow(immutable after construction)
  // Built by Start() before any request is routed here.
  // tsa-coverage: allow(start/stop lifecycle only)
  std::unique_ptr<RaftGroup> group_;
  LoadGate read_gate_;  // tsa-coverage: allow(internally synchronized)
  LoadGate txn_write_gate_;  // tsa-coverage: allow(internally synchronized)
  LockManager locks_;  // tsa-coverage: allow(internally synchronized)
  // Leaf: released before any raft proposal.
  Mutex staged_mu_{"tafdb.staged", 62};
  // Service-side buffer pre-Prepare.
  std::map<TxnId, PrimitiveOp> staged_ GUARDED_BY(staged_mu_);
  std::atomic<uint64_t> request_seq_{1};
  // Directory epochs: read-mostly (every cache-miss read consults one),
  // written only by namespace mutations. Leaf.
  mutable SharedMutex epoch_mu_{"tafdb.epoch", 63};
  std::unordered_map<InodeId, uint64_t> dir_epochs_ GUARDED_BY(epoch_mu_);
};

}  // namespace cfs

#endif  // CFS_TAFDB_SHARD_H_
