#include "src/tafdb/shard.h"

#include "src/common/encoding.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/race_detector.h"

namespace cfs {
namespace {

// Counts the primitive (single-shard atomic) path vs. the lock-based txn
// path — the split the paper's §3.2 argument is about.
struct TafDbMetrics {
  Counter* primitives;
  Counter* txn_commits;
  Counter* prepares;
  Counter* aborts;
  Counter* reads;
};

TafDbMetrics& Metrics() {
  static TafDbMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return TafDbMetrics{r.GetCounter("tafdb.primitives"),
                        r.GetCounter("tafdb.txn_commits"),
                        r.GetCounter("tafdb.prepares"),
                        r.GetCounter("tafdb.aborts"),
                        r.GetCounter("tafdb.reads")};
  }();
  return m;
}

}  // namespace

std::string ShardCommand::Encode() const {
  std::string out;
  out.push_back(static_cast<char>(kind));
  PutVarint64(&out, txn);
  PutVarint64(&out, request_id);
  PutLengthPrefixed(&out, op.Encode());
  return out;
}

StatusOr<ShardCommand> ShardCommand::Decode(std::string_view data) {
  if (data.empty()) return Status::Corruption("empty shard command");
  ShardCommand cmd;
  cmd.kind = static_cast<Kind>(data[0]);
  Decoder dec(data.substr(1));
  std::string_view op_raw;
  if (!dec.GetVarint64(&cmd.txn) || !dec.GetVarint64(&cmd.request_id) ||
      !dec.GetLengthPrefixed(&op_raw)) {
    return Status::Corruption("shard command truncated");
  }
  auto op = PrimitiveOp::Decode(op_raw);
  if (!op.ok()) return op.status();
  cmd.op = std::move(op).value();
  return cmd;
}

TafDbShardSm::TafDbShardSm(KvOptions kv_options) : kv_(std::move(kv_options)) {
  (void)kv_.Open();
}

std::string TafDbShardSm::Apply(LogIndex, std::string_view command) {
  auto decoded = ShardCommand::Decode(command);
  if (!decoded.ok()) {
    PrimitiveResult r;
    r.status = decoded.status();
    return r.Encode();
  }
  ShardCommand& cmd = *decoded;
  // Exactly-once: a retried proposal that already applied replays its
  // original result instead of re-executing.
  if (cmd.request_id != 0) {
    auto it = applied_requests_.find(cmd.request_id);
    if (it != applied_requests_.end()) {
      return it->second;
    }
  }
  PrimitiveResult result;
  switch (cmd.kind) {
    case ShardCommand::Kind::kPrimitive:
      result = ExecutePrimitive(cmd.op, &kv_);
      break;
    case ShardCommand::Kind::kPrepare:
      staged_[cmd.txn] = std::move(cmd.op);
      result.status = Status::Ok();
      break;
    case ShardCommand::Kind::kCommitTxn: {
      auto it = staged_.find(cmd.txn);
      if (it == staged_.end()) {
        result.status = Status::NotFound("no staged txn");
      } else {
        result = ExecutePrimitive(it->second, &kv_);
        staged_.erase(it);
      }
      break;
    }
    case ShardCommand::Kind::kAbortTxn:
      staged_.erase(cmd.txn);
      result.status = Status::Ok();
      break;
  }
  std::string encoded = result.Encode();
  if (cmd.request_id != 0) {
    applied_requests_.emplace(cmd.request_id, encoded);
    applied_order_.push_back(cmd.request_id);
    while (applied_order_.size() > (1u << 16)) {
      applied_requests_.erase(applied_order_.front());
      applied_order_.pop_front();
    }
  }
  return encoded;
}

std::string TafDbShardSm::Snapshot() {
  std::string out;
  auto rows = kv_.Scan("", "");
  PutVarint64(&out, rows.size());
  for (const auto& [key, value] : rows) {
    PutLengthPrefixed(&out, key);
    PutLengthPrefixed(&out, value);
  }
  PutVarint64(&out, staged_.size());
  for (const auto& [txn, op] : staged_) {
    PutVarint64(&out, txn);
    PutLengthPrefixed(&out, op.Encode());
  }
  PutVarint64(&out, applied_order_.size());
  for (uint64_t id : applied_order_) {
    PutVarint64(&out, id);
    PutLengthPrefixed(&out, applied_requests_[id]);
  }
  return out;
}

Status TafDbShardSm::Restore(std::string_view state) {
  Decoder dec(state);
  uint64_t rows, staged, dedup;
  if (!dec.GetVarint64(&rows)) return Status::Corruption("snapshot rows");
  kv_.Clear();
  WriteBatch batch;
  for (uint64_t i = 0; i < rows; i++) {
    std::string key, value;
    if (!dec.GetLengthPrefixed(&key) || !dec.GetLengthPrefixed(&value)) {
      return Status::Corruption("snapshot row truncated");
    }
    batch.Put(key, value);
    if (batch.size() >= 1024) {
      CFS_RETURN_IF_ERROR(kv_.Write(batch, /*sync=*/false));
      batch.Clear();
    }
  }
  CFS_RETURN_IF_ERROR(kv_.Write(batch, /*sync=*/false));
  staged_.clear();
  if (!dec.GetVarint64(&staged)) return Status::Corruption("snapshot staged");
  for (uint64_t i = 0; i < staged; i++) {
    uint64_t txn;
    std::string_view op_raw;
    if (!dec.GetVarint64(&txn) || !dec.GetLengthPrefixed(&op_raw)) {
      return Status::Corruption("snapshot staged truncated");
    }
    auto op = PrimitiveOp::Decode(op_raw);
    if (!op.ok()) return op.status();
    staged_[txn] = std::move(op).value();
  }
  applied_requests_.clear();
  applied_order_.clear();
  if (!dec.GetVarint64(&dedup)) return Status::Corruption("snapshot dedup");
  for (uint64_t i = 0; i < dedup; i++) {
    uint64_t id;
    std::string result;
    if (!dec.GetVarint64(&id) || !dec.GetLengthPrefixed(&result)) {
      return Status::Corruption("snapshot dedup truncated");
    }
    applied_requests_.emplace(id, std::move(result));
    applied_order_.push_back(id);
  }
  return Status::Ok();
}

TafDbShard::TafDbShard(SimNet* net, std::string name,
                       std::vector<uint32_t> servers,
                       TafDbShardOptions options)
    : net_(net),
      name_(std::move(name)),
      read_gate_(options.read_concurrency, options.read_processing_us),
      txn_write_gate_(options.txn_write_concurrency,
                      options.txn_write_processing_us) {
  KvOptions kv = options.kv;
  kv.use_wal = false;  // raft log is the durability layer
  group_ = std::make_unique<RaftGroup>(
      net_, name_, std::move(servers),
      [kv](ReplicaId) { return std::make_unique<TafDbShardSm>(kv); },
      options.raft);
}

Status TafDbShard::Start() { return group_->Start(); }
void TafDbShard::Stop() { group_->Stop(); }

NodeId TafDbShard::ServiceNetId() const {
  RaftNode* leader = group_->Leader();
  return leader != nullptr ? leader->net_id() : group_->replica(0)->net_id();
}

const TafDbShardSm* TafDbShard::LeaderSm() const {
  RaftNode* leader = group_->Leader();
  if (leader != nullptr) {
    // Linearizable leader reads: a freshly elected leader must apply its
    // term-start no-op (and with it everything previously committed)
    // before its state machine may be read.
    (void)leader->ReadBarrier();
    return static_cast<const TafDbShardSm*>(
        const_cast<TafDbShard*>(this)->group_->state_machine(leader->id()));
  }
  return static_cast<const TafDbShardSm*>(
      const_cast<TafDbShard*>(this)->group_->state_machine(0));
}

PrimitiveResult TafDbShard::ExecutePrimitive(const PrimitiveOp& op) {
  Metrics().primitives->Add();
  return ProposePrimitive(op);
}

PrimitiveResult TafDbShard::ProposePrimitive(const PrimitiveOp& op) {
  ShardCommand cmd;
  cmd.kind = ShardCommand::Kind::kPrimitive;
  cmd.request_id =
      (static_cast<uint64_t>(group_->replica(0)->net_id()) << 40) |
      request_seq_.fetch_add(1);
  cmd.op = op;
  auto result = group_->Propose(cmd.Encode());
  if (!result.ok()) {
    PrimitiveResult r;
    r.status = result.status();
    return r;
  }
  return PrimitiveResult::Decode(*result);
}

void TafDbShard::ReadProcessingGate() const {
  if (net_->options().mode != LatencyMode::kZero) {
    read_gate_.Charge();
  }
}

void TafDbShard::TxnWriteProcessingGate() const {
  if (net_->options().mode != LatencyMode::kZero) {
    txn_write_gate_.Charge();
  }
}

StatusOr<InodeRecord> TafDbShard::Get(const InodeKey& key) const {
  Metrics().reads->Add();
  ReadProcessingGate();
  return ReadRecord(LeaderSm()->kv(), key);
}

StatusOr<std::vector<InodeRecord>> TafDbShard::ScanDir(
    InodeId kid, const std::string& after, size_t limit) const {
  Metrics().reads->Add();
  ReadProcessingGate();
  std::string lower = DirLowerBound(kid);
  if (!after.empty()) {
    lower = InodeKey::IdRecord(kid, after).Encode() + '\0';
  }
  auto raw = LeaderSm()->kv().Scan(lower, DirUpperBound(kid),
                                   limit == 0 ? 0 : limit + 1);
  std::vector<InodeRecord> out;
  for (const auto& [k, v] : raw) {
    auto key = InodeKey::Decode(k);
    if (!key.ok()) continue;
    if (key->IsAttr()) continue;
    auto rec = InodeRecord::DecodeValue(*key, v);
    if (!rec.ok()) return rec.status();
    out.push_back(std::move(rec).value());
    if (limit != 0 && out.size() >= limit) break;
  }
  return out;
}

uint64_t TafDbShard::DirEpoch(InodeId dir) const {
  ReaderMutexLock lock(epoch_mu_);
  CFS_SHARED_READ(dir_epochs_, epoch_mu_);
  auto it = dir_epochs_.find(dir);
  return it == dir_epochs_.end() ? 0 : it->second;
}

uint64_t TafDbShard::BumpDirEpoch(InodeId dir) {
  WriterMutexLock lock(epoch_mu_);
  CFS_SHARED_WRITE(dir_epochs_, epoch_mu_);
  return ++dir_epochs_[dir];
}

PrimitiveResult TafDbShard::CommitLocal(const PrimitiveOp& write_set) {
  Metrics().txn_commits->Add();
  TxnWriteProcessingGate();
  return ProposePrimitive(write_set);
}

Status TafDbShard::Stage(TxnId txn, PrimitiveOp write_set) {
  MutexLock lock(staged_mu_);
  CFS_SHARED_WRITE(staged_, staged_mu_);
  staged_[txn] = std::move(write_set);
  return Status::Ok();
}

Status TafDbShard::Prepare(TxnId txn) {
  Metrics().prepares->Add();
  PrimitiveOp op;
  {
    MutexLock lock(staged_mu_);
    CFS_SHARED_READ(staged_, staged_mu_);
    auto it = staged_.find(txn);
    if (it == staged_.end()) return Status::NotFound("nothing staged");
    op = it->second;
  }
  TxnWriteProcessingGate();
  ShardCommand cmd;
  cmd.kind = ShardCommand::Kind::kPrepare;
  cmd.txn = txn;
  cmd.request_id =
      (static_cast<uint64_t>(group_->replica(0)->net_id()) << 40) |
      request_seq_.fetch_add(1);
  cmd.op = std::move(op);
  auto result = group_->Propose(cmd.Encode());
  if (!result.ok()) return result.status();
  return PrimitiveResult::Decode(*result).status;
}

Status TafDbShard::Commit(TxnId txn) {
  Metrics().txn_commits->Add();
  {
    MutexLock lock(staged_mu_);
    CFS_SHARED_WRITE(staged_, staged_mu_);
    staged_.erase(txn);
  }
  TxnWriteProcessingGate();
  ShardCommand cmd;
  cmd.kind = ShardCommand::Kind::kCommitTxn;
  cmd.txn = txn;
  cmd.request_id =
      (static_cast<uint64_t>(group_->replica(0)->net_id()) << 40) |
      request_seq_.fetch_add(1);
  auto result = group_->Propose(cmd.Encode());
  if (!result.ok()) return result.status();
  return PrimitiveResult::Decode(*result).status;
}

Status TafDbShard::Abort(TxnId txn) {
  Metrics().aborts->Add();
  bool had_staged;
  {
    MutexLock lock(staged_mu_);
    CFS_SHARED_WRITE(staged_, staged_mu_);
    had_staged = staged_.erase(txn) > 0;
  }
  ShardCommand cmd;
  cmd.kind = ShardCommand::Kind::kAbortTxn;
  cmd.txn = txn;
  auto result = group_->Propose(cmd.Encode());
  if (!result.ok() && had_staged) return result.status();
  return Status::Ok();
}

std::vector<std::pair<LogIndex, ShardCommand>> TafDbShard::ReadCommittedSince(
    LogIndex from, size_t max) const {
  RaftNode* leader = group_->Leader();
  RaftNode* source =
      leader != nullptr ? leader
                        : const_cast<TafDbShard*>(this)->group_->replica(0);
  std::vector<std::pair<LogIndex, ShardCommand>> out;
  for (auto& [index, raw] : source->ReadCommittedSince(from, max)) {
    auto cmd = ShardCommand::Decode(raw);
    if (cmd.ok()) {
      out.emplace_back(index, std::move(cmd).value());
    }
  }
  return out;
}

}  // namespace cfs
