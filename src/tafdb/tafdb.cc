#include "src/tafdb/tafdb.h"

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace cfs {

TafDbCluster::TafDbCluster(SimNet* net, std::vector<uint32_t> servers,
                           TafDbOptions options)
    : net_(net), options_(std::move(options)) {
  ts_net_ = net_->AddNode("tafdb-ts", servers.empty() ? 0 : servers[0]);
  ts_oracle_.set_net_id(ts_net_);
  id_alloc_.set_net_id(ts_net_);
  id_alloc_.AdvanceTo(kRootInode);  // ids start after the root

  size_t server_cursor = 0;
  auto next_server = [&]() {
    uint32_t s = servers.empty() ? 0 : servers[server_cursor % servers.size()];
    server_cursor++;
    return s;
  };
  for (size_t i = 0; i < options_.num_shards; i++) {
    std::vector<uint32_t> replica_servers;
    for (size_t r = 0; r < options_.replicas; r++) {
      replica_servers.push_back(next_server());
    }
    TafDbShardOptions shard_options;
    shard_options.raft = options_.raft;
    shard_options.kv = options_.kv;
    shard_options.replicas = options_.replicas;
    shard_options.read_processing_us = options_.read_processing_us;
    shard_options.read_concurrency = options_.read_concurrency;
    shards_.push_back(std::make_unique<TafDbShard>(
        net_, "tafdb-s" + std::to_string(i), std::move(replica_servers),
        shard_options));
  }
}

Status TafDbCluster::Start() {
  for (auto& shard : shards_) {
    CFS_RETURN_IF_ERROR(shard->Start());
  }
  for (auto& shard : shards_) {
    auto leader = shard->raft_group()->WaitForLeader();
    if (!leader.ok()) return leader.status();
  }
  // Bootstrap the root directory's attribute record (idempotent: a second
  // Start on warm state hits kAlreadyExists on the insert).
  PrimitiveOp op;
  op.inserts.push_back(
      InodeRecord::MakeDirAttr(kRootInode, /*now_ts=*/1, /*mode=*/0755,
                               /*uid=*/0, /*gid=*/0));
  PrimitiveResult result = ShardFor(kRootInode)->ExecutePrimitive(op);
  if (!result.status.ok() && !result.status.IsAlreadyExists()) {
    return result.status;
  }
  ts_oracle_.AdvanceTo(2);
  CFS_LOG(kInfo) << "tafdb started: " << shards_.size() << " shards";
  return Status::Ok();
}

void TafDbCluster::Stop() {
  for (auto& shard : shards_) {
    shard->Stop();
  }
}

size_t TafDbCluster::ShardIndexFor(InodeId kid) const {
  if (options_.partition == PartitionScheme::kHashKid) {
    return static_cast<size_t>(HashU64(kid) % shards_.size());
  }
  uint64_t stripe = kid / options_.range_stripe_width;
  return static_cast<size_t>(stripe % shards_.size());
}

TafDbShard* TafDbCluster::ShardFor(InodeId kid) {
  return shards_[ShardIndexFor(kid)].get();
}

}  // namespace cfs
