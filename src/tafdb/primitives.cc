#include "src/tafdb/primitives.h"

#include <map>

#include "src/common/encoding.h"

namespace cfs {
namespace {

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutKey(std::string* out, const InodeKey& key) {
  PutLengthPrefixed(out, key.Encode());
}

bool GetKey(Decoder* dec, InodeKey* key) {
  std::string_view raw;
  if (!dec->GetLengthPrefixed(&raw)) return false;
  auto decoded = InodeKey::Decode(raw);
  if (!decoded.ok()) return false;
  *key = std::move(decoded).value();
  return true;
}

void PutRecord(std::string* out, const InodeRecord& rec) {
  PutKey(out, rec.key);
  PutLengthPrefixed(out, rec.EncodeValue());
}

bool GetRecord(Decoder* dec, InodeRecord* rec) {
  InodeKey key;
  std::string_view value;
  if (!GetKey(dec, &key) || !dec->GetLengthPrefixed(&value)) return false;
  auto decoded = InodeRecord::DecodeValue(key, value);
  if (!decoded.ok()) return false;
  *rec = std::move(decoded).value();
  return true;
}

// Maps a type-check failure to the POSIX-style error the callers surface.
Status TypeMismatch(InodeType expected, InodeType actual) {
  if (expected == InodeType::kDirectory && actual != InodeType::kDirectory) {
    return Status::NotADirectory();
  }
  if (expected != InodeType::kDirectory && actual == InodeType::kDirectory) {
    return Status::IsADirectory();
  }
  return Status::InvalidArgument("inode type mismatch");
}

}  // namespace

PrimitiveOp PrimitiveOp::InsertWithUpdate(InodeRecord insert, Predicate check,
                                          UpdateSpec update) {
  PrimitiveOp op;
  op.inserts.push_back(std::move(insert));
  op.checks.push_back(std::move(check));
  op.updates.push_back(std::move(update));
  return op;
}

PrimitiveOp PrimitiveOp::DeleteWithUpdate(DeleteSpec del, UpdateSpec update,
                                          std::vector<Predicate> checks) {
  PrimitiveOp op;
  op.deletes.push_back(std::move(del));
  op.updates.push_back(std::move(update));
  op.checks = std::move(checks);
  return op;
}

PrimitiveOp PrimitiveOp::InsertAndDeleteWithUpdate(
    InodeRecord insert, std::vector<DeleteSpec> dels, UpdateSpec update,
    std::vector<Predicate> checks) {
  PrimitiveOp op;
  op.inserts.push_back(std::move(insert));
  op.deletes = std::move(dels);
  op.updates.push_back(std::move(update));
  op.checks = std::move(checks);
  return op;
}

std::string PrimitiveOp::Encode() const {
  std::string out;
  PutVarint64(&out, checks.size());
  for (const auto& c : checks) {
    PutKey(&out, c.key);
    out.push_back(static_cast<char>(c.kind));
    out.push_back(static_cast<char>(c.type));
    out.push_back(c.ifexist ? 1 : 0);
  }
  PutVarint64(&out, deletes.size());
  for (const auto& d : deletes) {
    PutKey(&out, d.key);
    out.push_back(d.ifexist ? 1 : 0);
    out.push_back(d.type_is.has_value() ? 1 : 0);
    out.push_back(d.type_is.has_value() ? static_cast<char>(*d.type_is) : 0);
    out.push_back(d.forbid_directory ? 1 : 0);
    out.push_back(d.expect_attr_cleanup ? 1 : 0);
    PutVarint64(&out, d.hint_id);
  }
  PutVarint64(&out, inserts.size());
  for (const auto& r : inserts) PutRecord(&out, r);
  PutVarint64(&out, puts.size());
  for (const auto& r : puts) PutRecord(&out, r);
  PutVarint64(&out, updates.size());
  for (const auto& u : updates) {
    PutKey(&out, u.key);
    PutVarint64(&out, ZigZag(u.children_delta));
    PutVarint64(&out, ZigZag(u.links_delta));
    PutVarint64(&out, ZigZag(u.size_delta));
    out.push_back(u.children_delta_auto ? 1 : 0);
    out.push_back(u.must_exist ? 1 : 0);
    uint32_t lww_bits = (u.lww.mtime ? 1u : 0) | (u.lww.ctime ? 2u : 0) |
                        (u.lww.mode ? 4u : 0) | (u.lww.uid ? 8u : 0) |
                        (u.lww.gid ? 16u : 0) | (u.lww.size ? 32u : 0) |
                        (u.lww.parent ? 64u : 0);
    PutVarint32(&out, lww_bits);
    if (u.lww.mtime) PutVarint64(&out, *u.lww.mtime);
    if (u.lww.ctime) PutVarint64(&out, *u.lww.ctime);
    if (u.lww.mode) PutVarint32(&out, *u.lww.mode);
    if (u.lww.uid) PutVarint32(&out, *u.lww.uid);
    if (u.lww.gid) PutVarint32(&out, *u.lww.gid);
    if (u.lww.size) PutVarint64(&out, ZigZag(*u.lww.size));
    if (u.lww.parent) PutVarint64(&out, *u.lww.parent);
    PutVarint64(&out, u.lww.ts);
  }
  return out;
}

StatusOr<PrimitiveOp> PrimitiveOp::Decode(std::string_view data) {
  Decoder dec(data);
  PrimitiveOp op;
  auto fail = [] { return Status::Corruption("primitive op truncated"); };
  uint64_t n;

  if (!dec.GetVarint64(&n)) return fail();
  for (uint64_t i = 0; i < n; i++) {
    Predicate c;
    if (!GetKey(&dec, &c.key) || dec.remaining() < 3) return fail();
    c.kind = static_cast<Predicate::Kind>(dec.rest()[0]);
    c.type = static_cast<InodeType>(dec.rest()[1]);
    c.ifexist = dec.rest()[2] != 0;
    dec = Decoder(dec.rest().substr(3));
    op.checks.push_back(std::move(c));
  }

  if (!dec.GetVarint64(&n)) return fail();
  for (uint64_t i = 0; i < n; i++) {
    DeleteSpec d;
    if (!GetKey(&dec, &d.key) || dec.remaining() < 4) return fail();
    d.ifexist = dec.rest()[0] != 0;
    bool has_type = dec.rest()[1] != 0;
    if (has_type) d.type_is = static_cast<InodeType>(dec.rest()[2]);
    d.forbid_directory = dec.rest()[3] != 0;
    if (dec.remaining() < 5) return fail();
    d.expect_attr_cleanup = dec.rest()[4] != 0;
    dec = Decoder(dec.rest().substr(5));
    if (!dec.GetVarint64(&d.hint_id)) return fail();
    op.deletes.push_back(std::move(d));
  }

  if (!dec.GetVarint64(&n)) return fail();
  for (uint64_t i = 0; i < n; i++) {
    InodeRecord r;
    if (!GetRecord(&dec, &r)) return fail();
    op.inserts.push_back(std::move(r));
  }
  if (!dec.GetVarint64(&n)) return fail();
  for (uint64_t i = 0; i < n; i++) {
    InodeRecord r;
    if (!GetRecord(&dec, &r)) return fail();
    op.puts.push_back(std::move(r));
  }

  if (!dec.GetVarint64(&n)) return fail();
  for (uint64_t i = 0; i < n; i++) {
    UpdateSpec u;
    uint64_t z;
    if (!GetKey(&dec, &u.key)) return fail();
    if (!dec.GetVarint64(&z)) return fail();
    u.children_delta = UnZigZag(z);
    if (!dec.GetVarint64(&z)) return fail();
    u.links_delta = UnZigZag(z);
    if (!dec.GetVarint64(&z)) return fail();
    u.size_delta = UnZigZag(z);
    if (dec.remaining() < 2) return fail();
    u.children_delta_auto = dec.rest()[0] != 0;
    u.must_exist = dec.rest()[1] != 0;
    dec = Decoder(dec.rest().substr(2));
    uint32_t bits;
    if (!dec.GetVarint32(&bits)) return fail();
    uint64_t u64;
    uint32_t u32;
    if (bits & 1) {
      if (!dec.GetVarint64(&u64)) return fail();
      u.lww.mtime = u64;
    }
    if (bits & 2) {
      if (!dec.GetVarint64(&u64)) return fail();
      u.lww.ctime = u64;
    }
    if (bits & 4) {
      if (!dec.GetVarint32(&u32)) return fail();
      u.lww.mode = u32;
    }
    if (bits & 8) {
      if (!dec.GetVarint32(&u32)) return fail();
      u.lww.uid = u32;
    }
    if (bits & 16) {
      if (!dec.GetVarint32(&u32)) return fail();
      u.lww.gid = u32;
    }
    if (bits & 32) {
      if (!dec.GetVarint64(&u64)) return fail();
      u.lww.size = UnZigZag(u64);
    }
    if (bits & 64) {
      if (!dec.GetVarint64(&u64)) return fail();
      u.lww.parent = u64;
    }
    if (!dec.GetVarint64(&u.lww.ts)) return fail();
    op.updates.push_back(std::move(u));
  }
  return op;
}

std::string PrimitiveResult::Encode() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(status.code()));
  PutLengthPrefixed(&out, status.message());
  PutVarint64(&out, ZigZag(deleted));
  PutVarint64(&out, deleted_records.size());
  for (const auto& rec : deleted_records) {
    PutRecord(&out, rec);
  }
  return out;
}

PrimitiveResult PrimitiveResult::Decode(std::string_view data) {
  Decoder dec(data);
  PrimitiveResult r;
  uint32_t code;
  std::string message;
  uint64_t z;
  if (!dec.GetVarint32(&code) || !dec.GetLengthPrefixed(&message) ||
      !dec.GetVarint64(&z)) {
    r.status = Status::Corruption("primitive result truncated");
    return r;
  }
  r.status = Status(static_cast<ErrorCode>(code), std::move(message));
  r.deleted = UnZigZag(z);
  uint64_t n;
  if (dec.GetVarint64(&n)) {
    for (uint64_t i = 0; i < n; i++) {
      InodeRecord rec;
      if (!GetRecord(&dec, &rec)) break;
      r.deleted_records.push_back(std::move(rec));
    }
  }
  return r;
}

void ApplyUpdateToRecord(const UpdateSpec& upd, int64_t auto_children_delta,
                         InodeRecord* merged) {
  // Delta apply: commutative numeric merges, no locks needed (§4.2).
  int64_t children_delta =
      upd.children_delta_auto ? auto_children_delta : upd.children_delta;
  merged->children += children_delta;
  merged->links += upd.links_delta;
  merged->size += upd.size_delta;
  if (children_delta != 0) merged->Set(InodeRecord::kFieldChildren);
  if (upd.links_delta != 0) merged->Set(InodeRecord::kFieldLinks);
  if (upd.size_delta != 0) merged->Set(InodeRecord::kFieldSize);
  // Last-writer-wins: only a newer timestamp overwrites.
  if (!upd.lww.empty() && upd.lww.ts >= merged->lww_ts) {
    if (upd.lww.mtime) {
      merged->mtime = *upd.lww.mtime;
      merged->Set(InodeRecord::kFieldMtime);
    }
    if (upd.lww.ctime) {
      merged->ctime = *upd.lww.ctime;
      merged->Set(InodeRecord::kFieldCtime);
    }
    if (upd.lww.mode) {
      merged->mode = *upd.lww.mode;
      merged->Set(InodeRecord::kFieldMode);
    }
    if (upd.lww.uid) {
      merged->uid = *upd.lww.uid;
      merged->Set(InodeRecord::kFieldUid);
    }
    if (upd.lww.gid) {
      merged->gid = *upd.lww.gid;
      merged->Set(InodeRecord::kFieldGid);
    }
    if (upd.lww.size) {
      merged->size = *upd.lww.size;
      merged->Set(InodeRecord::kFieldSize);
    }
    if (upd.lww.parent) {
      merged->parent = *upd.lww.parent;
      merged->Set(InodeRecord::kFieldParent);
    }
    merged->lww_ts = upd.lww.ts;
    merged->Set(InodeRecord::kFieldLwwTs);
  }
}

StatusOr<InodeRecord> ReadRecord(const KvStore& kv, const InodeKey& key) {
  auto value = kv.Get(key.Encode());
  if (!value.ok()) return value.status();
  return InodeRecord::DecodeValue(key, *value);
}

PrimitiveResult ExecutePrimitive(const PrimitiveOp& op, KvStore* kv) {
  PrimitiveResult result;

  // ---- Phase 1: evaluate every check against current state ----
  for (const auto& check : op.checks) {
    auto rec = ReadRecord(*kv, check.key);
    switch (check.kind) {
      case Predicate::Kind::kExists:
        if (!rec.ok()) {
          result.status = Status::NotFound(check.key.kstr);
          return result;
        }
        break;
      case Predicate::Kind::kNotExists:
        if (rec.ok()) {
          result.status = Status::AlreadyExists(check.key.kstr);
          return result;
        }
        break;
      case Predicate::Kind::kExistsWithType:
        if (!rec.ok()) {
          if (check.ifexist) break;
          result.status = Status::NotFound(check.key.kstr);
          return result;
        }
        if (rec->type != check.type) {
          result.status = TypeMismatch(check.type, rec->type);
          return result;
        }
        break;
      case Predicate::Kind::kChildrenZero:
        if (!rec.ok()) {
          result.status = Status::NotFound(check.key.kstr);
          return result;
        }
        if (rec->children != 0) {
          result.status = Status::NotEmpty(check.key.kstr);
          return result;
        }
        break;
    }
  }

  std::vector<InodeKey> to_delete;
  std::vector<InodeRecord> deleted_images;
  for (const auto& del : op.deletes) {
    auto rec = ReadRecord(*kv, del.key);
    if (!rec.ok()) {
      if (del.ifexist) continue;
      result.status = Status::NotFound(del.key.kstr);
      return result;
    }
    if (del.type_is && rec->type != *del.type_is) {
      result.status = TypeMismatch(*del.type_is, rec->type);
      return result;
    }
    if (del.forbid_directory && rec->type == InodeType::kDirectory) {
      result.status = Status::IsADirectory(del.key.kstr);
      return result;
    }
    if (del.hint_id != kInvalidInode && rec->Has(InodeRecord::kFieldId) &&
        rec->id != del.hint_id) {
      // The dentry was concurrently replaced; treat as gone.
      if (del.ifexist) continue;
      result.status = Status::NotFound(del.key.kstr);
      return result;
    }
    to_delete.push_back(del.key);
    deleted_images.push_back(std::move(rec).value());
  }
  result.deleted = static_cast<int64_t>(to_delete.size());
  result.deleted_records = std::move(deleted_images);

  for (const auto& ins : op.inserts) {
    // Implicit existence check: a duplicate insert aborts the primitive —
    // unless this op also deletes that key (rename re-using the dest name).
    bool deleted_here = false;
    for (const auto& d : to_delete) {
      if (d == ins.key) {
        deleted_here = true;
        break;
      }
    }
    if (!deleted_here && kv->Contains(ins.key.Encode())) {
      result.status = Status::AlreadyExists(ins.key.kstr);
      return result;
    }
  }

  // Updates on the same record compose: later specs merge into the working
  // copy produced by earlier ones (a rename whose source and destination
  // share a parent issues two deltas against one attribute record).
  std::map<std::string, InodeRecord> resolved;
  for (const auto& upd : op.updates) {
    std::string encoded_key = upd.key.Encode();
    auto it = resolved.find(encoded_key);
    if (it == resolved.end()) {
      auto rec = ReadRecord(*kv, upd.key);
      if (!rec.ok()) {
        if (!upd.must_exist) continue;
        result.status = Status::NotFound(upd.key.kstr);
        return result;
      }
      it = resolved.emplace(encoded_key, std::move(rec).value()).first;
    }
    int64_t auto_delta = static_cast<int64_t>(op.inserts.size()) -
                         static_cast<int64_t>(to_delete.size());
    ApplyUpdateToRecord(upd, auto_delta, &it->second);
  }

  // ---- Phase 2: apply everything as one batch ----
  WriteBatch batch;
  for (const auto& key : to_delete) {
    batch.Delete(key.Encode());
  }
  for (const auto& ins : op.inserts) {
    batch.Put(ins.key.Encode(), ins.EncodeValue());
  }
  for (const auto& put : op.puts) {
    batch.Put(put.key.Encode(), put.EncodeValue());
  }
  for (const auto& [encoded_key, merged] : resolved) {
    batch.Put(encoded_key, merged.EncodeValue());
  }
  // Durability is provided by the raft log that carried this command, so
  // the engine-local write is unsynced.
  result.status = kv->Write(batch, /*sync=*/false);
  return result;
}

}  // namespace cfs
