// Single-shard atomic primitives (paper §4.2, Table 2).
//
// A PrimitiveOp is a parameterized command bundling the reads, conditional
// checks, and writes of one metadata request. The shard's raft state
// machine executes it in one step: predicates are evaluated against shard
// state and, only if all pass, every mutation is applied in a single
// write batch. Isolation comes from the shard's serial apply — no row
// locks are taken — and atomicity from the all-or-nothing evaluation.
//
// Conflict reconciliation (§4.2) is encoded in the update specs:
//   - numeric fields (children/links/size) carry signed DELTAS, which are
//     commutative, so concurrent updates of a shared parent directory merge
//     instead of conflicting ("delta apply");
//   - clock/permission fields carry absolute values stamped with an oracle
//     timestamp and are applied last-writer-wins.
//
// The same op structure doubles as the buffered write set of lock-based
// transactions (used by the baselines and CFS-base), where `puts` carries
// absolute record images computed under locks.

#ifndef CFS_TAFDB_PRIMITIVES_H_
#define CFS_TAFDB_PRIMITIVES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/kv/kvstore.h"
#include "src/tafdb/schema.h"

namespace cfs {

// A conditional check over one record, evaluated before any mutation.
struct Predicate {
  enum class Kind : uint8_t {
    kExists = 0,         // record must exist
    kNotExists = 1,      // record must be absent
    kExistsWithType = 2, // record must exist and have `type`
    kChildrenZero = 3,   // directory emptiness check ("children = 0")
  };

  InodeKey key;
  Kind kind = Kind::kExists;
  InodeType type = InodeType::kNone;
  // Softens kExistsWithType: an absent record passes, but a present record
  // with the wrong type still fails (the rename "ifexist" keyword).
  bool ifexist = false;
};

// Deletion of one record, with its own inline existence/type conditions.
struct DeleteSpec {
  InodeKey key;
  bool ifexist = false;  // absent target is not an error (counts 0)
  std::optional<InodeType> type_is;  // fail unless the record has this type
  // unlink/rename guard: fail with kIsADirectory if the record is a
  // directory (files and symlinks both pass).
  bool forbid_directory = false;
  // When nonzero, the record's inode id must match (ABA guard against the
  // entry being replaced between resolution and execution). Also the
  // pairing hint the garbage collector uses to match this namespace
  // removal with the corresponding attribute-record deletion (§4.4).
  InodeId hint_id = kInvalidInode;
  // True on unlink/rmdir-style deletes: the inode's attribute record is
  // supposed to be cleaned up afterwards, and the GC reclaims it if the
  // cleanup never arrives. False on rename-style deletes, whose inode is
  // re-linked elsewhere (possibly on another shard, ingested in any order).
  bool expect_attr_cleanup = false;
};

// Last-writer-wins absolute assignments, stamped with an oracle timestamp.
struct LwwAssign {
  std::optional<uint64_t> mtime;
  std::optional<uint64_t> ctime;
  std::optional<uint32_t> mode;
  std::optional<uint32_t> uid;
  std::optional<uint32_t> gid;
  std::optional<int64_t> size;  // absolute size (setattr/truncate)
  // Reparenting (normal-path directory rename, §4.3): moves the directory's
  // ancestor backpointer.
  std::optional<InodeId> parent;
  uint64_t ts = 0;

  bool empty() const {
    return !mtime && !ctime && !mode && !uid && !gid && !size && !parent;
  }
};

// One record update: commutative deltas + LWW sets.
struct UpdateSpec {
  InodeKey key;
  int64_t children_delta = 0;
  int64_t links_delta = 0;
  int64_t size_delta = 0;
  LwwAssign lww;
  // rename support: children_delta is computed inside the shard as
  // (#inserts - #records actually deleted) — "determined by TafDB internal"
  // (paper §4.3).
  bool children_delta_auto = false;
  bool must_exist = true;
};

// The parameterized single-shard command.
struct PrimitiveOp {
  std::vector<Predicate> checks;
  std::vector<DeleteSpec> deletes;
  std::vector<InodeRecord> inserts;  // fail kAlreadyExists on existing key
  std::vector<InodeRecord> puts;     // absolute upserts (lock-based txns)
  std::vector<UpdateSpec> updates;

  bool empty() const {
    return checks.empty() && deletes.empty() && inserts.empty() &&
           puts.empty() && updates.empty();
  }

  std::string Encode() const;
  static StatusOr<PrimitiveOp> Decode(std::string_view data);

  // ---- builders matching Table 2 / Figure 8 ----

  // insert_with_update: create / mkdir / symlink / link.
  static PrimitiveOp InsertWithUpdate(InodeRecord insert, Predicate check,
                                      UpdateSpec update);
  // delete_with_update: unlink / rmdir.
  static PrimitiveOp DeleteWithUpdate(DeleteSpec del, UpdateSpec update,
                                      std::vector<Predicate> checks = {});
  // insert_and_delete_with_update: intra-directory rename.
  static PrimitiveOp InsertAndDeleteWithUpdate(InodeRecord insert,
                                               std::vector<DeleteSpec> dels,
                                               UpdateSpec update,
                                               std::vector<Predicate> checks);
};

struct PrimitiveResult {
  Status status;
  int64_t deleted = 0;  // records actually deleted (rename's auto delta)
  // Images of the records this op deleted, in delete order. Multi-step
  // operations (rmdir, normal-path rename) use these to restore state
  // exactly when a later step loses a race (compensation).
  std::vector<InodeRecord> deleted_records;

  std::string Encode() const;
  static PrimitiveResult Decode(std::string_view data);
};

// Executes `op` atomically against `kv`. The caller guarantees serial
// execution (the raft apply loop). Reads current state, evaluates every
// predicate and implicit check, then applies all mutations as one batch.
PrimitiveResult ExecutePrimitive(const PrimitiveOp& op, KvStore* kv);

// Reads one record from shard state.
StatusOr<InodeRecord> ReadRecord(const KvStore& kv, const InodeKey& key);

// Merges one UpdateSpec into a record: delta-apply for numeric fields,
// last-writer-wins for timestamp/permission fields. `auto_children_delta`
// replaces the spec's children delta when children_delta_auto is set.
// Shared by TafDB shard apply and FileStore attribute merges.
void ApplyUpdateToRecord(const UpdateSpec& update, int64_t auto_children_delta,
                         InodeRecord* record);

}  // namespace cfs

#endif  // CFS_TAFDB_PRIMITIVES_H_
