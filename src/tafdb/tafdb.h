// TafDB — the namespace store layer (paper §3.2): a set of range-
// partitioned metadata shards plus the timestamp service, fronted by a thin
// routing API.
//
// Partitioning (§4.1): inode_table is split by kID range. Because inode ids
// are allocated sequentially, the id space is pre-split into fixed-width
// stripes assigned round-robin to shards — contiguous kID ranges (range
// partitioning, preserving the directory-locality property: a directory's
// attribute record and all its children's id records share one kID and
// therefore one shard) while still spreading distinct directories across
// the cluster.

#ifndef CFS_TAFDB_TAFDB_H_
#define CFS_TAFDB_TAFDB_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/simnet.h"
#include "src/tafdb/shard.h"
#include "src/txn/timestamp_oracle.h"

namespace cfs {

// How inode_table keys map to shards.
enum class PartitionScheme {
  // CFS: contiguous kID ranges (striped) — directory locality preserved.
  kRangeStripe,
  // Baselines: hash of kID — a directory's rows still share a shard (same
  // kID) but adjacent directories scatter; used with inline-attribute row
  // models where cross-shard transactions arise between parent and child
  // directories.
  kHashKid,
};

struct TafDbOptions {
  size_t num_shards = 4;
  size_t replicas = 3;
  PartitionScheme partition = PartitionScheme::kRangeStripe;
  // Width of each contiguous kID range stripe.
  uint64_t range_stripe_width = 64;
  RaftOptions raft;
  KvOptions kv;
  // Forwarded to each shard (see TafDbShardOptions).
  int64_t read_processing_us = 150;
  size_t read_concurrency = 2;
};

class TafDbCluster {
 public:
  // `servers` are the physical server ids metadata replicas may occupy;
  // shard replicas are placed round-robin.
  TafDbCluster(SimNet* net, std::vector<uint32_t> servers,
               TafDbOptions options);

  // Starts every shard group, waits for leaders, creates the root inode.
  Status Start();
  void Stop();

  size_t ShardIndexFor(InodeId kid) const;
  TafDbShard* ShardFor(InodeId kid);
  TafDbShard* shard(size_t i) { return shards_[i].get(); }
  size_t num_shards() const { return shards_.size(); }

  // Timestamp service (LWW ordering) and inode id allocation; both live on
  // a dedicated time-server node and are fetched in batches by clients.
  TimestampOracle* ts_oracle() { return &ts_oracle_; }
  TimestampOracle* id_allocator() { return &id_alloc_; }
  NodeId ts_net_id() const { return ts_net_; }

  const TafDbOptions& options() const { return options_; }

 private:
  SimNet* net_;
  TafDbOptions options_;
  std::vector<std::unique_ptr<TafDbShard>> shards_;
  NodeId ts_net_ = kInvalidNode;
  TimestampOracle ts_oracle_;
  TimestampOracle id_alloc_;
};

}  // namespace cfs

#endif  // CFS_TAFDB_TAFDB_H_
