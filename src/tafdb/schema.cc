#include "src/tafdb/schema.h"

#include "src/common/encoding.h"

namespace cfs {
namespace {

void PutBigEndian64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 7; i >= 0; i--) {
    buf[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  dst->append(buf, 8);
}

bool GetBigEndian64(std::string_view data, uint64_t* v) {
  if (data.size() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; i++) {
    out = (out << 8) | static_cast<unsigned char>(data[i]);
  }
  *v = out;
  return true;
}

}  // namespace

std::string InodeKey::Encode() const {
  std::string out;
  out.reserve(8 + kstr.size());
  PutBigEndian64(&out, kid);
  out += kstr;
  return out;
}

StatusOr<InodeKey> InodeKey::Decode(std::string_view encoded) {
  InodeKey key;
  if (!GetBigEndian64(encoded, &key.kid)) {
    return Status::Corruption("short inode key");
  }
  key.kstr.assign(encoded.substr(8));
  return key;
}

std::string DirLowerBound(InodeId kid) {
  std::string out;
  PutBigEndian64(&out, kid);
  return out;
}

std::string DirUpperBound(InodeId kid) {
  std::string out;
  PutBigEndian64(&out, kid + 1);
  return out;
}

InodeRecord InodeRecord::MakeIdRecord(InodeId parent, std::string_view name,
                                      InodeId id, InodeType type) {
  InodeRecord r;
  r.key = InodeKey::IdRecord(parent, name);
  r.id = id;
  r.type = type;
  r.Set(kFieldId);
  r.Set(kFieldType);
  return r;
}

InodeRecord InodeRecord::MakeDirAttr(InodeId self, uint64_t now_ts,
                                     uint32_t mode, uint32_t uid,
                                     uint32_t gid, InodeId parent) {
  InodeRecord r;
  r.key = InodeKey::AttrRecord(self);
  r.id = self;
  r.type = InodeType::kDirectory;
  r.children = 0;
  r.links = 2;  // "." and the parent link
  r.size = 0;
  r.mtime = now_ts;
  r.ctime = now_ts;
  r.mode = mode;
  r.uid = uid;
  r.gid = gid;
  r.lww_ts = now_ts;
  r.parent = parent;
  r.present = kFieldId | kFieldType | kFieldChildren | kFieldLinks |
              kFieldSize | kFieldMtime | kFieldCtime | kFieldMode | kFieldUid |
              kFieldGid | kFieldLwwTs;
  if (parent != kInvalidInode) r.present |= kFieldParent;
  return r;
}

InodeRecord InodeRecord::MakeFileAttr(InodeId self, uint64_t now_ts,
                                      uint32_t mode, uint32_t uid,
                                      uint32_t gid) {
  InodeRecord r = MakeDirAttr(self, now_ts, mode, uid, gid);
  r.type = InodeType::kFile;
  r.links = 1;
  r.present &= ~static_cast<uint32_t>(kFieldChildren);
  return r;
}

std::string InodeRecord::EncodeValue() const {
  std::string out;
  PutVarint32(&out, present);
  if (Has(kFieldId)) PutVarint64(&out, id);
  if (Has(kFieldType)) out.push_back(static_cast<char>(type));
  if (Has(kFieldChildren)) PutVarint64(&out, static_cast<uint64_t>(children));
  if (Has(kFieldLinks)) PutVarint64(&out, static_cast<uint64_t>(links));
  if (Has(kFieldSize)) PutVarint64(&out, static_cast<uint64_t>(size));
  if (Has(kFieldMtime)) PutVarint64(&out, mtime);
  if (Has(kFieldCtime)) PutVarint64(&out, ctime);
  if (Has(kFieldMode)) PutVarint32(&out, mode);
  if (Has(kFieldUid)) PutVarint32(&out, uid);
  if (Has(kFieldGid)) PutVarint32(&out, gid);
  if (Has(kFieldSymlink)) PutLengthPrefixed(&out, symlink_target);
  if (Has(kFieldLwwTs)) PutVarint64(&out, lww_ts);
  if (Has(kFieldParent)) PutVarint64(&out, parent);
  return out;
}

StatusOr<InodeRecord> InodeRecord::DecodeValue(const InodeKey& key,
                                               std::string_view encoded) {
  InodeRecord r;
  r.key = key;
  Decoder dec(encoded);
  if (!dec.GetVarint32(&r.present)) {
    return Status::Corruption("inode record: presence bitmap");
  }
  uint64_t u64;
  uint32_t u32;
  auto fail = [] { return Status::Corruption("inode record: truncated"); };
  if (r.Has(InodeRecord::kFieldId)) {
    if (!dec.GetVarint64(&u64)) return fail();
    r.id = u64;
  }
  if (r.Has(InodeRecord::kFieldType)) {
    if (dec.empty()) return fail();
    r.type = static_cast<InodeType>(dec.rest()[0]);
    dec = Decoder(dec.rest().substr(1));
  }
  if (r.Has(InodeRecord::kFieldChildren)) {
    if (!dec.GetVarint64(&u64)) return fail();
    r.children = static_cast<int64_t>(u64);
  }
  if (r.Has(InodeRecord::kFieldLinks)) {
    if (!dec.GetVarint64(&u64)) return fail();
    r.links = static_cast<int64_t>(u64);
  }
  if (r.Has(InodeRecord::kFieldSize)) {
    if (!dec.GetVarint64(&u64)) return fail();
    r.size = static_cast<int64_t>(u64);
  }
  if (r.Has(InodeRecord::kFieldMtime)) {
    if (!dec.GetVarint64(&r.mtime)) return fail();
  }
  if (r.Has(InodeRecord::kFieldCtime)) {
    if (!dec.GetVarint64(&r.ctime)) return fail();
  }
  if (r.Has(InodeRecord::kFieldMode)) {
    if (!dec.GetVarint32(&r.mode)) return fail();
  }
  if (r.Has(InodeRecord::kFieldUid)) {
    if (!dec.GetVarint32(&u32)) return fail();
    r.uid = u32;
  }
  if (r.Has(InodeRecord::kFieldGid)) {
    if (!dec.GetVarint32(&u32)) return fail();
    r.gid = u32;
  }
  if (r.Has(InodeRecord::kFieldSymlink)) {
    if (!dec.GetLengthPrefixed(&r.symlink_target)) return fail();
  }
  if (r.Has(InodeRecord::kFieldLwwTs)) {
    if (!dec.GetVarint64(&r.lww_ts)) return fail();
  }
  if (r.Has(InodeRecord::kFieldParent)) {
    if (!dec.GetVarint64(&r.parent)) return fail();
  }
  return r;
}

}  // namespace cfs
