// HopsFS-like baseline (Niazi et al., FAST'17), modelled after the cost
// profile the paper measures (§2.2, Figures 2-4):
//
//   - single inodes table: a dentry row <parent_id, name> carries the FULL
//     attributes of the child inline (id, type, children, mode, times, ...);
//     the root's attributes live in the reserved <root, "/_ATTR"> row;
//   - hash-of-kID partitioning: a directory's dentries colocate on
//     hash(dir), but a directory's own attribute row lives with ITS parent
//     — so create/mkdir/unlink/rmdir are cross-shard transactions;
//   - every mutation is a lock-based transaction: exclusive row locks
//     acquired up front (Figure 3 step 2) and held across the interactive
//     reads, the buffered writes, and the two-phase commit;
//   - rename uses coarse SUBTREE locks (serialized on the root shard's lock
//     manager), the mechanism §5.6 blames for HopsFS's rename ceiling;
//   - HDFS semantics: no hard links (Link returns kUnimplemented).

#ifndef CFS_BASELINES_HOPSFS_HOPSFS_H_
#define CFS_BASELINES_HOPSFS_HOPSFS_H_

#include "src/baselines/baseline_common.h"

namespace cfs {

class HopsFsEngine : public BaselineEngineBase {
 public:
  HopsFsEngine(SimNet* net, NodeId self, TafDbCluster* tafdb,
               FileStoreCluster* filestore, int64_t lock_timeout_us)
      : BaselineEngineBase(net, self, tafdb, filestore, lock_timeout_us) {}

  static Status BootstrapRoot(TafDbCluster*) { return Status::Ok(); }

  Status Mkdir(const std::string& path, uint32_t mode) override;
  Status Rmdir(const std::string& path) override;
  Status Create(const std::string& path, uint32_t mode) override;
  Status Unlink(const std::string& path) override;
  StatusOr<FileInfo> Lookup(const std::string& path) override;
  StatusOr<FileInfo> GetAttr(const std::string& path) override;
  Status SetAttr(const std::string& path, const SetAttrSpec& spec) override;
  StatusOr<std::vector<DirEntry>> ReadDir(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Symlink(const std::string& target,
                 const std::string& link_path) override;
  StatusOr<std::string> ReadLink(const std::string& path) override;
  Status Link(const std::string& existing,
              const std::string& link_path) override;
  Status Write(const std::string& path, uint64_t offset,
               const std::string& data) override;
  StatusOr<std::string> Read(const std::string& path, uint64_t offset,
                             size_t length) override;

 private:
  // The row holding a directory's own attributes: its dentry row at its
  // parent, or the root attribute row.
  StatusOr<InodeKey> DirAttrRowKey(const std::string& dir_path);

  // Creation core shared by Create / Mkdir / Symlink.
  Status InsertInode(const std::string& path, InodeRecord row);
};

using HopsFsCluster = BaselineCluster<HopsFsEngine>;

}  // namespace cfs

#endif  // CFS_BASELINES_HOPSFS_HOPSFS_H_
