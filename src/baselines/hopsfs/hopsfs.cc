#include "src/baselines/hopsfs/hopsfs.h"

#include <algorithm>

namespace cfs {
namespace {

// Inline-attribute dentry row for a new inode.
InodeRecord MakeInlineRow(InodeId parent, const std::string& name, InodeId id,
                          InodeType type, uint32_t mode, uint64_t ts) {
  InodeRecord row = InodeRecord::MakeDirAttr(id, ts, mode, 0, 0, parent);
  row.key = InodeKey::IdRecord(parent, name);
  row.type = type;
  if (type != InodeType::kDirectory) {
    row.links = 1;
    row.present &= ~static_cast<uint32_t>(InodeRecord::kFieldChildren);
  }
  return row;
}

std::string SubtreeLockKey(const std::string& path) {
  auto parts = SplitPath(path);
  if (!parts.ok() || parts->empty()) return "st:/";
  std::string key = "st:" + (*parts)[0];
  if (parts->size() > 2) {
    key += "/" + (*parts)[1];  // lock the subtree containing the dentry
  }
  return key;
}

}  // namespace

StatusOr<InodeKey> HopsFsEngine::DirAttrRowKey(const std::string& dir_path) {
  if (dir_path == "/") {
    return InodeKey::AttrRecord(kRootInode);
  }
  auto resolved = ResolveParent(dir_path);
  if (!resolved.ok()) return resolved.status();
  return InodeKey::IdRecord(resolved->parent, resolved->name);
}

Status HopsFsEngine::InsertInode(const std::string& path, InodeRecord row) {
  auto split = SplitParent(path);
  if (!split.ok()) return split.status();
  auto& [parent_path, name] = *split;
  auto parent = Resolve(parent_path);
  if (!parent.ok()) return parent.status();
  if (parent->type != InodeType::kDirectory) {
    return Status::NotADirectory(parent_path);
  }
  auto parent_row_key = DirAttrRowKey(parent_path);
  if (!parent_row_key.ok()) return parent_row_key.status();

  row.key = InodeKey::IdRecord(parent->id, name);
  row.parent = parent->id;

  // Figure 3: acquire write locks up front, then execute.
  TxnId txn = NextTxn();
  InodeId entry_kid = parent->id;
  InodeId parent_kid = parent_row_key->kid;
  uint64_t ts = NowTs();

  struct ShardLocks {
    InodeId kid;
    std::vector<std::string> keys;
  };
  std::vector<ShardLocks> plans;
  plans.push_back({entry_kid, {row.key.Encode()}});
  if (tafdb_->ShardIndexFor(parent_kid) == tafdb_->ShardIndexFor(entry_kid)) {
    plans[0].keys.push_back(parent_row_key->Encode());
  } else {
    plans.push_back({parent_kid, {parent_row_key->Encode()}});
  }
  std::sort(plans.begin(), plans.end(), [&](const auto& a, const auto& b) {
    return tafdb_->ShardIndexFor(a.kid) < tafdb_->ShardIndexFor(b.kid);
  });
  std::vector<InodeId> locked;
  auto unlock_all = [&] {
    for (InodeId kid : locked) UnlockOnShard(txn, kid);
  };
  for (auto& plan : plans) {
    Status st = LockOnShard(txn, plan.kid, plan.keys);
    if (!st.ok()) {
      unlock_all();
      return st;
    }
    locked.push_back(plan.kid);
  }

  // Interactive reads under locks.
  auto parent_row = ReadRow(*parent_row_key);
  if (!parent_row.ok()) {
    unlock_all();
    return parent_row.status();
  }
  if (parent_row->type != InodeType::kDirectory) {
    unlock_all();
    return Status::NotADirectory(parent_path);
  }
  if (ReadRow(row.key).ok()) {
    unlock_all();
    return Status::AlreadyExists(path);
  }

  // Buffered writes + (2PC) commit.
  std::map<size_t, PrimitiveOp> ops;
  ops[tafdb_->ShardIndexFor(entry_kid)].puts.push_back(row);
  InodeRecord parent_image = std::move(parent_row).value();
  parent_image.children += 1;
  if (row.type == InodeType::kDirectory) parent_image.links += 1;
  parent_image.mtime = ts;
  parent_image.lww_ts = ts;
  ops[tafdb_->ShardIndexFor(parent_kid)].puts.push_back(parent_image);
  Status commit_st = CommitWriteSets(std::move(ops), txn);
  unlock_all();
  if (commit_st.ok()) {
    CachePut(path, row.id, row.type);
  }
  return commit_st;
}

Status HopsFsEngine::Create(const std::string& path, uint32_t mode) {
  auto split = SplitParent(path);
  if (!split.ok()) return split.status();
  return InsertInode(path, MakeInlineRow(0, split->second, AllocId(),
                                         InodeType::kFile, mode, NowTs()));
}

Status HopsFsEngine::Mkdir(const std::string& path, uint32_t mode) {
  auto split = SplitParent(path);
  if (!split.ok()) return split.status();
  return InsertInode(path, MakeInlineRow(0, split->second, AllocId(),
                                         InodeType::kDirectory, mode, NowTs()));
}

Status HopsFsEngine::Symlink(const std::string& target,
                             const std::string& link_path) {
  auto split = SplitParent(link_path);
  if (!split.ok()) return split.status();
  InodeRecord row = MakeInlineRow(0, split->second, AllocId(),
                                  InodeType::kSymlink, 0777, NowTs());
  row.symlink_target = target;
  row.Set(InodeRecord::kFieldSymlink);
  return InsertInode(link_path, row);
}

Status HopsFsEngine::Unlink(const std::string& path) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  if (resolved->type == InodeType::kDirectory) {
    return Status::IsADirectory(path);
  }
  auto split = SplitParent(path);
  if (!split.ok()) return split.status();
  auto parent_row_key = DirAttrRowKey(split->first);
  if (!parent_row_key.ok()) return parent_row_key.status();
  InodeKey entry_key = InodeKey::IdRecord(resolved->parent, resolved->name);
  uint64_t ts = NowTs();
  TxnId txn = NextTxn();

  std::vector<std::pair<InodeId, std::vector<std::string>>> plans;
  plans.push_back({resolved->parent, {entry_key.Encode()}});
  if (tafdb_->ShardIndexFor(parent_row_key->kid) ==
      tafdb_->ShardIndexFor(resolved->parent)) {
    plans[0].second.push_back(parent_row_key->Encode());
  } else {
    plans.push_back({parent_row_key->kid, {parent_row_key->Encode()}});
  }
  std::sort(plans.begin(), plans.end(), [&](const auto& a, const auto& b) {
    return tafdb_->ShardIndexFor(a.first) < tafdb_->ShardIndexFor(b.first);
  });
  std::vector<InodeId> locked;
  auto unlock_all = [&] {
    for (InodeId kid : locked) UnlockOnShard(txn, kid);
  };
  for (auto& [kid, keys] : plans) {
    Status st = LockOnShard(txn, kid, keys);
    if (!st.ok()) {
      unlock_all();
      return st;
    }
    locked.push_back(kid);
  }

  auto entry = ReadRow(entry_key);
  if (!entry.ok()) {
    unlock_all();
    CacheErase(path);
    return entry.status();
  }
  if (entry->type == InodeType::kDirectory) {
    unlock_all();
    return Status::IsADirectory(path);
  }
  auto parent_row = ReadRow(*parent_row_key);
  if (!parent_row.ok()) {
    unlock_all();
    return parent_row.status();
  }

  std::map<size_t, PrimitiveOp> ops;
  DeleteSpec del;
  del.key = entry_key;
  ops[tafdb_->ShardIndexFor(resolved->parent)].deletes.push_back(del);
  InodeRecord parent_image = std::move(parent_row).value();
  parent_image.children -= 1;
  parent_image.mtime = ts;
  parent_image.lww_ts = ts;
  ops[tafdb_->ShardIndexFor(parent_row_key->kid)].puts.push_back(parent_image);
  Status commit_st = CommitWriteSets(std::move(ops), txn);
  unlock_all();
  CacheErase(path);
  if (commit_st.ok()) {
    filestore_->DeleteAttrAsync(entry->id);  // data blocks
  }
  return commit_st;
}

Status HopsFsEngine::Rmdir(const std::string& path) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  if (resolved->type != InodeType::kDirectory) {
    return Status::NotADirectory(path);
  }
  if (resolved->id == kRootInode) {
    return Status::InvalidArgument("cannot remove /");
  }
  auto split = SplitParent(path);
  if (!split.ok()) return split.status();
  auto parent_row_key = DirAttrRowKey(split->first);
  if (!parent_row_key.ok()) return parent_row_key.status();
  // The directory's own attribute row IS its dentry row.
  InodeKey dir_row_key = InodeKey::IdRecord(resolved->parent, resolved->name);
  uint64_t ts = NowTs();
  TxnId txn = NextTxn();

  std::vector<std::pair<InodeId, std::vector<std::string>>> plans;
  plans.push_back({resolved->parent, {dir_row_key.Encode()}});
  if (tafdb_->ShardIndexFor(parent_row_key->kid) ==
      tafdb_->ShardIndexFor(resolved->parent)) {
    plans[0].second.push_back(parent_row_key->Encode());
  } else {
    plans.push_back({parent_row_key->kid, {parent_row_key->Encode()}});
  }
  std::sort(plans.begin(), plans.end(), [&](const auto& a, const auto& b) {
    return tafdb_->ShardIndexFor(a.first) < tafdb_->ShardIndexFor(b.first);
  });
  std::vector<InodeId> locked;
  auto unlock_all = [&] {
    for (InodeId kid : locked) UnlockOnShard(txn, kid);
  };
  for (auto& [kid, keys] : plans) {
    Status st = LockOnShard(txn, kid, keys);
    if (!st.ok()) {
      unlock_all();
      return st;
    }
    locked.push_back(kid);
  }

  auto dir_row = ReadRow(dir_row_key);
  if (!dir_row.ok()) {
    unlock_all();
    CacheErase(path);
    return dir_row.status();
  }
  if (dir_row->children != 0) {
    unlock_all();
    return Status::NotEmpty(path);
  }
  auto parent_row = ReadRow(*parent_row_key);
  if (!parent_row.ok()) {
    unlock_all();
    return parent_row.status();
  }

  std::map<size_t, PrimitiveOp> ops;
  DeleteSpec del;
  del.key = dir_row_key;
  ops[tafdb_->ShardIndexFor(resolved->parent)].deletes.push_back(del);
  InodeRecord parent_image = std::move(parent_row).value();
  parent_image.children -= 1;
  parent_image.links -= 1;
  parent_image.mtime = ts;
  parent_image.lww_ts = ts;
  ops[tafdb_->ShardIndexFor(parent_row_key->kid)].puts.push_back(parent_image);
  Status commit_st = CommitWriteSets(std::move(ops), txn);
  unlock_all();
  CacheErase(path);
  return commit_st;
}

StatusOr<FileInfo> HopsFsEngine::Lookup(const std::string& path) {
  if (path == "/") {
    FileInfo info;
    info.id = kRootInode;
    info.type = InodeType::kDirectory;
    return info;
  }
  // A lookup is a real dentry read (only ancestors come from the cache).
  auto parent = ResolveParent(path);
  if (!parent.ok()) return parent.status();
  auto row = ReadRow(InodeKey::IdRecord(parent->parent, parent->name));
  if (!row.ok()) {
    if (row.status().IsNotFound()) CacheErase(path);
    return row.status();
  }
  CachePut(path, row->id, row->type);
  FileInfo info;
  info.id = row->id;
  info.type = row->type;
  return info;
}

StatusOr<FileInfo> HopsFsEngine::GetAttr(const std::string& path) {
  if (path == "/") {
    auto row = ReadRow(InodeKey::AttrRecord(kRootInode));
    if (!row.ok()) return row.status();
    return FileInfo::FromRecord(*row);
  }
  auto parent = ResolveParent(path);
  if (!parent.ok()) return parent.status();
  auto row = ReadRow(InodeKey::IdRecord(parent->parent, parent->name));
  if (!row.ok()) {
    if (row.status().IsNotFound()) CacheErase(path);
    return row.status();
  }
  CachePut(path, row->id, row->type);
  return FileInfo::FromRecord(*row);
}

Status HopsFsEngine::SetAttr(const std::string& path, const SetAttrSpec& spec) {
  InodeKey row_key = InodeKey::AttrRecord(kRootInode);
  if (path != "/") {
    auto parent = ResolveParent(path);
    if (!parent.ok()) return parent.status();
    row_key = InodeKey::IdRecord(parent->parent, parent->name);
  }
  uint64_t ts = NowTs();
  TxnId txn = NextTxn();
  CFS_RETURN_IF_ERROR(LockOnShard(txn, row_key.kid, {row_key.Encode()}));
  auto row = ReadRow(row_key);
  Status commit_st = row.status();
  if (row.ok()) {
    InodeRecord image = std::move(row).value();
    UpdateSpec update;
    update.lww.mode = spec.mode;
    update.lww.uid = spec.uid;
    update.lww.gid = spec.gid;
    update.lww.mtime = spec.mtime;
    update.lww.size = spec.size;
    update.lww.ctime = ts;
    update.lww.ts = ts;
    ApplyUpdateToRecord(update, 0, &image);
    std::map<size_t, PrimitiveOp> ops;
    ops[tafdb_->ShardIndexFor(row_key.kid)].puts.push_back(image);
    commit_st = CommitWriteSets(std::move(ops), txn);
  }
  UnlockOnShard(txn, row_key.kid);
  return commit_st;
}

StatusOr<std::vector<DirEntry>> HopsFsEngine::ReadDir(const std::string& path) {
  auto dir_id = ResolveDirId(path);
  if (!dir_id.ok()) return dir_id.status();
  auto rows = ScanDirRows(*dir_id);
  if (!rows.ok()) return rows.status();
  std::vector<DirEntry> out;
  out.reserve(rows->size());
  for (const auto& row : *rows) {
    out.push_back(DirEntry{row.key.kstr, row.id, row.type});
  }
  return out;
}

Status HopsFsEngine::Rename(const std::string& from, const std::string& to) {
  if (from == to) return Status::Ok();
  // Renaming an ancestor into its own subtree is an orphan loop.
  if (to.size() > from.size() && to.compare(0, from.size(), from) == 0 &&
      to[from.size()] == '/') {
    return Status::InvalidArgument("rename into own subtree");
  }
  auto src = Resolve(from);
  if (!src.ok()) return src.status();
  auto dst_parent = ResolveParent(to);
  if (!dst_parent.ok()) return dst_parent.status();
  uint64_t ts = NowTs();
  TxnId txn = NextTxn();

  // Heavy subtree locking (§5.6): both top-level subtrees are exclusively
  // locked on the root shard, serializing every rename that shares them.
  std::vector<std::string> subtree_keys = {SubtreeLockKey(from),
                                           SubtreeLockKey(to)};
  std::sort(subtree_keys.begin(), subtree_keys.end());
  subtree_keys.erase(std::unique(subtree_keys.begin(), subtree_keys.end()),
                     subtree_keys.end());
  CFS_RETURN_IF_ERROR(LockOnShard(txn, kRootInode, subtree_keys));
  auto unlock_subtrees = [&] { UnlockOnShard(txn, kRootInode); };

  InodeKey src_key = InodeKey::IdRecord(src->parent, src->name);
  InodeKey dst_key = InodeKey::IdRecord(dst_parent->parent, dst_parent->name);
  auto src_parent_row_key = DirAttrRowKey(SplitParent(from)->first);
  auto dst_parent_row_key = DirAttrRowKey(SplitParent(to)->first);
  if (!src_parent_row_key.ok() || !dst_parent_row_key.ok()) {
    unlock_subtrees();
    return src_parent_row_key.ok() ? dst_parent_row_key.status()
                                   : src_parent_row_key.status();
  }

  // Row locks across the involved shards (ordered).
  std::map<size_t, std::pair<InodeId, std::vector<std::string>>> lock_plan;
  auto add_lock = [&](const InodeKey& key) {
    auto& slot = lock_plan[tafdb_->ShardIndexFor(key.kid)];
    slot.first = key.kid;
    slot.second.push_back(key.Encode());
  };
  add_lock(src_key);
  add_lock(dst_key);
  add_lock(*src_parent_row_key);
  add_lock(*dst_parent_row_key);
  std::vector<InodeId> locked;
  auto unlock_all = [&] {
    for (InodeId kid : locked) UnlockOnShard(txn, kid);
    unlock_subtrees();
  };
  for (auto& [index, plan] : lock_plan) {
    Status st = LockOnShard(txn, plan.first, plan.second);
    if (!st.ok()) {
      unlock_all();
      return st;
    }
    locked.push_back(plan.first);
  }

  auto src_row = ReadRow(src_key);
  if (!src_row.ok()) {
    unlock_all();
    CacheErase(from);
    return src_row.status();
  }
  auto dst_row = ReadRow(dst_key);
  bool dst_exists = dst_row.ok();
  if (dst_exists) {
    if (src_row->type == InodeType::kDirectory) {
      if (dst_row->type != InodeType::kDirectory) {
        unlock_all();
        return Status::NotADirectory(to);
      }
      if (dst_row->children != 0) {
        unlock_all();
        return Status::NotEmpty(to);
      }
    } else if (dst_row->type == InodeType::kDirectory) {
      unlock_all();
      return Status::IsADirectory(to);
    }
  }
  auto src_parent_row = ReadRow(*src_parent_row_key);
  auto dst_parent_row = ReadRow(*dst_parent_row_key);
  if (!src_parent_row.ok() || !dst_parent_row.ok()) {
    unlock_all();
    return src_parent_row.ok() ? dst_parent_row.status()
                               : src_parent_row.status();
  }

  std::map<size_t, PrimitiveOp> ops;
  {
    DeleteSpec del;
    del.key = src_key;
    ops[tafdb_->ShardIndexFor(src_key.kid)].deletes.push_back(del);
  }
  {
    InodeRecord moved = std::move(src_row).value();
    moved.key = dst_key;
    moved.parent = dst_parent->parent;
    ops[tafdb_->ShardIndexFor(dst_key.kid)].puts.push_back(moved);
  }
  bool same_parent_row = *src_parent_row_key == *dst_parent_row_key;
  {
    InodeRecord image = std::move(src_parent_row).value();
    image.children -= 1;
    if (same_parent_row && !dst_exists) image.children += 1;
    image.mtime = ts;
    image.lww_ts = ts;
    ops[tafdb_->ShardIndexFor(src_parent_row_key->kid)].puts.push_back(image);
  }
  if (!same_parent_row) {
    InodeRecord image = std::move(dst_parent_row).value();
    if (!dst_exists) image.children += 1;
    image.mtime = ts;
    image.lww_ts = ts;
    ops[tafdb_->ShardIndexFor(dst_parent_row_key->kid)].puts.push_back(image);
  }
  Status commit_st = CommitWriteSets(std::move(ops), txn);
  unlock_all();
  CacheErase(from);
  CacheErase(to);
  if (commit_st.ok() && dst_exists &&
      dst_row->type != InodeType::kDirectory) {
    filestore_->DeleteAttrAsync(dst_row->id);
  }
  return commit_st;
}

StatusOr<std::string> HopsFsEngine::ReadLink(const std::string& path) {
  auto parent = ResolveParent(path);
  if (!parent.ok()) return parent.status();
  auto row = ReadRow(InodeKey::IdRecord(parent->parent, parent->name));
  if (!row.ok()) return row.status();
  if (row->type != InodeType::kSymlink) {
    return Status::InvalidArgument("not a symlink");
  }
  return row->symlink_target;
}

Status HopsFsEngine::Link(const std::string&, const std::string&) {
  // HopsFS implements HDFS semantics: no hard links (§5.8).
  return Status::Unimplemented("HopsFS/HDFS has no hard links");
}

Status HopsFsEngine::Write(const std::string& path, uint64_t offset,
                           const std::string& data) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  if (resolved->type == InodeType::kDirectory) return Status::IsADirectory(path);
  uint64_t ts = NowTs();
  FileStoreNode* node = filestore_->NodeFor(resolved->id);
  size_t block_size = filestore_->block_size();
  Status st = net_->Call(self_, node->ServiceNetId(), [&] {
    return node->WriteBlock(resolved->id, offset / block_size, data, ts);
  });
  if (!st.ok()) return st;
  // Size bookkeeping on the inline row via a short locked transaction.
  SetAttrSpec spec;
  spec.mtime = ts;
  return SetAttr(path, spec);
}

StatusOr<std::string> HopsFsEngine::Read(const std::string& path,
                                         uint64_t offset, size_t length) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  if (resolved->type == InodeType::kDirectory) return Status::IsADirectory(path);
  FileStoreNode* node = filestore_->NodeFor(resolved->id);
  size_t block_size = filestore_->block_size();
  auto block = net_->Call(self_, node->ServiceNetId(), [&] {
    return node->ReadBlock(resolved->id, offset / block_size);
  });
  if (!block.ok()) return block.status();
  size_t start = offset % block_size;
  if (start >= block->size()) return std::string();
  return block->substr(start, length);
}

}  // namespace cfs
