// InfiniFS-like baseline (Lv et al., FAST'22), reimplemented the way the
// CFS paper did (§5.1), with the cost profile §5.2-5.7 compares against:
//
//   - directory metadata split into ACCESS and CONTENT parts: a dentry row
//     <parent, name> carries the access attributes inline (grouped with the
//     parent — "locality-aware grouping"), while a directory's content
//     record <id, "/_ATTR"> (children count) lives on its own id's shard;
//   - file attributes are inline in the dentry row, i.e. grouped with the
//     parent directory — which is why a huge shared directory's getattr
//     load lands on a single shard (Fig 12);
//   - create/unlink are SINGLE-SHARD lock-based transactions (its ad-hoc
//     distributed-transaction elimination), but mkdir/rmdir and normal
//     renames still need 2PC across the parent's and the directory's own
//     shards (§5.4: "both HopsFS and InfiniFS adopt 2PC for mkdir");
//   - rename goes through lock-based transactions; intra-directory file
//     renames are single-shard but still pay lock + interactive round
//     trips (what CFS's fast-path primitive removes, §5.6).

#ifndef CFS_BASELINES_INFINIFS_INFINIFS_H_
#define CFS_BASELINES_INFINIFS_INFINIFS_H_

#include <functional>

#include "src/baselines/baseline_common.h"

namespace cfs {

class InfiniFsEngine : public BaselineEngineBase {
 public:
  InfiniFsEngine(SimNet* net, NodeId self, TafDbCluster* tafdb,
                 FileStoreCluster* filestore, int64_t lock_timeout_us)
      : BaselineEngineBase(net, self, tafdb, filestore, lock_timeout_us) {}

  static Status BootstrapRoot(TafDbCluster*) { return Status::Ok(); }

  Status Mkdir(const std::string& path, uint32_t mode) override;
  Status Rmdir(const std::string& path) override;
  Status Create(const std::string& path, uint32_t mode) override;
  Status Unlink(const std::string& path) override;
  StatusOr<FileInfo> Lookup(const std::string& path) override;
  StatusOr<FileInfo> GetAttr(const std::string& path) override;
  Status SetAttr(const std::string& path, const SetAttrSpec& spec) override;
  StatusOr<std::vector<DirEntry>> ReadDir(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Symlink(const std::string& target,
                 const std::string& link_path) override;
  StatusOr<std::string> ReadLink(const std::string& path) override;
  Status Link(const std::string& existing,
              const std::string& link_path) override;
  Status Write(const std::string& path, uint64_t offset,
               const std::string& data) override;
  StatusOr<std::string> Read(const std::string& path, uint64_t offset,
                             size_t length) override;

 private:
  // The record carrying a directory's children count ("content" part): the
  // root uses the bootstrap record, everyone else <id, "/_ATTR">.
  static InodeKey ContentKey(InodeId dir) { return InodeKey::AttrRecord(dir); }

  Status InsertInode(const std::string& path, InodeRecord row);

  // InfiniFS co-locates each MDS with its database shard, so a
  // single-group transaction's critical section runs entirely server-side:
  // one RPC to the shard, with the row locks spanning only local reads and
  // the replicated commit — NOT client-side network round trips. This is
  // its ad-hoc distributed-transaction elimination; cross-group operations
  // (mkdir/rmdir/cross-directory rename) still pay coordinator-held locks
  // plus 2PC.
  Status ServerSideTxn(InodeId group,
                       const std::function<Status(TafDbShard*)>& body);
};

using InfiniFsCluster = BaselineCluster<InfiniFsEngine>;

}  // namespace cfs

#endif  // CFS_BASELINES_INFINIFS_INFINIFS_H_
