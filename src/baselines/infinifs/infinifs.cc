#include "src/baselines/infinifs/infinifs.h"

#include <algorithm>

namespace cfs {
namespace {

InodeRecord MakeInlineRow(const std::string& name, InodeId parent, InodeId id,
                          InodeType type, uint32_t mode, uint64_t ts) {
  InodeRecord row = InodeRecord::MakeDirAttr(id, ts, mode, 0, 0, parent);
  row.key = InodeKey::IdRecord(parent, name);
  row.type = type;
  if (type != InodeType::kDirectory) {
    row.links = 1;
  }
  // The access part never carries the children count; that lives in the
  // content record.
  row.present &= ~static_cast<uint32_t>(InodeRecord::kFieldChildren);
  return row;
}

}  // namespace

Status InfiniFsEngine::ServerSideTxn(
    InodeId group, const std::function<Status(TafDbShard*)>& body) {
  TafDbShard* shard = tafdb_->ShardFor(group);
  return net_->Call(self_, shard->ServiceNetId(),
                    [&] { return body(shard); });
}

Status InfiniFsEngine::InsertInode(const std::string& path, InodeRecord row) {
  auto split = SplitParent(path);
  if (!split.ok()) return split.status();
  auto& [parent_path, name] = *split;
  auto parent = Resolve(parent_path);
  if (!parent.ok()) return parent.status();
  if (parent->type != InodeType::kDirectory) {
    return Status::NotADirectory(parent_path);
  }
  InodeId P = parent->id;
  row.key = InodeKey::IdRecord(P, name);
  row.parent = P;
  uint64_t ts = NowTs();
  TxnId txn = NextTxn();
  InodeKey content_key = ContentKey(P);
  bool is_dir = row.type == InodeType::kDirectory;
  InodeId new_id = row.id;

  Status commit_st;
  if (!is_dir) {
    // Single-group create: the whole critical section executes at the
    // MDS co-located with the group's shard — one RPC, short lock span.
    commit_st = ServerSideTxn(P, [&](TafDbShard* shard) -> Status {
      Status lst = shard->locks()->LockAll(
          txn, {row.key.Encode(), content_key.Encode()},
          LockMode::kExclusive, lock_timeout_us_);
      if (!lst.ok()) return lst;
      auto content = shard->Get(content_key);
      Status st;
      if (!content.ok()) {
        st = content.status();
      } else if (shard->Get(row.key).ok()) {
        st = Status::AlreadyExists(path);
      } else {
        PrimitiveOp op;
        op.puts.push_back(row);
        InodeRecord content_image = std::move(content).value();
        content_image.children += 1;
        content_image.mtime = ts;
        content_image.lww_ts = ts;
        op.puts.push_back(content_image);
        st = shard->CommitLocal(op).status;
      }
      shard->locks()->UnlockAll(txn);
      return st;
    });
    if (commit_st.ok()) {
      CachePut(path, new_id, row.type);
    }
    return commit_st;
  }

  // Directory creation spans the parent's group and the new directory's
  // own group: coordinator-held locks plus 2PC.
  CFS_RETURN_IF_ERROR(LockOnShard(
      txn, P, {row.key.Encode(), content_key.Encode()}));
  auto unlock = [&] { UnlockOnShard(txn, P); };

  auto content = ReadRow(content_key);
  if (!content.ok()) {
    unlock();
    return content.status();
  }
  if (ReadRow(row.key).ok()) {
    unlock();
    return Status::AlreadyExists(path);
  }

  std::map<size_t, PrimitiveOp> ops;
  PrimitiveOp& parent_op = ops[tafdb_->ShardIndexFor(P)];
  parent_op.puts.push_back(row);
  InodeRecord content_image = std::move(content).value();
  content_image.children += 1;
  content_image.links += 1;
  content_image.mtime = ts;
  content_image.lww_ts = ts;
  parent_op.puts.push_back(content_image);
  InodeRecord new_content = InodeRecord::MakeDirAttr(new_id, ts, row.mode,
                                                     row.uid, row.gid, P);
  ops[tafdb_->ShardIndexFor(new_id)].puts.push_back(new_content);
  commit_st = CommitWriteSets(std::move(ops), txn);
  unlock();
  if (commit_st.ok()) {
    CachePut(path, new_id, row.type);
  }
  return commit_st;
}

Status InfiniFsEngine::Create(const std::string& path, uint32_t mode) {
  auto split = SplitParent(path);
  if (!split.ok()) return split.status();
  return InsertInode(path, MakeInlineRow(split->second, 0, AllocId(),
                                         InodeType::kFile, mode, NowTs()));
}

Status InfiniFsEngine::Mkdir(const std::string& path, uint32_t mode) {
  auto split = SplitParent(path);
  if (!split.ok()) return split.status();
  return InsertInode(path, MakeInlineRow(split->second, 0, AllocId(),
                                         InodeType::kDirectory, mode, NowTs()));
}

Status InfiniFsEngine::Symlink(const std::string& target,
                               const std::string& link_path) {
  auto split = SplitParent(link_path);
  if (!split.ok()) return split.status();
  InodeRecord row = MakeInlineRow(split->second, 0, AllocId(),
                                  InodeType::kSymlink, 0777, NowTs());
  row.symlink_target = target;
  row.Set(InodeRecord::kFieldSymlink);
  return InsertInode(link_path, row);
}

Status InfiniFsEngine::Unlink(const std::string& path) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  if (resolved->type == InodeType::kDirectory) {
    return Status::IsADirectory(path);
  }
  InodeId P = resolved->parent;
  InodeKey entry_key = InodeKey::IdRecord(P, resolved->name);
  InodeKey content_key = ContentKey(P);
  uint64_t ts = NowTs();
  TxnId txn = NextTxn();

  InodeId victim_id = kInvalidInode;
  Status commit_st = ServerSideTxn(P, [&](TafDbShard* shard) -> Status {
    Status lst = shard->locks()->LockAll(
        txn, {entry_key.Encode(), content_key.Encode()},
        LockMode::kExclusive, lock_timeout_us_);
    if (!lst.ok()) return lst;
    Status st;
    auto entry = shard->Get(entry_key);
    if (!entry.ok()) {
      st = entry.status();
    } else if (entry->type == InodeType::kDirectory) {
      st = Status::IsADirectory(path);
    } else {
      auto content = shard->Get(content_key);
      if (!content.ok()) {
        st = content.status();
      } else {
        victim_id = entry->id;
        PrimitiveOp op;
        DeleteSpec del;
        del.key = entry_key;
        op.deletes.push_back(del);
        InodeRecord content_image = std::move(content).value();
        content_image.children -= 1;
        content_image.mtime = ts;
        content_image.lww_ts = ts;
        op.puts.push_back(content_image);
        st = shard->CommitLocal(op).status;
      }
    }
    shard->locks()->UnlockAll(txn);
    return st;
  });
  CacheErase(path);
  if (commit_st.ok() && victim_id != kInvalidInode) {
    filestore_->DeleteAttrAsync(victim_id);  // data blocks
  }
  return commit_st;
}

Status InfiniFsEngine::Rmdir(const std::string& path) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  if (resolved->type != InodeType::kDirectory) {
    return Status::NotADirectory(path);
  }
  if (resolved->id == kRootInode) {
    return Status::InvalidArgument("cannot remove /");
  }
  InodeId P = resolved->parent;
  InodeId D = resolved->id;
  InodeKey entry_key = InodeKey::IdRecord(P, resolved->name);
  InodeKey parent_content = ContentKey(P);
  InodeKey dir_content = ContentKey(D);
  uint64_t ts = NowTs();
  TxnId txn = NextTxn();

  // Lock the parent-side keys and the directory's content record, in
  // global shard order (2PC spans hash(P) and hash(D)).
  struct Plan {
    InodeId kid;
    std::vector<std::string> keys;
  };
  std::vector<Plan> plans;
  plans.push_back({P, {entry_key.Encode(), parent_content.Encode()}});
  if (tafdb_->ShardIndexFor(D) == tafdb_->ShardIndexFor(P)) {
    plans[0].keys.push_back(dir_content.Encode());
  } else {
    plans.push_back({D, {dir_content.Encode()}});
  }
  std::sort(plans.begin(), plans.end(), [&](const Plan& a, const Plan& b) {
    return tafdb_->ShardIndexFor(a.kid) < tafdb_->ShardIndexFor(b.kid);
  });
  std::vector<InodeId> locked;
  auto unlock_all = [&] {
    for (InodeId kid : locked) UnlockOnShard(txn, kid);
  };
  for (auto& plan : plans) {
    Status st = LockOnShard(txn, plan.kid, plan.keys);
    if (!st.ok()) {
      unlock_all();
      return st;
    }
    locked.push_back(plan.kid);
  }

  auto dir_row = ReadRow(dir_content);
  if (!dir_row.ok()) {
    unlock_all();
    CacheErase(path);
    return dir_row.status();
  }
  if (dir_row->children != 0) {
    unlock_all();
    return Status::NotEmpty(path);
  }
  auto content = ReadRow(parent_content);
  if (!content.ok()) {
    unlock_all();
    return content.status();
  }

  std::map<size_t, PrimitiveOp> ops;
  {
    PrimitiveOp& op = ops[tafdb_->ShardIndexFor(P)];
    DeleteSpec del;
    del.key = entry_key;
    op.deletes.push_back(del);
    InodeRecord image = std::move(content).value();
    image.children -= 1;
    image.links -= 1;
    image.mtime = ts;
    image.lww_ts = ts;
    op.puts.push_back(image);
  }
  {
    PrimitiveOp& op = ops[tafdb_->ShardIndexFor(D)];
    DeleteSpec del;
    del.key = dir_content;
    op.deletes.push_back(del);
  }
  Status commit_st = CommitWriteSets(std::move(ops), txn);
  unlock_all();
  CacheErase(path);
  return commit_st;
}

StatusOr<FileInfo> InfiniFsEngine::Lookup(const std::string& path) {
  if (path == "/") {
    FileInfo info;
    info.id = kRootInode;
    info.type = InodeType::kDirectory;
    return info;
  }
  // A lookup is a real dentry read (only ancestors come from the cache).
  auto parent = ResolveParent(path);
  if (!parent.ok()) return parent.status();
  auto row = ReadRow(InodeKey::IdRecord(parent->parent, parent->name));
  if (!row.ok()) {
    if (row.status().IsNotFound()) CacheErase(path);
    return row.status();
  }
  CachePut(path, row->id, row->type);
  FileInfo info;
  info.id = row->id;
  info.type = row->type;
  return info;
}

StatusOr<FileInfo> InfiniFsEngine::GetAttr(const std::string& path) {
  if (path == "/") {
    auto row = ReadRow(ContentKey(kRootInode));
    if (!row.ok()) return row.status();
    return FileInfo::FromRecord(*row);
  }
  auto parent = ResolveParent(path);
  if (!parent.ok()) return parent.status();
  auto row = ReadRow(InodeKey::IdRecord(parent->parent, parent->name));
  if (!row.ok()) {
    if (row.status().IsNotFound()) CacheErase(path);
    return row.status();
  }
  CachePut(path, row->id, row->type);
  FileInfo info = FileInfo::FromRecord(*row);
  if (row->type == InodeType::kDirectory) {
    // Children count lives in the content part.
    auto content = ReadRow(ContentKey(row->id));
    if (content.ok()) {
      info.children = content->children;
      info.links = content->links;
    }
  }
  return info;
}

Status InfiniFsEngine::SetAttr(const std::string& path,
                               const SetAttrSpec& spec) {
  InodeKey row_key = ContentKey(kRootInode);
  if (path != "/") {
    auto parent = ResolveParent(path);
    if (!parent.ok()) return parent.status();
    row_key = InodeKey::IdRecord(parent->parent, parent->name);
  }
  uint64_t ts = NowTs();
  TxnId txn = NextTxn();
  return ServerSideTxn(row_key.kid, [&](TafDbShard* shard) -> Status {
    Status lst = shard->locks()->Lock(txn, row_key.Encode(),
                                      LockMode::kExclusive, lock_timeout_us_);
    if (!lst.ok()) return lst;
    auto row = shard->Get(row_key);
    Status st = row.status();
    if (row.ok()) {
      InodeRecord image = std::move(row).value();
      UpdateSpec update;
      update.lww.mode = spec.mode;
      update.lww.uid = spec.uid;
      update.lww.gid = spec.gid;
      update.lww.mtime = spec.mtime;
      update.lww.size = spec.size;
      update.lww.ctime = ts;
      update.lww.ts = ts;
      ApplyUpdateToRecord(update, 0, &image);
      PrimitiveOp op;
      op.puts.push_back(image);
      st = shard->CommitLocal(op).status;
    }
    shard->locks()->UnlockAll(txn);
    return st;
  });
}

StatusOr<std::vector<DirEntry>> InfiniFsEngine::ReadDir(
    const std::string& path) {
  auto dir_id = ResolveDirId(path);
  if (!dir_id.ok()) return dir_id.status();
  auto rows = ScanDirRows(*dir_id);
  if (!rows.ok()) return rows.status();
  std::vector<DirEntry> out;
  out.reserve(rows->size());
  for (const auto& row : *rows) {
    out.push_back(DirEntry{row.key.kstr, row.id, row.type});
  }
  return out;
}

Status InfiniFsEngine::Rename(const std::string& from, const std::string& to) {
  if (from == to) return Status::Ok();
  if (to.size() > from.size() && to.compare(0, from.size(), from) == 0 &&
      to[from.size()] == '/') {
    return Status::InvalidArgument("rename into own subtree");
  }
  auto src = Resolve(from);
  if (!src.ok()) return src.status();
  auto dst_parent = ResolveParent(to);
  if (!dst_parent.ok()) return dst_parent.status();
  uint64_t ts = NowTs();
  TxnId txn = NextTxn();
  bool is_dir = src->type == InodeType::kDirectory;

  if (!is_dir && src->parent == dst_parent->parent) {
    // Intra-directory file rename: single-group, executed server-side at
    // the co-located MDS (still a lock-based read-modify-write, which is
    // what CFS's fast-path primitive beats in §5.6).
    InodeId P = src->parent;
    InodeKey src_key_local = InodeKey::IdRecord(P, src->name);
    InodeKey dst_key_local = InodeKey::IdRecord(P, dst_parent->name);
    InodeKey content_local = ContentKey(P);
    InodeId replaced = kInvalidInode;
    Status st = ServerSideTxn(P, [&](TafDbShard* shard) -> Status {
      Status lst = shard->locks()->LockAll(
          txn,
          {src_key_local.Encode(), dst_key_local.Encode(),
           content_local.Encode()},
          LockMode::kExclusive, lock_timeout_us_);
      if (!lst.ok()) return lst;
      Status body_st;
      auto src_row = shard->Get(src_key_local);
      if (!src_row.ok()) {
        body_st = src_row.status();
      } else {
        auto dst_row = shard->Get(dst_key_local);
        bool dst_exists = dst_row.ok();
        if (dst_exists && dst_row->type == InodeType::kDirectory) {
          body_st = Status::IsADirectory(to);
        } else {
          auto content = shard->Get(content_local);
          if (!content.ok()) {
            body_st = content.status();
          } else {
            if (dst_exists) replaced = dst_row->id;
            PrimitiveOp op;
            DeleteSpec del;
            del.key = src_key_local;
            op.deletes.push_back(del);
            InodeRecord moved = std::move(src_row).value();
            moved.key = dst_key_local;
            op.puts.push_back(moved);
            InodeRecord image = std::move(content).value();
            if (dst_exists) image.children -= 1;
            image.mtime = ts;
            image.lww_ts = ts;
            op.puts.push_back(image);
            body_st = shard->CommitLocal(op).status;
          }
        }
      }
      shard->locks()->UnlockAll(txn);
      return body_st;
    });
    CacheErase(from);
    CacheErase(to);
    if (st.ok() && replaced != kInvalidInode) {
      filestore_->DeleteAttrAsync(replaced);
    }
    return st;
  }

  // Directory renames are serialized through a coordinator-wide lock so the
  // subtree-loop check above stays sound under concurrency.
  bool have_global = false;
  if (is_dir) {
    CFS_RETURN_IF_ERROR(LockOnShard(txn, kRootInode, {"ifs-rename-dir"}));
    have_global = true;
  }

  InodeKey src_key = InodeKey::IdRecord(src->parent, src->name);
  InodeKey dst_key = InodeKey::IdRecord(dst_parent->parent, dst_parent->name);
  InodeKey src_content = ContentKey(src->parent);
  InodeKey dst_content = ContentKey(dst_parent->parent);

  std::map<size_t, std::pair<InodeId, std::vector<std::string>>> lock_plan;
  auto add_lock = [&](const InodeKey& key) {
    auto& slot = lock_plan[tafdb_->ShardIndexFor(key.kid)];
    slot.first = key.kid;
    slot.second.push_back(key.Encode());
  };
  add_lock(src_key);
  add_lock(dst_key);
  add_lock(src_content);
  add_lock(dst_content);
  std::vector<InodeId> locked;
  auto unlock_all = [&] {
    for (InodeId kid : locked) UnlockOnShard(txn, kid);
    if (have_global) UnlockOnShard(txn, kRootInode);
  };
  for (auto& [index, plan] : lock_plan) {
    Status st = LockOnShard(txn, plan.first, plan.second);
    if (!st.ok()) {
      unlock_all();
      return st;
    }
    locked.push_back(plan.first);
  }

  auto src_row = ReadRow(src_key);
  if (!src_row.ok()) {
    unlock_all();
    CacheErase(from);
    return src_row.status();
  }
  auto dst_row = ReadRow(dst_key);
  bool dst_exists = dst_row.ok();
  if (dst_exists) {
    if (src_row->type == InodeType::kDirectory) {
      if (dst_row->type != InodeType::kDirectory) {
        unlock_all();
        return Status::NotADirectory(to);
      }
      auto dst_dir_content = ReadRow(ContentKey(dst_row->id));
      if (dst_dir_content.ok() && dst_dir_content->children != 0) {
        unlock_all();
        return Status::NotEmpty(to);
      }
    } else if (dst_row->type == InodeType::kDirectory) {
      unlock_all();
      return Status::IsADirectory(to);
    }
  }
  auto src_content_row = ReadRow(src_content);
  auto dst_content_row = ReadRow(dst_content);
  if (!src_content_row.ok() || !dst_content_row.ok()) {
    unlock_all();
    return src_content_row.ok() ? dst_content_row.status()
                                : src_content_row.status();
  }

  std::map<size_t, PrimitiveOp> ops;
  {
    DeleteSpec del;
    del.key = src_key;
    ops[tafdb_->ShardIndexFor(src_key.kid)].deletes.push_back(del);
  }
  {
    InodeRecord moved = std::move(src_row).value();
    moved.key = dst_key;
    moved.parent = dst_parent->parent;
    ops[tafdb_->ShardIndexFor(dst_key.kid)].puts.push_back(moved);
    if (dst_exists && dst_row->type == InodeType::kDirectory) {
      DeleteSpec del;
      del.key = ContentKey(dst_row->id);
      del.ifexist = true;
      ops[tafdb_->ShardIndexFor(dst_row->id)].deletes.push_back(del);
    }
  }
  bool same_parent = src->parent == dst_parent->parent;
  {
    InodeRecord image = std::move(src_content_row).value();
    image.children -= 1;
    if (same_parent && !dst_exists) image.children += 1;
    image.mtime = ts;
    image.lww_ts = ts;
    ops[tafdb_->ShardIndexFor(src_content.kid)].puts.push_back(image);
  }
  if (!same_parent) {
    InodeRecord image = std::move(dst_content_row).value();
    if (!dst_exists) image.children += 1;
    image.mtime = ts;
    image.lww_ts = ts;
    ops[tafdb_->ShardIndexFor(dst_content.kid)].puts.push_back(image);
  }
  if (is_dir) {
    // Reparent the moved directory's content record.
    auto moved_content = ReadRow(ContentKey(src->id));
    if (moved_content.ok()) {
      InodeRecord image = std::move(moved_content).value();
      image.parent = dst_parent->parent;
      image.Set(InodeRecord::kFieldParent);
      ops[tafdb_->ShardIndexFor(src->id)].puts.push_back(image);
    }
  }
  Status commit_st = CommitWriteSets(std::move(ops), txn);
  unlock_all();
  CacheErase(from);
  CacheErase(to);
  if (commit_st.ok() && dst_exists &&
      dst_row->type != InodeType::kDirectory) {
    filestore_->DeleteAttrAsync(dst_row->id);
  }
  return commit_st;
}

StatusOr<std::string> InfiniFsEngine::ReadLink(const std::string& path) {
  auto parent = ResolveParent(path);
  if (!parent.ok()) return parent.status();
  auto row = ReadRow(InodeKey::IdRecord(parent->parent, parent->name));
  if (!row.ok()) return row.status();
  if (row->type != InodeType::kSymlink) {
    return Status::InvalidArgument("not a symlink");
  }
  return row->symlink_target;
}

Status InfiniFsEngine::Link(const std::string&, const std::string&) {
  // Inline-attribute grouping cannot represent multi-parent inodes.
  return Status::Unimplemented("InfiniFS baseline has no hard links");
}

Status InfiniFsEngine::Write(const std::string& path, uint64_t offset,
                             const std::string& data) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  if (resolved->type == InodeType::kDirectory) return Status::IsADirectory(path);
  uint64_t ts = NowTs();
  FileStoreNode* node = filestore_->NodeFor(resolved->id);
  size_t block_size = filestore_->block_size();
  Status st = net_->Call(self_, node->ServiceNetId(), [&] {
    return node->WriteBlock(resolved->id, offset / block_size, data, ts);
  });
  if (!st.ok()) return st;
  SetAttrSpec spec;
  spec.mtime = ts;
  return SetAttr(path, spec);
}

StatusOr<std::string> InfiniFsEngine::Read(const std::string& path,
                                           uint64_t offset, size_t length) {
  auto resolved = Resolve(path);
  if (!resolved.ok()) return resolved.status();
  if (resolved->type == InodeType::kDirectory) return Status::IsADirectory(path);
  FileStoreNode* node = filestore_->NodeFor(resolved->id);
  size_t block_size = filestore_->block_size();
  auto block = net_->Call(self_, node->ServiceNetId(), [&] {
    return node->ReadBlock(resolved->id, offset / block_size);
  });
  if (!block.ok()) return block.status();
  size_t start = offset % block_size;
  if (start >= block->size()) return std::string();
  return block->substr(start, length);
}

}  // namespace cfs
