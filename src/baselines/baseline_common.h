// Shared scaffolding for the two baseline systems the paper compares
// against (§5.1): a HopsFS-like and an InfiniFS-like metadata service, both
// reimplemented over the same substrates as CFS (the paper likewise
// reimplemented InfiniFS).
//
// Common baseline architecture:
//   - a metadata PROXY layer: clients forward every call one hop to a
//     proxy node, where the engine resolves paths and coordinates
//     transactions (HopsFS namenodes / InfiniFS MDS processes);
//   - hash-of-kID partitioning over a TafDB-style table cluster;
//   - INLINE attribute rows: a dentry row <parent, name> carries the full
//     attributes of the child (no separate attribute tier), which is what
//     concentrates a big directory's getattr load on one shard (Fig 12);
//   - lock-based read-modify-write transactions: row locks held across
//     every network round trip of the transaction, 2PC for cross-shard
//     write sets.

#ifndef CFS_BASELINES_BASELINE_COMMON_H_
#define CFS_BASELINES_BASELINE_COMMON_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/metadata_client.h"
#include "src/filestore/filestore.h"
#include "src/common/thread_annotations.h"
#include "src/net/simnet.h"
#include "src/tafdb/tafdb.h"
#include "src/txn/timestamp_oracle.h"
#include "src/txn/two_phase_commit.h"

namespace cfs {

struct BaselineOptions {
  size_t num_servers = 8;
  size_t num_proxies = 4;
  TafDbOptions tafdb;        // partition forced to kHashKid
  FileStoreOptions filestore;  // data blocks only; attrs are inline rows
  NetOptions net;
  int64_t lock_timeout_us = 4000000;
};

// Forwards every MetadataClient call through SimNet to an engine living on
// another node (the proxy hop).
class ForwardingClient : public MetadataClient {
 public:
  ForwardingClient(SimNet* net, NodeId self, NodeId target,
                   MetadataClient* engine)
      : net_(net), self_(self), target_(target), engine_(engine) {}

  Status Mkdir(const std::string& path, uint32_t mode) override {
    return net_->Call(self_, target_, [&] { return engine_->Mkdir(path, mode); });
  }
  Status Rmdir(const std::string& path) override {
    return net_->Call(self_, target_, [&] { return engine_->Rmdir(path); });
  }
  Status Create(const std::string& path, uint32_t mode) override {
    return net_->Call(self_, target_,
                      [&] { return engine_->Create(path, mode); });
  }
  Status Unlink(const std::string& path) override {
    return net_->Call(self_, target_, [&] { return engine_->Unlink(path); });
  }
  StatusOr<FileInfo> Lookup(const std::string& path) override {
    return net_->Call(self_, target_,
                      [&]() -> StatusOr<FileInfo> { return engine_->Lookup(path); });
  }
  StatusOr<FileInfo> GetAttr(const std::string& path) override {
    return net_->Call(self_, target_, [&]() -> StatusOr<FileInfo> {
      return engine_->GetAttr(path);
    });
  }
  Status SetAttr(const std::string& path, const SetAttrSpec& spec) override {
    return net_->Call(self_, target_,
                      [&] { return engine_->SetAttr(path, spec); });
  }
  StatusOr<std::vector<DirEntry>> ReadDir(const std::string& path) override {
    return net_->Call(self_, target_,
                      [&]() -> StatusOr<std::vector<DirEntry>> {
                        return engine_->ReadDir(path);
                      });
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return net_->Call(self_, target_, [&] { return engine_->Rename(from, to); });
  }
  Status Symlink(const std::string& target,
                 const std::string& link_path) override {
    return net_->Call(self_, target_,
                      [&] { return engine_->Symlink(target, link_path); });
  }
  StatusOr<std::string> ReadLink(const std::string& path) override {
    return net_->Call(self_, target_, [&]() -> StatusOr<std::string> {
      return engine_->ReadLink(path);
    });
  }
  Status Link(const std::string& existing,
              const std::string& link_path) override {
    return net_->Call(self_, target_,
                      [&] { return engine_->Link(existing, link_path); });
  }
  Status Write(const std::string& path, uint64_t offset,
               const std::string& data) override {
    return net_->Call(self_, target_,
                      [&] { return engine_->Write(path, offset, data); });
  }
  StatusOr<std::string> Read(const std::string& path, uint64_t offset,
                             size_t length) override {
    return net_->Call(self_, target_, [&]() -> StatusOr<std::string> {
      return engine_->Read(path, offset, length);
    });
  }

 private:
  SimNet* net_;
  NodeId self_;
  NodeId target_;
  MetadataClient* engine_;
};

// Common machinery for the two baseline engines: dentry cache, row access,
// lock helpers, timestamps/ids, and lock-based commit.
class BaselineEngineBase : public MetadataClient {
 public:
  BaselineEngineBase(SimNet* net, NodeId self, TafDbCluster* tafdb,
                     FileStoreCluster* filestore, int64_t lock_timeout_us);

 protected:
  struct Resolved {
    InodeId parent = kInvalidInode;
    std::string name;
    InodeId id = kInvalidInode;
    InodeType type = InodeType::kNone;
  };

  StatusOr<Resolved> Resolve(const std::string& path);
  StatusOr<Resolved> ResolveParent(const std::string& path);
  StatusOr<InodeId> ResolveDirId(const std::string& path);

  StatusOr<InodeRecord> ReadRow(const InodeKey& key);
  PrimitiveResult ExecOnShard(InodeId kid, const PrimitiveOp& op);
  StatusOr<std::vector<InodeRecord>> ScanDirRows(InodeId kid);

  // Lock helpers: one RPC per shard.
  Status LockOnShard(TxnId txn, InodeId kid, std::vector<std::string> keys);
  void UnlockOnShard(TxnId txn, InodeId kid);

  // Commits per-shard write sets: CommitLocal for one shard, 2PC otherwise.
  Status CommitWriteSets(std::map<size_t, PrimitiveOp> ops, TxnId txn);

  uint64_t NowTs() { return ts_cache_.Next(); }
  InodeId AllocId() { return id_cache_.Next(); }
  TxnId NextTxn() {
    return (static_cast<TxnId>(self_) << 32) | txn_seq_.fetch_add(1);
  }

  void CachePut(const std::string& path, InodeId id, InodeType type);
  bool CacheGet(const std::string& path, InodeId* id, InodeType* type);
  void CacheErase(const std::string& path);

  // tsa-coverage: allow(immutable after construction)
  SimNet* net_;
  NodeId self_;  // tsa-coverage: allow(immutable after construction)
  // tsa-coverage: allow(immutable after construction)
  TafDbCluster* tafdb_;
  // tsa-coverage: allow(immutable after construction)
  FileStoreCluster* filestore_;
  // tsa-coverage: allow(immutable after construction)
  int64_t lock_timeout_us_;
  TimestampCache ts_cache_;  // tsa-coverage: allow(internally synchronized)
  TimestampCache id_cache_;  // tsa-coverage: allow(internally synchronized)
  // Path-cache leaf shared by both baseline engines.
  Mutex cache_mu_{"baseline.dentry", 45};
  std::map<std::string, std::pair<InodeId, InodeType>> dentry_cache_
      GUARDED_BY(cache_mu_);
  std::atomic<TxnId> txn_seq_{1};
};

// Generic baseline cluster shell: TafDB-style table cluster (hash
// partition), data-only FileStore, proxies hosting `EngineT` instances.
template <typename EngineT>
class BaselineCluster {
 public:
  BaselineCluster(std::string name, BaselineOptions options)
      : options_(std::move(options)), net_(options_.net) {
    options_.tafdb.partition = PartitionScheme::kHashKid;
    std::vector<uint32_t> servers;
    for (uint32_t s = 0; s < options_.num_servers; s++) servers.push_back(s);
    tafdb_ = std::make_unique<TafDbCluster>(&net_, servers, options_.tafdb);
    filestore_ =
        std::make_unique<FileStoreCluster>(&net_, servers, options_.filestore);
    for (size_t i = 0; i < options_.num_proxies; i++) {
      NodeId node = net_.AddNode(name + "-proxy" + std::to_string(i),
                                 static_cast<uint32_t>(i % servers.size()));
      proxy_nodes_.push_back(node);
      engines_.push_back(std::make_unique<EngineT>(
          &net_, node, tafdb_.get(), filestore_.get(),
          options_.lock_timeout_us));
    }
  }

  Status Start() {
    CFS_RETURN_IF_ERROR(tafdb_->Start());
    CFS_RETURN_IF_ERROR(filestore_->Start());
    CFS_RETURN_IF_ERROR(BootstrapRoot());
    return Status::Ok();
  }

  void Stop() {
    filestore_->Stop();
    tafdb_->Stop();
  }

  std::unique_ptr<MetadataClient> NewClient() {
    uint32_t client_server = static_cast<uint32_t>(options_.num_servers) +
                             (next_client_.fetch_add(1) % 8);
    NodeId node = net_.AddNode("client", client_server);
    size_t proxy = next_proxy_.fetch_add(1) % engines_.size();
    return std::make_unique<ForwardingClient>(&net_, node,
                                              proxy_nodes_[proxy],
                                              engines_[proxy].get());
  }

  SimNet* net() { return &net_; }
  TafDbCluster* tafdb() { return tafdb_.get(); }
  FileStoreCluster* filestore() { return filestore_.get(); }
  EngineT* engine(size_t i) { return engines_[i].get(); }

 private:
  Status BootstrapRoot() { return EngineT::BootstrapRoot(tafdb_.get()); }

  BaselineOptions options_;
  SimNet net_;
  std::unique_ptr<TafDbCluster> tafdb_;
  std::unique_ptr<FileStoreCluster> filestore_;
  std::vector<NodeId> proxy_nodes_;
  std::vector<std::unique_ptr<EngineT>> engines_;
  std::atomic<size_t> next_proxy_{0};
  std::atomic<uint32_t> next_client_{0};
};

}  // namespace cfs

#endif  // CFS_BASELINES_BASELINE_COMMON_H_
