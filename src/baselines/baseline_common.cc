#include "src/baselines/baseline_common.h"

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/trace_event.h"

namespace cfs {

BaselineEngineBase::BaselineEngineBase(SimNet* net, NodeId self,
                                       TafDbCluster* tafdb,
                                       FileStoreCluster* filestore,
                                       int64_t lock_timeout_us)
    : net_(net),
      self_(self),
      tafdb_(tafdb),
      filestore_(filestore),
      lock_timeout_us_(lock_timeout_us),
      ts_cache_(net, self, tafdb->ts_oracle(), 512),
      id_cache_(net, self, tafdb->id_allocator(), 128) {}

void BaselineEngineBase::CachePut(const std::string& path, InodeId id,
                                  InodeType type) {
  MutexLock lock(cache_mu_);
  dentry_cache_[path] = {id, type};
}

bool BaselineEngineBase::CacheGet(const std::string& path, InodeId* id,
                                  InodeType* type) {
  MutexLock lock(cache_mu_);
  auto it = dentry_cache_.find(path);
  if (it == dentry_cache_.end()) return false;
  *id = it->second.first;
  *type = it->second.second;
  return true;
}

void BaselineEngineBase::CacheErase(const std::string& path) {
  MutexLock lock(cache_mu_);
  dentry_cache_.erase(path);
}

StatusOr<InodeRecord> BaselineEngineBase::ReadRow(const InodeKey& key) {
  TafDbShard* shard = tafdb_->ShardFor(key.kid);
  return net_->Call(self_, shard->ServiceNetId(),
                    [&] { return shard->Get(key); });
}

PrimitiveResult BaselineEngineBase::ExecOnShard(InodeId kid,
                                                const PrimitiveOp& op) {
  TraceSpan span(Phase::kShardExec, "exec_on_shard");
  TafDbShard* shard = tafdb_->ShardFor(kid);
  Status delivered = net_->BeginCall(self_, shard->ServiceNetId());
  if (!delivered.ok()) {
    PrimitiveResult r;
    r.status = delivered;
    return r;
  }
  // Direct-call site: attribute the shard-side execution to the
  // destination like SimNet::Call would.
  trace::NodeScope node(net_->TraceNodeOf(shard->ServiceNetId()));
  trace::ScopedSpan exec(trace::Category::kExec, "primitive");
  return shard->ExecutePrimitive(op);
}

StatusOr<std::vector<InodeRecord>> BaselineEngineBase::ScanDirRows(
    InodeId kid) {
  TafDbShard* shard = tafdb_->ShardFor(kid);
  std::vector<InodeRecord> out;
  std::string after;
  constexpr size_t kPage = 1024;
  for (;;) {
    auto page = net_->Call(self_, shard->ServiceNetId(),
                           [&] { return shard->ScanDir(kid, after, kPage); });
    if (!page.ok()) return page.status();
    for (auto& rec : *page) out.push_back(std::move(rec));
    if (page->size() < kPage) break;
    after = out.back().key.kstr;
  }
  return out;
}

Status BaselineEngineBase::LockOnShard(TxnId txn, InodeId kid,
                                       std::vector<std::string> keys) {
  // The whole acquisition (RPC round trip + queueing inside the lock
  // manager) counts as lock-phase time for the Fig 4 breakdown. The span
  // owns the phase while open, so the lock manager's own queue-wait stamp
  // inside is suppressed rather than double counted.
  TraceSpan span(Phase::kLockWait, "lock_on_shard");
  TafDbShard* shard = tafdb_->ShardFor(kid);
  return net_->Call(self_, shard->ServiceNetId(), [&] {
    return shard->locks()->LockAll(txn, std::move(keys), LockMode::kExclusive,
                                   lock_timeout_us_);
  });
}

void BaselineEngineBase::UnlockOnShard(TxnId txn, InodeId kid) {
  TraceSpan span(Phase::kLockWait);
  TafDbShard* shard = tafdb_->ShardFor(kid);
  (void)net_->Call(self_, shard->ServiceNetId(), [&]() -> Status {
    shard->locks()->UnlockAll(txn);
    return Status::Ok();
  });
}

Status BaselineEngineBase::CommitWriteSets(std::map<size_t, PrimitiveOp> ops,
                                           TxnId txn) {
  TraceSpan span(Phase::kShardExec);
  if (ops.empty()) return Status::Ok();
  if (ops.size() == 1) {
    TafDbShard* shard = tafdb_->shard(ops.begin()->first);
    return net_->Call(self_, shard->ServiceNetId(), [&] {
      return shard->CommitLocal(ops.begin()->second).status;
    });
  }
  std::vector<TxnParticipant*> participants;
  for (auto& [index, op] : ops) {
    TafDbShard* shard = tafdb_->shard(index);
    Status st = net_->Call(self_, shard->ServiceNetId(),
                           [&] { return shard->Stage(txn, op); });
    if (!st.ok()) return st;
    participants.push_back(shard);
  }
  TwoPhaseCommit tpc(net_);
  return tpc.Run(self_, participants, txn);
}

StatusOr<InodeId> BaselineEngineBase::ResolveDirId(const std::string& path) {
  auto resolved = Resolve(path);
  if (resolved.ok() && resolved->type != InodeType::kDirectory) {
    // Stale cached generation of the name: revalidate before ENOTDIR.
    CacheErase(path);
    resolved = Resolve(path);
  }
  if (!resolved.ok()) return resolved.status();
  if (resolved->type != InodeType::kDirectory) {
    return Status::NotADirectory(path);
  }
  return resolved->id;
}

StatusOr<BaselineEngineBase::Resolved> BaselineEngineBase::ResolveParent(
    const std::string& path) {
  TraceSpan span(Phase::kResolve);
  auto split = SplitParent(path);
  if (!split.ok()) return split.status();
  auto& [parent_path, name] = *split;
  auto parent_id = ResolveDirId(parent_path);
  if (!parent_id.ok()) return parent_id.status();
  Resolved out;
  out.parent = *parent_id;
  out.name = name;
  return out;
}

StatusOr<BaselineEngineBase::Resolved> BaselineEngineBase::Resolve(
    const std::string& path) {
  TraceSpan span(Phase::kResolve);
  if (path == "/") {
    Resolved root;
    root.id = kRootInode;
    root.type = InodeType::kDirectory;
    return root;
  }
  auto parent = ResolveParent(path);
  if (!parent.ok()) return parent.status();
  Resolved out = std::move(parent).value();
  if (CacheGet(path, &out.id, &out.type)) {
    return out;
  }
  auto row = ReadRow(InodeKey::IdRecord(out.parent, out.name));
  if (!row.ok()) {
    if (row.status().IsNotFound()) CacheErase(path);
    return row.status();
  }
  out.id = row->id;
  out.type = row->type;
  CachePut(path, out.id, out.type);
  return out;
}

}  // namespace cfs
