#include "src/raft/raft.h"

#include <algorithm>
#include <chrono>

#include "src/common/encoding.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace cfs {
namespace {

// WAL record tags.
constexpr char kWalVote = 0;
constexpr char kWalEntry = 1;
constexpr char kWalTruncate = 2;
constexpr char kWalSnapshot = 3;

std::string EncodeVote(Term term, ReplicaId voted_for) {
  std::string out(1, kWalVote);
  PutVarint64(&out, term);
  PutVarint64(&out, voted_for);
  return out;
}

std::string EncodeEntry(LogIndex index, const LogEntry& e) {
  std::string out(1, kWalEntry);
  PutVarint64(&out, index);
  PutVarint64(&out, e.term);
  PutLengthPrefixed(&out, e.command);
  return out;
}

std::string EncodeTruncate(LogIndex from) {
  std::string out(1, kWalTruncate);
  PutVarint64(&out, from);
  return out;
}

std::string EncodeSnapshot(LogIndex index, Term term,
                           const std::string& state) {
  std::string out(1, kWalSnapshot);
  PutVarint64(&out, index);
  PutVarint64(&out, term);
  PutLengthPrefixed(&out, state);
  return out;
}

}  // namespace

RaftNode::RaftNode(ReplicaId id, NodeId net_id, SimNet* net, StateMachine* sm,
                   RaftOptions options, const Clock* clock)
    : id_(id),
      net_id_(net_id),
      net_(net),
      sm_(sm),
      options_(std::move(options)),
      clock_(clock),
      wal_(options_.wal),
      rng_(0x1234abcd ^ (static_cast<uint64_t>(id) << 17)) {}

RaftNode::~RaftNode() { Stop(); }

void RaftNode::SetStateMachine(StateMachine* sm) {
  MutexLock lock(mu_);
  sm_ = sm;
}

void RaftNode::SetPeers(std::vector<RaftPeer> peers) {
  MutexLock lock(mu_);
  peers_ = std::move(peers);
  next_index_.assign(peers_.size(), 1);
  match_index_.assign(peers_.size(), 0);
  last_send_.assign(peers_.size(), 0);
}

Status RaftNode::Start() {
  MutexLock lock(mu_);
  if (running_.load()) return Status::Ok();
  CFS_RETURN_IF_ERROR(wal_.Open());
  // Recover persistent state.
  log_.clear();
  term_ = 0;
  voted_for_ = UINT32_MAX;
  snapshot_index_ = 0;
  snapshot_term_ = 0;
  std::string snapshot_state;
  Status replay = wal_.Replay([&](uint64_t, std::string_view record) {
    if (record.empty()) return;
    Decoder dec(record.substr(1));
    switch (record[0]) {
      case kWalVote: {
        uint64_t term, voted;
        if (dec.GetVarint64(&term) && dec.GetVarint64(&voted)) {
          term_ = term;
          voted_for_ = static_cast<ReplicaId>(voted);
        }
        break;
      }
      case kWalEntry: {
        uint64_t index, term;
        std::string command;
        if (dec.GetVarint64(&index) && dec.GetVarint64(&term) &&
            dec.GetLengthPrefixed(&command)) {
          if (index <= snapshot_index_) break;  // already in the snapshot
          if (index <= LastIndexLocked()) {
            log_.resize(index - snapshot_index_ - 1);
          }
          // Gaps cannot occur in a well-formed WAL; ignore if they do.
          if (index == LastIndexLocked() + 1) {
            log_.push_back(LogEntry{term, std::move(command)});
          }
        }
        break;
      }
      case kWalTruncate: {
        uint64_t from;
        if (dec.GetVarint64(&from) && from > snapshot_index_ &&
            from <= LastIndexLocked()) {
          log_.resize(from - snapshot_index_ - 1);
        }
        break;
      }
      case kWalSnapshot: {
        uint64_t index, term;
        std::string state;
        if (dec.GetVarint64(&index) && dec.GetVarint64(&term) &&
            dec.GetLengthPrefixed(&state)) {
          // Drop entries the snapshot covers; keep any newer suffix.
          if (index > snapshot_index_) {
            size_t covered = static_cast<size_t>(
                std::min<LogIndex>(index - snapshot_index_, log_.size()));
            log_.erase(log_.begin(), log_.begin() + covered);
            snapshot_index_ = index;
            snapshot_term_ = term;
            snapshot_state = std::move(state);
          }
        }
        break;
      }
      default:
        break;
    }
  });
  CFS_RETURN_IF_ERROR(replay);
  if (snapshot_index_ > 0) {
    Status restored = sm_->Restore(snapshot_state);
    if (!restored.ok()) return restored;
    last_snapshot_state_ = std::move(snapshot_state);
  }
  durable_index_ = LastIndexLocked();
  commit_index_ = snapshot_index_;
  applied_index_ = snapshot_index_;
  role_ = RaftRole::kFollower;
  leader_hint_ = UINT32_MAX;
  ResetElectionDeadlineLocked();
  running_.store(true);
  if (!options_.inline_replication) {
    replicators_should_run_ = true;
    StartReplicatorsLocked();
  }
  CFS_LOG(kDebug) << "raft " << id_ << " started, term=" << term_
                  << " log=" << log_.size();
  return Status::Ok();
}

void RaftNode::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_.load()) return;
    running_.store(false);
    replicators_should_run_ = false;
    role_ = RaftRole::kFollower;
    FailPendingLocked(Status::Unavailable("raft node stopped"));
  }
  repl_cv_.NotifyAll();
  apply_cv_.NotifyAll();
  StopReplicators();
}

Status RaftNode::Restart() {
  Stop();
  return Start();
}

void RaftNode::StartReplicatorsLocked() {
  if (!replicators_.empty()) return;
  for (size_t i = 0; i < peers_.size(); i++) {
    replicators_.emplace_back([this, i] { ReplicatorLoop(i); });
  }
}

void RaftNode::StopReplicators() {
  for (auto& t : replicators_) {
    if (t.joinable()) t.join();
  }
  replicators_.clear();
}

void RaftNode::ResetElectionDeadlineLocked() {
  int64_t span =
      options_.election_timeout_max_ms - options_.election_timeout_min_ms;
  int64_t timeout_ms =
      options_.election_timeout_min_ms +
      (span > 0 ? static_cast<int64_t>(rng_.Uniform(static_cast<uint64_t>(span))) : 0);
  election_deadline_ = clock_->NowNanos() + timeout_ms * 1000000;
}

Term RaftNode::LastLogTermLocked() const {
  return log_.empty() ? snapshot_term_ : log_.back().term;
}

void RaftNode::PersistVoteLocked() {
  (void)wal_.Append(EncodeVote(term_, voted_for_), /*sync=*/true);
}

void RaftNode::BecomeFollowerLocked(Term term, bool persist) {
  bool was_leader = role_ == RaftRole::kLeader;
  role_ = RaftRole::kFollower;
  if (term > term_) {
    term_ = term;
    voted_for_ = UINT32_MAX;
    if (persist) PersistVoteLocked();
  }
  if (was_leader) {
    FailPendingLocked(Status::NotLeader("leadership lost"));
  }
  ResetElectionDeadlineLocked();
}

void RaftNode::BecomeLeaderLocked() {
  role_ = RaftRole::kLeader;
  leader_hint_ = id_;
  for (size_t i = 0; i < peers_.size(); i++) {
    next_index_[i] = LastIndexLocked() + 1;
    match_index_[i] = 0;
    last_send_[i] = 0;
  }
  // Commit-previous-term barrier: append a no-op in the new term.
  log_.push_back(LogEntry{term_, ""});
  term_start_index_ = LastIndexLocked();
  CFS_LOG(kDebug) << "raft " << id_ << " became leader term=" << term_;
  repl_cv_.NotifyAll();
}

void RaftNode::FailPendingLocked(const Status& status) {
  for (auto& [index, pending] : pending_) {
    pending.promise.set_value(status);
  }
  pending_.clear();
}

std::future<StatusOr<std::string>> RaftNode::Propose(std::string command) {
  std::promise<StatusOr<std::string>> promise;
  auto future = promise.get_future();
  {
    MutexLock lock(mu_);
    if (!running_.load() || role_ != RaftRole::kLeader) {
      promise.set_value(Status::NotLeader());
      return future;
    }
    log_.push_back(LogEntry{term_, std::move(command)});
    LogIndex index = LastIndexLocked();
    pending_[index].promise = std::move(promise);
  }
  repl_cv_.NotifyAll();
  return future;
}

StatusOr<std::string> RaftNode::ProposeInline(std::string command) {
  std::promise<StatusOr<std::string>> promise;
  auto future = promise.get_future();
  LogIndex index = 0;
  {
    MutexLock lock(mu_);
    if (!running_.load() || role_ != RaftRole::kLeader) {
      return Status::NotLeader();
    }
    log_.push_back(LogEntry{term_, std::move(command)});
    index = LastIndexLocked();
    pending_[index].promise = std::move(promise);
  }
  // A round sends everything outstanding, so one round normally commits
  // and applies our entry; under concurrent proposers another thread's
  // round may do it for us (group commit), or ours may carry theirs. The
  // retry bound only matters when a quorum is unreachable.
  for (int round = 0; round < 8; round++) {
    {
      MutexLock lock(mu_);
      if (pending_.count(index) == 0) break;  // applied (or failed) already
    }
    ReplicateRoundInline();
  }
  {
    MutexLock lock(mu_);
    auto it = pending_.find(index);
    if (it != pending_.end()) {
      it->second.promise.set_value(
          Status::Unavailable("inline replication: no quorum"));
      pending_.erase(it);
    }
  }
  return future.get();
}

void RaftNode::ReplicateRoundInline() {
  std::vector<RaftPeer> peers;
  {
    MutexLock lock(mu_);
    if (!running_.load() || role_ != RaftRole::kLeader) return;
    peers = peers_;
  }
  // The serialized fan-out models one concurrent round (all peers appended
  // in parallel, the leader joins the slowest): only the first delivered
  // call charges injected latency, like SimNet::Multicast.
  bool latency_charged = false;
  for (size_t i = 0; i < peers.size(); i++) {
    AppendRequest req;
    LogIndex sending_up_to = 0;
    {
      MutexLock lock(mu_);
      if (!running_.load() || role_ != RaftRole::kLeader) return;
      // Peers lagging behind a compacted prefix need snapshot shipping,
      // which stays a replicator-thread feature; unreachable here because
      // inline mode never runs with compaction-lagged peers (no faults).
      if (next_index_[i] <= snapshot_index_) continue;
      req.term = term_;
      req.leader = id_;
      req.prev_log_index = next_index_[i] - 1;
      req.prev_log_term =
          req.prev_log_index == 0 ? 0 : TermAtLocked(req.prev_log_index);
      LogIndex last = std::min<LogIndex>(
          LastIndexLocked(), req.prev_log_index + options_.max_batch_entries);
      for (LogIndex j = next_index_[i]; j <= last; j++) {
        req.entries.push_back(EntryAtLocked(j));
      }
      req.leader_commit = commit_index_;
      sending_up_to = last;
    }
    // Leader durability before the entries can count toward a majority.
    // mu_ is released around the persist and the peer RPC, exactly like
    // ReplicatorLoop (raft.node must never be held across an RPC edge).
    if (sending_up_to > 0) {
      PersistEntriesUpTo(sending_up_to);
    }
    Status delivered = net_->BeginCall(net_id_, peers[i].net,
                                       /*inject_latency=*/!latency_charged);
    if (!delivered.ok()) continue;
    latency_charged = true;
    AppendReply reply = peers[i].node->HandleAppendEntries(req);

    MutexLock lock(mu_);
    if (!running_.load() || role_ != RaftRole::kLeader || term_ != req.term) {
      return;
    }
    if (reply.term > term_) {
      BecomeFollowerLocked(reply.term, /*persist=*/true);
      return;
    }
    if (reply.success) {
      match_index_[i] = std::max(match_index_[i], reply.match_index);
      next_index_[i] = match_index_[i] + 1;
      AdvanceCommitLocked();
    } else {
      next_index_[i] = std::max<LogIndex>(
          1, std::min<LogIndex>(reply.conflict_hint, log_.size() + 1));
    }
  }
}

std::vector<std::pair<LogIndex, std::string>> RaftNode::ReadCommittedSince(
    LogIndex from, size_t max) const {
  MutexLock lock(mu_);
  std::vector<std::pair<LogIndex, std::string>> out;
  // Entries covered by a snapshot are gone; a consumer whose cursor is
  // older than the snapshot resumes at the snapshot boundary (deployments
  // enabling compaction must scan more often than they compact).
  for (LogIndex i = std::max(from, snapshot_index_) + 1;
       i <= commit_index_ && out.size() < max; i++) {
    if (!EntryAtLocked(i).command.empty()) {
      out.emplace_back(i, EntryAtLocked(i).command);
    }
  }
  return out;
}

Status RaftNode::ReadBarrier(int64_t timeout_ms) {
  MutexLock lock(mu_);
  if (role_ != RaftRole::kLeader) return Status::NotLeader();
  LogIndex target = std::max(commit_index_, term_start_index_);
  Term barrier_term = term_;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (running_.load() && term_ == barrier_term &&
         role_ == RaftRole::kLeader && applied_index_ < target) {
    if (!apply_cv_.WaitUntil(mu_, deadline)) break;  // timed out
  }
  if (!running_.load()) return Status::Unavailable("stopped");
  if (term_ != barrier_term || role_ != RaftRole::kLeader) {
    return Status::NotLeader("demoted during read barrier");
  }
  return applied_index_ >= target ? Status::Ok()
                                  : Status::Timeout("read barrier");
}

void RaftNode::PersistEntriesUpTo(LogIndex index) {
  // Group commit: batch-append all entries that are not yet durable and pay
  // a single synced write. Serialized by mu_ bracketed copies; the fsync
  // cost itself is paid outside mu_ so concurrent handlers are not blocked.
  std::vector<std::pair<LogIndex, LogEntry>> to_persist;
  {
    MutexLock lock(mu_);
    if (index <= durable_index_) return;
    for (LogIndex i = std::max(durable_index_, snapshot_index_) + 1;
         i <= index && i <= LastIndexLocked(); i++) {
      to_persist.emplace_back(i, EntryAtLocked(i));
    }
    if (to_persist.empty()) return;
    durable_index_ = to_persist.back().first;
  }
  for (size_t i = 0; i < to_persist.size(); i++) {
    bool last = i + 1 == to_persist.size();
    (void)wal_.Append(EncodeEntry(to_persist[i].first, to_persist[i].second),
                      /*sync=*/last);
  }
}

void RaftNode::ReplicatorLoop(size_t peer_index) {
  RaftPeer peer;
  {
    MutexLock lock(mu_);
    peer = peers_[peer_index];
  }
  for (;;) {
    AppendRequest req;
    LogIndex sending_up_to = 0;
    {
      MutexLock lock(mu_);
      auto heartbeat_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(options_.heartbeat_interval_ms);
      while (replicators_should_run_ &&
             !(role_ == RaftRole::kLeader &&
               LastIndexLocked() >= next_index_[peer_index])) {
        if (!repl_cv_.WaitUntil(mu_, heartbeat_deadline)) break;  // heartbeat
      }
      if (!replicators_should_run_) return;
      if (role_ != RaftRole::kLeader) continue;

      MonoNanos now = clock_->NowNanos();
      bool have_entries = LastIndexLocked() >= next_index_[peer_index];
      bool heartbeat_due =
          now - last_send_[peer_index] >=
          options_.heartbeat_interval_ms * 1000000;
      if (!have_entries && !heartbeat_due) continue;
      last_send_[peer_index] = now;

      if (next_index_[peer_index] <= snapshot_index_) {
        // The entries this peer needs were compacted away: ship the
        // snapshot instead of AppendEntries.
        SnapshotRequest snap;
        snap.term = term_;
        snap.leader = id_;
        snap.last_included_index = snapshot_index_;
        snap.last_included_term = snapshot_term_;
        snap.state = last_snapshot_state_;
        lock.Unlock();
        SnapshotReply snap_reply;
        Status delivered = net_->BeginCall(net_id_, peer.net);
        if (delivered.ok()) {
          snap_reply = peer.node->HandleInstallSnapshot(snap);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        lock.Lock();
        if (!replicators_should_run_ || role_ != RaftRole::kLeader ||
            term_ != snap.term) {
          continue;
        }
        if (snap_reply.term > term_) {
          BecomeFollowerLocked(snap_reply.term, /*persist=*/true);
          continue;
        }
        if (snap_reply.success) {
          match_index_[peer_index] =
              std::max(match_index_[peer_index], snap.last_included_index);
          next_index_[peer_index] = match_index_[peer_index] + 1;
          AdvanceCommitLocked();
        }
        continue;
      }

      req.term = term_;
      req.leader = id_;
      req.prev_log_index = next_index_[peer_index] - 1;
      req.prev_log_term =
          req.prev_log_index == 0 ? 0 : TermAtLocked(req.prev_log_index);
      LogIndex last = std::min<LogIndex>(
          LastIndexLocked(), req.prev_log_index + options_.max_batch_entries);
      for (LogIndex i = next_index_[peer_index]; i <= last; i++) {
        req.entries.push_back(EntryAtLocked(i));
      }
      req.leader_commit = commit_index_;
      sending_up_to = last;
    }

    // Leader durability before the entries can count toward a majority.
    if (sending_up_to > 0) {
      PersistEntriesUpTo(sending_up_to);
    }

    AppendReply reply;
    Status delivered = net_->BeginCall(net_id_, peer.net);
    if (delivered.ok()) {
      reply = peer.node->HandleAppendEntries(req);
    } else {
      // Peer unreachable; back off briefly so a downed peer does not spin
      // this replicator hot.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }

    MutexLock lock(mu_);
    if (!replicators_should_run_ || role_ != RaftRole::kLeader ||
        term_ != req.term) {
      continue;
    }
    if (reply.term > term_) {
      BecomeFollowerLocked(reply.term, /*persist=*/true);
      continue;
    }
    if (reply.success) {
      match_index_[peer_index] =
          std::max(match_index_[peer_index], reply.match_index);
      next_index_[peer_index] = match_index_[peer_index] + 1;
      AdvanceCommitLocked();
    } else {
      next_index_[peer_index] =
          std::max<LogIndex>(1, std::min<LogIndex>(reply.conflict_hint,
                                                   log_.size() + 1));
    }
  }
}

void RaftNode::AdvanceCommitLocked() {
  // Majority match over {self (durable), peers}.
  std::vector<LogIndex> matches;
  matches.push_back(durable_index_);
  for (LogIndex m : match_index_) matches.push_back(m);
  std::sort(matches.begin(), matches.end(), std::greater<LogIndex>());
  LogIndex majority_index = matches[matches.size() / 2];
  if (majority_index > commit_index_ && majority_index <= LastIndexLocked() &&
      majority_index > snapshot_index_ &&
      TermAtLocked(majority_index) == term_) {
    commit_index_ = majority_index;
    ApplyCommittedLocked();
  }
}

void RaftNode::ApplyCommittedLocked() {
  while (applied_index_ < commit_index_) {
    applied_index_++;
    const LogEntry& entry = EntryAtLocked(applied_index_);
    std::string result;
    if (!entry.command.empty()) {
      result = sm_->Apply(applied_index_, entry.command);
    }
    auto it = pending_.find(applied_index_);
    if (it != pending_.end()) {
      it->second.promise.set_value(std::move(result));
      pending_.erase(it);
    }
  }
  apply_cv_.NotifyAll();
  MaybeSnapshotLocked();
}

void RaftNode::MaybeSnapshotLocked() {
  if (options_.snapshot_threshold == SIZE_MAX) return;
  if (applied_index_ - snapshot_index_ < options_.snapshot_threshold) return;
  std::string state = sm_->Snapshot();
  if (state.empty()) return;  // machine does not support compaction
  Term snap_term = TermAtLocked(applied_index_);
  (void)wal_.Append(EncodeSnapshot(applied_index_, snap_term, state),
                    /*sync=*/true);
  size_t covered = static_cast<size_t>(applied_index_ - snapshot_index_);
  log_.erase(log_.begin(), log_.begin() + covered);
  snapshot_index_ = applied_index_;
  snapshot_term_ = snap_term;
  last_snapshot_state_ = std::move(state);
  if (durable_index_ < snapshot_index_) durable_index_ = snapshot_index_;
  CFS_LOG(kDebug) << "raft " << id_ << " snapshot at " << snapshot_index_;
}

VoteReply RaftNode::HandleRequestVote(const VoteRequest& req) {
  MutexLock lock(mu_);
  VoteReply reply;
  if (!running_.load()) {
    reply.term = term_;
    return reply;
  }
  if (req.term > term_) {
    BecomeFollowerLocked(req.term, /*persist=*/true);
  }
  reply.term = term_;
  if (req.term < term_) return reply;

  bool log_ok = req.last_log_term > LastLogTermLocked() ||
                (req.last_log_term == LastLogTermLocked() &&
                 req.last_log_index >= LastIndexLocked());
  if (log_ok && (voted_for_ == UINT32_MAX || voted_for_ == req.candidate)) {
    voted_for_ = req.candidate;
    PersistVoteLocked();
    reply.granted = true;
    ResetElectionDeadlineLocked();
  }
  return reply;
}

AppendReply RaftNode::HandleAppendEntries(const AppendRequest& req) {
  MutexLock lock(mu_);
  AppendReply reply;
  reply.term = term_;
  if (!running_.load()) return reply;
  if (req.term < term_) return reply;

  if (req.term > term_ || role_ != RaftRole::kFollower) {
    BecomeFollowerLocked(req.term, /*persist=*/true);
  }
  reply.term = term_;
  leader_hint_ = req.leader;
  ResetElectionDeadlineLocked();

  // Consistency check. Anything at or below our snapshot index is known
  // committed and applied; the check only concerns the live suffix.
  if (req.prev_log_index > LastIndexLocked()) {
    reply.conflict_hint = LastIndexLocked() + 1;
    return reply;
  }
  if (req.prev_log_index > snapshot_index_ &&
      TermAtLocked(req.prev_log_index) != req.prev_log_term) {
    // Back up to the start of the conflicting term.
    Term bad_term = TermAtLocked(req.prev_log_index);
    LogIndex hint = req.prev_log_index;
    while (hint > snapshot_index_ + 1 && TermAtLocked(hint - 1) == bad_term) {
      hint--;
    }
    reply.conflict_hint = hint;
    return reply;
  }

  // Append / overwrite entries (skipping anything the snapshot covers).
  LogIndex first_new = 0;
  for (size_t k = 0; k < req.entries.size(); k++) {
    LogIndex index = req.prev_log_index + 1 + k;
    if (index <= snapshot_index_) continue;
    if (index <= LastIndexLocked()) {
      if (TermAtLocked(index) != req.entries[k].term) {
        TruncateFromLocked(index);
      } else {
        continue;  // already have it
      }
    }
    log_.push_back(req.entries[k]);
    if (first_new == 0) first_new = index;
  }
  // Persist the newly appended suffix with one synced write.
  if (first_new != 0) {
    LogIndex last = req.prev_log_index + req.entries.size();
    for (LogIndex i = std::max(first_new, durable_index_ + 1); i <= last; i++) {
      (void)wal_.Append(EncodeEntry(i, EntryAtLocked(i)), /*sync=*/i == last);
    }
    durable_index_ = std::max(durable_index_, last);
  }

  LogIndex last_index = req.prev_log_index + req.entries.size();
  reply.success = true;
  reply.match_index = std::max<LogIndex>(last_index, req.prev_log_index);

  if (req.leader_commit > commit_index_) {
    commit_index_ = std::min<LogIndex>(req.leader_commit, LastIndexLocked());
    ApplyCommittedLocked();
  }
  return reply;
}

SnapshotReply RaftNode::HandleInstallSnapshot(const SnapshotRequest& req) {
  MutexLock lock(mu_);
  SnapshotReply reply;
  reply.term = term_;
  if (!running_.load() || req.term < term_) return reply;
  if (req.term > term_ || role_ != RaftRole::kFollower) {
    BecomeFollowerLocked(req.term, /*persist=*/true);
  }
  reply.term = term_;
  leader_hint_ = req.leader;
  ResetElectionDeadlineLocked();

  if (req.last_included_index <= snapshot_index_) {
    reply.success = true;  // we already have at least this much
    return reply;
  }
  Status restored = sm_->Restore(req.state);
  if (!restored.ok()) {
    CFS_LOG(kWarn) << "raft " << id_
                   << " snapshot restore failed: " << restored;
    return reply;
  }
  // The received image replaces everything; drop the log (a newer suffix
  // will be re-replicated by the leader).
  FailPendingLocked(Status::Aborted("snapshot installed"));
  log_.clear();
  snapshot_index_ = req.last_included_index;
  snapshot_term_ = req.last_included_term;
  last_snapshot_state_ = req.state;
  commit_index_ = snapshot_index_;
  applied_index_ = snapshot_index_;
  durable_index_ = snapshot_index_;
  (void)wal_.Append(
      EncodeSnapshot(snapshot_index_, snapshot_term_, req.state),
      /*sync=*/true);
  apply_cv_.NotifyAll();
  reply.success = true;
  return reply;
}

void RaftNode::TruncateFromLocked(LogIndex from) {
  (void)wal_.Append(EncodeTruncate(from), /*sync=*/true);
  log_.resize(from - snapshot_index_ - 1);
  if (durable_index_ >= from) durable_index_ = from - 1;
  // Any pending proposals in the truncated range are lost.
  for (auto it = pending_.lower_bound(from); it != pending_.end();) {
    it->second.promise.set_value(Status::Aborted("entry overwritten"));
    it = pending_.erase(it);
  }
}

void RaftNode::Tick() {
  bool should_elect = false;
  {
    MutexLock lock(mu_);
    if (!running_.load() || role_ == RaftRole::kLeader) return;
    if (clock_->NowNanos() >= election_deadline_) {
      should_elect = true;
    }
  }
  if (should_elect) StartElection();
}

void RaftNode::StartElection() {
  VoteRequest req;
  std::vector<RaftPeer> peers;
  {
    MutexLock lock(mu_);
    if (!running_.load() || role_ == RaftRole::kLeader) return;
    role_ = RaftRole::kCandidate;
    term_++;
    voted_for_ = id_;
    PersistVoteLocked();
    ResetElectionDeadlineLocked();
    req.term = term_;
    req.candidate = id_;
    req.last_log_index = LastIndexLocked();
    req.last_log_term = LastLogTermLocked();
    peers = peers_;
  }
  CFS_LOG(kDebug) << "raft " << id_ << " starting election term=" << req.term;

  size_t votes = 1;  // self
  for (const auto& peer : peers) {
    Status delivered = net_->BeginCall(net_id_, peer.net);
    if (!delivered.ok()) continue;
    VoteReply reply = peer.node->HandleRequestVote(req);
    MutexLock lock(mu_);
    if (reply.term > term_) {
      BecomeFollowerLocked(reply.term, /*persist=*/true);
      return;
    }
    if (role_ != RaftRole::kCandidate || term_ != req.term) return;
    if (reply.granted) votes++;
    if (votes * 2 > peers.size() + 1) {
      BecomeLeaderLocked();
      return;
    }
  }
}

bool RaftNode::IsLeader() const {
  MutexLock lock(mu_);
  return running_.load() && role_ == RaftRole::kLeader;
}

RaftRole RaftNode::role() const {
  MutexLock lock(mu_);
  return role_;
}

Term RaftNode::CurrentTerm() const {
  MutexLock lock(mu_);
  return term_;
}

LogIndex RaftNode::CommitIndex() const {
  MutexLock lock(mu_);
  return commit_index_;
}

LogIndex RaftNode::LastLogIndex() const {
  MutexLock lock(mu_);
  return LastIndexLocked();
}

LogIndex RaftNode::SnapshotIndex() const {
  MutexLock lock(mu_);
  return snapshot_index_;
}

ReplicaId RaftNode::LeaderHint() const {
  MutexLock lock(mu_);
  return leader_hint_;
}

// ---------------------------------------------------------------------------
// RaftGroup

RaftGroup::RaftGroup(SimNet* net, std::string name,
                     std::vector<uint32_t> servers, StateMachineFactory factory,
                     RaftOptions options, const Clock* clock)
    : net_(net),
      name_(std::move(name)),
      factory_(std::move(factory)),
      inline_(options.inline_replication) {
  for (size_t i = 0; i < servers.size(); i++) {
    machines_.push_back(factory_(static_cast<ReplicaId>(i)));
    NodeId nid = net_->AddNode(name_ + "-r" + std::to_string(i), servers[i]);
    RaftOptions opts = options;
    if (!opts.wal.path.empty()) {
      opts.wal.path += "." + name_ + ".r" + std::to_string(i);
    }
    nodes_.push_back(std::make_unique<RaftNode>(static_cast<ReplicaId>(i), nid,
                                                net_, machines_.back().get(),
                                                opts, clock));
  }
  for (size_t i = 0; i < nodes_.size(); i++) {
    std::vector<RaftPeer> peers;
    for (size_t j = 0; j < nodes_.size(); j++) {
      if (j == i) continue;
      peers.push_back(RaftPeer{static_cast<ReplicaId>(j),
                               nodes_[j]->net_id(), nodes_[j].get()});
    }
    nodes_[i]->SetPeers(std::move(peers));
  }
}

RaftGroup::~RaftGroup() { Stop(); }

Status RaftGroup::Start() {
  for (auto& node : nodes_) {
    CFS_RETURN_IF_ERROR(node->Start());
  }
  if (inline_) {
    // Deterministic bootstrap instead of timer-driven elections: replica 0
    // campaigns immediately (every peer is up, so it wins), then one
    // synchronous round commits and applies its term-start no-op so
    // ReadBarrier passes from the first operation on.
    nodes_[0]->StartElection();
    nodes_[0]->ReplicateRoundInline();
    return Status::Ok();
  }
  ticker_run_.store(true);
  ticker_ = std::thread([this] { TickerLoop(); });
  return Status::Ok();
}

void RaftGroup::Stop() {
  if (ticker_run_.exchange(false)) {
    if (ticker_.joinable()) ticker_.join();
  }
  for (auto& node : nodes_) {
    node->Stop();
  }
}

void RaftGroup::TickerLoop() {
  while (ticker_run_.load()) {
    for (auto& node : nodes_) {
      if (node->running()) node->Tick();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

StatusOr<ReplicaId> RaftGroup::WaitForLeader(int64_t timeout_ms) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    for (auto& node : nodes_) {
      if (node->IsLeader()) return node->id();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Status::Timeout("no leader elected");
}

RaftNode* RaftGroup::Leader() {
  for (auto& node : nodes_) {
    if (node->IsLeader()) return node.get();
  }
  return nullptr;
}

StatusOr<std::string> RaftGroup::Propose(std::string command,
                                         int64_t timeout_ms) {
  // Spans the caller's full replication wait: leader discovery, append,
  // quorum ack, apply. Runs on the proposing thread, so it lands in the
  // thread's OpTrace.
  TraceSpan span(Phase::kRaftAppend);
  static Counter* const proposals =
      MetricsRegistry::Global().GetCounter("raft.proposals");
  proposals->Add();
  if (inline_) {
    RaftNode* leader = Leader();
    if (leader == nullptr) {
      return Status::NotLeader("no leader (inline replication)");
    }
    return leader->ProposeInline(std::move(command));
  }
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    RaftNode* leader = Leader();
    if (leader == nullptr) {
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status::Timeout("no leader");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    auto future = leader->Propose(command);
    if (future.wait_until(deadline) != std::future_status::ready) {
      return Status::Timeout("proposal timed out");
    }
    StatusOr<std::string> result = future.get();
    if (result.ok()) return result;
    // kAborted (entry overwritten after leadership churn) means the
    // command definitively did NOT apply: safe and necessary to retry.
    if (!result.status().IsRetryable() &&
        result.status().code() != ErrorCode::kAborted) {
      return result;
    }
    if (std::chrono::steady_clock::now() >= deadline) return result;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void RaftGroup::CrashReplica(size_t i) {
  nodes_[i]->Stop();
  net_->SetNodeDown(nodes_[i]->net_id(), true);
}

Status RaftGroup::RestartReplica(size_t i) {
  net_->SetNodeDown(nodes_[i]->net_id(), false);
  // Rebuild the state machine from scratch; the recovered raft log is
  // re-applied into it as the commit index advances again.
  machines_[i] = factory_(static_cast<ReplicaId>(i));
  nodes_[i]->SetStateMachine(machines_[i].get());
  return nodes_[i]->Restart();
}

}  // namespace cfs
