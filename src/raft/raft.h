// Raft consensus (Ongaro & Ousterhout) — the replication substrate beneath
// every TafDB shard, FileStore node, and the Renamer group (paper §3.2:
// "we replicate BEs' states in groups, managed and coordinated via the Raft
// consensus protocol").
//
// Implemented features:
//   - randomized-timeout leader election with term/vote persistence,
//   - log replication with the AppendEntries consistency check and
//     conflict-truncation,
//   - GROUP COMMIT: all proposals that accumulate while a replication round
//     is in flight ride the next AppendEntries batch and share one WAL
//     fsync. This batching is what lets a single CFS metadata shard absorb
//     highly contended single-record updates (paper §4.2) — a property the
//     contention benchmarks (Fig 11, Fig 12) depend on.
//   - crash recovery by WAL replay (vote records, entries, truncate marks),
//   - read barrier for leaders (commit-index wait) for linearizable reads.
//
// Not implemented (documented simplifications): membership change,
// snapshot/log-compaction transfer, pre-vote, leader leases. None of these
// affect the evaluated metadata path.
//
// Threading model: a RaftGroup runs one ticker thread (election timeouts)
// shared by its replicas; each leader runs one replicator thread per peer.
// Peer RPCs travel through SimNet and therefore pay simulated network
// latency and observe partitions.
//
// Inline replication (RaftOptions::inline_replication): for virtual-time
// simulation there are no background threads at all — no ticker, no
// replicators, no heartbeats. The group bootstraps replica 0 as leader at
// Start, and every proposal replicates synchronously on the proposing
// thread (ReplicateRoundInline), so the whole commit path is causally
// ordered on one thread and its injected latencies land on the driving
// simtime::Scheduler's virtual clock. Elections and fault tolerance are
// out of scope in this mode (DESIGN.md §11).

#ifndef CFS_RAFT_RAFT_H_
#define CFS_RAFT_RAFT_H_

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/net/simnet.h"
#include "src/wal/wal.h"

namespace cfs {

using Term = uint64_t;
using LogIndex = uint64_t;
using ReplicaId = uint32_t;

// Replicated state machine interface. Apply is invoked exactly once per
// committed entry, in log order, under the raft node's serialization; the
// returned payload is delivered to the proposer's future (leader only).
//
// Machines that opt into log compaction implement Snapshot/Restore:
// Snapshot serializes the full applied state, Restore replaces the state
// with a serialized image. The default (empty snapshot) disables
// compaction for the node.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual std::string Apply(LogIndex index, std::string_view command) = 0;
  virtual std::string Snapshot() { return ""; }
  virtual Status Restore(std::string_view) {
    return Status::Unimplemented("state machine has no snapshot support");
  }
};

enum class RaftRole { kFollower, kCandidate, kLeader };

struct RaftOptions {
  int64_t election_timeout_min_ms = 150;
  int64_t election_timeout_max_ms = 300;
  int64_t heartbeat_interval_ms = 50;
  size_t max_batch_entries = 512;
  // Log compaction: once more than this many applied entries accumulate,
  // the node snapshots its state machine and truncates the log prefix.
  // SIZE_MAX disables compaction (the default; the GC's change-capture
  // feed reads the in-memory log, so deployments that compact must size
  // their GC scan interval below the compaction window).
  size_t snapshot_threshold = SIZE_MAX;
  // Replicate synchronously on the proposing thread, with no ticker /
  // replicator / heartbeat threads (virtual-time simulation; see the
  // header comment). Replica 0 is bootstrapped as the permanent leader.
  bool inline_replication = false;
  WalOptions wal;
};

struct LogEntry {
  Term term = 0;
  std::string command;
};

struct VoteRequest {
  Term term = 0;
  ReplicaId candidate = 0;
  LogIndex last_log_index = 0;
  Term last_log_term = 0;
};

struct VoteReply {
  Term term = 0;
  bool granted = false;
};

struct AppendRequest {
  Term term = 0;
  ReplicaId leader = 0;
  LogIndex prev_log_index = 0;
  Term prev_log_term = 0;
  std::vector<LogEntry> entries;
  LogIndex leader_commit = 0;
};

struct AppendReply {
  Term term = 0;
  bool success = false;
  LogIndex match_index = 0;   // on success
  LogIndex conflict_hint = 0; // on failure: next index to try
  // Set when the follower's log starts after prev_log_index (compacted):
  // the leader must ship a snapshot.
  bool needs_snapshot = false;
};

struct SnapshotRequest {
  Term term = 0;
  ReplicaId leader = 0;
  LogIndex last_included_index = 0;
  Term last_included_term = 0;
  std::string state;  // serialized state machine image
};

struct SnapshotReply {
  Term term = 0;
  bool success = false;
};

class RaftNode;

struct RaftPeer {
  ReplicaId id = 0;
  NodeId net = kInvalidNode;
  RaftNode* node = nullptr;  // direct handler object; calls go via SimNet
};

class RaftNode {
 public:
  RaftNode(ReplicaId id, NodeId net_id, SimNet* net, StateMachine* sm,
           RaftOptions options, const Clock* clock = RealClock::Get());
  ~RaftNode();

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  // Peers must be set before Start (self excluded).
  void SetPeers(std::vector<RaftPeer> peers);

  // Swaps the state machine (used on restart: the machine is rebuilt empty
  // and the recovered log is re-applied as commit advances).
  void SetStateMachine(StateMachine* sm);

  // Recovers persistent state from the WAL and begins participating.
  Status Start();
  void Stop();
  // Stop + Start, replaying the WAL (crash/restart in tests).
  Status Restart();

  // Proposes a command. The future resolves with the Apply() payload once
  // the entry commits, or with kNotLeader/kAborted on leadership change.
  std::future<StatusOr<std::string>> Propose(std::string command);

  // Inline-replication proposal (options_.inline_replication): appends the
  // entry and drives replication rounds on the calling thread until the
  // entry commits and applies (or no quorum is reachable). Safe under
  // concurrent callers — a thread's entry may be committed by another
  // thread's round.
  StatusOr<std::string> ProposeInline(std::string command);

  // One synchronous replication round: sends AppendEntries to every peer,
  // advancing match/commit/apply. The serialized fan-out models one
  // concurrent round, so only the first delivered peer call charges
  // injected latency (cf. SimNet::Multicast). Leader only; no-op otherwise.
  void ReplicateRoundInline();

  // Inline-mode bootstrap: immediately starts (and, with all peers up,
  // wins) an election. Public for RaftGroup and partition tests.
  void StartElection();

  // Leader read barrier: waits until this leader has applied its
  // term-start no-op (which implies every entry committed by previous
  // terms is applied locally) — the standard raft rule for serving
  // linearizable reads after an election. Fails with kNotLeader on
  // non-leaders, kTimeout if the no-op cannot commit in time.
  Status ReadBarrier(int64_t timeout_ms = 2000);

  // Returns committed log commands with index in (from, commit], capped at
  // `max` — the change-data-capture feed the garbage collector tails
  // (paper §4.4: "the collector watches the write ahead logs").
  std::vector<std::pair<LogIndex, std::string>> ReadCommittedSince(
      LogIndex from, size_t max) const;

  // RPC handlers (invoked by peers through SimNet).
  VoteReply HandleRequestVote(const VoteRequest& req);
  AppendReply HandleAppendEntries(const AppendRequest& req);
  SnapshotReply HandleInstallSnapshot(const SnapshotRequest& req);

  // Test/introspection: first index still present in the in-memory log.
  LogIndex SnapshotIndex() const;

  // Called periodically by the group ticker.
  void Tick();

  // Introspection.
  ReplicaId id() const { return id_; }
  NodeId net_id() const { return net_id_; }
  bool IsLeader() const;
  RaftRole role() const;
  Term CurrentTerm() const;
  LogIndex CommitIndex() const;
  LogIndex LastLogIndex() const;
  ReplicaId LeaderHint() const;
  bool running() const { return running_; }

 private:
  struct Pending {
    std::promise<StatusOr<std::string>> promise;
  };

  // --- all Locked methods require mu_ held ---
  void BecomeFollowerLocked(Term term, bool persist) REQUIRES(mu_);
  void BecomeLeaderLocked() REQUIRES(mu_);
  void ResetElectionDeadlineLocked() REQUIRES(mu_);
  Term LastLogTermLocked() const REQUIRES(mu_);
  void PersistVoteLocked() REQUIRES(mu_);
  void ApplyCommittedLocked() REQUIRES(mu_);
  void FailPendingLocked(const Status& status) REQUIRES(mu_);
  void AdvanceCommitLocked() REQUIRES(mu_);
  void TruncateFromLocked(LogIndex from) REQUIRES(mu_);

  void ReplicatorLoop(size_t peer_index);
  // --- log-offset helpers (compaction); require mu_ held ---
  LogIndex LastIndexLocked() const REQUIRES(mu_) {
    return snapshot_index_ + log_.size();
  }
  const LogEntry& EntryAtLocked(LogIndex index) const REQUIRES(mu_) {
    return log_[index - snapshot_index_ - 1];
  }
  Term TermAtLocked(LogIndex index) const REQUIRES(mu_) {
    if (index == snapshot_index_) return snapshot_term_;
    return EntryAtLocked(index).term;
  }
  void MaybeSnapshotLocked() REQUIRES(mu_);
  void StartReplicatorsLocked() REQUIRES(mu_);
  void StopReplicators();
  // Appends not-yet-durable entries to the WAL with one sync (group commit).
  void PersistEntriesUpTo(LogIndex index);

  const ReplicaId id_;
  const NodeId net_id_;
  SimNet* const net_;
  // Written by SetStateMachine under mu_; read only from Locked methods.
  StateMachine* sm_ GUARDED_BY(mu_);
  RaftOptions options_;  // tsa-coverage: allow(immutable after construction)
  const Clock* clock_;
  Wal wal_;  // tsa-coverage: allow(internally synchronized)
  // Election jitter; drawn only inside ResetElectionDeadlineLocked.
  Rng rng_ GUARDED_BY(mu_);

  // Held across sm_->Apply (which may take shard/kv/wal locks) and across
  // WAL persists, so raft.node ranks below all of those; never held across
  // a peer RPC (replicators and elections drop it around BeginCall).
  mutable Mutex mu_{"raft.node", 60};
  CondVar repl_cv_;
  CondVar apply_cv_;

  RaftRole role_ GUARDED_BY(mu_) = RaftRole::kFollower;
  Term term_ GUARDED_BY(mu_) = 0;
  ReplicaId voted_for_ GUARDED_BY(mu_) = UINT32_MAX;
  ReplicaId leader_hint_ GUARDED_BY(mu_) = UINT32_MAX;
  // log_[i] has index snapshot_index_ + i + 1.
  std::vector<LogEntry> log_ GUARDED_BY(mu_);
  // Everything <= snapshot_index_ lives in the snapshot.
  LogIndex snapshot_index_ GUARDED_BY(mu_) = 0;
  Term snapshot_term_ GUARDED_BY(mu_) = 0;
  // Shipped to lagging followers.
  std::string last_snapshot_state_ GUARDED_BY(mu_);
  LogIndex commit_index_ GUARDED_BY(mu_) = 0;
  LogIndex applied_index_ GUARDED_BY(mu_) = 0;
  // Index of this leader's no-op barrier.
  LogIndex term_start_index_ GUARDED_BY(mu_) = 0;
  // Entries persisted to WAL.
  LogIndex durable_index_ GUARDED_BY(mu_) = 0;
  MonoNanos election_deadline_ GUARDED_BY(mu_) = 0;

  std::vector<RaftPeer> peers_ GUARDED_BY(mu_);
  std::vector<LogIndex> next_index_ GUARDED_BY(mu_);   // per peer
  std::vector<LogIndex> match_index_ GUARDED_BY(mu_);  // per peer
  std::vector<MonoNanos> last_send_ GUARDED_BY(mu_);   // per peer heartbeats

  std::map<LogIndex, Pending> pending_ GUARDED_BY(mu_);

  // Started under mu_; joined (StopReplicators) only after
  // replicators_should_run_ goes false, from the single Stop() caller —
  // joining under mu_ would deadlock against loops that take it.
  // tsa-coverage: allow(start/stop lifecycle only)
  std::vector<std::thread> replicators_;
  bool replicators_should_run_ GUARDED_BY(mu_) = false;
  std::atomic<bool> running_{false};
};

// A raft replication group: constructs N replicas over SimNet, runs the
// shared ticker, routes proposals to the current leader.
class RaftGroup {
 public:
  using StateMachineFactory = std::function<std::unique_ptr<StateMachine>(ReplicaId)>;

  // `servers[i]` is the physical server hosting replica i (for SimNet
  // latency); `name` prefixes node names.
  RaftGroup(SimNet* net, std::string name, std::vector<uint32_t> servers,
            StateMachineFactory factory, RaftOptions options,
            const Clock* clock = RealClock::Get());
  ~RaftGroup();

  Status Start();
  void Stop();

  // Blocks until some replica is leader (or timeout).
  StatusOr<ReplicaId> WaitForLeader(int64_t timeout_ms = 5000);

  // Routes to the leader, retrying across elections until timeout.
  StatusOr<std::string> Propose(std::string command, int64_t timeout_ms = 5000);

  RaftNode* replica(size_t i) { return nodes_[i].get(); }
  StateMachine* state_machine(size_t i) { return machines_[i].get(); }
  size_t size() const { return nodes_.size(); }
  RaftNode* Leader();

  // Crash/restart a replica (tests).
  void CrashReplica(size_t i);
  Status RestartReplica(size_t i);

 private:
  void TickerLoop();

  SimNet* net_;
  std::string name_;
  StateMachineFactory factory_;
  std::vector<std::unique_ptr<StateMachine>> machines_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  bool inline_ = false;  // RaftOptions::inline_replication
  std::thread ticker_;
  std::atomic<bool> ticker_run_{false};
};

}  // namespace cfs

#endif  // CFS_RAFT_RAFT_H_
